package netcoord

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"netcoord/internal/changefeed"
	"netcoord/internal/coord"
	"netcoord/internal/persist"
)

// PersistentRegistryConfig assembles a PersistentRegistry.
type PersistentRegistryConfig struct {
	// Registry configures the in-memory registry being persisted. Its
	// Dimension must fit the coordinate wire format (<= 16).
	Registry RegistryConfig
	// Dir is the data directory holding the snapshot and WAL files. It
	// is created if missing. Exactly one open registry may use a
	// directory at a time.
	Dir string
	// SnapshotInterval is how often the WAL is compacted into a fresh
	// snapshot; 0 means DefaultSnapshotInterval, negative disables the
	// background compactor (call Compact yourself).
	SnapshotInterval time.Duration
	// FlushInterval is the WAL group-commit window: a mutation is
	// durable at most this long after the call that applied it returns.
	// 0 means the persist layer's default (50ms).
	FlushInterval time.Duration
	// CompactWALBytes triggers a compaction as soon as the active WAL
	// generation exceeds this many bytes, independent of the timer, so
	// a write storm cannot grow an unbounded replay tail between ticks.
	// 0 means DefaultCompactWALBytes; negative disables the byte
	// trigger.
	CompactWALBytes int64
	// CompactWALRecords is the same trigger on the active generation's
	// record count. 0 means DefaultCompactWALRecords; negative disables
	// the record trigger.
	CompactWALRecords int64
	// NoSync skips fsync entirely. Only for tests.
	NoSync bool
}

// DefaultSnapshotInterval is the default WAL compaction cadence.
const DefaultSnapshotInterval = 5 * time.Minute

// Default WAL growth bounds: a compaction fires when the active
// generation crosses either, whatever the timer says. Sized so the
// replay tail stays a small multiple of a typical recovery budget
// (~2M records/s replay) while write-idle deployments never compact
// early.
const (
	DefaultCompactWALBytes   = int64(256 << 20)
	DefaultCompactWALRecords = int64(2_000_000)
)

// compactCheckInterval is how often the compactor polls the WAL growth
// triggers; two atomic loads per tick, so the poll is effectively free.
const compactCheckInterval = time.Second

// PersistentRegistry is a Registry whose contents survive restarts. It
// embeds a fully functional Registry — every query and mutation method
// works unchanged, and mutations arriving through any path (Upsert,
// UpsertBatch, Remove, Feed, TTL eviction) are appended to a
// write-ahead log and periodically compacted into a snapshot.
//
// Open recovers the previous state before returning: the newest
// snapshot is loaded through UpsertBatch — which bulk-builds the
// spatial index per shard in one O(n log n) pass — and the WAL tail is
// replayed on top. Entry UpdatedAt times are preserved, so TTL
// eviction remains correct across downtime: entries that went stale
// while the service was down age out on the first janitor sweep
// instead of being granted a fresh lease.
//
// Durability is group-committed: the WAL is fsynced every
// FlushInterval, so a hard crash can lose at most that window of
// mutations (a graceful Close loses nothing). Coordinate entries are
// continuously re-published by their nodes, which makes that window an
// easy trade for mutation paths that never block on the disk.
type PersistentRegistry struct {
	*Registry
	store       *persist.Store
	interval    time.Duration
	maxWALBytes int64
	maxWALRecs  int64

	closeOnce sync.Once
	closeErr  error
	done      chan struct{}
	wg        sync.WaitGroup
}

// storeTap is the persistence layer's change-stream consumer: a
// synchronous tap that forwards every sequenced event to the store's
// log. It runs inline under the feed lock (hence under the publishing
// shard's lock); Log calls only enqueue — the store's flusher owns the
// disk — so the tap never blocks a mutation. Being a tap rather than a
// bounded subscriber is what guarantees the WAL misses nothing.
func storeTap(s *persist.Store) func(changefeed.Event) {
	return func(ev changefeed.Event) {
		switch ev.Op {
		case changefeed.OpUpsert:
			s.LogUpsert(persist.Entry{
				ID:        ev.Entry.ID,
				Coord:     ev.Entry.Coord,
				Error:     ev.Entry.Error,
				UpdatedAt: ev.Entry.UpdatedAt,
			}, ev.Seq, ev.Epoch)
		case changefeed.OpRemove:
			s.LogRemove(ev.ID, ev.Seq, ev.Epoch)
		case changefeed.OpEvict:
			s.LogEvict(ev.IDs, ev.Seq, ev.Epoch)
		}
	}
}

// OpenPersistentRegistry opens the data directory, recovers the
// persisted entries into a new Registry, and starts logging mutations
// and compacting snapshots. Call Close to flush and release it.
func OpenPersistentRegistry(cfg PersistentRegistryConfig) (*PersistentRegistry, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("netcoord: persistent registry: empty data directory")
	}
	dim := cfg.Registry.Dimension
	if dim == 0 {
		dim = DefaultConfig().Dimension
	}
	if dim > coord.MaxDimension {
		return nil, fmt.Errorf("netcoord: persistent registry: dimension %d exceeds persistable maximum %d", dim, coord.MaxDimension)
	}
	interval := cfg.SnapshotInterval
	if interval == 0 {
		interval = DefaultSnapshotInterval
	}
	maxWALBytes := cfg.CompactWALBytes
	if maxWALBytes == 0 {
		maxWALBytes = DefaultCompactWALBytes
	}
	maxWALRecs := cfg.CompactWALRecords
	if maxWALRecs == 0 {
		maxWALRecs = DefaultCompactWALRecords
	}

	store, recovered, err := persist.Open(cfg.Dir, persist.Options{
		FlushInterval: cfg.FlushInterval,
		NoSync:        cfg.NoSync,
	})
	if err != nil {
		return nil, fmt.Errorf("netcoord: persistent registry: %w", err)
	}
	// Build the registry with its janitor deferred and its change
	// stream uninstalled: the feed must be seeded with the recovered
	// sequence and given its WAL tap before any background goroutine
	// can mutate — an eviction during recovery would otherwise be
	// published with a reused sequence, or not logged at all.
	regCfg := cfg.Registry
	streamBuf := regCfg.ChangeStreamBuffer
	if streamBuf <= 0 {
		streamBuf = DefaultChangeStreamBuffer
	}
	regCfg.ChangeStreamBuffer = 0
	reg, err := newRegistry(regCfg)
	if err != nil {
		_ = store.Close()
		return nil, err
	}
	// Ids the wire format cannot encode are rejected at upsert time;
	// accepting them would make those entries silently non-durable and
	// wedge every compaction.
	reg.validateID = persist.ValidateID
	if len(recovered) > 0 {
		batch := make([]RegistryEntry, len(recovered))
		for i, e := range recovered {
			batch[i] = RegistryEntry{ID: e.ID, Coord: e.Coord, Error: e.Error, UpdatedAt: e.UpdatedAt, Seq: e.Seq}
		}
		// Every shard is empty, so this lands on the index.Build bulk
		// path: one balanced O(n log n) construction per shard instead
		// of n incremental inserts. UpdatedAt values are preserved
		// (UpsertBatch only stamps zero timestamps).
		if err := reg.UpsertBatch(batch); err != nil {
			reg.Close()
			_ = store.Close()
			return nil, fmt.Errorf("netcoord: persistent registry: recovered state rejected (was the directory written with a different -dim?): %w", err)
		}
	}
	// Install the change stream only after recovery, so recovered
	// entries are not re-published into the log they came from: the
	// feed continues from the last persisted sequence — and the last
	// persisted fencing epoch, so a promoted leader keeps fencing after
	// a restart — the store consumes it as a tap, the recovered
	// tombstone ring restores removal knowledge for delta
	// re-bootstraps, and only then may the janitor start evicting.
	rec := store.Recovery()
	feed := changefeed.New(streamBuf, rec.LastSeq)
	feed.SetEpoch(rec.LastEpoch)
	if floor, tombs := store.RecoveredTombstones(); len(tombs) > 0 || floor > 0 {
		seed := make([]changefeed.Tombstone, len(tombs))
		for i, t := range tombs {
			seed[i] = changefeed.Tombstone{Seq: t.Seq, ID: t.ID}
		}
		feed.SeedTombstones(floor, seed)
	}
	feed.Tap(storeTap(store))
	reg.installFeed(feed)
	reg.startJanitor()

	p := &PersistentRegistry{
		Registry:    reg,
		store:       store,
		interval:    interval,
		maxWALBytes: maxWALBytes,
		maxWALRecs:  maxWALRecs,
		done:        make(chan struct{}),
	}
	if interval > 0 {
		p.wg.Add(1)
		go p.compactor()
	}
	return p, nil
}

// compactor folds the WAL into a fresh snapshot every SnapshotInterval,
// and early whenever the active generation's growth crosses the
// byte/record bounds — a write storm is bounded by the trigger, not by
// how much tail can accumulate before the next timer tick.
func (p *PersistentRegistry) compactor() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.interval)
	defer ticker.Stop()
	check := time.NewTicker(compactCheckInterval)
	defer check.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-ticker.C:
			// Compaction failures (e.g. disk full) must not kill the
			// registry; the WAL keeps growing and the next tick retries.
			_ = p.compactAs("timer")
			ticker.Reset(p.interval)
		case <-check.C:
			if reason, hit := p.walTrigger(); hit {
				if p.compactAs(reason) == nil {
					// A fresh snapshot just landed; push the timer out a
					// full interval so it does not immediately re-compact
					// an empty tail.
					ticker.Reset(p.interval)
				}
			}
		}
	}
}

// walTrigger reports whether the active WAL generation has outgrown
// the configured bounds, and which bound fired.
func (p *PersistentRegistry) walTrigger() (reason string, hit bool) {
	st := p.store.Stats()
	if p.maxWALBytes > 0 && st.WALBytes >= p.maxWALBytes {
		return "wal-bytes", true
	}
	if p.maxWALRecs > 0 && st.WALGenRecords >= uint64(p.maxWALRecs) {
		return "wal-records", true
	}
	return "", false
}

// Compact folds the current WAL into a fresh snapshot now. The
// background compactor calls this on its timer and on WAL growth; it
// is exported for deployments that prefer to schedule compaction
// themselves (e.g. before a planned restart, to make recovery fastest).
func (p *PersistentRegistry) Compact() error { return p.compactAs("manual") }

func (p *PersistentRegistry) compactAs(reason string) error {
	return p.store.Compact(reason, func() (persist.Capture, error) {
		// Sequence before state: the snapshot is then a superset of the
		// stream at seq, and replay above seq converges exactly. The
		// capture also carries the fencing epoch and the tombstone ring
		// so promotion and delta re-bootstraps survive restarts.
		c := persist.Capture{
			Seq:   p.Registry.ChangeSeq(),
			Epoch: p.Registry.ChangeEpoch(),
		}
		if feed := p.Registry.getFeed(); feed != nil {
			floor, tombs := feed.Tombstones()
			c.TombstoneFloor = floor
			c.Tombstones = make([]persist.Tombstone, len(tombs))
			for i, t := range tombs {
				c.Tombstones[i] = persist.Tombstone{Seq: t.Seq, ID: t.ID}
			}
		}
		snap := p.Registry.Snapshot()
		c.Entries = make([]persist.Entry, len(snap))
		for i, e := range snap {
			c.Entries[i] = persist.Entry{ID: e.ID, Coord: e.Coord, Error: e.Error, UpdatedAt: e.UpdatedAt}
		}
		return c, nil
	})
}

// Fence bumps the registry's fencing epoch and rotates the WAL into a
// fresh, epoch-stamped snapshot — the durable half of promoting this
// process to (or re-asserting it as) the authoritative leader. Every
// mutation applied after Fence returns carries the new epoch, so
// streams still flowing from a deposed leader (stuck at the old epoch)
// are rejected by followers and watchers. The compaction is what makes
// the bump durable immediately: a crash right after Fence recovers the
// new epoch from the snapshot instead of reverting to the old one.
func (p *PersistentRegistry) Fence() (uint64, error) {
	feed := p.Registry.getFeed()
	if feed == nil {
		return 0, ErrChangeStreamDisabled
	}
	epoch := feed.Epoch() + 1
	feed.SetEpoch(epoch)
	if err := p.compactAs("promote"); err != nil {
		return epoch, err
	}
	return epoch, nil
}

// ChangesSince returns up to max events with sequence > since, oldest
// first (max <= 0 means no limit). Unlike the in-memory registry's
// method, history older than the ring is replayed from the WAL on
// disk, so a consumer can resume from any sequence at or above the
// current snapshot's capture point; only below that is
// ErrChangeHistoryTruncated returned and a snapshot re-bootstrap
// required.
func (p *PersistentRegistry) ChangesSince(since uint64, max int) ([]ChangeEvent, error) {
	evs, err := p.Registry.ChangesSince(since, max)
	if err == nil || !errors.Is(err, ErrChangeHistoryTruncated) {
		return evs, err
	}
	recs, truncated, terr := p.store.TailSince(since, max)
	if terr != nil {
		return nil, fmt.Errorf("netcoord: persistent registry: wal tail: %w", terr)
	}
	if truncated {
		return nil, fmt.Errorf("%w (snapshot floor %d, requested %d)", ErrChangeHistoryTruncated, p.store.Stats().HistoryFloor, since+1)
	}
	out := make([]ChangeEvent, 0, len(recs))
	for _, rec := range recs {
		ev := ChangeEvent{Seq: rec.Seq, Epoch: rec.Epoch}
		switch rec.Op {
		case persist.OpUpsert:
			entry := toChangeEntry(RegistryEntry{
				ID:        rec.Entry.ID,
				Coord:     rec.Entry.Coord,
				Error:     rec.Entry.Error,
				UpdatedAt: rec.Entry.UpdatedAt,
			})
			ev.Op = ChangeUpsert
			ev.Entry = &entry
		case persist.OpRemove:
			ev.Op = ChangeRemove
			ev.ID = rec.ID
		case persist.OpEvict:
			ev.Op = ChangeEvict
			ev.IDs = rec.IDs
		default:
			continue
		}
		out = append(out, ev)
	}
	return out, nil
}

// Sync forces a WAL group commit: every mutation applied before the
// call is durable when it returns.
func (p *PersistentRegistry) Sync() error { return p.store.Sync() }

// Recovery reports what Open reconstructed from the data directory.
func (p *PersistentRegistry) Recovery() persist.RecoveryStats { return p.store.Recovery() }

// Err returns the persistence layer's sticky I/O error, if it has
// failed. A failed store keeps the registry serving (availability over
// durability) but mutations are no longer being logged — services
// should surface this to their callers, as ncserve does on every
// mutation response and in /stats.
func (p *PersistentRegistry) Err() error { return p.store.Err() }

// PersistStats snapshots the persistence layer's operational counters.
func (p *PersistentRegistry) PersistStats() persist.StoreStats { return p.store.Stats() }

// Close stops the compactor, the TTL janitor, and any feeds, then
// performs a final WAL commit and releases the data directory. It
// returns the store's sticky I/O error, if persistence had failed.
func (p *PersistentRegistry) Close() error {
	p.closeOnce.Do(func() {
		close(p.done)
		p.wg.Wait()
		// Stop the registry's own background work (janitor, feeds)
		// first so no mutations race the final flush.
		p.Registry.Close()
		p.closeErr = p.store.Close()
	})
	return p.closeErr
}
