package netcoord

import (
	"fmt"
	"sync"
	"time"

	"netcoord/internal/coord"
	"netcoord/internal/persist"
)

// PersistentRegistryConfig assembles a PersistentRegistry.
type PersistentRegistryConfig struct {
	// Registry configures the in-memory registry being persisted. Its
	// Dimension must fit the coordinate wire format (<= 16).
	Registry RegistryConfig
	// Dir is the data directory holding the snapshot and WAL files. It
	// is created if missing. Exactly one open registry may use a
	// directory at a time.
	Dir string
	// SnapshotInterval is how often the WAL is compacted into a fresh
	// snapshot; 0 means DefaultSnapshotInterval, negative disables the
	// background compactor (call Compact yourself).
	SnapshotInterval time.Duration
	// FlushInterval is the WAL group-commit window: a mutation is
	// durable at most this long after the call that applied it returns.
	// 0 means the persist layer's default (50ms).
	FlushInterval time.Duration
	// NoSync skips fsync entirely. Only for tests.
	NoSync bool
}

// DefaultSnapshotInterval is the default WAL compaction cadence.
const DefaultSnapshotInterval = 5 * time.Minute

// PersistentRegistry is a Registry whose contents survive restarts. It
// embeds a fully functional Registry — every query and mutation method
// works unchanged, and mutations arriving through any path (Upsert,
// UpsertBatch, Remove, Feed, TTL eviction) are appended to a
// write-ahead log and periodically compacted into a snapshot.
//
// Open recovers the previous state before returning: the newest
// snapshot is loaded through UpsertBatch — which bulk-builds the
// spatial index per shard in one O(n log n) pass — and the WAL tail is
// replayed on top. Entry UpdatedAt times are preserved, so TTL
// eviction remains correct across downtime: entries that went stale
// while the service was down age out on the first janitor sweep
// instead of being granted a fresh lease.
//
// Durability is group-committed: the WAL is fsynced every
// FlushInterval, so a hard crash can lose at most that window of
// mutations (a graceful Close loses nothing). Coordinate entries are
// continuously re-published by their nodes, which makes that window an
// easy trade for mutation paths that never block on the disk.
type PersistentRegistry struct {
	*Registry
	store    *persist.Store
	interval time.Duration

	closeOnce sync.Once
	closeErr  error
	done      chan struct{}
	wg        sync.WaitGroup
}

// storeRecorder adapts the registry's mutation hook to the store's log.
// Log calls only enqueue (the store's flusher owns the disk), so they
// are safe under the shard locks the hook is invoked with.
type storeRecorder struct {
	s *persist.Store
}

func (r storeRecorder) recordUpsert(e RegistryEntry) {
	r.s.LogUpsert(persist.Entry{ID: e.ID, Coord: e.Coord, Error: e.Error, UpdatedAt: e.UpdatedAt})
}

func (r storeRecorder) recordRemove(id string) { r.s.LogRemove(id) }

func (r storeRecorder) recordEvict(ids []string) { r.s.LogEvict(ids) }

// OpenPersistentRegistry opens the data directory, recovers the
// persisted entries into a new Registry, and starts logging mutations
// and compacting snapshots. Call Close to flush and release it.
func OpenPersistentRegistry(cfg PersistentRegistryConfig) (*PersistentRegistry, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("netcoord: persistent registry: empty data directory")
	}
	dim := cfg.Registry.Dimension
	if dim == 0 {
		dim = DefaultConfig().Dimension
	}
	if dim > coord.MaxDimension {
		return nil, fmt.Errorf("netcoord: persistent registry: dimension %d exceeds persistable maximum %d", dim, coord.MaxDimension)
	}
	interval := cfg.SnapshotInterval
	if interval == 0 {
		interval = DefaultSnapshotInterval
	}

	store, recovered, err := persist.Open(cfg.Dir, persist.Options{
		FlushInterval: cfg.FlushInterval,
		NoSync:        cfg.NoSync,
	})
	if err != nil {
		return nil, fmt.Errorf("netcoord: persistent registry: %w", err)
	}
	// Build the registry with its janitor deferred: the recorder must be
	// installed before any background goroutine can mutate (an eviction
	// during recovery would go unlogged and resurrect on the next open).
	reg, err := newRegistry(cfg.Registry)
	if err != nil {
		_ = store.Close()
		return nil, err
	}
	// Ids the wire format cannot encode are rejected at upsert time;
	// accepting them would make those entries silently non-durable and
	// wedge every compaction.
	reg.validateID = persist.ValidateID
	if len(recovered) > 0 {
		batch := make([]RegistryEntry, len(recovered))
		for i, e := range recovered {
			batch[i] = RegistryEntry{ID: e.ID, Coord: e.Coord, Error: e.Error, UpdatedAt: e.UpdatedAt}
		}
		// Every shard is empty, so this lands on the index.Build bulk
		// path: one balanced O(n log n) construction per shard instead
		// of n incremental inserts. UpdatedAt values are preserved
		// (UpsertBatch only stamps zero timestamps).
		if err := reg.UpsertBatch(batch); err != nil {
			reg.Close()
			_ = store.Close()
			return nil, fmt.Errorf("netcoord: persistent registry: recovered state rejected (was the directory written with a different -dim?): %w", err)
		}
	}
	// Hook up logging only after recovery, so recovered entries are not
	// re-appended to the log they came from; only then may the janitor
	// start evicting.
	reg.recorder = storeRecorder{s: store}
	reg.startJanitor()

	p := &PersistentRegistry{
		Registry: reg,
		store:    store,
		interval: interval,
		done:     make(chan struct{}),
	}
	if interval > 0 {
		p.wg.Add(1)
		go p.compactor()
	}
	return p, nil
}

// compactor periodically folds the WAL into a fresh snapshot.
func (p *PersistentRegistry) compactor() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-ticker.C:
			// Compaction failures (e.g. disk full) must not kill the
			// registry; the WAL keeps growing and the next tick retries.
			_ = p.Compact()
		}
	}
}

// Compact folds the current WAL into a fresh snapshot now. The
// background compactor calls this every SnapshotInterval; it is
// exported for deployments that prefer to schedule compaction
// themselves (e.g. before a planned restart, to make recovery fastest).
func (p *PersistentRegistry) Compact() error {
	return p.store.Compact(func() ([]persist.Entry, error) {
		snap := p.Registry.Snapshot()
		entries := make([]persist.Entry, len(snap))
		for i, e := range snap {
			entries[i] = persist.Entry{ID: e.ID, Coord: e.Coord, Error: e.Error, UpdatedAt: e.UpdatedAt}
		}
		return entries, nil
	})
}

// Sync forces a WAL group commit: every mutation applied before the
// call is durable when it returns.
func (p *PersistentRegistry) Sync() error { return p.store.Sync() }

// Recovery reports what Open reconstructed from the data directory.
func (p *PersistentRegistry) Recovery() persist.RecoveryStats { return p.store.Recovery() }

// Err returns the persistence layer's sticky I/O error, if it has
// failed. A failed store keeps the registry serving (availability over
// durability) but mutations are no longer being logged — services
// should surface this to their callers, as ncserve does on every
// mutation response and in /stats.
func (p *PersistentRegistry) Err() error { return p.store.Err() }

// PersistStats snapshots the persistence layer's operational counters.
func (p *PersistentRegistry) PersistStats() persist.StoreStats { return p.store.Stats() }

// Close stops the compactor, the TTL janitor, and any feeds, then
// performs a final WAL commit and releases the data directory. It
// returns the store's sticky I/O error, if persistence had failed.
func (p *PersistentRegistry) Close() error {
	p.closeOnce.Do(func() {
		close(p.done)
		p.wg.Wait()
		// Stop the registry's own background work (janitor, feeds)
		// first so no mutations race the final flush.
		p.Registry.Close()
		p.closeErr = p.store.Close()
	})
	return p.closeErr
}
