package persist

import (
	"fmt"
	"testing"
	"time"

	"netcoord/internal/coord"
)

// BenchmarkWALReplay measures raw log replay throughput: how fast
// recovery chews through a WAL of upsert records (decode + checksum +
// map apply), independent of registry index construction.
func BenchmarkWALReplay(b *testing.B) {
	const n = 100_000
	dir := b.TempDir()
	s, _, err := Open(dir, Options{NoSync: true, FlushInterval: time.Hour})
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	at := time.Unix(1_700_000_000, 0)
	for i := 0; i < n; i++ {
		s.LogUpsert(Entry{
			ID:        fmt.Sprintf("node-%07d", i),
			Coord:     coord.New(float64(i%1009), float64(i%601), float64(i%251)),
			Error:     0.2,
			UpdatedAt: at,
		}, uint64(i+1), 1)
	}
	if err := s.Close(); err != nil {
		b.Fatalf("Close: %v", err)
	}
	path := walPath(dir, 1)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		state := make(map[string]Entry, n)
		rep, err := replayWAL(path, 1, func(rec Record) {
			if rec.Op == OpUpsert {
				state[rec.Entry.ID] = rec.Entry
			}
		})
		if err != nil {
			b.Fatalf("replay: %v", err)
		}
		if rep.records != n || len(state) != n {
			b.Fatalf("replayed %d records into %d entries", rep.records, len(state))
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkLogUpsert measures the append hot path: encode + frame +
// buffer enqueue, i.e. the cost a registry mutation pays while holding
// its shard lock.
func BenchmarkLogUpsert(b *testing.B) {
	dir := b.TempDir()
	s, _, err := Open(dir, Options{NoSync: true, FlushInterval: 10 * time.Millisecond})
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	defer s.Close()
	e := Entry{
		ID:        "node-0000001",
		Coord:     coord.New(1, 2, 3),
		Error:     0.2,
		UpdatedAt: time.Unix(1_700_000_000, 0),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.LogUpsert(e, uint64(i+1), 1)
	}
}
