package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"netcoord/internal/telemetry"
)

// Options tunes a Store.
type Options struct {
	// FlushInterval is the group-commit window: appended records become
	// durable at most this long after LogUpsert/LogRemove/LogEvict
	// returns. 0 means DefaultFlushInterval.
	FlushInterval time.Duration
	// FlushBatch flushes early once this many records are pending,
	// bounding buffered memory under write storms. 0 means
	// DefaultFlushBatch.
	FlushBatch int
	// NoSync skips every fsync. Only for tests: a crash can then lose
	// arbitrarily much, not just the flush window.
	NoSync bool
}

// Store defaults.
const (
	// DefaultFlushInterval is the default group-commit window.
	DefaultFlushInterval = 50 * time.Millisecond
	// DefaultFlushBatch is the default early-flush record count.
	DefaultFlushBatch = 512
)

// ErrClosed is returned by operations on a closed Store.
var ErrClosed = errors.New("persist: store closed")

// RecoveryStats describes what Open reconstructed.
type RecoveryStats struct {
	// SnapshotGen is the generation of the snapshot loaded (0 = none).
	SnapshotGen uint64 `json:"snapshot_gen"`
	// SnapshotEntries is how many entries the snapshot held.
	SnapshotEntries int `json:"snapshot_entries"`
	// CorruptSnapshots counts snapshot files that failed verification
	// and were skipped in favor of an older generation.
	CorruptSnapshots int `json:"corrupt_snapshots"`
	// WALFiles and WALRecords count the log generations and complete
	// records replayed on top of the snapshot.
	WALFiles   int `json:"wal_files"`
	WALRecords int `json:"wal_records"`
	// TornBytes is how many trailing bytes were discarded from torn or
	// truncated log tails.
	TornBytes int64 `json:"torn_bytes"`
	// QuarantinedWALs counts log generations that contained a corrupt
	// record (complete frame, failed verification — media damage, not a
	// crash tail): the damaged file is renamed aside with a .corrupt
	// suffix, its valid prefix is rewritten in place, and replay of that
	// generation stops at the bad record. The typed cause is available
	// through QuarantineErr.
	QuarantinedWALs int `json:"quarantined_wals"`
	// Entries is the recovered live-entry count.
	Entries int `json:"entries"`
	// LastSeq is the highest change-stream sequence persisted — the
	// maximum of the snapshot's capture sequence and every replayed WAL
	// record's sequence. The owner seeds its change stream here so
	// sequence numbers survive restarts instead of restarting at zero.
	LastSeq uint64 `json:"last_seq"`
	// LastEpoch is the highest fencing epoch persisted — the maximum of
	// the snapshot's epoch and every replayed record's. The owner seeds
	// its change stream here so a promoted leader keeps fencing after a
	// restart.
	LastEpoch uint64 `json:"last_epoch"`
	// TombstoneFloor and Tombstones describe the recovered removal
	// knowledge (snapshot ring plus replayed removal records); the ids
	// themselves are available through RecoveredTombstones.
	TombstoneFloor uint64 `json:"tombstone_floor"`
	Tombstones     int    `json:"tombstones"`
}

// StoreStats snapshots a Store's operational counters.
type StoreStats struct {
	// Gen is the active WAL generation.
	Gen uint64 `json:"gen"`
	// WALRecords counts records durably written to the log since Open
	// (enqueued records are counted once their group commit succeeds;
	// discarded ones land in Dropped instead). WALBytes is the active
	// generation's size on disk and WALGenRecords the records committed
	// to it — both reset at each compaction, so graph them as gauges,
	// not throughput counters; they are also the compactor's
	// tail-growth triggers.
	WALRecords    uint64 `json:"wal_records"`
	WALBytes      int64  `json:"wal_bytes"`
	WALGenRecords uint64 `json:"wal_gen_records"`
	// Flushes and Syncs count group commits and the fsyncs they issued.
	Flushes uint64 `json:"flushes"`
	Syncs   uint64 `json:"syncs"`
	// Compactions counts completed snapshot compactions;
	// CompactFailures counts attempts that failed (the WAL keeps
	// growing until one succeeds) and CompactErr is the most recent
	// failure. CompactReasons breaks completed compactions down by
	// what triggered them (timer, wal-bytes, wal-records, manual) and
	// LastCompactReason is the most recent trigger.
	Compactions       uint64            `json:"compactions"`
	CompactFailures   uint64            `json:"compact_failures"`
	CompactErr        string            `json:"compact_error,omitempty"`
	CompactReasons    map[string]uint64 `json:"compactions_by_reason,omitempty"`
	LastCompactReason string            `json:"last_compact_reason,omitempty"`
	// HistoryFloor is the change-stream sequence of the current
	// snapshot: mutations at or below it exist only folded into the
	// snapshot, so a stream consumer must resume above it (or
	// re-bootstrap from the snapshot).
	HistoryFloor uint64 `json:"history_floor"`
	// Dropped counts records discarded because the store had already
	// failed or closed.
	Dropped uint64 `json:"dropped_records"`
	// Err is the sticky I/O error, if the store has failed.
	Err string `json:"error,omitempty"`
	// FsyncNs summarizes the latency of each WAL fsync — the tail of
	// this distribution IS the durability window's real-world floor,
	// whatever FlushInterval promises.
	FsyncNs telemetry.Summary `json:"fsync_ns"`
	// CompactionNs summarizes the duration of completed compactions.
	CompactionNs telemetry.Summary `json:"compaction_ns"`
}

// Store is the on-disk half of a persistent registry: one directory
// holding the newest snapshot plus the WAL generations above it.
//
// Log appends are asynchronous group commits: LogUpsert and friends
// enqueue into an in-memory buffer and return; a background flusher
// writes and fsyncs the batch every FlushInterval (or sooner under
// load). Sync forces a commit, Close performs a final one. Log methods
// never block on the disk, so they are safe to call under the
// registry's shard locks — which is exactly where the caller invokes
// them, to keep per-id log order identical to apply order.
//
// Store is safe for concurrent use.
type Store struct {
	dir  string
	opts Options
	lock *os.File // exclusive flock on the directory; nil where unsupported

	// ioMu serializes file writes, fsyncs, and WAL rotation; mu guards
	// the append buffer and active-file pointer and is never held
	// across I/O, so appends stay wait-free with respect to the disk.
	ioMu  sync.Mutex
	dirty bool // file bytes written but not fsynced; guarded by ioMu

	mu      sync.Mutex
	walFile *os.File
	gen     uint64
	buf     []byte // pending framed records
	swap    []byte // previous buffer, recycled each flush
	scratch []byte // payload encode scratch
	pending int
	err     error
	closed  bool

	walRecords    atomic.Uint64
	walBytes      atomic.Int64
	walGenRecords atomic.Uint64
	flushes       atomic.Uint64
	syncs         atomic.Uint64
	compactions   atomic.Uint64
	compactErrs   atomic.Uint64
	dropped       atomic.Uint64
	histFloor     atomic.Uint64

	// fsyncLat times each WAL fsync; compactDur each completed
	// compaction (snapshot write included).
	fsyncLat   *telemetry.Histogram
	compactDur *telemetry.Histogram

	compactErrMu      sync.Mutex
	lastCompactErr    string
	lastCompactReason string
	compactReasons    map[string]uint64

	compactMu sync.Mutex
	recovery  RecoveryStats
	// recoveredTombs is the removal knowledge reconstructed at Open
	// (snapshot ring plus replayed removal records), sorted by sequence;
	// quarantineErr is the typed cause of the first WAL quarantine.
	recoveredTombs []Tombstone
	tombFloor      uint64
	quarantineErr  error

	kick chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

// Open opens (creating if needed) the store directory, recovers the
// persisted state — newest readable snapshot plus replayed WAL tail —
// and returns the live entries sorted by id. The returned store is
// ready for logging; pair every recovered mutation stream with exactly
// one writer, as concurrent stores on one directory corrupt each other.
func Open(dir string, opts Options) (*Store, []Entry, error) {
	if opts.FlushInterval <= 0 {
		opts.FlushInterval = DefaultFlushInterval
	}
	if opts.FlushBatch <= 0 {
		opts.FlushBatch = DefaultFlushBatch
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("persist: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, nil, err
	}
	ok := false
	defer func() {
		if !ok && lock != nil {
			_ = lock.Close()
		}
	}()
	// Sweep temp snapshots leaked by a crash mid-compaction (the rename
	// never happened, so they are garbage no recovery path reads).
	if tmps, err := filepath.Glob(filepath.Join(dir, "snap-*.tmp")); err == nil {
		for _, tmp := range tmps {
			_ = os.Remove(tmp)
		}
	}
	snaps, wals, err := scanDir(dir)
	if err != nil {
		return nil, nil, err
	}
	s := &Store{
		dir:            dir,
		opts:           opts,
		lock:           lock,
		compactReasons: make(map[string]uint64),
		fsyncLat:       telemetry.NewHistogram(),
		compactDur:     telemetry.NewHistogram(),
		kick:           make(chan struct{}, 1),
		done:           make(chan struct{}),
	}

	// Load the newest snapshot that verifies; fall back generation by
	// generation on corruption (possible only through media faults —
	// compaction publishes snapshots atomically). If snapshots exist
	// but none verifies, opening must fail: proceeding would silently
	// "recover" only the last WAL generation's mutations and present a
	// near-empty registry as a successful warm restart.
	state := make(map[string]Entry)
	baseGen := uint64(0)
	lastSeq := uint64(0)
	lastEpoch := uint64(0)
	var tombs []Tombstone
	tombFloor := uint64(0)
	loadedSnap := len(snaps) == 0
	for i := len(snaps) - 1; i >= 0; i-- {
		sc, err := loadSnapshot(dir, snaps[i])
		if err != nil {
			s.recovery.CorruptSnapshots++
			continue
		}
		for _, e := range sc.entries {
			// The snapshot format carries no per-entry sequence; the
			// capture sequence over-approximates every entry's, which
			// errs toward resending in delta snapshots, never losing.
			e.Seq = sc.seq
			state[e.ID] = e
		}
		baseGen = snaps[i]
		lastSeq = sc.seq
		lastEpoch = sc.epoch
		tombs = append(tombs, sc.tombs...)
		tombFloor = sc.tombFloor
		s.histFloor.Store(sc.seq)
		s.recovery.SnapshotGen = baseGen
		s.recovery.SnapshotEntries = len(sc.entries)
		loadedSnap = true
		break
	}
	if !loadedSnap {
		return nil, nil, fmt.Errorf("persist: every snapshot in %s failed verification; refusing to open with partial state (restore the directory from backup, or delete the snap-*.ncs files to start from the WAL alone)", dir)
	}

	// Replay every WAL generation at or above the snapshot, in order.
	// Generations below it are fully contained in the snapshot.
	apply := func(rec Record) {
		if rec.Seq > lastSeq {
			lastSeq = rec.Seq
		}
		if rec.Epoch > lastEpoch {
			lastEpoch = rec.Epoch
		}
		switch rec.Op {
		case OpUpsert:
			rec.Entry.Seq = rec.Seq
			state[rec.Entry.ID] = rec.Entry
		case OpRemove:
			delete(state, rec.ID)
			tombs = append(tombs, Tombstone{Seq: rec.Seq, ID: rec.ID})
		case OpEvict:
			for _, id := range rec.IDs {
				delete(state, id)
				tombs = append(tombs, Tombstone{Seq: rec.Seq, ID: id})
			}
		}
	}
	activeGen := baseGen
	if activeGen == 0 {
		activeGen = 1
	}
	var activeRep walReplay
	activeExists := false
	for _, gen := range wals {
		if gen < baseGen {
			continue
		}
		rep, err := replayWAL(walPath(dir, gen), gen, apply)
		if err != nil {
			return nil, nil, err
		}
		if rep.corrupt {
			// Media damage inside the durable prefix: quarantine the
			// damaged file aside and rewrite its valid prefix in place,
			// so a later restart replays the same clean prefix instead
			// of tripping over the rot again. Replay of this generation
			// already stopped at the bad record; later generations are
			// still applied — their records are newer last-write-wins
			// state.
			if err := quarantineWAL(walPath(dir, gen), rep.validSize, opts.NoSync); err != nil {
				return nil, nil, err
			}
			s.recovery.QuarantinedWALs++
			if s.quarantineErr == nil {
				s.quarantineErr = rep.corruptErr
			}
			rep.tornBytes = 0 // the damage is quarantined, not discarded
		}
		s.recovery.WALFiles++
		s.recovery.WALRecords += rep.records
		s.recovery.TornBytes += rep.tornBytes
		if gen >= activeGen {
			activeGen = gen
			activeRep = rep
			activeExists = true
		}
	}

	// Open the newest generation for append (truncating any torn
	// tail), or start a fresh one.
	if activeExists && activeRep.validSize >= walHeaderSize {
		f, err := openWALForAppend(walPath(dir, activeGen), activeRep.validSize, opts.NoSync)
		if err != nil {
			return nil, nil, err
		}
		s.walFile = f
		s.walBytes.Store(activeRep.validSize)
	} else {
		f, err := createWAL(dir, activeGen, opts.NoSync)
		if err != nil {
			return nil, nil, err
		}
		s.walFile = f
		s.walBytes.Store(walHeaderSize)
	}
	s.gen = activeGen
	s.removeObsolete(baseGen)

	out := make([]Entry, 0, len(state))
	for _, e := range state {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	s.recovery.Entries = len(out)
	s.recovery.LastSeq = lastSeq
	s.recovery.LastEpoch = lastEpoch

	// Snapshot tombstones and replayed removal records overlap around
	// the rotation boundary (records logged between rotation and capture
	// appear in both); sort by sequence and drop exact duplicates so the
	// seeded ring stays ordered — floor accounting in the feed depends
	// on overwrite order matching sequence order.
	sort.Slice(tombs, func(i, j int) bool {
		if tombs[i].Seq != tombs[j].Seq {
			return tombs[i].Seq < tombs[j].Seq
		}
		return tombs[i].ID < tombs[j].ID
	})
	dedup := tombs[:0]
	for i, t := range tombs {
		if i > 0 && t == tombs[i-1] {
			continue
		}
		dedup = append(dedup, t)
	}
	s.recoveredTombs = dedup
	s.tombFloor = tombFloor
	s.recovery.TombstoneFloor = tombFloor
	s.recovery.Tombstones = len(dedup)

	s.wg.Add(1)
	go s.flusher()
	ok = true
	return s, out, nil
}

// Recovery reports what Open reconstructed.
func (s *Store) Recovery() RecoveryStats { return s.recovery }

// RecoveredTombstones returns the removal knowledge Open reconstructed:
// the floor (the sequence at or below which removals are unknown) and
// the tombstones, sorted by sequence. The owner seeds its change
// stream's tombstone ring here so delta re-bootstraps survive restarts
// and promotions. The slice is owned by the store; do not mutate.
func (s *Store) RecoveredTombstones() (floor uint64, tombs []Tombstone) {
	return s.tombFloor, s.recoveredTombs
}

// QuarantineErr returns the typed cause of the first WAL quarantine
// performed at Open (nil if none); errors.Is(err, ErrCorruptRecord)
// holds when set.
func (s *Store) QuarantineErr() error { return s.quarantineErr }

// quarantineWAL renames a corrupt WAL file aside (appending .corrupt,
// which scanDir ignores) and rewrites its valid prefix at the original
// path, so the clean records stay replayable on the next restart while
// the damaged bytes are preserved for forensics.
func quarantineWAL(path string, validSize int64, nosync bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("persist: quarantine read: %w", err)
	}
	if err := os.Rename(path, path+".corrupt"); err != nil {
		return fmt.Errorf("persist: quarantine rename: %w", err)
	}
	if validSize > int64(len(data)) {
		validSize = int64(len(data))
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: quarantine rewrite: %w", err)
	}
	if _, err := f.Write(data[:validSize]); err != nil {
		_ = f.Close()
		return fmt.Errorf("persist: quarantine rewrite: %w", err)
	}
	if !nosync {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return fmt.Errorf("persist: quarantine sync: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: quarantine close: %w", err)
	}
	if !nosync {
		if err := syncDir(filepath.Dir(path)); err != nil {
			return err
		}
	}
	return nil
}

// Stats snapshots operational counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	gen := s.gen
	err := s.err
	s.mu.Unlock()
	st := StoreStats{
		Gen:             gen,
		WALRecords:      s.walRecords.Load(),
		WALBytes:        s.walBytes.Load(),
		WALGenRecords:   s.walGenRecords.Load(),
		Flushes:         s.flushes.Load(),
		Syncs:           s.syncs.Load(),
		Compactions:     s.compactions.Load(),
		CompactFailures: s.compactErrs.Load(),
		Dropped:         s.dropped.Load(),
		HistoryFloor:    s.histFloor.Load(),
		FsyncNs:         s.fsyncLat.Summary(),
		CompactionNs:    s.compactDur.Summary(),
	}
	s.compactErrMu.Lock()
	st.CompactErr = s.lastCompactErr
	st.LastCompactReason = s.lastCompactReason
	if len(s.compactReasons) > 0 {
		st.CompactReasons = make(map[string]uint64, len(s.compactReasons))
		for k, v := range s.compactReasons {
			st.CompactReasons[k] = v
		}
	}
	s.compactErrMu.Unlock()
	if err != nil {
		st.Err = err.Error()
	}
	return st
}

// Err returns the sticky I/O error, if the store has failed.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// LogUpsert appends an upsert record for change-stream sequence seq,
// published under fencing epoch.
func (s *Store) LogUpsert(e Entry, seq, epoch uint64) {
	s.append(Record{Op: OpUpsert, Seq: seq, Epoch: epoch, Entry: e})
}

// LogRemove appends a remove record for change-stream sequence seq,
// published under fencing epoch.
func (s *Store) LogRemove(id string, seq, epoch uint64) {
	s.append(Record{Op: OpRemove, Seq: seq, Epoch: epoch, ID: id})
}

// LogEvict appends eviction records for ids, chunked by count and by
// encoded bytes so no single record approaches the frame size limit
// even when every id is at MaxIDLen. Chunks repeat seq — they are one
// logical event; replay is idempotent and stream reads never split an
// equal-sequence run.
func (s *Store) LogEvict(ids []string, seq, epoch uint64) {
	for len(ids) > 0 {
		n, bytes := 0, 0
		for n < len(ids) && n < evictChunk && bytes < evictChunkBytes {
			bytes += len(ids[n]) + 4
			n++
		}
		s.append(Record{Op: OpEvict, Seq: seq, Epoch: epoch, IDs: ids[:n]})
		ids = ids[n:]
	}
}

// append enqueues one record for the next group commit. Failures
// (encoding, or a store that already failed or closed) drop the record
// and count it; durability reporting is the flusher's job.
func (s *Store) append(rec Record) {
	s.mu.Lock()
	if s.err != nil || s.closed {
		s.mu.Unlock()
		s.dropped.Add(1)
		return
	}
	payload, err := appendRecordPayload(s.scratch[:0], rec)
	if err != nil || len(payload) > maxRecordSize {
		// An unencodable or oversized record would read back as
		// corruption and sever the log there; dropping only it is the
		// lesser evil (callers prevent this via ValidateID).
		s.scratch = payload[:0]
		s.mu.Unlock()
		s.dropped.Add(1)
		return
	}
	s.scratch = payload[:0]
	s.buf = appendFrame(s.buf, payload)
	s.pending++
	needKick := s.pending >= s.opts.FlushBatch
	s.mu.Unlock()
	if needKick {
		select {
		case s.kick <- struct{}{}:
		default:
		}
	}
}

// flusher group-commits pending records until Close.
func (s *Store) flusher() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.opts.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
		case <-s.kick:
		}
		_ = s.Sync()
	}
}

// Sync forces a group commit: every record appended before the call is
// written and fsynced when it returns.
func (s *Store) Sync() error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	return s.flushLocked()
}

// flushLocked writes and fsyncs the pending buffer. Caller holds ioMu.
// Records discarded on any failure path are added to the Dropped
// counter — the operator's signal for how much a disk fault lost.
func (s *Store) flushLocked() error {
	s.mu.Lock()
	data := s.buf
	n := s.pending
	f := s.walFile
	serr := s.err
	s.buf = s.swap[:0]
	s.swap = data
	s.pending = 0
	s.mu.Unlock()
	if serr != nil {
		// Records enqueued by appends that raced the failure are
		// unwritable now; count them instead of vanishing them.
		if n > 0 {
			s.dropped.Add(uint64(n))
		}
		return serr
	}
	if f == nil {
		if n > 0 {
			s.dropped.Add(uint64(n))
		}
		return ErrClosed
	}
	if len(data) > 0 {
		if _, err := f.Write(data); err != nil {
			s.dropped.Add(uint64(n))
			return s.fail(fmt.Errorf("persist: wal write: %w", err))
		}
		s.walBytes.Add(int64(len(data)))
		s.dirty = true
	}
	if s.dirty && !s.opts.NoSync {
		syncStart := time.Now()
		if err := f.Sync(); err != nil {
			// Page-cache bytes that never reached the platter are lost
			// records, not written ones: they belong in Dropped.
			s.dropped.Add(uint64(n))
			return s.fail(fmt.Errorf("persist: wal sync: %w", err))
		}
		s.fsyncLat.Observe(time.Since(syncStart).Nanoseconds())
		s.syncs.Add(1)
	}
	s.dirty = false
	// Only now — after the batch is durable (or fsync is disabled) —
	// does it count as written.
	if n > 0 {
		s.walRecords.Add(uint64(n))
		s.walGenRecords.Add(uint64(n))
		s.flushes.Add(1)
	}
	return nil
}

// fail records the first I/O error; the store stops accepting records
// (they are counted as dropped) but stays safe to query and close.
func (s *Store) fail(err error) error {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	err = s.err
	s.mu.Unlock()
	return err
}

// Compact rotates the WAL to a fresh generation, captures the caller's
// full current state, writes it as the new snapshot, and deletes the
// generations it obsoletes. reason names what triggered the compaction
// (timer, wal-bytes, wal-records, manual) and is recorded in Stats.
//
// capture MUST return the owner's live state as of some point after
// Compact was entered, together with the change-stream sequence read
// immediately BEFORE that state was captured — for a registry, the
// feed sequence then a plain Snapshot call. Reading the sequence first
// makes the state a superset of the stream at that sequence, so
// replaying records above it converges exactly. The
// rotation-before-capture order is the crash-safety invariant: every
// record in older generations describes a mutation applied before the
// capture, so the snapshot subsumes them, and the new generation's
// records replay idempotently over it. The capture also carries the
// stream's fencing epoch and tombstone ring, which persist in the
// snapshot so promotion and delta re-bootstraps survive restarts.
func (s *Store) Compact(reason string, capture func() (Capture, error)) error {
	err := s.compact(capture)
	s.compactErrMu.Lock()
	if err != nil {
		s.lastCompactErr = err.Error()
	} else {
		s.lastCompactReason = reason
		s.compactReasons[reason]++
	}
	s.compactErrMu.Unlock()
	if err != nil {
		s.compactErrs.Add(1)
	}
	return err
}

func (s *Store) compact(capture func() (Capture, error)) error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	start := time.Now()

	// Rotate: drain and fsync the old generation, then switch appends
	// to the new one.
	s.ioMu.Lock()
	if err := s.flushLocked(); err != nil {
		s.ioMu.Unlock()
		return err
	}
	s.mu.Lock()
	newGen := s.gen + 1
	s.mu.Unlock()
	f, err := createWAL(s.dir, newGen, s.opts.NoSync)
	if err != nil {
		s.ioMu.Unlock()
		return err
	}
	s.mu.Lock()
	old := s.walFile
	s.walFile = f
	s.gen = newGen
	s.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
	s.walBytes.Store(walHeaderSize)
	s.walGenRecords.Store(0)
	s.ioMu.Unlock()

	captured, err := capture()
	if err != nil {
		// The WAL rotated but no snapshot was written; recovery simply
		// replays both generations, so nothing is lost.
		return fmt.Errorf("persist: compaction capture: %w", err)
	}
	if err := writeSnapshot(s.dir, newGen, captured, s.opts.NoSync); err != nil {
		return err
	}
	// Generations below newGen are gone: the stream's history floor
	// rises to the capture sequence. Publish it before deleting so a
	// concurrent TailSince never reports "available" history that the
	// removal is about to delete (TailSince holds compactMu anyway;
	// this ordering is defense in depth).
	s.histFloor.Store(captured.Seq)
	s.removeObsolete(newGen)
	s.compactions.Add(1)
	s.compactDur.Observe(time.Since(start).Nanoseconds())
	return nil
}

// TailSince returns every durable WAL record with change-stream
// sequence > since, oldest first — the on-disk continuation of the
// in-memory ring for subscribers resuming from further back. It
// reports truncated=true when compaction has folded part of the
// requested range into the snapshot (since < the history floor); the
// caller must then re-bootstrap from a snapshot instead.
//
// max bounds the result length, except that a run of equal-sequence
// records (chunks of one eviction event) is never split across calls.
// max <= 0 means no limit. A best-effort Sync runs first so records
// still in the group-commit buffer become readable.
//
// Cost is a full read of the WAL generations on disk — acceptable for
// the rare late joiner; live tailing is served from the ring.
func (s *Store) TailSince(since uint64, max int) (recs []Record, truncated bool, err error) {
	_ = s.Sync() // a failed store can still serve what already hit disk
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	if since < s.histFloor.Load() {
		return nil, true, nil
	}
	_, wals, err := scanDir(s.dir)
	if err != nil {
		return nil, false, err
	}
	for _, gen := range wals {
		rep, rerr := replayWAL(walPath(s.dir, gen), gen, func(rec Record) {
			if rec.Seq <= since {
				return
			}
			if max > 0 && len(recs) >= max && rec.Seq != recs[len(recs)-1].Seq {
				return
			}
			recs = append(recs, rec)
		})
		if rerr != nil {
			return nil, false, rerr
		}
		if rep.corrupt {
			// Records past the damaged one are unreachable, and later
			// generations would leave a sequence gap — the one thing a
			// resumed stream must never contain. Serve the dense prefix
			// if any was collected; otherwise report truncation so the
			// consumer re-bootstraps from a snapshot.
			if len(recs) == 0 {
				return nil, true, nil
			}
			return recs, false, nil
		}
	}
	return recs, false, nil
}

// removeObsolete deletes snapshot and WAL generations strictly below
// keepGen. Removal failures are ignored: stale generations are retried
// at the next compaction and never affect correctness.
func (s *Store) removeObsolete(keepGen uint64) {
	snaps, wals, err := scanDir(s.dir)
	if err != nil {
		return
	}
	for _, gen := range snaps {
		if gen < keepGen {
			_ = os.Remove(snapPath(s.dir, gen))
		}
	}
	for _, gen := range wals {
		if gen < keepGen {
			_ = os.Remove(walPath(s.dir, gen))
		}
	}
}

// Close performs a final group commit and releases the WAL file. The
// store accepts no records afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return s.err
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()

	s.ioMu.Lock()
	err := s.flushLocked()
	s.mu.Lock()
	f := s.walFile
	s.walFile = nil
	s.mu.Unlock()
	s.ioMu.Unlock()
	if f != nil {
		if cerr := f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("persist: close wal: %w", cerr)
		}
	}
	if s.lock != nil {
		_ = s.lock.Close() // releases the directory flock
	}
	return err
}
