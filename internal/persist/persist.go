// Package persist is the registry's durability layer: an append-only
// write-ahead log of mutations plus periodic snapshot compaction, so a
// coordinate service restarts warm instead of forgetting every node and
// re-converging from the origin.
//
// The design follows the usual WAL/snapshot split:
//
//   - Every mutation (upsert, remove, evict) is appended to the current
//     WAL generation as a length- and checksum-framed record. Appends
//     only enqueue into an in-memory buffer; a background flusher
//     group-commits the buffer with one write+fsync per batch, so the
//     hot path never waits on the disk. The durability window is the
//     flush interval (plus whatever the OS holds) — an acceptable trade
//     for coordinate data, which peers re-publish continuously anyway.
//   - Compaction rotates the WAL to a new generation, captures the full
//     registry state, and writes it as a snapshot file (temp file +
//     fsync + atomic rename). Older generations are then deleted.
//   - Recovery loads the newest readable snapshot and replays every WAL
//     generation at or above it, in order. A torn or truncated final
//     record — the signature of a crash mid-append — ends replay at the
//     last complete record and the tail is discarded.
//
// The capture-after-rotation ordering makes recovery correct without
// any cross-file coordination: every mutation logged to an old
// generation was applied before the rotation, hence is contained in the
// snapshot; mutations logged to the new generation are replayed over
// the snapshot in log order, and replaying an already-applied prefix is
// idempotent because records are per-id last-write-wins.
package persist

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"netcoord/internal/coord"
)

// Op discriminates WAL record types.
type Op uint8

// The mutation kinds a registry produces.
const (
	// OpUpsert inserts or refreshes one entry.
	OpUpsert Op = 1
	// OpRemove deletes one entry by id.
	OpRemove Op = 2
	// OpEvict deletes a batch of ids (TTL staleness eviction).
	OpEvict Op = 3
)

// Entry is one persisted registry entry. It mirrors the registry's
// entry type without importing it (the root package imports persist).
type Entry struct {
	// ID is the node's identifier.
	ID string
	// Coord is the node's (application-level) coordinate.
	Coord coord.Coordinate
	// Error is the node's Vivaldi error weight.
	Error float64
	// UpdatedAt is the entry's last-upsert time. Persisting it is what
	// keeps TTL eviction correct across downtime: entries that went
	// stale while the service was down age out on the first sweep after
	// recovery instead of being granted a fresh lease.
	UpdatedAt time.Time
	// Seq is the change-stream sequence of the mutation that produced
	// this entry state. It is recovery metadata, not wire format:
	// WAL-replayed entries get their record's sequence, snapshot-loaded
	// entries the snapshot's capture sequence (an upper bound — safe,
	// because delta consumers only over-send when a sequence is
	// over-stated, never lose changes).
	Seq uint64
}

// Record is one decoded WAL record.
type Record struct {
	// Op selects which of the remaining fields is meaningful.
	Op Op
	// Seq is the change-stream sequence number of the mutation this
	// record logs. Persisting it is what lets the WAL double as the
	// replication stream: a subscriber resuming from sequence N replays
	// records with Seq > N and misses nothing. Sequences are
	// nondecreasing within a log; an eviction event split across chunk
	// records repeats its sequence on every chunk.
	Seq uint64
	// Epoch is the fencing epoch the mutation was published under.
	// Persisting it is what makes promotion durable: a leader that
	// restarts after being promoted recovers its bumped epoch from the
	// log and keeps fencing out the deposed stream. Epochs are
	// nondecreasing within a log.
	Epoch uint64
	// Entry is set for OpUpsert.
	Entry Entry
	// ID is set for OpRemove.
	ID string
	// IDs is set for OpEvict.
	IDs []string
}

// Tombstone records that an id was removed (or evicted) at a
// change-stream sequence. Snapshots persist the registry's tombstone
// ring so removal knowledge — what delta re-bootstraps depend on —
// survives a restart or a promotion.
type Tombstone struct {
	// Seq is the sequence of the removal.
	Seq uint64
	// ID is the removed id.
	ID string
}

// Capture is one consistent registry state capture, the input to
// compaction: the live entries, the change-stream position and fencing
// epoch they were read at, and the tombstone ring (oldest first) with
// its floor — the sequence at or below which removal knowledge is
// incomplete.
type Capture struct {
	Entries        []Entry
	Seq            uint64
	Epoch          uint64
	TombstoneFloor uint64
	Tombstones     []Tombstone
}

// Wire-format bounds. Oversized values on disk mean corruption, not
// data: decoding rejects them instead of allocating attacker- or
// garbage-controlled amounts of memory.
const (
	// MaxIDLen bounds a single id on disk. Owners of a persistent
	// store must reject longer ids at their API boundary (ValidateID);
	// an id the log cannot encode would otherwise be silently
	// non-durable.
	MaxIDLen = 1 << 12
	// maxRecordSize bounds one framed record's payload. Evict batches
	// are chunked at append time so they stay far below it.
	maxRecordSize = 1 << 20
	// evictChunk and evictChunkBytes bound one OpEvict record by id
	// count and by encoded bytes; the byte bound is what keeps a sweep
	// of maximum-length ids far under maxRecordSize.
	evictChunk      = 1024
	evictChunkBytes = 256 << 10
)

// ValidateID reports whether an id fits the persistence wire format.
func ValidateID(id string) error {
	if len(id) == 0 || len(id) > MaxIDLen {
		return fmt.Errorf("persist: id length %d, want 1..%d", len(id), MaxIDLen)
	}
	return nil
}

// appendEntry encodes e onto dst: uvarint id length, id bytes, the
// coordinate wire form, error bits, and the update time as Unix
// nanoseconds (all fixed-width fields little endian).
func appendEntry(dst []byte, e Entry) ([]byte, error) {
	if len(e.ID) == 0 || len(e.ID) > MaxIDLen {
		return nil, fmt.Errorf("persist: id length %d, want 1..%d", len(e.ID), MaxIDLen)
	}
	dst = binary.AppendUvarint(dst, uint64(len(e.ID)))
	dst = append(dst, e.ID...)
	dst, err := e.Coord.Encode(dst)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.Error))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(e.UpdatedAt.UnixNano()))
	return dst, nil
}

// decodeID reads one uvarint-framed id from src.
func decodeID(src []byte) (string, []byte, error) {
	n, used := binary.Uvarint(src)
	if used <= 0 || n == 0 || n > MaxIDLen {
		return "", nil, fmt.Errorf("persist: bad id frame")
	}
	src = src[used:]
	if uint64(len(src)) < n {
		return "", nil, fmt.Errorf("persist: truncated id")
	}
	return string(src[:n]), src[n:], nil
}

// decodeEntry reads one entry from src, returning the remainder.
func decodeEntry(src []byte) (Entry, []byte, error) {
	id, src, err := decodeID(src)
	if err != nil {
		return Entry{}, nil, err
	}
	c, src, err := coord.Decode(src)
	if err != nil {
		return Entry{}, nil, fmt.Errorf("persist: %w", err)
	}
	if len(src) < 16 {
		return Entry{}, nil, fmt.Errorf("persist: truncated entry")
	}
	errW := math.Float64frombits(binary.LittleEndian.Uint64(src))
	nanos := int64(binary.LittleEndian.Uint64(src[8:]))
	return Entry{
		ID:        id,
		Coord:     c,
		Error:     errW,
		UpdatedAt: time.Unix(0, nanos),
	}, src[16:], nil
}

// appendRecordPayload encodes one record (without framing) onto dst:
// the op byte, the uvarint change-stream sequence, the uvarint fencing
// epoch, then the op body.
func appendRecordPayload(dst []byte, rec Record) ([]byte, error) {
	dst = append(dst, byte(rec.Op))
	dst = binary.AppendUvarint(dst, rec.Seq)
	dst = binary.AppendUvarint(dst, rec.Epoch)
	switch rec.Op {
	case OpUpsert:
		return appendEntry(dst, rec.Entry)
	case OpRemove:
		if len(rec.ID) == 0 || len(rec.ID) > MaxIDLen {
			return nil, fmt.Errorf("persist: id length %d, want 1..%d", len(rec.ID), MaxIDLen)
		}
		dst = binary.AppendUvarint(dst, uint64(len(rec.ID)))
		return append(dst, rec.ID...), nil
	case OpEvict:
		if len(rec.IDs) == 0 || len(rec.IDs) > evictChunk {
			return nil, fmt.Errorf("persist: evict batch %d, want 1..%d", len(rec.IDs), evictChunk)
		}
		dst = binary.AppendUvarint(dst, uint64(len(rec.IDs)))
		for _, id := range rec.IDs {
			if len(id) == 0 || len(id) > MaxIDLen {
				return nil, fmt.Errorf("persist: id length %d, want 1..%d", len(id), MaxIDLen)
			}
			dst = binary.AppendUvarint(dst, uint64(len(id)))
			dst = append(dst, id...)
		}
		return dst, nil
	default:
		return nil, fmt.Errorf("persist: unknown op %d", rec.Op)
	}
}

// decodeRecordPayload parses one record payload.
func decodeRecordPayload(src []byte) (Record, error) {
	if len(src) == 0 {
		return Record{}, fmt.Errorf("persist: empty record")
	}
	rec := Record{Op: Op(src[0])}
	src = src[1:]
	seq, used := binary.Uvarint(src)
	if used <= 0 {
		return Record{}, fmt.Errorf("persist: bad record sequence")
	}
	rec.Seq = seq
	src = src[used:]
	epoch, used := binary.Uvarint(src)
	if used <= 0 {
		return Record{}, fmt.Errorf("persist: bad record epoch")
	}
	rec.Epoch = epoch
	src = src[used:]
	switch rec.Op {
	case OpUpsert:
		e, rest, err := decodeEntry(src)
		if err != nil {
			return Record{}, err
		}
		if len(rest) != 0 {
			return Record{}, fmt.Errorf("persist: %d trailing bytes in upsert record", len(rest))
		}
		rec.Entry = e
		return rec, nil
	case OpRemove:
		id, rest, err := decodeID(src)
		if err != nil {
			return Record{}, err
		}
		if len(rest) != 0 {
			return Record{}, fmt.Errorf("persist: %d trailing bytes in remove record", len(rest))
		}
		rec.ID = id
		return rec, nil
	case OpEvict:
		n, used := binary.Uvarint(src)
		if used <= 0 || n == 0 || n > evictChunk {
			return Record{}, fmt.Errorf("persist: bad evict batch size")
		}
		src = src[used:]
		rec.IDs = make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			id, rest, err := decodeID(src)
			if err != nil {
				return Record{}, err
			}
			rec.IDs = append(rec.IDs, id)
			src = rest
		}
		if len(src) != 0 {
			return Record{}, fmt.Errorf("persist: %d trailing bytes in evict record", len(src))
		}
		return rec, nil
	default:
		return Record{}, fmt.Errorf("persist: unknown op %d", rec.Op)
	}
}
