package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// ErrCorruptRecord marks a WAL record whose frame is fully present but
// whose bytes fail verification (checksum mismatch or undecodable
// payload) — media damage inside the durable prefix, as opposed to the
// torn tail a crash leaves. Recovery stops replay at the damaged
// record, quarantines the generation file, and reports the error
// through RecoveryStats; match with errors.Is.
var ErrCorruptRecord = errors.New("persist: corrupt wal record")

// WAL file layout (format 3 — record payloads carry the change-stream
// sequence number and the fencing epoch; older formats are rejected at
// the magic check):
//
//	8 bytes  magic "NCWAL\x03\x00\x00"
//	8 bytes  generation (little endian)
//	records: uint32 payload length | uint32 IEEE CRC of payload | payload
//
// The frame makes every record self-verifying, and replay distinguishes
// two failure shapes. A *torn* tail — not enough bytes left for the
// frame header or the declared payload, or an implausible length that
// makes further framing unparseable — is the signature of a crash
// mid-append: replay ends cleanly at the last complete record and the
// tail is discarded. A *corrupt* record — a complete frame whose
// checksum or payload decode fails — means bytes inside the durable
// prefix rotted (bit flip, bad sector): replay still stops there, but
// the damage is surfaced as ErrCorruptRecord so recovery can quarantine
// the file instead of silently treating media damage as a crash
// artifact.
const (
	walHeaderSize   = 16
	frameHeaderSize = 8
)

var walMagic = [8]byte{'N', 'C', 'W', 'A', 'L', 3, 0, 0}

// walPath names the WAL file for a generation.
func walPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d.ncl", gen))
}

// createWAL creates (truncating) a new WAL file for gen and writes its
// header. The header is flushed immediately so a generation file is
// never ambiguous on disk.
func createWAL(dir string, gen uint64, nosync bool) (*os.File, error) {
	f, err := os.OpenFile(walPath(dir, gen), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: create wal: %w", err)
	}
	hdr := make([]byte, 0, walHeaderSize)
	hdr = append(hdr, walMagic[:]...)
	hdr = binary.LittleEndian.AppendUint64(hdr, gen)
	if _, err := f.Write(hdr); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("persist: write wal header: %w", err)
	}
	if !nosync {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("persist: sync wal header: %w", err)
		}
		// The dirent must be journaled too: without a directory sync a
		// power loss can drop the whole generation file, losing every
		// record fsynced into it — far more than the flush window the
		// durability contract allows.
		if err := syncDir(dir); err != nil {
			_ = f.Close()
			return nil, err
		}
	}
	return f, nil
}

// appendFrame frames payload onto dst: length, checksum, payload.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// walReplay is the result of scanning one WAL file.
type walReplay struct {
	// records is how many complete records were applied.
	records int
	// validSize is the byte offset just past the last complete record;
	// opening this file for append must truncate to it first.
	validSize int64
	// tornBytes is how many trailing bytes were discarded.
	tornBytes int64
	// corrupt reports that the scan ended on a complete-but-damaged
	// frame (checksum or decode failure) rather than a torn tail;
	// corruptErr wraps ErrCorruptRecord with the position.
	corrupt    bool
	corruptErr error
}

// replayWAL scans the WAL at path, invoking apply for every complete
// record in order. A malformed tail ends the scan cleanly (recorded in
// the result); a malformed header is a hard error, because it means the
// file is not a WAL of this store at all.
func replayWAL(path string, wantGen uint64, apply func(Record)) (walReplay, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return walReplay{}, fmt.Errorf("persist: read wal: %w", err)
	}
	if len(data) < walHeaderSize {
		// A crash can beat even the header write; the file carries no
		// records, so recovery rewrites it from scratch.
		return walReplay{validSize: 0, tornBytes: int64(len(data))}, nil
	}
	if [8]byte(data[:8]) != walMagic {
		return walReplay{}, fmt.Errorf("persist: %s: bad wal magic", filepath.Base(path))
	}
	if gen := binary.LittleEndian.Uint64(data[8:16]); gen != wantGen {
		return walReplay{}, fmt.Errorf("persist: %s: header generation %d, want %d", filepath.Base(path), gen, wantGen)
	}
	rep := walReplay{validSize: walHeaderSize}
	off := int64(walHeaderSize)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			break
		}
		if len(rest) < frameHeaderSize {
			break // torn frame header
		}
		plen := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if plen == 0 || plen > maxRecordSize {
			// An implausible length makes further framing unparseable;
			// indistinguishable from append garbage, so treat as torn.
			break
		}
		if len(rest) < frameHeaderSize+int(plen) {
			break // torn payload
		}
		payload := rest[frameHeaderSize : frameHeaderSize+int(plen)]
		if crc32.ChecksumIEEE(payload) != sum {
			// The full frame is on disk but its bytes rotted: this is
			// media damage inside the durable prefix, not a crash tail.
			rep.corrupt = true
			rep.corruptErr = fmt.Errorf("%w: %s: record %d at offset %d: checksum mismatch", ErrCorruptRecord, filepath.Base(path), rep.records, off)
			break
		}
		rec, err := decodeRecordPayload(payload)
		if err != nil {
			rep.corrupt = true
			rep.corruptErr = fmt.Errorf("%w: %s: record %d at offset %d: %v", ErrCorruptRecord, filepath.Base(path), rep.records, off, err)
			break
		}
		apply(rec)
		rep.records++
		off += frameHeaderSize + int64(plen)
		rep.validSize = off
	}
	rep.tornBytes = int64(len(data)) - rep.validSize
	return rep, nil
}

// openWALForAppend opens an existing WAL whose valid prefix is
// validSize bytes, truncating any torn tail so new records extend the
// last complete one.
func openWALForAppend(path string, validSize int64, nosync bool) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open wal: %w", err)
	}
	if err := f.Truncate(validSize); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("persist: truncate wal tail: %w", err)
	}
	if _, err := f.Seek(validSize, 0); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("persist: seek wal: %w", err)
	}
	if !nosync {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("persist: sync truncated wal: %w", err)
		}
	}
	return f, nil
}
