//go:build !unix

package persist

// syncDir is a no-op where directories cannot be fsynced (Windows
// rejects FlushFileBuffers on a read-only directory handle); dirent
// durability there is best-effort, matching the advisory-only lock.
func syncDir(dir string) error { return nil }
