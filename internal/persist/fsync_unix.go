//go:build unix

package persist

import (
	"fmt"
	"os"
)

// syncDir fsyncs a directory so renames, creations, and removals
// inside it are durable — without it a power loss can drop a freshly
// created WAL generation or a just-renamed snapshot from the dirent.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("persist: sync dir: %w", err)
	}
	return nil
}
