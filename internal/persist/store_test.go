package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"netcoord/internal/coord"
)

// testOptions makes tests fast and deterministic: no fsync, immediate
// visibility via explicit Sync calls.
func testOptions() Options {
	return Options{FlushInterval: time.Hour, NoSync: true}
}

func testEntry(id string, x float64, at int64) Entry {
	return Entry{
		ID:        id,
		Coord:     coord.New(x, 2*x, -x),
		Error:     0.25,
		UpdatedAt: time.Unix(0, at),
	}
}

func entriesEqual(t *testing.T, got, want []Entry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d entries, want %d\n got: %+v\nwant: %+v", len(got), len(want), got, want)
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.ID != w.ID || !g.Coord.Equal(w.Coord) || g.Error != w.Error || !g.UpdatedAt.Equal(w.UpdatedAt) {
			t.Fatalf("entry %d: got %+v, want %+v", i, g, w)
		}
	}
}

// The log API takes the change-stream sequence of each mutation; most
// store tests do not care about specific values, only that sequences
// are monotonic, so a shared counter stands in for the feed.
var testSeqCounter atomic.Uint64

func logUpsert(s *Store, e Entry)     { s.LogUpsert(e, testSeqCounter.Add(1), 1) }
func logRemove(s *Store, id string)   { s.LogRemove(id, testSeqCounter.Add(1), 1) }
func logEvict(s *Store, ids []string) { s.LogEvict(ids, testSeqCounter.Add(1), 1) }

func mustOpen(t *testing.T, dir string) (*Store, []Entry) {
	t.Helper()
	s, entries, err := Open(dir, testOptions())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, entries
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, entries := mustOpen(t, dir)
	if len(entries) != 0 {
		t.Fatalf("fresh dir recovered %d entries", len(entries))
	}
	logUpsert(s, testEntry("a", 1, 100))
	logUpsert(s, testEntry("b", 2, 200))
	logUpsert(s, testEntry("a", 3, 300)) // refresh: last write wins
	logUpsert(s, testEntry("c", 4, 400))
	logRemove(s, "b")
	logEvict(s, []string{"c"})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, recovered := mustOpen(t, dir)
	defer s2.Close()
	entriesEqual(t, recovered, []Entry{testEntry("a", 3, 300)})
	rec := s2.Recovery()
	if rec.WALRecords != 6 {
		t.Fatalf("replayed %d records, want 6", rec.WALRecords)
	}
	if rec.TornBytes != 0 {
		t.Fatalf("torn bytes = %d on a cleanly closed log", rec.TornBytes)
	}
}

func TestStoreCompactionAndRestart(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	for i := 0; i < 50; i++ {
		logUpsert(s, testEntry(fmt.Sprintf("n%03d", i), float64(i), int64(i+1)))
	}
	// Compact with the captured state; then keep mutating into the new
	// generation.
	state := make([]Entry, 0, 50)
	for i := 0; i < 50; i++ {
		state = append(state, testEntry(fmt.Sprintf("n%03d", i), float64(i), int64(i+1)))
	}
	if err := s.Compact("manual", func() (Capture, error) {
		return Capture{Entries: state, Seq: testSeqCounter.Load(), Epoch: 1}, nil
	}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	logRemove(s, "n000")
	logUpsert(s, testEntry("n001", 99, 999))
	logUpsert(s, testEntry("new", 7, 777))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Old generations are gone.
	snaps, wals, err := scanDir(dir)
	if err != nil {
		t.Fatalf("scanDir: %v", err)
	}
	if len(snaps) != 1 || len(wals) != 1 || snaps[0] != wals[0] {
		t.Fatalf("dir not compacted to one generation: snaps %v wals %v", snaps, wals)
	}

	s2, recovered := mustOpen(t, dir)
	defer s2.Close()
	want := []Entry{testEntry("n001", 99, 999)}
	for i := 2; i < 50; i++ {
		want = append(want, testEntry(fmt.Sprintf("n%03d", i), float64(i), int64(i+1)))
	}
	want = append(want, testEntry("new", 7, 777))
	entriesEqual(t, recovered, want)
	rec := s2.Recovery()
	if rec.SnapshotEntries != 50 {
		t.Fatalf("snapshot entries = %d, want 50", rec.SnapshotEntries)
	}
	if rec.WALRecords != 3 {
		t.Fatalf("WAL tail records = %d, want 3", rec.WALRecords)
	}
}

func TestStoreCrashWithoutClose(t *testing.T) {
	// Sync makes records durable; a crash image taken without Close
	// (copying the dir while the store is live, since the directory
	// lock forbids a second opener) must lose nothing that was synced.
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	logUpsert(s, testEntry("a", 1, 100))
	logUpsert(s, testEntry("b", 2, 200))
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	image := t.TempDir()
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read dir: %v", err)
	}
	for _, de := range names {
		data, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			t.Fatalf("read %s: %v", de.Name(), err)
		}
		if err := os.WriteFile(filepath.Join(image, de.Name()), data, 0o644); err != nil {
			t.Fatalf("write %s: %v", de.Name(), err)
		}
	}
	s2, recovered := mustOpen(t, image)
	defer s2.Close()
	entriesEqual(t, recovered, []Entry{testEntry("a", 1, 100), testEntry("b", 2, 200)})
	_ = s.Close()
}

func TestOpenLocksDirectory(t *testing.T) {
	// Two live stores on one directory would interleave WAL frames and
	// sever the log at the first mixed record; Open must refuse instead.
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	if _, _, err := Open(dir, testOptions()); err == nil {
		t.Fatal("second store on a locked directory accepted")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, _ := mustOpen(t, dir) // lock released with the store
	s2.Close()
}

func TestStaleTempSnapshotsSwept(t *testing.T) {
	// A crash between CreateTemp and rename leaks snap-*.tmp; Open
	// sweeps them so each crash does not permanently leak a full
	// snapshot's worth of disk.
	dir := t.TempDir()
	tmp := filepath.Join(dir, "snap-12345678.tmp")
	if err := os.WriteFile(tmp, []byte("half-written snapshot"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	s, _ := mustOpen(t, dir)
	defer s.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale temp snapshot not swept (stat err %v)", err)
	}
}

func TestRecoveryTruncatedTailEveryOffset(t *testing.T) {
	// Property: for EVERY byte-truncation of the WAL, recovery succeeds
	// and yields exactly the records whose frames fit completely within
	// the truncated prefix — a crash can tear the tail at any byte.
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	var boundaries []int64 // valid-prefix sizes after each record
	var wantAt []map[string]Entry
	state := map[string]Entry{}
	snapState := func() map[string]Entry {
		c := make(map[string]Entry, len(state))
		for k, v := range state {
			c[k] = v
		}
		return c
	}
	boundariesAppend := func() {
		if err := s.Sync(); err != nil {
			t.Fatalf("Sync: %v", err)
		}
		fi, err := os.Stat(walPath(dir, 1))
		if err != nil {
			t.Fatalf("stat: %v", err)
		}
		boundaries = append(boundaries, fi.Size())
		wantAt = append(wantAt, snapState())
	}
	boundariesAppend() // empty log
	for i := 0; i < 8; i++ {
		e := testEntry(fmt.Sprintf("id%d", i), float64(i), int64(1000+i))
		logUpsert(s, e)
		state[e.ID] = e
		boundariesAppend()
		if i%3 == 2 {
			victim := fmt.Sprintf("id%d", i-1)
			logRemove(s, victim)
			delete(state, victim)
			boundariesAppend()
		}
	}
	logEvict(s, []string{"id0", "id7"})
	delete(state, "id0")
	delete(state, "id7")
	boundariesAppend()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	full, err := os.ReadFile(walPath(dir, 1))
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	for cut := int64(0); cut <= int64(len(full)); cut++ {
		// The expected state is the one at the largest record boundary
		// <= cut.
		wantIdx := -1
		for i, b := range boundaries {
			if b <= cut {
				wantIdx = i
			}
		}
		want := map[string]Entry{}
		if wantIdx >= 0 {
			want = wantAt[wantIdx]
		}

		tdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(tdir, "wal-0000000000000001.ncl"), full[:cut], 0o644); err != nil {
			t.Fatalf("write truncated wal: %v", err)
		}
		s2, recovered, err := Open(tdir, testOptions())
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		if len(recovered) != len(want) {
			t.Fatalf("cut %d: recovered %d entries, want %d", cut, len(recovered), len(want))
		}
		for _, e := range recovered {
			w, ok := want[e.ID]
			if !ok || !e.Coord.Equal(w.Coord) || !e.UpdatedAt.Equal(w.UpdatedAt) {
				t.Fatalf("cut %d: entry %+v not in expected state", cut, e)
			}
		}
		// The store must also be appendable after tail truncation: the
		// torn suffix is discarded, new records extend the valid prefix.
		logUpsert(s2, testEntry("post-crash", 42, 4242))
		if err := s2.Close(); err != nil {
			t.Fatalf("cut %d: Close: %v", cut, err)
		}
		s3, again, err := Open(tdir, testOptions())
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		found := false
		for _, e := range again {
			if e.ID == "post-crash" {
				found = true
			}
		}
		if !found {
			t.Fatalf("cut %d: record appended after tail truncation was lost", cut)
		}
		s3.Close()
	}
}

func TestRecoveryCorruptMidRecordChecksum(t *testing.T) {
	// A flipped bit inside a complete record is media damage, not a
	// crash tail: replay stops cleanly at the bad record, everything
	// before it survives, the damaged file is quarantined aside with a
	// .corrupt suffix, and the valid prefix is rewritten in place so the
	// next restart replays clean.
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	logUpsert(s, testEntry("a", 1, 100))
	logUpsert(s, testEntry("b", 2, 200))
	logUpsert(s, testEntry("c", 3, 300))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := walPath(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	// Corrupt a byte near the end (inside record "c").
	data[len(data)-3] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	s2, recovered := mustOpen(t, dir)
	entriesEqual(t, recovered, []Entry{testEntry("a", 1, 100), testEntry("b", 2, 200)})
	rec := s2.Recovery()
	if rec.QuarantinedWALs != 1 {
		t.Fatalf("QuarantinedWALs = %d, want 1", rec.QuarantinedWALs)
	}
	if rec.TornBytes != 0 {
		t.Fatalf("quarantined damage double-reported as %d torn bytes", rec.TornBytes)
	}
	if qerr := s2.QuarantineErr(); !errors.Is(qerr, ErrCorruptRecord) {
		t.Fatalf("QuarantineErr = %v, want ErrCorruptRecord", qerr)
	}
	// The damaged original is preserved for forensics...
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	// ...and the store stays appendable: new records extend the clean
	// prefix, and a further restart replays with no damage reported.
	logUpsert(s2, testEntry("d", 4, 400))
	if err := s2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s3, again := mustOpen(t, dir)
	defer s3.Close()
	entriesEqual(t, again, []Entry{
		testEntry("a", 1, 100), testEntry("b", 2, 200), testEntry("d", 4, 400),
	})
	if rec := s3.Recovery(); rec.QuarantinedWALs != 0 || rec.TornBytes != 0 {
		t.Fatalf("second restart still reports damage: %+v", rec)
	}
}

func TestTailSinceStopsAtCorruptRecordDensely(t *testing.T) {
	// A corrupt record mid-WAL must never let TailSince serve a gapped
	// sequence: the dense prefix below the damage is served, and a
	// resume point at or past the damage reports truncation so the
	// consumer re-bootstraps.
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	defer s.Close()
	for i := 1; i <= 6; i++ {
		s.LogUpsert(testEntry(fmt.Sprintf("n%d", i), float64(i), int64(i)), uint64(i), 1)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	path := walPath(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	// Flip a bit inside record 4 of 6: three records of damage-free
	// prefix, two unreachable behind the damage. Records are equal-sized
	// here, so byte math locates record 4's payload.
	recSize := (int64(len(data)) - walHeaderSize) / 6
	data[walHeaderSize+3*recSize+recSize/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	recs, truncated, err := s.TailSince(1, 0)
	if err != nil || truncated {
		t.Fatalf("TailSince(1): truncated=%v err=%v", truncated, err)
	}
	if len(recs) != 2 || recs[0].Seq != 2 || recs[1].Seq != 3 {
		t.Fatalf("TailSince(1) across damage not dense: %+v", recs)
	}
	// Nothing clean above the resume point: must report truncation, not
	// an empty "caught up" answer that would strand the consumer.
	if _, truncated, err := s.TailSince(4, 0); err != nil || !truncated {
		t.Fatalf("TailSince past damage: truncated=%v err=%v", truncated, err)
	}
}

func TestRecoveryOnlyCorruptSnapshotRefusesToOpen(t *testing.T) {
	// When the sole snapshot fails verification, the older generations
	// that could back a fallback are already deleted: opening anyway
	// would present the last WAL generation alone as a successful warm
	// restart. That silent near-total data loss must be a hard error.
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	logUpsert(s, testEntry("a", 1, 100))
	if err := s.Compact("manual", func() (Capture, error) {
		return Capture{Entries: []Entry{testEntry("a", 1, 100)}, Seq: testSeqCounter.Load(), Epoch: 1}, nil
	}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	logUpsert(s, testEntry("b", 2, 200))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Corrupt the snapshot body.
	path := snapPath(dir, 2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	data[len(data)-6] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write snapshot: %v", err)
	}
	if _, _, err := Open(dir, testOptions()); err == nil {
		t.Fatal("open succeeded with only a corrupt snapshot on disk")
	}
	// The operator escape hatch: deleting the corrupt snapshot accepts
	// starting from the WAL alone.
	if err := os.Remove(path); err != nil {
		t.Fatalf("remove: %v", err)
	}
	s2, recovered := mustOpen(t, dir)
	defer s2.Close()
	entriesEqual(t, recovered, []Entry{testEntry("b", 2, 200)})
}

func TestRecoveryCorruptSnapshotFallsBackAGeneration(t *testing.T) {
	// When an older snapshot generation is still on disk (compaction
	// crashed before cleanup), a corrupt newest snapshot falls back to
	// it and the surviving WAL generations reconstruct the full state.
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	logUpsert(s, testEntry("a", 1, 100))
	logUpsert(s, testEntry("b", 2, 200))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Manufacture the crash-mid-compaction layout: snap-1 (valid),
	// wal-1 (a, b), snap-2 (will be corrupted), wal-2 (c).
	if err := writeSnapshot(dir, 1, Capture{}, true); err != nil {
		t.Fatalf("writeSnapshot: %v", err)
	}
	if err := writeSnapshot(dir, 2, Capture{Seq: 2, Entries: []Entry{testEntry("a", 1, 100), testEntry("b", 2, 200)}}, true); err != nil {
		t.Fatalf("writeSnapshot: %v", err)
	}
	f, err := createWAL(dir, 2, true)
	if err != nil {
		t.Fatalf("createWAL: %v", err)
	}
	payload, err := appendRecordPayload(nil, Record{Op: OpUpsert, Entry: testEntry("c", 3, 300)})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if _, err := f.Write(appendFrame(nil, payload)); err != nil {
		t.Fatalf("write: %v", err)
	}
	f.Close()
	// Corrupt snap-2.
	path := snapPath(dir, 2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	data[len(data)-6] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	s2, recovered := mustOpen(t, dir)
	defer s2.Close()
	rec := s2.Recovery()
	if rec.CorruptSnapshots != 1 || rec.SnapshotGen != 1 {
		t.Fatalf("fallback not taken: %+v", rec)
	}
	entriesEqual(t, recovered, []Entry{
		testEntry("a", 1, 100), testEntry("b", 2, 200), testEntry("c", 3, 300),
	})
}

func TestCrashBetweenRotateAndSnapshot(t *testing.T) {
	// Compaction rotates the WAL before writing the snapshot. A crash
	// in that window leaves snap-1 absent, wal-1 and wal-2 present:
	// recovery must replay both generations in order.
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	logUpsert(s, testEntry("a", 1, 100))
	logUpsert(s, testEntry("b", 2, 200))
	err := s.Compact("manual", func() (Capture, error) {
		return Capture{}, fmt.Errorf("simulated crash before snapshot write")
	})
	if err == nil {
		t.Fatal("Compact swallowed the capture failure")
	}
	// Post-"crash" mutations land in the new generation.
	logRemove(s, "a")
	logUpsert(s, testEntry("c", 3, 300))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, wals, err := scanDir(dir)
	if err != nil {
		t.Fatalf("scanDir: %v", err)
	}
	if len(wals) != 2 {
		t.Fatalf("wal generations = %v, want two", wals)
	}
	s2, recovered := mustOpen(t, dir)
	defer s2.Close()
	entriesEqual(t, recovered, []Entry{testEntry("b", 2, 200), testEntry("c", 3, 300)})
}

func TestStoreFlushBatchKicksEarly(t *testing.T) {
	// With a tiny batch threshold, records become durable without any
	// explicit Sync and long before the (1h) flush interval.
	dir := t.TempDir()
	opts := testOptions()
	opts.FlushBatch = 4
	s, _, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 16; i++ {
		logUpsert(s, testEntry(fmt.Sprintf("n%d", i), float64(i), int64(i+1)))
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s.Stats().Flushes > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flusher never committed despite batch threshold")
		}
		time.Sleep(time.Millisecond)
	}
	_ = s.Close()
}

func TestEvictChunking(t *testing.T) {
	// Evicting more ids than fit one record must chunk, not drop.
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	n := evictChunk*2 + 17
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("node-%05d", i)
		logUpsert(s, testEntry(ids[i], float64(i), int64(i+1)))
	}
	logEvict(s, ids)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if d := s.Stats().Dropped; d != 0 {
		t.Fatalf("dropped %d records", d)
	}
	s2, recovered := mustOpen(t, dir)
	defer s2.Close()
	if len(recovered) != 0 {
		t.Fatalf("recovered %d entries after full eviction", len(recovered))
	}
}

func TestBadWALHeaderIsHardError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000001.ncl"), []byte("this is definitely not a WAL file"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, _, err := Open(dir, testOptions()); err == nil {
		t.Fatal("garbage WAL header accepted")
	}
}

func TestLogEvictByteChunking(t *testing.T) {
	// A sweep of maximum-length ids must split into records the replay
	// path accepts; one count-bounded chunk of 4 KiB ids would exceed
	// the record size limit and sever the log at recovery.
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	n := 600
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("%0*d", MaxIDLen, i) // every id at MaxIDLen
		logUpsert(s, Entry{ID: ids[i], Coord: coord.New(1, 2, 3), UpdatedAt: time.Unix(0, 1)})
	}
	logEvict(s, ids)
	logUpsert(s, testEntry("survivor", 1, 99))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if d := s.Stats().Dropped; d != 0 {
		t.Fatalf("dropped %d records", d)
	}
	s2, recovered := mustOpen(t, dir)
	defer s2.Close()
	if rec := s2.Recovery(); rec.TornBytes != 0 {
		t.Fatalf("oversized evict record severed the log: %d torn bytes", rec.TornBytes)
	}
	entriesEqual(t, recovered, []Entry{testEntry("survivor", 1, 99)})
}

func TestAppendDropsUnencodableRecord(t *testing.T) {
	// Defense in depth: a record that cannot be encoded (or would
	// exceed the frame bound) is dropped and counted, never written as
	// a frame that reads back as corruption.
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	logUpsert(s, testEntry("good", 1, 1))
	logUpsert(s, Entry{ID: strings.Repeat("x", MaxIDLen+1), Coord: coord.New(1, 2, 3)})
	logUpsert(s, testEntry("also-good", 2, 2))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if d := s.Stats().Dropped; d != 1 {
		t.Fatalf("Dropped = %d, want 1", d)
	}
	s2, recovered := mustOpen(t, dir)
	defer s2.Close()
	entriesEqual(t, recovered, []Entry{testEntry("also-good", 2, 2), testEntry("good", 1, 1)})
}

func TestCompactFailureSurfaced(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	defer s.Close()
	if err := s.Compact("manual", func() (Capture, error) { return Capture{}, fmt.Errorf("capture exploded") }); err == nil {
		t.Fatal("capture failure swallowed")
	}
	st := s.Stats()
	if st.CompactFailures != 1 || st.CompactErr == "" {
		t.Fatalf("compaction failure not surfaced: %+v", st)
	}
}

func TestTailSinceServesWALAndHonorsHistoryFloor(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	defer s.Close()
	state := make([]Entry, 0, 10)
	for i := 1; i <= 10; i++ {
		e := testEntry(fmt.Sprintf("n%02d", i), float64(i), int64(i))
		s.LogUpsert(e, uint64(i), 1)
		state = append(state, e)
	}
	recs, truncated, err := s.TailSince(4, 0)
	if err != nil || truncated {
		t.Fatalf("TailSince(4): truncated=%v err=%v", truncated, err)
	}
	if len(recs) != 6 || recs[0].Seq != 5 || recs[5].Seq != 10 {
		t.Fatalf("TailSince(4) seqs wrong: %d recs, first %d last %d",
			len(recs), recs[0].Seq, recs[len(recs)-1].Seq)
	}
	if recs, _, _ := s.TailSince(4, 2); len(recs) != 2 || recs[1].Seq != 6 {
		t.Fatalf("TailSince(4, max 2) = %d recs", len(recs))
	}
	if recs, truncated, err := s.TailSince(10, 0); err != nil || truncated || len(recs) != 0 {
		t.Fatalf("TailSince(current) = %d recs, truncated=%v, err=%v", len(recs), truncated, err)
	}

	// Compaction folds seqs <= 10 into the snapshot: resuming below the
	// floor must report truncation, resuming at it must work and span
	// the generation boundary.
	if err := s.Compact("manual", func() (Capture, error) { return Capture{Entries: state, Seq: 10}, nil }); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	s.LogUpsert(testEntry("n11", 11, 11), 11, 1)
	if _, truncated, err := s.TailSince(3, 0); err != nil || !truncated {
		t.Fatalf("TailSince below floor: truncated=%v err=%v", truncated, err)
	}
	recs, truncated, err = s.TailSince(10, 0)
	if err != nil || truncated || len(recs) != 1 || recs[0].Seq != 11 {
		t.Fatalf("TailSince(floor) = %+v truncated=%v err=%v", recs, truncated, err)
	}
	if got := s.Stats().HistoryFloor; got != 10 {
		t.Fatalf("HistoryFloor = %d, want 10", got)
	}
}

func TestTailSinceNeverSplitsEvictChunks(t *testing.T) {
	// One eviction event can span several chunk records sharing a
	// sequence; a max cutoff must keep the run whole so a resumer never
	// receives half an event.
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	defer s.Close()
	n := evictChunk + 50
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("node-%05d", i)
	}
	s.LogEvict(ids, 1, 1)
	s.LogUpsert(testEntry("after", 1, 2), 2, 1)
	recs, truncated, err := s.TailSince(0, 1)
	if err != nil || truncated {
		t.Fatalf("TailSince: truncated=%v err=%v", truncated, err)
	}
	if len(recs) != 2 {
		t.Fatalf("equal-seq run split: got %d records, want both chunks of seq 1", len(recs))
	}
	total := 0
	for _, r := range recs {
		if r.Seq != 1 || r.Op != OpEvict {
			t.Fatalf("unexpected record %+v", r)
		}
		total += len(r.IDs)
	}
	if total != n {
		t.Fatalf("chunks carry %d ids, want %d", total, n)
	}
}

func TestRecoveryLastSeqAcrossSnapshotAndWAL(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	for i := 1; i <= 5; i++ {
		s.LogUpsert(testEntry(fmt.Sprintf("n%d", i), float64(i), int64(i)), uint64(i), 1)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, _ := mustOpen(t, dir)
	if got := s2.Recovery().LastSeq; got != 5 {
		t.Fatalf("WAL-only LastSeq = %d, want 5", got)
	}
	// Compact at seq 5, append 6..7: LastSeq must take the WAL max.
	if err := s2.Compact("manual", func() (Capture, error) { return Capture{Seq: 5}, nil }); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	s2.LogUpsert(testEntry("n6", 6, 6), 6, 1)
	s2.LogUpsert(testEntry("n7", 7, 7), 7, 1)
	if err := s2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s3, _ := mustOpen(t, dir)
	if got := s3.Recovery().LastSeq; got != 7 {
		t.Fatalf("LastSeq = %d, want 7", got)
	}
	if got := s3.Stats().HistoryFloor; got != 5 {
		t.Fatalf("recovered HistoryFloor = %d, want 5", got)
	}
	// Snapshot-only recovery (empty WAL tail): the snapshot's capture
	// sequence alone must seed LastSeq.
	if err := s3.Compact("manual", func() (Capture, error) { return Capture{Seq: 7}, nil }); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := s3.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s4, _ := mustOpen(t, dir)
	defer s4.Close()
	if got := s4.Recovery().LastSeq; got != 7 {
		t.Fatalf("snapshot-only LastSeq = %d, want 7", got)
	}
}

func TestCompactReasonRecorded(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	defer s.Close()
	if err := s.Compact("wal-bytes", func() (Capture, error) { return Capture{}, nil }); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := s.Compact("timer", func() (Capture, error) { return Capture{}, nil }); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st := s.Stats()
	if st.LastCompactReason != "timer" {
		t.Fatalf("LastCompactReason = %q, want timer", st.LastCompactReason)
	}
	if st.CompactReasons["wal-bytes"] != 1 || st.CompactReasons["timer"] != 1 {
		t.Fatalf("CompactReasons = %v", st.CompactReasons)
	}
}

func TestWALGenRecordsResetOnCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	defer s.Close()
	for i := 1; i <= 8; i++ {
		s.LogUpsert(testEntry(fmt.Sprintf("n%d", i), float64(i), int64(i)), uint64(i), 1)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if got := s.Stats().WALGenRecords; got != 8 {
		t.Fatalf("WALGenRecords = %d, want 8", got)
	}
	if err := s.Compact("manual", func() (Capture, error) { return Capture{Seq: 8}, nil }); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if got := s.Stats().WALGenRecords; got != 0 {
		t.Fatalf("WALGenRecords after compaction = %d, want 0", got)
	}
	s.LogUpsert(testEntry("n9", 9, 9), 9, 1)
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if got := s.Stats().WALGenRecords; got != 1 {
		t.Fatalf("WALGenRecords in new generation = %d, want 1", got)
	}
}

func TestSnapshotBogusCountRejectedNotAllocated(t *testing.T) {
	// The entry count is untrusted even under a valid CRC (a checksum
	// is not authentication): a count the body cannot hold must be a
	// clean corruption error and generation fallback, not a huge
	// allocation inside Open.
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	logUpsert(s, testEntry("a", 1, 100))
	if err := s.Compact("manual", func() (Capture, error) {
		return Capture{Entries: []Entry{testEntry("a", 1, 100)}, Seq: testSeqCounter.Load(), Epoch: 1}, nil
	}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	logUpsert(s, testEntry("b", 2, 200))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Rewrite the snapshot's entry count to an absurd value and fix up
	// the CRC so only the bounds check can catch it.
	path := snapPath(dir, 2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	body := data[8 : len(data)-4]
	binary.LittleEndian.PutUint64(body[40:], 1<<56)
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(body))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, _, err := Open(dir, testOptions()); err == nil {
		t.Fatal("open succeeded on a snapshot with an impossible count")
	}
}
