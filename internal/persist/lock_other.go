//go:build !unix

package persist

import "os"

// lockDir is a no-op where flock is unavailable; the one-store-per-
// directory contract is then only documented, not enforced.
func lockDir(dir string) (*os.File, error) { return nil, nil }
