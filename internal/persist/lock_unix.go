//go:build unix

package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory lock on dir's LOCK file, turning
// the "one store per directory" contract into a clean startup error
// instead of silent WAL corruption — e.g. a supervisor starting the new
// process while the old one is still draining. The lock is released
// when the returned file closes (or the process dies, so crashes never
// leave a stale lock).
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("persist: data directory %s is in use by another store: %w", dir, err)
	}
	return f, nil
}
