package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Snapshot file layout (format 3 — the body carries the fencing epoch
// and the tombstone ring alongside the capture sequence; older formats
// are rejected at the magic check):
//
//	8 bytes  magic "NCSNAP\x03\x00"
//	body:    uint64 generation | uint64 capture sequence |
//	         uint64 fencing epoch | uint64 tombstone floor |
//	         uint64 tombstone count | uint64 entry count |
//	         tombstones (uvarint seq | uvarint id length | id bytes) |
//	         entries
//	4 bytes  IEEE CRC of the body
//
// A snapshot becomes visible only through an atomic rename of a fully
// written, fsynced temp file, so a crash during compaction leaves the
// previous snapshot untouched. The trailing checksum guards against
// the remaining failure mode — silent media corruption — in which case
// recovery falls back to the next older generation still on disk.
//
// The capture sequence is read before the state is captured, so the
// entries are a superset of the state at that sequence and replaying
// records with Seq > capture sequence over them converges exactly
// (records are per-id last-write-wins). It seeds the change stream on
// recovery and is the resume point a replica bootstrapping from this
// snapshot hands to the stream.
//
// The tombstone section persists removal knowledge: the floor is the
// sequence at or below which removals are unknown, and each tombstone
// is one removed (or evicted) id with the sequence that removed it.
// Recovering them is what lets a restarted — or newly promoted — leader
// keep serving /snapshot?since= delta re-bootstraps instead of forcing
// every replica through a full transfer.
var snapMagic = [8]byte{'N', 'C', 'S', 'N', 'A', 'P', 3, 0}

// snapHeaderSize is the fixed body header: generation, capture
// sequence, epoch, tombstone floor, tombstone count, entry count.
const snapHeaderSize = 48

// snapPath names the snapshot file for a generation.
func snapPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016d.ncs", gen))
}

// snapEncoder streams snapshot body bytes to a buffered writer while
// folding them into a running CRC, so a multi-million-entry snapshot
// is never materialized in memory — RSS during compaction stays flat
// at the buffer size instead of scaling with the registry.
type snapEncoder struct {
	w   *bufio.Writer
	crc uint32
}

// body writes b as body bytes: checksummed and streamed. Write errors
// are sticky inside bufio.Writer and surfaced by the final Flush, so
// the encoder never has to check them per call.
func (e *snapEncoder) body(b []byte) {
	e.crc = crc32.Update(e.crc, crc32.IEEETable, b)
	_, _ = e.w.Write(b)
}

// writeSnapshot durably writes a state capture as the snapshot for gen.
func writeSnapshot(dir string, gen uint64, cap Capture, nosync bool) error {
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("persist: snapshot temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	enc := &snapEncoder{w: bufio.NewWriterSize(tmp, 1<<16)}
	_, _ = enc.w.Write(snapMagic[:])
	var hdr [snapHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], gen)
	binary.LittleEndian.PutUint64(hdr[8:], cap.Seq)
	binary.LittleEndian.PutUint64(hdr[16:], cap.Epoch)
	binary.LittleEndian.PutUint64(hdr[24:], cap.TombstoneFloor)
	binary.LittleEndian.PutUint64(hdr[32:], uint64(len(cap.Tombstones)))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(len(cap.Entries)))
	enc.body(hdr[:])
	scratch := make([]byte, 0, 256)
	for _, t := range cap.Tombstones {
		if len(t.ID) == 0 || len(t.ID) > MaxIDLen {
			_ = tmp.Close()
			return fmt.Errorf("persist: tombstone id length %d, want 1..%d", len(t.ID), MaxIDLen)
		}
		scratch = binary.AppendUvarint(scratch[:0], t.Seq)
		scratch = binary.AppendUvarint(scratch, uint64(len(t.ID)))
		scratch = append(scratch, t.ID...)
		enc.body(scratch)
	}
	for _, e := range cap.Entries {
		scratch, err = appendEntry(scratch[:0], e)
		if err != nil {
			_ = tmp.Close()
			return err
		}
		enc.body(scratch)
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], enc.crc)
	_, _ = enc.w.Write(trailer[:])
	if err := enc.w.Flush(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("persist: write snapshot: %w", err)
	}
	if !nosync {
		if err := tmp.Sync(); err != nil {
			_ = tmp.Close()
			return fmt.Errorf("persist: sync snapshot: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: close snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), snapPath(dir, gen)); err != nil {
		return fmt.Errorf("persist: publish snapshot: %w", err)
	}
	if !nosync {
		if err := syncDir(dir); err != nil {
			return err
		}
	}
	return nil
}

// snapContents is one decoded snapshot body.
type snapContents struct {
	entries   []Entry
	seq       uint64
	epoch     uint64
	tombFloor uint64
	tombs     []Tombstone
}

// loadSnapshot reads and verifies the snapshot for gen.
func loadSnapshot(dir string, gen uint64) (snapContents, error) {
	data, err := os.ReadFile(snapPath(dir, gen))
	if err != nil {
		return snapContents{}, fmt.Errorf("persist: read snapshot: %w", err)
	}
	if len(data) < len(snapMagic)+snapHeaderSize+4 || [8]byte(data[:8]) != snapMagic {
		return snapContents{}, fmt.Errorf("persist: snapshot gen %d: bad magic or truncated", gen)
	}
	body := data[8 : len(data)-4]
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return snapContents{}, fmt.Errorf("persist: snapshot gen %d: checksum mismatch", gen)
	}
	if g := binary.LittleEndian.Uint64(body); g != gen {
		return snapContents{}, fmt.Errorf("persist: snapshot gen %d: header says %d", gen, g)
	}
	sc := snapContents{
		seq:       binary.LittleEndian.Uint64(body[8:]),
		epoch:     binary.LittleEndian.Uint64(body[16:]),
		tombFloor: binary.LittleEndian.Uint64(body[24:]),
	}
	tombCount := binary.LittleEndian.Uint64(body[32:])
	count := binary.LittleEndian.Uint64(body[40:])
	src := body[snapHeaderSize:]
	// A CRC is a checksum, not authentication: the counts must still be
	// treated as untrusted. Every tombstone occupies at least 3 bytes
	// and every entry at least minEntrySize, so counts the body cannot
	// hold are corruption — reject them (recovery falls back a
	// generation) instead of letting them size an allocation.
	const minTombSize = 3   // 1 seq + 1 id frame + 1 id byte
	const minEntrySize = 27 // 2 id frame + 9 empty coord + 16 error/time
	if tombCount > uint64(len(src))/minTombSize {
		return snapContents{}, fmt.Errorf("persist: snapshot gen %d: tombstone count %d impossible for %d body bytes", gen, tombCount, len(src))
	}
	sc.tombs = make([]Tombstone, 0, tombCount)
	for i := uint64(0); i < tombCount; i++ {
		seq, used := binary.Uvarint(src)
		if used <= 0 {
			return snapContents{}, fmt.Errorf("persist: snapshot gen %d tombstone %d: bad sequence", gen, i)
		}
		id, rest, err := decodeID(src[used:])
		if err != nil {
			return snapContents{}, fmt.Errorf("persist: snapshot gen %d tombstone %d: %w", gen, i, err)
		}
		sc.tombs = append(sc.tombs, Tombstone{Seq: seq, ID: id})
		src = rest
	}
	if count > uint64(len(src))/minEntrySize {
		return snapContents{}, fmt.Errorf("persist: snapshot gen %d: count %d impossible for %d body bytes", gen, count, len(src))
	}
	sc.entries = make([]Entry, 0, count)
	for i := uint64(0); i < count; i++ {
		e, rest, err := decodeEntry(src)
		if err != nil {
			return snapContents{}, fmt.Errorf("persist: snapshot gen %d entry %d: %w", gen, i, err)
		}
		sc.entries = append(sc.entries, e)
		src = rest
	}
	if len(src) != 0 {
		return snapContents{}, fmt.Errorf("persist: snapshot gen %d: %d trailing bytes", gen, len(src))
	}
	return sc, nil
}

// scanDir lists the snapshot and WAL generations present in dir, each
// sorted ascending.
func scanDir(dir string) (snaps, wals []uint64, err error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: scan dir: %w", err)
	}
	for _, de := range names {
		name := de.Name()
		switch {
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".ncs"):
			if gen, ok := parseGen(name, "snap-", ".ncs"); ok {
				snaps = append(snaps, gen)
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".ncl"):
			if gen, ok := parseGen(name, "wal-", ".ncl"); ok {
				wals = append(wals, gen)
			}
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	return snaps, wals, nil
}

// parseGen extracts the generation number from a data file name.
func parseGen(name, prefix, suffix string) (uint64, bool) {
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	gen, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}
