package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Snapshot file layout (format 2 — the body carries the change-stream
// sequence the snapshot was captured at; format-1 files are rejected
// at the magic check):
//
//	8 bytes  magic "NCSNAP\x02\x00"
//	body:    uint64 generation | uint64 capture sequence |
//	         uint64 entry count | entries
//	4 bytes  IEEE CRC of the body
//
// A snapshot becomes visible only through an atomic rename of a fully
// written, fsynced temp file, so a crash during compaction leaves the
// previous snapshot untouched. The trailing checksum guards against
// the remaining failure mode — silent media corruption — in which case
// recovery falls back to the next older generation still on disk.
//
// The capture sequence is read before the state is captured, so the
// entries are a superset of the state at that sequence and replaying
// records with Seq > capture sequence over them converges exactly
// (records are per-id last-write-wins). It seeds the change stream on
// recovery and is the resume point a replica bootstrapping from this
// snapshot hands to the stream.
var snapMagic = [8]byte{'N', 'C', 'S', 'N', 'A', 'P', 2, 0}

// snapPath names the snapshot file for a generation.
func snapPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016d.ncs", gen))
}

// snapEncoder streams snapshot body bytes to a buffered writer while
// folding them into a running CRC, so a multi-million-entry snapshot
// is never materialized in memory — RSS during compaction stays flat
// at the buffer size instead of scaling with the registry.
type snapEncoder struct {
	w   *bufio.Writer
	crc uint32
}

// body writes b as body bytes: checksummed and streamed. Write errors
// are sticky inside bufio.Writer and surfaced by the final Flush, so
// the encoder never has to check them per call.
func (e *snapEncoder) body(b []byte) {
	e.crc = crc32.Update(e.crc, crc32.IEEETable, b)
	_, _ = e.w.Write(b)
}

// writeSnapshot durably writes entries as the snapshot for gen,
// captured at change-stream sequence seq.
func writeSnapshot(dir string, gen, seq uint64, entries []Entry, nosync bool) error {
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("persist: snapshot temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	enc := &snapEncoder{w: bufio.NewWriterSize(tmp, 1<<16)}
	_, _ = enc.w.Write(snapMagic[:])
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:], gen)
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(entries)))
	enc.body(hdr[:])
	scratch := make([]byte, 0, 256)
	for _, e := range entries {
		scratch, err = appendEntry(scratch[:0], e)
		if err != nil {
			tmp.Close()
			return err
		}
		enc.body(scratch)
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], enc.crc)
	_, _ = enc.w.Write(trailer[:])
	if err := enc.w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: write snapshot: %w", err)
	}
	if !nosync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("persist: sync snapshot: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: close snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), snapPath(dir, gen)); err != nil {
		return fmt.Errorf("persist: publish snapshot: %w", err)
	}
	if !nosync {
		if err := syncDir(dir); err != nil {
			return err
		}
	}
	return nil
}

// loadSnapshot reads and verifies the snapshot for gen, returning its
// entries and the change-stream sequence it was captured at.
func loadSnapshot(dir string, gen uint64) ([]Entry, uint64, error) {
	data, err := os.ReadFile(snapPath(dir, gen))
	if err != nil {
		return nil, 0, fmt.Errorf("persist: read snapshot: %w", err)
	}
	if len(data) < len(snapMagic)+24+4 || [8]byte(data[:8]) != snapMagic {
		return nil, 0, fmt.Errorf("persist: snapshot gen %d: bad magic or truncated", gen)
	}
	body := data[8 : len(data)-4]
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, 0, fmt.Errorf("persist: snapshot gen %d: checksum mismatch", gen)
	}
	if g := binary.LittleEndian.Uint64(body); g != gen {
		return nil, 0, fmt.Errorf("persist: snapshot gen %d: header says %d", gen, g)
	}
	seq := binary.LittleEndian.Uint64(body[8:])
	count := binary.LittleEndian.Uint64(body[16:])
	src := body[24:]
	// A CRC is a checksum, not authentication: the count must still be
	// treated as untrusted. Every entry occupies at least minEntrySize
	// bytes, so a count the body cannot hold is corruption — reject it
	// (recovery falls back a generation) instead of letting it size an
	// allocation.
	const minEntrySize = 27 // 2 id frame + 9 empty coord + 16 error/time
	if count > uint64(len(src))/minEntrySize {
		return nil, 0, fmt.Errorf("persist: snapshot gen %d: count %d impossible for %d body bytes", gen, count, len(src))
	}
	entries := make([]Entry, 0, count)
	for i := uint64(0); i < count; i++ {
		e, rest, err := decodeEntry(src)
		if err != nil {
			return nil, 0, fmt.Errorf("persist: snapshot gen %d entry %d: %w", gen, i, err)
		}
		entries = append(entries, e)
		src = rest
	}
	if len(src) != 0 {
		return nil, 0, fmt.Errorf("persist: snapshot gen %d: %d trailing bytes", gen, len(src))
	}
	return entries, seq, nil
}

// scanDir lists the snapshot and WAL generations present in dir, each
// sorted ascending.
func scanDir(dir string) (snaps, wals []uint64, err error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: scan dir: %w", err)
	}
	for _, de := range names {
		name := de.Name()
		switch {
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".ncs"):
			if gen, ok := parseGen(name, "snap-", ".ncs"); ok {
				snaps = append(snaps, gen)
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".ncl"):
			if gen, ok := parseGen(name, "wal-", ".ncl"); ok {
				wals = append(wals, gen)
			}
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	return snaps, wals, nil
}

// parseGen extracts the generation number from a data file name.
func parseGen(name, prefix, suffix string) (uint64, bool) {
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	gen, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}
