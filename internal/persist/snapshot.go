package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Snapshot file layout:
//
//	8 bytes  magic "NCSNAP\x01\x00"
//	body:    uint64 generation | uint64 entry count | entries
//	4 bytes  IEEE CRC of the body
//
// A snapshot becomes visible only through an atomic rename of a fully
// written, fsynced temp file, so a crash during compaction leaves the
// previous snapshot untouched. The trailing checksum guards against
// the remaining failure mode — silent media corruption — in which case
// recovery falls back to the next older generation still on disk.
var snapMagic = [8]byte{'N', 'C', 'S', 'N', 'A', 'P', 1, 0}

// snapPath names the snapshot file for a generation.
func snapPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016d.ncs", gen))
}

// writeSnapshot durably writes entries as the snapshot for gen.
func writeSnapshot(dir string, gen uint64, entries []Entry, nosync bool) error {
	body := make([]byte, 0, 16+len(entries)*64)
	body = binary.LittleEndian.AppendUint64(body, gen)
	body = binary.LittleEndian.AppendUint64(body, uint64(len(entries)))
	var err error
	for _, e := range entries {
		if body, err = appendEntry(body, e); err != nil {
			return err
		}
	}
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("persist: snapshot temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	out := make([]byte, 0, len(snapMagic)+len(body)+4)
	out = append(out, snapMagic[:]...)
	out = append(out, body...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
	if _, err := tmp.Write(out); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: write snapshot: %w", err)
	}
	if !nosync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("persist: sync snapshot: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: close snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), snapPath(dir, gen)); err != nil {
		return fmt.Errorf("persist: publish snapshot: %w", err)
	}
	if !nosync {
		if err := syncDir(dir); err != nil {
			return err
		}
	}
	return nil
}

// loadSnapshot reads and verifies the snapshot for gen.
func loadSnapshot(dir string, gen uint64) ([]Entry, error) {
	data, err := os.ReadFile(snapPath(dir, gen))
	if err != nil {
		return nil, fmt.Errorf("persist: read snapshot: %w", err)
	}
	if len(data) < len(snapMagic)+16+4 || [8]byte(data[:8]) != snapMagic {
		return nil, fmt.Errorf("persist: snapshot gen %d: bad magic or truncated", gen)
	}
	body := data[8 : len(data)-4]
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("persist: snapshot gen %d: checksum mismatch", gen)
	}
	if g := binary.LittleEndian.Uint64(body); g != gen {
		return nil, fmt.Errorf("persist: snapshot gen %d: header says %d", gen, g)
	}
	count := binary.LittleEndian.Uint64(body[8:])
	src := body[16:]
	// A CRC is a checksum, not authentication: the count must still be
	// treated as untrusted. Every entry occupies at least minEntrySize
	// bytes, so a count the body cannot hold is corruption — reject it
	// (recovery falls back a generation) instead of letting it size an
	// allocation.
	const minEntrySize = 27 // 2 id frame + 9 empty coord + 16 error/time
	if count > uint64(len(src))/minEntrySize {
		return nil, fmt.Errorf("persist: snapshot gen %d: count %d impossible for %d body bytes", gen, count, len(src))
	}
	entries := make([]Entry, 0, count)
	for i := uint64(0); i < count; i++ {
		e, rest, err := decodeEntry(src)
		if err != nil {
			return nil, fmt.Errorf("persist: snapshot gen %d entry %d: %w", gen, i, err)
		}
		entries = append(entries, e)
		src = rest
	}
	if len(src) != 0 {
		return nil, fmt.Errorf("persist: snapshot gen %d: %d trailing bytes", gen, len(src))
	}
	return entries, nil
}

// scanDir lists the snapshot and WAL generations present in dir, each
// sorted ascending.
func scanDir(dir string) (snaps, wals []uint64, err error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: scan dir: %w", err)
	}
	for _, de := range names {
		name := de.Name()
		switch {
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".ncs"):
			if gen, ok := parseGen(name, "snap-", ".ncs"); ok {
				snaps = append(snaps, gen)
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".ncl"):
			if gen, ok := parseGen(name, "wal-", ".ncl"); ok {
				wals = append(wals, gen)
			}
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	return snaps, wals, nil
}

// parseGen extracts the generation number from a data file name.
func parseGen(name, prefix, suffix string) (uint64, bool) {
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	gen, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}
