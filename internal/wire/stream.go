package wire

import (
	"errors"
	"io"
)

// maxStreamBuffer caps how far the stream reader will grow its window
// chasing a single record. The largest honest record is an evict frame
// of a few thousand ids; anything forcing the window past this bound is
// treated as damage rather than buffered indefinitely.
const maxStreamBuffer = 8 << 20

// ErrStreamTooLarge reports a record that kept demanding more bytes
// past maxStreamBuffer.
var ErrStreamTooLarge = errors.New("wire: record exceeds stream buffer cap")

// Reader incrementally decodes wire records from an io.Reader, refilling
// an internal window on ErrShort so a snapshot of a hundred thousand
// entries never needs to be buffered whole. The zero value is not
// usable; construct with NewReader.
type Reader struct {
	src  io.Reader
	buf  []byte
	r, w int
}

// NewReader wraps src with the given initial window size (a sensible
// default is used when size is zero or negative).
func NewReader(src io.Reader, size int) *Reader {
	if size <= 0 {
		size = 64 << 10
	}
	return &Reader{src: src, buf: make([]byte, size)}
}

// window returns the currently buffered, undecoded bytes.
func (d *Reader) window() []byte { return d.buf[d.r:d.w] }

// more compacts the window to the front of the buffer, growing it when
// full, and reads at least one more byte from the source. io.EOF is
// returned verbatim only at a record boundary; a partial record at EOF
// surfaces as io.ErrUnexpectedEOF from the decode methods.
func (d *Reader) more() error {
	if d.r > 0 {
		n := copy(d.buf, d.buf[d.r:d.w])
		d.r, d.w = 0, n
	}
	if d.w == len(d.buf) {
		if len(d.buf)*2 > maxStreamBuffer {
			return ErrStreamTooLarge
		}
		grown := make([]byte, len(d.buf)*2)
		d.w = copy(grown, d.buf[:d.w])
		d.buf = grown
	}
	n, err := d.src.Read(d.buf[d.w:])
	d.w += n
	if n > 0 {
		return nil
	}
	if err == nil {
		err = io.ErrNoProgress
	}
	return err
}

// decode runs fn over the buffered window, refilling on ErrShort, and
// advances past the consumed bytes on success.
func (d *Reader) decode(fn func([]byte) (int, error)) error {
	for {
		n, err := fn(d.window())
		if err == nil {
			d.r += n
			return nil
		}
		if !errors.Is(err, ErrShort) {
			return err
		}
		if ferr := d.more(); ferr != nil {
			if ferr == io.EOF {
				if d.r == d.w {
					return io.EOF
				}
				return io.ErrUnexpectedEOF
			}
			return ferr
		}
	}
}

// ReadFrame decodes the next frame into fr, reusing its backing storage
// where DecodeFrameInto can. It returns io.EOF cleanly when the stream
// ends exactly at a frame boundary.
func (d *Reader) ReadFrame(fr *Frame) error {
	return d.decode(func(src []byte) (int, error) {
		return DecodeFrameInto(fr, src)
	})
}

// ReadBatchHeader decodes a /changes batch header.
func (d *Reader) ReadBatchHeader() (BatchHeader, error) {
	var h BatchHeader
	err := d.decode(func(src []byte) (int, error) {
		var n int
		var err error
		h, n, err = DecodeBatchHeader(src)
		return n, err
	})
	return h, err
}

// ReadSnapshotHeader decodes a /snapshot header.
func (d *Reader) ReadSnapshotHeader() (SnapshotHeader, error) {
	var h SnapshotHeader
	err := d.decode(func(src []byte) (int, error) {
		var n int
		var err error
		h, n, err = DecodeSnapshotHeader(src)
		return n, err
	})
	return h, err
}
