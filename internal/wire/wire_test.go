package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"

	"netcoord/internal/coord"
)

func sampleFrames() []Frame {
	return []Frame{
		{
			Op:          OpUpsert,
			Seq:         1,
			Epoch:       3,
			PubNs:       1_700_000_000_123_456_789,
			ID:          "node-0001",
			Coord:       coord.Coordinate{Vec: []float64{1.5, -2.25, 1e-9}, Height: 0.125},
			Error:       0.42,
			UpdatedAtNs: 1_700_000_000_000_000_000,
		},
		{
			Op:    OpUpsert,
			Seq:   math.MaxUint64,
			Epoch: 0,
			ID:    "",
			Coord: coord.Coordinate{},
		},
		{
			Op:          OpUpsert,
			Seq:         7,
			ID:          "n",
			Coord:       coord.Coordinate{Vec: make([]float64, coord.MaxDimension), Height: -1},
			Error:       math.Inf(1),
			UpdatedAtNs: -5,
		},
		{Op: OpRemove, Seq: 2, Epoch: 1, PubNs: 99, ID: "gone"},
		{Op: OpRemove, Seq: 3, ID: ""},
		{Op: OpEvict, Seq: 4, Epoch: 2, IDs: []string{"a", "b", "longer-id-here"}},
		{Op: OpEvict, Seq: 5, IDs: nil},
	}
}

func framesEqual(a, b *Frame) bool {
	if a.Op != b.Op || a.Seq != b.Seq || a.Epoch != b.Epoch || a.PubNs != b.PubNs ||
		a.ID != b.ID || a.UpdatedAtNs != b.UpdatedAtNs {
		return false
	}
	if math.Float64bits(a.Error) != math.Float64bits(b.Error) {
		return false
	}
	if math.Float64bits(a.Coord.Height) != math.Float64bits(b.Coord.Height) {
		return false
	}
	if len(a.Coord.Vec) != len(b.Coord.Vec) {
		return false
	}
	for i := range a.Coord.Vec {
		if math.Float64bits(a.Coord.Vec[i]) != math.Float64bits(b.Coord.Vec[i]) {
			return false
		}
	}
	if len(a.IDs) != len(b.IDs) {
		return false
	}
	for i := range a.IDs {
		if a.IDs[i] != b.IDs[i] {
			return false
		}
	}
	return true
}

func TestFrameRoundTrip(t *testing.T) {
	for _, fr := range sampleFrames() {
		buf, err := AppendFrame(nil, &fr)
		if err != nil {
			t.Fatalf("AppendFrame(%+v): %v", fr, err)
		}
		got, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("DecodeFrame: %v", err)
		}
		if n != len(buf) {
			t.Fatalf("consumed %d of %d bytes", n, len(buf))
		}
		want := fr
		if want.Coord.Vec == nil && got.Coord.Vec != nil && len(got.Coord.Vec) == 0 {
			// a zero-dimension coordinate decodes to an empty vector
			want.Coord.Vec = got.Coord.Vec
		}
		if want.IDs == nil && len(got.IDs) == 0 {
			want.IDs = got.IDs
		}
		if !framesEqual(&got, &want) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestFrameRoundTripConcatenated(t *testing.T) {
	frames := sampleFrames()
	var buf []byte
	for i := range frames {
		var err error
		buf, err = AppendFrame(buf, &frames[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	off := 0
	var fr Frame
	for i := range frames {
		n, err := DecodeFrameInto(&fr, buf[off:])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if fr.Seq != frames[i].Seq || fr.Op != frames[i].Op {
			t.Fatalf("frame %d: got seq=%d op=%d", i, fr.Seq, fr.Op)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d", off, len(buf))
	}
}

// TestFrameTruncationEveryOffset feeds every proper prefix of every
// encoded frame to the decoder: each must fail with ErrShort (never
// ErrMalformed, never success, never a panic).
func TestFrameTruncationEveryOffset(t *testing.T) {
	for _, fr := range sampleFrames() {
		buf, err := AppendFrame(nil, &fr)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(buf); cut++ {
			_, _, err := DecodeFrame(buf[:cut])
			if !errors.Is(err, ErrShort) {
				t.Fatalf("op=%d cut=%d/%d: got %v, want ErrShort", fr.Op, cut, len(buf), err)
			}
		}
	}
}

func TestFrameDecodeRejectsDamage(t *testing.T) {
	good, err := AppendFrame(nil, &Frame{Op: OpUpsert, Seq: 1, ID: "x", Coord: coord.New(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"bad magic":   append([]byte{0x00}, good[1:]...),
		"bad version": append([]byte{MagicFrame, 99}, good[2:]...),
		"bad op":      append([]byte{MagicFrame, Version, 77}, good[3:]...),
	}
	for name, buf := range cases {
		if _, _, err := DecodeFrame(buf); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: got %v, want ErrMalformed", name, err)
		}
	}
}

// TestHostileLengthPrefixes confirms that attacker-controlled length
// fields cannot drive large allocations: oversized id lengths and
// oversized list counts are rejected before any allocation sized from
// them, and a short-but-plausible length is ErrShort, not a read past
// the buffer.
func TestHostileLengthPrefixes(t *testing.T) {
	header := func(op byte, seq, epoch, pub uint64) []byte {
		b := []byte{MagicFrame, Version, op}
		b = binary.AppendUvarint(b, seq)
		b = binary.AppendUvarint(b, epoch)
		b = binary.AppendUvarint(b, pub)
		return b
	}

	t.Run("id length over cap", func(t *testing.T) {
		buf := header(OpRemove, 1, 0, 0)
		buf = binary.AppendUvarint(buf, MaxIDLen+1)
		if _, _, err := DecodeFrame(buf); !errors.Is(err, ErrMalformed) {
			t.Fatalf("got %v, want ErrMalformed", err)
		}
	})
	t.Run("id length huge", func(t *testing.T) {
		buf := header(OpRemove, 1, 0, 0)
		buf = binary.AppendUvarint(buf, math.MaxUint64/2)
		if _, _, err := DecodeFrame(buf); !errors.Is(err, ErrMalformed) {
			t.Fatalf("got %v, want ErrMalformed", err)
		}
	})
	t.Run("id length beyond buffer", func(t *testing.T) {
		buf := header(OpRemove, 1, 0, 0)
		buf = binary.AppendUvarint(buf, 100)
		buf = append(buf, "only-a-few"...)
		if _, _, err := DecodeFrame(buf); !errors.Is(err, ErrShort) {
			t.Fatalf("got %v, want ErrShort", err)
		}
	})
	t.Run("evict count over cap", func(t *testing.T) {
		buf := header(OpEvict, 1, 0, 0)
		buf = binary.AppendUvarint(buf, MaxListLen+1)
		if _, _, err := DecodeFrame(buf); !errors.Is(err, ErrMalformed) {
			t.Fatalf("got %v, want ErrMalformed", err)
		}
	})
	t.Run("evict count beyond buffer", func(t *testing.T) {
		buf := header(OpEvict, 1, 0, 0)
		buf = binary.AppendUvarint(buf, 1000)
		if _, _, err := DecodeFrame(buf); !errors.Is(err, ErrShort) {
			t.Fatalf("got %v, want ErrShort", err)
		}
	})
	t.Run("dimension over cap", func(t *testing.T) {
		buf := header(OpUpsert, 1, 0, 0)
		buf = binary.AppendUvarint(buf, 1)
		buf = append(buf, 'x')
		buf = append(buf, coord.MaxDimension+1)
		if _, _, err := DecodeFrame(buf); !errors.Is(err, ErrMalformed) {
			t.Fatalf("got %v, want ErrMalformed", err)
		}
	})
	t.Run("pub_ns overflows int64", func(t *testing.T) {
		b := []byte{MagicFrame, Version, OpRemove}
		b = binary.AppendUvarint(b, 1)
		b = binary.AppendUvarint(b, 0)
		b = binary.AppendUvarint(b, math.MaxUint64)
		if _, _, err := DecodeFrame(b); !errors.Is(err, ErrMalformed) {
			t.Fatalf("got %v, want ErrMalformed", err)
		}
	})
}

func TestAppendFrameValidates(t *testing.T) {
	long := make([]byte, MaxIDLen+1)
	if _, err := AppendFrame(nil, &Frame{Op: OpRemove, ID: string(long)}); err == nil {
		t.Fatal("oversized id accepted")
	}
	if _, err := AppendFrame(nil, &Frame{Op: 0}); err == nil {
		t.Fatal("zero op accepted")
	}
	big := coord.Coordinate{Vec: make([]float64, coord.MaxDimension+1)}
	if _, err := AppendFrame(nil, &Frame{Op: OpUpsert, ID: "x", Coord: big}); err == nil {
		t.Fatal("oversized dimension accepted")
	}
}

func TestBatchHeaderRoundTrip(t *testing.T) {
	h := BatchHeader{Seq: 12345, Epoch: 7, Count: 42}
	buf := AppendBatchHeader(nil, h)
	got, n, err := DecodeBatchHeader(buf)
	if err != nil || n != len(buf) || got != h {
		t.Fatalf("got %+v n=%d err=%v", got, n, err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeBatchHeader(buf[:cut]); !errors.Is(err, ErrShort) {
			t.Fatalf("cut=%d: got %v, want ErrShort", cut, err)
		}
	}
}

func TestSnapshotHeaderRoundTrip(t *testing.T) {
	cases := []SnapshotHeader{
		{Seq: 9, Epoch: 2, Delta: true, FollowerOf: "http://leader", Removed: []string{"a", "b"}, EntryCount: 3},
		{Seq: 0, Epoch: 0, Delta: false, FollowerOf: "", Removed: nil, EntryCount: 0},
	}
	for _, h := range cases {
		buf, err := AppendSnapshotHeader(nil, &h)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := DecodeSnapshotHeader(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("decode: n=%d err=%v", n, err)
		}
		if got.Seq != h.Seq || got.Epoch != h.Epoch || got.Delta != h.Delta ||
			got.FollowerOf != h.FollowerOf || got.EntryCount != h.EntryCount ||
			len(got.Removed) != len(h.Removed) {
			t.Fatalf("got %+v, want %+v", got, h)
		}
		for i := range h.Removed {
			if got.Removed[i] != h.Removed[i] {
				t.Fatalf("removed[%d] = %q", i, got.Removed[i])
			}
		}
		for cut := 0; cut < len(buf); cut++ {
			if _, _, err := DecodeSnapshotHeader(buf[:cut]); !errors.Is(err, ErrShort) {
				t.Fatalf("cut=%d: got %v, want ErrShort", cut, err)
			}
		}
	}
}

// oneByteReader doles out a single byte per Read to exercise every
// refill path in the stream reader.
type oneByteReader struct{ rest []byte }

func (r *oneByteReader) Read(p []byte) (int, error) {
	if len(r.rest) == 0 {
		return 0, io.EOF
	}
	p[0] = r.rest[0]
	r.rest = r.rest[1:]
	return 1, nil
}

func TestStreamReaderDecodesDribbledInput(t *testing.T) {
	frames := sampleFrames()
	hdr := SnapshotHeader{Seq: 10, Epoch: 1, FollowerOf: "up", Removed: []string{"r1", "r2"}, EntryCount: uint64(len(frames))}
	buf, err := AppendSnapshotHeader(nil, &hdr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frames {
		if buf, err = AppendFrame(buf, &frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	d := NewReader(&oneByteReader{rest: buf}, 4)
	got, err := d.ReadSnapshotHeader()
	if err != nil {
		t.Fatalf("header: %v", err)
	}
	if got.Seq != hdr.Seq || got.EntryCount != hdr.EntryCount || len(got.Removed) != 2 {
		t.Fatalf("header mismatch: %+v", got)
	}
	var fr Frame
	for i := range frames {
		if err := d.ReadFrame(&fr); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if fr.Seq != frames[i].Seq {
			t.Fatalf("frame %d: seq %d", i, fr.Seq)
		}
	}
	if err := d.ReadFrame(&fr); err != io.EOF {
		t.Fatalf("tail: got %v, want io.EOF", err)
	}
}

func TestStreamReaderPartialRecordAtEOF(t *testing.T) {
	fr := Frame{Op: OpUpsert, Seq: 1, ID: "node", Coord: coord.New(1, 2, 3)}
	buf, err := AppendFrame(nil, &fr)
	if err != nil {
		t.Fatal(err)
	}
	d := NewReader(bytes.NewReader(buf[:len(buf)-3]), 16)
	var got Frame
	if err := d.ReadFrame(&got); err != io.ErrUnexpectedEOF {
		t.Fatalf("got %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestStreamReaderEvictReusesIDBacking(t *testing.T) {
	var buf []byte
	var err error
	for i := 0; i < 3; i++ {
		if buf, err = AppendFrame(buf, &Frame{Op: OpEvict, Seq: uint64(i + 1), IDs: []string{"a", "b"}}); err != nil {
			t.Fatal(err)
		}
	}
	d := NewReader(bytes.NewReader(buf), 16)
	var fr Frame
	if err := d.ReadFrame(&fr); err != nil {
		t.Fatal(err)
	}
	first := cap(fr.IDs)
	for i := 1; i < 3; i++ {
		if err := d.ReadFrame(&fr); err != nil {
			t.Fatal(err)
		}
		if cap(fr.IDs) != first {
			t.Fatalf("IDs backing reallocated: cap %d -> %d", first, cap(fr.IDs))
		}
	}
}
