package wire

import (
	"testing"

	"netcoord/internal/coord"
)

// BenchmarkFrameEncode measures the publish-time encode of a typical
// upsert frame into a reused buffer. This is the once-per-event cost
// the fan-out paths amortize across every subscriber; CI gates it at
// zero allocations.
func BenchmarkFrameEncode(b *testing.B) {
	fr := &Frame{
		Op:          OpUpsert,
		Seq:         123456,
		Epoch:       3,
		PubNs:       1_700_000_000_123_456_789,
		ID:          "node-0001",
		Coord:       coord.New(0.25, -1.5, 3.75),
		Error:       0.42,
		UpdatedAtNs: 1_700_000_000_000_000_000,
	}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		var err error
		if buf, err = AppendFrame(buf, fr); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkFrameDecode measures the apply-side decode into a reused
// frame. The id string and coordinate vector are fresh allocations by
// necessity (they outlive the source buffer), so this is not gated at
// zero.
func BenchmarkFrameDecode(b *testing.B) {
	buf, err := AppendFrame(nil, &Frame{
		Op:          OpUpsert,
		Seq:         123456,
		Epoch:       3,
		PubNs:       1_700_000_000_123_456_789,
		ID:          "node-0001",
		Coord:       coord.New(0.25, -1.5, 3.75),
		Error:       0.42,
		UpdatedAtNs: 1_700_000_000_000_000_000,
	})
	if err != nil {
		b.Fatal(err)
	}
	var fr Frame
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeFrameInto(&fr, buf); err != nil {
			b.Fatal(err)
		}
	}
}
