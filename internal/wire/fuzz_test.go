package wire

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeFrame hammers the frame decoder with arbitrary bytes. Any
// input must either fail cleanly with ErrShort/ErrMalformed or decode
// into a frame whose re-encoding is idempotent: encoding the decoded
// frame and decoding that again yields byte-identical encodings and an
// equal frame. Byte-level comparison of the encodings keeps the check
// NaN-safe, mirroring internal/coord/fuzz_test.go. (Equality with the
// raw input is deliberately not required — varints admit non-canonical
// encodings that re-encode shorter.)
func FuzzDecodeFrame(f *testing.F) {
	for _, fr := range sampleFrames() {
		buf, err := AppendFrame(nil, &fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		for _, cut := range []int{1, 3, 7, len(buf) / 2, len(buf) - 1} {
			if cut >= 0 && cut < len(buf) {
				f.Add(buf[:cut])
			}
		}
	}
	f.Add([]byte{})
	f.Add([]byte{MagicFrame})
	f.Add([]byte{MagicFrame, Version, OpUpsert, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, src []byte) {
		fr, n, err := DecodeFrame(src)
		if err != nil {
			if !errors.Is(err, ErrShort) && !errors.Is(err, ErrMalformed) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if n <= 0 || n > len(src) {
			t.Fatalf("consumed %d of %d bytes", n, len(src))
		}
		enc1, err := AppendFrame(nil, &fr)
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		fr2, n2, err := DecodeFrame(enc1)
		if err != nil || n2 != len(enc1) {
			t.Fatalf("decode of re-encoding failed: n=%d err=%v", n2, err)
		}
		enc2, err := AppendFrame(nil, &fr2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("re-encoding not idempotent:\n first %x\nsecond %x", enc1, enc2)
		}
		if !framesEqual(&fr, &fr2) {
			t.Fatalf("decoded frames differ:\n first %+v\nsecond %+v", fr, fr2)
		}
	})
}

// FuzzDecodeHeaders applies the same discipline to the batch and
// snapshot headers.
func FuzzDecodeHeaders(f *testing.F) {
	b := AppendBatchHeader(nil, BatchHeader{Seq: 5, Epoch: 2, Count: 9})
	f.Add(b)
	s, err := AppendSnapshotHeader(nil, &SnapshotHeader{Seq: 3, Epoch: 1, Delta: true, FollowerOf: "up", Removed: []string{"x"}, EntryCount: 4})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(s)
	f.Add([]byte{MagicBatch, Version})
	f.Add([]byte{MagicSnapshot, Version, 0xff})

	f.Fuzz(func(t *testing.T, src []byte) {
		if h, n, err := DecodeBatchHeader(src); err == nil {
			if n <= 0 || n > len(src) {
				t.Fatalf("batch consumed %d of %d", n, len(src))
			}
			enc := AppendBatchHeader(nil, h)
			if h2, _, err := DecodeBatchHeader(enc); err != nil || h2 != h {
				t.Fatalf("batch re-encode mismatch: %+v vs %+v (%v)", h, h2, err)
			}
		} else if !errors.Is(err, ErrShort) && !errors.Is(err, ErrMalformed) {
			t.Fatalf("batch: unexpected error class: %v", err)
		}
		if h, n, err := DecodeSnapshotHeader(src); err == nil {
			if n <= 0 || n > len(src) {
				t.Fatalf("snapshot consumed %d of %d", n, len(src))
			}
			enc, err := AppendSnapshotHeader(nil, &h)
			if err != nil {
				t.Fatalf("snapshot re-encode failed: %v", err)
			}
			h2, n2, err := DecodeSnapshotHeader(enc)
			if err != nil || n2 != len(enc) {
				t.Fatalf("snapshot re-decode failed: %v", err)
			}
			if h2.Seq != h.Seq || h2.Epoch != h.Epoch || h2.Delta != h.Delta ||
				h2.FollowerOf != h.FollowerOf || h2.EntryCount != h.EntryCount ||
				len(h2.Removed) != len(h.Removed) {
				t.Fatalf("snapshot header mismatch: %+v vs %+v", h, h2)
			}
		} else if !errors.Is(err, ErrShort) && !errors.Is(err, ErrMalformed) {
			t.Fatalf("snapshot: unexpected error class: %v", err)
		}
	})
}
