// Package wire defines the compact binary change-frame format exchanged
// between tiers of the serving stack. A frame is encoded once at leader
// publish time and relayed as opaque bytes end to end: every replica
// decodes a frame to apply it locally but forwards the original bytes
// untouched, so a chain of N relays pays one encode total instead of N
// decode/re-encode round trips.
//
// Frames are self-delimiting and CRC-free — the transports that carry
// them (HTTP bodies, the WAL) already frame and checksum. Layout, big
// endian throughout:
//
//	byte    magic (0xC0)
//	byte    version (1)
//	byte    op (1 = upsert, 2 = remove, 3 = evict)
//	uvarint seq
//	uvarint epoch
//	uvarint pub_ns (leader publish time, UnixNano, clamped at 0)
//	-- op = upsert --
//	uvarint id length, followed by id bytes (max 4096)
//	coord   1-byte dimension d (max 16), d × float64, float64 height
//	        (the internal/coord/codec.go layout)
//	8 bytes float64 error estimate
//	8 bytes int64 updated_at UnixNano
//	-- op = remove --
//	uvarint id length, followed by id bytes
//	-- op = evict --
//	uvarint id count, then per id: uvarint length + bytes
//
// Decoding never allocates more than a capped size from
// attacker-controlled length prefixes: id lengths are bounded by both
// MaxIDLen and the bytes actually remaining in the buffer, coordinate
// dimensions by coord.MaxDimension, and evict counts by the remaining
// buffer length.
package wire

import (
	"encoding/binary"
	"errors"
	"math"

	"netcoord/internal/coord"
)

// Frame magic bytes. Each top-level record starts with one of these so
// a stream decoder can detect corruption immediately.
const (
	MagicFrame    = 0xC0 // a single change frame
	MagicBatch    = 0xC1 // a /changes batch header, followed by frames
	MagicSnapshot = 0xC2 // a /snapshot header, followed by entry frames
)

// Version is the current frame-format version.
const Version = 1

// Op codes. These mirror internal/changefeed ops by value.
const (
	OpUpsert byte = 1
	OpRemove byte = 2
	OpEvict  byte = 3
)

// Content types used for negotiation on /changes and /snapshot. JSON
// remains the fallback; a client opts in via the Accept header or the
// format=frames query parameter.
const (
	ContentTypeFrames   = "application/x-netcoord-frames"
	ContentTypeSnapshot = "application/x-netcoord-snapshot"
)

// MaxIDLen bounds the node-id length accepted on the wire.
const MaxIDLen = 4096

// MaxListLen bounds the id-list length accepted in an evict frame or a
// snapshot removed-set before any allocation happens. Honest producers
// chunk evictions far below this (changefeed caps chunks at 512 ids).
const MaxListLen = 1 << 20

// ErrShort reports that the buffer ends before the record does; a
// stream decoder should read more bytes and retry.
var ErrShort = errors.New("wire: short buffer")

// ErrMalformed reports a structurally invalid record: bad magic or
// version, an unknown op, or a length prefix that exceeds its cap.
var ErrMalformed = errors.New("wire: malformed frame")

// Encode-side validation errors.
var (
	errBadOp     = errors.New("wire: unknown op")
	errIDTooLong = errors.New("wire: id exceeds wire maximum")
	errBadDim    = errors.New("wire: coordinate dimension exceeds wire maximum")
)

// Frame is the decoded form of a single change frame. Upserts carry
// ID/Coord/Error/UpdatedAtNs; removes carry ID; evicts carry IDs.
type Frame struct {
	Op          byte
	Seq         uint64
	Epoch       uint64
	PubNs       int64
	ID          string
	Coord       coord.Coordinate
	Error       float64
	UpdatedAtNs int64
	IDs         []string
}

// AppendFrame appends the binary encoding of fr to dst and returns the
// extended slice. It writes only into dst (growing it as append does)
// and performs no other allocation.
//
//nc:hotpath
func AppendFrame(dst []byte, fr *Frame) ([]byte, error) {
	switch fr.Op {
	case OpUpsert, OpRemove, OpEvict:
	default:
		return dst, errBadOp
	}
	dst = append(dst, MagicFrame, Version, fr.Op)
	dst = binary.AppendUvarint(dst, fr.Seq)
	dst = binary.AppendUvarint(dst, fr.Epoch)
	dst = binary.AppendUvarint(dst, clampNs(fr.PubNs))
	switch fr.Op {
	case OpUpsert:
		var err error
		if dst, err = appendID(dst, fr.ID); err != nil {
			return dst, err
		}
		// The coordinate layout is inlined from internal/coord/codec.go
		// (dimension byte, d × float64, height) so the encode path stays
		// free of wrapped-error construction.
		dim := len(fr.Coord.Vec)
		if dim > coord.MaxDimension {
			return dst, errBadDim
		}
		dst = append(dst, byte(dim))
		for _, comp := range fr.Coord.Vec {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(comp))
		}
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(fr.Coord.Height))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(fr.Error))
		dst = binary.BigEndian.AppendUint64(dst, uint64(fr.UpdatedAtNs))
	case OpRemove:
		var err error
		if dst, err = appendID(dst, fr.ID); err != nil {
			return dst, err
		}
	case OpEvict:
		dst = binary.AppendUvarint(dst, uint64(len(fr.IDs)))
		for _, id := range fr.IDs {
			var err error
			if dst, err = appendID(dst, id); err != nil {
				return dst, err
			}
		}
	}
	return dst, nil
}

// appendID appends a length-prefixed id.
//
//nc:hotpath
func appendID(dst []byte, id string) ([]byte, error) {
	if len(id) > MaxIDLen {
		return dst, errIDTooLong
	}
	dst = binary.AppendUvarint(dst, uint64(len(id)))
	return append(dst, id...), nil
}

// clampNs converts a UnixNano timestamp to the non-negative uvarint
// domain. Negative timestamps (pre-1970 clock damage) clamp to zero.
//
//nc:hotpath
func clampNs(ns int64) uint64 {
	if ns < 0 {
		return 0
	}
	return uint64(ns)
}

// DecodeFrame parses one frame from the front of src, returning the
// frame and the number of bytes consumed. It returns ErrShort when src
// ends before the frame does and ErrMalformed on structural damage.
func DecodeFrame(src []byte) (Frame, int, error) {
	var fr Frame
	n, err := DecodeFrameInto(&fr, src)
	return fr, n, err
}

// DecodeFrameInto parses one frame from the front of src into fr,
// reusing fr.IDs backing storage where possible, and returns the number
// of bytes consumed. The id strings and coordinate vector are freshly
// allocated (they outlive src), but every allocation is capped: ids by
// MaxIDLen and by the bytes remaining, coordinate dimension by
// coord.MaxDimension, evict counts by the bytes remaining.
func DecodeFrameInto(fr *Frame, src []byte) (int, error) {
	if len(src) < 3 {
		return 0, ErrShort
	}
	if src[0] != MagicFrame || src[1] != Version {
		return 0, ErrMalformed
	}
	op := src[2]
	off := 3
	var err error
	fr.Op = op
	fr.ID = ""
	fr.Coord = coord.Coordinate{}
	fr.Error = 0
	fr.UpdatedAtNs = 0
	fr.IDs = fr.IDs[:0]
	if fr.Seq, off, err = readUvarint(src, off); err != nil {
		return 0, err
	}
	if fr.Epoch, off, err = readUvarint(src, off); err != nil {
		return 0, err
	}
	var pub uint64
	if pub, off, err = readUvarint(src, off); err != nil {
		return 0, err
	}
	if pub > math.MaxInt64 {
		return 0, ErrMalformed
	}
	fr.PubNs = int64(pub)
	switch op {
	case OpUpsert:
		if fr.ID, off, err = readID(src, off); err != nil {
			return 0, err
		}
		if fr.Coord, off, err = readCoordinate(src, off); err != nil {
			return 0, err
		}
		if len(src)-off < 16 {
			return 0, ErrShort
		}
		fr.Error = math.Float64frombits(binary.BigEndian.Uint64(src[off:]))
		fr.UpdatedAtNs = int64(binary.BigEndian.Uint64(src[off+8:]))
		off += 16
	case OpRemove:
		if fr.ID, off, err = readID(src, off); err != nil {
			return 0, err
		}
	case OpEvict:
		var count uint64
		if count, off, err = readUvarint(src, off); err != nil {
			return 0, err
		}
		// Every listed id costs at least one byte (its length prefix),
		// so the remaining buffer bounds any honest count: a frame
		// whose buffer holds fewer bytes than ids is simply incomplete,
		// and a count beyond the structural cap is rejected before any
		// allocation sized from it.
		if count > MaxListLen {
			return 0, ErrMalformed
		}
		if count > uint64(len(src)-off) {
			return 0, ErrShort
		}
		if fr.IDs == nil || uint64(cap(fr.IDs)) < count {
			fr.IDs = make([]string, 0, count)
		}
		for i := uint64(0); i < count; i++ {
			var id string
			if id, off, err = readID(src, off); err != nil {
				return 0, err
			}
			fr.IDs = append(fr.IDs, id)
		}
	default:
		return 0, ErrMalformed
	}
	return off, nil
}

// readUvarint decodes a uvarint at src[off:]. A buffer that ends
// mid-varint is ErrShort (binary.Uvarint only reports "buf too small"
// when fewer than the maximum varint width remain); a varint that
// overflows 64 bits is ErrMalformed.
func readUvarint(src []byte, off int) (uint64, int, error) {
	v, n := binary.Uvarint(src[off:])
	if n > 0 {
		return v, off + n, nil
	}
	if n == 0 {
		return 0, off, ErrShort
	}
	return 0, off, ErrMalformed
}

// readID decodes a length-prefixed id at src[off:]. The allocation is
// capped by MaxIDLen and by the bytes actually present.
func readID(src []byte, off int) (string, int, error) {
	n, off, err := readUvarint(src, off)
	if err != nil {
		return "", off, err
	}
	if n > MaxIDLen {
		return "", off, ErrMalformed
	}
	if uint64(len(src)-off) < n {
		return "", off, ErrShort
	}
	end := off + int(n)
	return string(src[off:end]), end, nil
}

// readCoordinate decodes the inline coordinate layout at src[off:].
func readCoordinate(src []byte, off int) (coord.Coordinate, int, error) {
	if len(src)-off < 1 {
		return coord.Coordinate{}, off, ErrShort
	}
	dim := int(src[off])
	if dim > coord.MaxDimension {
		return coord.Coordinate{}, off, ErrMalformed
	}
	need := coord.EncodedSize(dim)
	if len(src)-off < need {
		return coord.Coordinate{}, off, ErrShort
	}
	c, _, err := coord.Decode(src[off : off+need])
	if err != nil {
		return coord.Coordinate{}, off, ErrMalformed
	}
	return c, off + need, nil
}

// BatchHeader fronts a binary /changes response: the body-level seq and
// epoch (mirroring the JSON body fields so epoch fencing survives empty
// batches) and the number of frames that follow.
type BatchHeader struct {
	Seq   uint64
	Epoch uint64
	Count uint64
}

// AppendBatchHeader appends the encoding of h to dst.
func AppendBatchHeader(dst []byte, h BatchHeader) []byte {
	dst = append(dst, MagicBatch, Version)
	dst = binary.AppendUvarint(dst, h.Seq)
	dst = binary.AppendUvarint(dst, h.Epoch)
	dst = binary.AppendUvarint(dst, h.Count)
	return dst
}

// DecodeBatchHeader parses a batch header from the front of src.
func DecodeBatchHeader(src []byte) (BatchHeader, int, error) {
	var h BatchHeader
	if len(src) < 2 {
		return h, 0, ErrShort
	}
	if src[0] != MagicBatch || src[1] != Version {
		return h, 0, ErrMalformed
	}
	off := 2
	var err error
	if h.Seq, off, err = readUvarint(src, off); err != nil {
		return h, 0, err
	}
	if h.Epoch, off, err = readUvarint(src, off); err != nil {
		return h, 0, err
	}
	if h.Count, off, err = readUvarint(src, off); err != nil {
		return h, 0, err
	}
	return h, off, nil
}

// SnapshotHeader fronts a binary /snapshot response. Entries follow as
// EntryCount upsert frames whose Seq carries the per-entry seq.
type SnapshotHeader struct {
	Seq        uint64
	Epoch      uint64
	Delta      bool
	FollowerOf string
	Removed    []string
	EntryCount uint64
}

const snapshotFlagDelta = 0x01

// AppendSnapshotHeader appends the encoding of h to dst.
func AppendSnapshotHeader(dst []byte, h *SnapshotHeader) ([]byte, error) {
	var flags byte
	if h.Delta {
		flags |= snapshotFlagDelta
	}
	dst = append(dst, MagicSnapshot, Version, flags)
	dst = binary.AppendUvarint(dst, h.Seq)
	dst = binary.AppendUvarint(dst, h.Epoch)
	var err error
	if dst, err = appendID(dst, h.FollowerOf); err != nil {
		return dst, err
	}
	dst = binary.AppendUvarint(dst, uint64(len(h.Removed)))
	for _, id := range h.Removed {
		if dst, err = appendID(dst, id); err != nil {
			return dst, err
		}
	}
	dst = binary.AppendUvarint(dst, h.EntryCount)
	return dst, nil
}

// DecodeSnapshotHeader parses a snapshot header from the front of src.
func DecodeSnapshotHeader(src []byte) (SnapshotHeader, int, error) {
	var h SnapshotHeader
	if len(src) < 3 {
		return h, 0, ErrShort
	}
	if src[0] != MagicSnapshot || src[1] != Version {
		return h, 0, ErrMalformed
	}
	if src[2]&^snapshotFlagDelta != 0 {
		return h, 0, ErrMalformed
	}
	h.Delta = src[2]&snapshotFlagDelta != 0
	off := 3
	var err error
	if h.Seq, off, err = readUvarint(src, off); err != nil {
		return h, 0, err
	}
	if h.Epoch, off, err = readUvarint(src, off); err != nil {
		return h, 0, err
	}
	if h.FollowerOf, off, err = readID(src, off); err != nil {
		return h, 0, err
	}
	var count uint64
	if count, off, err = readUvarint(src, off); err != nil {
		return h, 0, err
	}
	if count > MaxListLen {
		return h, 0, ErrMalformed
	}
	if count > uint64(len(src)-off) {
		return h, 0, ErrShort
	}
	if count > 0 {
		h.Removed = make([]string, 0, count)
		for i := uint64(0); i < count; i++ {
			var id string
			if id, off, err = readID(src, off); err != nil {
				return h, 0, err
			}
			h.Removed = append(h.Removed, id)
		}
	}
	if h.EntryCount, off, err = readUvarint(src, off); err != nil {
		return h, 0, err
	}
	return h, off, nil
}
