// Package vec provides small fixed-dimension Euclidean vector math used by
// the coordinate system. Vectors are plain float64 slices; all operations
// allocate their result unless an explicit in-place variant is provided.
//
// The package is deliberately minimal: network coordinates are low
// dimensional (the paper uses three dimensions), so clarity wins over
// BLAS-style tuning. Operations on vectors of mismatched dimension return
// an error rather than panicking, per the project's no-panic policy.
package vec

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when two vectors of different
// dimensionality are combined.
var ErrDimensionMismatch = errors.New("vec: dimension mismatch")

// Vector is an n-dimensional point or displacement. The zero value is a
// zero-dimensional vector; use New or Zero to create one of a given
// dimension.
type Vector []float64

// Zero returns the origin of the given dimension.
func Zero(dim int) Vector {
	if dim <= 0 {
		return Vector{}
	}
	return make(Vector, dim)
}

// New builds a vector from the given components.
func New(components ...float64) Vector {
	v := make(Vector, len(components))
	copy(v, components)
	return v
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dim reports the dimensionality of v.
func (v Vector) Dim() int { return len(v) }

// Add returns v + w.
func (v Vector) Add(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("add %d-dim and %d-dim: %w", len(v), len(w), ErrDimensionMismatch)
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out, nil
}

// Sub returns v - w.
func (v Vector) Sub(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("sub %d-dim and %d-dim: %w", len(v), len(w), ErrDimensionMismatch)
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out, nil
}

// Scale returns v scaled by s.
func (v Vector) Scale(s float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] * s
	}
	return out
}

// AddInPlace adds w into v without allocating.
func (v Vector) AddInPlace(w Vector) error {
	if len(v) != len(w) {
		return fmt.Errorf("add in place %d-dim and %d-dim: %w", len(v), len(w), ErrDimensionMismatch)
	}
	for i := range v {
		v[i] += w[i]
	}
	return nil
}

// Norm returns the Euclidean (L2) magnitude of v.
func (v Vector) Norm() float64 {
	var sum float64
	for _, c := range v {
		sum += c * c
	}
	return math.Sqrt(sum)
}

// Dist returns the Euclidean distance between v and w.
func (v Vector) Dist(w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("dist %d-dim and %d-dim: %w", len(v), len(w), ErrDimensionMismatch)
	}
	var sum float64
	for i := range v {
		d := v[i] - w[i]
		sum += d * d
	}
	return math.Sqrt(sum), nil
}

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("dot %d-dim and %d-dim: %w", len(v), len(w), ErrDimensionMismatch)
	}
	var sum float64
	for i := range v {
		sum += v[i] * w[i]
	}
	return sum, nil
}

// Equal reports whether v and w have the same dimension and components.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// IsFinite reports whether every component is a finite number. Coordinates
// received over the network must be validated with this before use: a
// single NaN would otherwise poison every coordinate it touches.
func (v Vector) IsFinite() bool {
	for _, c := range v {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return false
		}
	}
	return true
}

// zeroThreshold is the magnitude below which two coordinates are treated
// as co-located, requiring a random direction for the repulsive force.
const zeroThreshold = 1e-6

// UnitDirection returns the unit vector pointing from w toward v together
// with the distance between them. If the two points are effectively
// co-located (distance below an internal threshold) the direction is taken
// from random, which must yield values in [0,1), and the returned distance
// is zero. This is the standard Vivaldi bootstrap trick: nodes all start
// at the origin and need a random push to separate.
func UnitDirection(v, w Vector, random func() float64) (Vector, float64, error) {
	diff, err := v.Sub(w)
	if err != nil {
		return nil, 0, err
	}
	mag := diff.Norm()
	if mag > zeroThreshold {
		return diff.Scale(1 / mag), mag, nil
	}
	// Co-located: pick a random direction on the unit sphere.
	dir := make(Vector, len(v))
	for {
		var norm float64
		for i := range dir {
			dir[i] = random()*2 - 1
			norm += dir[i] * dir[i]
		}
		norm = math.Sqrt(norm)
		if norm > zeroThreshold {
			return dir.Scale(1 / norm), 0, nil
		}
	}
}

// Centroid returns the arithmetic mean of the given vectors. All vectors
// must share a dimension; an empty input returns an error.
func Centroid(vs []Vector) (Vector, error) {
	if len(vs) == 0 {
		return nil, errors.New("vec: centroid of empty set")
	}
	dim := len(vs[0])
	sum := make(Vector, dim)
	for _, v := range vs {
		if len(v) != dim {
			return nil, fmt.Errorf("centroid with %d-dim and %d-dim members: %w", dim, len(v), ErrDimensionMismatch)
		}
		for i := range v {
			sum[i] += v[i]
		}
	}
	return sum.Scale(1 / float64(len(vs))), nil
}

// String renders the vector in a compact bracketed form.
func (v Vector) String() string {
	out := "["
	for i, c := range v {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%.3f", c)
	}
	return out + "]"
}
