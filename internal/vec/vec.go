// Package vec provides small fixed-dimension Euclidean vector math used by
// the coordinate system. Vectors are plain float64 slices.
//
// Two API styles coexist:
//
//   - Value-style operations (Add, Sub, Scale, Centroid) allocate their
//     result. They read clearly and are fine anywhere off the per-sample
//     path.
//   - In-place / into-style operations (AddInPlace, SubInto, ScaleInPlace,
//     AddScaledInPlace, the fused SubScaleAdd, Set, RandomUnitInto) write
//     into storage the caller owns and perform zero heap allocations.
//     Everything the simulator's steady-state step touches comes from
//     this family (directly or via coord.CopyFrom), which is what makes
//     the per-sample path allocation-free.
//
// The package is deliberately minimal: network coordinates are low
// dimensional (the paper uses three dimensions), so clarity wins over
// BLAS-style tuning. Operations on vectors of mismatched dimension return
// an error rather than panicking, per the project's no-panic policy. The
// hot-path variants return the bare ErrDimensionMismatch sentinel instead
// of a wrapped description: constructing the fmt.Errorf wrapper is itself
// an allocation, and callers on the per-sample path validate dimensions
// once at construction, so the decorated message would never be seen.
package vec

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when two vectors of different
// dimensionality are combined.
var ErrDimensionMismatch = errors.New("vec: dimension mismatch")

// Vector is an n-dimensional point or displacement. The zero value is a
// zero-dimensional vector; use New or Zero to create one of a given
// dimension.
type Vector []float64

// Zero returns the origin of the given dimension.
func Zero(dim int) Vector {
	if dim <= 0 {
		return Vector{}
	}
	return make(Vector, dim)
}

// New builds a vector from the given components.
func New(components ...float64) Vector {
	v := make(Vector, len(components))
	copy(v, components)
	return v
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dim reports the dimensionality of v.
func (v Vector) Dim() int { return len(v) }

// Add returns v + w.
func (v Vector) Add(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("add %d-dim and %d-dim: %w", len(v), len(w), ErrDimensionMismatch)
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out, nil
}

// Sub returns v - w.
func (v Vector) Sub(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("sub %d-dim and %d-dim: %w", len(v), len(w), ErrDimensionMismatch)
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out, nil
}

// Scale returns v scaled by s.
func (v Vector) Scale(s float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] * s
	}
	return out
}

// AddInPlace adds w into v without allocating.
func (v Vector) AddInPlace(w Vector) error {
	if len(v) != len(w) {
		return ErrDimensionMismatch
	}
	for i := range v {
		v[i] += w[i]
	}
	return nil
}

// SubInto stores a - b into dst without allocating. dst may alias a or b.
func SubInto(dst, a, b Vector) error {
	if len(dst) != len(a) || len(a) != len(b) {
		return ErrDimensionMismatch
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
	return nil
}

// ScaleInPlace multiplies every component of v by s without allocating.
func (v Vector) ScaleInPlace(s float64) {
	for i := range v {
		v[i] *= s
	}
}

// AddScaledInPlace adds s*w into v without allocating: v += s*w.
func (v Vector) AddScaledInPlace(w Vector, s float64) error {
	if len(v) != len(w) {
		return ErrDimensionMismatch
	}
	for i := range v {
		v[i] += s * w[i]
	}
	return nil
}

// SubScaleAdd fuses the Vivaldi force step into one pass with no
// temporaries: v += s*(a - b). a and b may alias v (the update is purely
// element-wise). This is x_i += (force/||x_i-x_j||)*(x_i - x_j) without
// materializing either the difference or the unit direction.
func (v Vector) SubScaleAdd(a, b Vector, s float64) error {
	if len(v) != len(a) || len(a) != len(b) {
		return ErrDimensionMismatch
	}
	for i := range v {
		v[i] += s * (a[i] - b[i])
	}
	return nil
}

// Set overwrites v with w without allocating.
func (v Vector) Set(w Vector) error {
	if len(v) != len(w) {
		return ErrDimensionMismatch
	}
	copy(v, w)
	return nil
}

// Norm returns the Euclidean (L2) magnitude of v.
func (v Vector) Norm() float64 {
	var sum float64
	for _, c := range v {
		sum += c * c
	}
	return math.Sqrt(sum)
}

// Dist returns the Euclidean distance between v and w.
func (v Vector) Dist(w Vector) (float64, error) {
	if len(v) != len(w) {
		//nc:allow(hotpath) dimension-mismatch return: cold by definition
		return 0, fmt.Errorf("dist %d-dim and %d-dim: %w", len(v), len(w), ErrDimensionMismatch)
	}
	var sum float64
	for i := range v {
		d := v[i] - w[i]
		sum += d * d
	}
	return math.Sqrt(sum), nil
}

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("dot %d-dim and %d-dim: %w", len(v), len(w), ErrDimensionMismatch)
	}
	var sum float64
	for i := range v {
		sum += v[i] * w[i]
	}
	return sum, nil
}

// Equal reports whether v and w have the same dimension and components.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// IsFinite reports whether every component is a finite number. Coordinates
// received over the network must be validated with this before use: a
// single NaN would otherwise poison every coordinate it touches.
func (v Vector) IsFinite() bool {
	for _, c := range v {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return false
		}
	}
	return true
}

// zeroThreshold is the magnitude below which two coordinates are treated
// as co-located, requiring a random direction for the repulsive force.
const zeroThreshold = 1e-6

// UnitDirection returns the unit vector pointing from w toward v together
// with the distance between them. If the two points are effectively
// co-located (distance below an internal threshold) the direction is taken
// from random, which must yield values in [0,1), and the returned distance
// is zero. This is the standard Vivaldi bootstrap trick: nodes all start
// at the origin and need a random push to separate.
func UnitDirection(v, w Vector, random func() float64) (Vector, float64, error) {
	diff := make(Vector, len(v))
	if err := SubInto(diff, v, w); err != nil {
		return nil, 0, err
	}
	mag := diff.Norm()
	if mag > zeroThreshold {
		return diff.Scale(1 / mag), mag, nil
	}
	// Co-located: pick a random direction on the unit sphere.
	dir := make(Vector, len(v))
	RandomUnitInto(dir, random)
	return dir, 0, nil
}

// RandomUnitInto fills dst with a random unit vector without allocating,
// drawing components from random (which must yield values in [0,1)). It
// retries until the pre-normalization magnitude is safely above zero, so
// the result is always well-defined.
func RandomUnitInto(dst Vector, random func() float64) {
	for {
		var norm float64
		for i := range dst {
			dst[i] = random()*2 - 1
			norm += dst[i] * dst[i]
		}
		norm = math.Sqrt(norm)
		if norm > zeroThreshold {
			dst.ScaleInPlace(1 / norm)
			return
		}
	}
}

// Colocated reports whether a Euclidean separation is below the
// co-location threshold — the regime where Vivaldi substitutes a random
// push for the undefined unit direction. Exposed so callers that compute
// the separation themselves (to reuse it for error measurement) classify
// it exactly as UnitDirection would.
func Colocated(mag float64) bool { return mag <= zeroThreshold }

// Centroid returns the arithmetic mean of the given vectors. All vectors
// must share a dimension; an empty input returns an error.
func Centroid(vs []Vector) (Vector, error) {
	if len(vs) == 0 {
		return nil, errors.New("vec: centroid of empty set")
	}
	dim := len(vs[0])
	sum := make(Vector, dim)
	for _, v := range vs {
		if len(v) != dim {
			return nil, fmt.Errorf("centroid with %d-dim and %d-dim members: %w", dim, len(v), ErrDimensionMismatch)
		}
		for i := range v {
			sum[i] += v[i]
		}
	}
	return sum.Scale(1 / float64(len(vs))), nil
}

// String renders the vector in a compact bracketed form.
func (v Vector) String() string {
	out := "["
	for i, c := range v {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%.3f", c)
	}
	return out + "]"
}
