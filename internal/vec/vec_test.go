package vec

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZero(t *testing.T) {
	tests := []struct {
		name string
		dim  int
		want int
	}{
		{name: "three dims", dim: 3, want: 3},
		{name: "one dim", dim: 1, want: 1},
		{name: "zero dims", dim: 0, want: 0},
		{name: "negative clamps to empty", dim: -2, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := Zero(tt.dim)
			if v.Dim() != tt.want {
				t.Fatalf("Zero(%d).Dim() = %d, want %d", tt.dim, v.Dim(), tt.want)
			}
			for i, c := range v {
				if c != 0 {
					t.Errorf("component %d = %v, want 0", i, c)
				}
			}
		})
	}
}

func TestNewCopiesInput(t *testing.T) {
	src := []float64{1, 2, 3}
	v := New(src...)
	src[0] = 99
	if v[0] != 1 {
		t.Fatalf("New aliased its input: v[0] = %v, want 1", v[0])
	}
}

func TestCloneIndependence(t *testing.T) {
	v := New(1, 2, 3)
	w := v.Clone()
	w[1] = 42
	if v[1] != 2 {
		t.Fatalf("Clone aliased the original: v[1] = %v, want 2", v[1])
	}
}

func TestAdd(t *testing.T) {
	tests := []struct {
		name    string
		a, b    Vector
		want    Vector
		wantErr bool
	}{
		{name: "basic", a: New(1, 2), b: New(3, 4), want: New(4, 6)},
		{name: "negative components", a: New(-1, 5, 0), b: New(1, -5, 0), want: New(0, 0, 0)},
		{name: "mismatch", a: New(1), b: New(1, 2), wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tt.a.Add(tt.b)
			if tt.wantErr {
				if !errors.Is(err, ErrDimensionMismatch) {
					t.Fatalf("Add error = %v, want ErrDimensionMismatch", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Add: %v", err)
			}
			if !got.Equal(tt.want) {
				t.Fatalf("Add = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSub(t *testing.T) {
	tests := []struct {
		name    string
		a, b    Vector
		want    Vector
		wantErr bool
	}{
		{name: "basic", a: New(4, 6), b: New(3, 4), want: New(1, 2)},
		{name: "self is zero", a: New(7, -2), b: New(7, -2), want: New(0, 0)},
		{name: "mismatch", a: New(1, 2, 3), b: New(1, 2), wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tt.a.Sub(tt.b)
			if tt.wantErr {
				if !errors.Is(err, ErrDimensionMismatch) {
					t.Fatalf("Sub error = %v, want ErrDimensionMismatch", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Sub: %v", err)
			}
			if !got.Equal(tt.want) {
				t.Fatalf("Sub = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestScale(t *testing.T) {
	v := New(1, -2, 3)
	got := v.Scale(-2)
	want := New(-2, 4, -6)
	if !got.Equal(want) {
		t.Fatalf("Scale = %v, want %v", got, want)
	}
	if !v.Equal(New(1, -2, 3)) {
		t.Fatalf("Scale mutated its receiver: %v", v)
	}
}

func TestAddInPlace(t *testing.T) {
	v := New(1, 2)
	if err := v.AddInPlace(New(10, 20)); err != nil {
		t.Fatalf("AddInPlace: %v", err)
	}
	if !v.Equal(New(11, 22)) {
		t.Fatalf("AddInPlace = %v, want [11, 22]", v)
	}
	if err := v.AddInPlace(New(1)); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("AddInPlace mismatch error = %v, want ErrDimensionMismatch", err)
	}
}

func TestNorm(t *testing.T) {
	tests := []struct {
		name string
		v    Vector
		want float64
	}{
		{name: "pythagorean", v: New(3, 4), want: 5},
		{name: "zero", v: New(0, 0, 0), want: 0},
		{name: "unit", v: New(1), want: 1},
		{name: "3-4-12", v: New(3, 4, 12), want: 13},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Norm(); math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("Norm = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDist(t *testing.T) {
	a, b := New(1, 1), New(4, 5)
	got, err := a.Dist(b)
	if err != nil {
		t.Fatalf("Dist: %v", err)
	}
	if math.Abs(got-5) > 1e-12 {
		t.Fatalf("Dist = %v, want 5", got)
	}
	if _, err := a.Dist(New(1)); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("Dist mismatch error = %v", err)
	}
}

func TestDot(t *testing.T) {
	a, b := New(1, 2, 3), New(4, -5, 6)
	got, err := a.Dot(b)
	if err != nil {
		t.Fatalf("Dot: %v", err)
	}
	if got != 4-10+18 {
		t.Fatalf("Dot = %v, want 12", got)
	}
	if _, err := a.Dot(New(1)); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("Dot mismatch error = %v", err)
	}
}

func TestIsFinite(t *testing.T) {
	tests := []struct {
		name string
		v    Vector
		want bool
	}{
		{name: "finite", v: New(1, 2, 3), want: true},
		{name: "nan", v: New(1, math.NaN()), want: false},
		{name: "pos inf", v: New(math.Inf(1), 0), want: false},
		{name: "neg inf", v: New(0, math.Inf(-1)), want: false},
		{name: "empty", v: New(), want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.IsFinite(); got != tt.want {
				t.Fatalf("IsFinite = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestUnitDirectionSeparated(t *testing.T) {
	v, w := New(4, 0, 0), New(1, 0, 0)
	dir, dist, err := UnitDirection(v, w, func() float64 { t.Fatal("random should not be called"); return 0 })
	if err != nil {
		t.Fatalf("UnitDirection: %v", err)
	}
	if dist != 3 {
		t.Fatalf("dist = %v, want 3", dist)
	}
	if !dir.Equal(New(1, 0, 0)) {
		t.Fatalf("dir = %v, want [1,0,0]", dir)
	}
}

func TestUnitDirectionColocated(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := New(5, 5, 5)
	dir, dist, err := UnitDirection(v, v.Clone(), rng.Float64)
	if err != nil {
		t.Fatalf("UnitDirection: %v", err)
	}
	if dist != 0 {
		t.Fatalf("dist = %v, want 0 for co-located points", dist)
	}
	if math.Abs(dir.Norm()-1) > 1e-9 {
		t.Fatalf("random direction norm = %v, want 1", dir.Norm())
	}
}

func TestUnitDirectionMismatch(t *testing.T) {
	_, _, err := UnitDirection(New(1, 2), New(1), func() float64 { return 0.5 })
	if !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("error = %v, want ErrDimensionMismatch", err)
	}
}

func TestCentroid(t *testing.T) {
	tests := []struct {
		name    string
		in      []Vector
		want    Vector
		wantErr bool
	}{
		{name: "pair", in: []Vector{New(0, 0), New(2, 4)}, want: New(1, 2)},
		{name: "single", in: []Vector{New(7, 8, 9)}, want: New(7, 8, 9)},
		{name: "empty", in: nil, wantErr: true},
		{name: "mismatch", in: []Vector{New(1), New(1, 2)}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Centroid(tt.in)
			if tt.wantErr {
				if err == nil {
					t.Fatal("Centroid succeeded, want error")
				}
				return
			}
			if err != nil {
				t.Fatalf("Centroid: %v", err)
			}
			if !got.Equal(tt.want) {
				t.Fatalf("Centroid = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestString(t *testing.T) {
	if got := New(1, 2.5).String(); got != "[1.000, 2.500]" {
		t.Fatalf("String = %q", got)
	}
	if got := (Vector{}).String(); got != "[]" {
		t.Fatalf("empty String = %q", got)
	}
}

// Property: norm of the difference equals Dist, and the triangle
// inequality holds for random vectors.
func TestDistProperties(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(x, 1e6)
		}
		a := New(clamp(ax), clamp(ay), clamp(az))
		b := New(clamp(bx), clamp(by), clamp(bz))
		c := New(clamp(cx), clamp(cy), clamp(cz))
		ab, _ := a.Dist(b)
		bc, _ := b.Dist(c)
		ac, _ := a.Dist(c)
		diff, _ := a.Sub(b)
		const eps = 1e-6
		if math.Abs(diff.Norm()-ab) > eps {
			return false
		}
		return ac <= ab+bc+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the centroid minimizes nothing fancy, but it must be
// translation-equivariant: centroid(v + t) = centroid(v) + t.
func TestCentroidTranslationEquivariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		vs := make([]Vector, n)
		shifted := make([]Vector, n)
		shift := New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		for i := range vs {
			vs[i] = New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
			sv, err := vs[i].Add(shift)
			if err != nil {
				t.Fatalf("Add: %v", err)
			}
			shifted[i] = sv
		}
		c1, err := Centroid(vs)
		if err != nil {
			t.Fatalf("Centroid: %v", err)
		}
		c2, err := Centroid(shifted)
		if err != nil {
			t.Fatalf("Centroid shifted: %v", err)
		}
		want, err := c1.Add(shift)
		if err != nil {
			t.Fatalf("Add: %v", err)
		}
		d, err := c2.Dist(want)
		if err != nil {
			t.Fatalf("Dist: %v", err)
		}
		if d > 1e-9 {
			t.Fatalf("trial %d: centroid not translation-equivariant, off by %v", trial, d)
		}
	}
}

func BenchmarkDist3D(b *testing.B) {
	v, w := New(1, 2, 3), New(4, 5, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := v.Dist(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnitDirection(b *testing.B) {
	v, w := New(1, 2, 3), New(4, 5, 6)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := UnitDirection(v, w, rng.Float64); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSubInto(t *testing.T) {
	dst := Zero(3)
	if err := SubInto(dst, New(5, 7, 9), New(1, 2, 3)); err != nil {
		t.Fatalf("SubInto: %v", err)
	}
	if !dst.Equal(New(4, 5, 6)) {
		t.Fatalf("SubInto = %v, want [4, 5, 6]", dst)
	}
	// Aliasing: dst == a is the common scratch-buffer pattern.
	a := New(5, 7, 9)
	if err := SubInto(a, a, New(1, 2, 3)); err != nil {
		t.Fatalf("SubInto aliased: %v", err)
	}
	if !a.Equal(New(4, 5, 6)) {
		t.Fatalf("aliased SubInto = %v, want [4, 5, 6]", a)
	}
	if err := SubInto(Zero(2), New(1, 2, 3), New(1, 2, 3)); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("mismatched dst error = %v", err)
	}
}

func TestScaleInPlace(t *testing.T) {
	v := New(1, -2, 3)
	v.ScaleInPlace(2)
	if !v.Equal(New(2, -4, 6)) {
		t.Fatalf("ScaleInPlace = %v, want [2, -4, 6]", v)
	}
}

func TestAddScaledInPlace(t *testing.T) {
	v := New(1, 1, 1)
	if err := v.AddScaledInPlace(New(1, 2, 3), 2); err != nil {
		t.Fatalf("AddScaledInPlace: %v", err)
	}
	if !v.Equal(New(3, 5, 7)) {
		t.Fatalf("AddScaledInPlace = %v, want [3, 5, 7]", v)
	}
	if err := v.AddScaledInPlace(New(1), 2); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("mismatch error = %v", err)
	}
}

func TestSubScaleAddMatchesComposedOps(t *testing.T) {
	// The fused op must equal scale(sub(a, b), s) added in, including when
	// v aliases a — the exact shape of the Vivaldi force step.
	v := New(10, 20, 30)
	a := New(4, 5, 6)
	b := New(1, 3, 5)
	want := v.Clone()
	diff, err := a.Sub(b)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if err := want.AddInPlace(diff.Scale(0.5)); err != nil {
		t.Fatalf("AddInPlace: %v", err)
	}
	if err := v.SubScaleAdd(a, b, 0.5); err != nil {
		t.Fatalf("SubScaleAdd: %v", err)
	}
	if !v.Equal(want) {
		t.Fatalf("SubScaleAdd = %v, want %v", v, want)
	}
	// Aliased form: x += s*(x - b).
	x := New(2, 4, 6)
	wantAliased := New(2+0.5*(2-1), 4+0.5*(4-3), 6+0.5*(6-5))
	if err := x.SubScaleAdd(x, b, 0.5); err != nil {
		t.Fatalf("aliased SubScaleAdd: %v", err)
	}
	if !x.Equal(wantAliased) {
		t.Fatalf("aliased SubScaleAdd = %v, want %v", x, wantAliased)
	}
	if err := x.SubScaleAdd(a, New(1), 1); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("mismatch error = %v", err)
	}
}

func TestSet(t *testing.T) {
	v := Zero(3)
	if err := v.Set(New(7, 8, 9)); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if !v.Equal(New(7, 8, 9)) {
		t.Fatalf("Set = %v", v)
	}
	if err := v.Set(New(1)); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("mismatch error = %v", err)
	}
}

func TestRandomUnitInto(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dst := Zero(3)
	for trial := 0; trial < 100; trial++ {
		RandomUnitInto(dst, rng.Float64)
		if d := math.Abs(dst.Norm() - 1); d > 1e-12 {
			t.Fatalf("trial %d: |norm-1| = %v", trial, d)
		}
	}
}

func TestColocated(t *testing.T) {
	if !Colocated(0) || !Colocated(zeroThreshold) {
		t.Fatal("threshold separations not classified co-located")
	}
	if Colocated(zeroThreshold * 1.01) {
		t.Fatal("clearly separated classified co-located")
	}
	// Must agree with UnitDirection's own classification.
	v, w := New(1e-7, 0, 0), Zero(3)
	_, mag, err := UnitDirection(v, w, rand.New(rand.NewSource(1)).Float64)
	if err != nil {
		t.Fatalf("UnitDirection: %v", err)
	}
	if (mag == 0) != Colocated(1e-7) {
		t.Fatal("Colocated disagrees with UnitDirection")
	}
}

func TestHotPathVariantsDoNotAllocate(t *testing.T) {
	v, a, b := New(1, 2, 3), New(4, 5, 6), New(7, 8, 9)
	dst := Zero(3)
	rng := rand.New(rand.NewSource(9))
	allocs := testing.AllocsPerRun(200, func() {
		_ = SubInto(dst, a, b)
		_ = v.AddInPlace(a)
		v.ScaleInPlace(0.5)
		_ = v.AddScaledInPlace(b, 0.25)
		_ = v.SubScaleAdd(a, b, 0.25)
		_ = v.Set(a)
		RandomUnitInto(dst, rng.Float64)
	})
	if allocs != 0 {
		t.Fatalf("hot-path variants allocated %v per run", allocs)
	}
}
