package index

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"netcoord/internal/bheap"
	"netcoord/internal/xrand"
)

// TestBoundTightenIsAtomicMin hammers one Bound from several goroutines
// and requires the survivor to be the global minimum offered.
func TestBoundTightenIsAtomicMin(t *testing.T) {
	var b Bound
	b.Reset(math.Inf(1))
	const workers, per = 8, 2000
	min := math.Inf(1)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.NewStream(uint64(w + 1))
			local := math.Inf(1)
			for i := 0; i < per; i++ {
				v := rng.Uniform(0, 1000)
				b.Tighten(v)
				if v < local {
					local = v
				}
				// Raising must never work.
				b.Tighten(v + 1)
			}
			mu.Lock()
			if local < min {
				min = local
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if got := b.Load(); got != min {
		t.Fatalf("Bound = %v, want global min %v", got, min)
	}
}

// TestKNearestIntoSharedBoundMatchesMerge splits one point set across
// several trees, searches them all through KNearestInto with one shared
// Bound (sequentially and concurrently), and requires the merged top-k
// to be bit-identical to a single tree over the whole set — the
// correctness contract of the Registry's cross-shard fan-out.
func TestKNearestIntoSharedBoundMatchesMerge(t *testing.T) {
	const dim = 3
	for seed := uint64(1); seed <= 4; seed++ {
		rng := xrand.NewStream(seed)
		nTrees := 1 + rng.Intn(6)
		trees := make([]*Tree, nTrees)
		for i := range trees {
			trees[i], _ = New(dim)
		}
		whole, _ := New(dim)
		nPts := 50 + rng.Intn(400)
		for p := 0; p < nPts; p++ {
			id := fmt.Sprintf("node-%04d", p)
			c := randomCoord(rng, dim)
			if rng.Bernoulli(0.3) {
				// Snap to a small grid so duplicate distances are common
				// and tie-breaking by id is genuinely exercised.
				for d := range c.Vec {
					c.Vec[d] = float64(int(c.Vec[d]) / 40 * 40)
				}
				c.Height = 0
			}
			if err := whole.Insert(id, c); err != nil {
				t.Fatal(err)
			}
			if err := trees[p%nTrees].Insert(id, c); err != nil {
				t.Fatal(err)
			}
		}
		for trial := 0; trial < 30; trial++ {
			q := randomCoord(rng, dim)
			k := 1 + rng.Intn(12)
			startBound := math.Inf(1)
			if rng.Bernoulli(0.3) {
				startBound = rng.Uniform(0, 250)
			}
			want, err := whole.KNearestBound(q, k, startBound)
			if err != nil {
				t.Fatal(err)
			}

			// Sequential walk: one heap carried across trees, bound
			// tightening as it goes.
			var b Bound
			b.Reset(startBound)
			h := bheap.New(k, NeighborBefore)
			for _, tr := range trees {
				if err := tr.KNearestInto(q, k, h, &b); err != nil {
					t.Fatal(err)
				}
			}
			got := append([]Neighbor(nil), h.Items()...)
			SortNeighbors(got)
			if !neighborsEqual(got, want) {
				t.Fatalf("seed %d trial %d: sequential merge %v != whole %v", seed, trial, got, want)
			}

			// Concurrent fan-out: one heap per tree, one shared bound,
			// merged through a final heap.
			var sb Bound
			sb.Reset(startBound)
			heaps := make([]*bheap.Heap[Neighbor], nTrees)
			var wg sync.WaitGroup
			for i, tr := range trees {
				heaps[i] = bheap.New(k, NeighborBefore)
				wg.Add(1)
				go func(tr *Tree, h *bheap.Heap[Neighbor]) {
					defer wg.Done()
					if err := tr.KNearestInto(q, k, h, &sb); err != nil {
						t.Error(err)
					}
				}(tr, heaps[i])
			}
			wg.Wait()
			merge := bheap.New(k, NeighborBefore)
			for _, h := range heaps {
				for _, n := range h.Items() {
					merge.Offer(n)
				}
			}
			got = append(got[:0], merge.Items()...)
			SortNeighbors(got)
			if !neighborsEqual(got, want) {
				t.Fatalf("seed %d trial %d: parallel merge %v != whole %v", seed, trial, got, want)
			}
		}
	}
}

// TestWithinIntoAppendsAcrossTrees checks the unsorted append contract:
// chaining WithinInto over several trees and sorting once must equal the
// whole-set Within.
func TestWithinIntoAppendsAcrossTrees(t *testing.T) {
	const dim = 3
	rng := xrand.NewStream(7)
	trees := make([]*Tree, 4)
	for i := range trees {
		trees[i], _ = New(dim)
	}
	whole, _ := New(dim)
	for p := 0; p < 300; p++ {
		id := fmt.Sprintf("node-%04d", p)
		c := randomCoord(rng, dim)
		if err := whole.Insert(id, c); err != nil {
			t.Fatal(err)
		}
		if err := trees[p%len(trees)].Insert(id, c); err != nil {
			t.Fatal(err)
		}
	}
	var buf []Neighbor
	for trial := 0; trial < 20; trial++ {
		q := randomCoord(rng, dim)
		radius := rng.Uniform(0, 200)
		want, err := whole.Within(q, radius)
		if err != nil {
			t.Fatal(err)
		}
		buf = buf[:0]
		for _, tr := range trees {
			buf, err = tr.WithinInto(q, radius, buf)
			if err != nil {
				t.Fatal(err)
			}
		}
		SortNeighbors(buf)
		if !neighborsEqual(buf, want) {
			t.Fatalf("trial %d r=%v: merged %d results, whole %d", trial, radius, len(buf), len(want))
		}
	}
}
