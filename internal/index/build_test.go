package index

import (
	"fmt"
	"testing"

	"netcoord/internal/coord"
	"netcoord/internal/xrand"
)

// TestBuildMatchesIncrementalInserts: a bulk-built tree must answer
// every query exactly like an incrementally built one (which in turn is
// oracle-tested against brute force), ties included.
func TestBuildMatchesIncrementalInserts(t *testing.T) {
	const n = 500
	const dim = 3
	rng := xrand.NewStream(41)
	entries := make([]Entry, 0, n)
	inc, err := New(dim)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("node-%03d", i)
		c := randomCoord(rng, dim)
		entries = append(entries, Entry{ID: id, Coord: c})
		if err := inc.Insert(id, c); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	built, err := Build(dim, entries)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if built.Len() != inc.Len() {
		t.Fatalf("Len = %d, want %d", built.Len(), inc.Len())
	}
	for q := 0; q < 50; q++ {
		from := randomCoord(rng, dim)
		for _, k := range []int{1, 4, 17} {
			a, err := built.KNearest(from, k)
			if err != nil {
				t.Fatalf("built KNearest: %v", err)
			}
			b, err := inc.KNearest(from, k)
			if err != nil {
				t.Fatalf("incremental KNearest: %v", err)
			}
			if !neighborsEqual(a, b) {
				t.Fatalf("query %d k=%d: built %v != incremental %v", q, k, a, b)
			}
		}
		ra, err := built.Within(from, 80)
		if err != nil {
			t.Fatalf("built Within: %v", err)
		}
		rb, err := inc.Within(from, 80)
		if err != nil {
			t.Fatalf("incremental Within: %v", err)
		}
		if !neighborsEqual(ra, rb) {
			t.Fatalf("query %d radius: built != incremental", q)
		}
	}
	// The bulk build must be balanced: its height is the rebuild height.
	if got, want := built.Stats().Height, balancedHeight(built.Len()); got != want {
		t.Fatalf("built height = %d, want balanced %d", got, want)
	}
	// And mutable afterwards like any tree.
	if err := built.Insert("late", randomCoord(rng, dim)); err != nil {
		t.Fatalf("Insert after Build: %v", err)
	}
	if !built.Remove("node-000") {
		t.Fatal("Remove after Build failed")
	}
}

func TestBuildEdgeCases(t *testing.T) {
	// Empty input: a valid empty tree.
	tr, err := Build(3, nil)
	if err != nil {
		t.Fatalf("Build(nil): %v", err)
	}
	if tr.Len() != 0 {
		t.Fatalf("empty build Len = %d", tr.Len())
	}
	if err := tr.Insert("a", coord.New(1, 2, 3)); err != nil {
		t.Fatalf("Insert into empty-built tree: %v", err)
	}

	// Duplicate IDs: last wins, matching repeated Insert.
	dup, err := Build(3, []Entry{
		{ID: "x", Coord: coord.New(1, 1, 1)},
		{ID: "y", Coord: coord.New(9, 9, 9)},
		{ID: "x", Coord: coord.New(2, 2, 2)},
	})
	if err != nil {
		t.Fatalf("Build duplicates: %v", err)
	}
	if dup.Len() != 2 {
		t.Fatalf("duplicate build Len = %d, want 2", dup.Len())
	}
	res, err := dup.KNearest(coord.New(2, 2, 2), 1)
	if err != nil {
		t.Fatalf("KNearest: %v", err)
	}
	if len(res) != 1 || res[0].ID != "x" || res[0].Distance != 0 {
		t.Fatalf("duplicate resolution: got %v, want x at distance 0", res)
	}

	// Invalid coordinate anywhere rejects the whole batch.
	if _, err := Build(3, []Entry{
		{ID: "ok", Coord: coord.New(1, 2, 3)},
		{ID: "bad", Coord: coord.New(1, 2)},
	}); err == nil {
		t.Fatal("dimension-mismatched entry accepted")
	}

	if _, err := Build(0, nil); err == nil {
		t.Fatal("zero dimension accepted")
	}
}

// benchEntries generates n random entries once per benchmark.
func benchEntries(n int) []Entry {
	rng := xrand.NewStream(7)
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{ID: fmt.Sprintf("node-%06d", i), Coord: randomCoord(rng, 3)}
	}
	return entries
}

// BenchmarkBuild100k vs BenchmarkIncrementalInsert100k quantifies the
// bulk-load win on the registry warm-up path (ROADMAP "Index bulk-load
// API" item): sort-once balanced construction against one-by-one inserts
// with their amortized rebuild cascade.
func BenchmarkBuild100k(b *testing.B) {
	entries := benchEntries(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := Build(3, entries)
		if err != nil {
			b.Fatal(err)
		}
		if tr.Len() != len(entries) {
			b.Fatal("short build")
		}
	}
}

func BenchmarkIncrementalInsert100k(b *testing.B) {
	entries := benchEntries(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := New(3)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range entries {
			if err := tr.Insert(e.ID, e.Coord); err != nil {
				b.Fatal(err)
			}
		}
		if tr.Len() != len(entries) {
			b.Fatal("short build")
		}
	}
}
