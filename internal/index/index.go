// Package index provides an incremental spatial index over network
// coordinates: the data structure behind the Registry's k-nearest-neighbor
// and radius queries.
//
// The index is a kd-tree over the Euclidean component of the coordinate,
// with the non-Euclidean height term folded into the metric: the distance
// between a query q and a point p is ||q - p|| + h_q + h_p, exactly
// coord.Coordinate.DistanceTo. Because a point's height only ever adds to
// its distance, every subtree tracks the minimum height among its points,
// and the search lower-bounds a subtree by (axis distance to the splitting
// plane) + h_q + minHeight — pruning stays correct under the height model.
//
// Mutation strategy: inserts descend to a leaf; removals tombstone the
// node in place. Both are O(depth). Tombstones and unbalanced insertion
// degrade the tree over time, so the index rebuilds itself — a balanced
// median build over the live points — whenever tombstones exceed half the
// live count or the inserts since the last rebuild exceed the size at that
// rebuild. The doubling rule bounds the amortized rebuild cost per insert
// to O(log n) and keeps depth within a constant factor of optimal.
//
// A Tree is not safe for concurrent use; the Registry wraps one per shard
// under the shard lock. Brute is the O(n)-scan reference implementation
// with identical semantics, used as the correctness oracle in tests and as
// the baseline in benchmarks.
package index

import (
	"fmt"
	"math"
	"math/bits"
	"slices"
	"sort"
	"sync/atomic"

	"netcoord/internal/bheap"
	"netcoord/internal/coord"
)

// Neighbor is one query result: a stored point and its distance (the
// estimated RTT in milliseconds) from the query coordinate.
type Neighbor struct {
	// ID is the stored point's identifier.
	ID string
	// Coord is the stored coordinate.
	Coord coord.Coordinate
	// Distance is coord.DistanceTo between the query and Coord.
	Distance float64
}

// Bound is a monotonically tightening distance bound shared by searches
// running concurrently against different trees: the Registry's parallel
// fan-out gives every shard's search one Bound, each search tightens it
// to its own kth-best distance as its heap fills, and every search prunes
// against the global minimum — so the parallel walk visits no more of any
// tree than the sequential walk with the same final bound would.
//
// Tightening is a CAS min over the float64 bit pattern, so a Bound is
// safe for concurrent use without locks. Distances are non-negative, and
// non-negative float64s order identically to their bit patterns, which is
// what makes the uint64 CAS a correct float min.
type Bound struct {
	bits atomic.Uint64
}

// Reset initializes the bound to v (use math.Inf(1) for "no bound").
// Not safe to call concurrently with Load/Tighten.
func (b *Bound) Reset(v float64) {
	b.bits.Store(math.Float64bits(v))
}

// Load returns the current bound.
//
//nc:hotpath
func (b *Bound) Load() float64 {
	return math.Float64frombits(b.bits.Load())
}

// Tighten lowers the bound to v if v is smaller.
//
//nc:hotpath
func (b *Bound) Tighten(v float64) {
	nb := math.Float64bits(v)
	for {
		old := b.bits.Load()
		if nb >= old {
			return
		}
		if b.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}

// Index is the query contract shared by the kd-tree and the brute-force
// oracle. Results are sorted by (distance, id) ascending, which makes
// every query deterministic and lets tests compare implementations
// exactly, ties included.
type Index interface {
	// Insert adds or replaces the point with the given id.
	Insert(id string, c coord.Coordinate) error
	// Remove deletes the point; it reports whether the id was present.
	Remove(id string) bool
	// Len reports the number of live points.
	Len() int
	// KNearest returns the k points nearest to from, fewer if the index
	// holds fewer.
	KNearest(from coord.Coordinate, k int) ([]Neighbor, error)
	// Within returns every point at distance <= radius from from.
	Within(from coord.Coordinate, radius float64) ([]Neighbor, error)
}

// Stats describes the internal shape of a Tree, for observability.
type Stats struct {
	// Live is the number of queryable points.
	Live int
	// Tombstones is the number of removed-but-unreclaimed nodes.
	Tombstones int
	// Rebuilds counts balanced rebuilds performed.
	Rebuilds uint64
	// Height is an upper bound on the current tree height (0 for an
	// empty tree), tracked incrementally so Stats stays O(1): it is
	// exact after a rebuild and grows with the deepest insertion since.
	Height int
}

// treeNode is one kd-tree node. A node whose deleted flag is set is a
// tombstone: it still splits space but no longer matches queries.
type treeNode struct {
	id   string
	c    coord.Coordinate
	axis int

	deleted             bool
	parent, left, right *treeNode

	// size counts live points in this subtree; a subtree with size 0 is
	// skipped entirely during search.
	size int
	// minHeight lower-bounds the height of every point in this subtree.
	// It is maintained exactly on insert and left stale (conservatively
	// low) on removal, so it is always a valid pruning bound.
	minHeight float64
}

// Tree is the incremental kd-tree. Not safe for concurrent use.
type Tree struct {
	dim  int
	root *treeNode
	ids  map[string]*treeNode

	dead          int
	liveAtRebuild int
	inserts       int
	rebuilds      uint64
	// heightHint upper-bounds the tree height: reset to the balanced
	// height on rebuild, raised by insertions that land deeper.
	heightHint int
}

// New builds an empty Tree for coordinates of the given dimension.
func New(dim int) (*Tree, error) {
	if dim <= 0 {
		//nc:allow(hotpath) validation-failure return: cold by definition
		return nil, fmt.Errorf("index: dimension %d, want > 0", dim)
	}
	//nc:allow(hotpath) tree construction: once per shard, not per upsert
	return &Tree{dim: dim, ids: make(map[string]*treeNode)}, nil
}

// Entry is one point for bulk construction with Build.
type Entry struct {
	// ID identifies the point; duplicate IDs resolve last-wins, matching
	// a sequence of Inserts.
	ID string
	// Coord is the point's coordinate.
	Coord coord.Coordinate
}

// Build constructs a balanced Tree over the given entries in one pass:
// validate, dedupe, and median-build, O(n log n) total. It produces the
// same tree a Rebuild would leave behind, without paying for n
// incremental inserts and the O(n log^2 n) amortized rebuild cascade
// they trigger — the Registry uses it to warm empty shards from
// snapshots. All entries are validated before any state is built, so an
// error returns no partially constructed tree.
func Build(dim int, entries []Entry) (*Tree, error) {
	t, err := New(dim)
	if err != nil {
		return nil, err
	}
	for i := range entries {
		if err := entries[i].Coord.Validate(dim); err != nil {
			//nc:allow(hotpath) validation-failure return: cold by definition
			return nil, fmt.Errorf("index build %q: %w", entries[i].ID, err)
		}
	}
	// Nodes come from one contiguous backing array: a single allocation,
	// and better locality for the build's median scans. The capacity is
	// fixed up front so node addresses stay stable as it fills.
	backing := make([]treeNode, 0, len(entries)) //nc:allow(hotpath) bulk build: one contiguous backing array per build
	for i := range entries {
		e := &entries[i]
		if old, ok := t.ids[e.ID]; ok {
			// Later duplicate wins; reuse the node of the earlier
			// occurrence.
			old.c = e.Coord
			old.minHeight = e.Coord.Height
			continue
		}
		backing = append(backing, treeNode{id: e.ID, c: e.Coord, size: 1, minHeight: e.Coord.Height})
		t.ids[e.ID] = &backing[len(backing)-1]
	}
	if len(backing) == 0 {
		return t, nil
	}
	// Input order is fine as the starting arrangement: the recursive
	// median build partitions by the (axis value, id) total order, whose
	// medians are unique, so the resulting tree shape is a pure function
	// of the point set — no pre-sort needed for determinism.
	pts := make([]*treeNode, len(backing)) //nc:allow(hotpath) bulk build: one pointer slice per build
	for i := range backing {
		pts[i] = &backing[i]
	}
	t.root = build(pts, 0, dim, nil)
	t.liveAtRebuild = len(pts)
	t.heightHint = balancedHeight(len(pts))
	return t, nil
}

// Len reports the number of live points.
func (t *Tree) Len() int { return len(t.ids) }

// Stats snapshots the tree's shape in O(1).
func (t *Tree) Stats() Stats {
	return Stats{
		Live:       len(t.ids),
		Tombstones: t.dead,
		Rebuilds:   t.rebuilds,
		Height:     t.heightHint,
	}
}

// balancedHeight is the height of a balanced tree over n nodes.
func balancedHeight(n int) int {
	return bits.Len(uint(n))
}

// Insert adds the point, replacing any existing point with the same id.
func (t *Tree) Insert(id string, c coord.Coordinate) error {
	if err := c.Validate(t.dim); err != nil {
		//nc:allow(hotpath) validation-failure return: cold by definition
		return fmt.Errorf("index insert %q: %w", id, err)
	}
	if old, ok := t.ids[id]; ok {
		t.tombstone(old)
	}
	n := &treeNode{id: id, c: c, size: 1, minHeight: c.Height} //nc:allow(hotpath) one node per newly-inserted point; pure refreshes short-circuit before Insert
	t.ids[id] = n
	depth := 1
	if t.root == nil {
		t.root = n
	} else {
		cur := t.root
		for {
			depth++
			if c.Vec[cur.axis] < cur.c.Vec[cur.axis] {
				if cur.left == nil {
					cur.left = n
					break
				}
				cur = cur.left
			} else {
				if cur.right == nil {
					cur.right = n
					break
				}
				cur = cur.right
			}
		}
		n.parent = cur
		n.axis = (cur.axis + 1) % t.dim
		for p := cur; p != nil; p = p.parent {
			p.size++
			if c.Height < p.minHeight {
				p.minHeight = c.Height
			}
		}
	}
	t.inserts++
	if depth > t.heightHint {
		t.heightHint = depth
	}
	if depth > maxDepth(len(t.ids)) {
		// Scapegoat-style trigger: an insertion that lands far below the
		// balanced depth means the tree has drifted into a chain (e.g.
		// sorted-order insertion); rebalance immediately.
		t.Rebuild()
		return nil
	}
	t.maybeRebuild()
	return nil
}

// maxDepth is the deepest insertion tolerated for a tree of n live
// points. Randomly ordered insertions stay well under it (expected max
// depth ~3·log2 n), so it only fires on genuinely degenerate shapes.
func maxDepth(n int) int {
	return 4*bits.Len(uint(n)) + 8
}

// Remove tombstones the point with the given id.
func (t *Tree) Remove(id string) bool {
	n, ok := t.ids[id]
	if !ok {
		return false
	}
	delete(t.ids, id)
	t.tombstone(n)
	t.maybeRebuild()
	return true
}

// tombstone marks n deleted and fixes live counts on the path to the
// root. The caller removes the id-map entry.
func (t *Tree) tombstone(n *treeNode) {
	if n.deleted {
		return
	}
	n.deleted = true
	t.dead++
	for p := n; p != nil; p = p.parent {
		p.size--
	}
}

// maybeRebuild rebalances when tombstones dominate or inserts since the
// last rebuild exceed the tree size at that rebuild (the doubling rule).
func (t *Tree) maybeRebuild() {
	live := len(t.ids)
	if live == 0 {
		if t.root != nil {
			t.root = nil
			t.dead = 0
			t.liveAtRebuild = 0
			t.inserts = 0
			t.rebuilds++
			t.heightHint = 0
		}
		return
	}
	if t.dead > live/2 || t.inserts > t.liveAtRebuild+minRebuildSlack {
		t.Rebuild()
	}
}

// minRebuildSlack keeps tiny trees from rebuilding on every insert.
const minRebuildSlack = 32

// Rebuild replaces the tree with a balanced median build over the live
// points. O(n log n) expected.
func (t *Tree) Rebuild() {
	pts := make([]*treeNode, 0, len(t.ids)) //nc:allow(hotpath) amortized rebalance: O(log n) rebuilds over n inserts
	for _, n := range t.ids {
		pts = append(pts, n)
	}
	// Deterministic starting order so rebuilds do not depend on map
	// iteration order.
	//nc:allow(hotpath) amortized rebalance: O(log n) rebuilds over n inserts
	sort.Slice(pts, func(i, j int) bool { return pts[i].id < pts[j].id })
	t.root = build(pts, 0, t.dim, nil)
	t.dead = 0
	t.liveAtRebuild = len(pts)
	t.inserts = 0
	t.rebuilds++
	t.heightHint = balancedHeight(len(pts))
}

// build constructs a balanced subtree from pts, splitting on axis. It
// reuses the existing nodes, resetting their link and bookkeeping fields.
func build(pts []*treeNode, axis, dim int, parent *treeNode) *treeNode {
	if len(pts) == 0 {
		return nil
	}
	mid := len(pts) / 2
	selectMedian(pts, mid, axis)
	n := pts[mid]
	n.axis = axis
	n.parent = parent
	n.deleted = false
	n.size = len(pts)
	n.minHeight = n.c.Height
	n.left = build(pts[:mid], (axis+1)%dim, dim, n)
	n.right = build(pts[mid+1:], (axis+1)%dim, dim, n)
	if n.left != nil && n.left.minHeight < n.minHeight {
		n.minHeight = n.left.minHeight
	}
	if n.right != nil && n.right.minHeight < n.minHeight {
		n.minHeight = n.right.minHeight
	}
	return n
}

// selectMedian partially sorts pts so that pts[mid] is the element that a
// full sort by (axis value, id) would place there, with smaller elements
// before it and larger after. Expected O(n) quickselect.
func selectMedian(pts []*treeNode, mid, axis int) {
	lo, hi := 0, len(pts)-1
	for lo < hi {
		// Median-of-three pivot guards against sorted inputs.
		m := lo + (hi-lo)/2
		if ptLess(pts[m], pts[lo], axis) {
			pts[m], pts[lo] = pts[lo], pts[m]
		}
		if ptLess(pts[hi], pts[lo], axis) {
			pts[hi], pts[lo] = pts[lo], pts[hi]
		}
		if ptLess(pts[hi], pts[m], axis) {
			pts[hi], pts[m] = pts[m], pts[hi]
		}
		pivot := pts[m]
		i, j := lo, hi
		for i <= j {
			for ptLess(pts[i], pivot, axis) {
				i++
			}
			for ptLess(pivot, pts[j], axis) {
				j--
			}
			if i <= j {
				pts[i], pts[j] = pts[j], pts[i]
				i++
				j--
			}
		}
		if mid <= j {
			hi = j
		} else if mid >= i {
			lo = i
		} else {
			return
		}
	}
}

// ptLess orders points by (axis value, id): a total order, so rebuilds
// are deterministic even with duplicate coordinates.
func ptLess(a, b *treeNode, axis int) bool {
	if a.c.Vec[axis] != b.c.Vec[axis] {
		return a.c.Vec[axis] < b.c.Vec[axis]
	}
	return a.id < b.id
}

// KNearest returns the k nearest points to from, sorted by
// (distance, id) ascending.
func (t *Tree) KNearest(from coord.Coordinate, k int) ([]Neighbor, error) {
	return t.KNearestBound(from, k, math.Inf(1))
}

// KNearestBound is KNearest restricted to points at distance <= bound.
// A caller that already holds k candidates — the Registry merging across
// shards — passes its current kth-best distance so the search prunes
// subtrees that cannot improve the merged result, instead of doing k
// full nearest-neighbor searches per stripe.
func (t *Tree) KNearestBound(from coord.Coordinate, k int, bound float64) ([]Neighbor, error) {
	h := bheap.New(k, neighborBefore)
	var b Bound
	b.Reset(bound)
	if err := t.KNearestInto(from, k, h, &b); err != nil {
		return nil, err
	}
	res := h.Items()
	sortNeighbors(res)
	return res, nil
}

// KNearestInto is the allocation-free core of KNearestBound: it offers
// the k nearest points at distance <= b into the caller-owned heap h
// (which the caller must have Reset to capacity k) and leaves the
// results UNSORTED in heap order — callers merging several trees sort
// once at the end. b is both input and output: the search starts from
// the bound it carries, tightens it to its own kth-best distance as the
// heap fills, and prunes against its current value throughout, so
// concurrent searches over different trees sharing one Bound prune each
// other. The bound check is <= and the heap breaks distance ties by id,
// so the kept set is exact under the (Distance, ID) total order no
// matter how the bound tightens.
//
//nc:hotpath
func (t *Tree) KNearestInto(from coord.Coordinate, k int, h *bheap.Heap[Neighbor], b *Bound) error {
	if err := from.Validate(t.dim); err != nil {
		//nc:allow(hotpath) validation-failure return: cold by definition
		return fmt.Errorf("index knearest: %w", err)
	}
	if k <= 0 {
		//nc:allow(hotpath) validation-failure return: cold by definition
		return fmt.Errorf("index knearest: k = %d, want > 0", k)
	}
	if math.IsNaN(b.Load()) {
		//nc:allow(hotpath) validation-failure return: cold by definition
		return fmt.Errorf("index knearest: bound is NaN")
	}
	t.searchKNN(t.root, from, h, b)
	return nil
}

// searchKNN walks the near side first, then visits the far side only if
// the splitting-plane lower bound could still beat the current kth best
// and the shared bound.
//
//nc:hotpath
func (t *Tree) searchKNN(n *treeNode, from coord.Coordinate, h *bheap.Heap[Neighbor], b *Bound) {
	if n == nil || n.size == 0 {
		return
	}
	if !n.deleted {
		// Dimensions were validated at insert and query time, so the
		// distance cannot fail.
		d, _ := from.DistanceTo(n.c)
		if d <= b.Load() {
			h.Offer(Neighbor{ID: n.id, Coord: n.c, Distance: d})
			if h.Full() {
				// k candidates at distance <= Worst now exist, so the
				// true kth-best cannot exceed it: a valid bound for this
				// search and for every other search sharing b.
				b.Tighten(h.Worst().Distance)
			}
		}
	}
	delta := from.Vec[n.axis] - n.c.Vec[n.axis]
	near, far := n.left, n.right
	if delta >= 0 {
		near, far = n.right, n.left
	}
	if near != nil && near.size > 0 {
		lb := from.Height + near.minHeight
		if lb <= b.Load() && (!h.Full() || lb <= h.Worst().Distance) {
			t.searchKNN(near, from, h, b)
		}
	}
	if far != nil && far.size > 0 {
		lb := math.Abs(delta) + from.Height + far.minHeight
		if lb <= b.Load() && (!h.Full() || lb <= h.Worst().Distance) {
			t.searchKNN(far, from, h, b)
		}
	}
}

// Within returns every point at distance <= radius, sorted by
// (distance, id) ascending.
func (t *Tree) Within(from coord.Coordinate, radius float64) ([]Neighbor, error) {
	res, err := t.WithinInto(from, radius, nil)
	if err != nil {
		return nil, err
	}
	sortNeighbors(res)
	return res, nil
}

// WithinInto is the merge-friendly core of Within: it appends every
// point at distance <= radius to buf (which may carry results from
// other trees) and returns the extended slice UNSORTED — callers
// merging several trees size and sort the combined result once instead
// of sorting per tree. Steady-state reuse of buf's backing array makes
// repeated radius queries allocation-free once it has grown to the
// working size.
//
//nc:hotpath
func (t *Tree) WithinInto(from coord.Coordinate, radius float64, buf []Neighbor) ([]Neighbor, error) {
	if err := from.Validate(t.dim); err != nil {
		//nc:allow(hotpath) validation-failure return: cold by definition
		return nil, fmt.Errorf("index within: %w", err)
	}
	if radius < 0 || math.IsNaN(radius) {
		//nc:allow(hotpath) validation-failure return: cold by definition
		return nil, fmt.Errorf("index within: radius %v, want >= 0", radius)
	}
	t.searchRadius(t.root, from, radius, &buf)
	return buf, nil
}

func (t *Tree) searchRadius(n *treeNode, from coord.Coordinate, radius float64, res *[]Neighbor) {
	if n == nil || n.size == 0 {
		return
	}
	if !n.deleted {
		d, _ := from.DistanceTo(n.c)
		if d <= radius {
			*res = append(*res, Neighbor{ID: n.id, Coord: n.c, Distance: d})
		}
	}
	delta := from.Vec[n.axis] - n.c.Vec[n.axis]
	near, far := n.left, n.right
	if delta >= 0 {
		near, far = n.right, n.left
	}
	t.searchRadius(near, from, radius, res)
	if far != nil && far.size > 0 {
		if math.Abs(delta)+from.Height+far.minHeight <= radius {
			t.searchRadius(far, from, radius, res)
		}
	}
}

// sortNeighbors orders results by (distance, id) ascending — the
// deterministic order every Index implementation promises.
// slices.SortFunc rather than sort.Slice: the latter boxes the slice
// into an interface (an allocation the zero-alloc query path cannot
// afford); the former is generic and allocation-free.
func sortNeighbors(ns []Neighbor) {
	//nc:allow(hotpath) generic SortFunc: the slice binds a type parameter, no interface boxing happens at runtime
	slices.SortFunc(ns, CompareNeighbors)
}

// SortNeighbors exposes the canonical (Distance, ID) ascending ordering
// for callers that merge per-tree results themselves.
//
//nc:hotpath
func SortNeighbors(ns []Neighbor) { sortNeighbors(ns) }

// CompareNeighbors is the (Distance, ID) total order as a three-way
// comparison, for slices.SortFunc.
//
//nc:hotpath
func CompareNeighbors(a, b Neighbor) int {
	switch {
	case a.Distance < b.Distance:
		return -1
	case a.Distance > b.Distance:
		return 1
	case a.ID < b.ID:
		return -1
	case a.ID > b.ID:
		return 1
	default:
		return 0
	}
}

// NeighborBefore reports whether a sorts before b under the canonical
// (Distance, ID) order — the order function for caller-owned k-best
// heaps fed through KNearestInto.
//
//nc:hotpath
func NeighborBefore(a, b Neighbor) bool { return neighborBefore(a, b) }

// neighborBefore is the (Distance, ID) total order every Index query
// returns results in; it also drives the bounded k-best heap.
//
//nc:hotpath
func neighborBefore(a, b Neighbor) bool {
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	return a.ID < b.ID
}
