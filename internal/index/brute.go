package index

import (
	"fmt"
	"math"

	"netcoord/internal/bheap"
	"netcoord/internal/coord"
)

// Brute is the O(n)-scan reference implementation of Index. It exists as
// the correctness oracle for the kd-tree — identical semantics, no
// cleverness — and as the baseline the registry benchmarks beat.
type Brute struct {
	dim int
	pts map[string]coord.Coordinate
}

// NewBrute builds an empty brute-force index for the given dimension.
func NewBrute(dim int) (*Brute, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("index: dimension %d, want > 0", dim)
	}
	return &Brute{dim: dim, pts: make(map[string]coord.Coordinate)}, nil
}

// Insert adds or replaces the point with the given id.
func (b *Brute) Insert(id string, c coord.Coordinate) error {
	if err := c.Validate(b.dim); err != nil {
		return fmt.Errorf("index insert %q: %w", id, err)
	}
	b.pts[id] = c
	return nil
}

// Remove deletes the point, reporting whether it was present.
func (b *Brute) Remove(id string) bool {
	if _, ok := b.pts[id]; !ok {
		return false
	}
	delete(b.pts, id)
	return true
}

// Len reports the number of points.
func (b *Brute) Len() int { return len(b.pts) }

// KNearest scans every point and keeps the best k under (distance, id).
func (b *Brute) KNearest(from coord.Coordinate, k int) ([]Neighbor, error) {
	if err := from.Validate(b.dim); err != nil {
		return nil, fmt.Errorf("index knearest: %w", err)
	}
	if k <= 0 {
		return nil, fmt.Errorf("index knearest: k = %d, want > 0", k)
	}
	h := bheap.New(k, neighborBefore)
	for id, c := range b.pts {
		d, _ := from.DistanceTo(c)
		h.Offer(Neighbor{ID: id, Coord: c, Distance: d})
	}
	res := h.Items()
	sortNeighbors(res)
	return res, nil
}

// Within scans every point and keeps those at distance <= radius.
func (b *Brute) Within(from coord.Coordinate, radius float64) ([]Neighbor, error) {
	if err := from.Validate(b.dim); err != nil {
		return nil, fmt.Errorf("index within: %w", err)
	}
	if radius < 0 || math.IsNaN(radius) {
		return nil, fmt.Errorf("index within: radius %v, want >= 0", radius)
	}
	var res []Neighbor
	for id, c := range b.pts {
		d, _ := from.DistanceTo(c)
		if d <= radius {
			res = append(res, Neighbor{ID: id, Coord: c, Distance: d})
		}
	}
	sortNeighbors(res)
	return res, nil
}
