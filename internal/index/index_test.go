package index

import (
	"fmt"
	"math"
	"testing"

	"netcoord/internal/coord"
	"netcoord/internal/xrand"
)

// randomCoord draws a coordinate in a [0, 200)^dim box, with a height in
// [0, 20) on roughly half the points so the height-aware pruning path is
// always exercised.
func randomCoord(rng *xrand.Stream, dim int) coord.Coordinate {
	c := coord.Origin(dim)
	for i := range c.Vec {
		c.Vec[i] = rng.Uniform(0, 200)
	}
	if rng.Bernoulli(0.5) {
		c.Height = rng.Uniform(0, 20)
	}
	return c
}

func neighborsEqual(a, b []Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Distance != b[i].Distance {
			return false
		}
	}
	return true
}

// TestTreeMatchesBruteRandomWorkload is the oracle property test: a
// random interleaving of inserts, updates, and removals, with kNN and
// radius queries after every batch, must agree exactly — ties included —
// with the brute-force scan.
func TestTreeMatchesBruteRandomWorkload(t *testing.T) {
	const (
		dim    = 3
		ops    = 4000
		checks = 40
	)
	for seed := uint64(1); seed <= 3; seed++ {
		rng := xrand.NewStream(seed)
		tree, err := New(dim)
		if err != nil {
			t.Fatal(err)
		}
		brute, err := NewBrute(dim)
		if err != nil {
			t.Fatal(err)
		}
		for op := 0; op < ops; op++ {
			id := fmt.Sprintf("node-%d", rng.Intn(600))
			switch {
			case rng.Bernoulli(0.25) && brute.Len() > 0:
				gotTree := tree.Remove(id)
				gotBrute := brute.Remove(id)
				if gotTree != gotBrute {
					t.Fatalf("seed %d op %d: Remove(%q) tree=%v brute=%v", seed, op, id, gotTree, gotBrute)
				}
			default:
				c := randomCoord(rng, dim)
				if err := tree.Insert(id, c); err != nil {
					t.Fatalf("seed %d op %d: tree insert: %v", seed, op, err)
				}
				if err := brute.Insert(id, c); err != nil {
					t.Fatalf("seed %d op %d: brute insert: %v", seed, op, err)
				}
			}
			if tree.Len() != brute.Len() {
				t.Fatalf("seed %d op %d: Len tree=%d brute=%d", seed, op, tree.Len(), brute.Len())
			}
			if op%(ops/checks) != 0 {
				continue
			}
			q := randomCoord(rng, dim)
			for _, k := range []int{1, 3, 8, 1000} {
				want, err := brute.KNearest(q, k)
				if err != nil {
					t.Fatal(err)
				}
				got, err := tree.KNearest(q, k)
				if err != nil {
					t.Fatal(err)
				}
				if !neighborsEqual(got, want) {
					t.Fatalf("seed %d op %d k=%d: tree %v != brute %v", seed, op, k, got, want)
				}
			}
			// KNearestBound must equal the brute answer restricted to
			// the bound: Within(bound) truncated to k.
			for _, bound := range []float64{10, 60, 300} {
				all, err := brute.Within(q, bound)
				if err != nil {
					t.Fatal(err)
				}
				want := all
				if len(want) > 8 {
					want = want[:8]
				}
				got, err := tree.KNearestBound(q, 8, bound)
				if err != nil {
					t.Fatal(err)
				}
				if !neighborsEqual(got, want) {
					t.Fatalf("seed %d op %d bound=%v: tree %v != brute %v", seed, op, bound, got, want)
				}
			}
			for _, r := range []float64{0, 25, 120, 1e9} {
				want, err := brute.Within(q, r)
				if err != nil {
					t.Fatal(err)
				}
				got, err := tree.Within(q, r)
				if err != nil {
					t.Fatal(err)
				}
				if !neighborsEqual(got, want) {
					t.Fatalf("seed %d op %d r=%v: tree has %d results, brute %d", seed, op, r, len(got), len(want))
				}
			}
		}
	}
}

func TestTreeBasics(t *testing.T) {
	tree, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 0 {
		t.Fatalf("empty tree Len = %d", tree.Len())
	}
	got, err := tree.KNearest(coord.New(0, 0, 0), 5)
	if err != nil {
		t.Fatalf("kNN on empty tree: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("kNN on empty tree returned %v", got)
	}

	if err := tree.Insert("a", coord.New(0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert("b", coord.New(10, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert("c", coord.New(0, 20, 0)); err != nil {
		t.Fatal(err)
	}
	got, err = tree.KNearest(coord.New(1, 0, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "a" || got[1].ID != "b" {
		t.Fatalf("kNN = %v, want a then b", got)
	}

	// Upsert moves a point.
	if err := tree.Insert("a", coord.New(100, 100, 100)); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 3 {
		t.Fatalf("Len after upsert = %d, want 3", tree.Len())
	}
	got, err = tree.KNearest(coord.New(1, 0, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != "b" {
		t.Fatalf("nearest after moving a = %q, want b", got[0].ID)
	}

	if !tree.Remove("b") {
		t.Fatal("Remove(b) = false")
	}
	if tree.Remove("b") {
		t.Fatal("second Remove(b) = true")
	}
	if tree.Len() != 2 {
		t.Fatalf("Len after remove = %d, want 2", tree.Len())
	}
}

// TestTreeHeightModel checks the additive height term: a Euclidean-close
// point with a huge height must lose to a farther flat point.
func TestTreeHeightModel(t *testing.T) {
	tree, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	tall := coord.New(1, 0, 0)
	tall.Height = 500
	if err := tree.Insert("tall", tall); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert("flat", coord.New(50, 0, 0)); err != nil {
		t.Fatal(err)
	}
	got, err := tree.KNearest(coord.New(0, 0, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != "flat" {
		t.Fatalf("nearest = %q, want flat (height must count)", got[0].ID)
	}
}

func TestTreeValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("New(0) succeeded")
	}
	tree, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert("x", coord.New(1, 2)); err == nil {
		t.Fatal("wrong-dimension insert succeeded")
	}
	bad := coord.New(1, 2, math.NaN())
	if err := tree.Insert("x", bad); err == nil {
		t.Fatal("NaN insert succeeded")
	}
	if _, err := tree.KNearest(coord.New(1, 2), 1); err == nil {
		t.Fatal("wrong-dimension query succeeded")
	}
	if _, err := tree.KNearest(coord.New(1, 2, 3), 0); err == nil {
		t.Fatal("k=0 query succeeded")
	}
	if _, err := tree.Within(coord.New(1, 2, 3), -1); err == nil {
		t.Fatal("negative radius succeeded")
	}
}

// TestTreeRebuildBoundsShape drives sorted-order insertion — the kd-tree
// worst case — and churn, then checks the rebuild machinery kept the tree
// shallow and reclaimed tombstones.
func TestTreeRebuildBoundsShape(t *testing.T) {
	tree, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4096
	for i := 0; i < n; i++ {
		// Strictly increasing on every axis: unbalanced without rebuilds.
		v := float64(i)
		if err := tree.Insert(fmt.Sprintf("n%04d", i), coord.New(v, v, v)); err != nil {
			t.Fatal(err)
		}
	}
	st := tree.Stats()
	if st.Rebuilds == 0 {
		t.Fatal("no rebuilds after sorted insertion")
	}
	// A balanced tree of 4096 has height 13; the depth trigger caps the
	// degenerate shape at 4*log2(n)+8. Far below the 4096-long chain a
	// plain kd-tree would build here.
	if st.Height > 4*13+8 {
		t.Fatalf("height %d after sorted insertion, want <= %d", st.Height, 4*13+8)
	}
	for i := 0; i < n/2; i++ {
		tree.Remove(fmt.Sprintf("n%04d", i))
	}
	st = tree.Stats()
	if st.Live != n/2 {
		t.Fatalf("live = %d, want %d", st.Live, n/2)
	}
	if st.Tombstones > st.Live/2+1 {
		t.Fatalf("tombstones %d never reclaimed (live %d)", st.Tombstones, st.Live)
	}
}

// TestTreeDeterministic: identical operation sequences must produce
// identical trees and query results regardless of map iteration order.
func TestTreeDeterministic(t *testing.T) {
	run := func() []Neighbor {
		rng := xrand.NewStream(99)
		tree, err := New(3)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			id := fmt.Sprintf("node-%d", rng.Intn(500))
			if rng.Bernoulli(0.3) {
				tree.Remove(id)
			} else if err := tree.Insert(id, randomCoord(rng, 3)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := tree.KNearest(coord.New(100, 100, 100), 16)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !neighborsEqual(a, b) {
		t.Fatalf("same workload, different results:\n%v\n%v", a, b)
	}
}
