// Package trace defines the latency observation stream that feeds the
// simulator: the synthetic counterpart of the paper's PlanetLab ping
// trace ("each node measured the latency to another node with an
// application-level UDP ping once per second").
//
// A trace is a time-ordered stream of Samples. Sources produce them
// either live from a netsim.Network (Generator) or by replaying recorded
// data (SliceSource, Reader). Generators sample neighbors in round-robin
// order, matching both the paper's trace collection and its PlanetLab
// implementation.
package trace

import (
	"errors"
	"fmt"

	"netcoord/internal/netsim"
	"netcoord/internal/xrand"
)

// Sample is one latency observation: node From pinged node To at second
// Tick and measured RTT milliseconds. Lost marks pings with no response
// (RTT is meaningless then).
type Sample struct {
	Tick uint64
	From int
	To   int
	RTT  float64
	Lost bool
}

// Source yields samples in non-decreasing Tick order.
type Source interface {
	// Next returns the next sample; ok is false when the trace is
	// exhausted.
	Next() (s Sample, ok bool)
}

// SliceSource replays an in-memory sample slice.
type SliceSource struct {
	samples []Sample
	pos     int
}

// NewSliceSource wraps samples (not copied; callers must not mutate).
func NewSliceSource(samples []Sample) *SliceSource {
	return &SliceSource{samples: samples}
}

// Next implements Source.
func (s *SliceSource) Next() (Sample, bool) {
	if s.pos >= len(s.samples) {
		return Sample{}, false
	}
	out := s.samples[s.pos]
	s.pos++
	return out, true
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// GeneratorConfig parameterizes trace generation.
type GeneratorConfig struct {
	// IntervalTicks is the per-node sampling period in seconds: the
	// paper's trace used 1 (a ping per second), its PlanetLab
	// implementation 5.
	IntervalTicks uint64
	// DurationTicks is the trace length in seconds (e.g. 4*3600 for the
	// paper's four-hour runs).
	DurationTicks uint64
	// NeighborCount bounds each node's neighbor set; 0 means every other
	// node. Neighbors are a deterministic random subset per node, and
	// each node cycles through its set round-robin.
	NeighborCount int
	// JoinSpreadTicks models churn: when > 0, every node except node 0
	// joins at a deterministic random tick in [0, JoinSpreadTicks).
	// Nodes neither sample nor get sampled before they join — the
	// regime the paper's Section VI warns about, where first samples on
	// brand-new links keep arriving throughout the run.
	JoinSpreadTicks uint64
	// Seed drives neighbor-set selection and join times (distinct from
	// the network's observation seed).
	Seed uint64
}

// Validate checks the configuration.
func (c GeneratorConfig) Validate() error {
	if c.IntervalTicks < 1 {
		return fmt.Errorf("trace: interval %d ticks, want >= 1", c.IntervalTicks)
	}
	if c.DurationTicks < 1 {
		return fmt.Errorf("trace: duration %d ticks, want >= 1", c.DurationTicks)
	}
	if c.NeighborCount < 0 {
		return fmt.Errorf("trace: neighbor count %d, want >= 0", c.NeighborCount)
	}
	return nil
}

// Generator produces a trace live from a synthetic network. Nodes sample
// on a fixed period, staggered by node index so the load is spread across
// ticks; each node walks its neighbor set round-robin.
type Generator struct {
	net       *netsim.Network
	cfg       GeneratorConfig
	neighbors [][]int
	cursor    []int
	joinTick  []uint64
	tick      uint64
	node      int

	// Shard filter: when shardMod > 1, Next yields only samples whose
	// From node satisfies From % shardMod == shardRem. The filter is
	// applied before any per-node state is touched, and a node's cursor
	// advances only when that node itself fires, so the union of the
	// shards' streams is exactly the unsharded stream — the property
	// the simulator's in-worker synthesis relies on.
	shardRem int
	shardMod int
}

// NewGenerator builds a generator over the given network.
func NewGenerator(net *netsim.Network, cfg GeneratorConfig) (*Generator, error) {
	return NewGeneratorShard(net, cfg, 0, 1)
}

// NewGeneratorShard builds a generator restricted to the nodes with
// index ≡ rem (mod shards). Each shard synthesizes exactly the samples
// its nodes would produce in the full trace — per-node round-robin
// cursors, join times, and neighbor sets are bit-identical to the
// unsharded generator's — so `shards` generators running concurrently
// partition the full trace by From with no coordination.
func NewGeneratorShard(net *netsim.Network, cfg GeneratorConfig, rem, shards int) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if shards < 1 || rem < 0 || rem >= shards {
		return nil, fmt.Errorf("trace: shard %d of %d, want 0 <= rem < shards", rem, shards)
	}
	n := net.Nodes()
	if n < 2 {
		return nil, errors.New("trace: need at least two nodes")
	}
	g := &Generator{
		net:       net,
		cfg:       cfg,
		neighbors: make([][]int, n),
		cursor:    make([]int, n),
		joinTick:  make([]uint64, n),
		shardRem:  rem,
		shardMod:  shards,
	}
	for i := 0; i < n; i++ {
		g.neighbors[i] = buildNeighborSet(i, n, cfg.NeighborCount, cfg.Seed)
		if cfg.JoinSpreadTicks > 0 && i > 0 {
			g.joinTick[i] = xrand.At(cfg.Seed, 0xC0FFEE, uint64(i)).Uint64() % cfg.JoinSpreadTicks
		}
	}
	return g, nil
}

// JoinTick reports when node i joins the system (0 without churn).
func (g *Generator) JoinTick(i int) uint64 { return g.joinTick[i] }

// buildNeighborSet returns node i's neighbor list: all other nodes in
// ring order when count is 0 or exceeds the population, otherwise a
// deterministic random subset of the requested size.
func buildNeighborSet(i, n, count int, seed uint64) []int {
	others := make([]int, 0, n-1)
	for d := 1; d < n; d++ {
		others = append(others, (i+d)%n)
	}
	if count <= 0 || count >= len(others) {
		return others
	}
	rng := xrand.At(seed, uint64(i))
	perm := rng.Perm(len(others))
	set := make([]int, count)
	for k := 0; k < count; k++ {
		set[k] = others[perm[k]]
	}
	return set
}

// Neighbors exposes node i's neighbor list (for tests and the simulator's
// nearest-neighbor bootstrap). The returned slice must not be modified.
func (g *Generator) Neighbors(i int) []int { return g.neighbors[i] }

// Next implements Source. It scans ticks in order; within a tick, nodes
// due to sample (tick % interval == node % interval) fire in node order.
// Nodes that have not joined yet neither sample nor get sampled.
func (g *Generator) Next() (Sample, bool) {
	for g.tick < g.cfg.DurationTicks {
		for g.node < g.net.Nodes() {
			i := g.node
			g.node++
			if g.shardMod > 1 && i%g.shardMod != g.shardRem {
				continue
			}
			if g.tick%g.cfg.IntervalTicks != uint64(i)%g.cfg.IntervalTicks {
				continue
			}
			if g.tick < g.joinTick[i] {
				continue
			}
			set := g.neighbors[i]
			target, ok := g.nextJoinedTarget(i, set)
			if !ok {
				continue // nobody else has joined yet
			}
			rtt, ok := g.net.Sample(i, target, g.tick)
			return Sample{Tick: g.tick, From: i, To: target, RTT: rtt, Lost: !ok}, true
		}
		g.node = 0
		g.tick++
	}
	return Sample{}, false
}

// nextJoinedTarget advances node i's round-robin cursor to the next
// neighbor that has already joined, trying each neighbor at most once.
func (g *Generator) nextJoinedTarget(i int, set []int) (int, bool) {
	for tries := 0; tries < len(set); tries++ {
		target := set[g.cursor[i]%len(set)]
		g.cursor[i]++
		if g.tick >= g.joinTick[target] {
			return target, true
		}
	}
	return 0, false
}

// Collect drains up to limit samples from a source (limit <= 0 drains
// everything). Intended for tests and small analyses; full experiment
// runs stream instead.
func Collect(src Source, limit int) []Sample {
	var out []Sample
	for {
		if limit > 0 && len(out) >= limit {
			return out
		}
		s, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, s)
	}
}
