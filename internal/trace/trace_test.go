package trace

import (
	"bytes"
	"errors"
	"testing"

	"netcoord/internal/netsim"
)

func testNetwork(t *testing.T, nodes int) *netsim.Network {
	t.Helper()
	n, err := netsim.New(netsim.DefaultWideArea(nodes, 1))
	if err != nil {
		t.Fatalf("netsim.New: %v", err)
	}
	return n
}

func TestGeneratorConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  GeneratorConfig
		ok   bool
	}{
		{name: "valid", cfg: GeneratorConfig{IntervalTicks: 1, DurationTicks: 10}, ok: true},
		{name: "zero interval", cfg: GeneratorConfig{IntervalTicks: 0, DurationTicks: 10}},
		{name: "zero duration", cfg: GeneratorConfig{IntervalTicks: 1, DurationTicks: 0}},
		{name: "negative neighbors", cfg: GeneratorConfig{IntervalTicks: 1, DurationTicks: 1, NeighborCount: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if tt.ok && err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if !tt.ok && err == nil {
				t.Fatal("Validate succeeded")
			}
		})
	}
}

func TestGeneratorEveryNodeSamplesEachTick(t *testing.T) {
	net := testNetwork(t, 6)
	g, err := NewGenerator(net, GeneratorConfig{IntervalTicks: 1, DurationTicks: 3})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	samples := Collect(g, 0)
	if len(samples) != 18 { // 6 nodes x 3 ticks
		t.Fatalf("collected %d samples, want 18", len(samples))
	}
	perTick := map[uint64]map[int]bool{}
	for _, s := range samples {
		if perTick[s.Tick] == nil {
			perTick[s.Tick] = map[int]bool{}
		}
		if perTick[s.Tick][s.From] {
			t.Fatalf("node %d sampled twice in tick %d", s.From, s.Tick)
		}
		perTick[s.Tick][s.From] = true
		if s.From == s.To {
			t.Fatalf("self sample: %+v", s)
		}
	}
	for tick, nodes := range perTick {
		if len(nodes) != 6 {
			t.Fatalf("tick %d: %d nodes sampled, want 6", tick, len(nodes))
		}
	}
}

func TestGeneratorIntervalStaggering(t *testing.T) {
	net := testNetwork(t, 10)
	g, err := NewGenerator(net, GeneratorConfig{IntervalTicks: 5, DurationTicks: 10})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	samples := Collect(g, 0)
	// Each node samples twice over 10 ticks (period 5).
	counts := map[int]int{}
	for _, s := range samples {
		counts[s.From]++
		if s.Tick%5 != uint64(s.From)%5 {
			t.Fatalf("node %d sampled at tick %d, violating stagger", s.From, s.Tick)
		}
	}
	for n, c := range counts {
		if c != 2 {
			t.Fatalf("node %d sampled %d times, want 2", n, c)
		}
	}
}

func TestGeneratorRoundRobinNeighbors(t *testing.T) {
	net := testNetwork(t, 4)
	g, err := NewGenerator(net, GeneratorConfig{IntervalTicks: 1, DurationTicks: 6})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	var targets []int
	for {
		s, ok := g.Next()
		if !ok {
			break
		}
		if s.From == 0 {
			targets = append(targets, s.To)
		}
	}
	// Node 0 over 6 ticks must cycle 1,2,3,1,2,3.
	want := []int{1, 2, 3, 1, 2, 3}
	if len(targets) != len(want) {
		t.Fatalf("targets = %v", targets)
	}
	for i := range want {
		if targets[i] != want[i] {
			t.Fatalf("targets = %v, want %v", targets, want)
		}
	}
}

func TestGeneratorBoundedNeighborSet(t *testing.T) {
	net := testNetwork(t, 20)
	g, err := NewGenerator(net, GeneratorConfig{IntervalTicks: 1, DurationTicks: 40, NeighborCount: 3, Seed: 7})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	seen := map[int]map[int]bool{}
	for {
		s, ok := g.Next()
		if !ok {
			break
		}
		if seen[s.From] == nil {
			seen[s.From] = map[int]bool{}
		}
		seen[s.From][s.To] = true
	}
	for n, set := range seen {
		if len(set) != 3 {
			t.Fatalf("node %d sampled %d distinct targets, want 3", n, len(set))
		}
	}
	if len(g.Neighbors(0)) != 3 {
		t.Fatalf("Neighbors(0) = %v", g.Neighbors(0))
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	build := func() []Sample {
		net := testNetwork(t, 8)
		g, err := NewGenerator(net, GeneratorConfig{IntervalTicks: 1, DurationTicks: 5, NeighborCount: 4, Seed: 3})
		if err != nil {
			t.Fatalf("NewGenerator: %v", err)
		}
		return Collect(g, 0)
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratorTicksNonDecreasing(t *testing.T) {
	net := testNetwork(t, 5)
	g, err := NewGenerator(net, GeneratorConfig{IntervalTicks: 2, DurationTicks: 20})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	var last uint64
	for {
		s, ok := g.Next()
		if !ok {
			break
		}
		if s.Tick < last {
			t.Fatalf("tick went backwards: %d after %d", s.Tick, last)
		}
		last = s.Tick
	}
}

func TestSliceSource(t *testing.T) {
	in := []Sample{{Tick: 1, From: 0, To: 1, RTT: 50}, {Tick: 2, From: 1, To: 0, RTT: 51}}
	src := NewSliceSource(in)
	out := Collect(src, 0)
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("Collect = %+v", out)
	}
	if _, ok := src.Next(); ok {
		t.Fatal("exhausted source returned a sample")
	}
	src.Reset()
	if got := Collect(src, 1); len(got) != 1 || got[0] != in[0] {
		t.Fatalf("after Reset: %+v", got)
	}
}

func TestCollectLimit(t *testing.T) {
	in := make([]Sample, 10)
	got := Collect(NewSliceSource(in), 4)
	if len(got) != 4 {
		t.Fatalf("Collect limit: got %d", len(got))
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	samples := []Sample{
		{Tick: 0, From: 0, To: 1, RTT: 42.5},
		{Tick: 1, From: 268, To: 3, RTT: 10000.25, Lost: false},
		{Tick: 99999, From: 5, To: 6, RTT: 0, Lost: true},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, s := range samples {
		if err := w.Write(s); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}

	r := NewReader(&buf)
	got := Collect(r, 0)
	if err := r.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	if len(got) != len(samples) {
		t.Fatalf("read %d samples, want %d", len(got), len(samples))
	}
	for i := range samples {
		if got[i] != samples[i] {
			t.Fatalf("sample %d: %+v != %+v", i, got[i], samples[i])
		}
	}
}

func TestWriterRejectsNegativeIDs(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Write(Sample{From: -1}); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("error = %v, want ErrBadTrace", err)
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	r := NewReader(&buf)
	if _, ok := r.Next(); ok {
		t.Fatal("empty trace yielded a sample")
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err after clean EOF: %v", err)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("XXXX000000records")))
	if _, ok := r.Next(); ok {
		t.Fatal("bad magic accepted")
	}
	if !errors.Is(r.Err(), ErrBadTrace) {
		t.Fatalf("Err = %v, want ErrBadTrace", r.Err())
	}
}

func TestReaderRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	buf.Write([]byte{9, 0, 0, 0, 0, 0}) // version 9
	r := NewReader(&buf)
	if _, ok := r.Next(); ok {
		t.Fatal("bad version accepted")
	}
	if !errors.Is(r.Err(), ErrBadTrace) {
		t.Fatalf("Err = %v, want ErrBadTrace", r.Err())
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Sample{Tick: 1, From: 0, To: 1, RTT: 5}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	data := buf.Bytes()[:buf.Len()-3] // chop mid-record
	r := NewReader(bytes.NewReader(data))
	if _, ok := r.Next(); ok {
		t.Fatal("truncated record yielded a sample")
	}
	if !errors.Is(r.Err(), ErrBadTrace) {
		t.Fatalf("Err = %v, want ErrBadTrace", r.Err())
	}
}

func TestGeneratorThroughWriterAndBack(t *testing.T) {
	net := testNetwork(t, 6)
	g, err := NewGenerator(net, GeneratorConfig{IntervalTicks: 1, DurationTicks: 10})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	orig := Collect(g, 0)

	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, s := range orig {
		if err := w.Write(s); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	back := Collect(NewReader(&buf), 0)
	if len(back) != len(orig) {
		t.Fatalf("round trip count %d, want %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	net, err := netsim.New(netsim.DefaultWideArea(100, 1))
	if err != nil {
		b.Fatal(err)
	}
	g, err := NewGenerator(net, GeneratorConfig{IntervalTicks: 1, DurationTicks: 1 << 40})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.Fatal("generator exhausted")
		}
	}
}

func BenchmarkWriterWrite(b *testing.B) {
	w := NewWriter(&bytes.Buffer{})
	s := Sample{Tick: 1, From: 2, To: 3, RTT: 50}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.Write(s); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGeneratorChurn(t *testing.T) {
	net := testNetwork(t, 12)
	g, err := NewGenerator(net, GeneratorConfig{
		IntervalTicks:   1,
		DurationTicks:   200,
		JoinSpreadTicks: 100,
		Seed:            9,
	})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	if g.JoinTick(0) != 0 {
		t.Fatalf("node 0 join tick = %d, want 0", g.JoinTick(0))
	}
	spread := false
	for i := 1; i < 12; i++ {
		if g.JoinTick(i) >= 100 {
			t.Fatalf("node %d join tick %d out of spread", i, g.JoinTick(i))
		}
		if g.JoinTick(i) > 0 {
			spread = true
		}
	}
	if !spread {
		t.Fatal("no node joined late despite churn")
	}
	firstSeen := map[int]uint64{}
	for {
		s, ok := g.Next()
		if !ok {
			break
		}
		// No activity before either endpoint's join tick.
		if s.Tick < g.JoinTick(s.From) {
			t.Fatalf("node %d sampled at %d before joining at %d", s.From, s.Tick, g.JoinTick(s.From))
		}
		if s.Tick < g.JoinTick(s.To) {
			t.Fatalf("node %d sampled at %d before target %d joined at %d", s.From, s.Tick, s.To, g.JoinTick(s.To))
		}
		if _, ok := firstSeen[s.From]; !ok {
			firstSeen[s.From] = s.Tick
		}
	}
	// Every node eventually participates.
	if len(firstSeen) != 12 {
		t.Fatalf("only %d nodes ever sampled", len(firstSeen))
	}
}

func TestGeneratorChurnDeterministic(t *testing.T) {
	build := func() []Sample {
		net := testNetwork(t, 8)
		g, err := NewGenerator(net, GeneratorConfig{
			IntervalTicks: 1, DurationTicks: 60, JoinSpreadTicks: 30, Seed: 4,
		})
		if err != nil {
			t.Fatalf("NewGenerator: %v", err)
		}
		return Collect(g, 0)
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestGeneratorNoChurnAllJoinAtZero(t *testing.T) {
	net := testNetwork(t, 6)
	g, err := NewGenerator(net, GeneratorConfig{IntervalTicks: 1, DurationTicks: 10})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	for i := 0; i < 6; i++ {
		if g.JoinTick(i) != 0 {
			t.Fatalf("node %d join tick = %d without churn", i, g.JoinTick(i))
		}
	}
}

// TestGeneratorShardPartitionsTrace pins the property the simulator's
// in-worker synthesis relies on: the shards' streams, merged back in
// (tick, node) order, are exactly the unsharded stream — same samples,
// same per-node round-robin cursors, nothing duplicated or dropped.
func TestGeneratorShardPartitionsTrace(t *testing.T) {
	for _, tc := range []struct {
		nodes     int
		shards    int
		interval  uint64
		neighbors int
		join      uint64
	}{
		{nodes: 11, shards: 3, interval: 1},
		{nodes: 16, shards: 4, interval: 5, neighbors: 4},
		{nodes: 9, shards: 5, interval: 2, join: 30},
	} {
		cfg := GeneratorConfig{
			IntervalTicks:   tc.interval,
			DurationTicks:   60,
			NeighborCount:   tc.neighbors,
			JoinSpreadTicks: tc.join,
			Seed:            7,
		}
		net := testNetwork(t, tc.nodes)
		whole, err := NewGenerator(net, cfg)
		if err != nil {
			t.Fatalf("NewGenerator: %v", err)
		}
		want := Collect(whole, 0)

		// Drain every shard, then merge by scanning (tick, node) in the
		// whole trace's order: within a tick each node fires at most
		// once, so position is determined by (Tick, From).
		byNode := make(map[int][]Sample)
		total := 0
		for rem := 0; rem < tc.shards; rem++ {
			g, err := NewGeneratorShard(net, cfg, rem, tc.shards)
			if err != nil {
				t.Fatalf("NewGeneratorShard(%d, %d): %v", rem, tc.shards, err)
			}
			for _, s := range Collect(g, 0) {
				if s.From%tc.shards != rem {
					t.Fatalf("shard %d emitted sample from node %d", rem, s.From)
				}
				byNode[s.From] = append(byNode[s.From], s)
				total++
			}
		}
		if total != len(want) {
			t.Fatalf("shards emitted %d samples, whole trace has %d", total, len(want))
		}
		cursor := make(map[int]int)
		for i, w := range want {
			shard := byNode[w.From]
			if cursor[w.From] >= len(shard) {
				t.Fatalf("sample %d: shard stream for node %d exhausted early", i, w.From)
			}
			got := shard[cursor[w.From]]
			cursor[w.From]++
			if got != w {
				t.Fatalf("sample %d: shard produced %+v, whole trace %+v", i, got, w)
			}
		}
	}

	// Invalid shard specs are rejected.
	net := testNetwork(t, 4)
	cfg := GeneratorConfig{IntervalTicks: 1, DurationTicks: 1}
	for _, bad := range [][2]int{{-1, 2}, {2, 2}, {0, 0}} {
		if _, err := NewGeneratorShard(net, cfg, bad[0], bad[1]); err == nil {
			t.Fatalf("NewGeneratorShard(%d, %d) succeeded", bad[0], bad[1])
		}
	}
}
