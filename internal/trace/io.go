package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary trace format: a fixed header followed by fixed-width records.
//
//	header:  magic "NCTR" | uint16 version | uint32 reserved
//	record:  uint64 tick | uint32 from | uint32 to | float64 rtt | uint8 lost
//
// Little endian throughout. The format is deliberately dumb — traces are
// large and sequential, so a fixed record width plus bufio gives fast,
// simple streaming.
const (
	magic       = "NCTR"
	version     = uint16(1)
	recordBytes = 8 + 4 + 4 + 8 + 1
)

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("trace: malformed trace data")

// Writer streams samples to an io.Writer in the binary trace format.
type Writer struct {
	w       *bufio.Writer
	buf     [recordBytes]byte
	wrote   uint64
	started bool
}

// NewWriter wraps w. The header is written lazily on the first sample
// (or by Flush).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

func (t *Writer) writeHeader() error {
	if t.started {
		return nil
	}
	t.started = true
	var hdr [10]byte
	copy(hdr[:4], magic)
	binary.LittleEndian.PutUint16(hdr[4:6], version)
	if _, err := t.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("write trace header: %w", err)
	}
	return nil
}

// Write appends one sample.
func (t *Writer) Write(s Sample) error {
	if err := t.writeHeader(); err != nil {
		return err
	}
	if s.From < 0 || s.To < 0 {
		return fmt.Errorf("%w: negative node id", ErrBadTrace)
	}
	b := t.buf[:]
	binary.LittleEndian.PutUint64(b[0:8], s.Tick)
	binary.LittleEndian.PutUint32(b[8:12], uint32(s.From))
	binary.LittleEndian.PutUint32(b[12:16], uint32(s.To))
	binary.LittleEndian.PutUint64(b[16:24], math.Float64bits(s.RTT))
	if s.Lost {
		b[24] = 1
	} else {
		b[24] = 0
	}
	if _, err := t.w.Write(b); err != nil {
		return fmt.Errorf("write trace record: %w", err)
	}
	t.wrote++
	return nil
}

// Count reports how many samples have been written.
func (t *Writer) Count() uint64 { return t.wrote }

// Flush writes the header (if nothing was written yet) and flushes
// buffers. Callers must Flush before closing the underlying writer.
func (t *Writer) Flush() error {
	if err := t.writeHeader(); err != nil {
		return err
	}
	if err := t.w.Flush(); err != nil {
		return fmt.Errorf("flush trace: %w", err)
	}
	return nil
}

// Reader streams samples from a binary trace. It implements Source.
type Reader struct {
	r      *bufio.Reader
	buf    [recordBytes]byte
	primed bool
	err    error
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

func (t *Reader) readHeader() error {
	var hdr [10]byte
	if _, err := io.ReadFull(t.r, hdr[:]); err != nil {
		return fmt.Errorf("%w: header: %v", ErrBadTrace, err)
	}
	if string(hdr[:4]) != magic {
		return fmt.Errorf("%w: bad magic %q", ErrBadTrace, hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != version {
		return fmt.Errorf("%w: unsupported version %d", ErrBadTrace, v)
	}
	return nil
}

// Next implements Source.
func (t *Reader) Next() (Sample, bool) {
	if t.err != nil {
		return Sample{}, false
	}
	if !t.primed {
		t.primed = true
		if err := t.readHeader(); err != nil {
			t.err = err
			return Sample{}, false
		}
	}
	if _, err := io.ReadFull(t.r, t.buf[:]); err != nil {
		if !errors.Is(err, io.EOF) {
			t.err = fmt.Errorf("%w: record: %v", ErrBadTrace, err)
		} else {
			t.err = io.EOF
		}
		return Sample{}, false
	}
	b := t.buf[:]
	return Sample{
		Tick: binary.LittleEndian.Uint64(b[0:8]),
		From: int(binary.LittleEndian.Uint32(b[8:12])),
		To:   int(binary.LittleEndian.Uint32(b[12:16])),
		RTT:  math.Float64frombits(binary.LittleEndian.Uint64(b[16:24])),
		Lost: b[24] == 1,
	}, true
}

// Err reports the terminal error, nil after clean EOF or before
// exhaustion.
func (t *Reader) Err() error {
	if t.err == nil || errors.Is(t.err, io.EOF) {
		return nil
	}
	return t.err
}
