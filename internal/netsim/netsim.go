// Package netsim models the wide-area network underneath the coordinate
// system. It substitutes for the paper's 3-day, 43-million-sample
// PlanetLab ping trace (Section III): instead of replaying recorded
// pings, it generates per-link observation streams with the same
// structure the paper documents —
//
//   - a stable per-link base RTT determined by geography (regional
//     clusters in a 2-D millisecond plane) plus per-node access links and
//     a per-link triangle-inequality-violating extra delay;
//   - small multiplicative and additive jitter around the base;
//   - a moderate congestion tail (a few percent of samples several times
//     the base);
//   - rare extreme spikes, orders of magnitude above the base, spread
//     uniformly over time (Figure 3) and calibrated so ~0.4% of all
//     samples exceed one second (Figure 2);
//   - occasional losses.
//
// Every sample is a pure function of (seed, link, tick) via hash-based
// streams, so traces are reproducible and generation-order independent,
// and any single observation can be re-derived in O(1).
//
// The model also supports what the paper's evaluation needs beyond the
// stationary case: slow regional drift (Figure 7's coordinates moving
// over hours), step route changes (BGP events the filter must adapt to),
// a static mode reproducing the original Vivaldi evaluation methodology
// (every sample equals the base — the A1 ablation), and a low-latency
// cluster profile for the confidence-building experiment (Figure 6).
package netsim

import (
	"errors"
	"fmt"
	"math"

	"netcoord/internal/xrand"
)

// Stream tags keep the per-purpose hash streams independent.
const (
	tagPlacement = iota + 1
	tagAccess
	tagTIV
	tagSample
)

// Region is a geographic cluster of nodes.
type Region struct {
	// Name labels the region in experiment output ("us-west", ...).
	Name string
	// X, Y place the region center in the 2-D millisecond plane: the
	// Euclidean distance between two points approximates the long-haul
	// RTT between them.
	X, Y float64
	// Spread is the standard deviation of node placement around the
	// center, in milliseconds.
	Spread float64
}

// RouteChange is a step change in long-haul latency between two regions,
// effective from AtTick onward: the inter-node base RTT between the
// regions is multiplied by Factor.
type RouteChange struct {
	AtTick  uint64
	RegionA int
	RegionB int
	Factor  float64
}

// Config parameterizes a synthetic network.
type Config struct {
	// Seed drives all randomness.
	Seed uint64
	// Nodes is the number of hosts; they are assigned to Regions
	// round-robin.
	Nodes int
	// Regions define the cluster geography. Defaults (via
	// DefaultWideArea) mirror the paper's Figure 7 regions: US West,
	// US East, Europe, China.
	Regions []Region

	// AccessMin/AccessMax bound each node's access-link delay (ms),
	// drawn uniformly per node. Contributes to every RTT the node sees.
	AccessMin float64
	AccessMax float64
	// TIVMean is the mean of the per-link exponential extra delay that
	// injects triangle-inequality violations; 0 disables.
	TIVMean float64

	// JitterStdDev is the relative sigma of the multiplicative common
	// case jitter: sample *= 1 + |N(0, JitterStdDev)|.
	JitterStdDev float64
	// JitterExpMean is the mean of the additive exponential jitter (ms).
	JitterExpMean float64
	// CongestionProb is the probability a sample is inflated by
	// Uniform(CongestionLo, CongestionHi) — the moderate tail.
	CongestionProb float64
	CongestionLo   float64
	CongestionHi   float64
	// SpikeProb is the probability of an extreme spike, replacing the
	// sample with Uniform(SpikeLo, SpikeHi) ms if that is larger.
	SpikeProb float64
	SpikeLo   float64
	SpikeHi   float64
	// LossProb is the probability a ping gets no response.
	LossProb float64
	// MinLatency floors every observation (ms).
	MinLatency float64

	// Static disables all observation noise: every sample equals the
	// base RTT. This reproduces the original Vivaldi evaluation's
	// fixed-latency-matrix methodology (ablation A1).
	Static bool

	// DriftPerHour gives each region a constant velocity (ms/hour) in
	// the plane; index parallel to Regions. Nil disables drift.
	DriftPerHour []Drift
	// RouteChanges are step latency changes applied at given ticks.
	RouteChanges []RouteChange
}

// Drift is a regional velocity in the millisecond plane.
type Drift struct {
	DX, DY float64
}

// DefaultWideArea returns a PlanetLab-like configuration: four regions
// with intercontinental spacing, heavy-tailed observation noise
// calibrated to Figure 2 (~0.4% of samples >= 1 s), and mild
// triangle-inequality violations.
func DefaultWideArea(nodes int, seed uint64) Config {
	return Config{
		Seed:  seed,
		Nodes: nodes,
		Regions: []Region{
			{Name: "us-west", X: 0, Y: 0, Spread: 8},
			{Name: "us-east", X: 70, Y: 12, Spread: 8},
			{Name: "europe", X: 155, Y: 30, Spread: 10},
			{Name: "china", X: 200, Y: -45, Spread: 10},
		},
		AccessMin:      0.5,
		AccessMax:      12,
		TIVMean:        6,
		JitterStdDev:   0.03,
		JitterExpMean:  0.6,
		CongestionProb: 0.02,
		CongestionLo:   1.5,
		CongestionHi:   5,
		SpikeProb:      0.004,
		SpikeLo:        1000,
		SpikeHi:        10000,
		LossProb:       0.002,
		MinLatency:     0.1,
	}
}

// LowLatencyCluster returns the paper's Section IV-B local-cluster
// profile: sub-millisecond base latencies with jitter at the limit of
// measurement precision — "a fairly Normal spectrum of latency
// observations between 0.4 and 1.2 ms, and then a tail of 5% of the
// observations above 1.2 ms".
func LowLatencyCluster(nodes int, seed uint64) Config {
	return Config{
		Seed:  seed,
		Nodes: nodes,
		Regions: []Region{
			{Name: "cluster", X: 0, Y: 0, Spread: 0.02},
		},
		AccessMin:      0.15,
		AccessMax:      0.35,
		TIVMean:        0,
		JitterStdDev:   0.25,
		JitterExpMean:  0.12,
		CongestionProb: 0.05,
		CongestionLo:   2,
		CongestionHi:   6,
		SpikeProb:      0,
		SpikeLo:        0,
		SpikeHi:        0,
		LossProb:       0,
		MinLatency:     0.05,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("netsim: %d nodes, want >= 2", c.Nodes)
	}
	if len(c.Regions) == 0 {
		return errors.New("netsim: no regions")
	}
	for i, r := range c.Regions {
		if r.Spread < 0 {
			return fmt.Errorf("netsim: region %d spread %v, want >= 0", i, r.Spread)
		}
	}
	if c.AccessMin < 0 || c.AccessMax < c.AccessMin {
		return fmt.Errorf("netsim: access range [%v, %v] invalid", c.AccessMin, c.AccessMax)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"congestion probability", c.CongestionProb},
		{"spike probability", c.SpikeProb},
		{"loss probability", c.LossProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("netsim: %s %v out of [0, 1]", p.name, p.v)
		}
	}
	if c.MinLatency <= 0 {
		return fmt.Errorf("netsim: min latency %v, want > 0", c.MinLatency)
	}
	if c.DriftPerHour != nil && len(c.DriftPerHour) != len(c.Regions) {
		return fmt.Errorf("netsim: %d drift entries for %d regions", len(c.DriftPerHour), len(c.Regions))
	}
	for i, rc := range c.RouteChanges {
		if rc.RegionA < 0 || rc.RegionA >= len(c.Regions) || rc.RegionB < 0 || rc.RegionB >= len(c.Regions) {
			return fmt.Errorf("netsim: route change %d references unknown region", i)
		}
		if rc.Factor <= 0 {
			return fmt.Errorf("netsim: route change %d factor %v, want > 0", i, rc.Factor)
		}
	}
	return nil
}

// Network is an instantiated synthetic network.
type Network struct {
	cfg      Config
	posX     []float64
	posY     []float64
	access   []float64
	regionOf []int
}

// New places nodes and derives per-node parameters from the seed.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{
		cfg:      cfg,
		posX:     make([]float64, cfg.Nodes),
		posY:     make([]float64, cfg.Nodes),
		access:   make([]float64, cfg.Nodes),
		regionOf: make([]int, cfg.Nodes),
	}
	for i := 0; i < cfg.Nodes; i++ {
		r := i % len(cfg.Regions)
		n.regionOf[i] = r
		place := xrand.At(cfg.Seed, tagPlacement, uint64(i))
		n.posX[i] = cfg.Regions[r].X + place.Normal(0, cfg.Regions[r].Spread)
		n.posY[i] = cfg.Regions[r].Y + place.Normal(0, cfg.Regions[r].Spread)
		acc := xrand.At(cfg.Seed, tagAccess, uint64(i))
		n.access[i] = acc.Uniform(cfg.AccessMin, cfg.AccessMax)
	}
	return n, nil
}

// Nodes returns the host count.
func (n *Network) Nodes() int { return n.cfg.Nodes }

// Region returns the region name of node i.
func (n *Network) Region(i int) string {
	return n.cfg.Regions[n.regionOf[i]].Name
}

// RegionIndex returns the region index of node i.
func (n *Network) RegionIndex(i int) int { return n.regionOf[i] }

// positionAt returns node i's plane position at the given tick,
// accounting for regional drift.
func (n *Network) positionAt(i int, tick uint64) (float64, float64) {
	x, y := n.posX[i], n.posY[i]
	if n.cfg.DriftPerHour != nil {
		d := n.cfg.DriftPerHour[n.regionOf[i]]
		hours := float64(tick) / 3600
		x += d.DX * hours
		y += d.DY * hours
	}
	return x, y
}

// BaseRTT returns the ground-truth base round-trip time between nodes i
// and j at the given tick (seconds since start), in milliseconds. This is
// the quantity observations are distributed around; experiments may use
// it for diagnostics, but accuracy metrics follow the paper in measuring
// against observations.
func (n *Network) BaseRTT(i, j int, tick uint64) float64 {
	if i == j {
		return 0
	}
	xi, yi := n.positionAt(i, tick)
	xj, yj := n.positionAt(j, tick)
	dx, dy := xi-xj, yi-yj
	// Group the access sum so the result is bit-identical regardless of
	// argument order (float addition is commutative but not associative).
	base := math.Sqrt(dx*dx+dy*dy) + (n.access[i] + n.access[j])
	base += n.tivExtra(i, j)
	base *= n.routeFactor(i, j, tick)
	return math.Max(base, n.cfg.MinLatency)
}

// tivExtra is the symmetric per-link triangle-violating extra delay.
func (n *Network) tivExtra(i, j int) float64 {
	if n.cfg.TIVMean <= 0 {
		return 0
	}
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	s := xrand.At(n.cfg.Seed, tagTIV, uint64(lo), uint64(hi))
	return s.Exponential(n.cfg.TIVMean)
}

// routeFactor multiplies in any route changes active at tick for the
// region pair of (i, j).
func (n *Network) routeFactor(i, j int, tick uint64) float64 {
	f := 1.0
	ri, rj := n.regionOf[i], n.regionOf[j]
	for _, rc := range n.cfg.RouteChanges {
		if tick < rc.AtTick {
			continue
		}
		if (rc.RegionA == ri && rc.RegionB == rj) || (rc.RegionA == rj && rc.RegionB == ri) {
			f *= rc.Factor
		}
	}
	return f
}

// Sample returns the observed RTT of a ping from i to j at the given
// tick (milliseconds). ok is false when the ping is lost. Samples are a
// pure function of (seed, i, j, tick).
func (n *Network) Sample(i, j int, tick uint64) (rtt float64, ok bool) {
	base := n.BaseRTT(i, j, tick)
	if n.cfg.Static {
		return base, true
	}
	s := xrand.At(n.cfg.Seed, tagSample, uint64(i), uint64(j), tick)
	if n.cfg.LossProb > 0 && s.Bernoulli(n.cfg.LossProb) {
		return 0, false
	}
	v := base*(1+math.Abs(s.Normal(0, n.cfg.JitterStdDev))) + s.Exponential(n.cfg.JitterExpMean)
	if n.cfg.CongestionProb > 0 && s.Bernoulli(n.cfg.CongestionProb) {
		v *= s.Uniform(n.cfg.CongestionLo, n.cfg.CongestionHi)
	}
	if n.cfg.SpikeProb > 0 && s.Bernoulli(n.cfg.SpikeProb) {
		v = math.Max(v, s.Uniform(n.cfg.SpikeLo, n.cfg.SpikeHi))
	}
	return math.Max(v, n.cfg.MinLatency), true
}
