package netsim

import (
	"math"
	"testing"

	"netcoord/internal/stats"
)

func mustNetwork(t *testing.T, cfg Config) *Network {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{name: "default wide area", mutate: func(*Config) {}, ok: true},
		{name: "one node", mutate: func(c *Config) { c.Nodes = 1 }},
		{name: "no regions", mutate: func(c *Config) { c.Regions = nil }},
		{name: "negative spread", mutate: func(c *Config) { c.Regions[0].Spread = -1 }},
		{name: "access range inverted", mutate: func(c *Config) { c.AccessMax = c.AccessMin - 1 }},
		{name: "spike prob over 1", mutate: func(c *Config) { c.SpikeProb = 1.5 }},
		{name: "loss prob negative", mutate: func(c *Config) { c.LossProb = -0.1 }},
		{name: "zero min latency", mutate: func(c *Config) { c.MinLatency = 0 }},
		{name: "drift wrong length", mutate: func(c *Config) { c.DriftPerHour = []Drift{{1, 0}} }},
		{name: "route change bad region", mutate: func(c *Config) {
			c.RouteChanges = []RouteChange{{RegionA: 99, RegionB: 0, Factor: 2}}
		}},
		{name: "route change bad factor", mutate: func(c *Config) {
			c.RouteChanges = []RouteChange{{RegionA: 0, RegionB: 1, Factor: 0}}
		}},
		{name: "valid route change", mutate: func(c *Config) {
			c.RouteChanges = []RouteChange{{AtTick: 100, RegionA: 0, RegionB: 1, Factor: 2}}
		}, ok: true},
		{name: "valid drift", mutate: func(c *Config) {
			c.DriftPerHour = []Drift{{1, 0}, {0, 0}, {0, 0}, {0, 1}}
		}, ok: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultWideArea(20, 1)
			tt.mutate(&cfg)
			err := cfg.Validate()
			if tt.ok && err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if !tt.ok && err == nil {
				t.Fatal("Validate succeeded, want error")
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	a := mustNetwork(t, DefaultWideArea(30, 7))
	b := mustNetwork(t, DefaultWideArea(30, 7))
	for tick := uint64(0); tick < 50; tick++ {
		ra, oka := a.Sample(1, 2, tick)
		rb, okb := b.Sample(1, 2, tick)
		if oka != okb || ra != rb {
			t.Fatalf("tick %d: same-seed networks diverged: (%v,%v) vs (%v,%v)", tick, ra, oka, rb, okb)
		}
	}
	c := mustNetwork(t, DefaultWideArea(30, 8))
	same := 0
	for tick := uint64(0); tick < 50; tick++ {
		ra, _ := a.Sample(1, 2, tick)
		rc, _ := c.Sample(1, 2, tick)
		if ra == rc {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds matched %d/50 samples", same)
	}
}

func TestSampleOrderIndependence(t *testing.T) {
	n := mustNetwork(t, DefaultWideArea(30, 7))
	// Reading samples in any order must not change their values.
	r1, _ := n.Sample(3, 4, 100)
	_, _ = n.Sample(9, 2, 55)
	_, _ = n.Sample(3, 4, 99)
	r2, _ := n.Sample(3, 4, 100)
	if r1 != r2 {
		t.Fatalf("sample changed between reads: %v vs %v", r1, r2)
	}
}

func TestBaseRTTSymmetricAndPositive(t *testing.T) {
	n := mustNetwork(t, DefaultWideArea(40, 3))
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			rtt := n.BaseRTT(i, j, 0)
			if i == j {
				if rtt != 0 {
					t.Fatalf("self RTT = %v", rtt)
				}
				continue
			}
			if rtt <= 0 {
				t.Fatalf("BaseRTT(%d,%d) = %v", i, j, rtt)
			}
			if rev := n.BaseRTT(j, i, 0); rev != rtt {
				t.Fatalf("asymmetric base RTT: %v vs %v", rtt, rev)
			}
		}
	}
}

func TestIntraRegionFasterThanInterRegion(t *testing.T) {
	n := mustNetwork(t, DefaultWideArea(40, 3))
	// Node 0 and node 4 share region 0 (round-robin, 4 regions);
	// node 0 and node 3 are us-west vs china.
	intra := n.BaseRTT(0, 4, 0)
	inter := n.BaseRTT(0, 3, 0)
	if intra >= inter {
		t.Fatalf("intra-region %v >= inter-region %v", intra, inter)
	}
	if inter < 100 {
		t.Fatalf("us-west to china base = %v ms, want intercontinental scale", inter)
	}
}

func TestRegionAssignmentRoundRobin(t *testing.T) {
	n := mustNetwork(t, DefaultWideArea(9, 1))
	if n.Region(0) != "us-west" || n.Region(1) != "us-east" || n.Region(2) != "europe" || n.Region(3) != "china" {
		t.Fatalf("regions: %s %s %s %s", n.Region(0), n.Region(1), n.Region(2), n.Region(3))
	}
	if n.Region(4) != "us-west" {
		t.Fatalf("round robin broken: node 4 in %s", n.Region(4))
	}
	if n.RegionIndex(5) != 1 {
		t.Fatalf("RegionIndex(5) = %d", n.RegionIndex(5))
	}
	if n.Nodes() != 9 {
		t.Fatalf("Nodes = %d", n.Nodes())
	}
}

// Calibration against the paper's Figure 2: roughly 0.4% of samples
// exceed one second, and the common case stays far below.
func TestSpikeCalibration(t *testing.T) {
	n := mustNetwork(t, DefaultWideArea(20, 5))
	hist, err := stats.NewHistogram(stats.Fig2Bounds())
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	var total, lost int
	for tick := uint64(0); tick < 500; tick++ {
		for i := 0; i < n.Nodes(); i++ {
			for j := 0; j < n.Nodes(); j++ {
				if i == j {
					continue
				}
				total++
				rtt, ok := n.Sample(i, j, tick)
				if !ok {
					lost++
					continue
				}
				hist.Observe(rtt)
			}
		}
	}
	frac := hist.FractionAtOrAbove(1000)
	if frac < 0.002 || frac > 0.010 {
		t.Fatalf("fraction >= 1 s = %.4f, want ~0.004 (Figure 2)", frac)
	}
	lossRate := float64(lost) / float64(total)
	if lossRate < 0.0005 || lossRate > 0.01 {
		t.Fatalf("loss rate = %.4f", lossRate)
	}
	// The bulk of the distribution must sit in the sub-second buckets.
	if below := 1 - frac; below < 0.98 {
		t.Fatalf("only %.4f of samples below 1 s", below)
	}
}

// Per-link structure from Figure 3: a long tail exists on individual
// links, spread over time rather than clustered.
func TestPerLinkHeavyTailSpreadOverTime(t *testing.T) {
	n := mustNetwork(t, DefaultWideArea(20, 9))
	const ticks = 20000
	var spikes []uint64
	var values []float64
	for tick := uint64(0); tick < ticks; tick++ {
		rtt, ok := n.Sample(0, 3, tick)
		if !ok {
			continue
		}
		values = append(values, rtt)
		if rtt >= 1000 {
			spikes = append(spikes, tick)
		}
	}
	med, err := stats.Median(values)
	if err != nil {
		t.Fatalf("Median: %v", err)
	}
	maxV, err := stats.Percentile(values, 100)
	if err != nil {
		t.Fatalf("Percentile: %v", err)
	}
	if maxV < 10*med {
		t.Fatalf("max %v not orders of magnitude above median %v", maxV, med)
	}
	if len(spikes) < 10 {
		t.Fatalf("only %d spikes in %d samples", len(spikes), ticks)
	}
	// Spread over time: spikes must appear in both halves of the trace.
	firstHalf, secondHalf := 0, 0
	for _, s := range spikes {
		if s < ticks/2 {
			firstHalf++
		} else {
			secondHalf++
		}
	}
	if firstHalf == 0 || secondHalf == 0 {
		t.Fatalf("spikes clustered: %d in first half, %d in second", firstHalf, secondHalf)
	}
}

func TestStaticModeNoiseless(t *testing.T) {
	cfg := DefaultWideArea(10, 2)
	cfg.Static = true
	cfg.LossProb = 0.5 // must be ignored in static mode
	n := mustNetwork(t, cfg)
	base := n.BaseRTT(0, 1, 0)
	for tick := uint64(0); tick < 100; tick++ {
		rtt, ok := n.Sample(0, 1, tick)
		if !ok {
			t.Fatal("static mode lost a sample")
		}
		if rtt != base {
			t.Fatalf("static sample %v != base %v", rtt, base)
		}
	}
}

func TestLowLatencyClusterProfile(t *testing.T) {
	n := mustNetwork(t, LowLatencyCluster(3, 4))
	var values []float64
	for tick := uint64(0); tick < 5000; tick++ {
		rtt, ok := n.Sample(0, 1, tick)
		if !ok {
			t.Fatal("cluster profile lost a sample")
		}
		values = append(values, rtt)
	}
	med, err := stats.Median(values)
	if err != nil {
		t.Fatalf("Median: %v", err)
	}
	if med < 0.3 || med > 1.5 {
		t.Fatalf("cluster median = %v ms, want sub-1.5ms (Section IV-B)", med)
	}
	// "a tail of 5% of the observations above 1.2ms"
	p94, err := stats.Percentile(values, 94)
	if err != nil {
		t.Fatalf("Percentile: %v", err)
	}
	tail := 0
	for _, v := range values {
		if v > 1.2 {
			tail++
		}
	}
	tailFrac := float64(tail) / float64(len(values))
	if tailFrac < 0.01 || tailFrac > 0.25 {
		t.Fatalf("tail fraction above 1.2 ms = %.3f, want a visible minority", tailFrac)
	}
	_ = p94
}

func TestRouteChangeShiftsBase(t *testing.T) {
	cfg := DefaultWideArea(8, 6)
	cfg.RouteChanges = []RouteChange{{AtTick: 1000, RegionA: 0, RegionB: 2, Factor: 2}}
	n := mustNetwork(t, cfg)
	// Node 0 is us-west, node 2 is europe.
	before := n.BaseRTT(0, 2, 999)
	after := n.BaseRTT(0, 2, 1000)
	if math.Abs(after-2*before) > 1e-9 {
		t.Fatalf("route change: before %v, after %v, want doubled", before, after)
	}
	// Unaffected pair (us-west to us-east).
	b1, a1 := n.BaseRTT(0, 1, 999), n.BaseRTT(0, 1, 1000)
	if b1 != a1 {
		t.Fatalf("unaffected pair changed: %v vs %v", b1, a1)
	}
}

func TestRegionalDriftMovesBase(t *testing.T) {
	cfg := DefaultWideArea(8, 6)
	cfg.DriftPerHour = []Drift{{DX: 10, DY: 0}, {}, {}, {}}
	n := mustNetwork(t, cfg)
	// us-west drifts toward us-east at 10 ms/hour along x.
	start := n.BaseRTT(0, 1, 0)
	after3h := n.BaseRTT(0, 1, 3*3600)
	if math.Abs(start-after3h) < 5 {
		t.Fatalf("3 h of drift changed base by only %v ms", math.Abs(start-after3h))
	}
	// Intra-region pair (both us-west) drifts together: unchanged.
	intraStart := n.BaseRTT(0, 4, 0)
	intraAfter := n.BaseRTT(0, 4, 3*3600)
	if math.Abs(intraStart-intraAfter) > 1e-6 {
		t.Fatalf("co-drifting pair changed: %v vs %v", intraStart, intraAfter)
	}
}

func TestTriangleViolationsExist(t *testing.T) {
	n := mustNetwork(t, DefaultWideArea(60, 11))
	violations := 0
	checked := 0
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			for k := j + 1; k < 20; k++ {
				checked++
				ij := n.BaseRTT(i, j, 0)
				jk := n.BaseRTT(j, k, 0)
				ik := n.BaseRTT(i, k, 0)
				if ik > ij+jk {
					violations++
				}
			}
		}
	}
	if violations == 0 {
		t.Fatalf("no triangle violations in %d triples; TIV term inactive", checked)
	}
}

func BenchmarkSample(b *testing.B) {
	n, err := New(DefaultWideArea(100, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Sample(i%100, (i+1)%100, uint64(i))
	}
}
