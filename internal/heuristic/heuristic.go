// Package heuristic implements the paper's application-update policies
// (Section V-B): the rules that decide when the application-level
// coordinate c_a should follow the continuously evolving system-level
// coordinate c_s, and what value it should take.
//
// Six policies are provided:
//
//   - Direct: c_a = c_s on every observation (the "Raw" rows in the
//     paper's figures — no application-level suppression at all).
//   - System: update when the per-observation system movement
//     ||c_s(t) - c_s(t-1)|| exceeds a threshold.
//   - Application: update when the accumulated drift ||c_a - c_s||
//     exceeds a threshold.
//   - Relative: two-window change detection; update when the window
//     centroid shift, relative to the distance to the nearest known
//     neighbor, exceeds a threshold. Publishes the current window's
//     centroid.
//   - Energy: two-window change detection with the Szekely-Rizzo energy
//     statistic. Publishes the current window's centroid. This is the
//     configuration the paper deploys on PlanetLab (window 32, tau 8).
//   - ApplicationCentroid: the Section V-G hybrid — Application's
//     threshold rule but publishing the centroid of recent system
//     coordinates. Shows that the *when* matters, not just the *what*.
//
// Policies are not safe for concurrent use; each node owns one.
package heuristic

import (
	"errors"
	"fmt"

	"netcoord/internal/coord"
	"netcoord/internal/vec"
	"netcoord/internal/window"
)

// Paper defaults for the window-based policies (Sections V-D, VI).
const (
	// DefaultWindow is the window size used on PlanetLab.
	DefaultWindow = 32
	// DefaultEnergyTau is the energy threshold used on PlanetLab.
	DefaultEnergyTau = 8.0
	// DefaultRelativeEpsilon is the most conservative RELATIVE threshold
	// that still grants a stability increase (Figure 8).
	DefaultRelativeEpsilon = 0.3
)

// ErrDimension is returned when an observation's dimension does not match
// the policy's.
var ErrDimension = errors.New("heuristic: dimension mismatch")

// Observation carries one system-coordinate update into a policy.
type Observation struct {
	// Sys is the node's system-level coordinate after the latest Vivaldi
	// update.
	Sys coord.Coordinate
	// Neighbor is the coordinate of the node's nearest known neighbor
	// (by filtered latency); only the RELATIVE policy consumes it.
	Neighbor coord.Coordinate
	// HasNeighbor is false until the node has learned at least one
	// neighbor coordinate.
	HasNeighbor bool
}

// Policy decides when the application-level coordinate changes.
//
// Policies maintain their state in preallocated buffers: the steady-state
// Observe path of each of the paper's six policies performs zero heap
// allocations, because it runs once per latency observation of every
// node in the simulator (locked in by TestObserveSteadyStateZeroAllocs).
// The RankSum extension baseline is the exception: its detector projects
// both windows per observation and is only used by the extension
// experiment, not by any deployed configuration.
type Policy interface {
	// Observe feeds one system-coordinate update and reports the
	// resulting application coordinate and whether it changed now. The
	// returned coordinate is a read-only view of internal state, valid
	// until the next Observe or Reset call; callers that retain it
	// across observations must Clone it.
	Observe(obs Observation) (app coord.Coordinate, changed bool, err error)
	// App returns an independent copy of the current application-level
	// coordinate.
	App() coord.Coordinate
	// AppRef returns the current application-level coordinate without
	// copying. Like Observe's return, it is a read-only view valid until
	// the next Observe or Reset.
	AppRef() coord.Coordinate
	// Name identifies the policy in experiment output.
	Name() string
	// Reset returns the policy to its initial state.
	Reset()
}

// base carries the application coordinate and first-observation handling
// shared by all policies: every policy adopts the very first system
// coordinate it sees (there is no meaningful prior value to preserve).
type base struct {
	app    coord.Coordinate
	primed bool
	dim    int
}

func (b *base) App() coord.Coordinate { return b.app.Clone() }

func (b *base) AppRef() coord.Coordinate { return b.app }

// setApp overwrites the application coordinate in place, reusing its
// preallocated vector.
func (b *base) setApp(c coord.Coordinate) { b.app.CopyFrom(c) }

// prime returns true (and adopts sys) on the first observation.
func (b *base) prime(sys coord.Coordinate) (bool, error) {
	if err := sys.Validate(b.dim); err != nil {
		return false, fmt.Errorf("%w: %v", ErrDimension, err)
	}
	if b.primed {
		return false, nil
	}
	b.app.CopyFrom(sys)
	b.primed = true
	return true, nil
}

func (b *base) reset(dim int) {
	b.app = coord.Origin(dim)
	b.primed = false
}

// --- Direct ----------------------------------------------------------------

// Direct publishes every system coordinate unmodified.
type Direct struct {
	base
}

// NewDirect builds the pass-through policy for coordinates of the given
// dimension.
func NewDirect(dim int) (*Direct, error) {
	if dim < 1 {
		return nil, fmt.Errorf("heuristic: dimension %d, want >= 1", dim)
	}
	return &Direct{base: base{app: coord.Origin(dim), dim: dim}}, nil
}

// Observe implements Policy.
func (d *Direct) Observe(obs Observation) (coord.Coordinate, bool, error) {
	if err := obs.Sys.Validate(d.dim); err != nil {
		return d.app, false, fmt.Errorf("%w: %v", ErrDimension, err)
	}
	changed := !d.primed || !d.app.Equal(obs.Sys)
	d.setApp(obs.Sys)
	d.primed = true
	return d.app, changed, nil
}

// Name implements Policy.
func (*Direct) Name() string { return "direct" }

// Reset implements Policy.
func (d *Direct) Reset() { d.reset(d.dim) }

// --- System -----------------------------------------------------------------

// System updates c_a when one observation moves the system coordinate by
// more than Tau: ||c_s(t) - c_s(t-1)|| > tau. Its pathology, noted in the
// paper: a long run of sub-threshold steps accumulates unbounded error
// without ever updating.
type System struct {
	base
	tau     float64
	prev    coord.Coordinate
	prevSet bool
}

// NewSystem builds the SYSTEM policy.
func NewSystem(dim int, tau float64) (*System, error) {
	if dim < 1 {
		return nil, fmt.Errorf("heuristic: dimension %d, want >= 1", dim)
	}
	if tau <= 0 {
		return nil, fmt.Errorf("heuristic: system threshold %v, want > 0", tau)
	}
	return &System{
		base: base{app: coord.Origin(dim), dim: dim},
		tau:  tau,
		prev: coord.Origin(dim),
	}, nil
}

// Observe implements Policy.
func (s *System) Observe(obs Observation) (coord.Coordinate, bool, error) {
	first, err := s.prime(obs.Sys)
	if err != nil {
		return s.app, false, err
	}
	changed := first
	if !first {
		moved, err := obs.Sys.DisplacementFrom(s.prev)
		if err != nil {
			s.rememberPrev(obs.Sys)
			return s.app, false, fmt.Errorf("system policy: %w", err)
		}
		if moved > s.tau {
			s.setApp(obs.Sys)
			changed = true
		}
	}
	s.rememberPrev(obs.Sys)
	return s.app, changed, nil
}

// rememberPrev records the latest system coordinate in the preallocated
// previous-step buffer.
func (s *System) rememberPrev(sys coord.Coordinate) {
	s.prev.CopyFrom(sys)
	s.prevSet = true
}

// Name implements Policy.
func (*System) Name() string { return "system" }

// Reset implements Policy.
func (s *System) Reset() {
	s.reset(s.dim)
	s.prevSet = false
}

// --- Application -------------------------------------------------------------

// Application updates c_a when it has drifted more than Tau from the
// system coordinate: ||c_a - c_s|| > tau. Catches slow drift (unlike
// System) but permits oscillation beneath the threshold.
type Application struct {
	base
	tau float64
}

// NewApplication builds the APPLICATION policy.
func NewApplication(dim int, tau float64) (*Application, error) {
	if dim < 1 {
		return nil, fmt.Errorf("heuristic: dimension %d, want >= 1", dim)
	}
	if tau <= 0 {
		return nil, fmt.Errorf("heuristic: application threshold %v, want > 0", tau)
	}
	return &Application{base: base{app: coord.Origin(dim), dim: dim}, tau: tau}, nil
}

// Observe implements Policy.
func (a *Application) Observe(obs Observation) (coord.Coordinate, bool, error) {
	first, err := a.prime(obs.Sys)
	if err != nil {
		return a.app, false, err
	}
	if first {
		return a.app, true, nil
	}
	drift, err := a.app.DisplacementFrom(obs.Sys)
	if err != nil {
		return a.app, false, fmt.Errorf("application policy: %w", err)
	}
	if drift > a.tau {
		a.setApp(obs.Sys)
		return a.app, true, nil
	}
	return a.app, false, nil
}

// Name implements Policy.
func (*Application) Name() string { return "application" }

// Reset implements Policy.
func (a *Application) Reset() { a.reset(a.dim) }

// --- window-based machinery ---------------------------------------------------

// windowed embeds the two-window pair plus a mirror ring of full
// coordinates (the pair stores only the Euclidean vectors; the mirror
// preserves heights so the published centroid is a complete coordinate).
// Mirror slots and the centroid output buffer are preallocated so the
// per-observation path allocates nothing.
type windowed struct {
	base
	pair     *window.Pair
	mirror   []coord.Coordinate
	mhead    int
	mlen     int
	centroid coord.Coordinate // reusable currentCentroid output
}

func newWindowed(dim, k int) (windowed, error) {
	p, err := window.NewPair(k, dim)
	if err != nil {
		return windowed{}, err
	}
	w := windowed{
		base:     base{app: coord.Origin(dim), dim: dim},
		pair:     p,
		mirror:   make([]coord.Coordinate, k),
		centroid: coord.Origin(dim),
	}
	for i := range w.mirror {
		w.mirror[i] = coord.Origin(dim)
	}
	return w, nil
}

func (w *windowed) push(sys coord.Coordinate) error {
	if err := w.pair.Append(sys.Vec); err != nil {
		return err
	}
	k := len(w.mirror)
	if w.mlen < k {
		w.mirror[w.mlen].CopyFrom(sys)
		w.mlen++
		return nil
	}
	w.mirror[w.mhead].CopyFrom(sys)
	w.mhead = (w.mhead + 1) % k
	return nil
}

// centroidInto computes the centroid of the first n ring slots (arrival
// order, oldest at head) into dst without allocating. dst must be
// pre-sized to the ring's dimension.
func centroidInto(dst *coord.Coordinate, ring []coord.Coordinate, head, n int) error {
	if n == 0 {
		return errors.New("heuristic: centroid of empty window")
	}
	for i := range dst.Vec {
		dst.Vec[i] = 0
	}
	var h float64
	k := len(ring)
	for i := 0; i < n; i++ {
		m := ring[(head+i)%k]
		for j := range dst.Vec {
			dst.Vec[j] += m.Vec[j]
		}
		h += m.Height
	}
	dst.Vec.ScaleInPlace(1 / float64(n))
	dst.Height = h / float64(n)
	return nil
}

// currentCentroid computes the centroid of the mirrored current window
// into the reusable output buffer. The result aliases internal state and
// is valid until the next currentCentroid call; callers publish it with
// setApp (which copies).
func (w *windowed) currentCentroid() (coord.Coordinate, error) {
	if err := centroidInto(&w.centroid, w.mirror, w.mhead, w.mlen); err != nil {
		return coord.Coordinate{}, err
	}
	return w.centroid, nil
}

func (w *windowed) resetWindows() {
	w.pair.Reset()
	w.mhead, w.mlen = 0, 0
}

// --- Relative --------------------------------------------------------------

// Relative is the first window-based policy: it fires when the window
// centroid shift, normalized by the distance from the start centroid to
// the nearest known neighbor, exceeds Epsilon; it then publishes C(Wc)
// and restarts both windows.
type Relative struct {
	windowed
	det *window.RelativeDetector
}

// NewRelative builds the RELATIVE policy with window size k and threshold
// epsilon.
func NewRelative(dim, k int, epsilon float64) (*Relative, error) {
	w, err := newWindowed(dim, k)
	if err != nil {
		return nil, err
	}
	det, err := window.NewRelativeDetector(epsilon)
	if err != nil {
		return nil, err
	}
	return &Relative{windowed: w, det: det}, nil
}

// Observe implements Policy.
func (r *Relative) Observe(obs Observation) (coord.Coordinate, bool, error) {
	first, err := r.prime(obs.Sys)
	if err != nil {
		return r.app, false, err
	}
	if err := r.push(obs.Sys); err != nil {
		return r.app, false, fmt.Errorf("relative policy: %w", err)
	}
	if first {
		return r.app, true, nil
	}
	var neighborVec vec.Vector
	if obs.HasNeighbor {
		neighborVec = obs.Neighbor.Vec
	}
	fired, err := r.det.DivergedFrom(r.pair, neighborVec, obs.HasNeighbor)
	if err != nil {
		return r.app, false, fmt.Errorf("relative policy: %w", err)
	}
	if !fired {
		return r.app, false, nil
	}
	centroid, err := r.currentCentroid()
	if err != nil {
		return r.app, false, fmt.Errorf("relative policy: %w", err)
	}
	r.setApp(centroid)
	r.resetWindows()
	return r.app, true, nil
}

// Name implements Policy.
func (*Relative) Name() string { return "relative" }

// Reset implements Policy.
func (r *Relative) Reset() {
	r.reset(r.dim)
	r.resetWindows()
}

// --- Energy ---------------------------------------------------------------

// Energy fires when the energy statistic between the start and current
// windows exceeds Tau, publishing C(Wc). The paper's deployed
// configuration.
type Energy struct {
	windowed
	det *window.EnergyDetector
}

// NewEnergy builds the ENERGY policy with window size k and threshold
// tau.
func NewEnergy(dim, k int, tau float64) (*Energy, error) {
	w, err := newWindowed(dim, k)
	if err != nil {
		return nil, err
	}
	det, err := window.NewEnergyDetector(tau)
	if err != nil {
		return nil, err
	}
	return &Energy{windowed: w, det: det}, nil
}

// Observe implements Policy.
func (e *Energy) Observe(obs Observation) (coord.Coordinate, bool, error) {
	first, err := e.prime(obs.Sys)
	if err != nil {
		return e.app, false, err
	}
	if err := e.push(obs.Sys); err != nil {
		return e.app, false, fmt.Errorf("energy policy: %w", err)
	}
	if first {
		return e.app, true, nil
	}
	fired, err := e.det.Diverged(e.pair)
	if err != nil {
		return e.app, false, fmt.Errorf("energy policy: %w", err)
	}
	if !fired {
		return e.app, false, nil
	}
	centroid, err := e.currentCentroid()
	if err != nil {
		return e.app, false, fmt.Errorf("energy policy: %w", err)
	}
	e.setApp(centroid)
	e.resetWindows()
	return e.app, true, nil
}

// Name implements Policy.
func (*Energy) Name() string { return "energy" }

// Reset implements Policy.
func (e *Energy) Reset() {
	e.reset(e.dim)
	e.resetWindows()
}

// --- Application/Centroid ----------------------------------------------------

// ApplicationCentroid is the Section V-G hybrid: Application's trigger
// (||c_a - c_s|| > tau) publishing the centroid of the last K system
// coordinates. The paper shows it is more stable than plain Application
// but, lacking a window-based trigger, remains fragile to its threshold.
type ApplicationCentroid struct {
	base
	tau      float64
	ring     []coord.Coordinate
	head     int
	n        int
	centroid coord.Coordinate // reusable centroid output
}

// NewApplicationCentroid builds the APPLICATION/CENTROID policy.
func NewApplicationCentroid(dim, k int, tau float64) (*ApplicationCentroid, error) {
	if dim < 1 {
		return nil, fmt.Errorf("heuristic: dimension %d, want >= 1", dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("heuristic: window %d, want >= 1", k)
	}
	if tau <= 0 {
		return nil, fmt.Errorf("heuristic: threshold %v, want > 0", tau)
	}
	ac := &ApplicationCentroid{
		base:     base{app: coord.Origin(dim), dim: dim},
		tau:      tau,
		ring:     make([]coord.Coordinate, k),
		centroid: coord.Origin(dim),
	}
	for i := range ac.ring {
		ac.ring[i] = coord.Origin(dim)
	}
	return ac, nil
}

// Observe implements Policy.
func (a *ApplicationCentroid) Observe(obs Observation) (coord.Coordinate, bool, error) {
	first, err := a.prime(obs.Sys)
	if err != nil {
		return a.app, false, err
	}
	if a.n < len(a.ring) {
		a.ring[a.n].CopyFrom(obs.Sys)
		a.n++
	} else {
		a.ring[a.head].CopyFrom(obs.Sys)
		a.head = (a.head + 1) % len(a.ring)
	}
	if first {
		return a.app, true, nil
	}
	drift, err := a.app.DisplacementFrom(obs.Sys)
	if err != nil {
		return a.app, false, fmt.Errorf("application/centroid policy: %w", err)
	}
	if drift <= a.tau {
		return a.app, false, nil
	}
	if err := centroidInto(&a.centroid, a.ring, a.head, a.n); err != nil {
		return a.app, false, fmt.Errorf("application/centroid policy: %w", err)
	}
	a.setApp(a.centroid)
	return a.app, true, nil
}

// Name implements Policy.
func (*ApplicationCentroid) Name() string { return "application-centroid" }

// Reset implements Policy.
func (a *ApplicationCentroid) Reset() {
	a.reset(a.dim)
	a.head, a.n = 0, 0
}

// Interface conformance checks.
var (
	_ Policy = (*Direct)(nil)
	_ Policy = (*System)(nil)
	_ Policy = (*Application)(nil)
	_ Policy = (*Relative)(nil)
	_ Policy = (*Energy)(nil)
	_ Policy = (*ApplicationCentroid)(nil)
)
