package heuristic

import (
	"math"
	"testing"

	"netcoord/internal/coord"
	"netcoord/internal/xrand"
)

func TestRankSumValidation(t *testing.T) {
	if _, err := NewRankSum(3, 0, 1.96); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewRankSum(3, 32, 0); err == nil {
		t.Fatal("z=0 accepted")
	}
	if _, err := NewRankSum(0, 32, 1.96); err == nil {
		t.Fatal("dim=0 accepted")
	}
}

func TestRankSumPrimesAndNames(t *testing.T) {
	p, err := NewRankSum(3, 8, DefaultRankSumZ)
	if err != nil {
		t.Fatalf("NewRankSum: %v", err)
	}
	if p.Name() != "ranksum" {
		t.Fatalf("Name = %q", p.Name())
	}
	first := coord.New(5, 5, 5)
	app, changed, err := p.Observe(Observation{Sys: first})
	if err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if !changed || !app.Equal(first) {
		t.Fatalf("prime failed: changed=%v app=%v", changed, app)
	}
}

func TestRankSumStationaryQuiet(t *testing.T) {
	p, err := NewRankSum(3, 32, 3) // conservative threshold
	if err != nil {
		t.Fatalf("NewRankSum: %v", err)
	}
	rng := xrand.NewStream(31)
	updates := observeAll(t, p, noisyWalk(rng, 600, 50, 50, 50, 0.5))
	if updates > 2 {
		t.Fatalf("updates = %d on stationary stream", updates)
	}
}

func TestRankSumTracksGradualDrift(t *testing.T) {
	p, err := NewRankSum(3, 16, DefaultRankSumZ)
	if err != nil {
		t.Fatalf("NewRankSum: %v", err)
	}
	rng := xrand.NewStream(32)
	stream := noisyWalk(rng, 32, 50, 50, 50, 0.3)
	for i := 0; i < 150; i++ {
		x := 50 + 30*float64(i)/149
		stream = append(stream, coord.New(x+rng.Normal(0, 0.3), 50+rng.Normal(0, 0.3), 50+rng.Normal(0, 0.3)))
	}
	stream = append(stream, noisyWalk(rng, 64, 80, 50, 50, 0.3)...)
	updates := observeAll(t, p, stream)
	if updates < 2 {
		t.Fatal("rank-sum missed a 30 ms radial drift")
	}
	if math.Abs(p.App().Vec[0]-80) > 6 {
		t.Fatalf("App x = %v, want near 80", p.App().Vec[0])
	}
}

func TestRankSumReset(t *testing.T) {
	p, err := NewRankSum(3, 8, DefaultRankSumZ)
	if err != nil {
		t.Fatalf("NewRankSum: %v", err)
	}
	if _, _, err := p.Observe(Observation{Sys: coord.New(9, 9, 9)}); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	p.Reset()
	if !p.App().Equal(coord.Origin(3)) {
		t.Fatalf("App after Reset = %v", p.App())
	}
}
