package heuristic

import (
	"fmt"

	"netcoord/internal/coord"
	"netcoord/internal/window"
)

// DefaultRankSumZ is the conventional 5% significance threshold for the
// rank-sum baseline policy.
const DefaultRankSumZ = 1.96

// RankSum is the one-dimensional baseline policy (an extension beyond
// the paper's four heuristics): the Kifer-style two-window scheme with a
// Wilcoxon rank-sum test over each point's distance from the start
// centroid. Structurally identical to ENERGY — same windows, same
// centroid publication — differing only in the statistical test, so the
// extension experiment isolates exactly the value of a genuinely
// multi-dimensional statistic.
type RankSum struct {
	windowed
	det *window.RankSumDetector
}

// NewRankSum builds the RANKSUM policy with window size k and |z|
// threshold z.
func NewRankSum(dim, k int, z float64) (*RankSum, error) {
	w, err := newWindowed(dim, k)
	if err != nil {
		return nil, err
	}
	det, err := window.NewRankSumDetector(z)
	if err != nil {
		return nil, err
	}
	return &RankSum{windowed: w, det: det}, nil
}

// Observe implements Policy.
func (r *RankSum) Observe(obs Observation) (coord.Coordinate, bool, error) {
	first, err := r.prime(obs.Sys)
	if err != nil {
		return r.app, false, err
	}
	if err := r.push(obs.Sys); err != nil {
		return r.app, false, fmt.Errorf("rank-sum policy: %w", err)
	}
	if first {
		return r.app, true, nil
	}
	fired, err := r.det.Diverged(r.pair)
	if err != nil {
		return r.app, false, fmt.Errorf("rank-sum policy: %w", err)
	}
	if !fired {
		return r.app, false, nil
	}
	centroid, err := r.currentCentroid()
	if err != nil {
		return r.app, false, fmt.Errorf("rank-sum policy: %w", err)
	}
	r.setApp(centroid)
	r.resetWindows()
	return r.app, true, nil
}

// Name implements Policy.
func (*RankSum) Name() string { return "ranksum" }

// Reset implements Policy.
func (r *RankSum) Reset() {
	r.reset(r.dim)
	r.resetWindows()
}

// Interface conformance.
var _ Policy = (*RankSum)(nil)
