package heuristic

import (
	"errors"
	"math"
	"testing"

	"netcoord/internal/coord"
	"netcoord/internal/xrand"
)

// observeAll feeds a series of system coordinates (no neighbor info) and
// returns the number of application updates.
func observeAll(t *testing.T, p Policy, sys []coord.Coordinate) int {
	t.Helper()
	updates := 0
	for _, c := range sys {
		_, changed, err := p.Observe(Observation{Sys: c})
		if err != nil {
			t.Fatalf("Observe: %v", err)
		}
		if changed {
			updates++
		}
	}
	return updates
}

// noisyWalk produces a stationary coordinate stream around a center.
func noisyWalk(rng *xrand.Stream, n int, cx, cy, cz, noise float64) []coord.Coordinate {
	out := make([]coord.Coordinate, n)
	for i := range out {
		out[i] = coord.New(cx+rng.Normal(0, noise), cy+rng.Normal(0, noise), cz+rng.Normal(0, noise))
	}
	return out
}

func TestConstructorsValidate(t *testing.T) {
	tests := []struct {
		name string
		fn   func() error
	}{
		{name: "direct dim", fn: func() error { _, err := NewDirect(0); return err }},
		{name: "system dim", fn: func() error { _, err := NewSystem(0, 1); return err }},
		{name: "system tau", fn: func() error { _, err := NewSystem(3, 0); return err }},
		{name: "application dim", fn: func() error { _, err := NewApplication(0, 1); return err }},
		{name: "application tau", fn: func() error { _, err := NewApplication(3, -1); return err }},
		{name: "relative k", fn: func() error { _, err := NewRelative(3, 0, 0.3); return err }},
		{name: "relative eps", fn: func() error { _, err := NewRelative(3, 32, 0); return err }},
		{name: "energy k", fn: func() error { _, err := NewEnergy(3, 0, 8); return err }},
		{name: "energy tau", fn: func() error { _, err := NewEnergy(3, 32, 0); return err }},
		{name: "centroid k", fn: func() error { _, err := NewApplicationCentroid(3, 0, 16); return err }},
		{name: "centroid tau", fn: func() error { _, err := NewApplicationCentroid(3, 32, 0); return err }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.fn() == nil {
				t.Fatal("invalid construction accepted")
			}
		})
	}
}

func TestAllPoliciesAdoptFirstObservation(t *testing.T) {
	first := coord.New(10, 20, 30)
	policies := buildAll(t)
	for _, p := range policies {
		app, changed, err := p.Observe(Observation{Sys: first})
		if err != nil {
			t.Fatalf("%s: Observe: %v", p.Name(), err)
		}
		if !changed {
			t.Errorf("%s: first observation did not change app coordinate", p.Name())
		}
		if !app.Equal(first) {
			t.Errorf("%s: app = %v, want first sys %v", p.Name(), app, first)
		}
	}
}

func buildAll(t *testing.T) []Policy {
	t.Helper()
	direct, err := NewDirect(3)
	if err != nil {
		t.Fatalf("NewDirect: %v", err)
	}
	system, err := NewSystem(3, 5)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	application, err := NewApplication(3, 5)
	if err != nil {
		t.Fatalf("NewApplication: %v", err)
	}
	relative, err := NewRelative(3, 8, 0.3)
	if err != nil {
		t.Fatalf("NewRelative: %v", err)
	}
	energy, err := NewEnergy(3, 8, 8)
	if err != nil {
		t.Fatalf("NewEnergy: %v", err)
	}
	centroid, err := NewApplicationCentroid(3, 8, 5)
	if err != nil {
		t.Fatalf("NewApplicationCentroid: %v", err)
	}
	return []Policy{direct, system, application, relative, energy, centroid}
}

func TestAllPoliciesRejectWrongDimension(t *testing.T) {
	for _, p := range buildAll(t) {
		if _, _, err := p.Observe(Observation{Sys: coord.New(1, 2)}); !errors.Is(err, ErrDimension) {
			t.Errorf("%s: error = %v, want ErrDimension", p.Name(), err)
		}
	}
}

func TestAllPoliciesResetToOrigin(t *testing.T) {
	for _, p := range buildAll(t) {
		if _, _, err := p.Observe(Observation{Sys: coord.New(9, 9, 9)}); err != nil {
			t.Fatalf("%s: Observe: %v", p.Name(), err)
		}
		p.Reset()
		if !p.App().Equal(coord.Origin(3)) {
			t.Errorf("%s: App after Reset = %v", p.Name(), p.App())
		}
		// After reset, the next observation is a "first" again.
		_, changed, err := p.Observe(Observation{Sys: coord.New(1, 1, 1)})
		if err != nil {
			t.Fatalf("%s: Observe after Reset: %v", p.Name(), err)
		}
		if !changed {
			t.Errorf("%s: post-Reset first observation did not prime", p.Name())
		}
	}
}

func TestDirectFollowsEveryChange(t *testing.T) {
	p, err := NewDirect(3)
	if err != nil {
		t.Fatalf("NewDirect: %v", err)
	}
	updates := observeAll(t, p, []coord.Coordinate{
		coord.New(1, 0, 0),
		coord.New(2, 0, 0),
		coord.New(2, 0, 0), // identical: no change
		coord.New(3, 0, 0),
	})
	if updates != 3 {
		t.Fatalf("updates = %d, want 3", updates)
	}
	if !p.App().Equal(coord.New(3, 0, 0)) {
		t.Fatalf("App = %v", p.App())
	}
}

func TestSystemThreshold(t *testing.T) {
	p, err := NewSystem(3, 5)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	// Jump of 10 (fires), then small steps of 1 (never fire).
	stream := []coord.Coordinate{
		coord.New(0, 0, 0),
		coord.New(10, 0, 0), // step 10 > 5: update
		coord.New(11, 0, 0), // step 1: no
		coord.New(12, 0, 0), // step 1: no
	}
	updates := observeAll(t, p, stream)
	if updates != 2 { // first + the jump
		t.Fatalf("updates = %d, want 2", updates)
	}
	if !p.App().Equal(coord.New(10, 0, 0)) {
		t.Fatalf("App = %v, want the jump target", p.App())
	}
}

func TestSystemPathologyUnboundedDrift(t *testing.T) {
	// Documents the paper's criticism: many sub-threshold steps drift
	// arbitrarily far without an update.
	p, err := NewSystem(3, 5)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	stream := make([]coord.Coordinate, 101)
	for i := range stream {
		stream[i] = coord.New(float64(i*4), 0, 0) // steps of 4 < 5
	}
	updates := observeAll(t, p, stream)
	if updates != 1 { // only the priming observation
		t.Fatalf("updates = %d, want 1", updates)
	}
	drift, err := p.App().DisplacementFrom(stream[len(stream)-1])
	if err != nil {
		t.Fatalf("DisplacementFrom: %v", err)
	}
	if drift < 300 {
		t.Fatalf("drift = %v; the pathology should accumulate hundreds of ms", drift)
	}
}

func TestApplicationBoundsDrift(t *testing.T) {
	p, err := NewApplication(3, 5)
	if err != nil {
		t.Fatalf("NewApplication: %v", err)
	}
	stream := make([]coord.Coordinate, 101)
	for i := range stream {
		stream[i] = coord.New(float64(i*4), 0, 0)
	}
	observeAll(t, p, stream)
	// Unlike SYSTEM, the app coordinate tracks within tau + one step.
	drift, err := p.App().DisplacementFrom(stream[len(stream)-1])
	if err != nil {
		t.Fatalf("DisplacementFrom: %v", err)
	}
	if drift > 9 {
		t.Fatalf("drift = %v, want <= tau + step", drift)
	}
}

func TestApplicationOscillationBelowTauIgnored(t *testing.T) {
	p, err := NewApplication(3, 5)
	if err != nil {
		t.Fatalf("NewApplication: %v", err)
	}
	stream := []coord.Coordinate{coord.New(0, 0, 0)}
	for i := 0; i < 50; i++ {
		stream = append(stream, coord.New(3, 0, 0), coord.New(0, 0, 0))
	}
	updates := observeAll(t, p, stream)
	if updates != 1 {
		t.Fatalf("updates = %d, want 1 (oscillation below tau)", updates)
	}
}

func TestRelativeStationaryQuiet(t *testing.T) {
	p, err := NewRelative(3, 16, 0.3)
	if err != nil {
		t.Fatalf("NewRelative: %v", err)
	}
	rng := xrand.NewStream(1)
	neighbor := coord.New(80, 50, 50) // 30 ms locale
	updates := 0
	for _, c := range noisyWalk(rng, 400, 50, 50, 50, 0.5) {
		_, changed, err := p.Observe(Observation{Sys: c, Neighbor: neighbor, HasNeighbor: true})
		if err != nil {
			t.Fatalf("Observe: %v", err)
		}
		if changed {
			updates++
		}
	}
	if updates > 1 {
		t.Fatalf("updates = %d on a stationary stream, want only the prime", updates)
	}
}

func TestRelativeDetectsShiftAndPublishesCentroid(t *testing.T) {
	p, err := NewRelative(3, 16, 0.3)
	if err != nil {
		t.Fatalf("NewRelative: %v", err)
	}
	rng := xrand.NewStream(2)
	neighbor := coord.New(80, 50, 50)
	feed := func(cs []coord.Coordinate) int {
		n := 0
		for _, c := range cs {
			_, changed, err := p.Observe(Observation{Sys: c, Neighbor: neighbor, HasNeighbor: true})
			if err != nil {
				t.Fatalf("Observe: %v", err)
			}
			if changed {
				n++
			}
		}
		return n
	}
	feed(noisyWalk(rng, 32, 50, 50, 50, 0.3))
	// The coordinate drifts gradually from 50 to 70 (Vivaldi moves in
	// bounded steps), then stabilizes. Repeated detections must walk the
	// app coordinate to the new location.
	drift := make([]coord.Coordinate, 0, 100)
	for i := 0; i < 100; i++ {
		x := 50 + 20*float64(i)/99
		drift = append(drift, coord.New(x+rng.Normal(0, 0.3), 50+rng.Normal(0, 0.3), 50+rng.Normal(0, 0.3)))
	}
	updates := feed(drift)
	updates += feed(noisyWalk(rng, 64, 70, 50, 50, 0.3))
	if updates == 0 {
		t.Fatal("relative policy missed a clear shift")
	}
	// Published value is a centroid of recent coordinates near the new
	// location, not the raw latest sample.
	if math.Abs(p.App().Vec[0]-70) > 5 {
		t.Fatalf("App x = %v, want near 70", p.App().Vec[0])
	}
}

func TestRelativeAbruptJumpPublishesMixedCentroid(t *testing.T) {
	// Documents a property of the two-window scheme: an instantaneous
	// jump (impossible for a real Vivaldi stream, which moves in bounded
	// steps) yields one detection whose published centroid mixes pre-
	// and post-jump coordinates, landing between the two locations.
	p, err := NewRelative(3, 16, 0.3)
	if err != nil {
		t.Fatalf("NewRelative: %v", err)
	}
	rng := xrand.NewStream(20)
	neighbor := coord.New(80, 50, 50)
	stream := append(noisyWalk(rng, 32, 50, 50, 50, 0.3), noisyWalk(rng, 32, 70, 50, 50, 0.3)...)
	for _, c := range stream {
		if _, _, err := p.Observe(Observation{Sys: c, Neighbor: neighbor, HasNeighbor: true}); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	x := p.App().Vec[0]
	if x <= 50 || x >= 71 {
		t.Fatalf("App x = %v, want strictly between old (50) and new (70) locations", x)
	}
}

func TestRelativeWithoutNeighborNeverFires(t *testing.T) {
	p, err := NewRelative(3, 8, 0.3)
	if err != nil {
		t.Fatalf("NewRelative: %v", err)
	}
	rng := xrand.NewStream(3)
	updates := 0
	stream := append(noisyWalk(rng, 16, 0, 0, 0, 0.1), noisyWalk(rng, 16, 100, 0, 0, 0.1)...)
	for _, c := range stream {
		_, changed, err := p.Observe(Observation{Sys: c})
		if err != nil {
			t.Fatalf("Observe: %v", err)
		}
		if changed {
			updates++
		}
	}
	if updates != 1 {
		t.Fatalf("updates = %d without neighbor, want 1 (prime only)", updates)
	}
}

func TestEnergyStationaryQuiet(t *testing.T) {
	p, err := NewEnergy(3, 32, 8)
	if err != nil {
		t.Fatalf("NewEnergy: %v", err)
	}
	rng := xrand.NewStream(4)
	updates := observeAll(t, p, noisyWalk(rng, 500, 50, 50, 50, 0.5))
	if updates > 1 {
		t.Fatalf("updates = %d on stationary stream, want 1", updates)
	}
}

func TestEnergyDetectsShift(t *testing.T) {
	p, err := NewEnergy(3, 32, 8)
	if err != nil {
		t.Fatalf("NewEnergy: %v", err)
	}
	rng := xrand.NewStream(5)
	stream := noisyWalk(rng, 64, 50, 50, 50, 0.5)
	// Gradual drift 50 -> 90 over 200 observations, then stationary.
	for i := 0; i < 200; i++ {
		x := 50 + 40*float64(i)/199
		stream = append(stream, coord.New(x+rng.Normal(0, 0.5), 50+rng.Normal(0, 0.5), 50+rng.Normal(0, 0.5)))
	}
	stream = append(stream, noisyWalk(rng, 128, 90, 50, 50, 0.5)...)
	updates := observeAll(t, p, stream)
	if updates < 2 {
		t.Fatal("energy policy missed a 40 ms shift")
	}
	if math.Abs(p.App().Vec[0]-90) > 10 {
		t.Fatalf("App x = %v, want near 90", p.App().Vec[0])
	}
}

func TestEnergyWindowsResetAfterFiring(t *testing.T) {
	p, err := NewEnergy(3, 8, 4)
	if err != nil {
		t.Fatalf("NewEnergy: %v", err)
	}
	rng := xrand.NewStream(6)
	// Trigger one detection.
	stream := append(noisyWalk(rng, 16, 0, 0, 0, 0.2), noisyWalk(rng, 16, 50, 0, 0, 0.2)...)
	observeAll(t, p, stream)
	firstApp := p.App()
	// Stationary at the new location: after reset and refill, no
	// further updates should fire.
	updates := observeAll(t, p, noisyWalk(rng, 64, 50, 0, 0, 0.2))
	if updates != 0 {
		t.Fatalf("updates = %d after restabilizing, want 0", updates)
	}
	if !p.App().Equal(firstApp) {
		t.Fatal("app coordinate moved without a detection")
	}
}

func TestApplicationCentroidPublishesSmoothedValue(t *testing.T) {
	p, err := NewApplicationCentroid(3, 16, 5)
	if err != nil {
		t.Fatalf("NewApplicationCentroid: %v", err)
	}
	rng := xrand.NewStream(7)
	observeAll(t, p, noisyWalk(rng, 32, 0, 0, 0, 0.2))
	// Force a trigger with a big jump; published value is the window
	// centroid, which lags behind the raw jump target.
	if _, changed, err := p.Observe(Observation{Sys: coord.New(100, 0, 0)}); err != nil || !changed {
		t.Fatalf("jump not detected: changed=%v err=%v", changed, err)
	}
	x := p.App().Vec[0]
	if x < 1 || x > 50 {
		t.Fatalf("App x = %v, want a centroid between old cluster and jump", x)
	}
}

func TestPolicyNames(t *testing.T) {
	want := map[string]bool{
		"direct": true, "system": true, "application": true,
		"relative": true, "energy": true, "application-centroid": true,
	}
	for _, p := range buildAll(t) {
		if !want[p.Name()] {
			t.Errorf("unexpected policy name %q", p.Name())
		}
		delete(want, p.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing policies: %v", want)
	}
}

// The paper's core comparison in microcosm: on a noisy but stationary
// stream, the window-based policies must yield far fewer app updates than
// Direct while keeping the app coordinate accurate.
func TestWindowPoliciesStabilizeWithoutAccuracyLoss(t *testing.T) {
	rng := xrand.NewStream(8)
	stream := noisyWalk(rng, 2000, 50, 50, 50, 1.5)
	center := coord.New(50, 50, 50)

	energy, err := NewEnergy(3, 32, 8)
	if err != nil {
		t.Fatalf("NewEnergy: %v", err)
	}
	direct, err := NewDirect(3)
	if err != nil {
		t.Fatalf("NewDirect: %v", err)
	}
	energyUpdates := observeAll(t, energy, stream)
	directUpdates := observeAll(t, direct, stream)

	if energyUpdates*20 > directUpdates {
		t.Fatalf("energy updates %d vs direct %d: want >20x suppression", energyUpdates, directUpdates)
	}
	accuracy, err := energy.App().DisplacementFrom(center)
	if err != nil {
		t.Fatalf("DisplacementFrom: %v", err)
	}
	if accuracy > 3 {
		t.Fatalf("energy app coordinate off center by %v ms", accuracy)
	}
}

func BenchmarkEnergyObserve(b *testing.B) {
	p, err := NewEnergy(3, 32, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.NewStream(1)
	stream := make([]coord.Coordinate, 1024)
	for i := range stream {
		stream[i] = coord.New(rng.Normal(50, 1), rng.Normal(50, 1), rng.Normal(50, 1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Observe(Observation{Sys: stream[i%len(stream)]}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRelativeObserve(b *testing.B) {
	p, err := NewRelative(3, 32, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.NewStream(1)
	neighbor := coord.New(80, 50, 50)
	stream := make([]coord.Coordinate, 1024)
	for i := range stream {
		stream[i] = coord.New(rng.Normal(50, 1), rng.Normal(50, 1), rng.Normal(50, 1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Observe(Observation{Sys: stream[i%len(stream)], Neighbor: neighbor, HasNeighbor: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestObserveSteadyStateZeroAllocs(t *testing.T) {
	// Every policy's per-observation path must be allocation-free: it
	// runs once per latency sample of every simulated node, and the
	// simulator's zero-alloc Step guarantee depends on it. Fire events
	// included — centroids are computed into preallocated buffers.
	build := []struct {
		name string
		mk   func() (Policy, error)
	}{
		{"direct", func() (Policy, error) { return NewDirect(3) }},
		{"system", func() (Policy, error) { return NewSystem(3, 0.5) }},
		{"application", func() (Policy, error) { return NewApplication(3, 0.5) }},
		{"relative", func() (Policy, error) { return NewRelative(3, 8, 0.05) }},
		{"energy", func() (Policy, error) { return NewEnergy(3, 8, 0.1) }},
		{"application-centroid", func() (Policy, error) { return NewApplicationCentroid(3, 8, 0.5) }},
	}
	for _, tc := range build {
		t.Run(tc.name, func(t *testing.T) {
			p, err := tc.mk()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			rng := xrand.NewStream(7)
			stream := make([]coord.Coordinate, 512)
			for i := range stream {
				// A drifting cloud so window detectors fire repeatedly
				// during the measurement (thresholds above are tight).
				base := float64(i) * 0.3
				stream[i] = coord.New(base+rng.Normal(0, 1), rng.Normal(50, 1), rng.Normal(50, 1))
			}
			neighbor := coord.New(70, 55, 50)
			// Warm up: prime, fill windows, and trigger at least one fire
			// so every code path has allocated its buffers.
			for i := 0; i < 128; i++ {
				if _, _, err := p.Observe(Observation{Sys: stream[i%len(stream)], Neighbor: neighbor, HasNeighbor: true}); err != nil {
					t.Fatalf("warm-up observe: %v", err)
				}
			}
			i := 128
			allocs := testing.AllocsPerRun(300, func() {
				obs := Observation{Sys: stream[i%len(stream)], Neighbor: neighbor, HasNeighbor: true}
				if _, _, err := p.Observe(obs); err != nil {
					t.Fatalf("observe: %v", err)
				}
				i++
			})
			if allocs != 0 {
				t.Fatalf("steady-state Observe allocated %v per run", allocs)
			}
		})
	}
}
