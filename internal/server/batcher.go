package server

import (
	"sync"

	"netcoord"
)

// queryBatcher coalesces concurrent single-point kNN lookups into
// Registry.NearestBatch calls. The watch hub's resync path is its
// customer: a write storm damages many watchers at once, each of which
// recomputes its top-k on its own handler goroutine. Individually those
// recomputes each pay a full fan-out dispatch; coalesced, one batch
// dispatch answers a whole wavefront of watchers (shard-major, so every
// shard lock is taken once per round instead of once per watcher).
//
// The scheme is leader/follower: every caller enqueues its query, the
// first one in becomes the leader and drains rounds of pending queries
// through NearestBatch until none remain, delivering each answer on the
// waiter's channel. Followers just block on their channel. The leader's
// own query rides the first round, so it never parks behind work it
// is not contributing to.
//
// NearestBatch validates atomically — one malformed query would fail a
// whole round — so a failed round is re-run query-by-query through the
// single-shot Registry API, preserving per-caller error isolation at
// the cost of a slow path that only malformed input pays.
type queryBatcher struct {
	reg *netcoord.Registry

	mu      sync.Mutex
	pending []batchWaiter
	leading bool
}

type batchWaiter struct {
	query netcoord.NearestQuery
	done  chan batchAnswer
}

type batchAnswer struct {
	res []netcoord.Ranked
	err error
}

func newQueryBatcher(reg *netcoord.Registry) *queryBatcher {
	return &queryBatcher{reg: reg}
}

// nearest answers one query, riding a shared NearestBatch round when
// other callers are querying concurrently. Results are identical to
// the equivalent single-shot Registry call.
func (b *queryBatcher) nearest(q netcoord.NearestQuery) ([]netcoord.Ranked, error) {
	done := make(chan batchAnswer, 1)
	b.mu.Lock()
	b.pending = append(b.pending, batchWaiter{query: q, done: done})
	if b.leading {
		// A leader is draining; it will pick this query up in a later
		// round (it re-checks pending before stepping down).
		b.mu.Unlock()
		a := <-done
		return a.res, a.err
	}
	b.leading = true
	b.mu.Unlock()
	for {
		b.mu.Lock()
		round := b.pending
		b.pending = nil
		if len(round) == 0 {
			b.leading = false
			b.mu.Unlock()
			break
		}
		b.mu.Unlock()
		b.runRound(round)
	}
	// The leader's own waiter was part of the first round, so its
	// answer is already buffered.
	a := <-done
	return a.res, a.err
}

// runRound answers every waiter in one NearestBatch dispatch, falling
// back to per-query calls if the batch rejects (atomic validation: one
// malformed query must not fail its neighbors).
func (b *queryBatcher) runRound(round []batchWaiter) {
	queries := make([]netcoord.NearestQuery, len(round))
	for i := range round {
		queries[i] = round[i].query
	}
	results, err := b.reg.NearestBatch(queries)
	if err != nil {
		for i := range round {
			res, qerr := b.single(round[i].query)
			round[i].done <- batchAnswer{res: res, err: qerr}
		}
		return
	}
	for i := range round {
		round[i].done <- batchAnswer{res: results[i]}
	}
}

// single re-answers one query through the single-shot API so an error
// is attributed to the query that caused it.
func (b *queryBatcher) single(q netcoord.NearestQuery) ([]netcoord.Ranked, error) {
	switch {
	case q.HasRadius:
		return b.reg.WithinLimit(q.From, q.RadiusMillis, q.K)
	case q.Exclude != "":
		// Watch id-mode: From was resolved from Exclude's entry just
		// before enqueueing, so re-resolving through NearestTo matches
		// (the watch layer re-resolves on every recompute anyway).
		return b.reg.NearestTo(q.Exclude, q.K)
	default:
		return b.reg.Nearest(q.From, q.K)
	}
}
