// Package server is ncserve's HTTP serving stack: the query, mutation,
// snapshot, and stream (long-poll + SSE) handlers, extracted from the
// binary so every registry flavor shares one implementation.
//
// The stream surface — /snapshot, /changes, /watch — is written against
// netcoord.ChangeSource, not a concrete registry type. That seam is
// what makes replicas first-class serving tiers: a *FollowerRegistry
// relays its leader's stream in the leader's own sequence space, so a
// Server wrapped around a follower re-serves all three endpoints with
// sequence numbers (and snapshot pairs) identical to the leader's, and
// watcher/tail fan-out distributes across a replica tree instead of
// concentrating on the leader.
//
// Live distribution is multiplexed: one change-stream subscription
// feeds a WatchHub whose spatial damage map routes each mutation to the
// watchers it could actually affect, and a second subscription drives a
// single broadcast that wakes /changes long-pollers. N watchers cost
// one subscription plus O(damaged) recomputes per mutation, not N
// relevance checks; idle pollers cost nothing per request.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"netcoord"
	"netcoord/internal/telemetry"
)

// Config assembles a Server around a registry.
type Config struct {
	// Registry answers queries (Nearest, Estimate, ...) and applies
	// mutations. Every flavor embeds one: pass pr.Registry or
	// follower.Registry for the persistent and replica variants.
	Registry *netcoord.Registry
	// Source serves the stream surface (/snapshot, /changes, /watch).
	// Pass the widest implementation available: the PersistentRegistry
	// (WAL-deep history), the FollowerRegistry (leader sequence space),
	// or the Registry itself.
	Source netcoord.ChangeSource
	// Persist, when the registry is disk-backed, adds recovery/WAL
	// counters to /stats and the persistence-degraded flag to mutation
	// responses.
	Persist *netcoord.PersistentRegistry
	// Follower, in replica mode, disables mutations (403 naming the
	// leader) and adds replication lag to /stats.
	Follower *netcoord.FollowerRegistry
	// MaxBody caps request body sizes in bytes (0 = 1 MiB).
	MaxBody int64
	// Metrics receives every instrument this server registers and backs
	// GET /metrics. nil builds a private registry — tests running a
	// leader and a follower in one process then keep separate series.
	Metrics *telemetry.Registry
	// MaxLag is the follower readiness bound for GET /healthz: a
	// replica lagging more events than this answers 503 so a load
	// balancer drains it until it catches up. 0 = DefaultMaxLag.
	MaxLag uint64
}

// DefaultMaxLag is the /healthz follower lag bound used when
// Config.MaxLag is zero.
const DefaultMaxLag = 4096

// Server wires a Registry and a ChangeSource to the HTTP surface.
// Create with New, serve it (it is an http.Handler), and call Stop
// before shutting the http.Server down — Stop wakes the long-lived
// /watch and /changes handlers, which http.Server.Shutdown alone would
// wait on forever.
type Server struct {
	reg      *netcoord.Registry
	source   netcoord.ChangeSource
	persist  *netcoord.PersistentRegistry
	follower *netcoord.FollowerRegistry
	started  time.Time
	maxBody  int64
	maxLag   uint64
	mux      *http.ServeMux
	met      *serverMetrics

	// promoted latches once POST /promote succeeds on a follower: the
	// replica is now the leader, so the mutation surface opens and the
	// staleness headers stop (its state is authoritative, not a copy).
	promoted atomic.Bool

	// framesServed counts change events answered in the binary frame
	// encoding (negotiated per request; JSON pollers don't move it).
	framesServed atomic.Uint64

	// hub multiplexes every /watch onto one change-stream subscription;
	// notifier multiplexes every /changes long-poll onto another.
	hub      *WatchHub
	notifier *notifier

	// batcher coalesces concurrent watch recomputes into shard-major
	// NearestBatch dispatches (see batcher.go).
	batcher *queryBatcher

	shutdown     chan struct{}
	shutdownOnce sync.Once
}

// New builds the HTTP serving stack. The caller owns the registry's
// lifecycle; Stop only halts the server's goroutines.
func New(cfg Config) *Server {
	maxBody := cfg.MaxBody
	if maxBody <= 0 {
		maxBody = 1 << 20
	}
	source := cfg.Source
	if source == nil {
		source = cfg.Registry
	}
	maxLag := cfg.MaxLag
	if maxLag == 0 {
		maxLag = DefaultMaxLag
	}
	metrics := cfg.Metrics
	if metrics == nil {
		metrics = telemetry.NewRegistry()
	}
	s := &Server{
		reg:      cfg.Registry,
		source:   source,
		persist:  cfg.Persist,
		follower: cfg.Follower,
		started:  time.Now(),
		maxBody:  maxBody,
		maxLag:   maxLag,
		mux:      http.NewServeMux(),
		met:      newServerMetrics(metrics),
		shutdown: make(chan struct{}),
	}
	s.hub = newWatchHub(source, s.shutdown)
	s.notifier = newNotifier(source, s.shutdown)
	s.batcher = newQueryBatcher(cfg.Registry)
	s.registerCollectors()
	s.mux.HandleFunc("POST /upsert", s.instrument("/upsert", s.leaderOnly(s.handleUpsert)))
	s.mux.HandleFunc("POST /remove", s.instrument("/remove", s.leaderOnly(s.handleRemove)))
	s.mux.HandleFunc("POST /promote", s.instrument("/promote", s.handlePromote))
	s.mux.HandleFunc("GET /nearest", s.instrument("/nearest", s.staleness(s.handleNearestGet)))
	s.mux.HandleFunc("POST /nearest", s.instrument("/nearest", s.staleness(s.handleNearestPost)))
	s.mux.HandleFunc("POST /nearest/batch", s.instrument("/nearest/batch", s.staleness(s.handleNearestBatch)))
	s.mux.HandleFunc("GET /estimate", s.instrument("/estimate", s.staleness(s.handleEstimate)))
	s.mux.HandleFunc("GET /snapshot", s.instrument("/snapshot", s.staleness(s.handleSnapshot)))
	s.mux.HandleFunc("GET /changes", s.instrument("/changes", s.staleness(s.handleChanges)))
	s.mux.HandleFunc("GET /watch", s.instrument("/watch", s.handleWatch))
	s.mux.HandleFunc("GET /stats", s.instrument("/stats", s.handleStats))
	s.mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.Handle("GET /metrics", metrics.Handler())
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, req *http.Request) { s.mux.ServeHTTP(w, req) }

// Stop wakes every long-lived handler and halts the hub and notifier
// goroutines; safe to call more than once.
func (s *Server) Stop() { s.shutdownOnce.Do(func() { close(s.shutdown) }) }

// leaderOnly rejects mutations on a follower: its state is a replica
// of the leader's, and a local write would silently diverge it. A
// promoted follower IS the leader — its writes continue the stream
// under the new fencing epoch — so the gate opens after promotion.
func (s *Server) leaderOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if s.follower != nil && !s.promoted.Load() {
			writeError(w, http.StatusForbidden, fmt.Errorf("read-only replica of %s: send mutations to the leader", s.follower.FollowerStats().LeaderURL))
			return
		}
		h(w, req)
	}
}

// staleness stamps follower read responses with how stale they may be:
// X-NC-Staleness is seconds since the upstream last answered, X-NC-Lag
// the events known outstanding. A replica cut off from its upstream
// keeps serving reads — availability degrades gracefully instead of
// cliffing — but every response discloses the bound, so a client that
// needs read-your-writes (it just mutated through the leader) knows to
// pin to the leader or to wait out the advertised staleness instead of
// trusting an arbitrary replica. Promotion ends the stamping: the
// state is authoritative from then on.
func (s *Server) staleness(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if s.follower != nil && !s.promoted.Load() {
			st := s.follower.FollowerStats()
			if st.LastContactAgeSeconds >= 0 {
				w.Header().Set("X-NC-Staleness", strconv.FormatFloat(st.LastContactAgeSeconds, 'f', 3, 64))
			}
			w.Header().Set("X-NC-Lag", strconv.FormatUint(st.Lag, 10))
		}
		h(w, req)
	}
}

// defaultK is the k used when a nearest query does not specify one.
const defaultK = 8

// maxK bounds a single query's result size so one request cannot ask
// the service to rank the whole registry.
const maxK = 1024

func parseK(w http.ResponseWriter, raw string) (int, bool) {
	if raw == "" {
		return defaultK, true
	}
	k, err := strconv.Atoi(raw)
	if err != nil || k <= 0 || k > maxK {
		writeError(w, http.StatusBadRequest, fmt.Errorf("k must be an integer in [1, %d]", maxK))
		return 0, false
	}
	return k, true
}

// parseVec parses the vec=x,y,z (+ optional height) watch parameters.
func parseVec(raw, height string) (netcoord.Coordinate, error) {
	parts := strings.Split(raw, ",")
	c := netcoord.Coordinate{Vec: make([]float64, len(parts))}
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return netcoord.Coordinate{}, fmt.Errorf("bad vec component %q: %w", p, err)
		}
		c.Vec[i] = v
	}
	if height != "" {
		h, err := strconv.ParseFloat(height, 64)
		if err != nil {
			return netcoord.Coordinate{}, fmt.Errorf("bad height: %w", err)
		}
		c.Height = h
	}
	return c, nil
}

// decode reads a bounded JSON body, rejecting unknown fields.
func (s *Server) decode(w http.ResponseWriter, req *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// errStreamUnavailable is served when a stream endpoint is hit on a
// registry whose change stream is disabled.
var errStreamUnavailable = errors.New("change stream disabled on this registry")
