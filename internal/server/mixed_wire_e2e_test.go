package server

import (
	"fmt"
	"testing"
	"time"

	"netcoord"
)

// TestMixedProtocolChainE2E runs a three-tier relay chain whose hops
// alternate wire encodings — leader → binary-framed follower →
// JSON-only follower (frames disabled) → binary-framed leaf — and
// drives a heartbeat storm hot enough that the leader's feed provably
// coalesces. Every tier must converge bit-identically with the leader,
// the /changes JSON a client reads at any tier must be byte-identical
// across all of them (the encoding a hop negotiated below must never
// leak into what it serves above), and the negotiation itself must land
// exactly where configured: frame counters move on the binary hops and
// stay zero on the JSON one.
func TestMixedProtocolChainE2E(t *testing.T) {
	leaderTS, leaderReg := newTestServiceReg(t, netcoord.RegistryConfig{
		ChangeStreamBuffer: netcoord.DefaultChangeStreamBuffer,
	})
	const population = 32
	for i := 0; i < population; i++ {
		postJSON(t, leaderTS.URL+"/upsert", fmt.Sprintf(`{"id":"n%03d","coord":{"vec":[%d,0,0]},"error":0.1}`, i, i))
	}

	// Tier 1 negotiates the binary framing from the leader (the default).
	bin := startTestFollower(t, leaderTS.URL)
	waitConverged(t, bin, leaderReg)
	binTS := newFollowerService(t, bin)

	// Tier 2 is a downgraded consumer: frames disabled, plain JSON
	// against tier 1 — the hop above it speaks binary, this one doesn't.
	plain, err := netcoord.StartFollower(netcoord.FollowerConfig{
		LeaderURL:           binTS.URL,
		WaitTimeout:         200 * time.Millisecond,
		RetryInterval:       20 * time.Millisecond,
		DisableBinaryStream: true,
	})
	if err != nil {
		t.Fatalf("StartFollower (JSON tier): %v", err)
	}
	t.Cleanup(plain.Close)
	waitConverged(t, plain, leaderReg)
	plainTS := newFollowerService(t, plain)

	// Tier 3 negotiates frames again: binary under JSON under binary.
	leaf := startTestFollower(t, plainTS.URL)
	waitConverged(t, leaf, leaderReg)
	leafTS := newFollowerService(t, leaf)

	// Heartbeat storm: re-upsert the same population in a tight loop
	// until the leader's feed has provably collapsed superseded upserts
	// (Coalesced > 0). The chain is live throughout, so the relays are
	// ingesting — in their negotiated encodings — while the storm runs.
	stormDeadline := time.Now().Add(15 * time.Second)
	for leaderReg.ChangeStreamStats().Coalesced == 0 {
		if time.Now().After(stormDeadline) {
			t.Fatalf("storm never coalesced: %+v", leaderReg.ChangeStreamStats())
		}
		for i := 0; i < 512; i++ {
			id := fmt.Sprintf("n%03d", i%population)
			if err := leaderReg.Upsert(id, netcoord.Coordinate{Vec: []float64{float64(i % 13), float64(i % 7), 1}}, 0.1); err != nil {
				t.Fatal(err)
			}
		}
	}
	// A few removes so the tailed window carries non-upsert ops too —
	// those are never coalesced and must relay verbatim like the rest.
	for i := 0; i < 3; i++ {
		leaderReg.Remove(fmt.Sprintf("n%03d", i))
	}

	waitConverged(t, bin, leaderReg)
	waitConverged(t, plain, leaderReg)
	waitConverged(t, leaf, leaderReg)
	assertReplicaIdentical(t, bin, leaderReg)
	assertReplicaIdentical(t, plain, leaderReg)
	assertReplicaIdentical(t, leaf, leaderReg)

	// Negotiation landed exactly where configured.
	if st := bin.FollowerStats(); st.FramesReceived == 0 {
		t.Fatalf("binary tier never received a frame: %+v", st)
	}
	if st := plain.FollowerStats(); st.FramesReceived != 0 {
		t.Fatalf("JSON-only tier received %d frames", st.FramesReceived)
	}
	if st := leaf.FollowerStats(); st.FramesReceived == 0 {
		t.Fatalf("leaf (binary under a JSON hop) never received a frame: %+v", st)
	}

	// The JSON a client reads must be byte-identical at every tier, no
	// matter which encodings the hops beneath negotiated. Tail the last
	// stretch of the stream (well inside every tier's ring) everywhere.
	until := leaderReg.ChangeSeq()
	since := until - 64
	want := tailAll(t, leaderTS.URL, since, until)
	for name, base := range map[string]string{"binary tier": binTS.URL, "JSON tier": plainTS.URL, "leaf": leafTS.URL} {
		got := tailAll(t, base, since, until)
		if len(got) != len(want) {
			t.Fatalf("%s served %d events, leader %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s event %d diverged:\nleader %s\ntier   %s", name, i, want[i], got[i])
			}
		}
	}
}
