package server

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"netcoord"
)

// BenchmarkWatchHub measures the per-mutation cost of the shared watch
// hub with real watcher populations attached: every upsert is
// sequenced, offered to the hub's single subscription, routed through
// the spatial damage map, and any damaged watcher recomputes its top-k
// and reinstalls its interest — the full serving path minus HTTP.
//
// The contrast is BenchmarkWatchFanout (the retired per-watcher
// scheme, recorded beside this one in BENCH_stream.json), where every
// event was offered to every watcher's buffer: linear in watchers by
// construction. Here the damage map touches only the watchers an event
// can affect, so the cost at watchers=10240 must stay within a small
// multiple of watchers=8 — sublinear fan-out is the whole point.
func BenchmarkWatchHub(b *testing.B) {
	for _, watchers := range []int{8, 1024, 10240} {
		b.Run(fmt.Sprintf("watchers=%d", watchers), func(b *testing.B) {
			reg, err := netcoord.NewRegistry(netcoord.RegistryConfig{ChangeStreamBuffer: 1 << 14})
			if err != nil {
				b.Fatal(err)
			}
			defer reg.Close()
			const population = 1 << 16
			rng := rand.New(rand.NewSource(7))
			ids := make([]string, population)
			batch := make([]netcoord.RegistryEntry, population)
			for i := range batch {
				ids[i] = fmt.Sprintf("node-%05d", i)
				batch[i] = netcoord.RegistryEntry{
					ID:    ids[i],
					Coord: c3(rng.Float64()*512, rng.Float64()*512, rng.Float64()*512),
					Error: 0.2,
				}
			}
			if err := reg.UpsertBatch(batch); err != nil {
				b.Fatal(err)
			}

			shutdown := make(chan struct{})
			defer close(shutdown)
			hub := newWatchHub(reg, shutdown)
			// Each watcher runs the handler loop: park on damage,
			// recompute, reinstall interest.
			for i := 0; i < watchers; i++ {
				w, err := hub.Watch("")
				if err != nil {
					b.Fatal(err)
				}
				origin := c3(rng.Float64()*512, rng.Float64()*512, rng.Float64()*512)
				hubSync(b, hub, w, reg, origin, 4)
				go func(w *HubWatcher, origin netcoord.Coordinate) {
					for {
						select {
						case <-shutdown:
							return
						case <-w.C():
							hubSync(b, hub, w, reg, origin, 4)
						}
					}
				}(w, origin)
			}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Nudge a node: most moves land outside every watcher's
				// ball (the stable-coordinates regime the paper
				// promises), some damage a few watchers.
				j := i % population
				c := batch[j].Coord
				c.Vec[0] += 0.25
				if c.Vec[0] > 512 {
					c.Vec[0] = 0
				}
				if err := reg.Upsert(ids[j], c, 0.2); err != nil {
					b.Fatal(err)
				}
				// Backpressure: cap the hub's backlog below its buffer
				// so no event is ever dropped — the measurement then
				// includes every routing cost, and the final drain wait
				// is guaranteed to terminate. (A real mutation path
				// never waits; overflow there is a counted gap plus a
				// conservative resync.)
				if i%1024 == 1023 {
					for reg.ChangeSeq()-hub.Processed() > 2048 {
						runtime.Gosched()
					}
				}
			}
			// The cost isn't paid until the hub has routed everything:
			// wait for it.
			target := reg.ChangeSeq()
			for hub.Processed() < target {
				runtime.Gosched()
			}
			b.StopTimer()
			st := hub.Stats()
			b.ReportMetric(float64(st.Damages)/float64(b.N), "damages/op")
		})
	}
}
