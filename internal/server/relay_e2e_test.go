package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"netcoord"
)

// tailAll follows a /changes endpoint from `since` until it has every
// event through `until`, paginating and long-polling like a real
// consumer. Events are returned re-marshalled through map[string]any,
// which canonicalizes key order — byte equality then means value
// equality.
func tailAll(t *testing.T, base string, since, until uint64) []string {
	t.Helper()
	var out []string
	cur := since
	deadline := time.Now().Add(30 * time.Second)
	for cur < until {
		if time.Now().After(deadline) {
			t.Fatalf("tail of %s stuck at seq %d (want %d)", base, cur, until)
		}
		resp, err := http.Get(fmt.Sprintf("%s/changes?since=%d&wait=2s&limit=64", base, cur))
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Events []map[string]any `json:"events"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tail of %s: status %d at seq %d", base, resp.StatusCode, cur)
		}
		if err != nil {
			t.Fatalf("tail decode: %v", err)
		}
		for _, ev := range body.Events {
			data, merr := json.Marshal(ev)
			if merr != nil {
				t.Fatal(merr)
			}
			out = append(out, string(data))
			cur = uint64(ev["seq"].(float64))
		}
	}
	return out
}

// TestFollowerChangesBitIdenticalToLeader tails the leader's and a
// follower's /changes streams concurrently with the mutation load and
// requires them to be event-for-event identical: same sequences, same
// payloads, byte for byte — the property that makes replica tiers
// transparent to stream consumers.
func TestFollowerChangesBitIdenticalToLeader(t *testing.T) {
	leaderTS, leaderReg := newTestServiceReg(t, netcoord.RegistryConfig{
		ChangeStreamBuffer: netcoord.DefaultChangeStreamBuffer,
	})
	for i := 0; i < 40; i++ {
		postJSON(t, leaderTS.URL+"/upsert", fmt.Sprintf(`{"id":"seed%02d","coord":{"vec":[%d,0,0]},"error":0.1}`, i, i))
	}
	f := startTestFollower(t, leaderTS.URL)
	waitConverged(t, f, leaderReg)
	fts := newFollowerService(t, f)
	start := f.AppliedSeq()

	// Concurrent mutation: upserts (some moving, some heartbeats) and
	// removes, all while both tails are in flight.
	const mutations = 300
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < mutations; i++ {
			switch {
			case i%10 == 9:
				// Remove the id upserted one step earlier: it provably
				// exists, so every iteration publishes exactly one event
				// and the stream's final sequence is deterministic.
				postJSON(t, leaderTS.URL+"/remove", fmt.Sprintf(`{"id":"seed%02d"}`, (i-1)%40))
			default:
				postJSON(t, leaderTS.URL+"/upsert", fmt.Sprintf(`{"id":"seed%02d","coord":{"vec":[%d,%d,0]},"error":0.1}`, i%40, i%40, i%7))
			}
		}
	}()

	until := start + mutations
	var leaderEvents, followerEvents []string
	var tails sync.WaitGroup
	tails.Add(2)
	go func() { defer tails.Done(); leaderEvents = tailAll(t, leaderTS.URL, start, until) }()
	go func() { defer tails.Done(); followerEvents = tailAll(t, fts.URL, start, until) }()
	wg.Wait()
	tails.Wait()

	if len(leaderEvents) != len(followerEvents) {
		t.Fatalf("leader served %d events, follower %d", len(leaderEvents), len(followerEvents))
	}
	for i := range leaderEvents {
		if leaderEvents[i] != followerEvents[i] {
			t.Fatalf("event %d diverged:\nleader   %s\nfollower %s", i, leaderEvents[i], followerEvents[i])
		}
	}
	waitConverged(t, f, leaderReg)
	assertReplicaIdentical(t, f, leaderReg)
}

// openWatch opens an SSE watch and returns its reader plus the initial
// snapshot event.
func openWatch(t *testing.T, base, params string) (*sseReader, sseEvent) {
	t.Helper()
	resp, err := http.Get(base + "/watch?" + params)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch on %s: %d", base, resp.StatusCode)
	}
	r := newSSEReader(t, bufio.NewReader(resp.Body))
	ev, ok := r.next(5 * time.Second)
	if !ok || ev.name != "snapshot" {
		t.Fatalf("first watch event on %s = %+v, ok=%v; want snapshot", base, ev, ok)
	}
	return r, ev
}

// TestFollowerWatchBitIdenticalToLeader drives the same watch on the
// leader and on a follower and requires every pushed event — initial
// snapshot and each delta, sequence numbers included — to be
// identical, because the follower re-serves the watch in the leader's
// sequence space.
func TestFollowerWatchBitIdenticalToLeader(t *testing.T) {
	leaderTS, leaderReg := newTestServiceReg(t, netcoord.RegistryConfig{
		ChangeStreamBuffer: netcoord.DefaultChangeStreamBuffer,
	})
	postJSON(t, leaderTS.URL+"/upsert", `{"entries":[
		{"id":"a","coord":{"vec":[1,0,0]}},
		{"id":"b","coord":{"vec":[2,0,0]}},
		{"id":"far","coord":{"vec":[500,0,0]}}]}`)
	f := startTestFollower(t, leaderTS.URL)
	waitConverged(t, f, leaderReg)
	fts := newFollowerService(t, f)

	lr, lSnap := openWatch(t, leaderTS.URL, "vec=0,0,0&k=2")
	fr, fSnap := openWatch(t, fts.URL, "vec=0,0,0&k=2")
	if !reflect.DeepEqual(lSnap.data, fSnap.data) {
		t.Fatalf("watch snapshots diverged:\nleader   %v\nfollower %v", lSnap.data, fSnap.data)
	}

	// Paced relevant mutations: each changes the top-2, and each tier
	// must push the identical delta (same seq, results, added/removed).
	steps := []string{
		`{"id":"c","coord":{"vec":[0.5,0,0]}}`,   // enters at rank 1
		`{"id":"a","coord":{"vec":[90,0,0]}}`,    // member leaves, b re-enters
		`{"id":"c","coord":{"vec":[3,0,0]}}`,     // reorder
		`{"id":"far","coord":{"vec":[0.1,0,0]}}`, // outsider dives in
	}
	for i, step := range steps {
		// An irrelevant far-away churn event first: neither tier may
		// push anything for it, so the next delta is the step's.
		postJSON(t, leaderTS.URL+"/upsert", fmt.Sprintf(`{"id":"noise","coord":{"vec":[800,%d,0]}}`, i))
		postJSON(t, leaderTS.URL+"/upsert", step)
		waitConverged(t, f, leaderReg)
		lev, lok := lr.next(5 * time.Second)
		fev, fok := fr.next(5 * time.Second)
		if !lok || !fok || lev.name != "delta" || fev.name != "delta" {
			t.Fatalf("step %d: leader (%+v, %v), follower (%+v, %v); want deltas", i, lev, lok, fev, fok)
		}
		if !reflect.DeepEqual(lev.data, fev.data) {
			t.Fatalf("step %d deltas diverged:\nleader   %v\nfollower %v", i, lev.data, fev.data)
		}
		if seq := lev.data["seq"].(float64); seq != float64(leaderReg.ChangeSeq()) {
			t.Fatalf("step %d delta seq = %v, want the mutation's seq %d", i, seq, leaderReg.ChangeSeq())
		}
	}
}

// TestFollowerWatchSurvivesReBootstrapMidWatch truncates a follower out
// of its leader's tiny change ring while a watch is attached to the
// follower: the follower must re-bootstrap (as a delta — the storm is
// pure upserts, so the tombstone ring still proves removals) and the
// watch must converge on the post-storm top-k without reconnecting.
func TestFollowerWatchSurvivesReBootstrapMidWatch(t *testing.T) {
	leaderTS, leaderReg := newTestServiceReg(t, netcoord.RegistryConfig{ChangeStreamBuffer: 8})
	postJSON(t, leaderTS.URL+"/upsert", `{"entries":[
		{"id":"a","coord":{"vec":[1,0,0]}},
		{"id":"b","coord":{"vec":[2,0,0]}},
		{"id":"far","coord":{"vec":[500,0,0]}}]}`)
	f := startTestFollower(t, leaderTS.URL)
	waitConverged(t, f, leaderReg)
	fts := newFollowerService(t, f)

	fr, snap := openWatch(t, fts.URL, "vec=0,0,0&k=2")
	if ids := watchIDs(t, sseEvent{name: snap.name, data: snap.data}); len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("initial follower watch = %v, want [a b]", ids)
	}

	// Outrun the ring in-process: thousands of upserts between follower
	// polls guarantee a 410. The storm also moves "winner" to rank 1.
	for i := 0; i < 5000; i++ {
		id := fmt.Sprintf("filler%03d", i%200)
		if err := leaderReg.Upsert(id, netcoord.Coordinate{Vec: []float64{200 + float64(i%97), 100, 0}}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := leaderReg.Upsert("winner", netcoord.Coordinate{Vec: []float64{0.25, 0, 0}}, 0); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, f, leaderReg)
	st := f.FollowerStats()
	if st.Bootstraps < 2 {
		t.Fatalf("expected a re-bootstrap after truncation, stats %+v", st)
	}
	if st.DeltaBootstraps < 1 {
		t.Fatalf("expected the re-bootstrap to be served as a delta (pure-upsert storm), stats %+v", st)
	}
	assertReplicaIdentical(t, f, leaderReg)

	// The attached watch must reflect the post-storm world: deltas keep
	// flowing (possibly several while the follower resynchronized) and
	// settle on [winner a].
	deadline := time.Now().Add(10 * time.Second)
	for {
		ev, ok := fr.next(time.Until(deadline))
		if !ok {
			t.Fatal("follower watch went silent before converging past the re-bootstrap")
		}
		if ev.name != "delta" {
			continue
		}
		ids := watchIDs(t, ev)
		if len(ids) == 2 && ids[0] == "winner" && ids[1] == "a" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("watch never converged on [winner a]; last delta %v", ids)
		}
	}
}

// TestDeltaSnapshotHTTP exercises /snapshot?since= directly: a delta
// when the gap is provable, the removed-ids list, and the full-body
// fallback when the tombstone ring cannot prove coverage.
func TestDeltaSnapshotHTTP(t *testing.T) {
	// A small event ring (64) keeps the tombstone ring at its 1024
	// minimum, so the fallback path is reachable below; it also shows
	// deltas working far below the event ring's floor.
	ts, reg := newTestServiceReg(t, netcoord.RegistryConfig{ChangeStreamBuffer: 64})
	postJSON(t, ts.URL+"/upsert", `{"entries":[
		{"id":"a","coord":{"vec":[1,0,0]}},
		{"id":"b","coord":{"vec":[2,0,0]}},
		{"id":"c","coord":{"vec":[3,0,0]}}]}`)
	mark := reg.ChangeSeq()

	postJSON(t, ts.URL+"/upsert", `{"id":"b","coord":{"vec":[20,0,0]}}`)
	postJSON(t, ts.URL+"/remove", `{"id":"c"}`)
	postJSON(t, ts.URL+"/upsert", `{"id":"d","coord":{"vec":[4,0,0]}}`)

	code, out := getJSON(t, ts.URL+fmt.Sprintf("/snapshot?since=%d", mark))
	if code != http.StatusOK || out["delta"] != true {
		t.Fatalf("delta snapshot: %d %v", code, out)
	}
	entries := out["entries"].([]any)
	if len(entries) != 2 {
		t.Fatalf("delta entries = %v, want just b and d", entries)
	}
	ids := map[string]bool{}
	for _, e := range entries {
		ids[e.(map[string]any)["id"].(string)] = true
	}
	if !ids["b"] || !ids["d"] {
		t.Fatalf("delta entries = %v, want b and d", ids)
	}
	removed := out["removed"].([]any)
	if len(removed) != 1 || removed[0].(string) != "c" {
		t.Fatalf("delta removed = %v, want [c]", removed)
	}
	if out["seq"].(float64) != float64(reg.ChangeSeq()) {
		t.Fatalf("delta seq = %v, want %d", out["seq"], reg.ChangeSeq())
	}

	// since == current seq: an empty delta, not a full body.
	code, out = getJSON(t, ts.URL+fmt.Sprintf("/snapshot?since=%d", reg.ChangeSeq()))
	if code != http.StatusOK || out["delta"] != true || len(out["entries"].([]any)) != 0 {
		t.Fatalf("empty delta: %d %v", code, out)
	}

	// Overflow the 1024-slot tombstone ring: removal knowledge below
	// the flood is gone, so the same request now degrades to a full
	// snapshot.
	for i := 0; i < 1100; i++ {
		id := fmt.Sprintf("t%04d", i)
		if err := reg.Upsert(id, netcoord.Coordinate{Vec: []float64{float64(i % 89), 5, 0}}, 0); err != nil {
			t.Fatal(err)
		}
		reg.Remove(id)
	}
	code, out = getJSON(t, ts.URL+fmt.Sprintf("/snapshot?since=%d", mark))
	if code != http.StatusOK {
		t.Fatalf("post-overflow snapshot: %d", code)
	}
	if out["delta"] == true {
		t.Fatal("delta served although the tombstone ring lost the range; deleted ids could survive on the replica")
	}
	if n := len(out["entries"].([]any)); n != reg.Len() {
		t.Fatalf("full fallback entries = %d, want the whole registry (%d)", n, reg.Len())
	}
}

// TestChainedDeltaBootstrapDoesNotCascadeFullTransfers truncates both
// tiers of a leader → mid → leaf chain with a pure-upsert storm: mid
// repairs from the leader with a delta, and — because a delta repair
// folds its removal knowledge into the relay instead of wiping it —
// leaf must then repair from MID with a delta too, not a full
// snapshot. Without AdvanceTo this scenario cascades full transfers
// down every tier exactly when deltas matter most.
func TestChainedDeltaBootstrapDoesNotCascadeFullTransfers(t *testing.T) {
	leaderTS, leaderReg := newTestServiceReg(t, netcoord.RegistryConfig{ChangeStreamBuffer: 8})
	for i := 0; i < 10; i++ {
		postJSON(t, leaderTS.URL+"/upsert", fmt.Sprintf(`{"id":"n%02d","coord":{"vec":[%d,0,0]}}`, i, i))
	}
	mid := startTestFollower(t, leaderTS.URL)
	waitConverged(t, mid, leaderReg)
	midTS := newFollowerService(t, mid)
	leaf := startTestFollower(t, midTS.URL)
	waitConverged(t, leaf, leaderReg)

	// Pure-upsert storm far past both rings (leader ring 8; mid's relay
	// forgets its pre-jump range when IT repairs).
	for i := 0; i < 5000; i++ {
		id := fmt.Sprintf("s%03d", i%150)
		if err := leaderReg.Upsert(id, netcoord.Coordinate{Vec: []float64{float64(i % 83), 50, 0}}, 0); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, mid, leaderReg)
	waitConverged(t, leaf, leaderReg)
	assertReplicaIdentical(t, leaf, leaderReg)

	if st := mid.FollowerStats(); st.DeltaBootstraps < 1 {
		t.Fatalf("mid tier repaired with a full snapshot, want delta: %+v", st)
	}
	if st := leaf.FollowerStats(); st.Bootstraps < 2 {
		t.Fatalf("leaf never re-bootstrapped (storm premise broken): %+v", st)
	} else if st.DeltaBootstraps < 1 {
		t.Fatalf("leaf repaired with a full snapshot although mid held delta knowledge: %+v", st)
	}
}
