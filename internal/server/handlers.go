package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"netcoord"
)

// upsertRequest accepts a single entry, a batch, or both.
type upsertRequest struct {
	ID      string              `json:"id"`
	Coord   netcoord.Coordinate `json:"coord"`
	Error   float64             `json:"error"`
	Entries []upsertEntry       `json:"entries"`
}

type upsertEntry struct {
	ID    string              `json:"id"`
	Coord netcoord.Coordinate `json:"coord"`
	Error float64             `json:"error"`
}

type rankedJSON struct {
	ID           string              `json:"id"`
	Coord        netcoord.Coordinate `json:"coord"`
	EstimatedRTT float64             `json:"estimated_rtt_ms"`
}

func toRankedJSON(rs []netcoord.Ranked) []rankedJSON {
	out := make([]rankedJSON, len(rs))
	for i, r := range rs {
		out[i] = rankedJSON{ID: r.ID, Coord: r.Coord, EstimatedRTT: r.EstimatedRTT}
	}
	return out
}

func (s *Server) handleUpsert(w http.ResponseWriter, req *http.Request) {
	var body upsertRequest
	if !s.decode(w, req, &body) {
		return
	}
	// Fold the single-entry form into the batch so the whole request is
	// one atomic UpsertBatch: a 400 always means nothing was applied.
	batch := make([]netcoord.RegistryEntry, 0, len(body.Entries)+1)
	if body.ID != "" {
		batch = append(batch, netcoord.RegistryEntry{ID: body.ID, Coord: body.Coord, Error: body.Error})
	}
	for _, e := range body.Entries {
		batch = append(batch, netcoord.RegistryEntry{ID: e.ID, Coord: e.Coord, Error: e.Error})
	}
	if len(batch) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no id or entries in request"))
		return
	}
	if err := s.reg.UpsertBatch(batch); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// seq is read after the batch applied, so it covers these upserts:
	// a writer can hand it straight to /changes?since= and observe every
	// subsequent mutation with no read-then-subscribe race. epoch lets
	// the writer prove it talked to the fenced-in leader, not a deposed
	// one still answering.
	resp := map[string]any{"applied": len(batch), "entries": s.reg.Len(), "seq": s.source.ChangeSeq(), "epoch": s.source.ChangeEpoch()}
	s.flagDegraded(resp)
	writeJSON(w, http.StatusOK, resp)
}

// flagDegraded marks a mutation response when persistence has failed:
// the mutation was applied in memory but is no longer being logged, so
// writers must not believe the durability contract still holds just
// because they got a 200.
func (s *Server) flagDegraded(resp map[string]any) {
	if s.persist == nil {
		return
	}
	if err := s.persist.Err(); err != nil {
		resp["persistence_degraded"] = err.Error()
	}
}

func (s *Server) handleRemove(w http.ResponseWriter, req *http.Request) {
	var body struct {
		ID string `json:"id"`
	}
	if !s.decode(w, req, &body) {
		return
	}
	if body.ID == "" {
		writeError(w, http.StatusBadRequest, errors.New("no id in request"))
		return
	}
	resp := map[string]any{"removed": s.reg.Remove(body.ID), "seq": s.source.ChangeSeq(), "epoch": s.source.ChangeEpoch()}
	s.flagDegraded(resp)
	writeJSON(w, http.StatusOK, resp)
}

// handlePromote turns this process into the stream's leader.
//
// On a follower it stops the tail loop, bumps the fencing epoch, and
// opens the mutation surface — local writes continue the dense sequence
// space under the new epoch, and everything the deposed leader still
// writes is fenced out by every tier that saw the promotion. The caller
// (an operator, or an external failure detector) owns promoting exactly
// one replica. Idempotent: repeating the call re-answers with the
// established epoch.
//
// On a persistent leader it is a defensive fence: the epoch is bumped
// and made durable (WAL rotation), so anything still replaying the old
// epoch — say a partitioned replica of a deposed predecessor — is
// rejected from here on. On a plain in-memory leader there is nothing
// to promote and the call is a 409.
func (s *Server) handlePromote(w http.ResponseWriter, req *http.Request) {
	switch {
	case s.follower != nil:
		epoch, err := s.follower.Promote()
		already := errors.Is(err, netcoord.ErrNotPromotable)
		if err != nil && !already {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		s.promoted.Store(true)
		writeJSON(w, http.StatusOK, map[string]any{
			"promoted": true,
			"already":  already,
			"epoch":    epoch,
			"seq":      s.source.ChangeSeq(),
		})
	case s.persist != nil:
		epoch, err := s.persist.Fence()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"promoted": true,
			"fenced":   true,
			"epoch":    epoch,
			"seq":      s.source.ChangeSeq(),
		})
	default:
		writeError(w, http.StatusConflict, errors.New("already the leader (in-memory registry; nothing to promote)"))
	}
}

// handleNearestGet answers proximity queries centered on a registered
// node: /nearest?id=n1&k=8, or radius mode with &radius_ms=50. Radius
// mode goes through Registry.WithinLimit — the untrusted-radius entry
// point, which caps the result set before ranking — so a huge or
// adversarial radius_ms costs O(maxK log maxK), not O(n log n).
func (s *Server) handleNearestGet(w http.ResponseWriter, req *http.Request) {
	id := req.URL.Query().Get("id")
	if id == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing id parameter (POST a coordinate for coordinate-centered queries)"))
		return
	}
	if radiusStr := req.URL.Query().Get("radius_ms"); radiusStr != "" {
		radius, err := strconv.ParseFloat(radiusStr, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad radius_ms: %w", err))
			return
		}
		entry, ok := s.reg.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown id %q", id))
			return
		}
		// Bounded like k-mode: +1 slack for the excluded center, +1 to
		// detect truncation.
		res, err := s.reg.WithinLimit(entry.Coord, radius, maxK+2)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// Consistent with k-mode: the center node is not its own peer.
		filtered := res[:0]
		for _, rk := range res {
			if rk.ID != id {
				filtered = append(filtered, rk)
			}
		}
		truncated := len(filtered) > maxK
		if truncated {
			filtered = filtered[:maxK]
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": toRankedJSON(filtered), "truncated": truncated})
		return
	}
	k, ok := parseK(w, req.URL.Query().Get("k"))
	if !ok {
		return
	}
	res, err := s.reg.NearestTo(id, k)
	if errors.Is(err, netcoord.ErrUnknownID) {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": toRankedJSON(res)})
}

// handleNearestPost answers proximity queries centered on an arbitrary
// coordinate — the "nearest replicas to this client" call for clients
// that are not registered themselves. Like the GET handler, radius mode
// uses Registry.WithinLimit (the untrusted-radius entry point) so a
// client-supplied radius can never rank more than maxK+1 results.
func (s *Server) handleNearestPost(w http.ResponseWriter, req *http.Request) {
	var body struct {
		Coord    netcoord.Coordinate `json:"coord"`
		K        int                 `json:"k"`
		RadiusMS *float64            `json:"radius_ms"`
	}
	if !s.decode(w, req, &body) {
		return
	}
	if body.RadiusMS != nil {
		res, err := s.reg.WithinLimit(body.Coord, *body.RadiusMS, maxK+1)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		truncated := len(res) > maxK
		if truncated {
			res = res[:maxK]
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": toRankedJSON(res), "truncated": truncated})
		return
	}
	k := body.K
	if k == 0 {
		k = defaultK
	}
	if k < 1 || k > maxK {
		writeError(w, http.StatusBadRequest, fmt.Errorf("k must be an integer in [1, %d]", maxK))
		return
	}
	res, err := s.reg.Nearest(body.Coord, k)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": toRankedJSON(res)})
}

// maxBatchQueries caps how many queries one POST /nearest/batch request
// may carry; combined with maxK it bounds the worst-case work a single
// request can demand.
const maxBatchQueries = 256

// nearestBatchQuery is one element of a POST /nearest/batch request.
// Shapes mirror POST /nearest exactly: k-mode by default, radius mode
// when radius_ms is present.
type nearestBatchQuery struct {
	Coord    netcoord.Coordinate `json:"coord"`
	K        int                 `json:"k"`
	RadiusMS *float64            `json:"radius_ms"`
}

// nearestBatchResult is one element of the response, positionally
// matching the request's queries array.
type nearestBatchResult struct {
	Results   []rankedJSON `json:"results"`
	Truncated bool         `json:"truncated,omitempty"`
}

// handleNearestBatch answers many proximity queries in one request:
// {"queries":[{"coord":...,"k":8},{"coord":...,"radius_ms":50},...]}.
// The whole batch is answered by one Registry.NearestBatch dispatch —
// shard-major, so each shard's lock is taken once for the entire
// request instead of once per query — which is the cheap way to
// resolve a client's full replica set or a mesh of candidate origins.
// Validation is atomic: any malformed query fails the whole batch with
// a 400 naming the offending index, and nothing is computed.
func (s *Server) handleNearestBatch(w http.ResponseWriter, req *http.Request) {
	var body struct {
		Queries []nearestBatchQuery `json:"queries"`
	}
	if !s.decode(w, req, &body) {
		return
	}
	if len(body.Queries) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no queries in request"))
		return
	}
	if len(body.Queries) > maxBatchQueries {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%d queries, want <= %d per request", len(body.Queries), maxBatchQueries))
		return
	}
	queries := make([]netcoord.NearestQuery, len(body.Queries))
	radiusMode := make([]bool, len(body.Queries))
	for i, q := range body.Queries {
		if q.RadiusMS != nil {
			// Same shape as POST /nearest radius mode: WithinLimit-style
			// bounding with +1 slack to detect truncation. Registry-side
			// validation rejects negative/NaN radii for the whole batch.
			queries[i] = netcoord.NearestQuery{From: q.Coord, K: maxK + 1, HasRadius: true, RadiusMillis: *q.RadiusMS}
			radiusMode[i] = true
			continue
		}
		k := q.K
		if k == 0 {
			k = defaultK
		}
		if k < 1 || k > maxK {
			writeError(w, http.StatusBadRequest, fmt.Errorf("query %d: k must be an integer in [1, %d]", i, maxK))
			return
		}
		queries[i] = netcoord.NearestQuery{From: q.Coord, K: k}
	}
	results, err := s.reg.NearestBatch(queries)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out := make([]nearestBatchResult, len(results))
	for i, res := range results {
		truncated := radiusMode[i] && len(res) > maxK
		if truncated {
			res = res[:maxK]
		}
		out[i] = nearestBatchResult{Results: toRankedJSON(res), Truncated: truncated}
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": out})
}

func (s *Server) handleEstimate(w http.ResponseWriter, req *http.Request) {
	a, b := req.URL.Query().Get("a"), req.URL.Query().Get("b")
	if a == "" || b == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing a or b parameter"))
		return
	}
	d, err := s.reg.Estimate(a, b)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"a": a, "b": b, "rtt_ms": d})
}

func (s *Server) handleStats(w http.ResponseWriter, req *http.Request) {
	body := map[string]any{
		"registry":       s.reg.Stats(),
		"uptime_seconds": time.Since(s.started).Seconds(),
		"change_stream":  s.source.ChangeStreamStats(),
		"seq":            s.source.ChangeSeq(),
		"epoch":          s.source.ChangeEpoch(),
		"watch_hub":      s.hub.Stats(),
	}
	if s.follower != nil {
		// The replica's position in the leader's sequence space; its
		// change_stream section above describes the relay re-serving
		// that stream.
		body["follower"] = s.follower.FollowerStats()
	}
	if s.persist != nil {
		body["persistence"] = map[string]any{
			"recovery": s.persist.Recovery(),
			"store":    s.persist.PersistStats(),
		}
	}
	writeJSON(w, http.StatusOK, body)
}
