package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"netcoord"
	"netcoord/internal/wire"
)

// handleSnapshot serves the replica-bootstrap pair: the entry set and
// the stream sequence to resume from.
//
// With ?since=<seq> the server first tries a *delta*: live entries
// whose per-entry sequence is newer than since (provable at any depth —
// entries carry the sequence that produced them), plus the removed ids
// from the stream's tombstone ring. Heartbeat upserts are what churn
// the event ring; removals are rare, so the tombstone ring proves
// removal-completeness far below the 410 floor — which is exactly when
// a truncated follower shows up here. When even the tombstone ring
// cannot cover the gap, the response silently degrades to the full
// snapshot; the client distinguishes the two by the "delta" field.
//
// The full body is streamed entry by entry through a small buffer — a
// bootstrap of a multi-million-entry registry must not materialize a
// second (and third) copy of it in one response buffer. On a follower
// the sequence is its applied position in the leader's sequence space
// and the body carries `follower_of` (informational: replicas relay
// the stream, so chaining a replica off a replica is supported).
func (s *Server) handleSnapshot(w http.ResponseWriter, req *http.Request) {
	var followerOf string
	if s.follower != nil && !s.promoted.Load() {
		followerOf = s.follower.FollowerStats().LeaderURL
	}
	if raw := req.URL.Query().Get("since"); raw != "" {
		since, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad since: %w", err))
			return
		}
		// The source assembles the triple atomically (a follower holds
		// its bootstrap lock), or reports ok=false when only a full
		// snapshot can guarantee correctness. The client applies
		// removals before entries, so an id present in both (removed,
		// then re-upserted) ends live, matching its newest state.
		if entries, removed, seq, ok := s.source.DeltaSince(since); ok {
			if wantsSnapshotFrames(req) {
				s.writeSnapshotFrames(w, seq, followerOf, entries, removed, true)
			} else {
				s.writeSnapshotBody(w, seq, followerOf, entries, removed, true)
			}
			return
		}
	}
	entries, seq := s.source.SnapshotWithSeq()
	if wantsSnapshotFrames(req) {
		s.writeSnapshotFrames(w, seq, followerOf, entries, nil, false)
		return
	}
	s.writeSnapshotBody(w, seq, followerOf, entries, nil, false)
}

// wantsSnapshotFrames reports whether the client negotiated the binary
// snapshot encoding (Accept naming the snapshot media type, or
// ?format=frames for header-less clients).
func wantsSnapshotFrames(req *http.Request) bool {
	return strings.Contains(req.Header.Get("Accept"), wire.ContentTypeSnapshot) ||
		req.URL.Query().Get("format") == "frames"
}

// writeSnapshotFrames streams the binary form of the bootstrap pair: a
// snapshot header (seq, epoch, delta marker, removed ids, entry count),
// then one upsert frame per entry with the entry-level sequence stamped
// on the frame's Seq — which is where chained delta snapshots read it
// back from. One scratch buffer is reused for every entry, so the
// response allocates per-registry, not per-entry.
func (s *Server) writeSnapshotFrames(w http.ResponseWriter, seq uint64, followerOf string, entries []netcoord.RegistryEntry, removed []string, delta bool) {
	hdr := wire.SnapshotHeader{
		Seq:        seq,
		Epoch:      s.source.ChangeEpoch(),
		Delta:      delta,
		FollowerOf: followerOf,
		Removed:    removed,
		EntryCount: uint64(len(entries)),
	}
	scratch, err := wire.AppendSnapshotHeader(make([]byte, 0, 4096), &hdr)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", wire.ContentTypeSnapshot)
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriterSize(w, 1<<16)
	_, _ = bw.Write(scratch)
	for i := range entries {
		e := &entries[i]
		fr := wire.Frame{
			Op:          wire.OpUpsert,
			Seq:         e.Seq,
			ID:          e.ID,
			Coord:       e.Coord,
			Error:       e.Error,
			UpdatedAtNs: e.UpdatedAt.UnixNano(),
		}
		scratch, err = wire.AppendFrame(scratch[:0], &fr)
		if err != nil {
			return // headers are out; the truncated body fails the client's decode
		}
		_, _ = bw.Write(scratch)
	}
	_ = bw.Flush()
}

// writeSnapshotBody streams a (full or delta) snapshot response entry
// by entry through a small buffer: under heartbeat churn a "delta"
// approaches the whole registry, so it must not materialize
// registry-sized response copies any more than the full path may.
func (s *Server) writeSnapshotBody(w http.ResponseWriter, seq uint64, followerOf string, entries []netcoord.RegistryEntry, removed []string, delta bool) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriterSize(w, 1<<16)
	// The epoch rides the bootstrap pair: a replica refusing to re-base
	// onto a deposed leader's snapshot needs the epoch of the state it
	// is about to adopt.
	fmt.Fprintf(bw, `{"seq":%d,"epoch":%d`, seq, s.source.ChangeEpoch())
	if followerOf != "" {
		quoted, _ := json.Marshal(followerOf)
		fmt.Fprintf(bw, `,"follower_of":%s`, quoted)
	}
	if delta {
		// The removed list is tombstone-ring-bounded; it never rivals
		// the entry set for size.
		data, err := json.Marshal(removed)
		if err != nil {
			return
		}
		_, _ = bw.WriteString(`,"delta":true,"removed":`)
		_, _ = bw.Write(data)
	}
	_, _ = bw.WriteString(`,"entries":[`)
	for i, e := range entries {
		if i > 0 {
			_ = bw.WriteByte(',')
		}
		data, err := json.Marshal(netcoord.SnapshotEntry(e))
		if err != nil {
			return // headers are out; the truncated body fails the client's decode
		}
		_, _ = bw.Write(data)
	}
	_, _ = bw.WriteString("]}\n")
	_ = bw.Flush()
}

// errGone keeps the 410 wording in one place for /changes and tests.
var errGone = errors.New("re-bootstrap from /snapshot")
