package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"netcoord"
	"netcoord/internal/wire"
)

// Changes endpoint bounds.
const (
	defaultChangesLimit = 512
	maxChangesLimit     = 4096
	maxChangesWait      = time.Minute
)

// resubscribeDelay paces the notifier's and hub's re-attach loops after
// their subscription closes (a follower re-bootstrapped its relay, or
// the registry shut down): long enough never to spin against a feed
// that closes subscriptions immediately, short enough that a relay
// reset costs one beat of wakeups. Each consecutive dead attach (a
// subscription that closed without delivering anything — the signature
// of a closed feed, since Subscribe reports closure as an immediately
// closed channel, not an error) doubles the delay up to
// maxResubscribeDelay, so a registry closed out from under the server
// costs a slow heartbeat instead of a hot loop.
const (
	resubscribeDelay    = 50 * time.Millisecond
	maxResubscribeDelay = 5 * time.Second
)

// nextResubscribeDelay implements that backoff.
func nextResubscribeDelay(cur time.Duration) time.Duration {
	if cur *= 2; cur > maxResubscribeDelay {
		return maxResubscribeDelay
	}
	return cur
}

// notifier multiplexes every /changes long-poll onto one change-stream
// subscription. Pollers wait on a broadcast channel that is closed (and
// replaced) whenever the stream moves; parking and waking a poller is
// a channel receive, with no per-request changefeed attach/detach — the
// churn that made each idle poll cost a subscription under the old
// per-request scheme.
type notifier struct {
	source   netcoord.ChangeSource
	shutdown <-chan struct{}

	mu  sync.Mutex
	cur chan struct{}
}

func newNotifier(source netcoord.ChangeSource, shutdown <-chan struct{}) *notifier {
	n := &notifier{
		source:   source,
		shutdown: shutdown,
		cur:      make(chan struct{}),
	}
	go n.run()
	return n
}

// wait returns the channel the next broadcast will close. Grab it
// *before* checking ChangeSeq: an event landing between the check and
// the park then still wakes the waiter.
func (n *notifier) wait() <-chan struct{} {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cur
}

// wake closes the current broadcast channel and installs a fresh one.
func (n *notifier) wake() {
	n.mu.Lock()
	close(n.cur)
	n.cur = make(chan struct{})
	n.mu.Unlock()
}

// run drains the stream for the server's lifetime, re-subscribing when
// the subscription closes (relay reset, registry close). A closed
// subscription also broadcasts: parked pollers re-check the stream
// position rather than sleeping through a reset.
func (n *notifier) run() {
	delay := resubscribeDelay
	first := true
	for {
		sub, err := n.source.SubscribeChanges(1)
		if err != nil {
			return // stream disabled: pollers run down their deadlines
		}
		// A wake signal, not a consumer: its inevitable buffer drops
		// must not pollute the overflow metrics real subscribers use
		// to detect loss.
		sub.MarkSignal()
		if !first {
			// Events relayed while we were unsubscribed were never
			// broadcast; wake the parked pollers so they re-check the
			// stream position instead of sleeping to their deadlines.
			n.wake()
		}
		first = false
		if n.drain(sub) {
			delay = resubscribeDelay
		} else {
			delay = nextResubscribeDelay(delay)
		}
		sub.Close()
		n.wake()
		select {
		case <-n.shutdown:
			return
		case <-time.After(delay):
		}
	}
}

// drain broadcasts until the subscription closes or the server stops,
// reporting whether it delivered anything (a dead-on-arrival channel
// means the feed is closed, and the caller backs off).
func (n *notifier) drain(sub *netcoord.ChangeSubscription) (sawEvent bool) {
	for {
		select {
		case <-n.shutdown:
			return sawEvent
		case _, ok := <-sub.C():
			if !ok {
				return sawEvent
			}
			sawEvent = true
			n.wake()
		}
	}
}

// handleChanges tails the change stream: everything after ?since=,
// long-polling up to ?wait= when the stream is quiet. History older
// than the ring is replayed from the WAL when the registry is
// persistent; beyond that, 410 tells the client to re-bootstrap from
// /snapshot (on a follower, sequences — like the events themselves —
// are the leader's, so a client can move between tiers freely).
func (s *Server) handleChanges(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	since, err := strconv.ParseUint(q.Get("since"), 10, 64)
	if q.Get("since") == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing since parameter (use seq from /snapshot, /stats, or a mutation response; 0 = from the beginning)"))
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad since: %w", err))
		return
	}
	limit := defaultChangesLimit
	if raw := q.Get("limit"); raw != "" {
		limit, err = strconv.Atoi(raw)
		if err != nil || limit < 1 || limit > maxChangesLimit {
			writeError(w, http.StatusBadRequest, fmt.Errorf("limit must be an integer in [1, %d]", maxChangesLimit))
			return
		}
	}
	var wait time.Duration
	if raw := q.Get("wait"); raw != "" {
		wait, err = time.ParseDuration(raw)
		if err != nil || wait < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad wait: %v", raw))
			return
		}
		if wait > maxChangesWait {
			wait = maxChangesWait
		}
	}
	frames := wantsFrames(req)
	deadline := time.Now().Add(wait)
	for {
		evs, err := s.source.ChangesSince(since, limit)
		if errors.Is(err, netcoord.ErrChangeHistoryTruncated) {
			writeError(w, http.StatusGone, fmt.Errorf("%v; %v", err, errGone))
			return
		}
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if len(evs) > 0 || wait <= 0 || !time.Now().Before(deadline) {
			// epoch is the body-level fencing signal: a follower polling
			// a deposed leader detects the stale epoch here even when the
			// batch is empty, and rotates to a live upstream.
			if frames {
				s.writeFrameBatch(w, evs)
			} else {
				writeJSON(w, http.StatusOK, map[string]any{"seq": s.source.ChangeSeq(), "epoch": s.source.ChangeEpoch(), "events": evs})
			}
			return
		}
		if !s.waitForChange(req, since, deadline) {
			// Client went away, or shutdown/deadline: answer with what
			// there is (nothing) so long-poll loops stay simple.
			if frames {
				s.writeFrameBatch(w, nil)
			} else {
				writeJSON(w, http.StatusOK, map[string]any{"seq": s.source.ChangeSeq(), "epoch": s.source.ChangeEpoch(), "events": []netcoord.ChangeEvent{}})
			}
			return
		}
	}
}

// wantsFrames reports whether the client negotiated the binary frame
// encoding for /changes: an Accept header naming the frames media type,
// or ?format=frames for clients that cannot set headers. Anything else
// gets JSON — the negotiation is opt-in per request, so mixed-protocol
// trees work hop by hop.
func wantsFrames(req *http.Request) bool {
	return strings.Contains(req.Header.Get("Accept"), wire.ContentTypeFrames) ||
		req.URL.Query().Get("format") == "frames"
}

// writeFrameBatch answers a /changes poll in the binary encoding: a
// batch header carrying the seq/epoch fencing pair, then one frame per
// event. Events that already carry their encoded form (published since
// the stream gained subscribers, or relayed in from a binary upstream)
// are served as a copy of those bytes — the encode happened once,
// upstream or at publish, and this handler concatenates.
func (s *Server) writeFrameBatch(w http.ResponseWriter, evs []netcoord.ChangeEvent) {
	hdr := wire.BatchHeader{Seq: s.source.ChangeSeq(), Epoch: s.source.ChangeEpoch(), Count: uint64(len(evs))}
	buf := wire.AppendBatchHeader(make([]byte, 0, 64+96*len(evs)), hdr)
	var err error
	for i := range evs {
		if buf, err = evs[i].AppendFrameTo(buf); err != nil {
			// Impossible for ring-served events (every op a feed accepts
			// has a frame encoding); fail loudly rather than send a
			// truncated batch the client would decode as damage.
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	w.Header().Set("Content-Type", wire.ContentTypeFrames)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf)
	s.framesServed.Add(uint64(len(evs)))
}

// waitForChange parks on the shared broadcast until the stream moves
// past since, the client disconnects, shutdown begins, or the deadline
// passes. It reports whether a new event may be available. Wakeups can
// be spurious (any event broadcasts, including ones at or below since
// on a relay); the caller re-reads and re-parks, which is cheap now
// that parking attaches nothing.
func (s *Server) waitForChange(req *http.Request, since uint64, deadline time.Time) bool {
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	for {
		ch := s.notifier.wait()
		// Re-check after grabbing the channel: an event published
		// between the caller's empty read and this park broadcast on a
		// channel nobody held — the seq check is what can't miss it.
		if s.source.ChangeSeq() > since {
			return true
		}
		select {
		case <-ch:
			if s.source.ChangeSeq() > since {
				return true
			}
		case <-timer.C:
			return false
		case <-req.Context().Done():
			return false
		case <-s.shutdown:
			return false
		}
	}
}
