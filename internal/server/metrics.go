package server

import (
	"net/http"
	"time"

	"netcoord"
	"netcoord/internal/telemetry"
)

// serverMetrics is the server's instrument set: owned HTTP instruments
// mutated by the middleware, plus func-bridged collectors that pull
// each subsystem's own counters at scrape time (so the hot paths pay
// only what they already paid to keep their stats).
//
// All durations are exported in seconds (observed internally in
// nanoseconds) and every metric carries the netcoord_ prefix.
type serverMetrics struct {
	registry *telemetry.Registry
	inflight *telemetry.Gauge
}

// routeMetrics is one endpoint's HTTP instrument set, created at route
// registration so the per-request path is lookup-free.
type routeMetrics struct {
	// requests indexes counters by status class (requests[2] = 2xx);
	// class 0 counts responses with an unparseable status.
	requests [6]*telemetry.Counter
	latency  *telemetry.Histogram
	bytesIn  *telemetry.Counter
	bytesOut *telemetry.Counter
}

// newServerMetrics wires the owned HTTP instruments into reg.
func newServerMetrics(reg *telemetry.Registry) *serverMetrics {
	return &serverMetrics{
		registry: reg,
		inflight: reg.Gauge("netcoord_http_inflight_requests",
			"Requests currently being served (long-lived /watch and /changes long-polls included).", nil),
	}
}

// route builds the per-endpoint instruments for one route label.
func (m *serverMetrics) route(route string) *routeMetrics {
	rm := &routeMetrics{
		latency: m.registry.Histogram("netcoord_http_request_seconds",
			"HTTP request latency by route (includes the held-open time of streaming endpoints).",
			telemetry.Labels{"route": route}, 1e-9),
		bytesIn: m.registry.Counter("netcoord_http_request_bytes_total",
			"Request body bytes received by route (from Content-Length).",
			telemetry.Labels{"route": route}),
		bytesOut: m.registry.Counter("netcoord_http_response_bytes_total",
			"Response body bytes written by route.",
			telemetry.Labels{"route": route}),
	}
	for class := 1; class <= 5; class++ {
		rm.requests[class] = m.registry.Counter("netcoord_http_requests_total",
			"HTTP requests completed by route and status class.",
			telemetry.Labels{"route": route, "class": statusClasses[class]})
	}
	rm.requests[0] = rm.requests[5] // unclassifiable counts as server error
	return rm
}

var statusClasses = [6]string{"", "1xx", "2xx", "3xx", "4xx", "5xx"}

// metricsResponseWriter counts bytes and captures the status code.
type metricsResponseWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *metricsResponseWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *metricsResponseWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// flushingResponseWriter adds Flusher passthrough; the SSE /watch
// handler type-asserts http.Flusher and must still find it through the
// wrapper.
type flushingResponseWriter struct {
	metricsResponseWriter
	fl http.Flusher
}

func (w *flushingResponseWriter) Flush() { w.fl.Flush() }

// instrument wraps a handler with the route's HTTP metrics: request
// count by status class, latency, inflight, and bytes both ways.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	rm := s.met.route(route)
	return func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		s.met.inflight.Add(1)
		if req.ContentLength > 0 {
			rm.bytesIn.Add(uint64(req.ContentLength))
		}
		mw := &metricsResponseWriter{ResponseWriter: w}
		wrapped := http.ResponseWriter(mw)
		if fl, ok := w.(http.Flusher); ok {
			fw := &flushingResponseWriter{fl: fl}
			fw.ResponseWriter = w
			wrapped = fw
			mw = &fw.metricsResponseWriter
		}
		defer func() {
			s.met.inflight.Add(-1)
			rm.latency.Observe(time.Since(start).Nanoseconds())
			rm.bytesOut.Add(uint64(mw.bytes))
			class := mw.status / 100
			if class < 1 || class > 5 {
				class = 0
			}
			rm.requests[class].Inc()
		}()
		h(wrapped, req)
	}
}

// registerCollectors bridges every subsystem's stats into the metrics
// registry. Bridged instruments cost nothing until /metrics is
// scraped; the subsystems keep their counters exactly as before.
func (s *Server) registerCollectors() {
	reg := s.met.registry

	reg.GaugeFunc("netcoord_registry_entries",
		"Live entries in the registry.", nil,
		func() float64 { return float64(s.reg.Len()) })
	reg.GaugeFunc("netcoord_uptime_seconds",
		"Seconds since this server was built.", nil,
		func() float64 { return time.Since(s.started).Seconds() })

	// Change stream (the leader's own feed, or a follower's relay).
	cs := func(f func(netcoord.ChangeStreamStats) float64) func() float64 {
		return func() float64 { return f(s.source.ChangeStreamStats()) }
	}
	reg.GaugeFunc("netcoord_changefeed_seq",
		"Last assigned change-stream sequence number.", nil,
		cs(func(st netcoord.ChangeStreamStats) float64 { return float64(st.Seq) }))
	reg.GaugeFunc("netcoord_changefeed_epoch",
		"Fencing epoch of the stream this process serves (bumped on promotion).", nil,
		cs(func(st netcoord.ChangeStreamStats) float64 { return float64(st.Epoch) }))
	reg.CounterFunc("netcoord_changefeed_rejected_stale_epoch_total",
		"Events refused by this process's feed because they carried a stale fencing epoch.", nil,
		func() uint64 { return s.source.ChangeStreamStats().RejectedStaleEpoch })
	reg.CounterFunc("netcoord_changefeed_published_total",
		"Change events published by this process (relayed events included on a follower).", nil,
		func() uint64 { return s.source.ChangeStreamStats().Published })
	reg.GaugeFunc("netcoord_changefeed_subscribers",
		"Live change-stream subscriptions.", nil,
		cs(func(st netcoord.ChangeStreamStats) float64 { return float64(st.Subscribers) }))
	reg.CounterFunc("netcoord_changefeed_overflows_total",
		"Events dropped across all subscribers because their buffers were full.", nil,
		func() uint64 { return s.source.ChangeStreamStats().Overflows })
	reg.CounterFunc("netcoord_changefeed_coalesced_total",
		"Same-id heartbeat events collapsed into their newer successor during delivery storms (labelled skips, not loss — distinct from overflows).", nil,
		func() uint64 { return s.source.ChangeStreamStats().Coalesced })
	reg.CounterFunc("netcoord_changefeed_frames_served_total",
		"Change events answered in the binary frame encoding on /changes.", nil,
		func() uint64 { return s.framesServed.Load() })
	reg.GaugeFunc("netcoord_changefeed_ring_events",
		"Catch-up ring occupancy (events currently buffered).", nil,
		cs(func(st netcoord.ChangeStreamStats) float64 { return float64(st.RingLen) }))
	reg.GaugeFunc("netcoord_changefeed_ring_capacity",
		"Catch-up ring capacity.", nil,
		cs(func(st netcoord.ChangeStreamStats) float64 { return float64(st.RingCap) }))
	reg.GaugeFunc("netcoord_changefeed_tombstones",
		"Tombstone ring occupancy (removal records currently remembered).", nil,
		cs(func(st netcoord.ChangeStreamStats) float64 { return float64(st.TombLen) }))
	reg.GaugeFunc("netcoord_changefeed_tombstone_floor",
		"Sequence below which removal knowledge is incomplete.", nil,
		cs(func(st netcoord.ChangeStreamStats) float64 { return float64(st.TombFloor) }))

	// Watch hub.
	hs := func(f func(WatchHubStats) float64) func() float64 {
		return func() float64 { return f(s.hub.Stats()) }
	}
	reg.GaugeFunc("netcoord_watch_watchers",
		"Live /watch subscribers registered with the hub.", nil,
		hs(func(st WatchHubStats) float64 { return float64(st.Watchers) }))
	reg.CounterFunc("netcoord_watch_events_total",
		"Stream events drained by the watch hub.", nil,
		func() uint64 { return s.hub.events.Load() })
	reg.CounterFunc("netcoord_watch_damages_total",
		"Watcher damage notifications routed by the hub (the fan-out actually paid).", nil,
		func() uint64 { return s.hub.damages.Load() })
	reg.CounterFunc("netcoord_watch_resyncs_total",
		"Conservative damage-everyone rounds after sequence gaps or re-subscribes.", nil,
		func() uint64 { return s.hub.resyncs.Load() })
	reg.CounterFunc("netcoord_watch_subscription_dropped_total",
		"Events the hub's own stream subscription lost to buffer overflow.", nil,
		func() uint64 { return s.hub.dropped.Load() })
	reg.CounterFunc("netcoord_watch_coalesced_skips_total",
		"Sequence numbers skipped under coalesce labels (explained gaps; no resync paid).", nil,
		func() uint64 { return s.hub.coalesced.Load() })
	reg.SummaryFunc("netcoord_watch_recompute_seconds",
		"Watcher recompute latency (query plus interest install).", nil, 1e-9,
		func() telemetry.Summary { return s.hub.recomputeLat.Summary() })
	reg.SummaryFunc("netcoord_watch_deliver_lag_seconds",
		"Publish-to-deliver propagation lag: origin publish stamp to the watcher recompute that absorbed the event.", nil, 1e-9,
		func() telemetry.Summary { return s.hub.deliverLag.Summary() })

	if s.follower != nil {
		f := s.follower
		reg.GaugeFunc("netcoord_follower_applied_seq",
			"Last leader sequence applied locally.", nil,
			func() float64 { return float64(f.AppliedSeq()) })
		reg.GaugeFunc("netcoord_follower_lag_events",
			"Known outstanding events behind the leader (leader seq minus applied seq).", nil,
			func() float64 { return float64(f.FollowerStats().Lag) })
		reg.CounterFunc("netcoord_follower_events_applied_total",
			"Stream events applied since start.", nil,
			func() uint64 { return f.FollowerStats().EventsApplied })
		reg.CounterFunc("netcoord_follower_frames_received_total",
			"Events that arrived in the binary frame encoding (zero when the upstream serves JSON).", nil,
			func() uint64 { return f.FollowerStats().FramesReceived })
		reg.CounterFunc("netcoord_follower_bootstraps_total",
			"Snapshot bootstraps (initial plus one per stream truncation).", nil,
			func() uint64 { return f.FollowerStats().Bootstraps })
		reg.CounterFunc("netcoord_follower_delta_bootstraps_total",
			"Bootstraps served as delta transfers.", nil,
			func() uint64 { return f.FollowerStats().DeltaBootstraps })
		reg.CounterFunc("netcoord_follower_errors_total",
			"Failed leader calls.", nil,
			func() uint64 { return f.FollowerStats().Errors })
		reg.CounterFunc("netcoord_follower_failovers_total",
			"Rotations to the next configured upstream.", nil,
			func() uint64 { return f.FollowerStats().Failovers })
		reg.CounterFunc("netcoord_follower_reconnects_total",
			"Successful resumptions after one or more upstream errors.", nil,
			func() uint64 { return f.FollowerStats().Reconnects })
		reg.CounterFunc("netcoord_follower_rejected_stale_epoch_total",
			"Upstream responses and events refused for carrying a stale fencing epoch.", nil,
			func() uint64 { return f.FollowerStats().RejectedStaleEpoch })
		reg.GaugeFunc("netcoord_follower_promoted",
			"1 once this replica has been promoted to leader.", nil,
			func() float64 {
				if f.Promoted() {
					return 1
				}
				return 0
			})
		reg.GaugeFunc("netcoord_follower_last_bootstrap_seconds",
			"Duration of the most recent snapshot bootstrap.", nil,
			func() float64 { return f.FollowerStats().LastBootstrapSeconds })
		reg.SummaryFunc("netcoord_follower_apply_lag_seconds",
			"Publish-to-apply propagation lag: origin publish stamp to local apply, for every stamped event.", nil, 1e-9,
			func() telemetry.Summary { return f.FollowerStats().ApplyLagNs })
	}

	if s.persist != nil {
		p := s.persist
		reg.CounterFunc("netcoord_persist_wal_records_total",
			"Records durably committed to the WAL since open.", nil,
			func() uint64 { return p.PersistStats().WALRecords })
		reg.GaugeFunc("netcoord_persist_wal_bytes",
			"Active WAL generation's size on disk (resets at compaction).", nil,
			func() float64 { return float64(p.PersistStats().WALBytes) })
		reg.CounterFunc("netcoord_persist_flushes_total",
			"Group commits performed.", nil,
			func() uint64 { return p.PersistStats().Flushes })
		reg.CounterFunc("netcoord_persist_syncs_total",
			"WAL fsyncs issued.", nil,
			func() uint64 { return p.PersistStats().Syncs })
		reg.CounterFunc("netcoord_persist_compactions_total",
			"Completed snapshot compactions.", nil,
			func() uint64 { return p.PersistStats().Compactions })
		reg.CounterFunc("netcoord_persist_compact_failures_total",
			"Compaction attempts that failed.", nil,
			func() uint64 { return p.PersistStats().CompactFailures })
		reg.CounterFunc("netcoord_persist_dropped_records_total",
			"Records discarded because the store had failed or closed.", nil,
			func() uint64 { return p.PersistStats().Dropped })
		reg.GaugeFunc("netcoord_persist_degraded",
			"1 when the store has a sticky I/O error and mutations are no longer logged.", nil,
			func() float64 {
				if p.Err() != nil {
					return 1
				}
				return 0
			})
		reg.SummaryFunc("netcoord_persist_fsync_seconds",
			"WAL fsync latency — the durability window's real-world floor.", nil, 1e-9,
			func() telemetry.Summary { return p.PersistStats().FsyncNs })
		reg.SummaryFunc("netcoord_persist_compaction_seconds",
			"Snapshot compaction duration.", nil, 1e-9,
			func() telemetry.Summary { return p.PersistStats().CompactionNs })
	}
}

// handleHealthz is the readiness probe. A leader (or standalone
// server) is ready while its WAL flusher is healthy: a sticky persist
// error means mutations are silently non-durable, and a load balancer
// should stop routing writers here. A follower is ready while it is
// bootstrapped and its replication lag stays under the configured
// bound — past it the replica serves reads staler than the operator
// tolerates and should be drained until it catches up.
func (s *Server) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if s.follower != nil && !s.promoted.Load() {
		st := s.follower.FollowerStats()
		body := map[string]any{
			"role":        "follower",
			"applied_seq": st.AppliedSeq,
			"leader_seq":  st.LeaderSeq,
			"lag":         st.Lag,
			"max_lag":     s.maxLag,
			"epoch":       st.Epoch,
		}
		switch {
		case st.Bootstraps == 0:
			body["status"] = "bootstrapping"
			writeJSON(w, http.StatusServiceUnavailable, body)
		case st.Lag > s.maxLag:
			body["status"] = "lagging"
			writeJSON(w, http.StatusServiceUnavailable, body)
		default:
			body["status"] = "ok"
			writeJSON(w, http.StatusOK, body)
		}
		return
	}
	body := map[string]any{"role": "leader", "status": "ok", "epoch": s.source.ChangeEpoch()}
	if s.follower != nil {
		// A promoted follower reports as leader, flagged so an operator
		// can tell a born leader from a failover survivor.
		body["promoted"] = true
	}
	if s.persist != nil {
		if err := s.persist.Err(); err != nil {
			body["status"] = "degraded"
			body["error"] = err.Error()
			writeJSON(w, http.StatusServiceUnavailable, body)
			return
		}
	}
	writeJSON(w, http.StatusOK, body)
}
