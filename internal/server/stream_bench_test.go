package server

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"netcoord"
)

// BenchmarkFollowerCatchup measures a replica catching up from nothing
// over HTTP: /snapshot fetch, JSON decode, and the bulk index build —
// the time from `ncserve -follow` starting to the replica serving warm
// reads of a 10k-entry leader.
func BenchmarkFollowerCatchup(b *testing.B) {
	reg, err := netcoord.NewRegistry(netcoord.RegistryConfig{
		ChangeStreamBuffer: netcoord.DefaultChangeStreamBuffer,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer reg.Close()
	srv := New(Config{Registry: reg, Source: reg})
	defer srv.Stop()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const entries = 10_000
	batch := make([]netcoord.RegistryEntry, entries)
	for i := range batch {
		batch[i] = netcoord.RegistryEntry{
			ID:    fmt.Sprintf("node-%05d", i),
			Coord: netcoord.Coordinate{Vec: []float64{float64(i % 997), float64(i % 601), float64(i % 251)}},
			Error: 0.2,
		}
	}
	if err := reg.UpsertBatch(batch); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := netcoord.StartFollower(netcoord.FollowerConfig{
			LeaderURL:   ts.URL,
			WaitTimeout: 50 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		if f.Len() != entries {
			b.Fatalf("follower loaded %d entries, want %d", f.Len(), entries)
		}
		b.StopTimer()
		f.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(entries)*float64(b.N)/b.Elapsed().Seconds(), "entries/s")
}
