package server

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"netcoord"
	"netcoord/internal/telemetry"
)

// hubSubBuffer is the watch hub's single subscription buffer. Overflow
// is not loss: the resulting sequence gap damages every watcher, which
// recomputes from live state.
const hubSubBuffer = 4096

// hubReconcileInterval paces the trailing-drop check. A gap is
// normally detected by the NEXT event's non-contiguous sequence — but
// if the dropped event was a storm's last and the stream then goes
// quiet, no next event ever comes, and without this check every
// watcher would serve a stale top-k indefinitely.
const hubReconcileInterval = time.Second

// maxGridLevel bounds the damage map's cell hierarchy; a watch radius
// past 2^maxGridLevel ms falls back to the any-upsert set.
const maxGridLevel = 40

// WatchHub multiplexes every /watch onto ONE change-stream
// subscription. The old scheme attached a private subscription per
// watcher and ran a relevance check in every watcher against every
// mutation: N watchers cost N buffer offers plus N checks per event.
// The hub inverts that: a single drain goroutine routes each event
// through a spatial damage map to just the watchers it could affect,
// so the per-mutation cost is one subscription offer plus O(damaged).
//
// The damage map has three indexes, consulted by event shape:
//
//   - byID: watchers whose current top-k contains the id, or who watch
//     it as their origin. Removes and evictions damage only through
//     here — deleting a node that is in nobody's top-k changes nobody's
//     top-k. Upserts of a known id are filtered further: an unchanged
//     coordinate (the TTL heartbeat, the overwhelmingly common event)
//     moves no distances and damages nothing.
//   - the cell grid: a hierarchy of power-of-two grids over the first
//     three coordinate axes. A watcher with a full top-k can only be
//     affected by an upsert landing within its k-th distance, so it
//     registers over the (at most 2^3) cells its interest ball overlaps
//     at the level whose cell side first reaches the ball's diameter.
//     An upsert then probes exactly one cell per occupied level and
//     distance-checks the few watchers found there. Grid coordinates
//     use the plain vector axes; the true distance (which adds the
//     non-negative heights) only exceeds it, so the probe over-triggers
//     but never misses.
//   - the any-upsert set: watchers whose top-k is not yet full (any
//     insert enters it) or whose interest is not yet registered; every
//     upsert damages them.
//
// A sequence gap — subscriber overflow, a relay reset after a follower
// re-bootstrap, a WAL-chunked eviction — conservatively damages every
// watcher: correctness never depends on the stream being gapless.
type WatchHub struct {
	source   netcoord.ChangeSource
	shutdown <-chan struct{}

	// processed is the last drained sequence; watchers compare it to
	// decide whether their interest was installed race-free. Written
	// under mu, read anywhere.
	processed atomic.Uint64

	events    atomic.Uint64
	damages   atomic.Uint64
	resyncs   atomic.Uint64
	dropped   atomic.Uint64
	coalesced atomic.Uint64

	// recomputeLat times each watcher recompute (query + interest
	// install); deliverLag is publish→deliver propagation: for every
	// damaging event carrying an origin publish stamp, the wall-clock
	// nanoseconds until a watcher's recompute reflected it — the full
	// leader→(relays)→watcher path.
	recomputeLat *telemetry.Histogram
	deliverLag   *telemetry.Histogram

	mu        sync.Mutex
	disabled  bool
	watchers  map[*HubWatcher]struct{}
	byID      map[string]map[*HubWatcher]struct{}
	anyOp     map[*HubWatcher]struct{} // immature: damaged by any event
	anyUpsert map[*HubWatcher]struct{} // mature, top-k not full
	cells     map[cellKey][]*HubWatcher
	levels    map[uint8]int // watcher-cell registrations per level
}

// WatchHubStats is the hub's operational snapshot, served in /stats.
type WatchHubStats struct {
	// Enabled is false when the underlying change stream is disabled.
	Enabled bool `json:"enabled"`
	// Watchers is the live watcher count; Cells the registrations in
	// the spatial damage map across Levels occupied grid levels.
	Watchers int `json:"watchers"`
	Cells    int `json:"cells"`
	Levels   int `json:"levels"`
	// EventsProcessed counts drained stream events; Damages the watcher
	// notifications they caused (the fan-out actually paid, vs
	// EventsProcessed × Watchers under per-watcher subscriptions);
	// Resyncs the conservative damage-everyone rounds after a sequence
	// gap or a re-subscribe.
	EventsProcessed uint64 `json:"events_processed"`
	Damages         uint64 `json:"damages"`
	Resyncs         uint64 `json:"resyncs"`
	// SubscriptionDropped counts events the hub's own stream
	// subscription lost to buffer overflow (each detected drop run also
	// shows up as one resync).
	SubscriptionDropped uint64 `json:"subscription_dropped"`
	// CoalescedSkipped counts sequence numbers skipped under coalesce
	// labels: the feed collapsed same-id heartbeats and told us so, so
	// the gap damages only the survivor's id instead of everyone.
	CoalescedSkipped uint64 `json:"coalesced_skipped"`
	// ProcessedSeq is the hub's position in the stream.
	ProcessedSeq uint64 `json:"processed_seq"`
	// RecomputeNs summarizes watcher recompute latency (query +
	// interest install); DeliverLagNs summarizes publish→deliver
	// propagation lag for stamped events.
	RecomputeNs  telemetry.Summary `json:"recompute_ns"`
	DeliverLagNs telemetry.Summary `json:"deliver_lag_ns"`
}

// HubWatcher is one /watch registered with the hub. The handler waits
// on C, recomputes its top-k when woken, and reinstalls its interest
// with SetInterest.
type HubWatcher struct {
	notify    chan struct{}
	damageSeq atomic.Uint64
	// pendingPubNs is the origin publish stamp of the OLDEST damaging
	// event not yet reflected by a recompute (0 = none pending). Keeping
	// the oldest makes the deliver-lag reading conservative: a coalesced
	// burst reports the wait of the event that waited longest.
	pendingPubNs atomic.Int64

	// The fields below are guarded by the hub's mu.
	watchID  string
	origin   netcoord.Coordinate
	members  map[string]netcoord.Coordinate
	kth      float64
	full     bool
	immature bool
	detached bool
	cells    []cellKey
	joinSeq  uint64
}

// C signals damage: at least one event since the last SetInterest may
// have changed this watcher's top-k. Signals coalesce (the channel
// holds one), so a burst costs one recompute.
func (w *HubWatcher) C() <-chan struct{} { return w.notify }

// DamageSeq is the highest stream sequence that damaged this watcher.
func (w *HubWatcher) DamageSeq() uint64 { return w.damageSeq.Load() }

// JoinSeq is the hub's stream position when the watcher registered:
// the sequence its initial query is guaranteed to cover or be damaged
// past.
func (w *HubWatcher) JoinSeq() uint64 { return w.joinSeq }

// cellKey addresses one cell of the damage map: a grid level (cell
// side 2^level) and the cell's integer coordinates on the first three
// vector axes.
type cellKey struct {
	level   uint8
	x, y, z int32
}

func newWatchHub(source netcoord.ChangeSource, shutdown <-chan struct{}) *WatchHub {
	h := &WatchHub{
		source:    source,
		shutdown:  shutdown,
		watchers:  make(map[*HubWatcher]struct{}),
		byID:      make(map[string]map[*HubWatcher]struct{}),
		anyOp:     make(map[*HubWatcher]struct{}),
		anyUpsert: make(map[*HubWatcher]struct{}),
		cells:     make(map[cellKey][]*HubWatcher),
		levels:    make(map[uint8]int),

		recomputeLat: telemetry.NewHistogram(),
		deliverLag:   telemetry.NewHistogram(),
	}
	// Subscribe synchronously so Watch can report a disabled stream
	// rather than racing the drain goroutine's first attach.
	sub, err := source.SubscribeChanges(hubSubBuffer)
	if err != nil {
		h.disabled = true
		return h
	}
	h.processed.Store(sub.JoinSeq())
	go h.run(sub)
	return h
}

// run drains the stream for the server's lifetime. A closed
// subscription (registry close, or a follower relay reset after
// re-bootstrap) is re-attached after a beat, and the gap is repaired by
// damaging every watcher — their registries may have been rewritten
// wholesale underneath them.
func (h *WatchHub) run(sub *netcoord.ChangeSubscription) {
	delay := resubscribeDelay
	sawEvent := false
	droppedSeen := uint64(0)
	reconcile := time.NewTicker(hubReconcileInterval)
	defer reconcile.Stop()
	for {
		if sub == nil {
			// Back off while the feed keeps handing out dead
			// subscriptions (a closed registry shows up as an
			// immediately closed channel, not an error): a damage-all
			// heartbeat every few seconds instead of a hot loop waking
			// every watcher into a recompute 20 times a second.
			if sawEvent {
				delay = resubscribeDelay
			} else {
				delay = nextResubscribeDelay(delay)
			}
			select {
			case <-h.shutdown:
				return
			case <-time.After(delay):
			}
			var err error
			sub, err = h.source.SubscribeChanges(hubSubBuffer)
			if err != nil {
				h.mu.Lock()
				h.disabled = true
				h.mu.Unlock()
				return
			}
			sawEvent = false
			droppedSeen = 0
			h.mu.Lock()
			h.processed.Store(sub.JoinSeq())
			h.resyncs.Add(1)
			for w := range h.watchers {
				h.damageLocked(w, sub.JoinSeq(), 0)
			}
			h.mu.Unlock()
		}
		select {
		case <-h.shutdown:
			sub.Close()
			return
		case ev, ok := <-sub.C():
			if !ok {
				sub = nil
				continue
			}
			sawEvent = true
			if h.processEvent(ev) {
				// The gap just got repaired by a damage-all; the drops
				// behind it are accounted for.
				if d := sub.Dropped(); d > droppedSeen {
					h.dropped.Add(d - droppedSeen)
					droppedSeen = d
				}
			}
		case <-reconcile.C:
			// Trailing-drop check: drops whose gap no later event has
			// surfaced (the buffer overflowed on a storm's final
			// events, then the stream went quiet) leave processed
			// behind the stream with nothing left to deliver. Repair
			// exactly like a detected gap: jump to the stream position
			// and damage everyone.
			if d := sub.Dropped(); d > droppedSeen {
				h.dropped.Add(d - droppedSeen)
				droppedSeen = d
				seqNow := h.source.ChangeSeq()
				h.mu.Lock()
				if seqNow > h.processed.Load() {
					h.processed.Store(seqNow)
					h.resyncs.Add(1)
					for w := range h.watchers {
						h.damageLocked(w, seqNow, 0)
					}
				}
				h.mu.Unlock()
			}
		}
	}
}

// processEvent routes one stream event through the damage map and
// reports whether it found (and repaired) a sequence gap.
func (h *WatchHub) processEvent(ev netcoord.ChangeEvent) (gap bool) {
	h.events.Add(1)
	h.mu.Lock()
	defer h.mu.Unlock()
	last := h.processed.Load()
	if ev.Seq > last {
		// Never regress: a reconcile jump may already sit ahead of a
		// still-buffered event.
		h.processed.Store(ev.Seq)
	}
	if ev.Seq != last+1+ev.Coalesced {
		// Dropped or duplicated sequence: the filter state cannot be
		// trusted, so everyone recomputes from live state.
		h.resyncs.Add(1)
		for w := range h.watchers {
			h.damageLocked(w, ev.Seq, ev.PubNs)
		}
		return true
	}
	if ev.Coalesced > 0 {
		// A labelled gap: the feed collapsed ev.Coalesced same-id
		// heartbeats into this survivor. The skipped events were older
		// states of the same id, so damaging with the survivor covers
		// them — no resync needed.
		h.coalesced.Add(ev.Coalesced)
	}
	for w := range h.anyOp {
		h.damageLocked(w, ev.Seq, ev.PubNs)
	}
	switch ev.Op {
	case netcoord.ChangeUpsert:
		if ev.Entry == nil {
			for w := range h.watchers {
				h.damageLocked(w, ev.Seq, ev.PubNs)
			}
			return false
		}
		h.damageUpsertLocked(ev.Entry.ID, ev.Entry.Coord, ev.Seq, ev.PubNs)
	case netcoord.ChangeRemove:
		for w := range h.byID[ev.ID] {
			h.damageLocked(w, ev.Seq, ev.PubNs)
		}
	case netcoord.ChangeEvict:
		for _, id := range ev.IDs {
			for w := range h.byID[id] {
				h.damageLocked(w, ev.Seq, ev.PubNs)
			}
		}
	default:
		// Unknown op: be conservative.
		for w := range h.watchers {
			h.damageLocked(w, ev.Seq, ev.PubNs)
		}
	}
	return false
}

// damageUpsertLocked damages the watchers an upsert at coordinate c
// could affect: known-id watchers (unless the coordinate is unchanged —
// a heartbeat moves nothing), not-yet-full watchers, and grid watchers
// whose interest ball contains c.
//
//nc:locked(mu)
func (h *WatchHub) damageUpsertLocked(id string, c netcoord.Coordinate, seq uint64, pubNs int64) {
	for w := range h.byID[id] {
		if id == w.watchID {
			if c.Equal(w.origin) {
				continue // heartbeat refresh of the watched origin
			}
		} else if mc, ok := w.members[id]; ok && c.Equal(mc) {
			continue // heartbeat refresh of a current member
		}
		h.damageLocked(w, seq, pubNs)
	}
	for w := range h.anyUpsert {
		h.damageLocked(w, seq, pubNs)
	}
	for level := range h.levels {
		for _, w := range h.cells[cellAt(c, level)] {
			if w.watchID == id {
				continue // byID owns the origin's own events
			}
			if _, isMember := w.members[id]; isMember {
				continue // byID owns member events
			}
			if d, err := w.origin.DistanceTo(c); err == nil && d <= w.kth {
				h.damageLocked(w, seq, pubNs)
			}
		}
	}
}

// damage wakes one watcher from outside the drain loop — the handler
// uses it to carry racing damage across a capped sync loop.
func (h *WatchHub) damage(w *HubWatcher, seq uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.damageLocked(w, seq, 0)
}

// damageLocked records the damaging sequence and wakes the watcher.
// pubNs, when nonzero, is the damaging event's origin publish stamp;
// the oldest pending stamp is kept so deliver-lag measures the longest
// wait in a coalesced burst.
//
//nc:locked(mu)
func (h *WatchHub) damageLocked(w *HubWatcher, seq uint64, pubNs int64) {
	if seq > w.damageSeq.Load() {
		w.damageSeq.Store(seq)
	}
	if pubNs > 0 {
		w.pendingPubNs.CompareAndSwap(0, pubNs)
	}
	h.damages.Add(1)
	select {
	case w.notify <- struct{}{}:
	default:
	}
}

// observeRecompute records one watcher recompute's latency.
func (h *WatchHub) observeRecompute(d time.Duration) {
	h.recomputeLat.Observe(d.Nanoseconds())
}

// Processed is the hub's stream position. A handler that reads it
// before a recompute and finds SetInterest returning the same value
// knows no event was filtered against its stale interest in between.
func (h *WatchHub) Processed() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.processed.Load()
}

// Watch registers a watcher. Until its first SetInterest it is
// "immature": damaged by every event, because nothing is known about
// what could affect it — which is exactly what closes the gap between
// registration and the handler's initial query.
func (h *WatchHub) Watch(watchID string) (*HubWatcher, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.disabled {
		return nil, errStreamUnavailable
	}
	w := &HubWatcher{
		notify:   make(chan struct{}, 1),
		watchID:  watchID,
		kth:      math.Inf(1),
		immature: true,
	}
	h.watchers[w] = struct{}{}
	h.anyOp[w] = struct{}{}
	if watchID != "" {
		h.addByIDLocked(watchID, w)
	}
	w.joinSeq = h.processed.Load()
	return w, nil
}

// SetInterest installs what the watcher now cares about — the origin
// it measures from, its current top-k membership (with coordinates, so
// member heartbeats filter), and the implied k-th distance ball — and
// returns the hub's stream position at install time. The caller
// compares it against Processed() read before its query: a difference
// means events were routed against the previous interest while the
// query ran, and the only safe response is to recompute again.
func (h *WatchHub) SetInterest(w *HubWatcher, origin netcoord.Coordinate, results []netcoord.Ranked, k int) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if w.detached {
		return h.processed.Load()
	}
	h.clearInterestLocked(w)
	w.immature = false
	w.origin = origin
	w.members = make(map[string]netcoord.Coordinate, len(results))
	for _, r := range results {
		w.members[r.ID] = r.Coord
		h.addByIDLocked(r.ID, w)
	}
	if w.watchID != "" {
		h.addByIDLocked(w.watchID, w)
	}
	w.full = k > 0 && len(results) == k
	if w.full {
		w.kth = results[len(results)-1].EstimatedRTT
	} else {
		w.kth = math.Inf(1)
	}
	if level, ok := levelFor(w.kth); w.full && ok {
		w.cells = coverCells(origin, w.kth, level, w.cells[:0])
		for _, key := range w.cells {
			h.cells[key] = append(h.cells[key], w)
		}
		h.levels[level] += len(w.cells)
	} else {
		// Radius unbounded (or absurd): any upsert may matter.
		h.anyUpsert[w] = struct{}{}
	}
	return h.processed.Load()
}

// Detach unregisters the watcher; its channel stops receiving.
func (h *WatchHub) Detach(w *HubWatcher) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if w.detached {
		return
	}
	h.clearInterestLocked(w)
	if w.watchID != "" {
		h.dropByIDLocked(w.watchID, w)
	}
	delete(h.watchers, w)
	delete(h.anyOp, w)
	w.detached = true
}

// clearInterestLocked removes the watcher's member, grid, and
// any-upsert registrations (the permanent watchID registration stays
// until Detach; SetInterest re-adds it idempotently).
//
//nc:locked(mu)
func (h *WatchHub) clearInterestLocked(w *HubWatcher) {
	for id := range w.members {
		h.dropByIDLocked(id, w)
	}
	for _, key := range w.cells {
		bucket := h.cells[key]
		for i, cand := range bucket {
			if cand == w {
				bucket[i] = bucket[len(bucket)-1]
				bucket = bucket[:len(bucket)-1]
				break
			}
		}
		if len(bucket) == 0 {
			delete(h.cells, key)
		} else {
			h.cells[key] = bucket
		}
		if h.levels[key.level]--; h.levels[key.level] == 0 {
			delete(h.levels, key.level)
		}
	}
	w.cells = w.cells[:0]
	delete(h.anyUpsert, w)
	delete(h.anyOp, w)
}

// addByIDLocked registers w under id; the caller holds h.mu.
//
//nc:locked(mu)
func (h *WatchHub) addByIDLocked(id string, w *HubWatcher) {
	set := h.byID[id]
	if set == nil {
		set = make(map[*HubWatcher]struct{})
		h.byID[id] = set
	}
	set[w] = struct{}{}
}

// dropByIDLocked unregisters w from id; the caller holds h.mu.
//
//nc:locked(mu)
func (h *WatchHub) dropByIDLocked(id string, w *HubWatcher) {
	if set, ok := h.byID[id]; ok {
		delete(set, w)
		if len(set) == 0 {
			delete(h.byID, id)
		}
	}
}

// Stats snapshots the hub's counters.
func (h *WatchHub) Stats() WatchHubStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	cells := 0
	for _, n := range h.levels {
		cells += n
	}
	return WatchHubStats{
		Enabled:             !h.disabled,
		Watchers:            len(h.watchers),
		Cells:               cells,
		Levels:              len(h.levels),
		EventsProcessed:     h.events.Load(),
		Damages:             h.damages.Load(),
		Resyncs:             h.resyncs.Load(),
		SubscriptionDropped: h.dropped.Load(),
		CoalescedSkipped:    h.coalesced.Load(),
		ProcessedSeq:        h.processed.Load(),
		RecomputeNs:         h.recomputeLat.Summary(),
		DeliverLagNs:        h.deliverLag.Summary(),
	}
}

// levelFor picks the grid level whose cell side (2^level) first
// reaches the interest ball's diameter, so the ball overlaps at most
// two cells per axis.
func levelFor(r float64) (uint8, bool) {
	if r < 0 || math.IsNaN(r) || math.IsInf(r, 1) {
		return 0, false
	}
	level := uint8(0)
	for float64(uint64(1)<<level) < 2*r {
		if level++; level > maxGridLevel {
			return 0, false
		}
	}
	return level, true
}

// cellAt addresses the cell containing c at a level. Only the first
// three vector axes key the grid; missing axes read as zero.
func cellAt(c netcoord.Coordinate, level uint8) cellKey {
	cs := float64(uint64(1) << level)
	key := cellKey{level: level}
	key.x = cellIdx(axis(c, 0) / cs)
	key.y = cellIdx(axis(c, 1) / cs)
	key.z = cellIdx(axis(c, 2) / cs)
	return key
}

// coverCells appends the cells a ball (origin, r) overlaps at a level —
// at most 2 per axis, 8 total, by levelFor's choice of cell side.
func coverCells(origin netcoord.Coordinate, r float64, level uint8, buf []cellKey) []cellKey {
	cs := float64(uint64(1) << level)
	var lo, hi [3]int32
	for i := 0; i < 3; i++ {
		v := axis(origin, i)
		lo[i] = cellIdx((v - r) / cs)
		hi[i] = cellIdx((v + r) / cs)
	}
	for x := lo[0]; x <= hi[0]; x++ {
		for y := lo[1]; y <= hi[1]; y++ {
			for z := lo[2]; z <= hi[2]; z++ {
				buf = append(buf, cellKey{level: level, x: x, y: y, z: z})
			}
		}
	}
	return buf
}

func axis(c netcoord.Coordinate, i int) float64 {
	if i < len(c.Vec) {
		return c.Vec[i]
	}
	return 0
}

// cellIdx floors to the grid, saturating at the int32 rim (coordinates
// that far out all share the rim cell rather than wrapping).
func cellIdx(v float64) int32 {
	f := math.Floor(v)
	switch {
	case f <= math.MinInt32:
		return math.MinInt32
	case f >= math.MaxInt32:
		return math.MaxInt32
	default:
		return int32(f)
	}
}
