package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netcoord"
	"netcoord/internal/faultproxy"
)

// proxyFor fronts an httptest server with a fault proxy.
func proxyFor(t *testing.T, tsURL string, opts faultproxy.Options) *faultproxy.Proxy {
	t.Helper()
	p, err := faultproxy.New(strings.TrimPrefix(tsURL, "http://"), opts)
	if err != nil {
		t.Fatalf("faultproxy.New: %v", err)
	}
	t.Cleanup(p.Close)
	return p
}

// startUpstreamsFollower starts a follower with an ordered failover
// list and test-friendly timings.
func startUpstreamsFollower(t *testing.T, upstreams ...string) *netcoord.FollowerRegistry {
	t.Helper()
	f, err := netcoord.StartFollower(netcoord.FollowerConfig{
		Upstreams:     upstreams,
		WaitTimeout:   200 * time.Millisecond,
		RetryInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("StartFollower: %v", err)
	}
	t.Cleanup(f.Close)
	return f
}

// waitFollowerSeq polls until the follower has applied through seq.
func waitFollowerSeq(t *testing.T, name string, f *netcoord.FollowerRegistry, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for f.AppliedSeq() < seq {
		if time.Now().After(deadline) {
			t.Fatalf("%s stuck at seq %d, want %d (stats %+v)", name, f.AppliedSeq(), seq, f.FollowerStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestKillTheLeaderE2E is the headline failover scenario: a three-tier
// relay chain (leader → F1 → F2) plus a sibling replica F3 parented on
// the leader, every replication edge running through a fault proxy,
// and ≥64 live /changes watchers spread over the replica tiers. The
// leader is partitioned away mid-mutation, F1 is promoted, F3 fails
// over to the new leader, writes continue, and every watcher must
// observe one gap-free duplicate-free sequence across the epoch
// boundary. Finally a replica is steered onto the still-running
// deposed leader and must fence it out, counting rejected_stale_epoch.
func TestKillTheLeaderE2E(t *testing.T) {
	const (
		seedN  = 20
		phaseA = 150 // pre-failover writes to the original leader
		phaseB = 150 // post-promotion writes to the new leader
		phaseC = 50  // writes after the fencing episode resolves
		target = seedN + phaseA + phaseB + phaseC
	)

	leaderTS, leaderReg := newTestServiceReg(t, netcoord.RegistryConfig{
		ChangeStreamBuffer: netcoord.DefaultChangeStreamBuffer,
	})

	// Topology, every replication edge through a fault proxy:
	//
	//   leader ──pxLF1──▶ F1 ──pxF1F2──▶ F2   (F2 falls back to the
	//   leader ──pxLF3──▶ F3                   leader directly; F3
	//                                          falls back to F1)
	pxLF1 := proxyFor(t, leaderTS.URL, faultproxy.Options{Seed: 1})
	f1 := startUpstreamsFollower(t, pxLF1.URL())
	f1TS := newFollowerService(t, f1)
	pxF1F2 := proxyFor(t, f1TS.URL, faultproxy.Options{Seed: 2})
	f2 := startUpstreamsFollower(t, pxF1F2.URL(), leaderTS.URL)
	f2TS := newFollowerService(t, f2)
	pxLF3 := proxyFor(t, leaderTS.URL, faultproxy.Options{Seed: 3})
	f3 := startUpstreamsFollower(t, pxLF3.URL(), f1TS.URL)
	f3TS := newFollowerService(t, f3)

	for i := 0; i < seedN; i++ {
		postJSON(t, leaderTS.URL+"/upsert", fmt.Sprintf(`{"id":"seed%02d","coord":{"vec":[%d,0,0]},"error":0.1}`, i, i))
	}

	// ≥64 watchers tailing /changes across the replica tiers, each
	// verifying its stream is dense, duplicate-free, and epoch-
	// monotonic from seq 1 through target.
	const watchers = 66
	tiers := []string{f1TS.URL, f2TS.URL, f3TS.URL}
	var watcherWG sync.WaitGroup
	watcherErr := make(chan string, watchers)
	var eventsSeen atomic.Uint64
	for w := 0; w < watchers; w++ {
		base := tiers[w%len(tiers)]
		watcherWG.Add(1)
		go func(w int, base string) {
			defer watcherWG.Done()
			var cur, epoch uint64
			deadline := time.Now().Add(90 * time.Second)
			client := &http.Client{Timeout: 10 * time.Second}
			for cur < target {
				if time.Now().After(deadline) {
					watcherErr <- fmt.Sprintf("watcher %d on %s stuck at seq %d", w, base, cur)
					return
				}
				resp, err := client.Get(fmt.Sprintf("%s/changes?since=%d&wait=1s&limit=128", base, cur))
				if err != nil {
					// Transient while the tier resynchronizes; retry.
					time.Sleep(10 * time.Millisecond)
					continue
				}
				var body struct {
					Epoch  uint64 `json:"epoch"`
					Events []struct {
						Seq   uint64 `json:"seq"`
						Epoch uint64 `json:"epoch"`
					} `json:"events"`
				}
				derr := decodeInto(resp, &body)
				if derr != nil {
					watcherErr <- fmt.Sprintf("watcher %d on %s: %v", w, base, derr)
					return
				}
				for _, ev := range body.Events {
					if ev.Seq != cur+1 {
						watcherErr <- fmt.Sprintf("watcher %d on %s: seq %d after %d (gap or duplicate)", w, base, ev.Seq, cur)
						return
					}
					if ev.Epoch < epoch {
						watcherErr <- fmt.Sprintf("watcher %d on %s: epoch went backwards %d→%d at seq %d", w, base, epoch, ev.Epoch, ev.Seq)
						return
					}
					cur, epoch = ev.Seq, ev.Epoch
					eventsSeen.Add(1)
				}
			}
			if epoch != 1 {
				watcherErr <- fmt.Sprintf("watcher %d on %s finished at epoch %d, want 1 (never crossed the promotion)", w, base, epoch)
			}
		}(w, base)
	}

	// Phase A: mutate the original leader; the whole tree converges.
	for i := 0; i < phaseA; i++ {
		postJSON(t, leaderTS.URL+"/upsert", fmt.Sprintf(`{"id":"seed%02d","coord":{"vec":[%d,%d,0]},"error":0.1}`, i%seedN, i%seedN, i%7))
	}
	preSeq := uint64(seedN + phaseA)
	if got := leaderReg.ChangeSeq(); got != preSeq {
		t.Fatalf("leader seq = %d, want %d", got, preSeq)
	}
	waitFollowerSeq(t, "f1", f1, preSeq)
	waitFollowerSeq(t, "f2", f2, preSeq)
	waitFollowerSeq(t, "f3", f3, preSeq)

	// Kill the leader: both of its edges go dark at once. The leader
	// process itself stays up — it is now a deposed leader that still
	// answers anyone who reaches it directly.
	pxLF1.SetPartitioned(true)
	pxLF3.SetPartitioned(true)

	// Promote F1. The response carries the new epoch; a second promote
	// is idempotent.
	code, out := postJSON(t, f1TS.URL+"/promote", `{}`)
	if code != http.StatusOK || out["promoted"] != true {
		t.Fatalf("promote: %d %v", code, out)
	}
	if out["epoch"].(float64) != 1 {
		t.Fatalf("promote epoch = %v, want 1", out["epoch"])
	}
	if code, out = postJSON(t, f1TS.URL+"/promote", `{}`); code != http.StatusOK || out["already"] != true {
		t.Fatalf("second promote: %d %v", code, out)
	}

	// Phase B: the new leader accepts writes, stamped with epoch 1; the
	// surviving tier (F2) keeps tailing and the orphaned tier (F3)
	// fails over to its listed fallback — the new leader.
	for i := 0; i < phaseB; i++ {
		code, out := postJSON(t, f1TS.URL+"/upsert", fmt.Sprintf(`{"id":"b%03d","coord":{"vec":[%d,50,0]},"error":0.1}`, i, i%97))
		if code != http.StatusOK {
			t.Fatalf("post-promotion upsert %d: %d %v", i, code, out)
		}
		if i == 0 && out["epoch"].(float64) != 1 {
			t.Fatalf("post-promotion upsert epoch = %v, want 1", out["epoch"])
		}
	}
	postB := preSeq + phaseB
	if got := f1.ChangeSeq(); got != postB {
		t.Fatalf("new leader seq = %d, want %d (promotion must continue the sequence space)", got, postB)
	}
	waitFollowerSeq(t, "f2", f2, postB)
	waitFollowerSeq(t, "f3", f3, postB)
	if st := f3.FollowerStats(); st.Failovers < 1 {
		t.Fatalf("f3 never failed over: %+v", st)
	} else if st.LeaderURL != f1TS.URL {
		t.Fatalf("f3 tails %s, want the new leader %s", st.LeaderURL, f1TS.URL)
	}

	// The deposed leader still takes writes from anyone who reaches it
	// directly — the classic split brain. Cut F2 away from the new
	// leader so it rotates onto the deposed one: every response it gets
	// carries epoch 0 and must be fenced, not applied.
	for i := 0; i < 5; i++ {
		postJSON(t, leaderTS.URL+"/upsert", fmt.Sprintf(`{"id":"split%d","coord":{"vec":[%d,99,0]},"error":0.1}`, i, i))
	}
	pxF1F2.SetPartitioned(true)
	fenceDeadline := time.Now().Add(20 * time.Second)
	for f2.FollowerStats().RejectedStaleEpoch == 0 {
		if time.Now().After(fenceDeadline) {
			t.Fatalf("f2 never fenced the deposed leader: %+v", f2.FollowerStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if f2.AppliedSeq() != postB {
		t.Fatalf("f2 applied seq moved to %d while fenced, want %d (deposed leader's writes leaked in)", f2.AppliedSeq(), postB)
	}
	if _, ok := f2.Get("split0"); ok {
		t.Fatal("a deposed-leader write reached f2 through the fence")
	}
	// The rejection is visible on F2's metrics surface too.
	if !metricAtLeast(t, f2TS.URL, "netcoord_follower_rejected_stale_epoch_total", 1) {
		t.Fatal("rejected_stale_epoch not surfaced in /metrics")
	}

	// Heal the F1→F2 edge; F2 rotates home and catches up. Phase C
	// proves the whole tree converges after the episode.
	pxF1F2.SetPartitioned(false)
	for i := 0; i < phaseC; i++ {
		postJSON(t, f1TS.URL+"/upsert", fmt.Sprintf(`{"id":"c%03d","coord":{"vec":[%d,70,0]},"error":0.1}`, i, i%89))
	}
	waitFollowerSeq(t, "f2", f2, target)
	waitFollowerSeq(t, "f3", f3, target)

	watcherWG.Wait()
	close(watcherErr)
	for msg := range watcherErr {
		t.Error(msg)
	}
	if t.Failed() {
		t.FailNow()
	}
	if got, want := eventsSeen.Load(), uint64(watchers*target); got != want {
		t.Fatalf("watchers verified %d events in total, want %d", got, want)
	}

	// Replicas of the new leader are identical to it, entry for entry —
	// and free of the deposed leader's split-brain writes.
	for name, f := range map[string]*netcoord.FollowerRegistry{"f2": f2, "f3": f3} {
		ls, fs := f1.Snapshot(), f.Snapshot()
		if len(ls) != len(fs) {
			t.Fatalf("%s has %d entries, new leader %d", name, len(fs), len(ls))
		}
		for i := range ls {
			if fs[i].ID != ls[i].ID || !fs[i].Coord.Equal(ls[i].Coord) {
				t.Fatalf("%s entry %d: %+v vs leader %+v", name, i, fs[i], ls[i])
			}
		}
	}
}

// decodeInto decodes a JSON response body, closing it.
func decodeInto(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// metricAtLeast scrapes base/metrics and reports whether the named
// metric's value is at least min.
func metricAtLeast(t *testing.T, base, name string, min float64) bool {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			var v float64
			fmt.Sscanf(fields[1], "%g", &v)
			return v >= min
		}
	}
	t.Fatalf("metric %s not found in /metrics output", name)
	return false
}
