package server

import (
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"

	"netcoord"
)

// TestNearestBatchEndpoint checks POST /nearest/batch against the
// single-query endpoints: positional answers, per-query modes (k,
// default-k, radius with truncation flag), and atomic validation.
func TestNearestBatchEndpoint(t *testing.T) {
	ts := newTestService(t)

	var entries []string
	for i := 0; i < 40; i++ {
		entries = append(entries, fmt.Sprintf(
			`{"id":"n%02d","coord":{"vec":[%d,%d,0]}}`, i, (i%8)*25, (i/8)*25))
	}
	code, out := postJSON(t, ts.URL+"/upsert", `{"entries":[`+strings.Join(entries, ",")+`]}`)
	if code != http.StatusOK {
		t.Fatalf("seed: %d %v", code, out)
	}

	code, out = postJSON(t, ts.URL+"/nearest/batch", `{"queries":[
		{"coord":{"vec":[1,1,0]},"k":3},
		{"coord":{"vec":[180,90,0]}},
		{"coord":{"vec":[50,50,0]},"radius_ms":40}]}`)
	if code != http.StatusOK {
		t.Fatalf("batch: %d %v", code, out)
	}
	raw, ok := out["results"].([]any)
	if !ok || len(raw) != 3 {
		t.Fatalf("want 3 positional results, got %v", out)
	}

	// Each position must match its single-query equivalent.
	single := []string{
		`{"coord":{"vec":[1,1,0]},"k":3}`,
		`{"coord":{"vec":[180,90,0]}}`,
		`{"coord":{"vec":[50,50,0]},"radius_ms":40}`,
	}
	for i, body := range single {
		sc, sout := postJSON(t, ts.URL+"/nearest", body)
		if sc != http.StatusOK {
			t.Fatalf("single %d: %d %v", i, sc, sout)
		}
		want := resultIDs(t, sout)
		got := resultIDs(t, raw[i].(map[string]any))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: batch %v != single %v", i, got, want)
		}
		if i == 2 {
			// Small radius over 40 nodes: present but not truncated.
			if tr, _ := raw[i].(map[string]any)["truncated"].(bool); tr {
				t.Fatalf("query %d unexpectedly truncated", i)
			}
		}
	}

	// Atomic validation: a bad k in the middle fails the whole batch.
	code, out = postJSON(t, ts.URL+"/nearest/batch", `{"queries":[
		{"coord":{"vec":[1,1,0]},"k":3},
		{"coord":{"vec":[1,1,0]},"k":-2}]}`)
	if code != http.StatusBadRequest || !strings.Contains(out["error"].(string), "query 1") {
		t.Fatalf("bad k: %d %v", code, out)
	}
	// A dimension mismatch is caught registry-side, same atomicity.
	code, out = postJSON(t, ts.URL+"/nearest/batch", `{"queries":[
		{"coord":{"vec":[1,1,0]},"k":3},
		{"coord":{"vec":[1,1]},"k":3}]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("bad dim: %d %v", code, out)
	}
	code, out = postJSON(t, ts.URL+"/nearest/batch", `{"queries":[]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("empty batch: %d %v", code, out)
	}
	big := make([]string, maxBatchQueries+1)
	for i := range big {
		big[i] = `{"coord":{"vec":[1,1,0]},"k":1}`
	}
	code, out = postJSON(t, ts.URL+"/nearest/batch", `{"queries":[`+strings.Join(big, ",")+`]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("oversized batch: %d %v", code, out)
	}
}

// TestQueryBatcherMatchesSingleShot drives the watch-path coalescer
// with many concurrent callers and checks every answer against the
// single-shot Registry API, including error isolation: one malformed
// query must fail only its own caller, not the round it rode in.
func TestQueryBatcherMatchesSingleShot(t *testing.T) {
	reg, err := netcoord.NewRegistry(netcoord.RegistryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	var batch []netcoord.RegistryEntry
	for i := 0; i < 200; i++ {
		batch = append(batch, netcoord.RegistryEntry{
			ID:    fmt.Sprintf("n%03d", i),
			Coord: netcoord.Coordinate{Vec: []float64{float64((i % 20) * 13), float64((i / 20) * 17), float64(i % 7)}},
		})
	}
	if err := reg.UpsertBatch(batch); err != nil {
		t.Fatal(err)
	}

	b := newQueryBatcher(reg)
	const callers = 32
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for w := 0; w < callers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 25; iter++ {
				switch w % 3 {
				case 0: // vec-mode watcher
					from := netcoord.Coordinate{Vec: []float64{float64(w), float64(iter), 0}}
					got, err := b.nearest(netcoord.NearestQuery{From: from, K: 5})
					if err != nil {
						errs[w] = err
						return
					}
					want, err := reg.Nearest(from, 5)
					if err != nil {
						errs[w] = err
						return
					}
					if !reflect.DeepEqual(got, want) {
						errs[w] = fmt.Errorf("vec caller %d iter %d: %v != %v", w, iter, got, want)
						return
					}
				case 1: // id-mode watcher
					id := fmt.Sprintf("n%03d", (w*25+iter)%200)
					entry, ok := reg.Get(id)
					if !ok {
						errs[w] = fmt.Errorf("missing %s", id)
						return
					}
					got, err := b.nearest(netcoord.NearestQuery{From: entry.Coord, K: 4, Exclude: id})
					if err != nil {
						errs[w] = err
						return
					}
					want, err := reg.NearestTo(id, 4)
					if err != nil {
						errs[w] = err
						return
					}
					if !reflect.DeepEqual(got, want) {
						errs[w] = fmt.Errorf("id caller %d iter %d: %v != %v", w, iter, got, want)
						return
					}
				case 2: // malformed: wrong dimension must fail this caller only
					from := netcoord.Coordinate{Vec: []float64{1, 2}}
					if _, err := b.nearest(netcoord.NearestQuery{From: from, K: 3}); err == nil {
						errs[w] = fmt.Errorf("caller %d iter %d: bad-dim query succeeded", w, iter)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("caller %d: %v", w, err)
		}
	}
}
