package server

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"netcoord"
)

// scrapeMetrics fetches /metrics and parses every sample line into a
// map keyed by the full series text (name plus label block), e.g.
// "netcoord_http_requests_total{class=\"2xx\",route=\"/upsert\"}".
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in metrics line %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// getHealthz returns /healthz's status code.
func getHealthz(t *testing.T, base string) int {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestPropagationLagEndToEnd drives the full pipeline — leader
// mutation → follower apply → watcher delivery — and then reads the
// propagation-lag histograms out of /metrics: the follower must report
// nonzero publish→apply lag with ordered, sane percentiles, and the
// follower's watch hub must report publish→deliver lag for the watcher
// it served. This is the observability contract for the relay tree:
// every tier can prove how far behind the origin it is running.
func TestPropagationLagEndToEnd(t *testing.T) {
	leaderTS, leaderReg := newTestServiceReg(t, netcoord.RegistryConfig{
		ChangeStreamBuffer: netcoord.DefaultChangeStreamBuffer,
	})
	postJSON(t, leaderTS.URL+"/upsert", `{"entries":[
		{"id":"a","coord":{"vec":[1,0,0]}},
		{"id":"b","coord":{"vec":[2,0,0]}},
		{"id":"far","coord":{"vec":[500,0,0]}}]}`)

	f := startTestFollower(t, leaderTS.URL)
	waitConverged(t, f, leaderReg)
	fts := newFollowerService(t, f)

	// A watcher on the FOLLOWER: deliver lag there measures the whole
	// chain, leader publish stamp included.
	fr, _ := openWatch(t, fts.URL, "vec=0,0,0&k=2")

	// Each step flips the top-2 (c at rank 1, then c gone far away), so
	// every step must produce a delta — and a deliver-lag observation.
	const steps = 10
	for i := 0; i < steps; i++ {
		coord := "0.5"
		if i%2 == 1 {
			coord = "300"
		}
		postJSON(t, leaderTS.URL+"/upsert", fmt.Sprintf(`{"id":"c","coord":{"vec":[%s,0,0]}}`, coord))
		if ev, ok := fr.next(5 * time.Second); !ok || ev.name != "delta" {
			t.Fatalf("step %d: watch event %+v ok=%v, want delta", i, ev, ok)
		}
	}
	waitConverged(t, f, leaderReg)

	fm := scrapeMetrics(t, fts.URL)

	// Publish→apply lag on the follower: the seeds arrived via snapshot
	// bootstrap (unstamped), but every streamed step was stamped at the
	// leader and must have been observed on apply.
	applyCount := fm["netcoord_follower_apply_lag_seconds_count"]
	if applyCount < steps {
		t.Fatalf("apply lag count = %v, want >= %d", applyCount, steps)
	}
	if sum := fm["netcoord_follower_apply_lag_seconds_sum"]; sum <= 0 {
		t.Fatalf("apply lag sum = %v, want > 0 (publish stamps not propagating?)", sum)
	}
	p50 := fm[`netcoord_follower_apply_lag_seconds{quantile="0.5"}`]
	p99 := fm[`netcoord_follower_apply_lag_seconds{quantile="0.99"}`]
	max := fm[`netcoord_follower_apply_lag_seconds{quantile="1"}`]
	if !(p50 <= p99 && p99 <= max) {
		t.Fatalf("apply lag percentiles out of order: p50=%v p99=%v max=%v", p50, p99, max)
	}
	if max <= 0 || max > 60 {
		t.Fatalf("apply lag max = %vs, want (0, 60] — in-process propagation should be fast but measurable", max)
	}

	// Publish→deliver lag at the follower's watch hub: every forced
	// delta was delivered carrying the leader's publish stamp.
	deliverCount := fm["netcoord_watch_deliver_lag_seconds_count"]
	if deliverCount < steps {
		t.Fatalf("deliver lag count = %v, want >= %d", deliverCount, steps)
	}
	dmax := fm[`netcoord_watch_deliver_lag_seconds{quantile="1"}`]
	if dmax <= 0 || dmax > 60 {
		t.Fatalf("deliver lag max = %vs, want (0, 60]", dmax)
	}

	// The follower's replication gauges agree with convergence.
	if fm["netcoord_follower_lag_events"] != 0 {
		t.Fatalf("converged follower lag_events = %v, want 0", fm["netcoord_follower_lag_events"])
	}
	if fm["netcoord_follower_applied_seq"] != float64(leaderReg.ChangeSeq()) {
		t.Fatalf("follower applied_seq = %v, leader at %d", fm["netcoord_follower_applied_seq"], leaderReg.ChangeSeq())
	}

	// The leader's own serving metrics saw the mutations.
	lm := scrapeMetrics(t, leaderTS.URL)
	if got := lm[`netcoord_http_requests_total{class="2xx",route="/upsert"}`]; got < steps+1 {
		t.Fatalf("leader /upsert 2xx count = %v, want >= %d", got, steps+1)
	}
	if got := lm["netcoord_changefeed_published_total"]; got < steps+3 {
		t.Fatalf("leader published_total = %v, want >= %d", got, steps+3)
	}
	if lm["netcoord_registry_entries"] != 4 {
		t.Fatalf("leader registry_entries = %v, want 4", lm["netcoord_registry_entries"])
	}

	// Both tiers are ready.
	if code := getHealthz(t, leaderTS.URL); code != http.StatusOK {
		t.Fatalf("leader /healthz = %d, want 200", code)
	}
	if code := getHealthz(t, fts.URL); code != http.StatusOK {
		t.Fatalf("converged follower /healthz = %d, want 200", code)
	}
}

// TestHTTPMetricsMiddleware checks the status-class accounting the
// instrument wrapper performs, and that latency/byte instruments fill
// in for real traffic.
func TestHTTPMetricsMiddleware(t *testing.T) {
	ts, _ := newTestServiceReg(t, netcoord.RegistryConfig{
		ChangeStreamBuffer: netcoord.DefaultChangeStreamBuffer,
	})
	if code, _ := postJSON(t, ts.URL+"/upsert", `{"id":"a","coord":{"vec":[1,0,0]}}`); code != http.StatusOK {
		t.Fatalf("upsert: %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/upsert", `{"bogus":1}`); code != http.StatusBadRequest {
		t.Fatalf("bad upsert: %d, want 400", code)
	}
	if code, _ := getJSON(t, ts.URL+"/estimate?a=nope&b=also"); code != http.StatusNotFound {
		t.Fatalf("estimate on missing ids: %d, want 404", code)
	}

	m := scrapeMetrics(t, ts.URL)
	checks := []struct {
		series string
		want   float64
	}{
		{`netcoord_http_requests_total{class="2xx",route="/upsert"}`, 1},
		{`netcoord_http_requests_total{class="4xx",route="/upsert"}`, 1},
		{`netcoord_http_requests_total{class="4xx",route="/estimate"}`, 1},
		{`netcoord_http_request_seconds_count{route="/upsert"}`, 2},
	}
	for _, c := range checks {
		if got := m[c.series]; got != c.want {
			t.Errorf("%s = %v, want %v", c.series, got, c.want)
		}
	}
	if in := m[`netcoord_http_request_bytes_total{route="/upsert"}`]; in <= 0 {
		t.Errorf("request bytes for /upsert = %v, want > 0", in)
	}
	if out := m[`netcoord_http_response_bytes_total{route="/upsert"}`]; out <= 0 {
		t.Errorf("response bytes for /upsert = %v, want > 0", out)
	}
	// The scrape itself runs inside the only inflight request.
	if infl := m["netcoord_http_inflight_requests"]; infl != 0 {
		// /metrics is not routed through instrument, so nothing inflight.
		t.Errorf("inflight = %v, want 0", infl)
	}
}
