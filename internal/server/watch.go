package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"netcoord"
)

// watchHeartbeat is the SSE keepalive cadence.
const watchHeartbeat = 15 * time.Second

// watchSyncLimit bounds how many times one wakeup re-runs the query
// because events raced the interest install; past it the handler ships
// what it has and leaves a self-damage pending, so liveness never
// depends on out-running a write storm.
const watchSyncLimit = 4

// watchDelta is one /watch SSE payload: the full current top-k plus
// the membership delta against the previous payload.
type watchDelta struct {
	Seq     uint64       `json:"seq"`
	Results []rankedJSON `json:"results"`
	Added   []string     `json:"added,omitempty"`
	Removed []string     `json:"removed,omitempty"`
}

// handleWatch streams nearest-set changes for one watched coordinate
// as server-sent events: an initial "snapshot" with the current top-k,
// then a "delta" only when the top-k membership or order actually
// changes. The watcher registers its interest with the server's shared
// WatchHub — one change-stream subscription and a spatial damage map
// for all watchers — and recomputes only when the hub wakes it, so
// events that cannot affect this top-k (the vastly common case with
// stable application-level coordinates) cost it nothing at all.
//
// id-mode (?id=n1) matches /nearest?id=n1 semantics: the node is not
// its own neighbor, and its coordinate is re-resolved on every
// recompute, so the watch follows the node when it moves. The stream
// ends if the watched node is removed.
//
// On a follower the hub drains the leader's relayed stream, so the
// sequence numbers in these events are the leader's — a watcher moved
// between tiers sees one sequence space.
func (s *Server) handleWatch(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	k, ok := parseK(w, q.Get("k"))
	if !ok {
		return
	}
	watchID := q.Get("id")
	var fixed netcoord.Coordinate
	switch {
	case watchID != "":
		if _, found := s.reg.Get(watchID); !found {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown id %q", watchID))
			return
		}
	case q.Get("vec") != "":
		var err error
		fixed, err = parseVec(q.Get("vec"), q.Get("height"))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, errors.New("missing id or vec parameter (vec=x,y,z&height=h watches an arbitrary coordinate)"))
		return
	}
	// recompute answers "top-k now" plus the origin it was measured
	// from (id-mode re-resolves the node's current coordinate, so a
	// moving watched node keeps the question honest). Queries go
	// through the server's batcher: when a write storm damages many
	// watchers at once, their concurrent recomputes coalesce into
	// shard-major NearestBatch rounds instead of each paying a full
	// fan-out dispatch. Safe with respect to syncWatch's pre/post
	// handshake — the batch executes after the query is enqueued,
	// which is after pre was read, so no event can slip between.
	recompute := func() ([]netcoord.Ranked, netcoord.Coordinate, error) {
		if watchID == "" {
			res, err := s.batcher.nearest(netcoord.NearestQuery{From: fixed, K: k})
			return res, fixed, err
		}
		entry, found := s.reg.Get(watchID)
		if !found {
			return nil, netcoord.Coordinate{}, fmt.Errorf("watched id %q removed", watchID)
		}
		// Exclude + the freshly resolved coordinate is exactly
		// NearestTo's contract, batched.
		res, err := s.batcher.nearest(netcoord.NearestQuery{From: entry.Coord, K: k, Exclude: watchID})
		return res, entry.Coord, err
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported by this connection"))
		return
	}
	// Register with the hub before the initial query: every mutation
	// routed after this point either lands in the query's read or
	// damages the (still promiscuous) watcher — no unwatched window.
	watcher, err := s.hub.Watch(watchID)
	if err != nil {
		writeError(w, http.StatusNotImplemented, err)
		return
	}
	defer s.hub.Detach(watcher)
	cur, seq, err := s.syncWatch(watcher, recompute, k)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	sse := newSSEWriter(w)
	if sse.write("snapshot", watchDelta{Seq: seq, Results: toRankedJSON(cur)}) != nil {
		return
	}
	fl.Flush()

	hb := time.NewTicker(watchHeartbeat)
	defer hb.Stop()
	for {
		select {
		case <-req.Context().Done():
			return
		case <-s.shutdown:
			return
		case <-hb.C:
			// Comment frames keep idle connections alive through proxies
			// and let dead clients surface as write errors.
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-watcher.C():
			next, seq, err := s.syncWatch(watcher, recompute, k)
			if err != nil {
				return // watched node removed (or registry torn down)
			}
			added, removed, changed := diffRanked(cur, next)
			cur = next
			if !changed {
				continue
			}
			if sse.write("delta", watchDelta{Seq: seq, Results: toRankedJSON(cur), Added: added, Removed: removed}) != nil {
				return
			}
			fl.Flush()
		}
	}
}

// syncWatch runs the watcher's query and installs the result as its
// hub interest, repeating until no event raced the install (the hub's
// stream position stood still between the pre-query read and the
// install). The returned sequence is that stream position: the result
// provably reflects everything the hub routed through it.
func (s *Server) syncWatch(watcher *HubWatcher, recompute func() ([]netcoord.Ranked, netcoord.Coordinate, error), k int) ([]netcoord.Ranked, uint64, error) {
	start := time.Now()
	// The pending publish stamp belongs to damage this recompute is
	// about to absorb; take it up front so damage that lands DURING the
	// loop (and wakes us again) starts a fresh lag measurement instead
	// of being double-counted by this delivery.
	pending := watcher.pendingPubNs.Swap(0)
	for tries := 0; ; tries++ {
		pre := s.hub.Processed()
		res, origin, err := recompute()
		if err != nil {
			return nil, 0, err
		}
		post := s.hub.SetInterest(watcher, origin, res, k)
		if post == pre || tries >= watchSyncLimit {
			if post != pre {
				// Events raced every attempt; ship this result and make
				// sure the pending damage wakes us again.
				s.hub.damage(watcher, post)
			}
			s.hub.observeRecompute(time.Since(start))
			if pending > 0 {
				s.hub.deliverLag.Observe(time.Now().UnixNano() - pending)
			}
			return res, post, nil
		}
	}
}

// diffRanked compares two ranked lists by id sequence. added/removed
// report membership changes; changed is also true for pure reorders.
func diffRanked(old, next []netcoord.Ranked) (added, removed []string, changed bool) {
	if len(old) == len(next) {
		same := true
		for i := range old {
			if old[i].ID != next[i].ID {
				same = false
				break
			}
		}
		if same {
			return nil, nil, false
		}
	}
	oldSet := make(map[string]struct{}, len(old))
	for _, r := range old {
		oldSet[r.ID] = struct{}{}
	}
	nextSet := make(map[string]struct{}, len(next))
	for _, r := range next {
		nextSet[r.ID] = struct{}{}
		if _, ok := oldSet[r.ID]; !ok {
			added = append(added, r.ID)
		}
	}
	for _, r := range old {
		if _, ok := nextSet[r.ID]; !ok {
			removed = append(removed, r.ID)
		}
	}
	return added, removed, true
}

// sseWriter frames server-sent events through one reused buffer: a
// watch connection emits a delta per damaging event for its lifetime,
// and the old per-frame Marshal+Fprintf path paid a fresh buffer (and a
// reflection walk of the format string) for every one of them. The
// encoder is bound to the buffer once; each frame reuses both.
type sseWriter struct {
	dst io.Writer
	buf bytes.Buffer
	enc *json.Encoder
}

func newSSEWriter(dst io.Writer) *sseWriter {
	sw := &sseWriter{dst: dst}
	sw.enc = json.NewEncoder(&sw.buf)
	return sw
}

// write frames one event. The JSON encoder emits a trailing newline,
// which serves as the first of the two newlines the SSE framing needs
// (JSON string escaping guarantees no other newline appears mid-frame).
func (sw *sseWriter) write(event string, v any) error {
	sw.buf.Reset()
	sw.buf.WriteString("event: ")
	sw.buf.WriteString(event)
	sw.buf.WriteString("\ndata: ")
	if err := sw.enc.Encode(v); err != nil {
		return err
	}
	sw.buf.WriteByte('\n')
	_, err := sw.dst.Write(sw.buf.Bytes())
	return err
}
