package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"netcoord"
)

func newTestService(t *testing.T) *httptest.Server {
	ts, _ := newTestServiceReg(t, netcoord.RegistryConfig{
		ChangeStreamBuffer: netcoord.DefaultChangeStreamBuffer,
	})
	return ts
}

// newTestServiceReg serves a leader with an explicit registry config —
// tests that need a tiny change ring (truncation paths) pass their own.
func newTestServiceReg(t *testing.T, cfg netcoord.RegistryConfig) (*httptest.Server, *netcoord.Registry) {
	t.Helper()
	reg, err := netcoord.NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	srv := New(Config{Registry: reg, Source: reg})
	t.Cleanup(srv.Stop)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, reg
}

// newFollowerService serves a follower through the same stack.
func newFollowerService(t *testing.T, f *netcoord.FollowerRegistry) *httptest.Server {
	t.Helper()
	srv := New(Config{Registry: f.Registry, Source: f, Follower: f})
	t.Cleanup(srv.Stop)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out
}

// results unpacks the {"results": [...]} envelope into id order.
func resultIDs(t *testing.T, out map[string]any) []string {
	t.Helper()
	raw, ok := out["results"].([]any)
	if !ok {
		t.Fatalf("no results in %v", out)
	}
	ids := make([]string, len(raw))
	for i, r := range raw {
		ids[i] = r.(map[string]any)["id"].(string)
	}
	return ids
}

func TestServiceEndToEnd(t *testing.T) {
	ts := newTestService(t)

	// Single upsert plus a batch.
	code, out := postJSON(t, ts.URL+"/upsert", `{"id":"a","coord":{"vec":[0,0,0]},"error":0.2}`)
	if code != http.StatusOK || out["applied"].(float64) != 1 {
		t.Fatalf("upsert: %d %v", code, out)
	}
	code, out = postJSON(t, ts.URL+"/upsert", `{"entries":[
		{"id":"b","coord":{"vec":[30,0,0]}},
		{"id":"c","coord":{"vec":[0,40,0]}},
		{"id":"d","coord":{"vec":[100,100,0]}}]}`)
	if code != http.StatusOK || out["applied"].(float64) != 3 || out["entries"].(float64) != 4 {
		t.Fatalf("batch upsert: %d %v", code, out)
	}

	// Coordinate-centered nearest.
	code, out = postJSON(t, ts.URL+"/nearest", `{"coord":{"vec":[1,0,0]},"k":2}`)
	if code != http.StatusOK {
		t.Fatalf("nearest: %d %v", code, out)
	}
	if ids := resultIDs(t, out); len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("nearest ids = %v, want [a b]", ids)
	}

	// Node-centered nearest excludes the center.
	code, out = getJSON(t, ts.URL+"/nearest?id=a&k=2")
	if code != http.StatusOK {
		t.Fatalf("nearest?id: %d %v", code, out)
	}
	if ids := resultIDs(t, out); len(ids) != 2 || ids[0] != "b" || ids[1] != "c" {
		t.Fatalf("nearest?id=a ids = %v, want [b c]", ids)
	}

	// Radius mode excludes the center node, like k-mode.
	code, out = getJSON(t, ts.URL+"/nearest?id=a&radius_ms=50")
	if code != http.StatusOK {
		t.Fatalf("radius: %d %v", code, out)
	}
	if ids := resultIDs(t, out); len(ids) != 2 || ids[0] != "b" || ids[1] != "c" {
		t.Fatalf("radius ids = %v, want [b c]", ids)
	}

	// Estimate.
	code, out = getJSON(t, ts.URL+"/estimate?a=a&b=b")
	if code != http.StatusOK || out["rtt_ms"].(float64) != 30 {
		t.Fatalf("estimate: %d %v", code, out)
	}

	// Remove, then the estimate 404s.
	code, out = postJSON(t, ts.URL+"/remove", `{"id":"b"}`)
	if code != http.StatusOK || out["removed"].(bool) != true {
		t.Fatalf("remove: %d %v", code, out)
	}
	code, _ = getJSON(t, ts.URL+"/estimate?a=a&b=b")
	if code != http.StatusNotFound {
		t.Fatalf("estimate after remove: %d, want 404", code)
	}

	// Stats reflect the traffic.
	code, out = getJSON(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	regStats, ok := out["registry"].(map[string]any)
	if !ok || regStats["entries"].(float64) != 3 {
		t.Fatalf("stats = %v", out)
	}
}

func TestServiceErrors(t *testing.T) {
	ts := newTestService(t)

	for _, tc := range []struct {
		name string
		do   func() int
		want int
	}{
		{"bad json", func() int {
			code, _ := postJSON(t, ts.URL+"/upsert", `{`)
			return code
		}, http.StatusBadRequest},
		{"unknown field", func() int {
			code, _ := postJSON(t, ts.URL+"/upsert", `{"id":"x","coord":{"vec":[0,0,0]},"bogus":1}`)
			return code
		}, http.StatusBadRequest},
		{"wrong dimension", func() int {
			code, _ := postJSON(t, ts.URL+"/upsert", `{"id":"x","coord":{"vec":[0,0]}}`)
			return code
		}, http.StatusBadRequest},
		{"empty upsert", func() int {
			code, _ := postJSON(t, ts.URL+"/upsert", `{}`)
			return code
		}, http.StatusBadRequest},
		{"nearest unknown id", func() int {
			code, _ := getJSON(t, ts.URL+"/nearest?id=ghost")
			return code
		}, http.StatusNotFound},
		{"nearest no id", func() int {
			code, _ := getJSON(t, ts.URL+"/nearest")
			return code
		}, http.StatusBadRequest},
		{"nearest bad k", func() int {
			seedOne(t, ts)
			code, _ := getJSON(t, ts.URL+"/nearest?id=seed&k=0")
			return code
		}, http.StatusBadRequest},
		{"nearest huge k", func() int {
			code, _ := getJSON(t, ts.URL+"/nearest?id=seed&k=99999")
			return code
		}, http.StatusBadRequest},
		{"post nearest huge k", func() int {
			code, _ := postJSON(t, ts.URL+"/nearest", `{"coord":{"vec":[0,0,0]},"k":1000000000}`)
			return code
		}, http.StatusBadRequest},
		{"post nearest negative k", func() int {
			code, _ := postJSON(t, ts.URL+"/nearest", `{"coord":{"vec":[0,0,0]},"k":-1}`)
			return code
		}, http.StatusBadRequest},
		{"estimate missing param", func() int {
			code, _ := getJSON(t, ts.URL+"/estimate?a=x")
			return code
		}, http.StatusBadRequest},
		{"remove no id", func() int {
			code, _ := postJSON(t, ts.URL+"/remove", `{}`)
			return code
		}, http.StatusBadRequest},
	} {
		if got := tc.do(); got != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, got, tc.want)
		}
	}
}

func seedOne(t *testing.T, ts *httptest.Server) {
	t.Helper()
	code, _ := postJSON(t, ts.URL+"/upsert", `{"id":"seed","coord":{"vec":[0,0,0]}}`)
	if code != http.StatusOK {
		t.Fatalf("seed upsert failed: %d", code)
	}
}

// TestServiceBodyLimit: a body over the configured cap is rejected, not
// buffered.
func TestServiceBodyLimit(t *testing.T) {
	reg, err := netcoord.NewRegistry(netcoord.RegistryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	srv := New(Config{Registry: reg, Source: reg, MaxBody: 64})
	defer srv.Stop()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var big bytes.Buffer
	big.WriteString(`{"entries":[`)
	for i := 0; i < 100; i++ {
		if i > 0 {
			big.WriteString(",")
		}
		fmt.Fprintf(&big, `{"id":"n%d","coord":{"vec":[1,2,3]}}`, i)
	}
	big.WriteString(`]}`)
	resp, err := http.Post(ts.URL+"/upsert", "application/json", &big)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body: status %d, want 400", resp.StatusCode)
	}
}
