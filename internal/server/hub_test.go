package server

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netcoord"
)

func c3(x, y, z float64) netcoord.Coordinate {
	return netcoord.Coordinate{Vec: []float64{x, y, z}}
}

// hubSync mirrors the /watch handler's recompute-and-install loop
// without the HTTP plumbing.
func hubSync(t testing.TB, hub *WatchHub, w *HubWatcher, reg *netcoord.Registry, origin netcoord.Coordinate, k int) []netcoord.Ranked {
	for {
		pre := hub.Processed()
		res, err := reg.Nearest(origin, k)
		if err != nil {
			t.Fatal(err)
		}
		if post := hub.SetInterest(w, origin, res, k); post == pre {
			return res
		}
	}
}

// drainDamage consumes any pending damage notification.
func drainDamage(w *HubWatcher) bool {
	select {
	case <-w.C():
		return true
	default:
		return false
	}
}

// TestWatchHubRoutesDamagePrecisely drives single events through the
// hub and asserts who wakes: the mechanism the whole fan-out economy
// rests on.
func TestWatchHubRoutesDamagePrecisely(t *testing.T) {
	reg, err := netcoord.NewRegistry(netcoord.RegistryConfig{ChangeStreamBuffer: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	for i := 0; i < 20; i++ {
		if err := reg.Upsert(fmt.Sprintf("n%02d", i), c3(float64(i*10), 0, 0), 0); err != nil {
			t.Fatal(err)
		}
	}
	shutdown := make(chan struct{})
	defer close(shutdown)
	hub := newWatchHub(reg, shutdown)

	// Watcher near the origin (top-2 = n00, n01, kth = 10) and one far
	// away (top-2 = n19, n18 around x=190).
	near, err := hub.Watch("")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Detach(near)
	far, err := hub.Watch("")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Detach(far)
	hubSync(t, hub, near, reg, c3(0, 0, 0), 2)
	hubSync(t, hub, far, reg, c3(190, 0, 0), 2)

	await := func(cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatal("hub never drained the event")
			}
			time.Sleep(time.Millisecond)
		}
	}
	sync := func() { await(func() bool { return hub.Processed() == reg.ChangeSeq() }) }

	// An upsert inside the near watcher's ball damages it and not the
	// far one.
	if err := reg.Upsert("invader", c3(5, 0, 0), 0); err != nil {
		t.Fatal(err)
	}
	sync()
	if !drainDamage(near) {
		t.Fatal("near watcher not damaged by an upsert inside its k-th distance")
	}
	if drainDamage(far) {
		t.Fatal("far watcher damaged by an upsert 185ms outside its ball")
	}
	hubSync(t, hub, near, reg, c3(0, 0, 0), 2)

	// A heartbeat refresh (same coordinate) of a member damages nobody.
	if err := reg.Upsert("invader", c3(5, 0, 0), 0); err != nil {
		t.Fatal(err)
	}
	sync()
	if drainDamage(near) {
		t.Fatal("member heartbeat (unchanged coordinate) damaged its watcher")
	}

	// Removing a member damages its watcher only.
	reg.Remove("invader")
	sync()
	if !drainDamage(near) {
		t.Fatal("member removal did not damage its watcher")
	}
	if drainDamage(far) {
		t.Fatal("far watcher damaged by a removal outside its top-k")
	}
	hubSync(t, hub, near, reg, c3(0, 0, 0), 2)

	// Removing a non-member damages nobody.
	reg.Remove("n10")
	sync()
	if drainDamage(near) || drainDamage(far) {
		t.Fatal("non-member removal damaged a watcher")
	}
}

// TestWatchHubStressRace churns watcher attach/detach against a
// mutation storm with -race watching the locks. After the storm
// quiesces, every surviving watcher must converge on the registry's
// true top-k — the hub may over-damage but can never lose a wakeup a
// watcher needed.
func TestWatchHubStressRace(t *testing.T) {
	reg, err := netcoord.NewRegistry(netcoord.RegistryConfig{ChangeStreamBuffer: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	const population = 512
	for i := 0; i < population; i++ {
		if err := reg.Upsert(fmt.Sprintf("n%04d", i), c3(float64(i%31)*4, float64(i%17)*4, float64(i%7)*4), 0); err != nil {
			t.Fatal(err)
		}
	}
	shutdown := make(chan struct{})
	defer close(shutdown)
	hub := newWatchHub(reg, shutdown)

	// One watcher held attached across the whole storm, deliberately
	// immature (no SetInterest): every drained event must damage it.
	// The churning watchers below can't guarantee overlap with the drain
	// — feed-side coalescing keeps the hub ahead of the storm now, with
	// no overflow→resync rounds to damage-all — so this is what pins the
	// damage path as exercised.
	idle, err := hub.Watch("")
	if err != nil {
		t.Fatal(err)
	}

	const (
		watcherGoroutines = 8
		mutators          = 4
		mutationsEach     = 2000
	)
	var storm sync.WaitGroup
	stormDone := make(chan struct{})
	for m := 0; m < mutators; m++ {
		storm.Add(1)
		go func(m int) {
			defer storm.Done()
			rng := rand.New(rand.NewSource(int64(m)))
			for i := 0; i < mutationsEach; i++ {
				id := fmt.Sprintf("n%04d", rng.Intn(population))
				switch rng.Intn(10) {
				case 0:
					reg.Remove(id)
				default:
					_ = reg.Upsert(id, c3(rng.Float64()*120, rng.Float64()*60, rng.Float64()*25), 0)
				}
			}
		}(m)
	}

	// Watcher churn: attach, live a little (recomputing on damage like
	// the handler does), detach, repeat.
	var churns atomic.Uint64
	var watchers sync.WaitGroup
	for g := 0; g < watcherGoroutines; g++ {
		watchers.Add(1)
		go func(g int) {
			defer watchers.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for life := 0; ; life++ {
				// Guarantee real churn even when the storm outpaces us
				// (a -race-free run finishes mutating in milliseconds):
				// every goroutine attaches and detaches at least three
				// times before it may exit.
				if life >= 3 {
					select {
					case <-stormDone:
						return
					default:
					}
				}
				w, err := hub.Watch("")
				if err != nil {
					t.Error(err)
					return
				}
				origin := c3(rng.Float64()*120, rng.Float64()*60, rng.Float64()*25)
				k := 1 + rng.Intn(6)
				hubSync(t, hub, w, reg, origin, k)
				for beat := 0; beat < 10; beat++ {
					select {
					case <-w.C():
						hubSync(t, hub, w, reg, origin, k)
					case <-time.After(200 * time.Microsecond):
					}
				}
				hub.Detach(w)
				churns.Add(1)
			}
		}(g)
	}
	storm.Wait()
	close(stormDone)
	watchers.Wait()
	if churns.Load() == 0 {
		t.Fatal("stress produced no watcher churn")
	}

	// Quiesce: the storm's tail may have been dropped by subscription
	// overflow (a counted gap, repaired by damage-all), so Processed
	// cannot be compared to ChangeSeq directly — drive a sentinel event
	// through instead and wait for the hub to see it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := reg.Upsert("sentinel", c3(999, 999, 0), 0); err != nil {
			t.Fatal(err)
		}
		target := reg.ChangeSeq()
		settled := false
		for !settled && time.Now().Before(deadline) {
			settled = hub.Processed() >= target
			runtime.Gosched()
		}
		if settled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hub stuck at %d, stream at %d", hub.Processed(), target)
		}
	}

	// Audit: fresh watchers installed through the same path see exactly
	// the registry's truth, and the damage map is empty once they
	// detach.
	for i := 0; i < 32; i++ {
		w, err := hub.Watch("")
		if err != nil {
			t.Fatal(err)
		}
		origin := c3(float64(i*3), float64(i%5)*7, 0)
		got := hubSync(t, hub, w, reg, origin, 4)
		want, err := reg.Nearest(origin, 4)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if j >= len(got) || got[j].ID != want[j].ID {
				t.Fatalf("post-storm watcher %d sees %v, registry says %v", i, got, want)
			}
		}
		hub.Detach(w)
	}
	hub.Detach(idle)
	st := hub.Stats()
	if st.Watchers != 0 || st.Cells != 0 || st.Levels != 0 {
		t.Fatalf("damage map not empty after all watchers detached: %+v", st)
	}
	if st.EventsProcessed == 0 || st.Damages == 0 {
		t.Fatalf("stress exercised nothing: %+v", st)
	}
}
