package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"netcoord"
)

func TestSnapshotAndChangesEndpoints(t *testing.T) {
	ts := newTestService(t)

	code, out := postJSON(t, ts.URL+"/upsert", `{"entries":[
		{"id":"a","coord":{"vec":[0,0,0]}},
		{"id":"b","coord":{"vec":[30,0,0]}}]}`)
	if code != http.StatusOK {
		t.Fatalf("upsert: %d %v", code, out)
	}
	seqAfterUpsert, ok := out["seq"].(float64)
	if !ok || seqAfterUpsert != 2 {
		t.Fatalf("upsert response seq = %v, want 2", out["seq"])
	}

	// /snapshot returns the bootstrap pair.
	code, out = getJSON(t, ts.URL+"/snapshot")
	if code != http.StatusOK || out["seq"].(float64) != 2 {
		t.Fatalf("snapshot: %d %v", code, out)
	}
	if entries := out["entries"].([]any); len(entries) != 2 {
		t.Fatalf("snapshot entries = %v", out["entries"])
	}

	// Tail from the beginning.
	code, out = getJSON(t, ts.URL+"/changes?since=0")
	if code != http.StatusOK {
		t.Fatalf("changes: %d %v", code, out)
	}
	events := out["events"].([]any)
	if len(events) != 2 {
		t.Fatalf("changes since 0: %d events, want 2", len(events))
	}
	first := events[0].(map[string]any)
	if first["seq"].(float64) != 1 || first["op"].(string) != "upsert" {
		t.Fatalf("first event = %v", first)
	}

	// The seq from the mutation response resumes with no overlap: only
	// mutations after it appear.
	code, out = postJSON(t, ts.URL+"/remove", `{"id":"b"}`)
	if code != http.StatusOK || out["seq"].(float64) != 3 {
		t.Fatalf("remove: %d %v", code, out)
	}
	code, out = getJSON(t, ts.URL+fmt.Sprintf("/changes?since=%d", int(seqAfterUpsert)))
	if code != http.StatusOK {
		t.Fatalf("changes resume: %d %v", code, out)
	}
	events = out["events"].([]any)
	if len(events) != 1 || events[0].(map[string]any)["op"].(string) != "remove" {
		t.Fatalf("resumed events = %v, want just the remove", events)
	}

	// /stats carries the same sequence.
	code, out = getJSON(t, ts.URL+"/stats")
	if code != http.StatusOK || out["seq"].(float64) != 3 {
		t.Fatalf("stats seq: %d %v", code, out["seq"])
	}
	cs, ok := out["change_stream"].(map[string]any)
	if !ok || cs["enabled"].(bool) != true || cs["seq"].(float64) != 3 {
		t.Fatalf("stats change_stream = %v", out["change_stream"])
	}

	// Parameter validation.
	if code, _ := getJSON(t, ts.URL+"/changes"); code != http.StatusBadRequest {
		t.Fatalf("missing since: %d, want 400", code)
	}
	if code, _ := getJSON(t, ts.URL+"/changes?since=x"); code != http.StatusBadRequest {
		t.Fatalf("bad since: %d, want 400", code)
	}
	if code, _ := getJSON(t, ts.URL+"/changes?since=0&limit=1000000"); code != http.StatusBadRequest {
		t.Fatalf("huge limit: %d, want 400", code)
	}
}

func TestChangesLongPollReturnsOnEvent(t *testing.T) {
	ts := newTestService(t)
	seedOne(t, ts)

	type result struct {
		code int
		out  map[string]any
	}
	done := make(chan result, 1)
	go func() {
		code, out := getJSON(t, ts.URL+"/changes?since=1&wait=30s")
		done <- result{code, out}
	}()
	// Give the long-poll a moment to park, then mutate.
	time.Sleep(50 * time.Millisecond)
	postJSON(t, ts.URL+"/upsert", `{"id":"wake","coord":{"vec":[5,0,0]}}`)

	select {
	case r := <-done:
		if r.code != http.StatusOK {
			t.Fatalf("long-poll: %d %v", r.code, r.out)
		}
		events := r.out["events"].([]any)
		if len(events) != 1 || events[0].(map[string]any)["entry"].(map[string]any)["id"] != "wake" {
			t.Fatalf("long-poll events = %v", events)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long-poll never returned after a mutation")
	}
}

func TestChangesTruncationIs410(t *testing.T) {
	// A non-persistent leader retains only the ring; resuming from
	// before it must be a 410 so clients re-bootstrap.
	ts, _ := newTestServiceReg(t, netcoord.RegistryConfig{ChangeStreamBuffer: 4})
	for i := 0; i < 20; i++ {
		postJSON(t, ts.URL+"/upsert", fmt.Sprintf(`{"id":"n%d","coord":{"vec":[%d,0,0]}}`, i, i))
	}
	code, out := getJSON(t, ts.URL+"/changes?since=0")
	if code != http.StatusGone {
		t.Fatalf("pre-ring resume: %d %v, want 410", code, out)
	}
	if code, _ := getJSON(t, ts.URL+"/changes?since=19"); code != http.StatusOK {
		t.Fatalf("in-ring resume: %d, want 200", code)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data map[string]any
}

// sseLine is one raw line (or terminal error) from the stream.
type sseLine struct {
	line string
	err  error
}

// sseReader incrementally parses an SSE stream. One goroutine owns the
// underlying reader for the stream's whole life; next only consumes
// parsed lines.
type sseReader struct {
	t     *testing.T
	lines chan sseLine
}

func newSSEReader(t *testing.T, br *bufio.Reader) *sseReader {
	r := &sseReader{t: t, lines: make(chan sseLine, 64)}
	go func() {
		for {
			line, err := br.ReadString('\n')
			r.lines <- sseLine{line, err}
			if err != nil {
				return
			}
		}
	}()
	return r
}

func (r *sseReader) next(timeout time.Duration) (sseEvent, bool) {
	r.t.Helper()
	ev := sseEvent{}
	deadline := time.After(timeout)
	for {
		select {
		case le := <-r.lines:
			if le.err != nil {
				return ev, false
			}
			line := strings.TrimRight(le.line, "\n")
			switch {
			case strings.HasPrefix(line, ":"): // keepalive comment
			case strings.HasPrefix(line, "event: "):
				ev.name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev.data); err != nil {
					r.t.Fatalf("bad SSE data %q: %v", line, err)
				}
			case line == "":
				if ev.name != "" {
					return ev, true
				}
			}
		case <-deadline:
			return ev, false
		}
	}
}

func watchIDs(t *testing.T, ev sseEvent) []string {
	t.Helper()
	raw, ok := ev.data["results"].([]any)
	if !ok {
		t.Fatalf("no results in %v", ev.data)
	}
	ids := make([]string, len(raw))
	for i, r := range raw {
		ids[i] = r.(map[string]any)["id"].(string)
	}
	return ids
}

func TestWatchStreamsNearestSetDeltas(t *testing.T) {
	ts := newTestService(t)
	postJSON(t, ts.URL+"/upsert", `{"entries":[
		{"id":"a","coord":{"vec":[1,0,0]}},
		{"id":"b","coord":{"vec":[2,0,0]}},
		{"id":"c","coord":{"vec":[50,0,0]}}]}`)

	resp, err := http.Get(ts.URL + "/watch?vec=0,0,0&k=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("watch content type = %q", ct)
	}
	r := newSSEReader(t, bufio.NewReader(resp.Body))

	// Initial snapshot: the current top-2.
	ev, ok := r.next(5 * time.Second)
	if !ok || ev.name != "snapshot" {
		t.Fatalf("first event = %+v, ok=%v; want snapshot", ev, ok)
	}
	if ids := watchIDs(t, ev); len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("snapshot ids = %v, want [a b]", ids)
	}

	// An upsert far outside the top-2 must produce no delta; the next
	// delta received must be the one caused by a genuine change. The
	// server recomputes only on plausible events and pushes only real
	// changes, so event #1 here is the [e a] set.
	postJSON(t, ts.URL+"/upsert", `{"id":"d","coord":{"vec":[100,0,0]}}`)
	postJSON(t, ts.URL+"/upsert", `{"id":"e","coord":{"vec":[0.5,0,0]}}`)
	ev, ok = r.next(5 * time.Second)
	if !ok || ev.name != "delta" {
		t.Fatalf("event after upserts = %+v, ok=%v; want delta", ev, ok)
	}
	if ids := watchIDs(t, ev); len(ids) != 2 || ids[0] != "e" || ids[1] != "a" {
		t.Fatalf("delta ids = %v, want [e a] (far upsert must not have produced a delta)", ids)
	}
	added, _ := ev.data["added"].([]any)
	if len(added) != 1 || added[0].(string) != "e" {
		t.Fatalf("delta added = %v, want [e]", ev.data["added"])
	}

	// Removing a member produces the next delta; b re-enters.
	postJSON(t, ts.URL+"/remove", `{"id":"e"}`)
	ev, ok = r.next(5 * time.Second)
	if !ok || ev.name != "delta" {
		t.Fatalf("event after remove = %+v, ok=%v; want delta", ev, ok)
	}
	if ids := watchIDs(t, ev); len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("delta after remove = %v, want [a b]", ids)
	}
	removed, _ := ev.data["removed"].([]any)
	if len(removed) != 1 || removed[0].(string) != "e" {
		t.Fatalf("delta removed = %v, want [e]", ev.data["removed"])
	}

	// A refresh of an existing coordinate (the overwhelmingly common
	// heartbeat case) changes nothing and must stay silent: drive a
	// control change after it and assert the next delta is the
	// control's.
	postJSON(t, ts.URL+"/upsert", `{"id":"a","coord":{"vec":[1,0,0]}}`)
	postJSON(t, ts.URL+"/remove", `{"id":"b"}`)
	ev, ok = r.next(5 * time.Second)
	if !ok || ev.name != "delta" {
		t.Fatalf("control event = %+v, ok=%v", ev, ok)
	}
	if ids := watchIDs(t, ev); len(ids) != 2 || ids[0] != "a" || ids[1] != "c" {
		t.Fatalf("control delta = %v, want [a c] (heartbeat refresh must not delta)", ids)
	}
}

func TestWatchByIDExcludesSelfAndFollowsMoves(t *testing.T) {
	ts := newTestService(t)
	postJSON(t, ts.URL+"/upsert", `{"entries":[
		{"id":"n1","coord":{"vec":[0,0,0]}},
		{"id":"a","coord":{"vec":[1,0,0]}},
		{"id":"b","coord":{"vec":[2,0,0]}},
		{"id":"far","coord":{"vec":[100,0,0]}}]}`)

	resp, err := http.Get(ts.URL + "/watch?id=n1&k=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	r := newSSEReader(t, bufio.NewReader(resp.Body))

	// Same semantics as /nearest?id=n1: n1 is not its own neighbor.
	ev, ok := r.next(5 * time.Second)
	if !ok || ev.name != "snapshot" {
		t.Fatalf("first event = %+v, ok=%v", ev, ok)
	}
	if ids := watchIDs(t, ev); len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("snapshot ids = %v, want [a b] (self must be excluded)", ids)
	}

	// Heartbeat refresh of the watched node itself: no delta. Then the
	// node MOVES — its neighborhood is recomputed from the new
	// coordinate, so "far" becomes its nearest.
	postJSON(t, ts.URL+"/upsert", `{"id":"n1","coord":{"vec":[0,0,0]}}`)
	postJSON(t, ts.URL+"/upsert", `{"id":"n1","coord":{"vec":[99,0,0]}}`)
	ev, ok = r.next(5 * time.Second)
	if !ok || ev.name != "delta" {
		t.Fatalf("event after move = %+v, ok=%v", ev, ok)
	}
	if ids := watchIDs(t, ev); len(ids) != 2 || ids[0] != "far" {
		t.Fatalf("delta after move = %v, want [far ...] (watch must follow the node)", ids)
	}

	// Removing the watched node ends the stream.
	postJSON(t, ts.URL+"/remove", `{"id":"n1"}`)
	if ev, ok := r.next(5 * time.Second); ok {
		t.Fatalf("stream still alive after watched node removed: %+v", ev)
	}
}

func TestFollowerOfFollowerChains(t *testing.T) {
	leaderTS, leaderReg := newTestServiceReg(t, netcoord.RegistryConfig{
		ChangeStreamBuffer: netcoord.DefaultChangeStreamBuffer,
	})
	for i := 0; i < 10; i++ {
		postJSON(t, leaderTS.URL+"/upsert", fmt.Sprintf(`{"id":"n%02d","coord":{"vec":[%d,0,0]},"error":0.1}`, i, i))
	}
	mid := startTestFollower(t, leaderTS.URL)
	waitConverged(t, mid, leaderReg)
	midTS := newFollowerService(t, mid)

	// The middle tier's /snapshot names its upstream (informational)...
	code, out := getJSON(t, midTS.URL+"/snapshot")
	if code != http.StatusOK || out["follower_of"].(string) != leaderTS.URL {
		t.Fatalf("mid snapshot = %d %v, want follower_of=%s", code, out, leaderTS.URL)
	}
	// ...and a second-tier follower bootstraps from it and tails its
	// relayed /changes — events arrive with the LEADER's sequences.
	leaf := startTestFollower(t, midTS.URL)
	waitConverged(t, leaf, leaderReg)
	assertReplicaIdentical(t, leaf, leaderReg)

	// Mutations keep flowing leader → mid → leaf.
	for i := 0; i < 10; i++ {
		postJSON(t, leaderTS.URL+"/upsert", fmt.Sprintf(`{"id":"m%02d","coord":{"vec":[0,%d,0]}}`, i, i))
	}
	postJSON(t, leaderTS.URL+"/remove", `{"id":"n00"}`)
	waitConverged(t, mid, leaderReg)
	waitConverged(t, leaf, leaderReg)
	assertReplicaIdentical(t, leaf, leaderReg)
	if st := leaf.FollowerStats(); st.AppliedSeq != leaderReg.ChangeSeq() {
		t.Fatalf("leaf applied seq %d, leader at %d: tiers drifted out of one sequence space", st.AppliedSeq, leaderReg.ChangeSeq())
	}
}

func TestWatchParameterValidation(t *testing.T) {
	ts := newTestService(t)
	seedOne(t, ts)
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/watch", http.StatusBadRequest},
		{"/watch?vec=1,2", http.StatusBadRequest}, // wrong dimension
		{"/watch?vec=a,b,c", http.StatusBadRequest},
		{"/watch?id=ghost", http.StatusNotFound},
		{"/watch?vec=1,2,3&k=0", http.StatusBadRequest},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

// startTestFollower follows a leader URL with test-friendly timings.
func startTestFollower(t *testing.T, leaderURL string) *netcoord.FollowerRegistry {
	t.Helper()
	f, err := netcoord.StartFollower(netcoord.FollowerConfig{
		LeaderURL:     leaderURL,
		WaitTimeout:   200 * time.Millisecond,
		RetryInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("StartFollower: %v", err)
	}
	t.Cleanup(f.Close)
	return f
}

// waitConverged polls until the follower has applied everything the
// leader has sequenced.
func waitConverged(t *testing.T, f *netcoord.FollowerRegistry, leader *netcoord.Registry) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if f.AppliedSeq() == leader.ChangeSeq() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at seq %d, leader at %d (stats %+v)",
				f.AppliedSeq(), leader.ChangeSeq(), f.FollowerStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// assertReplicaIdentical compares a follower's contents to the
// leader's, bit for bit: ids, coordinates, error weights, UpdatedAt.
func assertReplicaIdentical(t *testing.T, f *netcoord.FollowerRegistry, leader *netcoord.Registry) {
	t.Helper()
	ls, fs := leader.Snapshot(), f.Snapshot()
	if len(ls) != len(fs) {
		t.Fatalf("follower has %d entries, leader %d", len(fs), len(ls))
	}
	for i := range ls {
		l, g := ls[i], fs[i]
		if g.ID != l.ID || !g.Coord.Equal(l.Coord) || g.Error != l.Error {
			t.Fatalf("entry %d: follower %+v, leader %+v", i, g, l)
		}
		if g.UpdatedAt.UnixNano() != l.UpdatedAt.UnixNano() {
			t.Fatalf("entry %s: UpdatedAt %v vs leader %v", g.ID, g.UpdatedAt, l.UpdatedAt)
		}
	}
}

func TestFollowerReplicatesLiveLeader(t *testing.T) {
	ts, leaderReg := newTestServiceReg(t, netcoord.RegistryConfig{
		ChangeStreamBuffer: netcoord.DefaultChangeStreamBuffer,
	})
	for i := 0; i < 50; i++ {
		postJSON(t, ts.URL+"/upsert", fmt.Sprintf(`{"id":"n%02d","coord":{"vec":[%d,0,0]},"error":0.25}`, i, i))
	}

	f := startTestFollower(t, ts.URL)
	if f.Len() != 50 {
		t.Fatalf("bootstrap loaded %d entries, want 50", f.Len())
	}
	waitConverged(t, f, leaderReg)
	assertReplicaIdentical(t, f, leaderReg)

	// Keep mutating the live leader; the follower tails to identity.
	for i := 0; i < 30; i++ {
		postJSON(t, ts.URL+"/upsert", fmt.Sprintf(`{"id":"m%02d","coord":{"vec":[0,%d,0]}}`, i, i))
	}
	postJSON(t, ts.URL+"/remove", `{"id":"n00"}`)
	postJSON(t, ts.URL+"/remove", `{"id":"n01"}`)
	waitConverged(t, f, leaderReg)
	assertReplicaIdentical(t, f, leaderReg)

	// Read path answers match the leader's exactly.
	lNear, err := leaderReg.Nearest(netcoord.Coordinate{Vec: []float64{1, 1, 0}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	fNear, err := f.Nearest(netcoord.Coordinate{Vec: []float64{1, 1, 0}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(lNear) != len(fNear) {
		t.Fatalf("nearest lengths differ: %d vs %d", len(lNear), len(fNear))
	}
	for i := range lNear {
		if lNear[i].ID != fNear[i].ID || lNear[i].EstimatedRTT != fNear[i].EstimatedRTT {
			t.Fatalf("nearest[%d]: leader %+v, follower %+v", i, lNear[i], fNear[i])
		}
	}
	st := f.FollowerStats()
	if st.Lag != 0 || st.Bootstraps != 1 {
		t.Fatalf("follower stats after convergence: %+v", st)
	}
}

func TestFollowerReBootstrapsAfterTruncation(t *testing.T) {
	// A leader with a tiny ring and no WAL forgets history fast; a
	// follower that missed it must get a 410 and re-bootstrap, and
	// still converge to identical contents.
	ts, leaderReg := newTestServiceReg(t, netcoord.RegistryConfig{ChangeStreamBuffer: 8})
	for i := 0; i < 10; i++ {
		postJSON(t, ts.URL+"/upsert", fmt.Sprintf(`{"id":"n%02d","coord":{"vec":[%d,0,0]}}`, i, i))
	}
	f := startTestFollower(t, ts.URL)
	waitConverged(t, f, leaderReg)

	// Burst far past the ring faster than any poll cadence can follow:
	// in-process mutations outrun the per-poll HTTP round-trip, so the
	// follower is guaranteed to find its resume point compacted away.
	for i := 0; i < 10_000; i++ {
		if err := leaderReg.Upsert(fmt.Sprintf("burst%04d", i%500), netcoord.Coordinate{Vec: []float64{0, float64(i % 97), 0}}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if !leaderReg.Remove("n03") {
		t.Fatal("remove n03 failed")
	}
	waitConverged(t, f, leaderReg)
	assertReplicaIdentical(t, f, leaderReg)
	if st := f.FollowerStats(); st.Bootstraps < 2 {
		t.Fatalf("expected a re-bootstrap after truncation, stats %+v", st)
	}
}

func TestFollowerModeHTTPSurface(t *testing.T) {
	leaderTS, leaderReg := newTestServiceReg(t, netcoord.RegistryConfig{
		ChangeStreamBuffer: netcoord.DefaultChangeStreamBuffer,
	})
	postJSON(t, leaderTS.URL+"/upsert", `{"entries":[
		{"id":"a","coord":{"vec":[1,0,0]}},
		{"id":"b","coord":{"vec":[2,0,0]}}]}`)

	f := startTestFollower(t, leaderTS.URL)
	waitConverged(t, f, leaderReg)
	fts := newFollowerService(t, f)

	// Reads work and see the replicated state.
	code, out := getJSON(t, fts.URL+"/nearest?id=a&k=1")
	if code != http.StatusOK || resultIDs(t, out)[0] != "b" {
		t.Fatalf("follower nearest: %d %v", code, out)
	}
	if code, _ := getJSON(t, fts.URL+"/estimate?a=a&b=b"); code != http.StatusOK {
		t.Fatalf("follower estimate: %d", code)
	}

	// Mutations are refused; the error names the leader.
	code, out = postJSON(t, fts.URL+"/upsert", `{"id":"x","coord":{"vec":[9,9,9]}}`)
	if code != http.StatusForbidden || !strings.Contains(out["error"].(string), leaderTS.URL) {
		t.Fatalf("follower upsert: %d %v, want 403 naming the leader", code, out)
	}
	if code, _ = postJSON(t, fts.URL+"/remove", `{"id":"a"}`); code != http.StatusForbidden {
		t.Fatalf("follower remove: %d, want 403", code)
	}

	// The stream is re-served in the leader's sequence space. History
	// before the follower's bootstrap point is genuinely gone here — a
	// resume below the relay ring is a 410 (re-bootstrap from this
	// follower's /snapshot), the same protocol the leader speaks.
	if code, _ = getJSON(t, fts.URL+"/changes?since=0"); code != http.StatusGone {
		t.Fatalf("follower changes below bootstrap point: %d, want 410", code)
	}
	bootSeq := leaderReg.ChangeSeq()
	postJSON(t, leaderTS.URL+"/upsert", `{"id":"c","coord":{"vec":[3,0,0]}}`)
	waitConverged(t, f, leaderReg)
	code, out = getJSON(t, fts.URL+fmt.Sprintf("/changes?since=%d", bootSeq))
	if code != http.StatusOK {
		t.Fatalf("follower changes: %d %v, want 200 (replicas relay the stream)", code, out)
	}
	evs := out["events"].([]any)
	if len(evs) != 1 || evs[0].(map[string]any)["seq"].(float64) != float64(bootSeq+1) {
		t.Fatalf("follower relayed events = %v, want the leader's upsert at seq %d", evs, bootSeq+1)
	}
	code, out = getJSON(t, fts.URL+"/snapshot")
	if code != http.StatusOK || out["seq"].(float64) != float64(leaderReg.ChangeSeq()) {
		t.Fatalf("follower snapshot: %d %v", code, out)
	}

	// Stats report replication position.
	code, out = getJSON(t, fts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("follower stats: %d", code)
	}
	fst, ok := out["follower"].(map[string]any)
	if !ok || fst["applied_seq"].(float64) != float64(leaderReg.ChangeSeq()) || fst["lag"].(float64) != 0 {
		t.Fatalf("follower stats = %v", out["follower"])
	}
}
