package sim

import (
	"fmt"
	"testing"

	"netcoord/internal/netsim"
	"netcoord/internal/trace"
	"netcoord/internal/vivaldi"
)

// TestRunGeneratedBitIdenticalToSequential is the oracle test for
// in-worker synthesis: across seeds, populations, churn, and policies,
// RunGenerated with several workers must reproduce the sequential
// single-generator run bit for bit — the same contract
// TestParallelBitIdenticalToSequential pins for the prefetch engine.
func TestRunGeneratedBitIdenticalToSequential(t *testing.T) {
	const seconds = 240
	for _, seed := range []uint64{3, 17} {
		for _, nodes := range []int{12, 33} {
			for _, churn := range []bool{false, true} {
				for name, policy := range policyFactories() {
					name := fmt.Sprintf("seed%d_n%d_churn%v_%s", seed, nodes, churn, name)
					policy := policy
					nodes, seed, churn := nodes, seed, churn
					t.Run(name, func(t *testing.T) {
						gcfg := trace.GeneratorConfig{
							IntervalTicks: 1,
							DurationTicks: seconds,
							Seed:          seed + 1,
						}
						if churn {
							gcfg.JoinSpreadTicks = seconds * 3 / 4
						}
						newRunner := func(parallelism int) (*Runner, *netsim.Network) {
							net, err := netsim.New(netsim.DefaultWideArea(nodes, seed))
							if err != nil {
								t.Fatalf("netsim.New: %v", err)
							}
							vcfg := vivaldi.DefaultConfig()
							vcfg.Seed = seed + 2
							r, err := NewRunner(Config{
								Nodes:       nodes,
								Vivaldi:     vcfg,
								Filter:      mpFactory,
								Policy:      policy,
								Parallelism: parallelism,
							})
							if err != nil {
								t.Fatalf("NewRunner: %v", err)
							}
							return r, net
						}

						seqRunner, seqNet := newRunner(1)
						g, err := trace.NewGenerator(seqNet, gcfg)
						if err != nil {
							t.Fatalf("NewGenerator: %v", err)
						}
						if err := seqRunner.Run(g); err != nil {
							t.Fatalf("Run: %v", err)
						}
						seq := fingerprint(t, seqRunner, nodes, seconds)

						for _, workers := range []int{4, 5} {
							parRunner, parNet := newRunner(workers)
							if err := parRunner.RunGenerated(parNet, gcfg); err != nil {
								t.Fatalf("RunGenerated(%d): %v", workers, err)
							}
							par := fingerprint(t, parRunner, nodes, seconds)
							if msg, ok := seq.equal(par); !ok {
								t.Fatalf("RunGenerated(%d workers) diverged from sequential: %s", workers, msg)
							}
						}
					})
				}
			}
		}
	}
}
