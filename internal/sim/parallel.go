package sim

import (
	"sync"

	"netcoord/internal/trace"
)

// The parallel engine exploits the tick-barrier structure documented in
// the package comment: within one tick, a sample mutates only its From
// node and reads remote state from the frozen tick-start snapshot. The
// runner therefore
//
//  1. prefetches the trace one tick ahead on its own goroutine (trace
//     generation — hash-stream latency synthesis — overlaps compute),
//  2. publishes the tick boundary, shards the tick's samples by From
//     across the workers (samples sharing a From stay on one worker, in
//     trace order, so duplicate-From traces remain exact),
//  3. runs compute concurrently, then
//  4. folds the results into the metric collectors on the coordinator,
//     in original trace order.
//
// Step 4 is deliberately centralized rather than merging per-worker
// collectors: per-tick aggregates (instability sums) are floating-point
// accumulations whose value depends on addition order, and replaying the
// per-sample results in trace order reproduces the sequential engine's
// order exactly. That is what makes parallel runs bit-identical, not
// just statistically equivalent. The recording pass is a few appends per
// sample — two orders of magnitude cheaper than compute — so it does not
// meaningfully bound the speedup.

// parallelBatchFloor is the tick size below which dispatching to workers
// costs more than it saves; smaller ticks are processed inline (with
// identical results, since order within a tick does not matter).
const parallelBatchFloor = 32

// tickBatch is one tick's worth of contiguous samples.
type tickBatch struct {
	samples []trace.Sample
}

// runParallel drains src with the given number of workers (at least 2;
// capped at the node count, since a worker per node is the sharding
// limit).
func (r *Runner) runParallel(src trace.Source, workers int) error {
	if workers > len(r.nodes) {
		workers = len(r.nodes)
	}
	if workers < 2 {
		return r.runSequential(src)
	}

	// Prefetcher: groups the source into per-tick batches one tick
	// ahead. Buffers rotate through the free list to avoid per-tick
	// allocation.
	const bufferCount = 3
	batches := make(chan tickBatch, 1)
	free := make(chan []trace.Sample, bufferCount)
	for i := 0; i < bufferCount; i++ {
		free <- nil
	}
	done := make(chan struct{})
	defer close(done)
	go prefetch(src, batches, free, done)

	// Persistent workers, one start channel each.
	ps := &parallelState{assign: make([][]int, workers)}
	start := make([]chan struct{}, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		start[w] = make(chan struct{}, 1)
		go func(w int) {
			for range start[w] {
				for _, idx := range ps.assign[w] {
					r.compute(ps.batch[idx], &ps.results[idx])
				}
				wg.Done()
			}
		}(w)
	}
	defer func() {
		for _, ch := range start {
			close(ch)
		}
	}()

	for batch := range batches {
		if err := r.runTick(ps, batch.samples, start, &wg, workers); err != nil {
			return err
		}
		select {
		case free <- batch.samples[:0]:
		case <-done:
		}
	}
	return nil
}

// parallelState is the per-tick scratch shared between the coordinator
// and the workers. The coordinator writes batch/results/assign before
// signalling the workers and reads results only after the barrier, so
// no field needs a lock.
type parallelState struct {
	batch   []trace.Sample
	results []stepResult
	assign  [][]int
}

// runTick processes one tick's samples: publish the boundary, compute
// (inline or sharded across workers), then record in trace order.
func (r *Runner) runTick(ps *parallelState, batch []trace.Sample, start []chan struct{}, wg *sync.WaitGroup, workers int) error {
	if len(batch) == 0 {
		return nil
	}
	// Validate up front so workers only ever see well-formed samples. A
	// malformed sample degrades to the sequential engine's behavior
	// exactly: everything before it is processed, then its error is
	// returned.
	valid := len(batch)
	var checkErr error
	for i, s := range batch {
		if err := r.check(s); err != nil {
			valid, checkErr = i, err
			break
		}
	}

	r.advanceTo(batch[0].Tick)

	if valid < parallelBatchFloor {
		for i := 0; i < valid; i++ {
			if err := r.stepValidated(batch[i]); err != nil {
				return err
			}
		}
		return checkErr
	}

	// Shard by From: a sample's index goes to worker From % workers, so
	// each node's samples stay on one worker in trace order.
	ps.batch = batch[:valid]
	if cap(ps.results) < valid {
		ps.results = make([]stepResult, valid)
	} else {
		ps.results = ps.results[:valid]
	}
	for w := range ps.assign {
		ps.assign[w] = ps.assign[w][:0]
	}
	for i, s := range ps.batch {
		if s.Lost {
			continue
		}
		ps.assign[s.From%workers] = append(ps.assign[s.From%workers], i)
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		start[w] <- struct{}{}
	}
	wg.Wait()

	for i := range ps.batch {
		s := ps.batch[i]
		r.count(s)
		if s.Lost {
			continue
		}
		if err := r.record(s, &ps.results[i]); err != nil {
			return err
		}
	}
	return checkErr
}

// stepValidated is Step minus check and advanceTo, for samples the
// coordinator already vetted within an advanced tick.
func (r *Runner) stepValidated(s trace.Sample) error {
	r.count(s)
	if s.Lost {
		return nil
	}
	var res stepResult
	r.compute(s, &res)
	return r.record(s, &res)
}

// runSequential is the plain loop, used when the effective worker count
// collapses to one.
func (r *Runner) runSequential(src trace.Source) error {
	for {
		s, ok := src.Next()
		if !ok {
			return nil
		}
		if err := r.Step(s); err != nil {
			return err
		}
	}
}

// prefetch groups src into per-tick batches and sends them until the
// source is exhausted or the runner signals done.
func prefetch(src trace.Source, batches chan<- tickBatch, free <-chan []trace.Sample, done <-chan struct{}) {
	defer close(batches)
	var buf []trace.Sample
	flush := func() bool {
		if len(buf) == 0 {
			return true
		}
		select {
		case batches <- tickBatch{samples: buf}:
		case <-done:
			return false
		}
		select {
		case buf = <-free:
		case <-done:
			return false
		}
		return true
	}
	for {
		s, ok := src.Next()
		if !ok {
			flush()
			return
		}
		if len(buf) > 0 && s.Tick != buf[0].Tick {
			if !flush() {
				return
			}
		}
		buf = append(buf, s)
	}
}
