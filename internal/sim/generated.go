package sim

import (
	"runtime"
	"sync"

	"netcoord/internal/netsim"
	"netcoord/internal/trace"
)

// RunGenerated drains a synthetic trace with in-worker synthesis: the
// saturated form of the parallel engine for generator-backed runs.
//
// Run's engine synthesizes the whole trace on one prefetch goroutine
// and fans the compute out; at high worker counts the single
// synthesizer becomes the bottleneck (hash-stream latency synthesis is
// a third of the per-sample cost). Here each worker owns a shard of
// the nodes (From % workers) and synthesizes its own nodes' samples
// directly via trace.NewGeneratorShard — no sample ever crosses a
// goroutine before compute, and the coordinator only replays the
// per-tick results.
//
// Bit-identity with the sequential engine holds by the same argument
// as parallel.go, plus two generator facts: sharded generators emit
// exactly the unsharded stream partitioned by From (per-node cursors
// advance only when their node fires), and within one tick each node
// fires at most once, in node order — so replaying slots in ascending
// node index reproduces trace order exactly. The coordinator advances
// the tick barrier for every tick, including sample-free ones; that
// flushes dirty snapshots no later than the sequential engine would,
// and no sample exists between the two flush points to observe the
// difference.
func (r *Runner) RunGenerated(net *netsim.Network, gcfg trace.GeneratorConfig) error {
	workers := r.cfg.Parallelism
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(r.nodes) {
		workers = len(r.nodes)
	}
	if workers < 2 {
		g, err := trace.NewGenerator(net, gcfg)
		if err != nil {
			return err
		}
		return r.runSequential(g)
	}

	gens := make([]*trace.Generator, workers)
	for w := range gens {
		g, err := trace.NewGeneratorShard(net, gcfg, w, workers)
		if err != nil {
			return err
		}
		gens[w] = g
	}

	// Per-tick slots, one per node: worker w writes only nodes with
	// index ≡ w (mod workers), each at most once per tick, so no two
	// goroutines ever touch the same slot. The coordinator reads them
	// only after the barrier.
	n := len(r.nodes)
	slots := make([]trace.Sample, n)
	has := make([]bool, n)
	results := make([]stepResult, n)
	var tick uint64

	start := make([]chan struct{}, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		start[w] = make(chan struct{}, 1)
		go func(w int) {
			g := gens[w]
			var pending trace.Sample
			hasPending := false
			for range start[w] {
				for {
					var s trace.Sample
					if hasPending {
						s = pending
					} else {
						var ok bool
						if s, ok = g.Next(); !ok {
							break
						}
					}
					if s.Tick != tick {
						// First sample of a later tick: park it for
						// that tick's round.
						pending, hasPending = s, true
						break
					}
					hasPending = false
					slots[s.From] = s
					has[s.From] = true
					if !s.Lost {
						// Generator samples are well-formed by
						// construction (both endpoints in range,
						// From != To), so check is skipped.
						r.compute(s, &results[s.From])
					}
				}
				wg.Done()
			}
		}(w)
	}
	defer func() {
		for _, ch := range start {
			close(ch)
		}
	}()

	for tick = 0; tick < gcfg.DurationTicks; tick++ {
		r.advanceTo(tick)
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			start[w] <- struct{}{}
		}
		wg.Wait()
		for i := 0; i < n; i++ {
			if !has[i] {
				continue
			}
			has[i] = false
			s := slots[i]
			r.count(s)
			if s.Lost {
				continue
			}
			if err := r.record(s, &results[i]); err != nil {
				return err
			}
		}
	}
	return nil
}
