package sim

import (
	"fmt"
	"testing"

	"netcoord/internal/heuristic"
	"netcoord/internal/netsim"
	"netcoord/internal/trace"
	"netcoord/internal/vivaldi"
)

// runnerFingerprint captures everything a simulation run produces:
// stream counters, every node's final system/application coordinates and
// confidence, and the full metric summaries of both streams. Two runs
// are considered identical only if every float in here is bit-equal.
type runnerFingerprint struct {
	samples, lost, last uint64
	coords              []float64
	summaries           []float64
	instability         []float64
}

func fingerprint(t *testing.T, r *Runner, nodes int, seconds uint64) runnerFingerprint {
	t.Helper()
	fp := runnerFingerprint{samples: r.Samples(), lost: r.Lost(), last: r.LastTick()}
	for i := 0; i < nodes; i++ {
		c, err := r.Coordinate(i)
		if err != nil {
			t.Fatalf("Coordinate(%d): %v", i, err)
		}
		fp.coords = append(fp.coords, c.Vec...)
		fp.coords = append(fp.coords, c.Height)
		a, err := r.AppCoordinate(i)
		if err != nil {
			t.Fatalf("AppCoordinate(%d): %v", i, err)
		}
		fp.coords = append(fp.coords, a.Vec...)
		conf, err := r.Confidence(i)
		if err != nil {
			t.Fatalf("Confidence(%d): %v", i, err)
		}
		fp.coords = append(fp.coords, conf)
	}
	sysSum, err := r.Sys().Summarize(0, seconds)
	if err != nil {
		t.Fatalf("Summarize sys: %v", err)
	}
	appSum, err := r.App().Summarize(0, seconds)
	if err != nil {
		t.Fatalf("Summarize app: %v", err)
	}
	fp.summaries = []float64{
		sysSum.MedianRelErr, sysSum.P95RelErrMedian, sysSum.MedianInstability,
		sysSum.MeanInstability, sysSum.MeanUpdateFraction,
		appSum.MedianRelErr, appSum.P95RelErrMedian, appSum.MedianInstability,
		appSum.MeanInstability, appSum.MeanUpdateFraction,
	}
	fp.instability = append(r.Sys().InstabilitySeries(0, seconds), r.App().InstabilitySeries(0, seconds)...)
	return fp
}

func (a runnerFingerprint) equal(b runnerFingerprint) (string, bool) {
	if a.samples != b.samples || a.lost != b.lost || a.last != b.last {
		return "stream counters", false
	}
	cmp := func(x, y []float64, what string) (string, bool) {
		if len(x) != len(y) {
			return what + " length", false
		}
		for i := range x {
			if x[i] != y[i] {
				return fmt.Sprintf("%s[%d]: %v vs %v", what, i, x[i], y[i]), false
			}
		}
		return "", true
	}
	if msg, ok := cmp(a.coords, b.coords, "coordinates"); !ok {
		return msg, false
	}
	if msg, ok := cmp(a.summaries, b.summaries, "summaries"); !ok {
		return msg, false
	}
	return cmp(a.instability, b.instability, "instability series")
}

// policyFactories are the three deployed heuristics the determinism
// matrix exercises (Direct is additionally the NewRunner default).
func policyFactories() map[string]PolicyFactory {
	return map[string]PolicyFactory{
		"direct": func(dim int) (heuristic.Policy, error) { return heuristic.NewDirect(dim) },
		"energy": func(dim int) (heuristic.Policy, error) {
			return heuristic.NewEnergy(dim, heuristic.DefaultWindow, heuristic.DefaultEnergyTau)
		},
		"relative": func(dim int) (heuristic.Policy, error) {
			return heuristic.NewRelative(dim, heuristic.DefaultWindow, heuristic.DefaultRelativeEpsilon)
		},
	}
}

// TestParallelBitIdenticalToSequential is the oracle test for the
// parallel engine: across seeds, node counts, churn, and all three
// policies, a parallel run must reproduce the sequential run bit for
// bit — coordinates, confidences, counters, summaries, and the raw
// per-second instability series.
func TestParallelBitIdenticalToSequential(t *testing.T) {
	const seconds = 240
	for _, seed := range []uint64{3, 17} {
		for _, nodes := range []int{12, 33} {
			for _, churn := range []bool{false, true} {
				for name, policy := range policyFactories() {
					name := fmt.Sprintf("seed%d_n%d_churn%v_%s", seed, nodes, churn, name)
					policy := policy
					nodes, seed, churn := nodes, seed, churn
					t.Run(name, func(t *testing.T) {
						run := func(parallelism int) runnerFingerprint {
							net, err := netsim.New(netsim.DefaultWideArea(nodes, seed))
							if err != nil {
								t.Fatalf("netsim.New: %v", err)
							}
							gcfg := trace.GeneratorConfig{
								IntervalTicks: 1,
								DurationTicks: seconds,
								Seed:          seed + 1,
							}
							if churn {
								gcfg.JoinSpreadTicks = seconds * 3 / 4
							}
							g, err := trace.NewGenerator(net, gcfg)
							if err != nil {
								t.Fatalf("NewGenerator: %v", err)
							}
							vcfg := vivaldi.DefaultConfig()
							vcfg.Seed = seed + 2
							r, err := NewRunner(Config{
								Nodes:       nodes,
								Vivaldi:     vcfg,
								Filter:      mpFactory,
								Policy:      policy,
								Parallelism: parallelism,
							})
							if err != nil {
								t.Fatalf("NewRunner: %v", err)
							}
							if err := r.Run(g); err != nil {
								t.Fatalf("Run: %v", err)
							}
							return fingerprint(t, r, nodes, seconds)
						}
						seq := run(1)
						par := run(4)
						if msg, ok := seq.equal(par); !ok {
							t.Fatalf("parallel run diverged from sequential: %s", msg)
						}
					})
				}
			}
		}
	}
}

// TestParallelHandlesDuplicateFromTraces covers the file-replay case the
// generator never produces: multiple samples from the same node within
// one tick. Sharding keeps same-From samples on one worker in trace
// order, so the run must still be bit-identical to sequential.
func TestParallelHandlesDuplicateFromTraces(t *testing.T) {
	const nodes = 16
	const seconds = 60
	mkTrace := func() *trace.SliceSource {
		var samples []trace.Sample
		for tick := uint64(0); tick < seconds; tick++ {
			for from := 0; from < nodes; from++ {
				for k := 0; k < 3; k++ { // three pings per node per tick
					to := (from + 1 + k*5) % nodes
					if to == from {
						to = (to + 1) % nodes
					}
					rtt := 20 + float64((from*7+to*13+int(tick)*3+k*11)%200)
					samples = append(samples, trace.Sample{
						Tick: tick, From: from, To: to, RTT: rtt,
						Lost: (from+to+int(tick))%97 == 0,
					})
				}
			}
		}
		return trace.NewSliceSource(samples)
	}
	run := func(parallelism int) runnerFingerprint {
		vcfg := vivaldi.DefaultConfig()
		vcfg.Seed = 99
		r, err := NewRunner(Config{
			Nodes:       nodes,
			Vivaldi:     vcfg,
			Filter:      mpFactory,
			Parallelism: parallelism,
		})
		if err != nil {
			t.Fatalf("NewRunner: %v", err)
		}
		if err := r.Run(mkTrace()); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return fingerprint(t, r, nodes, seconds)
	}
	seq := run(1)
	par := run(5) // odd worker count against 16 nodes: uneven shards
	if msg, ok := seq.equal(par); !ok {
		t.Fatalf("parallel run diverged on duplicate-From trace: %s", msg)
	}
}

// TestStepSteadyStateZeroAllocs locks in the tentpole's layer-1
// guarantee: once filters are warm, windows are full, and metric storage
// is reserved, Step allocates nothing — with the paper's deployed
// configuration (MP filter + ENERGY policy), fire events included.
func TestStepSteadyStateZeroAllocs(t *testing.T) {
	const nodes = 32
	const ticks = 260
	net, err := netsim.New(netsim.DefaultWideArea(nodes, 8))
	if err != nil {
		t.Fatalf("netsim.New: %v", err)
	}
	g, err := trace.NewGenerator(net, trace.GeneratorConfig{IntervalTicks: 1, DurationTicks: ticks, Seed: 9})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	samples := trace.Collect(g, 0)
	if len(samples) < 4000 {
		t.Fatalf("only %d samples generated", len(samples))
	}
	vcfg := vivaldi.DefaultConfig()
	vcfg.Seed = 10
	r, err := NewRunner(Config{
		Nodes:   nodes,
		Vivaldi: vcfg,
		Filter:  mpFactory,
		Policy: func(dim int) (heuristic.Policy, error) {
			return heuristic.NewEnergy(dim, heuristic.DefaultWindow, heuristic.DefaultEnergyTau)
		},
		ExpectedTicks:          ticks,
		ExpectedSamplesPerNode: ticks,
	})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	warm := len(samples) / 2
	for _, s := range samples[:warm] {
		if err := r.Step(s); err != nil {
			t.Fatalf("warm-up Step: %v", err)
		}
	}
	i := warm
	allocs := testing.AllocsPerRun(2000, func() {
		if err := r.Step(samples[i]); err != nil {
			t.Fatalf("Step: %v", err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step allocated %v per run (the hot loop must be allocation-free)", allocs)
	}
}
