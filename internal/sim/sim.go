// Package sim is the deterministic trace-driven simulator: the
// counterpart of the simulator the paper built to compare Vivaldi
// configurations on the same input ("we built a simulator that accepted
// our raw ping trace as input and mimicked the distributed behavior of
// Vivaldi").
//
// A Runner hosts one Vivaldi endpoint per node, each with its own
// per-link filter bank and application-update policy, and replays a
// trace.Source through them. For every observation the runner measures —
// before applying the update, as the paper does — the system-level and
// application-level relative error against the raw observed latency, then
// applies the filter, the Vivaldi update, and the policy, recording
// coordinate displacement at both levels.
//
// # Tick-barrier semantics
//
// Remote state is read through a per-node published snapshot that is
// refreshed at tick boundaries: when a sample at tick T+1 first arrives,
// every node whose state changed during tick T republishes its system
// coordinate, error weight, and application coordinate. Within a tick,
// every observation therefore sees the remote as it stood when the tick
// began — which is also the faithful model of a distributed deployment,
// where a pong carries whatever state the remote had when it replied,
// not the state after updates that happen to be processed earlier in the
// same simulated second.
//
// The barrier is what makes the parallel runner (see parallel.go) exact:
// within one tick each sample mutates only its From node, and all remote
// reads come from the frozen snapshot, so samples of a tick can be
// processed in any order — or concurrently — with bit-identical results.
//
// # Determinism
//
// Because trace generation and every node's randomness are seeded, two
// runners fed identically configured generators process bit-identical
// observation streams, which is how the experiments compare filters the
// way the paper compares them ("we ran them on the same set of PlanetLab
// nodes at the same time, using different ports"). Config.Parallelism
// does not perturb this: sequential and parallel runs produce identical
// SimulationResults, coordinates, and metric streams, bit for bit.
//
// # Allocation discipline
//
// A steady-state Step performs zero heap allocations: all coordinate
// arithmetic goes through the in-place vec/coord/vivaldi variants, the
// policies and window pairs maintain preallocated buffers, and metric
// storage can be pre-sized with the Expected* hints. This is what turns
// the reproduction loop from GC-bound into CPU-bound.
package sim

import (
	"errors"
	"fmt"
	"math"
	"runtime"

	"netcoord/internal/coord"
	"netcoord/internal/filter"
	"netcoord/internal/heuristic"
	"netcoord/internal/metrics"
	"netcoord/internal/trace"
	"netcoord/internal/vivaldi"
	"netcoord/internal/xrand"
)

// PolicyFactory builds one application-update policy for a node.
type PolicyFactory func(dim int) (heuristic.Policy, error)

// Config parameterizes a simulation run.
type Config struct {
	// Nodes is the number of simulated hosts; must cover every node id
	// in the trace.
	Nodes int
	// Vivaldi configures every node's update algorithm; the per-node RNG
	// seed is derived from Vivaldi.Seed and the node id.
	Vivaldi vivaldi.Config
	// Filter builds each node's per-link filter; nil means no filtering
	// (the paper's "No Filter" configuration).
	Filter filter.Factory
	// Policy builds each node's application-update policy; nil means
	// Direct (application coordinate follows the system coordinate).
	Policy PolicyFactory
	// Parallelism is the number of worker goroutines Run uses to process
	// each tick: 0 resolves to runtime.GOMAXPROCS(0), 1 (or negative)
	// forces the sequential engine, higher values pick an explicit
	// worker count. Results are bit-identical for every value (see the
	// tick-barrier notes in the package documentation), so this is
	// purely a wall-clock knob. The facades (netcoord.SimulationConfig,
	// experiments.Scale, ncsim -parallel) pass their field through
	// unchanged — 0 means GOMAXPROCS everywhere.
	Parallelism int
	// ExpectedTicks and ExpectedSamplesPerNode pre-size metric storage
	// so steady-state recording allocates nothing. Zero values grow on
	// demand; underestimates only cost the growth allocations back.
	ExpectedTicks          uint64
	ExpectedSamplesPerNode int
}

// Runner executes a simulation.
type Runner struct {
	cfg   Config
	nodes []*nodeState
	sys   *metrics.Collector
	app   *metrics.Collector

	samples uint64
	lost    uint64
	last    uint64

	// cur is the tick whose snapshot is currently published; dirty lists
	// the nodes that must republish at the next tick boundary.
	cur     uint64
	dirty   []int
	isDirty []bool
}

// nodeState is one simulated host.
type nodeState struct {
	viv    *vivaldi.Node
	bank   *filter.Bank[int]
	policy heuristic.Policy

	// Nearest-neighbor tracking for the RELATIVE policy: the paper's
	// nodes learn an approximate nearest neighbor from the latency
	// samples themselves.
	nnID    int
	nnDist  float64
	nnCoord coord.Coordinate
	hasNN   bool

	// Published tick-start snapshot: what remote peers observe until the
	// next tick boundary. Only the runner's publish step writes these.
	pubSys coord.Coordinate
	pubErr float64
	pubApp coord.Coordinate

	// Scratch buffers for displacement measurement, reused every step.
	prevSys coord.Coordinate
	prevApp coord.Coordinate
}

// NewRunner builds a runner.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("sim: %d nodes, want >= 2", cfg.Nodes)
	}
	if err := cfg.Vivaldi.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	sys, err := metrics.NewCollector(cfg.Nodes)
	if err != nil {
		return nil, err
	}
	app, err := metrics.NewCollector(cfg.Nodes)
	if err != nil {
		return nil, err
	}
	if cfg.ExpectedTicks > 0 || cfg.ExpectedSamplesPerNode > 0 {
		sys.Reserve(cfg.ExpectedTicks, cfg.ExpectedSamplesPerNode)
		app.Reserve(cfg.ExpectedTicks, cfg.ExpectedSamplesPerNode)
	}
	r := &Runner{
		cfg:     cfg,
		sys:     sys,
		app:     app,
		nodes:   make([]*nodeState, cfg.Nodes),
		dirty:   make([]int, 0, cfg.Nodes),
		isDirty: make([]bool, cfg.Nodes),
	}
	dim := cfg.Vivaldi.Dimension
	for i := 0; i < cfg.Nodes; i++ {
		vcfg := cfg.Vivaldi
		vcfg.Seed = xrand.Hash64(cfg.Vivaldi.Seed, uint64(i))
		viv, err := vivaldi.New(vcfg)
		if err != nil {
			return nil, fmt.Errorf("sim node %d: %w", i, err)
		}
		factory := cfg.Filter
		if factory == nil {
			factory = func() filter.Filter { return filter.NewNone() }
		}
		var policy heuristic.Policy
		if cfg.Policy != nil {
			policy, err = cfg.Policy(vcfg.Dimension)
		} else {
			policy, err = heuristic.NewDirect(vcfg.Dimension)
		}
		if err != nil {
			return nil, fmt.Errorf("sim node %d policy: %w", i, err)
		}
		// Validate the policy's dimension once here, so the per-sample
		// path can rely on compatible dimensions without re-deriving
		// (and allocating) mismatch diagnostics.
		if got := policy.AppRef().Dim(); got != dim {
			return nil, fmt.Errorf("sim node %d policy: dimension %d, want %d", i, got, dim)
		}
		n := &nodeState{
			viv:     viv,
			bank:    filter.NewBank[int](factory, 0),
			policy:  policy,
			nnDist:  math.Inf(1),
			nnCoord: coord.Origin(dim),
			prevSys: coord.Origin(dim),
			prevApp: coord.Origin(dim),
		}
		// Initial snapshot: every node publishes its starting state
		// before the first tick.
		n.pubSys = viv.Coordinate()
		n.pubErr = viv.Error()
		n.pubApp = policy.App()
		r.nodes[i] = n
	}
	return r, nil
}

// errSelfSample is package-level so the per-sample check path returns
// it without allocating.
var errSelfSample = errors.New("sim: self-sample")

// check validates a sample's node references.
func (r *Runner) check(s trace.Sample) error {
	if s.From < 0 || s.From >= len(r.nodes) || s.To < 0 || s.To >= len(r.nodes) {
		//nc:allow(hotpath) malformed-trace return: cold by definition
		return fmt.Errorf("sim: sample references node outside [0, %d): %+v", len(r.nodes), s)
	}
	if s.From == s.To {
		return errSelfSample
	}
	return nil
}

// advanceTo publishes the tick-boundary snapshot when the trace moves to
// a later tick. Earlier or equal ticks leave the snapshot untouched.
func (r *Runner) advanceTo(tick uint64) {
	if tick > r.cur {
		r.publish()
		r.cur = tick
	}
}

// publish refreshes the published snapshot of every node updated since
// the last boundary.
func (r *Runner) publish() {
	for _, i := range r.dirty {
		n := r.nodes[i]
		n.pubSys.CopyFrom(n.viv.CoordinateRef())
		n.pubErr = n.viv.Error()
		n.pubApp.CopyFrom(n.policy.AppRef())
		r.isDirty[i] = false
	}
	r.dirty = r.dirty[:0]
}

// markDirty queues a node for republication at the next tick boundary.
func (r *Runner) markDirty(i int) {
	if !r.isDirty[i] {
		r.isDirty[i] = true
		r.dirty = append(r.dirty, i)
	}
}

// count folds a sample into the stream counters.
func (r *Runner) count(s trace.Sample) {
	if s.Tick > r.last {
		r.last = s.Tick
	}
	r.samples++
	if s.Lost {
		r.lost++
	}
}

// Stages a step reaches, in order; record applies exactly the metric
// groups the step completed, which keeps error paths identical between
// the sequential and parallel engines.
const (
	stageNone    = iota // estimate failed: nothing to record
	stageErrors         // relative errors measured (filter may have withheld)
	stageSysMove        // + system movement measured
	stageAppMove        // + application movement measured (full success)
)

// stepResult carries one sample's measurements from compute to record.
type stepResult struct {
	stage      int
	sysRelErr  float64
	appRelErr  float64
	sysMoved   float64
	appMoved   float64
	appChanged bool
	err        error
}

// compute runs the full per-sample pipeline — estimate, filter, Vivaldi
// update, policy — for a non-lost, validated sample. It mutates only the
// sample's From node (plus the result slot), and reads remote state
// exclusively from the tick-start snapshot, which is what makes it safe
// to run concurrently for samples with distinct From within one tick.
// It performs zero heap allocations on the success path.
func (r *Runner) compute(s trace.Sample, res *stepResult) {
	src := r.nodes[s.From]
	dst := r.nodes[s.To]
	res.stage = stageNone

	// Measure prediction error of the current coordinates against the
	// raw observation, before updating (paper Section II-A). The
	// Euclidean separation is reused by the Vivaldi update below instead
	// of being recomputed.
	est, sep, err := src.viv.EstimateWithSeparation(dst.pubSys)
	if err != nil {
		//nc:allow(hotpath) estimate-failure return: cold by definition
		res.err = fmt.Errorf("sim: estimate: %w", err)
		return
	}
	res.sysRelErr = math.Abs(est-s.RTT) / s.RTT
	appEst, err := src.policy.AppRef().DistanceTo(dst.pubApp)
	if err != nil {
		//nc:allow(hotpath) estimate-failure return: cold by definition
		res.err = fmt.Errorf("sim: app estimate: %w", err)
		return
	}
	res.appRelErr = math.Abs(appEst-s.RTT) / s.RTT
	res.stage = stageErrors

	// Filter the raw observation; a warming-up filter withholds the
	// Vivaldi update entirely.
	filtered, ok := src.bank.Observe(s.To, s.RTT)
	if !ok {
		return
	}

	// Nearest-neighbor bookkeeping from the filtered estimate.
	if filtered < src.nnDist || s.To == src.nnID {
		src.nnID = s.To
		src.nnDist = filtered
		src.nnCoord.CopyFrom(dst.pubSys)
		src.hasNN = true
	}

	src.prevSys.CopyFrom(src.viv.CoordinateRef())
	if err := src.viv.UpdateWithSeparation(filtered, dst.pubSys, dst.pubErr, sep); err != nil {
		//nc:allow(hotpath) update-failure return: cold by definition
		res.err = fmt.Errorf("sim: vivaldi update: %w", err)
		return
	}
	moved, err := src.viv.CoordinateRef().DisplacementFrom(src.prevSys)
	if err != nil {
		res.err = err
		return
	}
	res.sysMoved = moved
	res.stage = stageSysMove

	src.prevApp.CopyFrom(src.policy.AppRef())
	newApp, changed, err := src.policy.Observe(heuristic.Observation{
		Sys:         src.viv.CoordinateRef(),
		Neighbor:    src.nnCoord,
		HasNeighbor: src.hasNN,
	})
	if err != nil {
		//nc:allow(hotpath) policy-failure return: cold by definition
		res.err = fmt.Errorf("sim: policy: %w", err)
		return
	}
	appMoved, err := newApp.DisplacementFrom(src.prevApp)
	if err != nil {
		res.err = err
		return
	}
	res.appMoved = appMoved
	res.appChanged = changed
	res.stage = stageAppMove
}

// record folds one computed sample into the metric collectors, applying
// exactly the groups the step reached, in the same order the sequential
// engine always has.
func (r *Runner) record(s trace.Sample, res *stepResult) error {
	if res.stage >= stageErrors {
		if err := r.sys.RecordError(s.From, s.Tick, res.sysRelErr); err != nil {
			return err
		}
		if err := r.app.RecordError(s.From, s.Tick, res.appRelErr); err != nil {
			return err
		}
	}
	if res.stage >= stageSysMove {
		if err := r.sys.RecordMovement(s.From, s.Tick, res.sysMoved, res.sysMoved > 0); err != nil {
			return err
		}
		r.markDirty(s.From)
	}
	if res.stage >= stageAppMove {
		if err := r.app.RecordMovement(s.From, s.Tick, res.appMoved, res.appChanged); err != nil {
			return err
		}
	}
	return res.err
}

// Step processes one trace sample under tick-barrier semantics.
//
//nc:hotpath
func (r *Runner) Step(s trace.Sample) error {
	if err := r.check(s); err != nil {
		return err
	}
	r.advanceTo(s.Tick)
	r.count(s)
	if s.Lost {
		return nil
	}
	var res stepResult
	r.compute(s, &res)
	return r.record(s, &res)
}

// Run drains a trace source through the runner, resolving
// Config.Parallelism (0 = GOMAXPROCS) to choose between the sequential
// loop and the parallel tick-barrier engine. Both paths produce
// bit-identical results. After an error the runner's state is undefined
// and the run must be discarded.
func (r *Runner) Run(src trace.Source) error {
	workers := r.cfg.Parallelism
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 {
		return r.runParallel(src, workers)
	}
	return r.runSequential(src)
}

// Sys returns the system-level metrics collector.
func (r *Runner) Sys() *metrics.Collector { return r.sys }

// App returns the application-level metrics collector.
func (r *Runner) App() *metrics.Collector { return r.app }

// Samples reports how many trace samples were processed (including lost
// ones).
func (r *Runner) Samples() uint64 { return r.samples }

// Lost reports how many samples were lost pings.
func (r *Runner) Lost() uint64 { return r.lost }

// LastTick reports the latest tick seen.
func (r *Runner) LastTick() uint64 { return r.last }

// Coordinate returns node i's current system-level coordinate.
func (r *Runner) Coordinate(i int) (coord.Coordinate, error) {
	if i < 0 || i >= len(r.nodes) {
		return coord.Coordinate{}, fmt.Errorf("sim: node %d out of range", i)
	}
	return r.nodes[i].viv.Coordinate(), nil
}

// AppCoordinate returns node i's current application-level coordinate.
func (r *Runner) AppCoordinate(i int) (coord.Coordinate, error) {
	if i < 0 || i >= len(r.nodes) {
		return coord.Coordinate{}, fmt.Errorf("sim: node %d out of range", i)
	}
	return r.nodes[i].policy.App(), nil
}

// Confidence returns node i's confidence (1 - error weight), the
// quantity plotted in the paper's Figure 6.
func (r *Runner) Confidence(i int) (float64, error) {
	if i < 0 || i >= len(r.nodes) {
		return 0, fmt.Errorf("sim: node %d out of range", i)
	}
	return r.nodes[i].viv.Confidence(), nil
}
