// Package sim is the deterministic trace-driven simulator: the
// counterpart of the simulator the paper built to compare Vivaldi
// configurations on the same input ("we built a simulator that accepted
// our raw ping trace as input and mimicked the distributed behavior of
// Vivaldi").
//
// A Runner hosts one Vivaldi endpoint per node, each with its own
// per-link filter bank and application-update policy, and replays a
// trace.Source through them. For every observation the runner measures —
// before applying the update, as the paper does — the system-level and
// application-level relative error against the raw observed latency, then
// applies the filter, the Vivaldi update, and the policy, recording
// coordinate displacement at both levels.
//
// Because trace generation and every node's randomness are seeded, two
// runners fed identically configured generators process bit-identical
// observation streams, which is how the experiments compare filters the
// way the paper compares them ("we ran them on the same set of PlanetLab
// nodes at the same time, using different ports").
package sim

import (
	"errors"
	"fmt"
	"math"

	"netcoord/internal/coord"
	"netcoord/internal/filter"
	"netcoord/internal/heuristic"
	"netcoord/internal/metrics"
	"netcoord/internal/trace"
	"netcoord/internal/vivaldi"
	"netcoord/internal/xrand"
)

// PolicyFactory builds one application-update policy for a node.
type PolicyFactory func(dim int) (heuristic.Policy, error)

// Config parameterizes a simulation run.
type Config struct {
	// Nodes is the number of simulated hosts; must cover every node id
	// in the trace.
	Nodes int
	// Vivaldi configures every node's update algorithm; the per-node RNG
	// seed is derived from Vivaldi.Seed and the node id.
	Vivaldi vivaldi.Config
	// Filter builds each node's per-link filter; nil means no filtering
	// (the paper's "No Filter" configuration).
	Filter filter.Factory
	// Policy builds each node's application-update policy; nil means
	// Direct (application coordinate follows the system coordinate).
	Policy PolicyFactory
}

// Runner executes a simulation.
type Runner struct {
	cfg   Config
	nodes []*nodeState
	sys   *metrics.Collector
	app   *metrics.Collector

	samples uint64
	lost    uint64
	last    uint64
}

// nodeState is one simulated host.
type nodeState struct {
	viv    *vivaldi.Node
	bank   *filter.Bank[int]
	policy heuristic.Policy

	// Nearest-neighbor tracking for the RELATIVE policy: the paper's
	// nodes learn an approximate nearest neighbor from the latency
	// samples themselves.
	nnID    int
	nnDist  float64
	nnCoord coord.Coordinate
	hasNN   bool
}

// NewRunner builds a runner.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("sim: %d nodes, want >= 2", cfg.Nodes)
	}
	if err := cfg.Vivaldi.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	sys, err := metrics.NewCollector(cfg.Nodes)
	if err != nil {
		return nil, err
	}
	app, err := metrics.NewCollector(cfg.Nodes)
	if err != nil {
		return nil, err
	}
	r := &Runner{cfg: cfg, sys: sys, app: app, nodes: make([]*nodeState, cfg.Nodes)}
	for i := 0; i < cfg.Nodes; i++ {
		vcfg := cfg.Vivaldi
		vcfg.Seed = xrand.Hash64(cfg.Vivaldi.Seed, uint64(i))
		viv, err := vivaldi.New(vcfg)
		if err != nil {
			return nil, fmt.Errorf("sim node %d: %w", i, err)
		}
		factory := cfg.Filter
		if factory == nil {
			factory = func() filter.Filter { return filter.NewNone() }
		}
		var policy heuristic.Policy
		if cfg.Policy != nil {
			policy, err = cfg.Policy(vcfg.Dimension)
		} else {
			policy, err = heuristic.NewDirect(vcfg.Dimension)
		}
		if err != nil {
			return nil, fmt.Errorf("sim node %d policy: %w", i, err)
		}
		r.nodes[i] = &nodeState{
			viv:    viv,
			bank:   filter.NewBank[int](factory, 0),
			policy: policy,
			nnDist: math.Inf(1),
		}
	}
	return r, nil
}

// Step processes one trace sample.
func (r *Runner) Step(s trace.Sample) error {
	if s.From < 0 || s.From >= len(r.nodes) || s.To < 0 || s.To >= len(r.nodes) {
		return fmt.Errorf("sim: sample references node outside [0, %d): %+v", len(r.nodes), s)
	}
	if s.From == s.To {
		return errors.New("sim: self-sample")
	}
	if s.Tick > r.last {
		r.last = s.Tick
	}
	r.samples++
	if s.Lost {
		r.lost++
		return nil
	}
	src := r.nodes[s.From]
	dst := r.nodes[s.To]

	// The pong carries the remote's current system coordinate, error
	// weight, and application coordinate.
	remoteSys := dst.viv.Coordinate()
	remoteErr := dst.viv.Error()
	remoteApp := dst.policy.App()

	// Measure prediction error of the current coordinates against the
	// raw observation, before updating (paper Section II-A).
	sysEst, err := src.viv.EstimateRTT(remoteSys)
	if err != nil {
		return fmt.Errorf("sim: estimate: %w", err)
	}
	if err := r.sys.RecordError(s.From, s.Tick, math.Abs(sysEst-s.RTT)/s.RTT); err != nil {
		return err
	}
	appEst, err := src.policy.App().DistanceTo(remoteApp)
	if err != nil {
		return fmt.Errorf("sim: app estimate: %w", err)
	}
	if err := r.app.RecordError(s.From, s.Tick, math.Abs(appEst-s.RTT)/s.RTT); err != nil {
		return err
	}

	// Filter the raw observation; a warming-up filter withholds the
	// Vivaldi update entirely.
	filtered, ok := src.bank.Observe(s.To, s.RTT)
	if !ok {
		return nil
	}

	// Nearest-neighbor bookkeeping from the filtered estimate.
	if filtered < src.nnDist || s.To == src.nnID {
		src.nnID = s.To
		src.nnDist = filtered
		src.nnCoord = remoteSys
		src.hasNN = true
	}

	prevSys := src.viv.Coordinate()
	newSys, err := src.viv.Update(filtered, remoteSys, remoteErr)
	if err != nil {
		return fmt.Errorf("sim: vivaldi update: %w", err)
	}
	moved, err := newSys.DisplacementFrom(prevSys)
	if err != nil {
		return err
	}
	if err := r.sys.RecordMovement(s.From, s.Tick, moved, moved > 0); err != nil {
		return err
	}

	prevApp := src.policy.App()
	newApp, changed, err := src.policy.Observe(heuristic.Observation{
		Sys:         newSys,
		Neighbor:    src.nnCoord,
		HasNeighbor: src.hasNN,
	})
	if err != nil {
		return fmt.Errorf("sim: policy: %w", err)
	}
	appMoved, err := newApp.DisplacementFrom(prevApp)
	if err != nil {
		return err
	}
	if err := r.app.RecordMovement(s.From, s.Tick, appMoved, changed); err != nil {
		return err
	}
	return nil
}

// Run drains a trace source through the runner.
func (r *Runner) Run(src trace.Source) error {
	for {
		s, ok := src.Next()
		if !ok {
			return nil
		}
		if err := r.Step(s); err != nil {
			return err
		}
	}
}

// Sys returns the system-level metrics collector.
func (r *Runner) Sys() *metrics.Collector { return r.sys }

// App returns the application-level metrics collector.
func (r *Runner) App() *metrics.Collector { return r.app }

// Samples reports how many trace samples were processed (including lost
// ones).
func (r *Runner) Samples() uint64 { return r.samples }

// Lost reports how many samples were lost pings.
func (r *Runner) Lost() uint64 { return r.lost }

// LastTick reports the latest tick seen.
func (r *Runner) LastTick() uint64 { return r.last }

// Coordinate returns node i's current system-level coordinate.
func (r *Runner) Coordinate(i int) (coord.Coordinate, error) {
	if i < 0 || i >= len(r.nodes) {
		return coord.Coordinate{}, fmt.Errorf("sim: node %d out of range", i)
	}
	return r.nodes[i].viv.Coordinate(), nil
}

// AppCoordinate returns node i's current application-level coordinate.
func (r *Runner) AppCoordinate(i int) (coord.Coordinate, error) {
	if i < 0 || i >= len(r.nodes) {
		return coord.Coordinate{}, fmt.Errorf("sim: node %d out of range", i)
	}
	return r.nodes[i].policy.App(), nil
}

// Confidence returns node i's confidence (1 - error weight), the
// quantity plotted in the paper's Figure 6.
func (r *Runner) Confidence(i int) (float64, error) {
	if i < 0 || i >= len(r.nodes) {
		return 0, fmt.Errorf("sim: node %d out of range", i)
	}
	return r.nodes[i].viv.Confidence(), nil
}
