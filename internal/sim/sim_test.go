package sim

import (
	"testing"

	"netcoord/internal/filter"
	"netcoord/internal/heuristic"
	"netcoord/internal/netsim"
	"netcoord/internal/trace"
	"netcoord/internal/vivaldi"
)

func wideAreaTrace(t *testing.T, nodes int, seconds uint64, seed uint64) *trace.Generator {
	t.Helper()
	net, err := netsim.New(netsim.DefaultWideArea(nodes, seed))
	if err != nil {
		t.Fatalf("netsim.New: %v", err)
	}
	g, err := trace.NewGenerator(net, trace.GeneratorConfig{IntervalTicks: 1, DurationTicks: seconds, Seed: seed})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return g
}

func mpFactory() filter.Filter {
	f, err := filter.NewMP(filter.DefaultMPConfig())
	if err != nil {
		// Static default config cannot fail validation; keep the factory
		// signature simple.
		return filter.NewNone()
	}
	return f
}

func TestNewRunnerValidation(t *testing.T) {
	if _, err := NewRunner(Config{Nodes: 1, Vivaldi: vivaldi.DefaultConfig()}); err == nil {
		t.Fatal("one node accepted")
	}
	bad := vivaldi.DefaultConfig()
	bad.CC = 0
	if _, err := NewRunner(Config{Nodes: 4, Vivaldi: bad}); err == nil {
		t.Fatal("invalid vivaldi config accepted")
	}
	broken := func(dim int) (heuristic.Policy, error) {
		return heuristic.NewEnergy(dim, 0, 8) // invalid window
	}
	if _, err := NewRunner(Config{Nodes: 4, Vivaldi: vivaldi.DefaultConfig(), Policy: broken}); err == nil {
		t.Fatal("broken policy factory accepted")
	}
}

func TestStepValidation(t *testing.T) {
	r, err := NewRunner(Config{Nodes: 4, Vivaldi: vivaldi.DefaultConfig()})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	if err := r.Step(trace.Sample{From: 9, To: 0, RTT: 50}); err == nil {
		t.Fatal("out-of-range From accepted")
	}
	if err := r.Step(trace.Sample{From: 0, To: 9, RTT: 50}); err == nil {
		t.Fatal("out-of-range To accepted")
	}
	if err := r.Step(trace.Sample{From: 1, To: 1, RTT: 50}); err == nil {
		t.Fatal("self-sample accepted")
	}
}

func TestLostSamplesSkipped(t *testing.T) {
	r, err := NewRunner(Config{Nodes: 2, Vivaldi: vivaldi.DefaultConfig()})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	if err := r.Step(trace.Sample{Tick: 1, From: 0, To: 1, Lost: true}); err != nil {
		t.Fatalf("Step lost sample: %v", err)
	}
	if r.Lost() != 1 || r.Samples() != 1 {
		t.Fatalf("Lost=%d Samples=%d", r.Lost(), r.Samples())
	}
	c, err := r.Coordinate(0)
	if err != nil {
		t.Fatalf("Coordinate: %v", err)
	}
	if c.Vec.Norm() != 0 {
		t.Fatal("lost sample moved a coordinate")
	}
}

func TestRunConvergesOnWideArea(t *testing.T) {
	const nodes = 24
	r, err := NewRunner(Config{
		Nodes:   nodes,
		Vivaldi: vivaldi.DefaultConfig(),
		Filter:  mpFactory,
	})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	const seconds = 1200
	if err := r.Run(wideAreaTrace(t, nodes, seconds, 5)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Samples() == 0 {
		t.Fatal("no samples processed")
	}
	// Second-half accuracy must be materially better than a random
	// embedding: median relative error well under 0.5 on this easy
	// network.
	sum, err := r.Sys().Summarize(seconds/2, seconds)
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if sum.MedianRelErr > 0.35 {
		t.Fatalf("median relative error = %v after convergence", sum.MedianRelErr)
	}
	// And convergence means the second half is better than the first.
	first, err := r.Sys().Summarize(0, seconds/2-1)
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if sum.MedianRelErr >= first.MedianRelErr {
		t.Fatalf("no convergence: first half %v, second half %v", first.MedianRelErr, sum.MedianRelErr)
	}
}

func TestMPFilterBeatsNoFilter(t *testing.T) {
	// The core Table I comparison in miniature: identical traces, MP
	// filter vs none; the MP run must be more accurate and more stable.
	const nodes = 24
	const seconds = 1200
	run := func(factory filter.Factory) (relErr, instability float64) {
		r, err := NewRunner(Config{Nodes: nodes, Vivaldi: vivaldi.DefaultConfig(), Filter: factory})
		if err != nil {
			t.Fatalf("NewRunner: %v", err)
		}
		if err := r.Run(wideAreaTrace(t, nodes, seconds, 11)); err != nil {
			t.Fatalf("Run: %v", err)
		}
		sum, err := r.Sys().Summarize(seconds/2, seconds)
		if err != nil {
			t.Fatalf("Summarize: %v", err)
		}
		return sum.MedianRelErr, sum.MedianInstability
	}
	mpErr, mpInst := run(mpFactory)
	rawErr, rawInst := run(nil)
	if mpErr >= rawErr {
		t.Fatalf("MP median rel err %v not better than raw %v", mpErr, rawErr)
	}
	if mpInst >= rawInst {
		t.Fatalf("MP instability %v not better than raw %v", mpInst, rawInst)
	}
}

func TestEnergyPolicyStabilizesAppCoordinates(t *testing.T) {
	const nodes = 24
	const seconds = 1200
	r, err := NewRunner(Config{
		Nodes:   nodes,
		Vivaldi: vivaldi.DefaultConfig(),
		Filter:  mpFactory,
		Policy: func(dim int) (heuristic.Policy, error) {
			return heuristic.NewEnergy(dim, heuristic.DefaultWindow, heuristic.DefaultEnergyTau)
		},
	})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	if err := r.Run(wideAreaTrace(t, nodes, seconds, 7)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	sysSum, err := r.Sys().Summarize(seconds/2, seconds)
	if err != nil {
		t.Fatalf("Summarize sys: %v", err)
	}
	appSum, err := r.App().Summarize(seconds/2, seconds)
	if err != nil {
		t.Fatalf("Summarize app: %v", err)
	}
	if appSum.MedianInstability >= sysSum.MedianInstability {
		t.Fatalf("app instability %v not below sys %v", appSum.MedianInstability, sysSum.MedianInstability)
	}
	// Accuracy must not collapse: app error within 2x of system error.
	if appSum.MedianRelErr > 2*sysSum.MedianRelErr+0.05 {
		t.Fatalf("app error %v vs sys %v: accuracy collapsed", appSum.MedianRelErr, sysSum.MedianRelErr)
	}
	// And the app level must see far fewer updates than one per
	// observation.
	if appSum.MeanUpdateFraction > 0.5 {
		t.Fatalf("app update fraction %v, want well below 1", appSum.MeanUpdateFraction)
	}
}

func TestRunnerDeterminism(t *testing.T) {
	const nodes = 10
	const seconds = 300
	run := func() []float64 {
		r, err := NewRunner(Config{Nodes: nodes, Vivaldi: vivaldi.DefaultConfig(), Filter: mpFactory})
		if err != nil {
			t.Fatalf("NewRunner: %v", err)
		}
		if err := r.Run(wideAreaTrace(t, nodes, seconds, 13)); err != nil {
			t.Fatalf("Run: %v", err)
		}
		var out []float64
		for i := 0; i < nodes; i++ {
			c, err := r.Coordinate(i)
			if err != nil {
				t.Fatalf("Coordinate: %v", err)
			}
			out = append(out, c.Vec...)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at component %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestConfidenceAccessor(t *testing.T) {
	r, err := NewRunner(Config{Nodes: 3, Vivaldi: vivaldi.DefaultConfig()})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	c, err := r.Confidence(0)
	if err != nil {
		t.Fatalf("Confidence: %v", err)
	}
	if c != 0 {
		t.Fatalf("initial confidence = %v, want 0", c)
	}
	if _, err := r.Confidence(99); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := r.Coordinate(-1); err == nil {
		t.Fatal("negative node accepted")
	}
	if _, err := r.AppCoordinate(99); err == nil {
		t.Fatal("out-of-range app coordinate accepted")
	}
}

func TestStaticMatrixModeIsStable(t *testing.T) {
	// A1 ablation seed: with a static latency matrix (the original
	// Vivaldi evaluation methodology), even the unfiltered system is
	// accurate and stable — the instability pathology only appears with
	// real observation streams.
	const nodes = 16
	const seconds = 900
	cfg := netsim.DefaultWideArea(nodes, 3)
	cfg.Static = true
	net, err := netsim.New(cfg)
	if err != nil {
		t.Fatalf("netsim.New: %v", err)
	}
	g, err := trace.NewGenerator(net, trace.GeneratorConfig{IntervalTicks: 1, DurationTicks: seconds})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	r, err := NewRunner(Config{Nodes: nodes, Vivaldi: vivaldi.DefaultConfig()})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	if err := r.Run(g); err != nil {
		t.Fatalf("Run: %v", err)
	}
	sum, err := r.Sys().Summarize(seconds/2, seconds)
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if sum.MedianRelErr > 0.2 {
		t.Fatalf("static-matrix median rel err = %v, want small", sum.MedianRelErr)
	}
}

func BenchmarkRunnerStep(b *testing.B) {
	const nodes = 100
	net, err := netsim.New(netsim.DefaultWideArea(nodes, 1))
	if err != nil {
		b.Fatal(err)
	}
	g, err := trace.NewGenerator(net, trace.GeneratorConfig{IntervalTicks: 1, DurationTicks: 1 << 40})
	if err != nil {
		b.Fatal(err)
	}
	r, err := NewRunner(Config{Nodes: nodes, Vivaldi: vivaldi.DefaultConfig(), Filter: mpFactory})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, ok := g.Next()
		if !ok {
			b.Fatal("trace exhausted")
		}
		if err := r.Step(s); err != nil {
			b.Fatal(err)
		}
	}
}
