package faultproxy

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newBackend returns an httptest server serving a fixed body, plus its
// host:port for proxying.
func newBackend(t *testing.T, body string) (*httptest.Server, string) {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		_, _ = io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv, strings.TrimPrefix(srv.URL, "http://")
}

func TestTransparentForwarding(t *testing.T) {
	_, addr := newBackend(t, "hello through the proxy")
	p, err := New(addr, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	resp, err := http.Get(p.URL())
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || string(data) != "hello through the proxy" {
		t.Fatalf("body = %q, err %v", data, err)
	}
	st := p.Stats()
	if st.Accepted != 1 || st.Refused != 0 || st.Resets != 0 || st.Truncations != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPartitionRefusesAndKills(t *testing.T) {
	_, addr := newBackend(t, "x")
	p, err := New(addr, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()

	// Hold a raw connection open through the proxy, then partition: the
	// in-flight connection must die, not linger.
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// Make sure the proxy accepted and is piping before we partition.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Accepted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("proxy never accepted")
		}
		time.Sleep(time.Millisecond)
	}
	p.SetPartitioned(true)
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("read succeeded across a partition")
	}

	// New connections are refused while partitioned.
	client := &http.Client{Timeout: 2 * time.Second}
	if _, err := client.Get(p.URL()); err == nil {
		t.Fatal("GET succeeded across a partition")
	}
	if st := p.Stats(); st.Refused == 0 {
		t.Fatalf("no refusals counted: %+v", st)
	}

	// Healing the partition restores service.
	p.SetPartitioned(false)
	resp, err := client.Get(p.URL())
	if err != nil {
		t.Fatalf("GET after heal: %v", err)
	}
	resp.Body.Close()
}

func TestTruncateAfterCutsResponses(t *testing.T) {
	_, addr := newBackend(t, strings.Repeat("A", 64<<10))
	p, err := New(addr, Options{TruncateAfter: 1024})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(p.URL())
	if err == nil {
		// Headers may arrive inside the cap; the body read must fail.
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil {
			t.Fatalf("read %d bytes of a truncated response without error", len(data))
		}
		if len(data) > 1024 {
			t.Fatalf("received %d bytes, cap is 1024", len(data))
		}
	}
	if st := p.Stats(); st.Truncations != 1 {
		t.Fatalf("Truncations = %d, want 1", st.Truncations)
	}
}

func TestResetProbIsDeterministic(t *testing.T) {
	// Same seed, same connection order → identical reset decisions.
	run := func() []bool {
		_, addr := newBackend(t, "payload")
		p, err := New(addr, Options{Seed: 42, ResetProb: 0.5})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer p.Close()
		outcomes := make([]bool, 0, 8)
		client := &http.Client{Timeout: 5 * time.Second, Transport: &http.Transport{DisableKeepAlives: true}}
		for i := 0; i < 8; i++ {
			resp, err := client.Get(p.URL())
			ok := err == nil
			if ok {
				_, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				ok = rerr == nil
			}
			outcomes = append(outcomes, ok)
		}
		if p.Stats().Resets == 0 {
			t.Fatal("ResetProb 0.5 over 8 connections reset nothing")
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at connection %d: %v vs %v", i, a, b)
		}
	}
}

func TestLatencyDelaysTraffic(t *testing.T) {
	_, addr := newBackend(t, "slow")
	p, err := New(addr, Options{Latency: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	start := time.Now()
	resp, err := http.Get(p.URL())
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	_, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if took := time.Since(start); took < 50*time.Millisecond {
		t.Fatalf("request took %v, injected latency is 50ms each way", took)
	}
}

func TestCloseUnblocksEverything(t *testing.T) {
	_, addr := newBackend(t, "x")
	p, err := New(addr, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on an in-flight connection")
	}
	if _, err := net.Dial("tcp", p.Addr()); err == nil {
		t.Fatal("listener still accepting after Close")
	}
}

// Example documents the intended wiring: proxy per replication edge.
func Example() {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		_, _ = io.WriteString(w, "ok")
	}))
	defer backend.Close()
	p, _ := New(strings.TrimPrefix(backend.URL, "http://"), Options{Seed: 7})
	defer p.Close()
	resp, _ := http.Get(p.URL())
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println(string(body))
	// Output: ok
}
