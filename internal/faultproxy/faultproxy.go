// Package faultproxy is an in-process TCP fault injector for tests: a
// proxy that sits on one edge of a replication topology and makes that
// edge misbehave on command — added latency, connection resets,
// response truncation, and full partitions — so failover logic can be
// driven through real sockets instead of mocks.
//
// Faults are deterministic: probabilistic injections draw from a rand
// seeded by Options.Seed, so a failing test replays identically. The
// proxy is transport-level only — it never parses what it carries —
// which keeps it honest: the code under test sees exactly the byte
// streams and connection errors a real flaky network produces,
// including mid-response cuts that leave JSON bodies half-written.
package faultproxy

import (
	"context"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures the injected faults. The zero value forwards
// faithfully (a transparent proxy), which is the right starting state
// for most tests: establish the topology clean, then flip faults on.
type Options struct {
	// Seed seeds the proxy's private rand; 0 means 1 (deterministic
	// either way — there is no time-based fallback).
	Seed int64
	// Latency is added once per forwarded chunk in each direction.
	Latency time.Duration
	// ResetProb is the per-connection probability that the connection
	// is killed abruptly after its first forwarded chunk — the
	// mid-conversation RST that long-poll loops must survive.
	ResetProb float64
	// TruncateAfter, when positive, caps the bytes forwarded from the
	// target back to the client per connection; the connection is cut
	// at the cap, leaving the client a half-delivered response body.
	TruncateAfter int64
}

// Stats counts what the proxy did to traffic.
type Stats struct {
	// Accepted is connections accepted and proxied; Refused is
	// connections dropped at accept because the proxy was partitioned.
	Accepted uint64
	Refused  uint64
	// Resets counts connections killed by ResetProb or by a partition
	// flip; Truncations counts connections cut at TruncateAfter.
	Resets      uint64
	Truncations uint64
}

// Proxy is one listening fault injector in front of one target.
type Proxy struct {
	ln     net.Listener
	target string

	accepted, refused, resets, truncations atomic.Uint64
	partitioned                            atomic.Bool

	// rngMu serializes draws from the seeded rng (accept loop only, but
	// SetOptions can swap it).
	rngMu sync.Mutex
	rng   *rand.Rand

	optMu sync.Mutex
	opts  Options

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	// ctx is canceled by Close; upstream dials and latency sleeps hang
	// off it so a closing proxy never pins a goroutine in a dial or a
	// timer.
	ctx    context.Context
	cancel context.CancelFunc

	wg sync.WaitGroup
}

// New starts a proxy on a loopback port in front of target (a
// host:port). Close it when done.
func New(target string, opts Options) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	p := &Proxy{
		ln:     ln,
		target: target,
		rng:    rand.New(rand.NewSource(seed)),
		opts:   opts,
		conns:  make(map[net.Conn]struct{}),
	}
	p.ctx, p.cancel = context.WithCancel(context.Background())
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address (host:port).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL is the proxy's address as an http base URL — what a follower's
// Upstreams entry points at.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// SetOptions replaces the fault options for connections accepted from
// now on (in-flight connections keep the options they started with).
func (p *Proxy) SetOptions(opts Options) {
	p.optMu.Lock()
	p.opts = opts
	p.optMu.Unlock()
}

// SetPartitioned flips the partition: while partitioned, new
// connections are refused at accept and every in-flight connection is
// killed — both directions go dark at once, exactly like a cut link.
func (p *Proxy) SetPartitioned(partitioned bool) {
	p.partitioned.Store(partitioned)
	if partitioned {
		p.killAll()
	}
}

// Partitioned reports the current partition state.
func (p *Proxy) Partitioned() bool { return p.partitioned.Load() }

// Stats snapshots the fault counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Accepted:    p.accepted.Load(),
		Refused:     p.refused.Load(),
		Resets:      p.resets.Load(),
		Truncations: p.truncations.Load(),
	}
}

// Close stops the listener and kills every in-flight connection.
func (p *Proxy) Close() {
	p.connMu.Lock()
	p.closed = true
	p.connMu.Unlock()
	p.cancel()
	_ = p.ln.Close()
	p.killAll()
	p.wg.Wait()
}

// killAll abruptly closes every tracked connection.
func (p *Proxy) killAll() {
	p.connMu.Lock()
	for c := range p.conns {
		abort(c)
		delete(p.conns, c)
	}
	p.connMu.Unlock()
}

// sleep waits d or until the proxy closes, reporting whether the full
// latency elapsed — the injected delay must never outlive Close.
func (p *Proxy) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.ctx.Done():
		return false
	}
}

// abort closes a connection with RST semantics where the transport
// supports it: the peer sees a hard error, not a clean EOF.
func abort(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Close()
}

// track registers a live connection, or refuses it (closing) when the
// proxy is partitioned or closed.
func (p *Proxy) track(c net.Conn) bool {
	p.connMu.Lock()
	defer p.connMu.Unlock()
	if p.closed || p.partitioned.Load() {
		abort(c)
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.connMu.Lock()
	delete(p.conns, c)
	p.connMu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if p.partitioned.Load() {
			p.refused.Add(1)
			abort(client)
			continue
		}
		p.optMu.Lock()
		opts := p.opts
		p.optMu.Unlock()
		p.rngMu.Lock()
		doomed := opts.ResetProb > 0 && p.rng.Float64() < opts.ResetProb
		p.rngMu.Unlock()
		p.accepted.Add(1)
		p.wg.Add(1)
		go p.proxy(client, opts, doomed)
	}
}

// proxy runs one client connection against the target, forwarding both
// directions through the fault pipeline until either side ends.
func (p *Proxy) proxy(client net.Conn, opts Options, doomed bool) {
	defer p.wg.Done()
	if !p.track(client) {
		return
	}
	defer p.untrack(client)
	dialer := net.Dialer{Timeout: 5 * time.Second}
	upstream, err := dialer.DialContext(p.ctx, "tcp", p.target)
	if err != nil {
		abort(client)
		return
	}
	if !p.track(upstream) {
		abort(client)
		return
	}
	defer p.untrack(upstream)

	// kill tears both sides down at once; pipe goroutines then unblock
	// with read/write errors and drain out.
	var killOnce sync.Once
	kill := func() {
		killOnce.Do(func() {
			abort(client)
			abort(upstream)
		})
	}
	// The doomed reset and the truncation cap both act on the response
	// direction (target→client): the client sees its request accepted
	// and the answer cut from under it — the nastiest shape for a
	// long-poll loop to survive. Applying them in one direction also
	// keeps the counters exact (one reset per doomed connection).
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p.pipe(upstream, client, opts, false, 0, kill)
	}()
	go func() {
		defer wg.Done()
		p.pipe(client, upstream, opts, doomed, opts.TruncateAfter, kill)
	}()
	wg.Wait()
	kill()
}

// pipe forwards src→dst chunk by chunk, applying latency, the doomed
// reset (after the first chunk), and the truncation cap (when
// truncateAfter > 0, this is the target→client direction).
func (p *Proxy) pipe(dst, src net.Conn, opts Options, doomed bool, truncateAfter int64, kill func()) {
	buf := make([]byte, 32<<10)
	var forwarded int64
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if opts.Latency > 0 && !p.sleep(opts.Latency) {
				kill()
				return
			}
			chunk := buf[:n]
			if truncateAfter > 0 && forwarded+int64(n) >= truncateAfter {
				chunk = chunk[:truncateAfter-forwarded]
				if _, werr := dst.Write(chunk); werr == nil {
					// Count, then cut: the client got exactly the cap.
					p.truncations.Add(1)
				}
				kill()
				return
			}
			if _, werr := dst.Write(chunk); werr != nil {
				kill()
				return
			}
			forwarded += int64(n)
			if doomed {
				p.resets.Add(1)
				kill()
				return
			}
		}
		if err != nil {
			if err != io.EOF {
				kill()
				return
			}
			// Clean half-close: propagate the EOF so request/response
			// protocols that close-write still work through the proxy.
			if tc, ok := dst.(*net.TCPConn); ok {
				_ = tc.CloseWrite()
			} else {
				kill()
			}
			return
		}
	}
}
