package changefeed

import (
	"fmt"
	"testing"
	"time"
)

// stall blocks the background flusher so a test can stage a precise
// pending-queue shape, returning a release func. Delivery paths all
// serialize on deliverMu, so holding it freezes fan-out without
// touching the publish path.
func stall(f *Feed) func() {
	f.deliverMu.Lock()
	return f.deliverMu.Unlock
}

func TestCoalesceCollapsesHeartbeatStorm(t *testing.T) {
	f := New(64, 0)
	sub := f.Subscribe(16)
	defer sub.Close()

	release := stall(f)
	for i := 0; i < 5; i++ {
		f.PublishUpsert(upsert("a", float64(i)))
	}
	f.PublishUpsert(upsert("b", 9))
	release()
	f.Flush()

	// Four of the five "a" upserts were superseded while pending; the
	// survivor carries the final coordinate and labels the gap.
	ev := <-sub.C()
	if ev.Seq != 5 || ev.Entry.ID != "a" || ev.Coalesced != 4 {
		t.Fatalf("survivor = seq %d id %q coalesced %d, want seq 5 a 4", ev.Seq, ev.Entry.ID, ev.Coalesced)
	}
	if ev.Entry.Coord.Vec[0] != 4 {
		t.Fatalf("survivor carries coord %v, want the newest (4)", ev.Entry.Coord.Vec)
	}
	ev = <-sub.C()
	if ev.Seq != 6 || ev.Entry.ID != "b" || ev.Coalesced != 0 {
		t.Fatalf("next = seq %d id %q coalesced %d, want seq 6 b 0", ev.Seq, ev.Entry.ID, ev.Coalesced)
	}
	if got := sub.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d; coalescing must not count as loss", got)
	}
	st := f.Stats()
	if st.Coalesced != 4 || st.Overflows != 0 {
		t.Fatalf("stats coalesced=%d overflows=%d, want 4 and 0", st.Coalesced, st.Overflows)
	}
}

// TestCoalesceGapArithmetic is the consumer-side contract: walking the
// delivered stream, prev.Seq + 1 + ev.Coalesced == ev.Seq at every
// step, so labelled gaps are provably benign.
func TestCoalesceGapArithmetic(t *testing.T) {
	f := New(256, 0)
	sub := f.Subscribe(128)
	defer sub.Close()

	release := stall(f)
	for i := 0; i < 30; i++ {
		f.PublishUpsert(upsert(fmt.Sprintf("n%d", i%3), float64(i)))
	}
	f.PublishRemove("n1")
	for i := 0; i < 10; i++ {
		f.PublishUpsert(upsert("n0", float64(100+i)))
	}
	release()
	f.Flush()
	f.Close()

	var prev uint64
	var got int
	for ev := range sub.C() {
		if prev+1+ev.Coalesced != ev.Seq {
			t.Fatalf("unexplained gap: prev=%d coalesced=%d seq=%d", prev, ev.Coalesced, ev.Seq)
		}
		prev = ev.Seq
		got++
	}
	if prev != 41 {
		t.Fatalf("last delivered seq = %d, want 41", prev)
	}
	if got >= 41 {
		t.Fatalf("delivered %d events; storm should have collapsed some", got)
	}
	if sub.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", sub.Dropped())
	}
}

// TestCoalesceNeverSkipsRemovals: removes and evicts are never
// collapsed, and an upsert collapse across an intervening remove still
// converges to the same final state as synchronous delivery.
func TestCoalesceNeverSkipsRemovals(t *testing.T) {
	f := New(64, 0)
	sub := f.Subscribe(32)
	defer sub.Close()

	release := stall(f)
	f.PublishUpsert(upsert("a", 1)) // seq 1: superseded by seq 3
	f.PublishRemove("a")            // seq 2: must survive
	f.PublishUpsert(upsert("a", 3)) // seq 3: survivor
	f.PublishEvict([]string{"x"})   // seq 4: must survive
	release()
	f.Flush()

	state := map[string]bool{}
	want := []struct {
		seq uint64
		op  Op
	}{{2, OpRemove}, {3, OpUpsert}, {4, OpEvict}}
	var prev uint64
	for _, w := range want {
		select {
		case ev := <-sub.C():
			if ev.Seq != w.seq || ev.Op != w.op {
				t.Fatalf("got seq %d op %d, want seq %d op %d", ev.Seq, ev.Op, w.seq, w.op)
			}
			if prev+1+ev.Coalesced != ev.Seq {
				t.Fatalf("unexplained gap at seq %d (coalesced=%d, prev=%d)", ev.Seq, ev.Coalesced, prev)
			}
			prev = ev.Seq
			switch ev.Op {
			case OpUpsert:
				state[ev.Entry.ID] = true
			case OpRemove:
				delete(state, ev.ID)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out waiting for seq %d", w.seq)
		}
	}
	if !state["a"] {
		t.Fatal("final state lost the re-upsert of a")
	}
}

// TestDistinctBurstIsLosslessWithRoomyBuffer: a burst of distinct ids
// has nothing to collapse, so when the pending queue fills the
// publisher drains it inline instead of dropping — a subscriber with
// room for everything still sees every event, exactly like the old
// synchronous path.
func TestDistinctBurstIsLosslessWithRoomyBuffer(t *testing.T) {
	f := New(1<<13, 0)
	n := 3 * coalesceLive
	sub := f.Subscribe(2 * n)
	defer sub.Close()

	for i := 0; i < n; i++ {
		f.PublishUpsert(upsert(fmt.Sprintf("node-%05d", i), float64(i)))
	}
	f.Flush()

	if got := sub.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0 (distinct burst must not shed)", got)
	}
	st := f.Stats()
	if st.Overflows != 0 || st.Coalesced != 0 {
		t.Fatalf("overflows=%d coalesced=%d, want 0 and 0", st.Overflows, st.Coalesced)
	}
	var prev uint64
	for i := 0; i < n; i++ {
		ev := <-sub.C()
		if ev.Seq != prev+1 || ev.Coalesced != 0 {
			t.Fatalf("event %d: seq=%d coalesced=%d after %d; want dense", i, ev.Seq, ev.Coalesced, prev)
		}
		prev = ev.Seq
	}
}

// TestCoalesceCompactionKeepsLabels: drive the pending queue past its
// compaction threshold while stalled and confirm labels still add up.
func TestCoalesceCompactionKeepsLabels(t *testing.T) {
	f := New(1<<14, 0)
	sub := f.Subscribe(1 << 12)
	defer sub.Close()

	release := stall(f)
	total := pendCompactAt + 500
	for i := 0; i < total; i++ {
		f.PublishUpsert(upsert(fmt.Sprintf("n%d", i%64), float64(i)))
	}
	release()
	f.Flush()
	f.Close()

	var prev uint64
	count := 0
	for ev := range sub.C() {
		if prev+1+ev.Coalesced != ev.Seq {
			t.Fatalf("unexplained gap after compaction: prev=%d coalesced=%d seq=%d", prev, ev.Coalesced, ev.Seq)
		}
		prev = ev.Seq
		count++
	}
	if prev != uint64(total) {
		t.Fatalf("last seq %d, want %d", prev, total)
	}
	if count != 64 {
		t.Fatalf("delivered %d survivors, want 64 (one per id)", count)
	}
	if st := f.Stats(); st.Coalesced != uint64(total-64) {
		t.Fatalf("stats.Coalesced = %d, want %d", st.Coalesced, total-64)
	}
}

// TestEncAttachedOnlyWhenSubscribed: the shared encode cache costs one
// allocation per event, paid only when someone is listening.
func TestEncAttachedOnlyWhenSubscribed(t *testing.T) {
	f := New(16, 0)
	f.PublishUpsert(upsert("a", 1))
	evs, err := f.Since(0, 0)
	if err != nil || len(evs) != 1 {
		t.Fatalf("Since: %v %v", evs, err)
	}
	if evs[0].Enc != nil {
		t.Fatal("Enc attached with no subscribers")
	}
	sub := f.Subscribe(4)
	defer sub.Close()
	f.PublishUpsert(upsert("b", 2))
	evs, err = f.Since(1, 0)
	if err != nil || len(evs) != 1 {
		t.Fatalf("Since: %v %v", evs, err)
	}
	if evs[0].Enc == nil {
		t.Fatal("Enc missing with a subscriber attached")
	}
	f.Flush()
	if ev := <-sub.C(); ev.Enc != evs[0].Enc {
		t.Fatal("ring copy and delivered copy do not share one Encoded")
	}
}
