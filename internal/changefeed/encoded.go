package changefeed

import "sync/atomic"

// Encoded is the lazily built, immutably shared encoded form of one
// event. The publisher attaches one Encoded per event (when anyone is
// subscribed) before the event is copied into the ring and fanned out,
// so every copy of the event — ring slot, subscriber delivery, relay
// republication — shares the same cache cell. Whichever consumer needs
// an encoding first builds it and stores it; everyone after reads the
// stored bytes instead of re-serializing. Stored values are immutable
// by contract: build once, store, never mutate the stored slice.
//
// A relay ingesting the binary stream stores the received frame bytes
// verbatim, which is what makes multi-hop forwarding a copy instead of
// a decode/re-encode per tier.
type Encoded struct {
	frame atomic.Pointer[[]byte] // binary change frame (internal/wire)
	json  atomic.Pointer[[]byte] // canonical JSON object for /changes
	view  atomic.Value           // consumer-defined decoded view (one concrete type per process)
}

// Frame returns the cached binary frame, or nil if none was stored yet.
func (e *Encoded) Frame() []byte {
	if p := e.frame.Load(); p != nil {
		return *p
	}
	return nil
}

// StoreFrame caches the binary frame. The slice must never be mutated
// after the call.
func (e *Encoded) StoreFrame(b []byte) { e.frame.Store(&b) }

// JSON returns the cached JSON encoding, or nil if none was stored yet.
func (e *Encoded) JSON() []byte {
	if p := e.json.Load(); p != nil {
		return *p
	}
	return nil
}

// StoreJSON caches the JSON encoding. The slice must never be mutated
// after the call.
func (e *Encoded) StoreJSON(b []byte) { e.json.Store(&b) }

// View returns the cached decoded view, or nil.
func (e *Encoded) View() any { return e.view.Load() }

// StoreView caches a decoded view. All stores through one process must
// use the same concrete type (atomic.Value's contract).
func (e *Encoded) StoreView(v any) { e.view.Store(v) }
