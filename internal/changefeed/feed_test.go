package changefeed

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"netcoord/internal/coord"
)

func upsert(id string, x float64) Entry {
	return Entry{ID: id, Coord: coord.Coordinate{Vec: []float64{x, 0, 0}}}
}

func TestSequenceIsDenseAndMonotonic(t *testing.T) {
	f := New(8, 0)
	if got := f.PublishUpsert(upsert("a", 1)); got != 1 {
		t.Fatalf("first seq = %d, want 1", got)
	}
	if got := f.PublishRemove("a"); got != 2 {
		t.Fatalf("second seq = %d, want 2", got)
	}
	if got := f.PublishEvict([]string{"b", "c"}); got != 3 {
		t.Fatalf("evict seq = %d, want 3", got)
	}
	if got := f.Seq(); got != 3 {
		t.Fatalf("Seq() = %d, want 3", got)
	}
}

func TestStartSeqContinuesStream(t *testing.T) {
	f := New(4, 100)
	if got := f.PublishUpsert(upsert("a", 1)); got != 101 {
		t.Fatalf("seq after startSeq 100 = %d, want 101", got)
	}
	if got := f.Seq(); got != 101 {
		t.Fatalf("Seq() = %d, want 101", got)
	}
}

func TestTapSeesEveryEventInOrder(t *testing.T) {
	f := New(2, 0) // tiny ring: taps must not depend on it
	var seen []uint64
	f.Tap(func(ev Event) { seen = append(seen, ev.Seq) })
	for i := 0; i < 10; i++ {
		f.PublishUpsert(upsert(fmt.Sprintf("n%d", i), float64(i)))
	}
	if len(seen) != 10 {
		t.Fatalf("tap saw %d events, want 10", len(seen))
	}
	for i, s := range seen {
		if s != uint64(i+1) {
			t.Fatalf("tap order broken at %d: seq %d", i, s)
		}
	}
}

func TestSinceServesRingAndReportsTruncation(t *testing.T) {
	f := New(4, 0)
	for i := 1; i <= 10; i++ {
		f.PublishUpsert(upsert(fmt.Sprintf("n%d", i), float64(i)))
	}
	// Ring holds 7..10.
	evs, err := f.Since(6, 0)
	if err != nil {
		t.Fatalf("Since(6): %v", err)
	}
	if len(evs) != 4 || evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("Since(6) = %v, want seqs 7..10", evs)
	}
	if _, err := f.Since(5, 0); err != ErrTruncated {
		t.Fatalf("Since(5) err = %v, want ErrTruncated", err)
	}
	evs, err = f.Since(8, 1)
	if err != nil || len(evs) != 1 || evs[0].Seq != 9 {
		t.Fatalf("Since(8, max 1) = %v, %v; want just seq 9", evs, err)
	}
	if evs, err := f.Since(10, 0); err != nil || len(evs) != 0 {
		t.Fatalf("Since(current) = %v, %v; want empty", evs, err)
	}
	if evs, err := f.Since(99, 0); err != nil || len(evs) != 0 {
		t.Fatalf("Since(future) = %v, %v; want empty", evs, err)
	}
	if got := f.OldestBuffered(); got != 7 {
		t.Fatalf("OldestBuffered = %d, want 7", got)
	}
}

func TestEmptyFeedSince(t *testing.T) {
	f := New(4, 50)
	if evs, err := f.Since(50, 0); err != nil || len(evs) != 0 {
		t.Fatalf("Since(startSeq) on empty feed = %v, %v; want empty, nil", evs, err)
	}
	// History before the start point was never in this feed's ring.
	if _, err := f.Since(10, 0); err != ErrTruncated {
		t.Fatalf("Since(pre-start) err = %v, want ErrTruncated", err)
	}
}

func TestSubscribeFollowsAndJoinSeqSplitsHistory(t *testing.T) {
	f := New(16, 0)
	f.PublishUpsert(upsert("a", 1))
	sub := f.Subscribe(8)
	defer sub.Close()
	if sub.JoinSeq() != 1 {
		t.Fatalf("JoinSeq = %d, want 1", sub.JoinSeq())
	}
	f.PublishRemove("a")
	ev := <-sub.C()
	if ev.Seq != 2 || ev.Op != OpRemove {
		t.Fatalf("subscriber got %+v, want remove seq 2", ev)
	}
	// History at or before JoinSeq comes from Since — no overlap, no gap.
	hist, err := f.Since(0, int(sub.JoinSeq()))
	if err != nil || len(hist) != 1 || hist[0].Seq != 1 {
		t.Fatalf("history = %v, %v; want seq 1 only", hist, err)
	}
}

func TestSlowSubscriberDropsAndCounts(t *testing.T) {
	f := New(16, 0)
	sub := f.Subscribe(2)
	defer sub.Close()
	for i := 0; i < 5; i++ {
		f.PublishUpsert(upsert(fmt.Sprintf("n%d", i), float64(i)))
	}
	if got := sub.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
	if got := f.Stats().Overflows; got != 3 {
		t.Fatalf("feed Overflows = %d, want 3", got)
	}
	// The two buffered events are the oldest two: delivery is in order,
	// losses are at the tail.
	if ev := <-sub.C(); ev.Seq != 1 {
		t.Fatalf("first buffered seq = %d, want 1", ev.Seq)
	}
	if ev := <-sub.C(); ev.Seq != 2 {
		t.Fatalf("second buffered seq = %d, want 2", ev.Seq)
	}
}

func TestEvictChunking(t *testing.T) {
	f := New(8, 0)
	ids := make([]string, evictChunk+10)
	for i := range ids {
		ids[i] = fmt.Sprintf("node-%04d", i)
	}
	last := f.PublishEvict(ids)
	if last != 2 {
		t.Fatalf("chunked evict last seq = %d, want 2 events", last)
	}
	evs, err := f.Since(0, 0)
	if err != nil {
		t.Fatalf("Since: %v", err)
	}
	total := 0
	for _, ev := range evs {
		if ev.Op != OpEvict {
			t.Fatalf("op = %d, want evict", ev.Op)
		}
		total += len(ev.IDs)
	}
	if total != len(ids) {
		t.Fatalf("chunks carry %d ids, want %d", total, len(ids))
	}
}

func TestCloseClosesSubscribersButPublishingContinues(t *testing.T) {
	f := New(8, 0)
	sub := f.Subscribe(4)
	f.PublishUpsert(upsert("a", 1))
	f.Close()
	// Buffered event still readable, then the channel closes.
	if ev, ok := <-sub.C(); !ok || ev.Seq != 1 {
		t.Fatalf("buffered event after Close = %+v, %v", ev, ok)
	}
	if _, ok := <-sub.C(); ok {
		t.Fatal("channel still open after feed Close")
	}
	// Publishing after Close still sequences and reaches taps/ring.
	if got := f.PublishRemove("a"); got != 2 {
		t.Fatalf("seq after Close = %d, want 2", got)
	}
	late := f.Subscribe(1)
	if _, ok := <-late.C(); ok {
		t.Fatal("subscription on a closed feed should be closed immediately")
	}
	sub.Close() // double close is safe
}

func TestConcurrentPublishSubscribeRace(t *testing.T) {
	f := New(1024, 0)
	var done atomic.Bool
	var pubWg, auxWg sync.WaitGroup
	var tapCount atomic.Uint64
	f.Tap(func(Event) { tapCount.Add(1) })

	const publishers = 4
	const perPublisher = 500
	for p := 0; p < publishers; p++ {
		pubWg.Add(1)
		go func(p int) {
			defer pubWg.Done()
			for i := 0; i < perPublisher; i++ {
				switch i % 3 {
				case 0:
					f.PublishUpsert(upsert(fmt.Sprintf("p%d-%d", p, i), float64(i)))
				case 1:
					f.PublishRemove(fmt.Sprintf("p%d-%d", p, i-1))
				default:
					f.PublishEvict([]string{fmt.Sprintf("p%d-a", p), fmt.Sprintf("p%d-b", p)})
				}
			}
		}(p)
	}
	// Churning subscribers: attach, read a little, detach.
	monotonic := atomic.Bool{}
	monotonic.Store(true)
	for s := 0; s < 4; s++ {
		auxWg.Add(1)
		go func() {
			defer auxWg.Done()
			for !done.Load() {
				sub := f.Subscribe(16)
				prev := sub.JoinSeq()
				for i := 0; i < 32; i++ {
					select {
					case ev, ok := <-sub.C():
						if !ok {
							sub.Close()
							return
						}
						if ev.Seq <= prev {
							monotonic.Store(false)
						}
						prev = ev.Seq
					default:
					}
				}
				sub.Close()
			}
		}()
	}
	// Concurrent Since readers.
	auxWg.Add(1)
	go func() {
		defer auxWg.Done()
		for !done.Load() {
			seq := f.Seq()
			if seq > 10 {
				_, _ = f.Since(seq-10, 0)
			}
		}
	}()

	pubWg.Wait()
	done.Store(true)
	auxWg.Wait()
	if !monotonic.Load() {
		t.Fatal("a subscriber observed non-monotonic sequence delivery")
	}

	if got := f.Seq(); got != publishers*perPublisher {
		t.Fatalf("final seq = %d, want %d", got, publishers*perPublisher)
	}
	if got := tapCount.Load(); got != publishers*perPublisher {
		t.Fatalf("tap saw %d events, want %d", got, publishers*perPublisher)
	}
}
