package changefeed

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"netcoord/internal/coord"
)

func upsert(id string, x float64) Entry {
	return Entry{ID: id, Coord: coord.Coordinate{Vec: []float64{x, 0, 0}}}
}

func TestSequenceIsDenseAndMonotonic(t *testing.T) {
	f := New(8, 0)
	if got := f.PublishUpsert(upsert("a", 1)); got != 1 {
		t.Fatalf("first seq = %d, want 1", got)
	}
	if got := f.PublishRemove("a"); got != 2 {
		t.Fatalf("second seq = %d, want 2", got)
	}
	if got := f.PublishEvict([]string{"b", "c"}); got != 3 {
		t.Fatalf("evict seq = %d, want 3", got)
	}
	if got := f.Seq(); got != 3 {
		t.Fatalf("Seq() = %d, want 3", got)
	}
}

func TestStartSeqContinuesStream(t *testing.T) {
	f := New(4, 100)
	if got := f.PublishUpsert(upsert("a", 1)); got != 101 {
		t.Fatalf("seq after startSeq 100 = %d, want 101", got)
	}
	if got := f.Seq(); got != 101 {
		t.Fatalf("Seq() = %d, want 101", got)
	}
}

func TestTapSeesEveryEventInOrder(t *testing.T) {
	f := New(2, 0) // tiny ring: taps must not depend on it
	var seen []uint64
	f.Tap(func(ev Event) { seen = append(seen, ev.Seq) })
	for i := 0; i < 10; i++ {
		f.PublishUpsert(upsert(fmt.Sprintf("n%d", i), float64(i)))
	}
	if len(seen) != 10 {
		t.Fatalf("tap saw %d events, want 10", len(seen))
	}
	for i, s := range seen {
		if s != uint64(i+1) {
			t.Fatalf("tap order broken at %d: seq %d", i, s)
		}
	}
}

func TestSinceServesRingAndReportsTruncation(t *testing.T) {
	f := New(4, 0)
	for i := 1; i <= 10; i++ {
		f.PublishUpsert(upsert(fmt.Sprintf("n%d", i), float64(i)))
	}
	// Ring holds 7..10.
	evs, err := f.Since(6, 0)
	if err != nil {
		t.Fatalf("Since(6): %v", err)
	}
	if len(evs) != 4 || evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("Since(6) = %v, want seqs 7..10", evs)
	}
	if _, err := f.Since(5, 0); err != ErrTruncated {
		t.Fatalf("Since(5) err = %v, want ErrTruncated", err)
	}
	evs, err = f.Since(8, 1)
	if err != nil || len(evs) != 1 || evs[0].Seq != 9 {
		t.Fatalf("Since(8, max 1) = %v, %v; want just seq 9", evs, err)
	}
	if evs, err := f.Since(10, 0); err != nil || len(evs) != 0 {
		t.Fatalf("Since(current) = %v, %v; want empty", evs, err)
	}
	if evs, err := f.Since(99, 0); err != nil || len(evs) != 0 {
		t.Fatalf("Since(future) = %v, %v; want empty", evs, err)
	}
	if got := f.OldestBuffered(); got != 7 {
		t.Fatalf("OldestBuffered = %d, want 7", got)
	}
}

func TestEmptyFeedSince(t *testing.T) {
	f := New(4, 50)
	if evs, err := f.Since(50, 0); err != nil || len(evs) != 0 {
		t.Fatalf("Since(startSeq) on empty feed = %v, %v; want empty, nil", evs, err)
	}
	// History before the start point was never in this feed's ring.
	if _, err := f.Since(10, 0); err != ErrTruncated {
		t.Fatalf("Since(pre-start) err = %v, want ErrTruncated", err)
	}
}

func TestSubscribeFollowsAndJoinSeqSplitsHistory(t *testing.T) {
	f := New(16, 0)
	f.PublishUpsert(upsert("a", 1))
	sub := f.Subscribe(8)
	defer sub.Close()
	if sub.JoinSeq() != 1 {
		t.Fatalf("JoinSeq = %d, want 1", sub.JoinSeq())
	}
	f.PublishRemove("a")
	ev := <-sub.C()
	if ev.Seq != 2 || ev.Op != OpRemove {
		t.Fatalf("subscriber got %+v, want remove seq 2", ev)
	}
	// History at or before JoinSeq comes from Since — no overlap, no gap.
	hist, err := f.Since(0, int(sub.JoinSeq()))
	if err != nil || len(hist) != 1 || hist[0].Seq != 1 {
		t.Fatalf("history = %v, %v; want seq 1 only", hist, err)
	}
}

func TestSlowSubscriberDropsAndCounts(t *testing.T) {
	f := New(16, 0)
	sub := f.Subscribe(2)
	defer sub.Close()
	for i := 0; i < 5; i++ {
		f.PublishUpsert(upsert(fmt.Sprintf("n%d", i), float64(i)))
	}
	// Delivery is asynchronous; drain the pending queue so the drop
	// accounting below is deterministic.
	f.Flush()
	if got := sub.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
	if got := f.Stats().Overflows; got != 3 {
		t.Fatalf("feed Overflows = %d, want 3", got)
	}
	// The two buffered events are the oldest two: delivery is in order,
	// losses are at the tail.
	if ev := <-sub.C(); ev.Seq != 1 {
		t.Fatalf("first buffered seq = %d, want 1", ev.Seq)
	}
	if ev := <-sub.C(); ev.Seq != 2 {
		t.Fatalf("second buffered seq = %d, want 2", ev.Seq)
	}
}

func TestEvictChunking(t *testing.T) {
	f := New(8, 0)
	ids := make([]string, evictChunk+10)
	for i := range ids {
		ids[i] = fmt.Sprintf("node-%04d", i)
	}
	last := f.PublishEvict(ids)
	if last != 2 {
		t.Fatalf("chunked evict last seq = %d, want 2 events", last)
	}
	evs, err := f.Since(0, 0)
	if err != nil {
		t.Fatalf("Since: %v", err)
	}
	total := 0
	for _, ev := range evs {
		if ev.Op != OpEvict {
			t.Fatalf("op = %d, want evict", ev.Op)
		}
		total += len(ev.IDs)
	}
	if total != len(ids) {
		t.Fatalf("chunks carry %d ids, want %d", total, len(ids))
	}
}

func TestCloseClosesSubscribersButPublishingContinues(t *testing.T) {
	f := New(8, 0)
	sub := f.Subscribe(4)
	f.PublishUpsert(upsert("a", 1))
	f.Close()
	// Buffered event still readable, then the channel closes.
	if ev, ok := <-sub.C(); !ok || ev.Seq != 1 {
		t.Fatalf("buffered event after Close = %+v, %v", ev, ok)
	}
	if _, ok := <-sub.C(); ok {
		t.Fatal("channel still open after feed Close")
	}
	// Publishing after Close still sequences and reaches taps/ring.
	if got := f.PublishRemove("a"); got != 2 {
		t.Fatalf("seq after Close = %d, want 2", got)
	}
	late := f.Subscribe(1)
	if _, ok := <-late.C(); ok {
		t.Fatal("subscription on a closed feed should be closed immediately")
	}
	sub.Close() // double close is safe
}

func TestConcurrentPublishSubscribeRace(t *testing.T) {
	f := New(1024, 0)
	var done atomic.Bool
	var pubWg, auxWg sync.WaitGroup
	var tapCount atomic.Uint64
	f.Tap(func(Event) { tapCount.Add(1) })

	const publishers = 4
	const perPublisher = 500
	for p := 0; p < publishers; p++ {
		pubWg.Add(1)
		go func(p int) {
			defer pubWg.Done()
			for i := 0; i < perPublisher; i++ {
				switch i % 3 {
				case 0:
					f.PublishUpsert(upsert(fmt.Sprintf("p%d-%d", p, i), float64(i)))
				case 1:
					f.PublishRemove(fmt.Sprintf("p%d-%d", p, i-1))
				default:
					f.PublishEvict([]string{fmt.Sprintf("p%d-a", p), fmt.Sprintf("p%d-b", p)})
				}
			}
		}(p)
	}
	// Churning subscribers: attach, read a little, detach.
	monotonic := atomic.Bool{}
	monotonic.Store(true)
	for s := 0; s < 4; s++ {
		auxWg.Add(1)
		go func() {
			defer auxWg.Done()
			for !done.Load() {
				sub := f.Subscribe(16)
				prev := sub.JoinSeq()
				for i := 0; i < 32; i++ {
					select {
					case ev, ok := <-sub.C():
						if !ok {
							sub.Close()
							return
						}
						if ev.Seq <= prev {
							monotonic.Store(false)
						}
						prev = ev.Seq
					default:
					}
				}
				sub.Close()
			}
		}()
	}
	// Concurrent Since readers.
	auxWg.Add(1)
	go func() {
		defer auxWg.Done()
		for !done.Load() {
			seq := f.Seq()
			if seq > 10 {
				_, _ = f.Since(seq-10, 0)
			}
		}
	}()

	pubWg.Wait()
	done.Store(true)
	auxWg.Wait()
	if !monotonic.Load() {
		t.Fatal("a subscriber observed non-monotonic sequence delivery")
	}

	if got := f.Seq(); got != publishers*perPublisher {
		t.Fatalf("final seq = %d, want %d", got, publishers*perPublisher)
	}
	if got := tapCount.Load(); got != publishers*perPublisher {
		t.Fatalf("tap saw %d events, want %d", got, publishers*perPublisher)
	}
}

func TestPublishAtRelaysUpstreamSequences(t *testing.T) {
	f := New(8, 10)
	f.PublishAt(Event{Seq: 11, Op: OpUpsert, Entry: upsert("a", 1)})
	f.PublishAt(Event{Seq: 12, Op: OpRemove, ID: "a"})
	if got := f.Seq(); got != 12 {
		t.Fatalf("Seq() = %d, want 12", got)
	}
	evs, err := f.Since(10, -1)
	if err != nil || len(evs) != 2 || evs[0].Seq != 11 || evs[1].Seq != 12 {
		t.Fatalf("Since(10) = %v, %v; want the two relayed events", evs, err)
	}

	// Duplicate delivery is dropped, not re-sequenced.
	f.PublishAt(Event{Seq: 12, Op: OpRemove, ID: "a"})
	if got := f.Seq(); got != 12 {
		t.Fatalf("Seq() after duplicate = %d, want 12", got)
	}
	if evs, _ := f.Since(10, -1); len(evs) != 2 {
		t.Fatalf("duplicate grew the ring: %v", evs)
	}
}

func TestPublishAtMergesEvictContinuationChunks(t *testing.T) {
	f := New(8, 0)
	f.PublishAt(Event{Seq: 1, Op: OpEvict, IDs: []string{"a", "b"}})
	// Same-sequence continuation (a WAL-chunked eviction) folds into the
	// ring's tail event instead of breaking sequence density.
	f.PublishAt(Event{Seq: 1, Op: OpEvict, IDs: []string{"c"}})
	f.PublishAt(Event{Seq: 2, Op: OpUpsert, Entry: upsert("d", 4)})
	evs, err := f.Since(0, -1)
	if err != nil || len(evs) != 2 {
		t.Fatalf("Since(0) = %v, %v; want 2 events", evs, err)
	}
	if got := evs[0].IDs; len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("merged evict IDs = %v, want [a b c]", got)
	}
}

func TestPublishAtJumpClearsRing(t *testing.T) {
	f := New(8, 0)
	f.PublishAt(Event{Seq: 1, Op: OpUpsert, Entry: upsert("a", 1)})
	f.PublishAt(Event{Seq: 2, Op: OpUpsert, Entry: upsert("b", 2)})
	// A hole: the ring must not pretend seq 3..9 exist.
	f.PublishAt(Event{Seq: 10, Op: OpUpsert, Entry: upsert("c", 3)})
	if _, err := f.Since(1, -1); err != ErrTruncated {
		t.Fatalf("Since(1) across a jump = %v, want ErrTruncated", err)
	}
	evs, err := f.Since(9, -1)
	if err != nil || len(evs) != 1 || evs[0].Seq != 10 {
		t.Fatalf("Since(9) = %v, %v; want just seq 10", evs, err)
	}
}

func TestResetToClosesSubscribersAndRestartsSequence(t *testing.T) {
	f := New(8, 0)
	f.PublishAt(Event{Seq: 1, Op: OpUpsert, Entry: upsert("a", 1)})
	sub := f.Subscribe(4)
	f.ResetTo(50)
	if _, open := <-sub.C(); open {
		t.Fatal("subscription survived ResetTo; consumers must resync")
	}
	if got := f.Seq(); got != 50 {
		t.Fatalf("Seq() after ResetTo = %d, want 50", got)
	}
	if _, err := f.Since(0, -1); err != ErrTruncated {
		t.Fatalf("Since(0) after ResetTo = %v, want ErrTruncated", err)
	}
	// The feed stays usable: new subscribers and relayed events work.
	sub2 := f.Subscribe(4)
	f.PublishAt(Event{Seq: 51, Op: OpUpsert, Entry: upsert("b", 2)})
	if ev := <-sub2.C(); ev.Seq != 51 {
		t.Fatalf("post-reset event seq = %d, want 51", ev.Seq)
	}
	sub.Close() // closing the dead subscription must not panic
	sub2.Close()
}

func TestRemovedSinceTracksTombstones(t *testing.T) {
	f := New(4, 0) // event ring of 4; tombstone ring is 1024 (the minimum)
	f.PublishUpsert(upsert("a", 1))
	f.PublishRemove("a")               // seq 2
	f.PublishEvict([]string{"b", "c"}) // seq 3
	mark := f.Seq()
	f.PublishRemove("d") // seq 4
	// Churn the EVENT ring far past everything above: removal knowledge
	// must survive it — that asymmetry is the whole point of a separate
	// tombstone ring.
	for i := 0; i < 50; i++ {
		f.PublishUpsert(upsert("hb", 2))
	}
	if _, err := f.Since(mark, -1); err != ErrTruncated {
		t.Fatalf("event ring unexpectedly retained seq %d (err %v); test premise broken", mark, err)
	}
	removed, ok := f.RemovedSince(mark)
	if !ok || len(removed) != 1 || removed[0] != "d" {
		t.Fatalf("RemovedSince(%d) = %v, %v; want [d], true", mark, removed, ok)
	}
	removed, ok = f.RemovedSince(0)
	if !ok || len(removed) != 4 {
		t.Fatalf("RemovedSince(0) = %v, %v; want a,b,c,d", removed, ok)
	}

	// Duplicate removals of one id dedupe.
	f.PublishUpsert(upsert("d", 9))
	f.PublishRemove("d")
	if removed, ok = f.RemovedSince(mark); !ok || len(removed) != 1 {
		t.Fatalf("deduped RemovedSince = %v, %v; want just d once", removed, ok)
	}

	// Overflowing the tombstone ring surrenders the proof for older
	// resume points but keeps it for newer ones.
	flood := f.Seq()
	for i := 0; i < 1100; i++ {
		f.PublishRemove(fmt.Sprintf("t%04d", i))
	}
	if _, ok = f.RemovedSince(mark); ok {
		t.Fatal("RemovedSince claimed completeness past a tombstone overflow")
	}
	if removed, ok = f.RemovedSince(flood + 100); !ok {
		t.Fatal("RemovedSince lost a range the ring still covers")
	} else if len(removed) != 1000 {
		t.Fatalf("RemovedSince(flood+100) = %d ids, want 1000", len(removed))
	}
}

func TestResetToClearsTombstones(t *testing.T) {
	f := New(4, 0)
	f.PublishRemove("a")
	f.ResetTo(50)
	if _, ok := f.RemovedSince(10); ok {
		t.Fatal("tombstone knowledge survived ResetTo; pre-reset sequences are a different stream")
	}
	f.PublishAt(Event{Seq: 51, Op: OpRemove, ID: "b"})
	removed, ok := f.RemovedSince(50)
	if !ok || len(removed) != 1 || removed[0] != "b" {
		t.Fatalf("post-reset RemovedSince = %v, %v; want [b]", removed, ok)
	}
}

func TestPublishAtJumpRaisesTombstoneFloor(t *testing.T) {
	f := New(8, 0)
	f.PublishAt(Event{Seq: 1, Op: OpRemove, ID: "a"})
	// Jump over a hole: removals inside (1, 200) were never seen, so
	// completeness below 199 must no longer be claimed.
	f.PublishAt(Event{Seq: 200, Op: OpUpsert, Entry: upsert("b", 2)})
	if _, ok := f.RemovedSince(1); ok {
		t.Fatal("RemovedSince claimed completeness across a jumped hole")
	}
	f.PublishAt(Event{Seq: 201, Op: OpRemove, ID: "c"})
	removed, ok := f.RemovedSince(199)
	if !ok || len(removed) != 1 || removed[0] != "c" {
		t.Fatalf("post-jump RemovedSince = %v, %v; want [c]", removed, ok)
	}
}

func TestAdvanceToPreservesTombstoneDepth(t *testing.T) {
	f := New(4, 0)
	f.PublishRemove("old") // seq 1; tombFloor stays 0
	sub := f.Subscribe(4)
	// A delta repair jumps the stream to 100, folding the delta's
	// removed ids in at the jump seq; knowledge below the jump must
	// survive (that is the difference from ResetTo).
	f.AdvanceTo(100, []string{"x", "y"})
	if _, open := <-sub.C(); open {
		t.Fatal("subscription survived AdvanceTo; consumers must resync")
	}
	if _, err := f.Since(0, -1); err != ErrTruncated {
		t.Fatal("event ring survived AdvanceTo")
	}
	removed, ok := f.RemovedSince(0)
	if !ok || len(removed) != 3 {
		t.Fatalf("RemovedSince(0) = %v, %v; want [old x y] with preserved floor", removed, ok)
	}
	removed, ok = f.RemovedSince(1)
	if !ok || len(removed) != 2 {
		t.Fatalf("RemovedSince(1) = %v, %v; want the jump's [x y]", removed, ok)
	}
	if f.Seq() != 100 {
		t.Fatalf("Seq() = %d, want 100", f.Seq())
	}
}

func TestPublishAtFencesStaleEpochs(t *testing.T) {
	f := New(8, 0)
	f.SetEpoch(2)
	f.PublishAt(Event{Seq: 1, Epoch: 2, Op: OpUpsert, Entry: upsert("a", 1)})

	// A deposed leader (epoch 1) keeps publishing: every event is
	// rejected, counted, and leaves the stream untouched.
	f.PublishAt(Event{Seq: 2, Epoch: 1, Op: OpUpsert, Entry: upsert("stale", 9)})
	f.PublishAt(Event{Seq: 3, Epoch: 1, Op: OpRemove, ID: "a"})
	if got := f.Seq(); got != 1 {
		t.Fatalf("Seq() after stale publishes = %d, want 1", got)
	}
	if got := f.RejectedStaleEpoch(); got != 2 {
		t.Fatalf("RejectedStaleEpoch() = %d, want 2", got)
	}
	if evs, err := f.Since(0, -1); err != nil || len(evs) != 1 {
		t.Fatalf("stale events reached the ring: %v, %v", evs, err)
	}

	// Removal knowledge must not record the fenced remove either.
	if removed, ok := f.RemovedSince(0); !ok || len(removed) != 0 {
		t.Fatalf("fenced remove left a tombstone: %v, %v", removed, ok)
	}
}

func TestPublishAtAdoptsHigherEpoch(t *testing.T) {
	f := New(8, 0)
	f.PublishAt(Event{Seq: 1, Epoch: 1, Op: OpUpsert, Entry: upsert("a", 1)})
	// The relay observes its upstream's promotion mid-stream: the higher
	// epoch is adopted, and the old epoch is fenced from then on.
	f.PublishAt(Event{Seq: 2, Epoch: 2, Op: OpUpsert, Entry: upsert("b", 2)})
	if got := f.Epoch(); got != 2 {
		t.Fatalf("Epoch() = %d, want 2 (adopted from the event)", got)
	}
	f.PublishAt(Event{Seq: 3, Epoch: 1, Op: OpUpsert, Entry: upsert("c", 3)})
	if got := f.Seq(); got != 2 {
		t.Fatalf("Seq() = %d, want 2 (epoch-1 event after adoption must be fenced)", got)
	}
	if got := f.RejectedStaleEpoch(); got != 1 {
		t.Fatalf("RejectedStaleEpoch() = %d, want 1", got)
	}
}

func TestPublishStampsCurrentEpoch(t *testing.T) {
	f := New(8, 0)
	f.SetEpoch(3)
	sub := f.Subscribe(4)
	f.PublishUpsert(upsert("a", 1))
	ev := <-sub.C()
	if ev.Epoch != 3 {
		t.Fatalf("published event epoch = %d, want 3", ev.Epoch)
	}
	evs, err := f.Since(0, -1)
	if err != nil || len(evs) != 1 || evs[0].Epoch != 3 {
		t.Fatalf("ring event epoch = %v, %v; want epoch 3", evs, err)
	}
	if st := f.Stats(); st.Epoch != 3 {
		t.Fatalf("Stats().Epoch = %d, want 3", st.Epoch)
	}
	sub.Close()
}

func TestTombstoneExportSeedRoundTrip(t *testing.T) {
	f := New(8, 0)
	f.PublishUpsert(upsert("a", 1))
	f.PublishRemove("a")               // seq 2
	f.PublishEvict([]string{"b", "c"}) // seq 3
	floor, tombs := f.Tombstones()
	if floor != 0 || len(tombs) != 3 {
		t.Fatalf("Tombstones() = floor %d, %v; want floor 0 and 3 tombstones", floor, tombs)
	}

	// A restarted leader seeds the captured knowledge into a fresh feed
	// started at the captured seq (as recovery does): RemovedSince must
	// answer exactly as the original would have.
	f2 := New(8, 3)
	f2.SeedTombstones(floor, tombs)
	f2.PublishAt(Event{Seq: 4, Op: OpUpsert, Entry: upsert("d", 4)})
	removed, ok := f2.RemovedSince(1)
	if !ok || len(removed) != 3 {
		t.Fatalf("seeded RemovedSince(1) = %v, %v; want [a b c], true", removed, ok)
	}
	removed, ok = f2.RemovedSince(2)
	if !ok || len(removed) != 2 {
		t.Fatalf("seeded RemovedSince(2) = %v, %v; want [b c], true", removed, ok)
	}

	// A non-zero floor survives the round trip and bounds completeness.
	f3 := New(8, 3)
	f3.SeedTombstones(2, tombs[1:])
	if _, ok := f3.RemovedSince(1); ok {
		t.Fatal("seeded feed claimed completeness below its floor")
	}
	if removed, ok := f3.RemovedSince(2); !ok || len(removed) != 2 {
		t.Fatalf("seeded RemovedSince(2) = %v, %v; want [b c], true", removed, ok)
	}
}
