package changefeed

import "time"

// Subscriber delivery is asynchronous and coalescing, in the spirit of
// serf's event coalescence: the publish path only appends the event to
// a pending queue, and a background flusher drains the queue into every
// subscriber's buffer. While an upsert for some id is still pending, a
// newer upsert for the same id supersedes it — the older one is
// collapsed away and only the newest state is delivered. A heartbeat
// storm (the same nodes re-upserting in a tight burst) therefore
// reaches subscribers as one event per node, not one per heartbeat.
//
// What a subscriber may observe:
//
//   - Collapsing never reorders mutations. Only an upsert can collapse
//     an upsert of the same id; removes and evicts are never collapsed
//     and never skipped, and survivors are delivered in sequence order.
//     Final state per id is exactly what synchronous delivery would
//     have produced.
//   - A collapse leaves a sequence gap, and the gap is labelled: the
//     survivor's Event.Coalesced counts the events collapsed away
//     immediately before it, so a consumer checks
//     prev.Seq + 1 + ev.Coalesced == ev.Seq and knows the gap is
//     benign — superseded same-id upserts — rather than loss.
//   - Loss happens exactly where it always did: a full subscriber
//     buffer at delivery time, counted in Overflows/Dropped and left
//     unlabelled so the consumer resynchronizes. The pending queue
//     itself never drops: when it fills with *distinct* live events
//     (nothing left to collapse), the publisher flushes it inline —
//     paying the same fan-out cost the old synchronous path always
//     paid — so a subscriber with room for everything still loses
//     nothing.
//
// Taps are untouched: they remain synchronous, lossless, and inline
// under the feed lock.
const (
	// coalesceLive caps distinct live (undelivered, uncollapsed)
	// pending events; at the cap the publisher drains the queue
	// inline instead of letting it grow without bound on a storm of
	// distinct ids, which nothing can collapse.
	coalesceLive = 1024
	// pendCompactAt bounds the pending queue's physical length: when
	// appending would pass it, collapsed slots are compacted away
	// in place (live slots are capped far below it).
	pendCompactAt = 4 * coalesceLive
	// coalesceWindow is how long the flusher lingers after draining a
	// batch that collapsed something: a storm that is collapsing now
	// will collapse more if delivery waits one more beat.
	coalesceWindow = 2 * time.Millisecond
)

// pendSlot states.
const (
	slotLive      uint8 = iota // will be delivered
	slotCoalesced              // superseded by a later same-id upsert
)

// pendSlot is one pending event awaiting flush.
type pendSlot struct {
	ev    Event
	skip  uint64 // collapsed events folded in front of this slot by compaction
	state uint8
}

// enqueueLocked appends ev to the pending queue, collapsing any pending
// upsert of the same id, and wakes the flusher. It reports whether the
// queue is at capacity, in which case the caller must drain it inline
// (flushOnce) after releasing f.mu. The caller holds f.mu.
//
//nc:locked(mu)
func (f *Feed) enqueueLocked(ev Event) (full bool) {
	if f.closed || len(f.subs) == 0 {
		return false
	}
	if ev.Op == OpUpsert {
		if i, ok := f.pendByID[ev.Entry.ID]; ok {
			f.pend[i].state = slotCoalesced
			f.pendLive--
			f.coalesced.Add(1)
		}
	}
	if len(f.pend) >= pendCompactAt {
		f.compactLocked()
	}
	f.pend = append(f.pend, pendSlot{ev: ev})
	f.pendLive++
	if ev.Op == OpUpsert {
		f.pendByID[ev.Entry.ID] = len(f.pend) - 1
	}
	if f.pendLive >= coalesceLive {
		// Full of distinct events — nothing left to collapse. The
		// publisher drains inline (after unlocking) rather than drop:
		// that is exactly the fan-out the old synchronous path paid on
		// every single event.
		return true
	}
	select {
	case f.wake <- struct{}{}:
	default:
	}
	return false
}

// compactLocked squeezes collapsed slots out of the pending queue in
// place, folding their counts into the next surviving slot so gap
// labelling survives compaction. The caller holds f.mu.
//
//nc:locked(mu)
func (f *Feed) compactLocked() {
	out := 0
	var carry uint64
	for i := 0; i < len(f.pend); i++ {
		s := f.pend[i]
		if s.state == slotCoalesced {
			carry += 1 + s.skip
			continue
		}
		s.skip += carry
		carry = 0
		f.pend[out] = s
		if s.ev.Op == OpUpsert {
			f.pendByID[s.ev.Entry.ID] = out
		}
		out++
	}
	// No trailing carry is possible: a collapsed slot's superseder sits
	// after it, so the queue always ends in a live slot.
	for i := out; i < len(f.pend); i++ {
		f.pend[i] = pendSlot{}
	}
	f.pend = f.pend[:out]
}

// swapPendLocked detaches the pending queue for delivery, leaving the
// previous batch's backing array in place for reuse. The caller holds
// both f.deliverMu and f.mu.
//
//nc:locked(mu)
func (f *Feed) swapPendLocked() []pendSlot {
	batch := f.pend
	f.pend, f.pendSpare = f.pendSpare[:0], batch
	f.pendLive = 0
	clear(f.pendByID)
	return batch
}

// deliverBatch stamps coalesce labels onto the surviving events and
// offers each to the given subscribers without blocking. It returns how
// many events were collapsed in this batch. The caller holds
// f.deliverMu (delivery order across batches is what it serializes);
// f.mu may or may not be held.
func (f *Feed) deliverBatch(batch []pendSlot, subs []*Subscription) uint64 {
	var collapsed uint64
	var run uint64 // collapsed events since the last survivor
	for i := range batch {
		s := &batch[i]
		if s.state == slotCoalesced {
			run += 1 + s.skip
			collapsed++
			continue
		}
		// The slot is exclusively owned here (swapped out of pend under
		// f.mu), so the label is stamped in place and the event handed to
		// sinks by pointer — no per-subscriber copy of the struct.
		s.ev.Coalesced = run + s.skip
		run = 0
		for _, sub := range subs {
			if sub.sink != nil {
				if sub.sink(&s.ev) || sub.signal.Load() {
					continue
				}
				sub.dropped.Add(1)
				f.overflows.Add(1)
				continue
			}
			select {
			case sub.ch <- s.ev:
			default:
				if !sub.signal.Load() {
					sub.dropped.Add(1)
					f.overflows.Add(1)
				}
			}
		}
	}
	return collapsed
}

// flushOnce drains the pending queue once, delivering outside f.mu so a
// slow fan-out never stalls publishers. It reports whether anything was
// pending and whether any of it collapsed.
func (f *Feed) flushOnce() (delivered bool, collapsed bool) {
	f.deliverMu.Lock()
	defer f.deliverMu.Unlock()
	f.mu.Lock()
	if len(f.pend) == 0 {
		f.mu.Unlock()
		return false, false
	}
	batch := f.swapPendLocked()
	subs := f.subsList
	f.mu.Unlock()
	n := f.deliverBatch(batch, subs)
	// Zero the spare backing so delivered events (ids, coordinates,
	// encode caches) are collectable before the slots are overwritten.
	for i := range batch {
		batch[i] = pendSlot{}
	}
	return true, n > 0
}

// Flush synchronously drains the pending queue into subscriber
// buffers. Tests and shutdown paths use it to make delivery
// deterministic; normal operation relies on the background flusher.
func (f *Feed) Flush() {
	f.flushOnce()
}

// flushLoop is the background flusher: woken by the first pending event
// after an idle period, it drains batches until the queue runs dry,
// holding the coalescing window open while a storm is collapsing.
func (f *Feed) flushLoop() {
	for {
		select {
		case <-f.quit:
			return
		case <-f.wake:
		}
		for {
			delivered, collapsed := f.flushOnce()
			if !delivered {
				break
			}
			if !collapsed {
				continue
			}
			// Something collapsed: the stream is storming. Hold the
			// window open so the next batch collapses harder instead
			// of racing the storm event-by-event.
			select {
			case <-f.quit:
				return
			case <-time.After(coalesceWindow): //nc:allow(ctxio) bounded coalescing window on the background flusher, not a request path
			}
		}
	}
}

// drainPendLocked delivers everything pending while holding both locks
// — the inline variant used by Subscribe/Close, where the next action
// (attaching or closing a subscriber) must see an empty queue. The
// caller holds f.deliverMu and f.mu.
//
//nc:locked(mu)
func (f *Feed) drainPendLocked() {
	if len(f.pend) == 0 {
		return
	}
	batch := f.swapPendLocked()
	f.deliverBatch(batch, f.subsList)
	for i := range batch {
		batch[i] = pendSlot{}
	}
}

// discardPendLocked throws the pending queue away — ResetTo/AdvanceTo
// rewrite the sequence space, so events queued against the old space
// must not leak into subscribers that resubscribe against the new one.
// The caller holds f.deliverMu and f.mu.
//
//nc:locked(mu)
func (f *Feed) discardPendLocked() {
	for i := range f.pend {
		f.pend[i] = pendSlot{}
	}
	f.pend = f.pend[:0]
	f.pendLive = 0
	clear(f.pendByID)
}

// rebuildSubsLocked refreshes the copy-on-write subscriber list the
// flusher delivers from outside f.mu. The caller holds f.mu.
//
//nc:locked(mu)
func (f *Feed) rebuildSubsLocked() {
	if len(f.subs) == 0 {
		f.subsList = nil
		return
	}
	list := make([]*Subscription, 0, len(f.subs))
	for sub := range f.subs {
		list = append(list, sub)
	}
	f.subsList = list
}
