// Package changefeed is the registry's change-stream core: a totally
// ordered, sequence-numbered log of applied mutations that durability,
// live subscribers, and read replicas all consume through one seam.
//
// The paper's observation — application-level coordinates change
// rarely — is what makes a push stream the right distribution
// primitive: the stream is almost always quiet, so fanning every
// mutation out to persistence, watchers, and followers costs almost
// nothing, while pull-based consumers would poll mostly-unchanged
// state forever.
//
// A Feed assigns each published event the next sequence number (dense:
// seq n+1 follows n with no holes) and delivers it to two kinds of
// consumer:
//
//   - Taps are synchronous: invoked inline under the feed lock, in
//     sequence order, with no buffering and no loss. The persistence
//     layer is a tap — its WAL append only enqueues, so the inline
//     call is cheap, and a tap can never miss an event the way a
//     bounded subscriber can. Taps are registered before the feed is
//     shared and never removed.
//   - Subscriptions are asynchronous: each holds a bounded buffer the
//     publisher writes without ever blocking. A subscriber that falls
//     behind loses events (counted in Dropped, visible as a sequence
//     gap) and is expected to resume from history — the ring via
//     Since, or the WAL beneath it — rather than slow the mutation
//     path down.
//
// The feed also retains the most recent events in a ring so that
// late-joining or lagging subscribers can catch up without touching
// disk; Since reports when the ring no longer reaches back far enough
// and the caller must fall back to WAL replay.
package changefeed

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"netcoord/internal/coord"
)

// Op discriminates event kinds. Values intentionally mirror the
// persistence layer's record ops.
type Op uint8

// The mutation kinds a registry publishes.
const (
	// OpUpsert inserts or refreshes one entry.
	OpUpsert Op = 1
	// OpRemove deletes one entry by id.
	OpRemove Op = 2
	// OpEvict deletes a batch of ids (TTL staleness eviction).
	OpEvict Op = 3
)

// Evict batch bounds: one eviction sweep is split into multiple events
// so no single event (hence no single WAL record downstream) grows
// unbounded. The byte bound is what keeps a sweep of maximum-length
// ids far under the persistence layer's frame limit.
const (
	evictChunk      = 512
	evictChunkBytes = 256 << 10
)

// Entry is the payload of an upsert event. It mirrors the registry's
// entry type without importing it (the root package imports changefeed).
type Entry struct {
	// ID is the node's identifier.
	ID string
	// Coord is the node's (application-level) coordinate.
	Coord coord.Coordinate
	// Error is the node's Vivaldi error weight.
	Error float64
	// UpdatedAt is the entry's last-upsert time, carried so replicas
	// reconstruct bit-identical entries (TTL eviction stays correct on
	// a follower promoted to leader).
	UpdatedAt time.Time
}

// Event is one sequenced mutation.
type Event struct {
	// Seq is the event's position in the total order. Sequence numbers
	// are dense: every published event gets the previous seq + 1.
	Seq uint64
	// Op selects which of the remaining fields is meaningful.
	Op Op
	// Entry is set for OpUpsert.
	Entry Entry
	// ID is set for OpRemove.
	ID string
	// IDs is set for OpEvict.
	IDs []string
	// PubNs is the wall-clock Unix-nanosecond timestamp stamped once
	// when the event was first published at the stream's origin (the
	// leader). Relays preserve it verbatim through PublishAt, so at any
	// tier "now - PubNs" is the event's true end-to-end propagation lag.
	// Zero means unknown (e.g. an event replayed from the WAL, which
	// does not persist stamps) — consumers skip lag observation then.
	PubNs int64
	// Epoch is the fencing epoch the event was published under. Each
	// promotion bumps the stream's epoch, so an event from a deposed
	// leader carries a lower epoch than the stream it tries to enter
	// and is rejected instead of corrupting replica state. Zero is the
	// unfenced pre-failover epoch (and what legacy streams carry).
	Epoch uint64
	// Coalesced labels the sequence gap immediately before this event
	// on a subscriber delivery: that many events were collapsed away as
	// superseded same-id upserts (see coalesce.go). A consumer checks
	// prev.Seq + 1 + Coalesced == ev.Seq to distinguish benign
	// collapse from loss. Always zero on ring reads (Since) — the ring
	// is dense — and on taps.
	Coalesced uint64
	// Enc is the event's shared encode cache, attached once by the
	// publisher when subscribers exist and carried by every copy of the
	// event; nil when nothing downstream will serialize it. See Encoded.
	Enc *Encoded
}

// ErrTruncated is returned by Since when the ring no longer holds the
// requested resume point; the caller must replay deeper history (the
// WAL) or re-bootstrap from a snapshot.
var ErrTruncated = errors.New("changefeed: history truncated (resume point older than the ring)")

// Stats is an operational snapshot of a Feed.
type Stats struct {
	// Seq is the last assigned sequence number (0 = nothing published).
	Seq uint64 `json:"seq"`
	// Published counts events published since construction (events
	// published by this process; excludes the StartSeq offset).
	Published uint64 `json:"published"`
	// Subscribers is the current subscription count.
	Subscribers int `json:"subscribers"`
	// Overflows counts events dropped across all subscribers because
	// their buffers were full — each one a gap some subscriber must
	// repair by resuming from history.
	Overflows uint64 `json:"overflows"`
	// Coalesced counts events collapsed away before delivery because a
	// newer upsert of the same id superseded them while they were still
	// pending. Unlike Overflows these are not loss: the surviving event
	// carries the final state and labels the gap (Event.Coalesced).
	Coalesced uint64 `json:"coalesced"`
	// OldestSeq is the oldest event still in the ring (0 = ring empty);
	// Since can serve any resume point >= OldestSeq-1.
	OldestSeq uint64 `json:"oldest_seq"`
	// RingLen and RingCap describe the catch-up ring's fill.
	RingLen int `json:"ring_len"`
	RingCap int `json:"ring_cap"`
	// TombLen and TombCap describe the tombstone ring's fill, and
	// TombFloor is the sequence below which removal knowledge is
	// incomplete — delta snapshots from at or below it are impossible.
	TombLen   int    `json:"tomb_len"`
	TombCap   int    `json:"tomb_cap"`
	TombFloor uint64 `json:"tomb_floor"`
	// Epoch is the stream's current fencing epoch.
	Epoch uint64 `json:"epoch"`
	// RejectedStaleEpoch counts relayed events refused because they
	// carried an epoch below the stream's — a deposed leader still
	// publishing after a promotion.
	RejectedStaleEpoch uint64 `json:"rejected_stale_epoch"`
}

// Feed is the sequenced change stream. Create with New; methods are
// safe for concurrent use except Tap, which must be called before the
// feed is shared.
type Feed struct {
	mu     sync.Mutex
	seq    uint64 // last assigned, guarded by mu; mirrored in seqAtomic
	ring   []Event
	next   int // ring slot the next event lands in
	len    int // live events in the ring
	taps   []func(Event)
	subs   map[*Subscription]struct{}
	closed bool

	// Subscriber delivery is asynchronous and coalescing; see
	// coalesce.go. deliverMu serializes delivery (flusher batches and
	// the inline drains in Subscribe/Close) and orders strictly before
	// mu — every path that takes both takes deliverMu first, which is
	// what lets the flusher send to subscriber channels without holding
	// mu while Close/ResetTo can still safely close those channels.
	deliverMu sync.Mutex
	pend      []pendSlot      // pending queue, guarded by mu
	pendSpare []pendSlot      // previous batch's backing, reused on swap
	pendLive  int             // live (deliverable) slots in pend
	pendByID  map[string]int  // id -> index of its live pending upsert
	subsList  []*Subscription // copy-on-write snapshot of subs for lock-free fan-out
	wake      chan struct{}   // cap 1: nudges the flusher
	quit      chan struct{}   // closed to stop the flusher
	flusherOn bool            // guarded by mu
	coalesced atomic.Uint64

	// The tombstone ring remembers (seq, id) for removals only. Because
	// heartbeat upserts dominate real streams, the event ring forgets a
	// sequence range long before the same memory spent on removals
	// does — which is what lets a delta snapshot prove "these are ALL
	// the ids deleted since seq N" far below the event ring's floor.
	tombs     []tombstone
	tombNext  int
	tombLen   int
	tombFloor uint64 // removal knowledge covers (tombFloor, seq]

	seqAtomic atomic.Uint64
	published atomic.Uint64
	overflows atomic.Uint64

	// epoch is the stream's fencing epoch: stamped onto every locally
	// published event, adopted upward from relayed events, and the bar
	// a relayed event must meet — PublishAt drops events below it
	// (counted in rejectedStale) so a deposed leader's stale stream
	// cannot re-enter a promoted tier.
	epoch         atomic.Uint64
	rejectedStale atomic.Uint64
}

// tombstone records one removed id and the sequence that removed it.
type tombstone struct {
	seq uint64
	id  string
}

// Tombstone is the exported form of one remembered removal, used to
// persist the tombstone ring through snapshots and re-seed it on
// recovery — a restarted or newly promoted leader can then still prove
// removal-completeness for delta re-bootstraps.
type Tombstone struct {
	// Seq is the sequence of the removal.
	Seq uint64
	// ID is the removed id.
	ID string
}

// New builds a Feed whose ring retains up to ringSize recent events
// (minimum 1) and whose next event will be numbered startSeq+1 —
// recovery passes the last persisted sequence so the stream continues
// where the previous process stopped instead of reusing numbers.
func New(ringSize int, startSeq uint64) *Feed {
	if ringSize < 1 {
		ringSize = 1
	}
	tombCap := ringSize * 4
	if tombCap < 1024 {
		tombCap = 1024
	}
	f := &Feed{
		seq:       startSeq,
		ring:      make([]Event, ringSize),
		subs:      make(map[*Subscription]struct{}),
		tombs:     make([]tombstone, tombCap),
		tombFloor: startSeq,
		pendByID:  make(map[string]int),
		wake:      make(chan struct{}, 1),
		quit:      make(chan struct{}),
	}
	f.seqAtomic.Store(startSeq)
	return f
}

// Tap registers a synchronous consumer invoked inline, under the feed
// lock, for every subsequent event in sequence order. fn must only
// enqueue — it runs on every mutation path, under the publishing
// shard's lock. Tap is not safe to call concurrently with publishing:
// register taps before the feed is shared.
func (f *Feed) Tap(fn func(Event)) {
	f.taps = append(f.taps, fn)
}

// Seq returns the last assigned sequence number.
func (f *Feed) Seq() uint64 { return f.seqAtomic.Load() }

// Epoch returns the stream's current fencing epoch.
func (f *Feed) Epoch() uint64 { return f.epoch.Load() }

// SetEpoch sets the fencing epoch stamped onto subsequently published
// events. Recovery seeds the persisted epoch here; promotion bumps it.
// Epochs only ever rise — callers pass a value at or above the current
// one (PublishAt adopts higher relayed epochs on its own).
func (f *Feed) SetEpoch(epoch uint64) { f.epoch.Store(epoch) }

// RejectedStaleEpoch counts relayed events refused for carrying an
// epoch below the stream's.
func (f *Feed) RejectedStaleEpoch() uint64 { return f.rejectedStale.Load() }

// PublishUpsert publishes an upsert event and returns its sequence.
func (f *Feed) PublishUpsert(e Entry) uint64 {
	return f.publish(Event{Op: OpUpsert, Entry: e})
}

// PublishRemove publishes a remove event and returns its sequence.
func (f *Feed) PublishRemove(id string) uint64 {
	return f.publish(Event{Op: OpRemove, ID: id})
}

// PublishEvict publishes eviction events for ids, chunked by count and
// by bytes so no single event (or the WAL record a tap writes for it)
// approaches frame limits. It returns the last sequence assigned.
func (f *Feed) PublishEvict(ids []string) uint64 {
	var last uint64
	for len(ids) > 0 {
		n, bytes := 0, 0
		for n < len(ids) && n < evictChunk && bytes < evictChunkBytes {
			bytes += len(ids[n]) + 4
			n++
		}
		last = f.publish(Event{Op: OpEvict, IDs: ids[:n:n]})
		ids = ids[n:]
	}
	return last
}

// PublishAt appends an event that already carries a sequence assigned
// upstream — a replica relaying its leader's stream republishes each
// applied event under the leader's own number, so everything downstream
// (chained replicas, watchers) lives in one sequence space.
//
// The normal case is ev.Seq == Seq()+1: leader streams are dense, and a
// relay applies them in order. Two degenerate shapes are handled so the
// ring's density invariant (Since arithmetic) survives anything a real
// stream can carry:
//
//   - ev.Seq == Seq() with Op == OpEvict merges the event's IDs into
//     the ring's tail event: the persistence layer chunks one oversized
//     eviction into several WAL records sharing a sequence, and a relay
//     that tailed them from the WAL must fold them back into one event.
//     Subscribers still receive the continuation (same Seq — consumers
//     treat the non-monotonic step as a gap and recompute
//     conservatively).
//   - ev.Seq <= Seq() otherwise is a duplicate delivery: dropped.
//   - ev.Seq > Seq()+1 is a hole the caller chose to jump over; the
//     ring is cleared first so Since never fabricates continuity across
//     it (resumers below the hole get ErrTruncated and re-bootstrap).
//
// Fencing: an event carrying an epoch below the stream's is rejected
// outright (counted in RejectedStaleEpoch) — it originates from a
// deposed leader still publishing after a promotion, and applying it
// would fork the promoted stream. A higher epoch is adopted: the relay
// is observing its upstream's promotion.
//
//nc:hotpath
func (f *Feed) PublishAt(ev Event) {
	f.mu.Lock()
	if cur := f.epoch.Load(); ev.Epoch < cur {
		f.mu.Unlock()
		f.rejectedStale.Add(1)
		return
	} else if ev.Epoch > cur {
		f.epoch.Store(ev.Epoch)
	}
	switch {
	case ev.Seq == f.seq+1:
	case ev.Seq == f.seq && ev.Op == OpEvict && f.len > 0:
		// Fold the continuation chunk into the tail ring event, then
		// still offer it to subscribers below (they key damage off IDs,
		// not off ring contents).
		tail := (f.next - 1 + len(f.ring)) % len(f.ring)
		if f.ring[tail].Seq == ev.Seq && f.ring[tail].Op == OpEvict {
			f.ring[tail].IDs = append(f.ring[tail].IDs[:len(f.ring[tail].IDs):len(f.ring[tail].IDs)], ev.IDs...)
		}
		f.recordTombsLocked(ev)
		full := f.deliverLocked(ev)
		f.mu.Unlock()
		f.published.Add(1)
		if full {
			f.flushOnce()
		}
		return
	case ev.Seq <= f.seq:
		f.mu.Unlock()
		return
	default: // a jump: clear the ring so it stays seq-dense
		f.next, f.len = 0, 0
		// Removal knowledge has the same hole the ring does: anything
		// removed inside the jump was never recorded, so the tombstone
		// floor must rise with it or RemovedSince would falsely claim
		// completeness across the gap.
		f.tombNext, f.tombLen = 0, 0
		f.tombFloor = ev.Seq - 1
	}
	f.seq = ev.Seq
	f.seqAtomic.Store(f.seq)
	f.ring[f.next] = ev
	f.next = (f.next + 1) % len(f.ring)
	if f.len < len(f.ring) {
		f.len++
	}
	f.recordTombsLocked(ev)
	full := f.deliverLocked(ev)
	f.mu.Unlock()
	f.published.Add(1)
	if full {
		f.flushOnce()
	}
}

// ResetTo discards the retained history and restarts the sequence
// space at seq — a relay that re-bootstrapped from a FULL snapshot
// calls this, because its previous ring (and removal knowledge, which
// the full snapshot did not carry forward) no longer connects to its
// rewritten state. Every live subscription is closed: consumers
// holding one re-subscribe and resynchronize from current state,
// exactly as they would after falling off the ring. The feed itself
// stays open for subsequent Subscribe/PublishAt.
func (f *Feed) ResetTo(seq uint64) {
	f.deliverMu.Lock()
	defer f.deliverMu.Unlock()
	f.mu.Lock()
	defer f.mu.Unlock()
	f.next, f.len = 0, 0
	f.tombNext, f.tombLen = 0, 0
	f.tombFloor = seq
	f.resetLocked(seq)
}

// AdvanceTo is ResetTo for a relay that repaired itself with a DELTA
// snapshot: the event ring still cannot represent the hole (resumers
// below seq get truncation → their own delta bootstrap), but the
// delta's removed list is exactly the removal knowledge for the jumped
// range, so it is folded into the tombstone ring — all recorded at seq,
// an upward over-approximation that RemovedSince may over-send but can
// never miss — and the tombstone floor is PRESERVED. Without this,
// every delta repair at one tier would force full-snapshot transfers
// on every tier below it, in exactly the truncation-under-churn
// scenario delta snapshots exist for.
func (f *Feed) AdvanceTo(seq uint64, removed []string) {
	f.deliverMu.Lock()
	defer f.deliverMu.Unlock()
	f.mu.Lock()
	defer f.mu.Unlock()
	f.next, f.len = 0, 0
	for _, id := range removed {
		f.recordTombLocked(seq, id)
	}
	f.resetLocked(seq)
}

// resetLocked restarts the sequence space and closes every subscriber;
// the caller holds f.deliverMu (so no flush is mid-delivery on the
// channels being closed) and f.mu, and has already settled ring and
// tombstones. Events still pending against the old sequence space are
// discarded — the subscribers they were destined for are being closed.
//
//nc:locked(mu)
func (f *Feed) resetLocked(seq uint64) {
	f.seq = seq
	f.seqAtomic.Store(seq)
	f.discardPendLocked()
	for sub := range f.subs {
		sub.finish()
	}
	f.subs = make(map[*Subscription]struct{})
	f.subsList = nil
}

// recordTombLocked remembers one removal in the tombstone ring; the
// caller holds f.mu. Overwriting the oldest slot raises the floor: the
// feed can no longer prove completeness of removals at or before it.
//
//nc:locked(mu)
func (f *Feed) recordTombLocked(seq uint64, id string) {
	if f.tombLen == len(f.tombs) {
		f.tombFloor = f.tombs[f.tombNext].seq
	} else {
		f.tombLen++
	}
	f.tombs[f.tombNext] = tombstone{seq: seq, id: id}
	f.tombNext = (f.tombNext + 1) % len(f.tombs)
}

// SeedTombstones replays persisted removal knowledge into the ring:
// floor is the sequence below which knowledge was already incomplete
// when it was captured, and tombs are the remembered removals, oldest
// first. Call before the feed is shared (recovery), like Tap — the
// normal ring-overwrite accounting applies, so seeding more tombstones
// than the ring holds simply raises the floor as it would live.
func (f *Feed) SeedTombstones(floor uint64, tombs []Tombstone) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tombFloor = floor
	for _, t := range tombs {
		f.recordTombLocked(t.Seq, t.ID)
	}
}

// Tombstones exports the removal knowledge for persistence: the floor
// and every remembered removal, oldest first.
func (f *Feed) Tombstones() (floor uint64, tombs []Tombstone) {
	f.mu.Lock()
	defer f.mu.Unlock()
	tombs = make([]Tombstone, 0, f.tombLen)
	start := (f.tombNext - f.tombLen + len(f.tombs)) % len(f.tombs)
	for i := 0; i < f.tombLen; i++ {
		t := f.tombs[(start+i)%len(f.tombs)]
		tombs = append(tombs, Tombstone{Seq: t.seq, ID: t.id})
	}
	return f.tombFloor, tombs
}

// recordTombsLocked records an event's removals; the caller holds f.mu.
//
//nc:locked(mu)
func (f *Feed) recordTombsLocked(ev Event) {
	switch ev.Op {
	case OpRemove:
		f.recordTombLocked(ev.Seq, ev.ID)
	case OpEvict:
		for _, id := range ev.IDs {
			f.recordTombLocked(ev.Seq, id)
		}
	}
}

// RemovedSince reports every id removed (or evicted) with sequence >
// since, deduplicated, and whether the feed can prove the list is
// complete — false once the tombstone ring has forgotten any removal
// at or before since. An id later re-upserted may still appear; the
// consumer applies removals before upserts, so the newer state wins.
func (f *Feed) RemovedSince(since uint64) ([]string, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if since < f.tombFloor {
		return nil, false
	}
	seen := make(map[string]struct{})
	out := []string{}
	start := (f.tombNext - f.tombLen + len(f.tombs)) % len(f.tombs)
	for i := 0; i < f.tombLen; i++ {
		t := f.tombs[(start+i)%len(f.tombs)]
		if t.seq <= since {
			continue
		}
		if _, dup := seen[t.id]; dup {
			continue
		}
		seen[t.id] = struct{}{}
		out = append(out, t.id)
	}
	return out, true
}

// deliverLocked runs the taps inline and queues ev for the coalescing
// flusher to fan out to subscribers (see coalesce.go). It reports
// whether the pending queue hit capacity — the caller must then drain
// it with flushOnce after releasing f.mu. The caller holds f.mu.
//
//nc:locked(mu)
func (f *Feed) deliverLocked(ev Event) (full bool) {
	for _, tap := range f.taps {
		tap(ev)
	}
	return f.enqueueLocked(ev)
}

// publish assigns the next sequence, retains the event in the ring,
// runs the taps, and offers the event to every subscriber without
// blocking. This is the stream's origin, so the propagation stamp is
// taken here — exactly once per event, before any relay tier sees it.
func (f *Feed) publish(ev Event) uint64 {
	ev.PubNs = time.Now().UnixNano()
	ev.Epoch = f.epoch.Load()
	f.mu.Lock()
	f.seq++
	ev.Seq = f.seq
	if len(f.subs) > 0 {
		// One shared encode cache per event, attached before the ring
		// copy so every downstream serialization of this event — any
		// subscriber, any tier — is paid at most once.
		ev.Enc = &Encoded{} //nc:allow(hotpath) single amortized cache cell per published event; it is what removes the per-subscriber marshal allocs
	}
	f.seqAtomic.Store(f.seq)
	f.ring[f.next] = ev
	f.next = (f.next + 1) % len(f.ring)
	if f.len < len(f.ring) {
		f.len++
	}
	f.recordTombsLocked(ev)
	// A full subscriber buffer means a slow subscriber; the mutation
	// path must not wait for it. The gap is visible to the subscriber
	// (non-contiguous Seq, Dropped counter) and repairable via Since /
	// WAL replay.
	full := f.deliverLocked(ev)
	f.mu.Unlock()
	f.published.Add(1)
	if full {
		f.flushOnce()
	}
	return ev.Seq
}

// Since returns up to max events with sequence > since, oldest first,
// served from the in-memory ring. It returns ErrTruncated when the
// ring no longer reaches back to since+1 — the caller must then replay
// the WAL (or re-bootstrap from a snapshot) instead. A since at or
// beyond the current sequence returns an empty slice. max <= 0 means
// no limit.
func (f *Feed) Since(since uint64, max int) ([]Event, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if since >= f.seq {
		return nil, nil
	}
	oldest := f.seq - uint64(f.len) + 1 // oldest seq in the ring
	if f.len == 0 || since+1 < oldest {
		return nil, ErrTruncated
	}
	n := int(f.seq - since)
	if max > 0 && n > max {
		n = max
	}
	out := make([]Event, 0, n)
	// The ring is chronological starting at slot next-len.
	start := (f.next - f.len + len(f.ring)) % len(f.ring)
	skip := int(since + 1 - oldest)
	for i := skip; i < f.len && len(out) < n; i++ {
		out = append(out, f.ring[(start+i)%len(f.ring)])
	}
	return out, nil
}

// OldestBuffered reports the oldest sequence still in the ring
// (0 when the ring is empty).
func (f *Feed) OldestBuffered() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.len == 0 {
		return 0
	}
	return f.seq - uint64(f.len) + 1
}

// Stats snapshots operational counters.
func (f *Feed) Stats() Stats {
	f.mu.Lock()
	subs := len(f.subs)
	ringLen := f.len
	ringCap := len(f.ring)
	tombLen := f.tombLen
	tombCap := len(f.tombs)
	tombFloor := f.tombFloor
	var oldest uint64
	if f.len > 0 {
		oldest = f.seq - uint64(f.len) + 1
	}
	f.mu.Unlock()
	return Stats{
		Seq:                f.Seq(),
		Published:          f.published.Load(),
		Subscribers:        subs,
		Overflows:          f.overflows.Load(),
		Coalesced:          f.coalesced.Load(),
		OldestSeq:          oldest,
		RingLen:            ringLen,
		RingCap:            ringCap,
		TombLen:            tombLen,
		TombCap:            tombCap,
		TombFloor:          tombFloor,
		Epoch:              f.epoch.Load(),
		RejectedStaleEpoch: f.rejectedStale.Load(),
	}
}

// Close closes every subscription's channel and stops accepting new
// ones. Publishing remains legal after Close (the owning registry
// stays mutable after its background work stops); events still reach
// taps and the ring, but no subscribers. Events already pending are
// flushed into subscriber buffers first, so a consumer that drains its
// channel after close still sees everything published before it.
func (f *Feed) Close() {
	f.deliverMu.Lock()
	defer f.deliverMu.Unlock()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.drainPendLocked()
	f.closed = true
	if f.flusherOn {
		close(f.quit)
		f.flusherOn = false
	}
	for sub := range f.subs {
		sub.finish()
	}
	f.subs = make(map[*Subscription]struct{})
	f.subsList = nil
}

// Subscription is one bounded asynchronous consumer. Receive from C;
// detect loss via Dropped (or a gap in Event.Seq) and repair it with
// Since. Close when done — an abandoned subscription otherwise drops
// events forever and pollutes the feed's overflow accounting.
type Subscription struct {
	f       *Feed
	ch      chan Event
	joinSeq uint64
	dropped atomic.Uint64
	closed  atomic.Bool
	signal  atomic.Bool

	// sink/onClose replace ch for callback subscriptions (SubscribeFunc):
	// the flusher hands each event to sink instead of a channel send, and
	// onClose fires exactly where ch would have been closed. This is what
	// lets a wrapper that re-types events (the root package's public
	// subscription) deliver straight into its own buffered channel —
	// one channel hop per event instead of two, and no forwarding
	// goroutine parked per subscriber.
	sink    func(*Event) bool
	onClose func()
}

// finish ends delivery to the subscription: closes the channel for
// channel subscriptions, invokes onClose for callback ones. Called
// exactly once, always under f.deliverMu (so no delivery is mid-flight).
func (s *Subscription) finish() {
	if s.ch != nil {
		close(s.ch)
		return
	}
	s.onClose()
}

// MarkSignal declares this subscriber a pure wake signal: it only
// cares that the stream moved, not which events moved it, so a full
// buffer means a wake is already pending and nothing is lost. Drops to
// a signal subscriber are excluded from the feed's Overflows and the
// subscription's Dropped — otherwise every busy leader's /stats would
// report baseline "loss" that no real consumer suffered, masking the
// metric's actual meaning.
func (s *Subscription) MarkSignal() { s.signal.Store(true) }

// Subscribe attaches a subscriber whose buffer holds up to buffer
// events (minimum 1). The subscription observes every event published
// after the returned JoinSeq; history at or before it is fetched
// separately (Since), which makes the two-step "catch up, then follow"
// pattern race-free. Subscribing to a closed feed returns a
// subscription whose channel is already closed.
func (f *Feed) Subscribe(buffer int) *Subscription {
	if buffer < 1 {
		buffer = 1
	}
	sub := &Subscription{f: f, ch: make(chan Event, buffer)}
	f.attach(sub)
	return sub
}

// SubscribeFunc attaches a callback subscription: the flusher invokes
// sink for every event instead of a channel send, and onClose fires
// exactly where the channel would have closed (feed close, reset, or
// Subscription.Close). sink must not block — it runs on the delivery
// path for every subscriber — and reports whether it accepted the
// event; false counts as an overflow drop exactly like a full channel
// buffer (unless the subscription is marked a signal). The event
// pointer is valid only for the duration of the call (it aims at the
// delivery loop's local); a sink that retains the event copies it.
// sink and onClose are serialized with each other: onClose is never
// invoked while a sink call is in flight, and sink is never invoked
// after onClose. Subscribing to a closed feed invokes onClose before
// returning.
func (f *Feed) SubscribeFunc(sink func(*Event) bool, onClose func()) *Subscription {
	sub := &Subscription{f: f, sink: sink, onClose: onClose}
	f.attach(sub)
	return sub
}

// attach wires a new subscription into the feed (or finishes it
// immediately when the feed is closed).
func (f *Feed) attach(sub *Subscription) {
	f.deliverMu.Lock()
	f.mu.Lock()
	// Drain anything still pending before reading joinSeq: a pending
	// event's seq is at or below f.seq, so attaching first would let
	// the flusher deliver events at or below the join point.
	f.drainPendLocked()
	sub.joinSeq = f.seq
	if f.closed {
		sub.finish()
	} else {
		f.subs[sub] = struct{}{}
		f.rebuildSubsLocked()
		if !f.flusherOn {
			f.flusherOn = true
			go f.flushLoop()
		}
	}
	f.mu.Unlock()
	f.deliverMu.Unlock()
}

// C is the event channel. It is closed when the subscription or the
// feed is closed; events already buffered remain readable first.
func (s *Subscription) C() <-chan Event { return s.ch }

// JoinSeq is the feed sequence at attach time: the subscription sees
// every event with Seq > JoinSeq (buffer permitting).
func (s *Subscription) JoinSeq() uint64 { return s.joinSeq }

// Dropped counts events this subscription missed to a full buffer.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Close detaches the subscription and closes its channel. Safe to call
// multiple times and concurrently with publishing.
func (s *Subscription) Close() {
	if s.closed.Swap(true) {
		return
	}
	// deliverMu first: the flusher must not be mid-send on this channel
	// when it closes.
	s.f.deliverMu.Lock()
	s.f.mu.Lock()
	if _, ok := s.f.subs[s]; ok {
		delete(s.f.subs, s)
		s.f.rebuildSubsLocked()
		s.finish()
	}
	s.f.mu.Unlock()
	s.f.deliverMu.Unlock()
}
