package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// Histogram bucketing: non-negative integer observations (typically
// nanoseconds) land in one of numBuckets log-spaced buckets. Values
// 0..7 get exact buckets; above that each power-of-two octave is split
// into 4 sub-buckets, bounding relative quantile error at 25% of the
// value — plenty for latency percentiles spanning nanoseconds to
// minutes — while keeping the whole histogram a fixed array of atomic
// counters that Observe touches with three atomic adds and no
// allocation.
const (
	// exactLimit is the first value that leaves the exact-bucket range.
	exactLimit = 8
	// subBuckets is the number of subdivisions per octave above exactLimit.
	subBuckets = 4
	// numBuckets covers octaves up to 2^63: 8 exact + (63-3)*4 + slack.
	numBuckets = exactLimit + (64-3)*subBuckets
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v uint64) int {
	if v < exactLimit {
		return int(v)
	}
	l := bits.Len64(v) // v in [2^(l-1), 2^l), l >= 4
	sub := (v >> (uint(l) - 3)) & (subBuckets - 1)
	return exactLimit + (l-4)*subBuckets + int(sub)
}

// bucketUpper returns the inclusive upper bound of bucket idx — the
// largest value that maps there. Quantiles are read out at this bound,
// so a reported percentile is never below the true one by more than
// one sub-bucket's width.
func bucketUpper(idx int) uint64 {
	if idx < exactLimit {
		return uint64(idx)
	}
	octave := (idx - exactLimit) / subBuckets // 0-based, value in [2^(octave+3), 2^(octave+4))
	sub := uint64((idx-exactLimit)%subBuckets) + 1
	base := uint64(1) << uint(octave+3)
	return base + sub*(base/subBuckets) - 1
}

// Histogram is a streaming log-bucketed histogram safe for concurrent
// allocation-free observation. Create through Registry.Histogram.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [numBuckets]atomic.Uint64
	// scale converts observed integer units to exposition units at
	// readout (1e-9 for nanoseconds exported as seconds).
	scale float64
}

// newHistogram builds a histogram whose exposition multiplies values
// by scale.
func newHistogram(scale float64) *Histogram {
	if scale == 0 {
		scale = 1
	}
	return &Histogram{scale: scale}
}

// NewHistogram builds a standalone histogram not attached to any
// registry — for components that own their measurements and surface
// Summary() through a stats struct; a serving layer bridges it into a
// Registry with SummaryFunc (scaling happens there).
func NewHistogram() *Histogram { return newHistogram(1) }

// Observe records one value. Negative values are clamped to zero —
// propagation-lag observations can go negative under clock skew
// between leader and follower hosts, and a skewed clock should read as
// "immeasurably fast", not corrupt the distribution.
//
//nc:hotpath
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	h.count.Add(1)
	h.sum.Add(u)
	h.buckets[bucketIndex(u)].Add(1)
	for {
		cur := h.max.Load()
		if u <= cur || h.max.CompareAndSwap(cur, u) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Summary is a point-in-time quantile readout of a histogram, in the
// histogram's raw (pre-scale) units. The zero value means "no
// observations yet".
type Summary struct {
	// Count and Sum cover every observation since creation.
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	// P50/P90/P99 are upper-bound quantile estimates (within one
	// sub-bucket, ≤25% relative error). Max is exact.
	P50 uint64 `json:"p50"`
	P90 uint64 `json:"p90"`
	P99 uint64 `json:"p99"`
	Max uint64 `json:"max"`
}

// Summary computes quantiles from the current bucket counts. It is a
// racy-but-consistent-enough snapshot: concurrent Observes may land
// between the count load and the bucket scan, skewing a quantile by at
// most the in-flight observations.
func (h *Histogram) Summary() Summary {
	s := Summary{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if s.Count == 0 {
		return s
	}
	targets := [3]uint64{
		quantileRank(s.Count, 50),
		quantileRank(s.Count, 90),
		quantileRank(s.Count, 99),
	}
	out := [3]uint64{}
	var cum uint64
	ti := 0
	for i := 0; i < numBuckets && ti < len(targets); i++ {
		cum += h.buckets[i].Load()
		for ti < len(targets) && cum >= targets[ti] {
			out[ti] = bucketUpper(i)
			ti++
		}
	}
	for ; ti < len(targets); ti++ {
		// Rank beyond the scanned mass (racing Observes): report max.
		out[ti] = s.Max
	}
	s.P50, s.P90, s.P99 = out[0], out[1], out[2]
	// Bucket upper bounds can exceed the true max for the top bucket;
	// the exact max is a tighter cap.
	for _, p := range []*uint64{&s.P50, &s.P90, &s.P99} {
		if *p > s.Max {
			*p = s.Max
		}
	}
	return s
}

// quantileRank returns the 1-based rank of the q-th percentile among n
// ordered observations (nearest-rank definition: ceil(q*n/100)).
func quantileRank(n, q uint64) uint64 {
	r := (n*q + 99) / 100
	if r == 0 {
		r = 1
	}
	return r
}
