package telemetry

import (
	"errors"
	"fmt"
)

// Registration failures are programming errors — a bad metric name or
// a kind conflict is a bug in the component registering it, not an
// operational condition — so the convenience constructors (Counter,
// Gauge, ...) panic. The panic value is always a *RegistrationError
// wrapping one of the sentinels below, so a recover-and-inspect
// harness (and the nclint metricnames analyzer's fixtures) can assert
// the precise failure instead of string-matching a message.
var (
	// ErrInvalidMetricName marks a metric name outside the Prometheus
	// charset [a-zA-Z_:][a-zA-Z0-9_:]*.
	ErrInvalidMetricName = errors.New("telemetry: invalid metric name")
	// ErrInvalidLabelName marks a label name outside [a-zA-Z_][a-zA-Z0-9_]*.
	ErrInvalidLabelName = errors.New("telemetry: invalid label name")
	// ErrKindConflict marks a metric name registered under two
	// different instrument kinds.
	ErrKindConflict = errors.New("telemetry: metric kind conflict")
)

// RegistrationError is the typed panic/error value for a failed
// registration. Err is one of the sentinels above; use errors.Is.
type RegistrationError struct {
	Metric string // the offending metric (or its label's) name
	Detail string // human context: label name, conflicting kinds
	Err    error
}

func (e *RegistrationError) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("%v: %q (%s)", e.Err, e.Metric, e.Detail)
	}
	return fmt.Sprintf("%v: %q", e.Err, e.Metric)
}

func (e *RegistrationError) Unwrap() error { return e.Err }

// ValidateMetricName checks name against the Prometheus metric-name
// charset. This is the single source of truth shared by runtime
// registration and the nclint metricnames analyzer — there is exactly
// one definition of "valid" in the build.
func ValidateMetricName(name string) error {
	if !validMetricName(name) {
		return &RegistrationError{Metric: name, Err: ErrInvalidMetricName}
	}
	return nil
}

// ValidateLabelName checks name against the Prometheus label-name
// charset (no colons, unlike metric names).
func ValidateLabelName(name string) error {
	if !validLabelName(name) {
		return &RegistrationError{Metric: name, Err: ErrInvalidLabelName}
	}
	return nil
}

// MustRegister unwraps an error-returning registration, panicking with
// the typed *RegistrationError on failure:
//
//	c := telemetry.MustRegister(reg.RegisterCounter("netcoord_x_total", "...", nil))
//
// The convenience constructors (Counter, Gauge, Histogram, ...) are
// exactly this wrapper applied to their Register* counterparts.
func MustRegister[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
