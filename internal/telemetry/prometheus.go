package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
)

// WritePrometheus renders every registered instrument in the
// Prometheus text exposition format (version 0.0.4): one HELP/TYPE
// header per family, then one sample line per series. Histograms and
// SummaryFuncs render as summaries — quantile series plus _sum and
// _count — because quantiles are what the log buckets store cheaply;
// scrapers aggregate counters/gauges and read percentiles directly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	// Snapshot the family list so value readout (which may call
	// bridged funcs that take other locks) happens outside r.mu.
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns an http.Handler serving the exposition — the
// GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		r.WritePrometheus(w)
	})
}

// write renders one family. The series lock is not needed: families
// are append-only and series values are read through atomics or
// bridged funcs.
func (f *family) write(b *strings.Builder) {
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind.typeName())
	for _, key := range f.order {
		s := f.series[key]
		switch {
		case s.counter != nil:
			writeSample(b, f.name, s.labels, "", "", float64(s.counter.Value()))
		case s.countFn != nil:
			writeSample(b, f.name, s.labels, "", "", float64(s.countFn()))
		case s.gauge != nil:
			writeSample(b, f.name, s.labels, "", "", float64(s.gauge.Value()))
		case s.gaugeFn != nil:
			writeSample(b, f.name, s.labels, "", "", s.gaugeFn())
		case s.hist != nil:
			writeSummary(b, f.name, s.labels, s.hist.Summary(), s.hist.scale)
		case s.summaryFn != nil:
			writeSummary(b, f.name, s.labels, s.summaryFn(), s.sumScale)
		}
	}
}

// writeSummary emits the quantile/_sum/_count series for one summary
// snapshot, scaling raw values into exposition units.
func writeSummary(b *strings.Builder, name string, labels Labels, s Summary, scale float64) {
	writeSample(b, name, labels, "quantile", "0.5", float64(s.P50)*scale)
	writeSample(b, name, labels, "quantile", "0.9", float64(s.P90)*scale)
	writeSample(b, name, labels, "quantile", "0.99", float64(s.P99)*scale)
	writeSample(b, name, labels, "quantile", "1", float64(s.Max)*scale)
	writeSample(b, name+"_sum", labels, "", "", float64(s.Sum)*scale)
	writeSample(b, name+"_count", labels, "", "", float64(s.Count))
}

// writeSample emits one sample line: name{labels} value. extraKey, if
// set, appends one more label (the quantile).
func writeSample(b *strings.Builder, name string, labels Labels, extraKey, extraVal string, v float64) {
	b.WriteString(name)
	if len(labels) > 0 || extraKey != "" {
		b.WriteByte('{')
		first := true
		for _, k := range sortedKeys(labels) {
			if !first {
				b.WriteByte(',')
			}
			first = false
			fmt.Fprintf(b, "%s=%q", k, labels[k])
		}
		if extraKey != "" {
			if !first {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%s=%q", extraKey, extraVal)
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

// formatValue renders a sample value the way Prometheus expects:
// decimal notation, no exponent for integers, +Inf/-Inf/NaN spelled
// out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// escapeHelp escapes backslashes and newlines per the text format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// sortedKeys returns label names in lexical order so exposition output
// is deterministic.
func sortedKeys(labels Labels) []string {
	if len(labels) == 0 {
		return nil
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
