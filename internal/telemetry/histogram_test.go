package telemetry

import (
	"math/rand"
	"sort"
	"testing"
)

// TestBucketIndexMonotone checks the bucket mapping is monotone and
// that bucketUpper really is the inclusive upper bound: every value
// maps to a bucket whose upper bound is >= the value, and the next
// bucket starts strictly above it.
func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for _, v := range boundaryValues() {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous index %d: not monotone", v, idx, prev)
		}
		prev = idx
		up := bucketUpper(idx)
		if v > up {
			t.Fatalf("value %d maps to bucket %d with upper bound %d < value", v, idx, up)
		}
		if bucketIndex(up) != idx {
			t.Fatalf("bucketUpper(%d)=%d maps back to bucket %d", idx, up, bucketIndex(up))
		}
		if up < ^uint64(0) && bucketIndex(up+1) != idx+1 {
			t.Fatalf("value %d (one past bucket %d's bound) maps to bucket %d, want %d",
				up+1, idx, bucketIndex(up+1), idx+1)
		}
	}
}

// TestBucketRelativeError verifies the <=25% relative error contract:
// a bucket's upper bound never exceeds the smallest value in the
// bucket by more than 25%.
func TestBucketRelativeError(t *testing.T) {
	for idx := exactLimit; idx < numBuckets; idx++ {
		lo := bucketUpper(idx-1) + 1
		hi := bucketUpper(idx)
		if hi < lo {
			continue // past 2^63 the ring of octaves runs out; unused slack
		}
		errFrac := float64(hi-lo) / float64(lo)
		if errFrac > 0.25 {
			t.Fatalf("bucket %d spans [%d,%d]: relative error %.3f > 0.25", idx, lo, hi, errFrac)
		}
	}
}

// TestBucketIndexInRange makes sure no observable value can index out
// of the bucket array.
func TestBucketIndexInRange(t *testing.T) {
	for _, v := range []uint64{0, 7, 8, ^uint64(0), ^uint64(0) - 1, 1 << 62, (1 << 63) + 12345} {
		idx := bucketIndex(v)
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of [0,%d)", v, idx, numBuckets)
		}
	}
}

// TestSummaryAgainstOracle feeds identical samples to the histogram
// and a brute-force sorted slice, then checks each reported percentile
// is within one bucket of the oracle's nearest-rank answer: never
// below it, never more than 25% above.
func TestSummaryAgainstOracle(t *testing.T) {
	distributions := map[string]func(r *rand.Rand) int64{
		"uniform": func(r *rand.Rand) int64 { return r.Int63n(1_000_000) },
		"exp":     func(r *rand.Rand) int64 { return int64(r.ExpFloat64() * 50_000) },
		"bimodal": func(r *rand.Rand) int64 {
			if r.Intn(2) == 0 {
				return r.Int63n(100)
			}
			return 1_000_000 + r.Int63n(1000)
		},
		"constant":  func(r *rand.Rand) int64 { return 42 },
		"small":     func(r *rand.Rand) int64 { return r.Int63n(8) },
		"negatives": func(r *rand.Rand) int64 { return r.Int63n(2000) - 1000 },
	}
	for name, gen := range distributions {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(1))
			h := newHistogram(1)
			var oracle []uint64
			for i := 0; i < 20_000; i++ {
				v := gen(r)
				h.Observe(v)
				if v < 0 {
					v = 0 // histogram clamps; oracle must match
				}
				oracle = append(oracle, uint64(v))
			}
			sort.Slice(oracle, func(i, j int) bool { return oracle[i] < oracle[j] })
			s := h.Summary()
			if s.Count != uint64(len(oracle)) {
				t.Fatalf("Count = %d, want %d", s.Count, len(oracle))
			}
			var sum uint64
			for _, v := range oracle {
				sum += v
			}
			if s.Sum != sum {
				t.Fatalf("Sum = %d, want %d", s.Sum, sum)
			}
			if want := oracle[len(oracle)-1]; s.Max != want {
				t.Fatalf("Max = %d, want %d", s.Max, want)
			}
			checks := []struct {
				name string
				got  uint64
				q    uint64
			}{{"p50", s.P50, 50}, {"p90", s.P90, 90}, {"p99", s.P99, 99}}
			for _, c := range checks {
				exact := oracle[quantileRank(uint64(len(oracle)), c.q)-1]
				if c.got < exact {
					t.Errorf("%s = %d below oracle %d", c.name, c.got, exact)
				}
				// Upper-bound readout may overshoot by one sub-bucket
				// (25%), but never past the max.
				limit := exact + exact/4 + 1
				if limit > s.Max {
					limit = s.Max
				}
				if c.got > limit {
					t.Errorf("%s = %d exceeds oracle %d by more than a bucket (limit %d)", c.name, c.got, exact, limit)
				}
			}
		})
	}
}

// TestSummaryEmpty checks the zero-observation readout.
func TestSummaryEmpty(t *testing.T) {
	h := newHistogram(1)
	s := h.Summary()
	if s != (Summary{}) {
		t.Fatalf("empty histogram summary = %+v, want zero", s)
	}
}

// TestObserveAllocs is the package-local allocation check; the CI gate
// runs the benchmark below through benchjson.
func TestObserveAllocs(t *testing.T) {
	h := newHistogram(1)
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(12345) })
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per run, want 0", allocs)
	}
	c := &Counter{}
	g := &Gauge{}
	allocs = testing.AllocsPerRun(1000, func() { c.Inc(); g.Set(7) })
	if allocs != 0 {
		t.Fatalf("Counter/Gauge mutation allocates %v per run, want 0", allocs)
	}
}

// BenchmarkTelemetryObserve is part of the zero-alloc CI gate
// (benchjson -require-zero-alloc BenchmarkTelemetry).
func BenchmarkTelemetryObserve(b *testing.B) {
	h := newHistogram(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

// BenchmarkTelemetryCounter measures the counter hot path.
func BenchmarkTelemetryCounter(b *testing.B) {
	c := &Counter{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// boundaryValues enumerates values around every bucket boundary plus
// assorted interior points.
func boundaryValues() []uint64 {
	var vals []uint64
	for v := uint64(0); v < 64; v++ {
		vals = append(vals, v)
	}
	for shift := uint(6); shift < 63; shift++ {
		base := uint64(1) << shift
		for _, d := range []uint64{0, 1, base / 4, base/4 + 1, base / 2, base - 1} {
			vals = append(vals, base+d)
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}
