package telemetry

import (
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// buildTestRegistry populates a registry with one of everything.
func buildTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("test_requests_total", "Total requests.", Labels{"route": "/upsert", "code": "200"}).Add(17)
	r.Counter("test_requests_total", "Total requests.", Labels{"route": "/nearest", "code": "400"}).Add(3)
	r.Gauge("test_inflight", "In-flight requests.", nil).Set(2)
	h := r.Histogram("test_latency_seconds", "Request latency.", Labels{"route": "/upsert"}, 1e-9)
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 1_000_000) // 1ms..1s
	}
	r.CounterFunc("test_bridge_total", "Bridged counter.", nil, func() uint64 { return 99 })
	r.GaugeFunc("test_bridge_ratio", "Bridged gauge.", Labels{"kind": "x"}, func() float64 { return 0.25 })
	r.SummaryFunc("test_bridge_summary", "Bridged summary.", nil, 1, func() Summary {
		return Summary{Count: 4, Sum: 40, P50: 9, P90: 12, P99: 13, Max: 13}
	})
	return r
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	sampleRe     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
	labelPairRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// TestPrometheusExpositionParses walks every emitted line and checks
// it is a structurally valid text-format line: HELP/TYPE headers with
// legal names and types, sample lines whose metric names, label names,
// and values all parse, and every sample preceded by its family's TYPE
// header.
func TestPrometheusExpositionParses(t *testing.T) {
	var b strings.Builder
	if err := buildTestRegistry().WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	if out == "" {
		t.Fatal("empty exposition")
	}
	types := map[string]string{} // family -> type
	seen := map[string]bool{}    // sample metric names
	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !metricNameRe.MatchString(name) {
				t.Fatalf("line %d: bad HELP line %q", i+1, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || !metricNameRe.MatchString(name) {
				t.Fatalf("line %d: bad TYPE line %q", i+1, line)
			}
			switch typ {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				t.Fatalf("line %d: invalid type %q", i+1, typ)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %q", i+1, name)
			}
			types[name] = typ
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unknown comment %q", i+1, line)
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: unparseable sample %q", i+1, line)
			}
			name, labelBody, valStr := m[1], m[3], m[4]
			if !metricNameRe.MatchString(name) {
				t.Fatalf("line %d: bad metric name %q", i+1, name)
			}
			if labelBody != "" {
				for _, pair := range splitLabelPairs(labelBody) {
					pm := labelPairRe.FindStringSubmatch(pair)
					if pm == nil {
						t.Fatalf("line %d: bad label pair %q", i+1, pair)
					}
					if !labelNameRe.MatchString(pm[1]) {
						t.Fatalf("line %d: bad label name %q", i+1, pm[1])
					}
				}
			}
			if valStr != "+Inf" && valStr != "-Inf" && valStr != "NaN" {
				if _, err := strconv.ParseFloat(valStr, 64); err != nil {
					t.Fatalf("line %d: bad value %q: %v", i+1, valStr, err)
				}
			}
			// Every sample must belong to a declared family: its name,
			// or its name minus a _sum/_count suffix for summaries.
			fam := name
			if types[fam] == "" {
				fam = strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
			}
			if types[fam] == "" {
				t.Fatalf("line %d: sample %q has no TYPE header", i+1, name)
			}
			seen[name] = true
		}
	}
	// Spot-check expected series made it out.
	for _, want := range []string{
		"test_requests_total", "test_inflight", "test_latency_seconds",
		"test_latency_seconds_sum", "test_latency_seconds_count",
		"test_bridge_total", "test_bridge_ratio", "test_bridge_summary",
	} {
		if !seen[want] {
			t.Errorf("expected sample %q missing from exposition:\n%s", want, out)
		}
	}
}

// splitLabelPairs splits a label body on commas outside quotes.
func splitLabelPairs(body string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			if i == 0 || body[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	return append(out, body[start:])
}

// TestSummaryExpositionValues checks the quantile labels and scaling:
// a nanosecond histogram must come out in seconds.
func TestSummaryExpositionValues(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lag_seconds", "", nil, 1e-9)
	h.Observe(2_000_000_000) // 2s in ns
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, q := range []string{`quantile="0.5"`, `quantile="0.9"`, `quantile="0.99"`, `quantile="1"`} {
		if !strings.Contains(out, q) {
			t.Errorf("missing %s in:\n%s", q, out)
		}
	}
	if !strings.Contains(out, "lag_seconds_count 1\n") {
		t.Errorf("missing count line in:\n%s", out)
	}
	if !strings.Contains(out, "lag_seconds_sum 2\n") {
		t.Errorf("sum not scaled to seconds in:\n%s", out)
	}
	// quantile=1 is the exact max: 2e9 * 1e-9 = 2.
	if !strings.Contains(out, `quantile="1"} 2`) {
		t.Errorf("max quantile not scaled in:\n%s", out)
	}
}

// TestHandler exercises the HTTP wrapper.
func TestHandler(t *testing.T) {
	r := buildTestRegistry()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type %q", ct)
	}

	post, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Fatalf("POST status %d, want 405", post.StatusCode)
	}
}

// TestRegistryIdempotent verifies owned instruments dedupe and kind
// conflicts panic.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", Labels{"k": "1"})
	b := r.Counter("x_total", "", Labels{"k": "1"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	c := r.Counter("x_total", "", Labels{"k": "2"})
	if a == c {
		t.Fatal("distinct labels returned the same counter")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind conflict did not panic")
			}
		}()
		r.Gauge("x_total", "", nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid metric name did not panic")
			}
		}()
		r.Counter("bad name", "", nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid label name did not panic")
			}
		}()
		r.Counter("ok_total", "", Labels{"bad-label": "v"})
	}()
}
