// Package telemetry is the serving stack's zero-dependency metrics
// core: atomic counters and gauges, log-bucketed streaming histograms
// with cheap percentile readout, and a process registry that exposes
// every registered instrument in the Prometheus text format.
//
// The paper's thesis — coordinate systems must be continuously
// *measured* to stay stable — applies just as hard to the system that
// serves them: a relay tree whose propagation lag nobody can see is a
// relay tree nobody can trust. This package is deliberately tiny so it
// can ride the hottest paths in the repository: Observe and Add are a
// handful of atomic operations, allocation-free, and safe under any
// shard or feed lock (the same discipline the changefeed imposes on
// its taps).
//
// Instruments are created through a Registry (NewRegistry), which
// namespaces them by metric name + label set and renders them at
// scrape time. Two flavors exist for every readout shape: owned
// instruments (Counter, Gauge, Histogram) that hot paths mutate
// directly, and func-bridged instruments (CounterFunc, GaugeFunc,
// SummaryFunc) that pull a value from an existing stats struct only
// when /metrics is scraped — so subsystems that already maintain
// atomic counters are exposed without double-counting work.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. The zero value is ready
// to use, but instruments should be created through a Registry so they
// are scraped.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative deltas decrease it).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Labels is one instrument's label set. Instruments with the same
// metric name but different label values are distinct series grouped
// under one family in the exposition.
type Labels map[string]string

// kind discriminates how a registered series renders.
type kind uint8

const (
	kindCounter kind = iota + 1
	kindGauge
	kindSummary
)

// typeName maps a kind to its Prometheus TYPE keyword.
func (k kind) typeName() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "summary"
	}
}

// series is one registered instrument: a concrete (name, labels) pair
// plus whatever produces its value at scrape time.
type series struct {
	labels    Labels
	labelKey  string
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	countFn   func() uint64
	gaugeFn   func() float64
	summaryFn func() Summary
	// sumScale converts a bridged summary's raw units to exposition
	// units (1e-9 for nanosecond summaries exported as seconds).
	sumScale float64
}

// family groups every series sharing one metric name; the exposition
// emits one HELP/TYPE header per family.
type family struct {
	name   string
	help   string
	kind   kind
	order  []string // label keys in registration order
	series map[string]*series
}

// Registry holds instruments and renders them. Create with
// NewRegistry; all methods are safe for concurrent use.
//
// Registration is idempotent for owned instruments: asking twice for
// the same name + label set returns the same instrument, so two
// components may share a process-wide series without coordinating.
// Registering a name with a conflicting instrument kind panics —
// that is a programming error, not an operational condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry builds an empty Registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// familyFor finds or creates the family for name, enforcing name
// validity and kind consistency. Caller holds r.mu.
func (r *Registry) familyFor(name, help string, k kind) (*family, error) {
	if err := ValidateMetricName(name); err != nil {
		return nil, err
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
		return f, nil
	}
	if f.kind != k {
		return nil, &RegistrationError{
			Metric: name,
			Detail: fmt.Sprintf("registered as %s and %s", f.kind.typeName(), k.typeName()),
			Err:    ErrKindConflict,
		}
	}
	return f, nil
}

// add installs a series under its family, returning the existing one
// when the exact (name, labels) pair is already registered. Caller
// holds r.mu. replace controls func-bridged re-registration: owned
// instruments dedupe, bridges overwrite (a restarted component's
// closure must not leave a stale one scraping freed state).
func (f *family) add(s *series, replace bool) (*series, error) {
	for l := range s.labels {
		if err := ValidateLabelName(l); err != nil {
			return nil, &RegistrationError{Metric: f.name, Detail: fmt.Sprintf("label %q", l), Err: ErrInvalidLabelName}
		}
	}
	s.labelKey = labelKey(s.labels)
	if old, ok := f.series[s.labelKey]; ok && !replace {
		return old, nil
	} else if !ok {
		f.order = append(f.order, s.labelKey)
	}
	f.series[s.labelKey] = s
	return s, nil
}

// register is the error-returning core every Register*/convenience
// constructor funnels through. Caller does not hold r.mu.
func (r *Registry) register(name, help string, k kind, s *series, replace bool) (*series, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, err := r.familyFor(name, help, k)
	if err != nil {
		return nil, err
	}
	return f.add(s, replace)
}

// RegisterCounter registers (or finds) the counter under name + labels,
// reporting a *RegistrationError instead of panicking on invalid input.
func (r *Registry) RegisterCounter(name, help string, labels Labels) (*Counter, error) {
	s, err := r.register(name, help, kindCounter, &series{labels: labels, counter: &Counter{}}, false)
	if err != nil {
		return nil, err
	}
	return s.counter, nil
}

// RegisterGauge registers (or finds) the gauge under name + labels.
func (r *Registry) RegisterGauge(name, help string, labels Labels) (*Gauge, error) {
	s, err := r.register(name, help, kindGauge, &series{labels: labels, gauge: &Gauge{}}, false)
	if err != nil {
		return nil, err
	}
	return s.gauge, nil
}

// RegisterHistogram registers (or finds) the histogram under name +
// labels, scaled by scale at exposition time.
func (r *Registry) RegisterHistogram(name, help string, labels Labels, scale float64) (*Histogram, error) {
	s, err := r.register(name, help, kindSummary, &series{labels: labels, hist: newHistogram(scale)}, false)
	if err != nil {
		return nil, err
	}
	return s.hist, nil
}

// Counter returns the counter registered under name + labels, creating
// it on first use. It is MustRegister(RegisterCounter(...)): invalid
// names panic with a typed *RegistrationError.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return MustRegister(r.RegisterCounter(name, help, labels))
}

// Gauge returns the gauge registered under name + labels, creating it
// on first use. Panics with *RegistrationError on invalid input.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return MustRegister(r.RegisterGauge(name, help, labels))
}

// Histogram returns the histogram registered under name + labels,
// creating it on first use. It renders as a Prometheus summary
// (quantiles computed from the log buckets at scrape time) with the
// value scaled by scale — pass 1e-9 for a nanosecond-observed
// histogram exported in seconds. Panics with *RegistrationError on
// invalid input.
func (r *Registry) Histogram(name, help string, labels Labels, scale float64) *Histogram {
	return MustRegister(r.RegisterHistogram(name, help, labels, scale))
}

// RegisterCounterFunc registers a counter whose value is pulled from fn
// at scrape time — the bridge for subsystems that already keep their
// own atomic counters.
func (r *Registry) RegisterCounterFunc(name, help string, labels Labels, fn func() uint64) error {
	_, err := r.register(name, help, kindCounter, &series{labels: labels, countFn: fn}, true)
	return err
}

// RegisterGaugeFunc registers a gauge whose value is pulled from fn at
// scrape time.
func (r *Registry) RegisterGaugeFunc(name, help string, labels Labels, fn func() float64) error {
	_, err := r.register(name, help, kindGauge, &series{labels: labels, gaugeFn: fn}, true)
	return err
}

// RegisterSummaryFunc registers a summary whose snapshot is pulled from
// fn at scrape time. scale converts raw units to exposition units
// (1e-9 for nanosecond summaries exported as seconds; 0 means 1).
func (r *Registry) RegisterSummaryFunc(name, help string, labels Labels, scale float64, fn func() Summary) error {
	if scale == 0 {
		scale = 1
	}
	_, err := r.register(name, help, kindSummary, &series{labels: labels, summaryFn: fn, sumScale: scale}, true)
	return err
}

// CounterFunc is MustRegister-style RegisterCounterFunc: panics with a
// typed *RegistrationError on invalid input.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() uint64) {
	if err := r.RegisterCounterFunc(name, help, labels, fn); err != nil {
		panic(err)
	}
}

// GaugeFunc is MustRegister-style RegisterGaugeFunc.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	if err := r.RegisterGaugeFunc(name, help, labels, fn); err != nil {
		panic(err)
	}
}

// SummaryFunc is MustRegister-style RegisterSummaryFunc — the bridge
// for histograms owned by another package that exposes only a Summary
// through its stats struct.
func (r *Registry) SummaryFunc(name, help string, labels Labels, scale float64, fn func() Summary) {
	if err := r.RegisterSummaryFunc(name, help, labels, scale, fn); err != nil {
		panic(err)
	}
}

// labelKey builds a canonical, order-independent key for a label set.
func labelKey(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	names := make([]string, 0, len(labels))
	for k := range labels {
		names = append(names, k)
	}
	sort.Strings(names)
	key := ""
	for _, k := range names {
		key += k + "\x00" + labels[k] + "\x00"
	}
	return key
}

// validMetricName reports whether name matches the Prometheus metric
// name charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
