package telemetry

import (
	"errors"
	"testing"
)

func TestRegisterTypedErrors(t *testing.T) {
	r := NewRegistry()
	if _, err := r.RegisterCounter("0bad", "", nil); !errors.Is(err, ErrInvalidMetricName) {
		t.Fatalf("invalid name: got %v, want ErrInvalidMetricName", err)
	}
	if _, err := r.RegisterCounter("netcoord_ok_total", "", Labels{"0bad": "x"}); !errors.Is(err, ErrInvalidLabelName) {
		t.Fatalf("invalid label: got %v, want ErrInvalidLabelName", err)
	}
	if _, err := r.RegisterCounter("netcoord_dual", "", nil); err != nil {
		t.Fatalf("first registration: %v", err)
	}
	_, err := r.RegisterGauge("netcoord_dual", "", nil)
	if !errors.Is(err, ErrKindConflict) {
		t.Fatalf("kind conflict: got %v, want ErrKindConflict", err)
	}
	var re *RegistrationError
	if !errors.As(err, &re) || re.Metric != "netcoord_dual" {
		t.Fatalf("kind conflict: want *RegistrationError naming the metric, got %#v", err)
	}
}

func TestMustRegisterPanicsTyped(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("expected panic")
		}
		err, ok := v.(error)
		if !ok || !errors.Is(err, ErrInvalidMetricName) {
			t.Fatalf("panic value %#v, want error wrapping ErrInvalidMetricName", v)
		}
	}()
	r := NewRegistry()
	MustRegister(r.RegisterCounter("not a name", "", nil))
}

func TestValidateMetricName(t *testing.T) {
	for _, ok := range []string{"netcoord_x_total", "a:b", "_hidden"} {
		if err := ValidateMetricName(ok); err != nil {
			t.Errorf("ValidateMetricName(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", "0lead", "has space", "dash-ed"} {
		if err := ValidateMetricName(bad); !errors.Is(err, ErrInvalidMetricName) {
			t.Errorf("ValidateMetricName(%q) = %v, want ErrInvalidMetricName", bad, err)
		}
	}
}
