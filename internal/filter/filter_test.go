package filter

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"netcoord/internal/stats"
	"netcoord/internal/xrand"
)

func mustMP(t *testing.T, cfg MPConfig) *MP {
	t.Helper()
	f, err := NewMP(cfg)
	if err != nil {
		t.Fatalf("NewMP: %v", err)
	}
	return f
}

func TestMPConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     MPConfig
		wantErr bool
	}{
		{name: "defaults", cfg: DefaultMPConfig()},
		{name: "history 1", cfg: MPConfig{History: 1, Percentile: 50, UpdateAfter: 1}},
		{name: "zero history", cfg: MPConfig{History: 0, Percentile: 25, UpdateAfter: 1}, wantErr: true},
		{name: "negative percentile", cfg: MPConfig{History: 4, Percentile: -1, UpdateAfter: 1}, wantErr: true},
		{name: "percentile over 100", cfg: MPConfig{History: 4, Percentile: 101, UpdateAfter: 1}, wantErr: true},
		{name: "zero update-after", cfg: MPConfig{History: 4, Percentile: 25, UpdateAfter: 0}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if tt.wantErr && err == nil {
				t.Fatal("Validate succeeded, want error")
			}
			if !tt.wantErr && err != nil {
				t.Fatalf("Validate: %v", err)
			}
		})
	}
}

func TestDefaultMPConfigMatchesPaper(t *testing.T) {
	cfg := DefaultMPConfig()
	if cfg.History != 4 {
		t.Errorf("History = %d, want 4 (paper Figure 4)", cfg.History)
	}
	if cfg.Percentile != 25 {
		t.Errorf("Percentile = %v, want 25 (paper Section IV-A)", cfg.Percentile)
	}
	if cfg.UpdateAfter != 2 {
		t.Errorf("UpdateAfter = %d, want 2 (paper Section VI)", cfg.UpdateAfter)
	}
}

func TestMPWarmup(t *testing.T) {
	f := mustMP(t, MPConfig{History: 4, Percentile: 25, UpdateAfter: 2})
	if _, ok := f.Observe(100); ok {
		t.Fatal("first observation produced output with UpdateAfter=2")
	}
	if _, ok := f.Observe(100); !ok {
		t.Fatal("second observation produced no output")
	}
}

func TestMPDiscardsOutliers(t *testing.T) {
	f := mustMP(t, MPConfig{History: 4, Percentile: 25, UpdateAfter: 1})
	// Common case ~50 ms, one 5000 ms spike.
	f.Observe(50)
	f.Observe(52)
	f.Observe(51)
	est, ok := f.Observe(5000)
	if !ok {
		t.Fatal("no output")
	}
	if est > 55 {
		t.Fatalf("estimate %v polluted by spike, want ~50", est)
	}
}

func TestMPTracksShift(t *testing.T) {
	f := mustMP(t, MPConfig{History: 4, Percentile: 25, UpdateAfter: 1})
	for i := 0; i < 8; i++ {
		f.Observe(50)
	}
	// Link latency genuinely shifts to 120 ms (route change); within h
	// observations the estimate must follow.
	var est float64
	for i := 0; i < 4; i++ {
		est, _ = f.Observe(120)
	}
	if est != 120 {
		t.Fatalf("estimate %v after full window of 120s, want 120", est)
	}
}

func TestMPWindowEviction(t *testing.T) {
	f := mustMP(t, MPConfig{History: 2, Percentile: 100, UpdateAfter: 1})
	f.Observe(10)
	f.Observe(20)
	est, _ := f.Observe(5) // window now {20, 5}; max = 20
	if est != 20 {
		t.Fatalf("estimate %v, want 20", est)
	}
	est, _ = f.Observe(5) // window now {5, 5}
	if est != 5 {
		t.Fatalf("estimate %v, want 5 after 10 evicted", est)
	}
	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2", f.Len())
	}
}

func TestMPPercentileAgainstStats(t *testing.T) {
	// The internal percentile must agree with the stats package's
	// definition on full windows.
	rng := xrand.NewStream(1)
	for trial := 0; trial < 50; trial++ {
		h := 1 + rng.Intn(16)
		p := rng.Float64() * 100
		f := mustMP(t, MPConfig{History: h, Percentile: p, UpdateAfter: 1})
		window := make([]float64, 0, h)
		var got float64
		for i := 0; i < h; i++ {
			s := rng.Float64() * 1000
			window = append(window, s)
			got, _ = f.Observe(s)
		}
		sort.Float64s(window)
		want, err := stats.PercentileSorted(window, p)
		if err != nil {
			t.Fatalf("PercentileSorted: %v", err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d (h=%d p=%.1f): filter=%v stats=%v", trial, h, p, got, want)
		}
	}
}

func TestMPReset(t *testing.T) {
	f := mustMP(t, MPConfig{History: 4, Percentile: 25, UpdateAfter: 2})
	f.Observe(10)
	f.Observe(10)
	f.Reset()
	if f.Len() != 0 {
		t.Fatalf("Len after Reset = %d", f.Len())
	}
	if _, ok := f.Observe(10); ok {
		t.Fatal("filter produced output immediately after Reset with UpdateAfter=2")
	}
}

// Property: the MP estimate always lies within [min, max] of the current
// window contents.
func TestMPEstimateBounded(t *testing.T) {
	f := func(samples []float64) bool {
		if len(samples) == 0 {
			return true
		}
		mp, err := NewMP(MPConfig{History: 4, Percentile: 25, UpdateAfter: 1})
		if err != nil {
			return false
		}
		window := make([]float64, 0, 4)
		for _, s := range samples {
			s = math.Abs(s)
			if math.IsNaN(s) || math.IsInf(s, 0) {
				s = 1
			}
			if len(window) == 4 {
				window = window[1:]
			}
			window = append(window, s)
			est, ok := mp.Observe(s)
			if !ok {
				return false
			}
			lo, hi := window[0], window[0]
			for _, w := range window {
				lo = math.Min(lo, w)
				hi = math.Max(hi, w)
			}
			if est < lo-1e-9 || est > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEWMA(t *testing.T) {
	f, err := NewEWMA(0.5)
	if err != nil {
		t.Fatalf("NewEWMA: %v", err)
	}
	est, ok := f.Observe(100)
	if !ok || est != 100 {
		t.Fatalf("first observation = %v, %v; want 100, true", est, ok)
	}
	est, _ = f.Observe(200)
	if est != 150 {
		t.Fatalf("second estimate = %v, want 150", est)
	}
	est, _ = f.Observe(150)
	if est != 150 {
		t.Fatalf("third estimate = %v, want 150", est)
	}
}

func TestEWMAValidation(t *testing.T) {
	for _, alpha := range []float64{0, -0.1, 1.1} {
		if _, err := NewEWMA(alpha); err == nil {
			t.Errorf("NewEWMA(%v) succeeded", alpha)
		}
	}
	if _, err := NewEWMA(1); err != nil {
		t.Errorf("NewEWMA(1) failed: %v", err)
	}
}

func TestEWMAOutlierContaminates(t *testing.T) {
	// Documents the pathology from Table I: an EWMA drags the estimate
	// toward outliers instead of discarding them.
	f, err := NewEWMA(0.2)
	if err != nil {
		t.Fatalf("NewEWMA: %v", err)
	}
	var est float64
	for i := 0; i < 20; i++ {
		est, _ = f.Observe(50)
	}
	est, _ = f.Observe(5000)
	if est < 1000 {
		t.Fatalf("estimate %v after 5000 ms spike; EWMA should be contaminated (>= 1000)", est)
	}
}

func TestEWMAReset(t *testing.T) {
	f, err := NewEWMA(0.1)
	if err != nil {
		t.Fatalf("NewEWMA: %v", err)
	}
	f.Observe(500)
	f.Reset()
	est, _ := f.Observe(10)
	if est != 10 {
		t.Fatalf("estimate after Reset = %v, want 10 (re-primed)", est)
	}
}

func TestThreshold(t *testing.T) {
	f, err := NewThreshold(1000)
	if err != nil {
		t.Fatalf("NewThreshold: %v", err)
	}
	if est, ok := f.Observe(500); !ok || est != 500 {
		t.Fatalf("below-cutoff = %v, %v", est, ok)
	}
	if _, ok := f.Observe(1500); ok {
		t.Fatal("above-cutoff sample passed")
	}
	if est, ok := f.Observe(1000); !ok || est != 1000 {
		t.Fatalf("at-cutoff = %v, %v; want pass", est, ok)
	}
}

func TestThresholdValidation(t *testing.T) {
	for _, cutoff := range []float64{0, -5} {
		if _, err := NewThreshold(cutoff); err == nil {
			t.Errorf("NewThreshold(%v) succeeded", cutoff)
		}
	}
}

func TestNonePassesEverything(t *testing.T) {
	f := NewNone()
	for _, s := range []float64{0, 1, 1e6} {
		est, ok := f.Observe(s)
		if !ok || est != s {
			t.Fatalf("Observe(%v) = %v, %v", s, est, ok)
		}
	}
	f.Reset() // must not panic or change behavior
	if est, ok := f.Observe(7); !ok || est != 7 {
		t.Fatal("None changed behavior after Reset")
	}
}

func TestBankPerPeerIsolation(t *testing.T) {
	bank := NewBank[string](func() Filter {
		f, _ := NewMP(MPConfig{History: 4, Percentile: 25, UpdateAfter: 1})
		return f
	}, 0)
	// Peer A sees 50s; peer B sees 200s. Estimates must not mix.
	for i := 0; i < 4; i++ {
		bank.Observe("a", 50)
		bank.Observe("b", 200)
	}
	estA, _ := bank.Observe("a", 50)
	estB, _ := bank.Observe("b", 200)
	if estA != 50 {
		t.Fatalf("peer a estimate = %v", estA)
	}
	if estB != 200 {
		t.Fatalf("peer b estimate = %v", estB)
	}
	if bank.Peers() != 2 {
		t.Fatalf("Peers = %d", bank.Peers())
	}
}

func TestBankForget(t *testing.T) {
	warm := 0
	bank := NewBank[string](func() Filter {
		warm++
		f, _ := NewMP(DefaultMPConfig())
		return f
	}, 0)
	bank.Observe("a", 50)
	bank.Forget("a")
	bank.Observe("a", 50)
	if warm != 2 {
		t.Fatalf("factory called %d times, want 2 (state dropped)", warm)
	}
}

func TestBankMaxPeers(t *testing.T) {
	bank := NewBank[string](func() Filter { return NewNone() }, 2)
	bank.Observe("a", 1)
	bank.Observe("b", 2)
	// Third peer: over the bound, must still produce output but not grow
	// the table.
	est, ok := bank.Observe("c", 3)
	if !ok || est != 3 {
		t.Fatalf("over-bound peer output = %v, %v", est, ok)
	}
	if bank.Peers() != 2 {
		t.Fatalf("Peers = %d, want 2", bank.Peers())
	}
}

func TestBankMaxPeersOverflowBypassesWarmup(t *testing.T) {
	// Regression: the overflow path used to route unknown peers through
	// a throwaway factory filter; with the default MP warm-up of 2 a
	// single-sample fresh filter always reported not-ready, so overflow
	// peers' samples were silently dropped forever. The overflow path
	// must pass the raw sample through instead.
	bank := NewBank[string](func() Filter {
		f, _ := NewMP(DefaultMPConfig())
		return f
	}, 1)
	bank.Observe("a", 50)
	for i := 0; i < 5; i++ {
		est, ok := bank.Observe("overflow", 80)
		if !ok {
			t.Fatalf("overflow peer sample %d swallowed by warm-up", i)
		}
		if est != 80 {
			t.Fatalf("overflow peer estimate = %v, want raw 80", est)
		}
	}
	if bank.Peers() != 1 {
		t.Fatalf("Peers = %d, want table still bounded at 1", bank.Peers())
	}
}

func TestBankReset(t *testing.T) {
	bank := NewBank[string](func() Filter {
		f, _ := NewMP(MPConfig{History: 4, Percentile: 25, UpdateAfter: 2})
		return f
	}, 0)
	bank.Observe("a", 50)
	bank.Observe("a", 50)
	if _, ok := bank.Observe("a", 50); !ok {
		t.Fatal("expected warm filter before Reset")
	}
	bank.Reset()
	if _, ok := bank.Observe("a", 50); ok {
		t.Fatal("filter warm immediately after Reset")
	}
	if bank.Peers() != 1 {
		t.Fatalf("Peers = %d, want 1 (peers retained)", bank.Peers())
	}
}

// The headline claim of Figure 4: on heavy-tailed input, a short history
// with a low percentile predicts the next observation far better than the
// raw stream does.
func TestMPPredictsBetterThanRawOnHeavyTail(t *testing.T) {
	rng := xrand.NewStream(42)
	const base = 80.0
	gen := func() float64 {
		if rng.Bernoulli(0.05) {
			return base * rng.Uniform(5, 40) // spike
		}
		return base * (1 + math.Abs(rng.Normal(0, 0.05)))
	}
	mp := mustMP(t, MPConfig{History: 4, Percentile: 25, UpdateAfter: 1})
	var rawPrev float64
	var mpErrs, rawErrs []float64
	prevSet := false
	var mpPrev float64
	mpSet := false
	for i := 0; i < 20000; i++ {
		s := gen()
		if prevSet {
			rawErrs = append(rawErrs, math.Abs(rawPrev-s)/s)
		}
		if mpSet {
			mpErrs = append(mpErrs, math.Abs(mpPrev-s)/s)
		}
		rawPrev, prevSet = s, true
		if est, ok := mp.Observe(s); ok {
			mpPrev, mpSet = est, true
		}
	}
	mpMed, err := stats.Median(mpErrs)
	if err != nil {
		t.Fatalf("Median: %v", err)
	}
	rawMed, err := stats.Median(rawErrs)
	if err != nil {
		t.Fatalf("Median: %v", err)
	}
	if mpMed >= rawMed {
		t.Fatalf("MP median prediction error %v not better than raw %v", mpMed, rawMed)
	}
}

func BenchmarkMPObserve(b *testing.B) {
	f, err := NewMP(DefaultMPConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Observe(float64(i % 100))
	}
}

func BenchmarkBankObserve(b *testing.B) {
	bank := NewBank[string](func() Filter {
		f, _ := NewMP(DefaultMPConfig())
		return f
	}, 0)
	peers := []string{"a", "b", "c", "d", "e"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bank.Observe(peers[i%len(peers)], float64(i%100))
	}
}
