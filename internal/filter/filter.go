// Package filter implements the per-link latency filters evaluated by the
// paper (Sections III-IV): the non-linear Moving Percentile (MP) filter
// that the paper recommends, plus the baselines it compares against —
// exponentially weighted moving average (EWMA), a fixed discard threshold,
// and the identity (no filter).
//
// A Filter consumes one raw latency observation at a time and emits the
// value Vivaldi should treat as the link's current latency. Filters may
// withhold output while warming up (the paper's Section VI fix for the
// first-observation-is-an-outlier pathology), signalled by ok == false.
package filter

import (
	"fmt"
	"sort"
)

// Filter smooths a single link's stream of raw latency observations.
// Implementations are not safe for concurrent use; callers own one filter
// per link.
type Filter interface {
	// Observe feeds one raw latency sample (milliseconds) and returns the
	// filtered estimate. ok is false while the filter is warming up and
	// has no estimate to offer; the Vivaldi update is skipped then.
	Observe(sample float64) (estimate float64, ok bool)
	// Reset clears all state, returning the filter to warm-up.
	Reset()
}

// Factory builds a fresh filter. Each link gets its own instance from the
// factory, so factories must not share mutable state between the filters
// they produce.
type Factory func() Filter

// --- Moving Percentile ------------------------------------------------

// Paper defaults for the MP filter: "taking the 25th percentile
// (minimum) of the previous four observations" predicted subsequent
// samples best (Figure 4).
const (
	// DefaultHistory is the window size h = 4.
	DefaultHistory = 4
	// DefaultPercentile is p = 25.
	DefaultPercentile = 25.0
	// DefaultUpdateAfter withholds output until the second sample,
	// the robustness fix suggested in Section VI.
	DefaultUpdateAfter = 2
)

// MPConfig parameterizes a Moving Percentile filter.
type MPConfig struct {
	// History is the number of most recent observations retained (h).
	History int
	// Percentile is the percentile of the window reported as the
	// estimate (p), in [0, 100].
	Percentile float64
	// UpdateAfter is the minimum number of observations before the
	// filter produces output. The paper's original implementation used 1
	// (always output) and traced its worst coordinate disruptions to
	// first-sample outliers; 2 removes that pathology at the cost of one
	// extra round trip.
	UpdateAfter int
}

// DefaultMPConfig returns the paper's recommended parameters.
func DefaultMPConfig() MPConfig {
	return MPConfig{History: DefaultHistory, Percentile: DefaultPercentile, UpdateAfter: DefaultUpdateAfter}
}

// Validate checks the configuration.
func (c MPConfig) Validate() error {
	if c.History < 1 {
		return fmt.Errorf("filter: history %d, want >= 1", c.History)
	}
	if c.Percentile < 0 || c.Percentile > 100 {
		return fmt.Errorf("filter: percentile %v out of [0, 100]", c.Percentile)
	}
	if c.UpdateAfter < 1 {
		return fmt.Errorf("filter: update-after %d, want >= 1", c.UpdateAfter)
	}
	return nil
}

// MP is the Moving Percentile filter: a ring of the last h observations
// whose p-th percentile is the estimate. It is a non-linear low-pass
// filter; with p low (the paper uses 25) it discards the heavy upper tail
// of wide-area latency streams while tracking genuine shifts within h
// observations.
type MP struct {
	cfg    MPConfig
	ring   []float64 // insertion-ordered history, oldest first
	sorted []float64 // scratch: sorted copy of ring
	seen   int       // total observations, for warm-up
}

// NewMP builds an MP filter; the configuration must be valid.
func NewMP(cfg MPConfig) (*MP, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &MP{
		cfg:    cfg,
		ring:   make([]float64, 0, cfg.History),
		sorted: make([]float64, 0, cfg.History),
	}, nil
}

// Observe implements Filter.
func (f *MP) Observe(sample float64) (float64, bool) {
	if len(f.ring) == cap(f.ring) {
		copy(f.ring, f.ring[1:])
		f.ring[len(f.ring)-1] = sample
	} else {
		f.ring = append(f.ring, sample)
	}
	f.seen++
	if f.seen < f.cfg.UpdateAfter {
		return 0, false
	}
	f.sorted = append(f.sorted[:0], f.ring...)
	// The paper's window is h=4: insertion sort beats the general sort
	// for these tiny windows and keeps the per-sample path branch-cheap.
	if len(f.sorted) <= 16 {
		insertionSort(f.sorted)
	} else {
		sort.Float64s(f.sorted)
	}
	return percentileSorted(f.sorted, f.cfg.Percentile), true
}

// insertionSort sorts a tiny slice in place.
func insertionSort(x []float64) {
	for i := 1; i < len(x); i++ {
		v := x[i]
		j := i - 1
		for j >= 0 && x[j] > v {
			x[j+1] = x[j]
			j--
		}
		x[j+1] = v
	}
}

// Reset implements Filter.
func (f *MP) Reset() {
	f.ring = f.ring[:0]
	f.seen = 0
}

// Len reports the current history occupancy (for tests and diagnostics).
func (f *MP) Len() int { return len(f.ring) }

// percentileSorted mirrors stats.PercentileSorted without the error path;
// the window is guaranteed non-empty here and p pre-validated. Duplicated
// locally to keep the hot path allocation- and dependency-free.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) || frac == 0 {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// --- EWMA ---------------------------------------------------------------

// EWMA is the exponentially weighted moving average baseline
// (Section IV-B): v' = alpha*s + (1-alpha)*v. The paper shows it performs
// worse than no filter at all on heavy-tailed input — outliers are not a
// trend to be averaged in, they must be discarded.
type EWMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEWMA builds an EWMA filter with the given weight for new samples,
// 0 < alpha <= 1.
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("filter: ewma alpha %v out of (0, 1]", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Observe implements Filter.
func (f *EWMA) Observe(sample float64) (float64, bool) {
	if !f.primed {
		f.value = sample
		f.primed = true
	} else {
		f.value = f.alpha*sample + (1-f.alpha)*f.value
	}
	return f.value, true
}

// Reset implements Filter.
func (f *EWMA) Reset() {
	f.value = 0
	f.primed = false
}

// --- Threshold ------------------------------------------------------------

// Threshold drops every observation above a fixed cutoff and passes the
// rest through unchanged (Section IV-B). Stateless and simple, but a
// cutoff that suits the aggregate distribution does nothing for a link
// whose common case is 50 ms and whose outliers are 400 ms.
type Threshold struct {
	cutoff float64
}

// NewThreshold builds a threshold filter with the given cutoff in
// milliseconds.
func NewThreshold(cutoff float64) (*Threshold, error) {
	if cutoff <= 0 {
		return nil, fmt.Errorf("filter: threshold cutoff %v, want > 0", cutoff)
	}
	return &Threshold{cutoff: cutoff}, nil
}

// Observe implements Filter. Samples above the cutoff produce no output.
func (f *Threshold) Observe(sample float64) (float64, bool) {
	if sample > f.cutoff {
		return 0, false
	}
	return sample, true
}

// Reset implements Filter.
func (f *Threshold) Reset() {}

// --- None -------------------------------------------------------------------

// None is the identity filter: raw observations flow straight into
// Vivaldi. This is the paper's "No Filter" configuration.
type None struct{}

// NewNone returns the identity filter.
func NewNone() *None { return &None{} }

// Observe implements Filter.
func (*None) Observe(sample float64) (float64, bool) { return sample, true }

// Reset implements Filter.
func (*None) Reset() {}

// Interface conformance checks.
var (
	_ Filter = (*MP)(nil)
	_ Filter = (*EWMA)(nil)
	_ Filter = (*Threshold)(nil)
	_ Filter = (*None)(nil)
)
