package filter

// Bank owns one filter per remote peer. Nodes keep a Bank so that each
// link's observation stream is filtered independently — the whole point of
// the MP filter is that outlier structure is per-link, so a shared filter
// (or a global threshold) cannot work.
//
// The key type is generic: the simulator keys peers by node index, the
// UDP transport by address string.
//
// Bank is not safe for concurrent use; the owning node serializes access.
type Bank[K comparable] struct {
	factory Factory
	filters map[K]Filter
	// maxPeers bounds memory on gossip-heavy deployments; 0 means
	// unbounded. When full, unknown peers' samples pass through
	// unfiltered (they still produce estimates but build no history).
	maxPeers int
}

// NewBank builds a Bank producing per-peer filters from factory.
// maxPeers <= 0 means no bound.
func NewBank[K comparable](factory Factory, maxPeers int) *Bank[K] {
	return &Bank[K]{
		factory:  factory,
		filters:  make(map[K]Filter),
		maxPeers: maxPeers,
	}
}

// Observe routes a sample through the filter owned by peer, creating it on
// first use.
func (b *Bank[K]) Observe(peer K, sample float64) (float64, bool) {
	f, ok := b.filters[peer]
	if !ok {
		if b.maxPeers > 0 && len(b.filters) >= b.maxPeers {
			// Table full: pass the raw sample through rather than
			// evicting an established link's history. A fresh throwaway
			// filter would be wrong here — with any warm-up it reports
			// not-ready on its single sample, silently dropping every
			// overflow peer's observations forever.
			return sample, true
		}
		f = b.factory()
		b.filters[peer] = f
	}
	return f.Observe(sample)
}

// Forget drops the filter state for a peer (e.g. after it leaves the
// neighbor set).
func (b *Bank[K]) Forget(peer K) {
	delete(b.filters, peer)
}

// Reset clears every per-peer filter but keeps the peers known.
func (b *Bank[K]) Reset() {
	for _, f := range b.filters {
		f.Reset()
	}
}

// Peers reports how many peers currently hold filter state.
func (b *Bank[K]) Peers() int { return len(b.filters) }
