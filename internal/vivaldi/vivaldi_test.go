package vivaldi

import (
	"errors"
	"math"
	"sort"
	"testing"

	"netcoord/internal/coord"
	"netcoord/internal/vec"
	"netcoord/internal/xrand"
)

func mustNode(t *testing.T, cfg Config) *Node {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{name: "defaults", mutate: func(*Config) {}},
		{name: "zero dimension", mutate: func(c *Config) { c.Dimension = 0 }, wantErr: true},
		{name: "oversize dimension", mutate: func(c *Config) { c.Dimension = coord.MaxDimension + 1 }, wantErr: true},
		{name: "cc zero", mutate: func(c *Config) { c.CC = 0 }, wantErr: true},
		{name: "cc over one", mutate: func(c *Config) { c.CC = 1.5 }, wantErr: true},
		{name: "ce zero", mutate: func(c *Config) { c.CE = 0 }, wantErr: true},
		{name: "initial error zero", mutate: func(c *Config) { c.InitialError = 0 }, wantErr: true},
		{name: "initial error above one", mutate: func(c *Config) { c.InitialError = 1.1 }, wantErr: true},
		{name: "negative margin", mutate: func(c *Config) { c.ErrorMargin = -1 }, wantErr: true},
		{name: "negative height min", mutate: func(c *Config) { c.HeightMin = -1 }, wantErr: true},
		{name: "negative damping", mutate: func(c *Config) { c.DampingConstant = -1 }, wantErr: true},
		{name: "2d allowed", mutate: func(c *Config) { c.Dimension = 2 }},
		{name: "margin allowed", mutate: func(c *Config) { c.ErrorMargin = 3 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if tt.wantErr && err == nil {
				t.Fatal("Validate succeeded, want error")
			}
			if !tt.wantErr && err != nil {
				t.Fatalf("Validate: %v", err)
			}
		})
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.CC != 0.25 || cfg.CE != 0.25 {
		t.Fatalf("cc, ce = %v, %v; paper uses 0.25, 0.25", cfg.CC, cfg.CE)
	}
	if cfg.Dimension != 3 {
		t.Fatalf("dimension = %d; paper presents results in 3 dimensions", cfg.Dimension)
	}
	if cfg.UseHeight {
		t.Fatal("paper runs without height")
	}
}

func TestNewStartsAtOrigin(t *testing.T) {
	n := mustNode(t, DefaultConfig())
	c := n.Coordinate()
	if c.Vec.Norm() != 0 {
		t.Fatalf("initial coordinate %v, want origin", c)
	}
	if n.Error() != 1 {
		t.Fatalf("initial error %v, want 1", n.Error())
	}
	if n.Confidence() != 0 {
		t.Fatalf("initial confidence %v, want 0", n.Confidence())
	}
}

func TestUpdateRejectsBadSamples(t *testing.T) {
	n := mustNode(t, DefaultConfig())
	remote := coord.New(10, 0, 0)
	for _, rtt := range []float64{0, -5, math.NaN(), math.Inf(1)} {
		if _, err := n.Update(rtt, remote, 0.5); !errors.Is(err, ErrBadSample) {
			t.Errorf("Update(rtt=%v) error = %v, want ErrBadSample", rtt, err)
		}
	}
}

func TestUpdateRejectsInvalidRemote(t *testing.T) {
	n := mustNode(t, DefaultConfig())
	tests := []struct {
		name   string
		remote coord.Coordinate
	}{
		{name: "wrong dimension", remote: coord.New(1, 2)},
		{name: "nan component", remote: coord.New(math.NaN(), 0, 0)},
		{name: "negative height", remote: coord.Coordinate{Vec: vec.New(1, 2, 3), Height: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := n.Update(50, tt.remote, 0.5); !errors.Is(err, coord.ErrInvalid) {
				t.Fatalf("error = %v, want coord.ErrInvalid", err)
			}
		})
	}
}

func TestUpdateMovesTowardRemoteWhenTooFar(t *testing.T) {
	n := mustNode(t, DefaultConfig())
	if err := n.SetCoordinate(coord.New(100, 0, 0)); err != nil {
		t.Fatalf("SetCoordinate: %v", err)
	}
	remote := coord.New(0, 0, 0)
	// Estimated distance 100, measured 10: the spring pulls us toward
	// the remote.
	c, err := n.Update(10, remote, 0.5)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if c.Vec[0] >= 100 {
		t.Fatalf("coordinate did not move toward remote: %v", c)
	}
	if c.Vec[0] <= 0 {
		t.Fatalf("coordinate overshot the remote in one step: %v", c)
	}
}

func TestUpdateMovesAwayWhenTooClose(t *testing.T) {
	n := mustNode(t, DefaultConfig())
	if err := n.SetCoordinate(coord.New(10, 0, 0)); err != nil {
		t.Fatalf("SetCoordinate: %v", err)
	}
	remote := coord.New(0, 0, 0)
	// Estimated 10, measured 100: push apart.
	c, err := n.Update(100, remote, 0.5)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if c.Vec[0] <= 10 {
		t.Fatalf("coordinate did not move away from remote: %v", c)
	}
}

func TestColocatedNodesSeparate(t *testing.T) {
	// Both at the origin: the random direction must separate them.
	n := mustNode(t, DefaultConfig())
	c, err := n.Update(50, coord.Origin(3), 1)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if c.Vec.Norm() == 0 {
		t.Fatal("co-located nodes did not separate")
	}
}

// The paper's worked confidence example (Section IV-B): two nodes with
// confidence 0.5, expected distance 1 ms, a single 3 ms sample reduces
// confidence "by almost 5%".
func TestConfidenceWorkedExample(t *testing.T) {
	n := mustNode(t, DefaultConfig())
	if err := n.SetCoordinate(coord.New(1, 0, 0)); err != nil {
		t.Fatalf("SetCoordinate: %v", err)
	}
	n.SetError(0.5)
	remote := coord.New(0, 0, 0) // 1 ms away in coordinate space
	if _, err := n.Update(3, remote, 0.5); err != nil {
		t.Fatalf("Update: %v", err)
	}
	// ws = 0.5, eps = |1-3|/3 = 2/3, alpha = 0.25*0.5 = 0.125
	// w' = 0.125*(2/3) + 0.875*0.5 = 0.52083...
	wantErr := 0.125*(2.0/3.0) + 0.875*0.5
	if math.Abs(n.Error()-wantErr) > 1e-9 {
		t.Fatalf("error weight = %v, want %v", n.Error(), wantErr)
	}
	// Confidence drop: 0.5 -> 0.47917, a ~4.2% relative drop ("almost
	// 5%" in the paper's words).
	drop := (0.5 - n.Confidence()) / 0.5
	if drop < 0.03 || drop > 0.05 {
		t.Fatalf("confidence drop = %.4f, want ~0.042", drop)
	}
}

func TestConfidenceBuildingTreatsMarginAsEqual(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ErrorMargin = 3
	n := mustNode(t, cfg)
	if err := n.SetCoordinate(coord.New(1, 0, 0)); err != nil {
		t.Fatalf("SetCoordinate: %v", err)
	}
	n.SetError(0.5)
	before := n.Coordinate()
	// Same scenario as the worked example, but the 2 ms gap is within
	// the 3 ms margin: treated as a perfect prediction.
	if _, err := n.Update(3, coord.New(0, 0, 0), 0.5); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if n.Error() >= 0.5 {
		t.Fatalf("error weight = %v, want < 0.5 (confidence must grow)", n.Error())
	}
	after := n.Coordinate()
	if !after.Equal(before) {
		t.Fatalf("coordinate moved %v -> %v despite in-margin sample", before, after)
	}
}

func TestConfidenceBuildingConvergesToFull(t *testing.T) {
	// On a stable low-latency link, confidence building should drive
	// confidence to ~100%, the paper's Figure 6 behavior.
	cfg := DefaultConfig()
	cfg.ErrorMargin = 3
	n := mustNode(t, cfg)
	if err := n.SetCoordinate(coord.New(1, 0, 0)); err != nil {
		t.Fatalf("SetCoordinate: %v", err)
	}
	remote := coord.New(0, 0, 0)
	rng := xrand.NewStream(3)
	for i := 0; i < 600; i++ {
		// Jittery sub-precision latencies between 0.4 and 1.2 ms.
		rtt := rng.Uniform(0.4, 1.2)
		if _, err := n.Update(rtt, remote, 0.5); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	if n.Confidence() < 0.99 {
		t.Fatalf("confidence = %v after stable link, want ~1 (Figure 6)", n.Confidence())
	}
}

func TestWithoutConfidenceBuildingJitterHurts(t *testing.T) {
	// Without the margin, the same jittery link keeps relative error
	// high and confidence wavers well below 100% (Figure 6's lower
	// curves sit near 75%).
	n := mustNode(t, DefaultConfig())
	if err := n.SetCoordinate(coord.New(1, 0, 0)); err != nil {
		t.Fatalf("SetCoordinate: %v", err)
	}
	remote := coord.New(0, 0, 0)
	rng := xrand.NewStream(4)
	for i := 0; i < 600; i++ {
		rtt := rng.Uniform(0.4, 1.2)
		if _, err := n.Update(rtt, remote, 0.5); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	if n.Confidence() > 0.95 {
		t.Fatalf("confidence = %v without margin, want clearly below full", n.Confidence())
	}
}

func TestTwoNodeConvergence(t *testing.T) {
	// Two nodes exchanging a constant 50 ms RTT must converge to
	// coordinates ~50 ms apart.
	cfgA := DefaultConfig()
	cfgA.Seed = 1
	cfgB := DefaultConfig()
	cfgB.Seed = 2
	a := mustNode(t, cfgA)
	b := mustNode(t, cfgB)
	for i := 0; i < 500; i++ {
		if _, err := a.Update(50, b.Coordinate(), b.Error()); err != nil {
			t.Fatalf("a.Update: %v", err)
		}
		if _, err := b.Update(50, a.Coordinate(), a.Error()); err != nil {
			t.Fatalf("b.Update: %v", err)
		}
	}
	est, err := a.EstimateRTT(b.Coordinate())
	if err != nil {
		t.Fatalf("EstimateRTT: %v", err)
	}
	if math.Abs(est-50) > 2 {
		t.Fatalf("estimated RTT = %v, want ~50", est)
	}
	if a.Error() > 0.1 {
		t.Fatalf("node error = %v after convergence, want small", a.Error())
	}
}

func TestTriangleConvergence(t *testing.T) {
	// Three nodes with consistent pairwise RTTs 60/80/100 (a valid
	// triangle) embed with low error in 3 dimensions.
	rtts := [3][3]float64{
		{0, 60, 80},
		{60, 0, 100},
		{80, 100, 0},
	}
	nodes := make([]*Node, 3)
	for i := range nodes {
		cfg := DefaultConfig()
		cfg.Seed = uint64(i + 1)
		nodes[i] = mustNode(t, cfg)
	}
	rng := xrand.NewStream(9)
	for iter := 0; iter < 3000; iter++ {
		i := rng.Intn(3)
		j := rng.Intn(3)
		if i == j {
			continue
		}
		if _, err := nodes[i].Update(rtts[i][j], nodes[j].Coordinate(), nodes[j].Error()); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			est, err := nodes[i].EstimateRTT(nodes[j].Coordinate())
			if err != nil {
				t.Fatalf("EstimateRTT: %v", err)
			}
			relErr := math.Abs(est-rtts[i][j]) / rtts[i][j]
			if relErr > 0.12 {
				t.Fatalf("link %d-%d: estimate %v vs true %v (rel err %.3f)", i, j, est, rtts[i][j], relErr)
			}
		}
	}
}

func TestErrorStaysClamped(t *testing.T) {
	n := mustNode(t, DefaultConfig())
	remote := coord.New(1, 0, 0)
	rng := xrand.NewStream(5)
	for i := 0; i < 2000; i++ {
		// Wild observations: error weight must stay in (0, 1].
		rtt := rng.Uniform(0.1, 10000)
		if _, err := n.Update(rtt, remote, rng.Float64()); err != nil {
			t.Fatalf("Update: %v", err)
		}
		if w := n.Error(); w <= 0 || w > 1 || math.IsNaN(w) {
			t.Fatalf("error weight escaped (0,1]: %v at step %d", w, i)
		}
	}
}

func TestRemoteErrorClamped(t *testing.T) {
	n := mustNode(t, DefaultConfig())
	remote := coord.New(10, 0, 0)
	// Hostile remote error weights must not produce NaN.
	for _, w := range []float64{0, -1, 2, math.NaN()} {
		if _, err := n.Update(50, remote, w); err != nil {
			t.Fatalf("Update with remote error %v: %v", w, err)
		}
		if math.IsNaN(n.Error()) || !n.Coordinate().Vec.IsFinite() {
			t.Fatalf("state corrupted by remote error %v", w)
		}
	}
}

func TestHeightModel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseHeight = true
	cfg.HeightMin = 0.1
	n := mustNode(t, cfg)
	c := n.Coordinate()
	if c.Height != 0.1 {
		t.Fatalf("initial height = %v, want HeightMin", c.Height)
	}
	remote := coord.Coordinate{Vec: vec.New(10, 0, 0), Height: 5}
	for i := 0; i < 200; i++ {
		var err error
		c, err = n.Update(100, remote, 0.5)
		if err != nil {
			t.Fatalf("Update: %v", err)
		}
		if c.Height < cfg.HeightMin {
			t.Fatalf("height %v fell below minimum", c.Height)
		}
	}
	// With a measured RTT far above Euclidean distance, height should
	// have absorbed some of the excess.
	if c.Height <= cfg.HeightMin {
		t.Fatalf("height never grew: %v", c.Height)
	}
}

func TestDampingFreezesCoordinates(t *testing.T) {
	// A3 ablation: with de Launois damping, late observations move the
	// coordinate far less than early ones, even when the network truly
	// changed.
	cfg := DefaultConfig()
	cfg.DampingConstant = 10
	n := mustNode(t, cfg)
	remote := coord.New(50, 0, 0)
	for i := 0; i < 500; i++ {
		if _, err := n.Update(50, remote, 0.5); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	frozen := n.Coordinate()
	// The network "changes": the true RTT is now 500 ms. A damped node
	// barely reacts.
	for i := 0; i < 100; i++ {
		if _, err := n.Update(500, remote, 0.5); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	moved, err := n.Coordinate().DisplacementFrom(frozen)
	if err != nil {
		t.Fatalf("DisplacementFrom: %v", err)
	}

	// Control: the undamped node chases the change by far more.
	ctrl := mustNode(t, DefaultConfig())
	for i := 0; i < 500; i++ {
		if _, err := ctrl.Update(50, remote, 0.5); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	ctrlFrozen := ctrl.Coordinate()
	for i := 0; i < 100; i++ {
		if _, err := ctrl.Update(500, remote, 0.5); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	ctrlMoved, err := ctrl.Coordinate().DisplacementFrom(ctrlFrozen)
	if err != nil {
		t.Fatalf("DisplacementFrom: %v", err)
	}
	if moved > ctrlMoved/3 {
		t.Fatalf("damped moved %v vs undamped %v; damping should suppress adaptation by >3x", moved, ctrlMoved)
	}
	// The undamped node must have essentially closed the 450 ms gap
	// while the damped one is still far from the new equilibrium.
	ctrlEst, err := ctrl.EstimateRTT(remote)
	if err != nil {
		t.Fatalf("EstimateRTT: %v", err)
	}
	dampedEst, err := n.EstimateRTT(remote)
	if err != nil {
		t.Fatalf("EstimateRTT: %v", err)
	}
	if math.Abs(ctrlEst-500) > 100 {
		t.Fatalf("undamped estimate %v, want near 500", ctrlEst)
	}
	if math.Abs(dampedEst-500) < math.Abs(ctrlEst-500) {
		t.Fatalf("damped estimate %v adapted better than undamped %v", dampedEst, ctrlEst)
	}
}

func TestSetCoordinateValidates(t *testing.T) {
	n := mustNode(t, DefaultConfig())
	if err := n.SetCoordinate(coord.New(1, 2)); err == nil {
		t.Fatal("wrong-dimension SetCoordinate accepted")
	}
	if err := n.SetCoordinate(coord.New(math.Inf(1), 0, 0)); err == nil {
		t.Fatal("non-finite SetCoordinate accepted")
	}
}

func TestUpdatesCounter(t *testing.T) {
	n := mustNode(t, DefaultConfig())
	remote := coord.New(10, 0, 0)
	if _, err := n.Update(50, remote, 0.5); err != nil {
		t.Fatalf("Update: %v", err)
	}
	// Failed updates must not advance the counter.
	if _, err := n.Update(-1, remote, 0.5); err == nil {
		t.Fatal("bad update accepted")
	}
	if n.Updates() != 1 {
		t.Fatalf("Updates = %d, want 1", n.Updates())
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	run := func() coord.Coordinate {
		cfg := DefaultConfig()
		cfg.Seed = 42
		n, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		remote := coord.Origin(3)
		rng := xrand.NewStream(7)
		var c coord.Coordinate
		for i := 0; i < 100; i++ {
			c, err = n.Update(rng.Uniform(10, 100), remote, 0.5)
			if err != nil {
				t.Fatalf("Update: %v", err)
			}
		}
		return c
	}
	a, b := run(), run()
	if !a.Equal(b) {
		t.Fatalf("same-seed runs diverged: %v vs %v", a, b)
	}
}

func BenchmarkUpdate(b *testing.B) {
	n, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	remote := coord.New(10, 20, 30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := n.Update(50, remote, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: on random consistent geometries (true distances drawn from
// actual 3-D point placements, so they are embeddable by construction), a
// mesh of Vivaldi nodes converges to low median relative error.
func TestRandomGeometryConvergence(t *testing.T) {
	rng := xrand.NewStream(99)
	for trial := 0; trial < 5; trial++ {
		const n = 8
		// Ground-truth positions in a 200ms-wide cube.
		truth := make([][3]float64, n)
		for i := range truth {
			truth[i] = [3]float64{rng.Uniform(0, 200), rng.Uniform(0, 200), rng.Uniform(0, 200)}
		}
		dist := func(i, j int) float64 {
			dx := truth[i][0] - truth[j][0]
			dy := truth[i][1] - truth[j][1]
			dz := truth[i][2] - truth[j][2]
			return math.Max(math.Sqrt(dx*dx+dy*dy+dz*dz), 1)
		}
		nodes := make([]*Node, n)
		for i := range nodes {
			cfg := DefaultConfig()
			cfg.Seed = rng.Uint64()
			nodes[i] = mustNode(t, cfg)
		}
		for iter := 0; iter < 6000; iter++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			if _, err := nodes[i].Update(dist(i, j), nodes[j].Coordinate(), nodes[j].Error()); err != nil {
				t.Fatalf("Update: %v", err)
			}
		}
		var errs []float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				est, err := nodes[i].EstimateRTT(nodes[j].Coordinate())
				if err != nil {
					t.Fatalf("EstimateRTT: %v", err)
				}
				errs = append(errs, math.Abs(est-dist(i, j))/dist(i, j))
			}
		}
		sort.Float64s(errs)
		median := errs[len(errs)/2]
		if median > 0.15 {
			t.Fatalf("trial %d: median relative error %v after convergence on embeddable geometry", trial, median)
		}
	}
}

func TestEstimateWithSeparationMatchesEstimateRTT(t *testing.T) {
	n, err := New(DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	remote := coord.New(30, 40, 0)
	if _, err := n.Update(25, remote, 0.5); err != nil {
		t.Fatalf("Update: %v", err)
	}
	est, sep, err := n.EstimateWithSeparation(remote)
	if err != nil {
		t.Fatalf("EstimateWithSeparation: %v", err)
	}
	plain, err := n.EstimateRTT(remote)
	if err != nil {
		t.Fatalf("EstimateRTT: %v", err)
	}
	if est != plain {
		t.Fatalf("est = %v, EstimateRTT = %v", est, plain)
	}
	d, err := n.Coordinate().Vec.Dist(remote.Vec)
	if err != nil {
		t.Fatalf("Dist: %v", err)
	}
	if sep != d {
		t.Fatalf("sep = %v, want %v", sep, d)
	}
}

func TestUpdateWithSeparationMatchesUpdate(t *testing.T) {
	// Two nodes with identical seeds fed the identical observation
	// sequence through the two entry points must remain bit-identical:
	// UpdateWithSeparation is the same algorithm minus the allocations.
	cfg := DefaultConfig()
	cfg.Seed = 77
	a, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	remotes := []coord.Coordinate{
		coord.Origin(3), // co-located bootstrap draw
		coord.New(10, -5, 2),
		coord.New(-3, 8, 1),
		coord.New(100, 100, 100),
	}
	rtts := []float64{20, 35, 12, 250}
	for i, remote := range remotes {
		if _, err := a.Update(rtts[i], remote, 0.4); err != nil {
			t.Fatalf("Update %d: %v", i, err)
		}
		_, sep, err := b.EstimateWithSeparation(remote)
		if err != nil {
			t.Fatalf("EstimateWithSeparation %d: %v", i, err)
		}
		if err := b.UpdateWithSeparation(rtts[i], remote, 0.4, sep); err != nil {
			t.Fatalf("UpdateWithSeparation %d: %v", i, err)
		}
		if !a.Coordinate().Equal(b.Coordinate()) {
			t.Fatalf("step %d: coordinates diverged: %v vs %v", i, a.Coordinate(), b.Coordinate())
		}
		if a.Error() != b.Error() {
			t.Fatalf("step %d: error weights diverged: %v vs %v", i, a.Error(), b.Error())
		}
	}
}

func TestUpdateWithSeparationRejectsBadInput(t *testing.T) {
	n, err := New(DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	good := coord.New(1, 2, 3)
	if err := n.UpdateWithSeparation(0, good, 0.5, 1); !errors.Is(err, ErrBadSample) {
		t.Fatalf("zero rtt error = %v, want ErrBadSample", err)
	}
	if err := n.UpdateWithSeparation(10, coord.New(1, 2), 0.5, 1); !errors.Is(err, ErrBadRemote) {
		t.Fatalf("dimension mismatch error = %v, want ErrBadRemote", err)
	}
	bad := coord.New(math.NaN(), 0, 0)
	if err := n.UpdateWithSeparation(10, bad, 0.5, 1); !errors.Is(err, ErrBadRemote) {
		t.Fatalf("NaN remote error = %v, want ErrBadRemote", err)
	}
	negH := coord.New(1, 2, 3)
	negH.Height = -1
	if err := n.UpdateWithSeparation(10, negH, 0.5, 1); !errors.Is(err, ErrBadRemote) {
		t.Fatalf("negative height error = %v, want ErrBadRemote", err)
	}
}

func TestCoordinateRefAliasesLiveState(t *testing.T) {
	n, err := New(DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ref := n.CoordinateRef()
	if _, err := n.Update(50, coord.New(10, 20, 30), 0.5); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if !ref.Equal(n.CoordinateRef()) {
		t.Fatal("ref did not track the live coordinate")
	}
	if n.Coordinate().Vec.Norm() == 0 {
		t.Fatal("update did not move the coordinate")
	}
}

func TestUpdateWithSeparationZeroAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 3
	n, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	remote := coord.New(25, -10, 5)
	// Warm: leave the origin so the co-located branch is out of play,
	// then measure the steady-state separated path.
	if _, err := n.Update(30, remote, 0.5); err != nil {
		t.Fatalf("warm-up Update: %v", err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		_, sep, err := n.EstimateWithSeparation(remote)
		if err != nil {
			t.Fatalf("EstimateWithSeparation: %v", err)
		}
		if err := n.UpdateWithSeparation(30, remote, 0.5, sep); err != nil {
			t.Fatalf("UpdateWithSeparation: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state update allocated %v per run", allocs)
	}
	// The co-located bootstrap branch must also be allocation-free: the
	// direction scratch is owned by the node.
	colocated, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	origin := coord.Origin(3)
	allocs = testing.AllocsPerRun(50, func() {
		colocated.SetError(1)
		if err := colocated.SetCoordinate(origin); err != nil {
			t.Fatalf("SetCoordinate: %v", err)
		}
		if err := colocated.UpdateWithSeparation(10, origin, 1, 0); err != nil {
			t.Fatalf("co-located update: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("co-located update allocated %v per run", allocs)
	}
}
