// Package vivaldi implements the Vivaldi network coordinate update
// algorithm (Cox/Dabek et al.) exactly as used by the paper's Figure 1,
// together with the paper's confidence-building margin (Section IV-B) and
// the de Launois asymptotic damping variant discussed in related work
// (Section VII-B, implemented here for the ablation benchmarks).
//
// Each node retains a coordinate x_i and an error weight w_i in (0, 1].
// w_i is an exponentially weighted moving average of the node's relative
// prediction error: *low* w means *high* confidence. The "confidence"
// plotted in the paper's Figure 6 is 1 - w. The paper's worked example
// pins the semantics: with both nodes at w = 0.5, an expected distance of
// 1 ms and a measured 3 ms, a single sample "will reduce confidence by
// almost 5%" — which holds only if w is the error average (see the unit
// tests, which verify this exact scenario).
//
// Per observation (l_ij, x_j, w_j) the update is:
//
//	w_s   = w_i / (w_i + w_j)              observation weight
//	eps   = | ||x_i - x_j|| - l_ij | / l_ij  relative error of sample
//	alpha = c_e * w_s
//	w_i   = alpha*eps + (1-alpha)*w_i       confidence update (clamped)
//	delta = c_c * w_s
//	x_i  += delta * (l_ij - ||x_i - x_j||) * u(x_i - x_j)
//
// The force term follows the mass-spring semantics of the original
// Vivaldi paper: when the measured latency exceeds the coordinate
// estimate the spring is compressed and pushes the nodes apart (u points
// from x_j toward x_i), and vice versa.
package vivaldi

import (
	"errors"
	"fmt"
	"math"

	"netcoord/internal/coord"
	"netcoord/internal/vec"
	"netcoord/internal/xrand"
)

// Paper constants: "We used cc, ce = 0.25, which are the same values used
// in the original authors' Vivaldi simulator."
const (
	DefaultCC = 0.25
	DefaultCE = 0.25
	// DefaultInitialError is the starting error weight: maximally
	// unconfident.
	DefaultInitialError = 1.0
	// minErrorFloor keeps w_i strictly positive so the relative weight
	// w_i/(w_i+w_j) stays defined and a perfectly confident node can
	// still adapt if the network changes underneath it.
	minErrorFloor = 1e-6
)

// ErrBadSample rejects non-positive or non-finite latency samples.
var ErrBadSample = errors.New("vivaldi: invalid latency sample")

// ErrBadRemote rejects remote coordinates that fail the hot-path checks
// (dimension mismatch, non-finite component, invalid height). It is a
// bare sentinel so the per-sample path never constructs a fmt.Errorf:
// callers that need the decorated diagnosis use Update, which validates
// with coord.Coordinate.Validate instead.
var ErrBadRemote = errors.New("vivaldi: invalid remote coordinate")

// Config parameterizes a Vivaldi node.
type Config struct {
	// Dimension of the coordinate space. The paper uses 3.
	Dimension int
	// CC bounds the coordinate step per observation (c_c).
	CC float64
	// CE bounds the confidence step per observation (c_e).
	CE float64
	// InitialError is the starting error weight in (0, 1].
	InitialError float64
	// ErrorMargin enables confidence building when > 0: if the measured
	// and estimated latency differ by no more than this margin
	// (milliseconds), they are considered equal — the sample contributes
	// zero relative error and no coordinate force. The paper uses 3 ms
	// on its local cluster and notes the mechanism matters only in
	// low-latency environments.
	ErrorMargin float64
	// UseHeight enables the non-Euclidean height component (Dabek et
	// al.). The paper's experiments run with this off.
	UseHeight bool
	// HeightMin is the floor for the height component when UseHeight is
	// set; heights below it are clamped up.
	HeightMin float64
	// DampingConstant enables the de Launois et al. stabilization when
	// > 0: the coordinate step is additionally scaled by
	// D / (D + updates), which decays toward zero regardless of the
	// observation source. Implemented for the A3 ablation: it stabilizes
	// coordinates but stops adaptation to genuine network change.
	DampingConstant float64
	// Seed drives the random direction used to separate co-located
	// coordinates at bootstrap.
	Seed uint64
}

// DefaultConfig returns the paper's parameters: 3 dimensions,
// cc = ce = 0.25, no height, no confidence building, no damping.
func DefaultConfig() Config {
	return Config{
		Dimension:    coord.DefaultDimension,
		CC:           DefaultCC,
		CE:           DefaultCE,
		InitialError: DefaultInitialError,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Dimension < 1 || c.Dimension > coord.MaxDimension {
		return fmt.Errorf("vivaldi: dimension %d out of [1, %d]", c.Dimension, coord.MaxDimension)
	}
	if c.CC <= 0 || c.CC > 1 {
		return fmt.Errorf("vivaldi: cc %v out of (0, 1]", c.CC)
	}
	if c.CE <= 0 || c.CE > 1 {
		return fmt.Errorf("vivaldi: ce %v out of (0, 1]", c.CE)
	}
	if c.InitialError <= 0 || c.InitialError > 1 {
		return fmt.Errorf("vivaldi: initial error %v out of (0, 1]", c.InitialError)
	}
	if c.ErrorMargin < 0 {
		return fmt.Errorf("vivaldi: error margin %v, want >= 0", c.ErrorMargin)
	}
	if c.HeightMin < 0 {
		return fmt.Errorf("vivaldi: height min %v, want >= 0", c.HeightMin)
	}
	if c.DampingConstant < 0 {
		return fmt.Errorf("vivaldi: damping constant %v, want >= 0", c.DampingConstant)
	}
	return nil
}

// Node is a single participant's Vivaldi state. It is not safe for
// concurrent use; the public netcoord.Client adds synchronization.
type Node struct {
	cfg     Config
	coord   coord.Coordinate
	err     float64
	updates uint64
	rng     *xrand.Stream
	// dir is the scratch buffer for the co-located bootstrap direction,
	// allocated once so the update path never allocates.
	dir vec.Vector
}

// New builds a node at the origin with the configured initial error.
func New(cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := coord.Origin(cfg.Dimension)
	if cfg.UseHeight {
		c.Height = cfg.HeightMin
	}
	return &Node{
		cfg:   cfg,
		coord: c,
		err:   cfg.InitialError,
		rng:   xrand.NewStream(cfg.Seed),
		dir:   vec.Zero(cfg.Dimension),
	}, nil
}

// Coordinate returns a copy of the node's current coordinate.
func (n *Node) Coordinate() coord.Coordinate { return n.coord.Clone() }

// CoordinateRef returns the node's live coordinate without copying. The
// returned value aliases internal state: it changes on the next update
// and must not be mutated by the caller. It exists for the simulator's
// per-sample path; everything else should use Coordinate.
func (n *Node) CoordinateRef() coord.Coordinate { return n.coord }

// Error returns the node's error weight w_i (low = confident).
func (n *Node) Error() float64 { return n.err }

// Confidence returns 1 - w_i, the quantity plotted in the paper's
// Figure 6.
func (n *Node) Confidence() float64 { return 1 - n.err }

// Updates reports how many observations have been applied.
func (n *Node) Updates() uint64 { return n.updates }

// SetCoordinate replaces the node's coordinate, validating it first.
// Used when restoring persisted state.
func (n *Node) SetCoordinate(c coord.Coordinate) error {
	if err := c.Validate(n.cfg.Dimension); err != nil {
		return fmt.Errorf("set coordinate: %w", err)
	}
	n.coord.CopyFrom(c)
	return nil
}

// SetError replaces the node's error weight, clamped into (0, 1].
func (n *Node) SetError(w float64) {
	n.err = clampError(w)
}

// EstimateRTT predicts the round-trip time to a remote coordinate, in
// milliseconds.
func (n *Node) EstimateRTT(remote coord.Coordinate) (float64, error) {
	d, err := n.coord.DistanceTo(remote)
	if err != nil {
		return 0, fmt.Errorf("estimate rtt: %w", err)
	}
	return d, nil
}

// EstimateWithSeparation predicts the round-trip time to a remote
// coordinate and also returns the raw Euclidean separation
// ||x_i - x_j|| it is built from, so callers on the per-sample path can
// hand the separation straight back to UpdateWithSeparation instead of
// recomputing the same distance.
func (n *Node) EstimateWithSeparation(remote coord.Coordinate) (est, sep float64, err error) {
	sep, err = n.coord.Vec.Dist(remote.Vec)
	if err != nil {
		//nc:allow(hotpath) dimension-mismatch return: cold by definition
		return 0, 0, fmt.Errorf("estimate rtt: %w", err)
	}
	return sep + n.coord.Height + remote.Height, sep, nil
}

// Update applies one latency observation of the remote node: the measured
// RTT in milliseconds, the remote's coordinate, and the remote's error
// weight w_j. It returns a copy of the node's new coordinate.
//
// Update is the network-facing entry point: it fully validates the remote
// coordinate (wrapped diagnostics included) and clones its result. The
// simulator's per-sample path uses UpdateWithSeparation +
// CoordinateRef instead, which perform the same update with zero heap
// allocations.
func (n *Node) Update(rtt float64, remote coord.Coordinate, remoteErr float64) (coord.Coordinate, error) {
	if rtt <= 0 || math.IsNaN(rtt) || math.IsInf(rtt, 0) {
		// Decorated here rather than in the shared core: this is the
		// network-facing path where the offending value identifies the
		// misbehaving peer, and it can afford the wrapper allocation.
		return n.coord.Clone(), fmt.Errorf("%w: rtt %v", ErrBadSample, rtt)
	}
	if err := remote.Validate(n.cfg.Dimension); err != nil {
		return n.coord.Clone(), fmt.Errorf("remote coordinate: %w", err)
	}
	sep, err := n.coord.Vec.Dist(remote.Vec)
	if err != nil {
		return n.coord.Clone(), fmt.Errorf("vivaldi update: %w", err)
	}
	if err := n.update(rtt, remote, remoteErr, sep); err != nil {
		return n.coord.Clone(), err
	}
	return n.coord.Clone(), nil
}

// UpdateWithSeparation applies one observation reusing a separation the
// caller already computed — sep must be ||x_i - x_j|| for the current
// coordinates, i.e. the second return of EstimateWithSeparation with no
// intervening update. It validates the remote with allocation-free
// sentinel errors and performs zero heap allocations.
//
//nc:hotpath
func (n *Node) UpdateWithSeparation(rtt float64, remote coord.Coordinate, remoteErr float64, sep float64) error {
	// The checks mirror coord.Coordinate.Validate but return the bare
	// sentinel: dimension compatibility is established once at node
	// construction by the simulator, so the wrapped message would never
	// surface, and building it costs an allocation per sample.
	if len(remote.Vec) != n.cfg.Dimension || !remote.Vec.IsFinite() {
		return ErrBadRemote
	}
	if math.IsNaN(remote.Height) || math.IsInf(remote.Height, 0) || remote.Height < 0 {
		return ErrBadRemote
	}
	return n.update(rtt, remote, remoteErr, sep)
}

// update is the Figure 1 algorithm, shared by every entry point. It
// mutates n.coord in place and allocates nothing.
func (n *Node) update(rtt float64, remote coord.Coordinate, remoteErr float64, sep float64) error {
	if rtt <= 0 || math.IsNaN(rtt) || math.IsInf(rtt, 0) {
		return ErrBadSample
	}
	wi := n.err
	wj := clampError(remoteErr)

	// Line 1: relative weight of this observation.
	ws := wi / (wi + wj)

	// Effective distance: the co-located regime collapses the separation
	// to zero, exactly as vec.UnitDirection reports it.
	mag := sep
	colocated := vec.Colocated(mag)
	if colocated {
		mag = 0
	}
	dist := mag + n.coord.Height + remote.Height

	// Confidence building (Section IV-B): within the measurement error
	// margin, the estimate and the observation are considered equal.
	gap := dist - rtt
	if n.cfg.ErrorMargin > 0 && math.Abs(gap) <= n.cfg.ErrorMargin {
		gap = 0
	}

	// Line 2: relative error of this sample.
	eps := math.Abs(gap) / rtt

	// Lines 3-4: confidence update, clamped into (0, 1].
	alpha := n.cfg.CE * ws
	n.err = clampError(alpha*eps + (1-alpha)*wi)

	// Lines 5-6: coordinate update. Spring force pushes apart when the
	// measurement exceeds the estimate (rtt - dist > 0) and pulls
	// together otherwise, along the unit vector from remote to us.
	delta := n.cfg.CC * ws
	if n.cfg.DampingConstant > 0 {
		delta *= n.cfg.DampingConstant / (n.cfg.DampingConstant + float64(n.updates))
	}
	force := delta * -gap // -gap == rtt - dist unless zeroed by the margin
	if colocated {
		// Bootstrap: all nodes start at the origin and need a random
		// push to separate. The direction scratch is reused across
		// updates.
		vec.RandomUnitInto(n.dir, n.rng.Float64)
		if err := n.coord.Vec.AddScaledInPlace(n.dir, force); err != nil {
			return err
		}
	} else {
		// Fused force step: x_i += (force/mag) * (x_i - x_j), one pass,
		// no temporaries.
		if err := n.coord.Vec.SubScaleAdd(n.coord.Vec, remote.Vec, force/mag); err != nil {
			return err
		}
	}
	if n.cfg.UseHeight && mag > 0 {
		// The height absorbs force proportionally to the stacked access
		// link latency (Dabek et al.'s model).
		h := n.coord.Height + (n.coord.Height+remote.Height)*force/mag
		n.coord.Height = math.Max(h, n.cfg.HeightMin)
	}
	n.updates++
	return nil
}

func clampError(w float64) float64 {
	if math.IsNaN(w) {
		return 1
	}
	if w < minErrorFloor {
		return minErrorFloor
	}
	if w > 1 {
		return 1
	}
	return w
}
