// Package metrics implements the paper's two evaluation metrics
// (Section II-A) and their derived views:
//
//   - Accuracy: per-node relative error — for node i's observation of
//     node j, |est - l| / l where est is the coordinate distance and l
//     the raw observed latency. The paper reports per-node medians and
//     95th percentiles, and CDFs of both across nodes.
//   - Stability: the rate of coordinate change, s = sum(dx)/t in ms/sec.
//     The headline "instability" distributions are over seconds: for
//     each second, the aggregate coordinate displacement across all
//     nodes. Per-node movement CDFs use each node's per-observation
//     displacements.
//   - Application updates per second: the fraction of nodes whose
//     application-level coordinate changed in a given second (Figure 9).
//
// A Collector records one coordinate stream (system- or application-
// level); runs that compare both keep two collectors side by side.
// Readers choose the measurement window — the paper always discards the
// first half of a run to skip start-up effects.
package metrics

import (
	"fmt"
	"math"

	"netcoord/internal/stats"
)

// series is a per-node time-tagged value stream, stored as parallel
// arrays to keep millions of samples compact.
type series struct {
	ticks []uint32
	vals  []float64
}

func (s *series) add(tick uint64, v float64) {
	s.ticks = append(s.ticks, uint32(tick))
	s.vals = append(s.vals, v)
}

// slice returns the values with from <= tick <= to.
func (s *series) slice(from, to uint64) []float64 {
	out := make([]float64, 0, len(s.vals))
	for i, tk := range s.ticks {
		t := uint64(tk)
		if t >= from && t <= to {
			out = append(out, s.vals[i])
		}
	}
	return out
}

// Collector accumulates metrics for one coordinate stream.
type Collector struct {
	nodes   int
	errs    []series
	moves   []series
	moveSum []float64 // aggregate displacement per tick
	updates []int     // count of app updates per tick
	maxTick uint64
}

// NewCollector sizes a collector for the given node count.
func NewCollector(nodes int) (*Collector, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("metrics: %d nodes, want >= 1", nodes)
	}
	return &Collector{
		nodes: nodes,
		errs:  make([]series, nodes),
		moves: make([]series, nodes),
	}, nil
}

// Nodes returns the node count.
func (c *Collector) Nodes() int { return c.nodes }

// Reserve pre-sizes internal storage for a run expected to span ticks
// seconds with up to perNode observations per node, so that steady-state
// Record calls perform no allocation. Runs that exceed the reservation
// still work — storage grows as before — and Reserve never shrinks.
func (c *Collector) Reserve(ticks uint64, perNode int) {
	if n := int(ticks) + 1; n > cap(c.moveSum) {
		c.moveSum = append(make([]float64, 0, n), c.moveSum...)
		c.updates = append(make([]int, 0, n), c.updates...)
	}
	if perNode <= 0 {
		return
	}
	for i := range c.errs {
		reserveSeries(&c.errs[i], perNode)
		reserveSeries(&c.moves[i], perNode)
	}
}

func reserveSeries(s *series, n int) {
	if n <= cap(s.vals) {
		return
	}
	s.ticks = append(make([]uint32, 0, n), s.ticks...)
	s.vals = append(make([]float64, 0, n), s.vals...)
}

// MaxTick reports the last tick recorded.
func (c *Collector) MaxTick() uint64 { return c.maxTick }

func (c *Collector) growTo(tick uint64) {
	if tick > c.maxTick {
		c.maxTick = tick
	}
	for uint64(len(c.moveSum)) <= tick {
		c.moveSum = append(c.moveSum, 0)
		c.updates = append(c.updates, 0)
	}
}

// RecordError records one relative-error observation for a node.
// Non-finite values are ignored (a lost ping has no error).
func (c *Collector) RecordError(node int, tick uint64, relErr float64) error {
	if node < 0 || node >= c.nodes {
		//nc:allow(hotpath) range-check return: cold by definition
		return fmt.Errorf("metrics: node %d out of range", node)
	}
	if math.IsNaN(relErr) || math.IsInf(relErr, 0) {
		return nil
	}
	c.growTo(tick)
	c.errs[node].add(tick, relErr)
	return nil
}

// RecordMovement records a coordinate displacement for a node at a tick.
// changed marks an application-level update event (always true for
// system-level streams whenever displacement > 0).
func (c *Collector) RecordMovement(node int, tick uint64, displacement float64, changed bool) error {
	if node < 0 || node >= c.nodes {
		//nc:allow(hotpath) range-check return: cold by definition
		return fmt.Errorf("metrics: node %d out of range", node)
	}
	if math.IsNaN(displacement) || math.IsInf(displacement, 0) || displacement < 0 {
		//nc:allow(hotpath) validation-failure return: cold by definition
		return fmt.Errorf("metrics: displacement %v invalid", displacement)
	}
	c.growTo(tick)
	c.moves[node].add(tick, displacement)
	c.moveSum[tick] += displacement
	if changed {
		c.updates[tick]++
	}
	return nil
}

// PerNodeErrorQuantile returns, for each node with data in [from, to],
// the q-th percentile (0-100) of its relative errors. The result's
// length is the number of nodes with data.
func (c *Collector) PerNodeErrorQuantile(q float64, from, to uint64) ([]float64, error) {
	return perNodeQuantile(c.errs, q, from, to)
}

// PerNodeMovementQuantile is PerNodeErrorQuantile over displacement
// samples (Figure 5's third graph uses q=95).
func (c *Collector) PerNodeMovementQuantile(q float64, from, to uint64) ([]float64, error) {
	return perNodeQuantile(c.moves, q, from, to)
}

func perNodeQuantile(ss []series, q float64, from, to uint64) ([]float64, error) {
	out := make([]float64, 0, len(ss))
	for i := range ss {
		vals := ss[i].slice(from, to)
		if len(vals) == 0 {
			continue
		}
		v, err := stats.Percentile(vals, q)
		if err != nil {
			return nil, fmt.Errorf("per-node quantile: %w", err)
		}
		out = append(out, v)
	}
	return out, nil
}

// AllErrors pools every relative-error sample in [from, to].
func (c *Collector) AllErrors(from, to uint64) []float64 {
	var out []float64
	for i := range c.errs {
		out = append(out, c.errs[i].slice(from, to)...)
	}
	return out
}

// InstabilitySeries returns the aggregate displacement per second for
// every tick in [from, to] — including zeros for quiet seconds, which is
// what makes the application-level CDFs in Figures 11 and 13 sit far to
// the left.
func (c *Collector) InstabilitySeries(from, to uint64) []float64 {
	if len(c.moveSum) == 0 {
		return nil
	}
	if to > c.maxTick {
		to = c.maxTick
	}
	if from > to {
		return nil
	}
	out := make([]float64, 0, to-from+1)
	for t := from; t <= to; t++ {
		out = append(out, c.moveSum[t])
	}
	return out
}

// UpdateFractionSeries returns, per tick in [from, to], the fraction of
// nodes whose coordinate changed that tick.
func (c *Collector) UpdateFractionSeries(from, to uint64) []float64 {
	if len(c.updates) == 0 {
		return nil
	}
	if to > c.maxTick {
		to = c.maxTick
	}
	if from > to {
		return nil
	}
	out := make([]float64, 0, to-from+1)
	for t := from; t <= to; t++ {
		out = append(out, float64(c.updates[t])/float64(c.nodes))
	}
	return out
}

// Summary condenses a measurement window into the numbers the paper's
// tables report.
type Summary struct {
	// MedianRelErr is the median over nodes of per-node median relative
	// error (Table I's "Median Relative Error").
	MedianRelErr float64
	// P95RelErrMedian is the median over nodes of per-node 95th
	// percentile relative error (Figure 13's headline metric).
	P95RelErrMedian float64
	// MedianInstability is the median of the per-second aggregate
	// displacement distribution (Table I's "Instability").
	MedianInstability float64
	// MeanInstability is the mean of the same distribution (Figure 14).
	MeanInstability float64
	// MeanUpdateFraction is the mean per-second fraction of nodes whose
	// coordinate changed (Figure 9's third panel).
	MeanUpdateFraction float64
}

// Summarize computes the Summary over [from, to].
func (c *Collector) Summarize(from, to uint64) (Summary, error) {
	medians, err := c.PerNodeErrorQuantile(50, from, to)
	if err != nil {
		return Summary{}, err
	}
	p95s, err := c.PerNodeErrorQuantile(95, from, to)
	if err != nil {
		return Summary{}, err
	}
	var s Summary
	if len(medians) > 0 {
		if s.MedianRelErr, err = stats.Median(medians); err != nil {
			return Summary{}, err
		}
		if s.P95RelErrMedian, err = stats.Median(p95s); err != nil {
			return Summary{}, err
		}
	}
	inst := c.InstabilitySeries(from, to)
	if len(inst) > 0 {
		if s.MedianInstability, err = stats.Median(inst); err != nil {
			return Summary{}, err
		}
		if s.MeanInstability, err = stats.Mean(inst); err != nil {
			return Summary{}, err
		}
	}
	upd := c.UpdateFractionSeries(from, to)
	if len(upd) > 0 {
		if s.MeanUpdateFraction, err = stats.Mean(upd); err != nil {
			return Summary{}, err
		}
	}
	return s, nil
}

// IntervalStat is one time-bucketed point for Figure 14's convergence
// timelines.
type IntervalStat struct {
	// StartTick is the bucket's inclusive start.
	StartTick uint64
	// MedianRelErr and P95RelErr summarize all error samples in the
	// bucket.
	MedianRelErr float64
	P95RelErr    float64
	// MeanInstability is the mean per-second aggregate displacement.
	MeanInstability float64
	// UpdateFraction is the mean per-second fraction of nodes updated.
	UpdateFraction float64
	// Samples is the number of error observations in the bucket.
	Samples int
}

// Intervals buckets the full run into windows of width ticks
// (Figure 14 uses 600 s).
func (c *Collector) Intervals(width uint64) ([]IntervalStat, error) {
	if width < 1 {
		return nil, fmt.Errorf("metrics: interval width %d, want >= 1", width)
	}
	var out []IntervalStat
	for start := uint64(0); start <= c.maxTick; start += width {
		end := start + width - 1
		st := IntervalStat{StartTick: start}
		errs := c.AllErrors(start, end)
		st.Samples = len(errs)
		if len(errs) > 0 {
			var err error
			if st.MedianRelErr, err = stats.Median(errs); err != nil {
				return nil, err
			}
			if st.P95RelErr, err = stats.Percentile(errs, 95); err != nil {
				return nil, err
			}
		}
		inst := c.InstabilitySeries(start, end)
		if len(inst) > 0 {
			var err error
			if st.MeanInstability, err = stats.Mean(inst); err != nil {
				return nil, err
			}
		}
		upd := c.UpdateFractionSeries(start, end)
		if len(upd) > 0 {
			var err error
			if st.UpdateFraction, err = stats.Mean(upd); err != nil {
				return nil, err
			}
		}
		out = append(out, st)
	}
	return out, nil
}
