package metrics

import (
	"math"
	"testing"
)

func mustCollector(t *testing.T, nodes int) *Collector {
	t.Helper()
	c, err := NewCollector(nodes)
	if err != nil {
		t.Fatalf("NewCollector: %v", err)
	}
	return c
}

func TestNewCollectorValidation(t *testing.T) {
	if _, err := NewCollector(0); err == nil {
		t.Fatal("zero nodes accepted")
	}
	c := mustCollector(t, 3)
	if c.Nodes() != 3 {
		t.Fatalf("Nodes = %d", c.Nodes())
	}
}

func TestRecordErrorValidation(t *testing.T) {
	c := mustCollector(t, 2)
	if err := c.RecordError(-1, 0, 0.5); err == nil {
		t.Fatal("negative node accepted")
	}
	if err := c.RecordError(2, 0, 0.5); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	// NaN/Inf are silently dropped, not errors.
	if err := c.RecordError(0, 0, math.NaN()); err != nil {
		t.Fatalf("NaN error sample: %v", err)
	}
	if err := c.RecordError(0, 0, math.Inf(1)); err != nil {
		t.Fatalf("Inf error sample: %v", err)
	}
	got, err := c.PerNodeErrorQuantile(50, 0, 100)
	if err != nil {
		t.Fatalf("PerNodeErrorQuantile: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("non-finite samples were recorded: %v", got)
	}
}

func TestRecordMovementValidation(t *testing.T) {
	c := mustCollector(t, 2)
	if err := c.RecordMovement(0, 0, -1, false); err == nil {
		t.Fatal("negative displacement accepted")
	}
	if err := c.RecordMovement(0, 0, math.NaN(), false); err == nil {
		t.Fatal("NaN displacement accepted")
	}
	if err := c.RecordMovement(5, 0, 1, false); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestPerNodeErrorQuantile(t *testing.T) {
	c := mustCollector(t, 3)
	// Node 0: errors 0.1..1.0; node 1: constant 0.5; node 2: no data.
	for i := 1; i <= 10; i++ {
		if err := c.RecordError(0, uint64(i), float64(i)/10); err != nil {
			t.Fatalf("RecordError: %v", err)
		}
	}
	for i := 1; i <= 5; i++ {
		if err := c.RecordError(1, uint64(i), 0.5); err != nil {
			t.Fatalf("RecordError: %v", err)
		}
	}
	meds, err := c.PerNodeErrorQuantile(50, 0, 100)
	if err != nil {
		t.Fatalf("PerNodeErrorQuantile: %v", err)
	}
	if len(meds) != 2 {
		t.Fatalf("got %d nodes with data, want 2", len(meds))
	}
	if math.Abs(meds[0]-0.55) > 1e-9 {
		t.Fatalf("node 0 median = %v, want 0.55", meds[0])
	}
	if meds[1] != 0.5 {
		t.Fatalf("node 1 median = %v, want 0.5", meds[1])
	}
}

func TestQuantileWindowFiltering(t *testing.T) {
	c := mustCollector(t, 1)
	// First half bad (1.0), second half good (0.1) — like a warm-up.
	for tick := uint64(0); tick < 100; tick++ {
		v := 1.0
		if tick >= 50 {
			v = 0.1
		}
		if err := c.RecordError(0, tick, v); err != nil {
			t.Fatalf("RecordError: %v", err)
		}
	}
	full, err := c.PerNodeErrorQuantile(50, 0, 99)
	if err != nil {
		t.Fatalf("PerNodeErrorQuantile: %v", err)
	}
	second, err := c.PerNodeErrorQuantile(50, 50, 99)
	if err != nil {
		t.Fatalf("PerNodeErrorQuantile: %v", err)
	}
	if second[0] != 0.1 {
		t.Fatalf("second-half median = %v, want 0.1", second[0])
	}
	if full[0] <= second[0] {
		t.Fatalf("full median %v should exceed second-half %v", full[0], second[0])
	}
}

func TestInstabilitySeries(t *testing.T) {
	c := mustCollector(t, 2)
	// Tick 0: both nodes move 3 and 4; tick 1: nothing; tick 2: one
	// moves 5.
	if err := c.RecordMovement(0, 0, 3, true); err != nil {
		t.Fatalf("RecordMovement: %v", err)
	}
	if err := c.RecordMovement(1, 0, 4, true); err != nil {
		t.Fatalf("RecordMovement: %v", err)
	}
	if err := c.RecordMovement(0, 2, 5, true); err != nil {
		t.Fatalf("RecordMovement: %v", err)
	}
	got := c.InstabilitySeries(0, 2)
	want := []float64{7, 0, 5}
	if len(got) != 3 {
		t.Fatalf("series length %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("series = %v, want %v", got, want)
		}
	}
	// Quiet middle second must appear as zero — that is what the
	// application-level CDFs depend on.
	if got[1] != 0 {
		t.Fatal("quiet second missing from series")
	}
}

func TestInstabilitySeriesWindowClamping(t *testing.T) {
	c := mustCollector(t, 1)
	if err := c.RecordMovement(0, 5, 1, true); err != nil {
		t.Fatalf("RecordMovement: %v", err)
	}
	if got := c.InstabilitySeries(0, 100); len(got) != 6 {
		t.Fatalf("series length %d, want clamped to 6", len(got))
	}
	if got := c.InstabilitySeries(10, 5); got != nil {
		t.Fatalf("inverted window returned %v", got)
	}
}

func TestUpdateFractionSeries(t *testing.T) {
	c := mustCollector(t, 4)
	// Tick 0: 2 of 4 nodes update; tick 1: movement without update.
	if err := c.RecordMovement(0, 0, 1, true); err != nil {
		t.Fatalf("RecordMovement: %v", err)
	}
	if err := c.RecordMovement(1, 0, 1, true); err != nil {
		t.Fatalf("RecordMovement: %v", err)
	}
	if err := c.RecordMovement(2, 1, 1, false); err != nil {
		t.Fatalf("RecordMovement: %v", err)
	}
	got := c.UpdateFractionSeries(0, 1)
	if got[0] != 0.5 {
		t.Fatalf("tick 0 fraction = %v, want 0.5", got[0])
	}
	if got[1] != 0 {
		t.Fatalf("tick 1 fraction = %v, want 0", got[1])
	}
}

func TestSummarize(t *testing.T) {
	c := mustCollector(t, 2)
	for tick := uint64(0); tick < 10; tick++ {
		if err := c.RecordError(0, tick, 0.1); err != nil {
			t.Fatalf("RecordError: %v", err)
		}
		if err := c.RecordError(1, tick, 0.3); err != nil {
			t.Fatalf("RecordError: %v", err)
		}
		if err := c.RecordMovement(0, tick, 2, tick%2 == 0); err != nil {
			t.Fatalf("RecordMovement: %v", err)
		}
		if err := c.RecordMovement(1, tick, 4, false); err != nil {
			t.Fatalf("RecordMovement: %v", err)
		}
	}
	s, err := c.Summarize(0, 9)
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if math.Abs(s.MedianRelErr-0.2) > 1e-9 {
		t.Fatalf("MedianRelErr = %v, want 0.2 (median of {0.1, 0.3})", s.MedianRelErr)
	}
	if s.MedianInstability != 6 {
		t.Fatalf("MedianInstability = %v, want 6", s.MedianInstability)
	}
	if s.MeanInstability != 6 {
		t.Fatalf("MeanInstability = %v, want 6", s.MeanInstability)
	}
	// Node 0 updates on even ticks: fraction alternates 0.5/0 -> mean
	// 0.25.
	if math.Abs(s.MeanUpdateFraction-0.25) > 1e-9 {
		t.Fatalf("MeanUpdateFraction = %v, want 0.25", s.MeanUpdateFraction)
	}
}

func TestSummarizeEmptyWindow(t *testing.T) {
	c := mustCollector(t, 2)
	s, err := c.Summarize(0, 10)
	if err != nil {
		t.Fatalf("Summarize on empty collector: %v", err)
	}
	if s.MedianRelErr != 0 || s.MeanInstability != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestIntervals(t *testing.T) {
	c := mustCollector(t, 1)
	// 30 ticks: error improves by 10-tick interval.
	for tick := uint64(0); tick < 30; tick++ {
		v := 1.0
		switch {
		case tick >= 20:
			v = 0.1
		case tick >= 10:
			v = 0.5
		}
		if err := c.RecordError(0, tick, v); err != nil {
			t.Fatalf("RecordError: %v", err)
		}
		if err := c.RecordMovement(0, tick, v*10, true); err != nil {
			t.Fatalf("RecordMovement: %v", err)
		}
	}
	ivs, err := c.Intervals(10)
	if err != nil {
		t.Fatalf("Intervals: %v", err)
	}
	if len(ivs) != 3 {
		t.Fatalf("%d intervals, want 3", len(ivs))
	}
	if ivs[0].MedianRelErr != 1.0 || ivs[1].MedianRelErr != 0.5 || ivs[2].MedianRelErr != 0.1 {
		t.Fatalf("interval medians: %v %v %v", ivs[0].MedianRelErr, ivs[1].MedianRelErr, ivs[2].MedianRelErr)
	}
	if ivs[0].StartTick != 0 || ivs[1].StartTick != 10 || ivs[2].StartTick != 20 {
		t.Fatal("interval starts wrong")
	}
	if ivs[2].MeanInstability >= ivs[0].MeanInstability {
		t.Fatal("instability should decline across intervals")
	}
	if ivs[0].Samples != 10 {
		t.Fatalf("Samples = %d", ivs[0].Samples)
	}
	if _, err := c.Intervals(0); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestPerNodeMovementQuantile(t *testing.T) {
	c := mustCollector(t, 1)
	for i := 1; i <= 100; i++ {
		if err := c.RecordMovement(0, uint64(i), float64(i), false); err != nil {
			t.Fatalf("RecordMovement: %v", err)
		}
	}
	p95, err := c.PerNodeMovementQuantile(95, 0, 1000)
	if err != nil {
		t.Fatalf("PerNodeMovementQuantile: %v", err)
	}
	if len(p95) != 1 || p95[0] < 94 || p95[0] > 97 {
		t.Fatalf("p95 movement = %v", p95)
	}
}

func TestAllErrorsPools(t *testing.T) {
	c := mustCollector(t, 2)
	if err := c.RecordError(0, 1, 0.1); err != nil {
		t.Fatalf("RecordError: %v", err)
	}
	if err := c.RecordError(1, 2, 0.2); err != nil {
		t.Fatalf("RecordError: %v", err)
	}
	all := c.AllErrors(0, 10)
	if len(all) != 2 {
		t.Fatalf("AllErrors = %v", all)
	}
}

func BenchmarkRecord(b *testing.B) {
	c, err := NewCollector(100)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		node := i % 100
		tick := uint64(i / 100)
		if err := c.RecordError(node, tick, 0.1); err != nil {
			b.Fatal(err)
		}
		if err := c.RecordMovement(node, tick, 1.5, i%7 == 0); err != nil {
			b.Fatal(err)
		}
	}
}
