package coord

import "testing"

// FuzzDecode drives the binary coordinate decoder with arbitrary bytes:
// no panics, and accepted coordinates must round-trip.
func FuzzDecode(f *testing.F) {
	for _, c := range []Coordinate{
		New(1, 2, 3),
		Origin(0),
		{Vec: New(1, 2).Vec, Height: 5},
	} {
		buf, err := c.Encode(nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		if len(buf) > 2 {
			f.Add(buf[:len(buf)-1])
		}
	}
	f.Add([]byte{255})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, rest, err := Decode(data)
		if err != nil {
			return
		}
		buf, err := c.Encode(nil)
		if err != nil {
			t.Fatalf("accepted coordinate failed to encode: %v", err)
		}
		back, _, err := Decode(buf)
		if err != nil {
			t.Fatalf("re-encoded coordinate failed to decode: %v", err)
		}
		// NaN components compare unequal to themselves; Equal is only
		// guaranteed for non-NaN payloads, so compare via encoding.
		buf2, err := back.Encode(nil)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if string(buf) != string(buf2) {
			t.Fatal("round trip changed the encoding")
		}
		_ = rest
	})
}
