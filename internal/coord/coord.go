// Package coord defines the network coordinate type shared by the Vivaldi
// engine, the change-detection heuristics, and the wire protocol.
//
// A Coordinate is a point in a low-dimensional Euclidean space whose
// pairwise distances estimate round-trip latency in milliseconds. The
// paper's experiments use a pure three-dimensional metric space; an
// optional non-Euclidean height term (Dabek et al.'s model for access-link
// latency) is supported but defaults to zero so that distances reduce to
// the plain Euclidean metric.
package coord

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"netcoord/internal/vec"
)

// DefaultDimension is the coordinate dimensionality used throughout the
// paper's evaluation ("We present results using three dimensions").
const DefaultDimension = 3

// ErrInvalid is returned when a coordinate fails validation — wrong
// dimension, NaN/Inf components, or a negative height. Coordinates
// received from the network must be validated before they are allowed to
// tug on local state.
var ErrInvalid = errors.New("coord: invalid coordinate")

// Coordinate is a position in the latency space. Units are milliseconds:
// the distance between two coordinates estimates the round-trip time
// between their nodes.
//
// Coordinate values are treated as immutable once published; operations
// return new values rather than mutating in place.
type Coordinate struct {
	// Vec is the Euclidean component of the coordinate.
	Vec vec.Vector
	// Height is the non-Euclidean access-link component. The effective
	// distance between nodes i and j is ||vec_i - vec_j|| + h_i + h_j.
	// Always >= 0; zero disables the height model.
	Height float64
}

// Origin returns the zero coordinate of the given dimension, where every
// node begins before its first observation.
func Origin(dim int) Coordinate {
	return Coordinate{Vec: vec.Zero(dim)}
}

// New builds a coordinate from Euclidean components with zero height.
func New(components ...float64) Coordinate {
	return Coordinate{Vec: vec.New(components...)}
}

// Clone returns an independent deep copy of c.
func (c Coordinate) Clone() Coordinate {
	return Coordinate{Vec: c.Vec.Clone(), Height: c.Height}
}

// CopyFrom overwrites c with other, reusing c's backing vector when the
// dimensions match so steady-state copies perform no allocation. It is
// the in-place counterpart of Clone for hot paths that maintain a
// long-lived scratch coordinate.
func (c *Coordinate) CopyFrom(other Coordinate) {
	if c.Vec.Set(other.Vec) != nil {
		// Dimension changed: fall back to a fresh clone.
		//nc:allow(hotpath) dimension-change fallback: cold by definition
		c.Vec = other.Vec.Clone()
	}
	c.Height = other.Height
}

// Dim reports the Euclidean dimensionality of the coordinate.
func (c Coordinate) Dim() int { return c.Vec.Dim() }

// Validate checks that the coordinate is safe to use: the expected
// dimension, finite components, and a finite non-negative height.
func (c Coordinate) Validate(dim int) error {
	if c.Vec.Dim() != dim {
		//nc:allow(hotpath) validation-failure return: cold by definition
		return fmt.Errorf("%w: dimension %d, want %d", ErrInvalid, c.Vec.Dim(), dim)
	}
	if !c.Vec.IsFinite() {
		//nc:allow(hotpath) validation-failure return: cold by definition
		return fmt.Errorf("%w: non-finite component in %v", ErrInvalid, c.Vec)
	}
	if math.IsNaN(c.Height) || math.IsInf(c.Height, 0) || c.Height < 0 {
		//nc:allow(hotpath) validation-failure return: cold by definition
		return fmt.Errorf("%w: height %v", ErrInvalid, c.Height)
	}
	return nil
}

// DistanceTo returns the estimated round-trip time in milliseconds
// between c and other: the Euclidean distance plus both heights.
func (c Coordinate) DistanceTo(other Coordinate) (float64, error) {
	d, err := c.Vec.Dist(other.Vec)
	if err != nil {
		//nc:allow(hotpath) dimension-mismatch return: cold by definition
		return 0, fmt.Errorf("coordinate distance: %w", err)
	}
	return d + c.Height + other.Height, nil
}

// DisplacementFrom returns the magnitude of coordinate movement from prev
// to c — the quantity summed by the paper's instability metric. Height
// changes contribute their absolute delta, consistent with heights being
// part of the distance estimate.
func (c Coordinate) DisplacementFrom(prev Coordinate) (float64, error) {
	d, err := c.Vec.Dist(prev.Vec)
	if err != nil {
		//nc:allow(hotpath) dimension-mismatch return: cold by definition
		return 0, fmt.Errorf("coordinate displacement: %w", err)
	}
	return d + math.Abs(c.Height-prev.Height), nil
}

// Equal reports exact equality of position and height.
func (c Coordinate) Equal(other Coordinate) bool {
	return c.Height == other.Height && c.Vec.Equal(other.Vec)
}

// String renders the coordinate for logs and debugging.
func (c Coordinate) String() string {
	if c.Height == 0 {
		return c.Vec.String()
	}
	return fmt.Sprintf("%s+h%.3f", c.Vec, c.Height)
}

// coordinateJSON is the stable wire-adjacent JSON representation.
type coordinateJSON struct {
	Vec    []float64 `json:"vec"`
	Height float64   `json:"height,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (c Coordinate) MarshalJSON() ([]byte, error) {
	return json.Marshal(coordinateJSON{Vec: c.Vec, Height: c.Height})
}

// UnmarshalJSON implements json.Unmarshaler.
func (c *Coordinate) UnmarshalJSON(data []byte) error {
	var raw coordinateJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("unmarshal coordinate: %w", err)
	}
	c.Vec = vec.New(raw.Vec...)
	c.Height = raw.Height
	return nil
}

// Centroid returns the arithmetic mean of the given coordinates —
// the value the window-based heuristics publish as the application-level
// coordinate. Heights average as well.
func Centroid(cs []Coordinate) (Coordinate, error) {
	if len(cs) == 0 {
		return Coordinate{}, errors.New("coord: centroid of empty set")
	}
	vs := make([]vec.Vector, len(cs))
	var h float64
	for i, c := range cs {
		vs[i] = c.Vec
		h += c.Height
	}
	mean, err := vec.Centroid(vs)
	if err != nil {
		return Coordinate{}, fmt.Errorf("coordinate centroid: %w", err)
	}
	return Coordinate{Vec: mean, Height: h / float64(len(cs))}, nil
}
