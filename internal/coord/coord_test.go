package coord

import (
	"encoding/json"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"netcoord/internal/vec"
)

func TestOrigin(t *testing.T) {
	c := Origin(3)
	if c.Dim() != 3 {
		t.Fatalf("Dim = %d, want 3", c.Dim())
	}
	if c.Height != 0 {
		t.Fatalf("Height = %v, want 0", c.Height)
	}
	for i, comp := range c.Vec {
		if comp != 0 {
			t.Fatalf("component %d = %v, want 0", i, comp)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	c := New(1, 2, 3)
	d := c.Clone()
	d.Vec[0] = 99
	if c.Vec[0] != 1 {
		t.Fatal("Clone aliased the underlying vector")
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		c       Coordinate
		dim     int
		wantErr bool
	}{
		{name: "valid", c: New(1, 2, 3), dim: 3},
		{name: "valid with height", c: Coordinate{Vec: vec.New(1, 2, 3), Height: 5}, dim: 3},
		{name: "wrong dimension", c: New(1, 2), dim: 3, wantErr: true},
		{name: "nan component", c: New(1, math.NaN(), 3), dim: 3, wantErr: true},
		{name: "inf component", c: New(math.Inf(1), 0, 0), dim: 3, wantErr: true},
		{name: "negative height", c: Coordinate{Vec: vec.New(1, 2, 3), Height: -1}, dim: 3, wantErr: true},
		{name: "nan height", c: Coordinate{Vec: vec.New(1, 2, 3), Height: math.NaN()}, dim: 3, wantErr: true},
		{name: "inf height", c: Coordinate{Vec: vec.New(1, 2, 3), Height: math.Inf(1)}, dim: 3, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.c.Validate(tt.dim)
			if tt.wantErr {
				if !errors.Is(err, ErrInvalid) {
					t.Fatalf("Validate = %v, want ErrInvalid", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Validate: %v", err)
			}
		})
	}
}

func TestDistanceTo(t *testing.T) {
	tests := []struct {
		name string
		a, b Coordinate
		want float64
	}{
		{name: "pure euclidean", a: New(0, 0, 0), b: New(3, 4, 0), want: 5},
		{
			name: "heights add",
			a:    Coordinate{Vec: vec.New(0, 0, 0), Height: 2},
			b:    Coordinate{Vec: vec.New(3, 4, 0), Height: 1},
			want: 8,
		},
		{name: "identical", a: New(1, 1, 1), b: New(1, 1, 1), want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tt.a.DistanceTo(tt.b)
			if err != nil {
				t.Fatalf("DistanceTo: %v", err)
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("DistanceTo = %v, want %v", got, tt.want)
			}
			// Distance must be symmetric.
			rev, err := tt.b.DistanceTo(tt.a)
			if err != nil {
				t.Fatalf("reverse DistanceTo: %v", err)
			}
			if rev != got {
				t.Fatalf("asymmetric distance: %v vs %v", got, rev)
			}
		})
	}
}

func TestDistanceToDimensionMismatch(t *testing.T) {
	if _, err := New(1, 2).DistanceTo(New(1, 2, 3)); err == nil {
		t.Fatal("DistanceTo across dimensions succeeded, want error")
	}
}

func TestDisplacementFrom(t *testing.T) {
	a := Coordinate{Vec: vec.New(0, 0, 0), Height: 1}
	b := Coordinate{Vec: vec.New(3, 4, 0), Height: 3}
	got, err := b.DisplacementFrom(a)
	if err != nil {
		t.Fatalf("DisplacementFrom: %v", err)
	}
	if got != 7 { // 5 euclidean + |3-1| height
		t.Fatalf("DisplacementFrom = %v, want 7", got)
	}
}

func TestEqual(t *testing.T) {
	a := New(1, 2, 3)
	if !a.Equal(New(1, 2, 3)) {
		t.Fatal("identical coordinates not Equal")
	}
	if a.Equal(New(1, 2, 4)) {
		t.Fatal("different coordinates Equal")
	}
	if a.Equal(Coordinate{Vec: vec.New(1, 2, 3), Height: 1}) {
		t.Fatal("different heights Equal")
	}
}

func TestString(t *testing.T) {
	if got := New(1, 2).String(); got != "[1.000, 2.000]" {
		t.Fatalf("String = %q", got)
	}
	withHeight := Coordinate{Vec: vec.New(1, 2), Height: 3}
	if got := withHeight.String(); got != "[1.000, 2.000]+h3.000" {
		t.Fatalf("String with height = %q", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := Coordinate{Vec: vec.New(1.5, -2.25, 3), Height: 0.75}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Coordinate
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !back.Equal(orig) {
		t.Fatalf("round trip: got %v, want %v", back, orig)
	}
}

func TestJSONUnmarshalInvalid(t *testing.T) {
	var c Coordinate
	if err := json.Unmarshal([]byte(`{"vec": "nope"}`), &c); err == nil {
		t.Fatal("Unmarshal of invalid JSON succeeded")
	}
}

func TestCentroid(t *testing.T) {
	cs := []Coordinate{
		{Vec: vec.New(0, 0), Height: 1},
		{Vec: vec.New(2, 4), Height: 3},
	}
	got, err := Centroid(cs)
	if err != nil {
		t.Fatalf("Centroid: %v", err)
	}
	if !got.Vec.Equal(vec.New(1, 2)) || got.Height != 2 {
		t.Fatalf("Centroid = %v", got)
	}
}

func TestCentroidEmpty(t *testing.T) {
	if _, err := Centroid(nil); err == nil {
		t.Fatal("Centroid of empty set succeeded")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		c    Coordinate
	}{
		{name: "3d", c: New(1.5, -2.5, 1e6)},
		{name: "3d with height", c: Coordinate{Vec: vec.New(0.1, 0.2, 0.3), Height: 12.5}},
		{name: "2d", c: New(-7, 9)},
		{name: "0d", c: Origin(0)},
		{name: "8d", c: New(1, 2, 3, 4, 5, 6, 7, 8)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			buf, err := tt.c.Encode(nil)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			if len(buf) != EncodedSize(tt.c.Dim()) {
				t.Fatalf("encoded %d bytes, want %d", len(buf), EncodedSize(tt.c.Dim()))
			}
			got, rest, err := Decode(buf)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if len(rest) != 0 {
				t.Fatalf("Decode left %d bytes", len(rest))
			}
			if !got.Equal(tt.c) {
				t.Fatalf("round trip: got %v, want %v", got, tt.c)
			}
		})
	}
}

func TestDecodeLeavesTrailingBytes(t *testing.T) {
	buf, err := New(1, 2, 3).Encode(nil)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	buf = append(buf, 0xAA, 0xBB)
	_, rest, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(rest) != 2 || rest[0] != 0xAA {
		t.Fatalf("rest = %x, want aa bb", rest)
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		buf  []byte
	}{
		{name: "empty", buf: nil},
		{name: "truncated", buf: []byte{3, 0, 0}},
		{name: "oversized dimension", buf: []byte{200}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := Decode(tt.buf); !errors.Is(err, ErrInvalid) {
				t.Fatalf("Decode = %v, want ErrInvalid", err)
			}
		})
	}
}

func TestEncodeRejectsOversizedDimension(t *testing.T) {
	c := Origin(MaxDimension + 1)
	if _, err := c.Encode(nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("Encode = %v, want ErrInvalid", err)
	}
}

// Property: binary encode/decode is lossless for arbitrary finite
// coordinates.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(a, b, c float64, h float64) bool {
		sanitize := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return x
		}
		orig := Coordinate{
			Vec:    vec.New(sanitize(a), sanitize(b), sanitize(c)),
			Height: math.Abs(sanitize(h)),
		}
		buf, err := orig.Encode(nil)
		if err != nil {
			return false
		}
		got, rest, err := Decode(buf)
		return err == nil && len(rest) == 0 && got.Equal(orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality holds for the height-augmented metric.
func TestHeightMetricTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, ha, hb, hc float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(x, 1e4)
		}
		a := Coordinate{Vec: vec.New(clamp(ax), clamp(ay)), Height: math.Abs(clamp(ha))}
		b := Coordinate{Vec: vec.New(clamp(bx), clamp(by)), Height: math.Abs(clamp(hb))}
		c := Coordinate{Vec: vec.New(clamp(cx), clamp(cy)), Height: math.Abs(clamp(hc))}
		ab, _ := a.DistanceTo(b)
		bc, _ := b.DistanceTo(c)
		ac, _ := a.DistanceTo(c)
		return ac <= ab+bc+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDistanceTo(b *testing.B) {
	x, y := New(1, 2, 3), New(4, 5, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := x.DistanceTo(y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	c := New(1, 2, 3)
	buf := make([]byte, 0, EncodedSize(3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = c.Encode(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func TestCopyFrom(t *testing.T) {
	dst := Origin(3)
	buf := dst.Vec // backing array must be reused on same-dim copies
	src := Coordinate{Vec: []float64{1, 2, 3}, Height: 4}
	dst.CopyFrom(src)
	if !dst.Equal(src) {
		t.Fatalf("CopyFrom = %v, want %v", dst, src)
	}
	if &buf[0] != &dst.Vec[0] {
		t.Fatal("same-dimension CopyFrom reallocated the vector")
	}
	// Mutating the source afterwards must not leak into the copy.
	src.Vec[0] = 99
	if dst.Vec[0] == 99 {
		t.Fatal("CopyFrom aliased the source")
	}
	// Dimension change falls back to a fresh clone.
	var zero Coordinate
	zero.CopyFrom(src)
	if !zero.Equal(src) {
		t.Fatalf("growing CopyFrom = %v, want %v", zero, src)
	}
	allocs := testing.AllocsPerRun(100, func() { dst.CopyFrom(src) })
	if allocs != 0 {
		t.Fatalf("same-dimension CopyFrom allocated %v per run", allocs)
	}
}
