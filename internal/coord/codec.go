package coord

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary layout (big endian):
//
//	uint8   dimension d (max 16)
//	d × float64 components
//	float64 height
//
// The cap on dimension bounds the allocation triggered by a hostile
// packet; real systems use 2-8 dimensions.
const (
	// MaxDimension bounds the coordinate dimensionality accepted on the
	// wire.
	MaxDimension = 16
	float64Size  = 8
)

// EncodedSize returns the number of bytes Encode will produce for a
// coordinate of the given dimension.
func EncodedSize(dim int) int {
	return 1 + dim*float64Size + float64Size
}

// Encode appends the binary form of c to dst and returns the extended
// slice.
func (c Coordinate) Encode(dst []byte) ([]byte, error) {
	if c.Dim() > MaxDimension {
		return nil, fmt.Errorf("%w: dimension %d exceeds wire maximum %d", ErrInvalid, c.Dim(), MaxDimension)
	}
	dst = append(dst, byte(c.Dim()))
	for _, comp := range c.Vec {
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(comp))
	}
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(c.Height))
	return dst, nil
}

// Decode parses a coordinate from the front of src, returning the
// coordinate and the remaining bytes. The caller should still Validate
// the result against its expected dimension.
func Decode(src []byte) (Coordinate, []byte, error) {
	if len(src) < 1 {
		return Coordinate{}, nil, fmt.Errorf("%w: empty buffer", ErrInvalid)
	}
	dim := int(src[0])
	if dim > MaxDimension {
		return Coordinate{}, nil, fmt.Errorf("%w: wire dimension %d exceeds maximum %d", ErrInvalid, dim, MaxDimension)
	}
	need := EncodedSize(dim)
	if len(src) < need {
		return Coordinate{}, nil, fmt.Errorf("%w: truncated coordinate (%d bytes, need %d)", ErrInvalid, len(src), need)
	}
	c := Origin(dim)
	off := 1
	for i := 0; i < dim; i++ {
		c.Vec[i] = math.Float64frombits(binary.BigEndian.Uint64(src[off:]))
		off += float64Size
	}
	c.Height = math.Float64frombits(binary.BigEndian.Uint64(src[off:]))
	off += float64Size
	return c, src[off:], nil
}
