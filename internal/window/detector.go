package window

import (
	"fmt"

	"netcoord/internal/vec"
)

// Detector decides whether a full window pair has diverged — i.e. whether
// the coordinate stream has undergone a significant change. The two
// multi-dimensional tests from the paper are provided; both only fire
// when the pair is full.
type Detector interface {
	// Diverged reports whether Ws and Wc differ significantly. Only
	// meaningful when p.Full(); implementations return false otherwise.
	Diverged(p *Pair) (bool, error)
}

// EnergyDetector fires when the energy statistic e(Ws, Wc) exceeds a
// threshold tau. The paper uses tau = 8 with window size 32 on PlanetLab.
type EnergyDetector struct {
	// Tau is the energy threshold (milliseconds scale, like the
	// coordinate space).
	Tau float64
}

// NewEnergyDetector validates and builds an EnergyDetector.
func NewEnergyDetector(tau float64) (*EnergyDetector, error) {
	if tau <= 0 {
		return nil, fmt.Errorf("window: energy threshold %v, want > 0", tau)
	}
	return &EnergyDetector{Tau: tau}, nil
}

// Diverged implements Detector.
func (d *EnergyDetector) Diverged(p *Pair) (bool, error) {
	if !p.Full() {
		return false, nil
	}
	e, err := p.Energy()
	if err != nil {
		return false, fmt.Errorf("energy detector: %w", err)
	}
	return e > d.Tau, nil
}

// RelativeDetector fires when the centroid displacement between the two
// windows, normalized by the distance from C(Ws) to the node's nearest
// known neighbor r, exceeds epsilon:
//
//	||C(Ws) - C(Wc)|| / ||C(Ws) - r|| > epsilon
//
// The normalization makes updates "relative to the node's locale": a
// 5 ms wobble is significant inside a metro cluster and noise across an
// ocean. The paper uses epsilon = 0.3 with window size 32.
type RelativeDetector struct {
	// Epsilon is the relative-change threshold.
	Epsilon float64
}

// NewRelativeDetector validates and builds a RelativeDetector.
func NewRelativeDetector(epsilon float64) (*RelativeDetector, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("window: relative threshold %v, want > 0", epsilon)
	}
	return &RelativeDetector{Epsilon: epsilon}, nil
}

// DivergedFrom reports divergence given the nearest neighbor's coordinate
// vector. hasNeighbor is false while the node has not yet learned any
// neighbor coordinate; the detector never fires then (there is no locale
// to be relative to).
func (d *RelativeDetector) DivergedFrom(p *Pair, neighbor vec.Vector, hasNeighbor bool) (bool, error) {
	if !p.Full() || !hasNeighbor {
		return false, nil
	}
	cs, err := p.StartCentroid()
	if err != nil {
		return false, fmt.Errorf("relative detector: %w", err)
	}
	cc, err := p.CurrentCentroid()
	if err != nil {
		return false, fmt.Errorf("relative detector: %w", err)
	}
	moved, err := cs.Dist(cc)
	if err != nil {
		return false, fmt.Errorf("relative detector: %w", err)
	}
	scale, err := cs.Dist(neighbor)
	if err != nil {
		return false, fmt.Errorf("relative detector: %w", err)
	}
	if scale <= 0 {
		// The neighbor sits exactly on the start centroid; any movement
		// at all is infinitely significant relative to a zero locale.
		return moved > 0, nil
	}
	return moved/scale > d.Epsilon, nil
}
