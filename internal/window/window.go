// Package window implements the two-window change-detection scheme the
// paper borrows from Kifer, Ben-David and Gehrke (VLDB 2004) and applies
// to streams of network coordinates (Section V-A).
//
// A single stream S = {s0, s1, ...} is split into two sets of size k:
// Ws, the frozen *start* window holding the first k elements since the
// last change point, and Wc, the sliding *current* window holding the most
// recent k elements. Once both are full, each new element slides Wc and
// the two windows are compared with a statistical distance; when they are
// declared different, a change point is recorded and both windows restart
// from empty.
//
// The package maintains the Szekely-Rizzo energy statistic between Ws and
// Wc incrementally: sliding Wc by one element updates the cross-window and
// within-window distance sums in O(k) instead of recomputing the O(k^2)
// definition, which matters because the detector runs on every coordinate
// observation of every node.
package window

import (
	"fmt"

	"netcoord/internal/vec"
)

// Pair manages the start window Ws and current window Wc over a stream of
// multi-dimensional points, with incremental energy bookkeeping.
//
// All per-element storage is allocated once at construction: Append
// copies each point into preallocated slots, so the steady-state
// append-and-slide path performs zero heap allocations — it runs once
// per coordinate observation of every simulated node.
//
// Pair is not safe for concurrent use.
type Pair struct {
	k   int
	dim int

	start    []vec.Vector // Ws slots; the first startLen hold the frozen window
	startLen int
	current  []vec.Vector // Wc slots: ring, oldest at head
	head     int          // ring index of oldest element of current
	curLen   int

	// Incremental sums for the energy statistic. Valid whenever both
	// windows are full (maintained from the moment they fill).
	//
	// sumCross  = sum over a in Ws, b in Wc of ||a-b||
	// sumWithinS = full double sum over Ws (both orders, diagonal zero)
	// sumWithinC = full double sum over Wc
	sumCross   float64
	sumWithinS float64
	sumWithinC float64
	sumsValid  bool

	// startCentroid caches C(Ws) in a preallocated buffer; the paper
	// notes this cacheability as one of RELATIVE's virtues.
	startCentroid    vec.Vector
	startCentroidSet bool
	// curCentroid is the reusable output buffer for CurrentCentroid.
	curCentroid vec.Vector
}

// NewPair builds a window pair with windows of size k over points of the
// given dimension.
func NewPair(k, dim int) (*Pair, error) {
	if k < 1 {
		return nil, fmt.Errorf("window: size %d, want >= 1", k)
	}
	if dim < 1 {
		return nil, fmt.Errorf("window: dimension %d, want >= 1", dim)
	}
	p := &Pair{
		k:             k,
		dim:           dim,
		start:         make([]vec.Vector, k),
		current:       make([]vec.Vector, k),
		startCentroid: vec.Zero(dim),
		curCentroid:   vec.Zero(dim),
	}
	for i := 0; i < k; i++ {
		p.start[i] = vec.Zero(dim)
		p.current[i] = vec.Zero(dim)
	}
	return p, nil
}

// K returns the configured window size.
func (p *Pair) K() int { return p.k }

// Full reports whether both windows hold k elements, i.e. whether the
// change test is currently defined.
func (p *Pair) Full() bool { return p.startLen == p.k && p.curLen == p.k }

// Append adds the next stream element. The element is copied into
// preallocated storage, so the caller may reuse its buffer and the
// steady-state path allocates nothing. Returns an error on dimension
// mismatch.
func (p *Pair) Append(v vec.Vector) error {
	if v.Dim() != p.dim {
		return fmt.Errorf("window: append %d-dim point to %d-dim pair: %w", v.Dim(), p.dim, vec.ErrDimensionMismatch)
	}

	// Phase 1: both windows fill together ("As each element si arrives,
	// it is added to Ws and Wc until they are both of size k").
	if p.startLen < p.k {
		copy(p.start[p.startLen], v)
		copy(p.current[p.curLen], v)
		p.startLen++
		p.curLen++
		p.head = 0
		if p.startLen == p.k {
			p.initSums()
		}
		return nil
	}

	// Phase 2: Ws is frozen, Wc slides. The sums are updated while the
	// departing element still occupies its slot, then the slot is
	// overwritten in place.
	old := p.current[p.head]
	p.slideSums(old, v)
	copy(old, v)
	p.head = (p.head + 1) % p.k
	return nil
}

// Reset clears both windows; called after a change point is declared
// ("both windows Ws and Wc are cleared and the process begins again").
func (p *Pair) Reset() {
	p.startLen = 0
	p.curLen = 0
	p.head = 0
	p.sumsValid = false
	p.startCentroidSet = false
}

// Start returns the frozen start window in arrival order. The returned
// slice aliases internal storage and must not be modified.
func (p *Pair) Start() []vec.Vector { return p.start[:p.startLen] }

// Current returns the current window in arrival order (oldest first).
// The slice itself is freshly allocated, but its elements alias the
// pair's slot storage: they are overwritten by later Appends and must
// not be modified.
func (p *Pair) Current() []vec.Vector {
	out := make([]vec.Vector, 0, p.curLen)
	for i := 0; i < p.curLen; i++ {
		out = append(out, p.current[(p.head+i)%p.k])
	}
	return out
}

// StartCentroid returns C(Ws), cached after first computation. The
// returned vector aliases an internal buffer and must not be modified;
// it is valid until the next Reset.
func (p *Pair) StartCentroid() (vec.Vector, error) {
	if !p.Full() {
		return nil, fmt.Errorf("window: centroid requested before windows full")
	}
	if !p.startCentroidSet {
		meanInto(p.startCentroid, p.start[:p.startLen], 0, p.k)
		p.startCentroidSet = true
	}
	return p.startCentroid, nil
}

// CurrentCentroid returns C(Wc). The returned vector aliases a reusable
// internal buffer and must not be modified; it is valid until the next
// CurrentCentroid call.
func (p *Pair) CurrentCentroid() (vec.Vector, error) {
	if !p.Full() {
		return nil, fmt.Errorf("window: centroid requested before windows full")
	}
	meanInto(p.curCentroid, p.current, p.head, p.k)
	return p.curCentroid, nil
}

// meanInto computes the arithmetic mean of the ring window slots into
// dst without allocating, summing in arrival order (oldest first, from
// head) so the result is independent of the ring's physical layout.
func meanInto(dst vec.Vector, slots []vec.Vector, head, k int) {
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < len(slots); i++ {
		s := slots[(head+i)%k]
		for j := range dst {
			dst[j] += s[j]
		}
	}
	dst.ScaleInPlace(1 / float64(len(slots)))
}

// Energy returns the Szekely-Rizzo energy statistic e(Ws, Wc), maintained
// incrementally. Only defined when both windows are full.
func (p *Pair) Energy() (float64, error) {
	if !p.Full() {
		return 0, fmt.Errorf("window: energy requested before windows full")
	}
	if !p.sumsValid {
		p.initSums()
	}
	n := float64(p.k)
	// e(A,B) = (n1 n2/(n1+n2)) (2 S_AB/(n1 n2) - S_AA/n1^2 - S_BB/n2^2)
	// with n1 = n2 = k.
	return (n * n / (2 * n)) *
		(2/(n*n)*p.sumCross - p.sumWithinS/(n*n) - p.sumWithinC/(n*n)), nil
}

// initSums computes the three distance sums from scratch (O(k^2)); called
// once when the windows first fill, and as a fallback if sums were
// invalidated. It runs directly over the slot arrays — the windows have
// just filled, so slot order is arrival order, and the sums are
// order-invariant pair aggregates anyway — to avoid materializing a
// temporary window copy.
func (p *Pair) initSums() {
	start := p.start[:p.startLen]
	cur := p.current[:p.curLen]
	p.sumCross = 0
	for _, a := range start {
		for _, b := range cur {
			p.sumCross += mustDist(a, b)
		}
	}
	p.sumWithinS = 0
	for i := range start {
		for j := i + 1; j < len(start); j++ {
			p.sumWithinS += 2 * mustDist(start[i], start[j])
		}
	}
	p.sumWithinC = 0
	for i := range cur {
		for j := i + 1; j < len(cur); j++ {
			p.sumWithinC += 2 * mustDist(cur[i], cur[j])
		}
	}
	p.sumsValid = true
}

// slideSums updates the distance sums for Wc dropping old and gaining nw.
// O(k) work.
func (p *Pair) slideSums(old, nw vec.Vector) {
	if !p.sumsValid {
		return // will be rebuilt lazily by Energy
	}
	for _, a := range p.start {
		p.sumCross += mustDist(a, nw) - mustDist(a, old)
	}
	// Remove old's distances to the other current members, add nw's.
	// old sits at p.head and is excluded from its own sum (distance 0).
	for i := 0; i < p.k; i++ {
		if i == p.head {
			continue
		}
		m := p.current[i]
		p.sumWithinC -= 2 * mustDist(m, old)
		p.sumWithinC += 2 * mustDist(m, nw)
	}
	// nw replaces old in the ring before the next slide, and the nw<->old
	// cross term was handled above by skipping index head for old and
	// then... careful: nw's distance to old must not be included because
	// old leaves the window. The loop above adds nw's distance to every
	// *remaining* member (excluding the departing old), which is exactly
	// right.
}

// mustDist returns the distance between two vectors of equal dimension.
// Dimension equality is enforced at Append, so the error path is
// unreachable; a zero fallback keeps the no-panic policy.
func mustDist(a, b vec.Vector) float64 {
	d, err := a.Dist(b)
	if err != nil {
		return 0
	}
	return d
}
