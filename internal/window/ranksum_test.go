package window

import (
	"math"
	"testing"

	"netcoord/internal/vec"
	"netcoord/internal/xrand"
)

func TestRankSumDetectorValidation(t *testing.T) {
	if _, err := NewRankSumDetector(0); err == nil {
		t.Fatal("z=0 accepted")
	}
	if _, err := NewRankSumDetector(-1); err == nil {
		t.Fatal("z<0 accepted")
	}
}

func TestRankSumDetectorNotFull(t *testing.T) {
	det, err := NewRankSumDetector(1.96)
	if err != nil {
		t.Fatalf("NewRankSumDetector: %v", err)
	}
	p := mustPair(t, 8, 3)
	if fired, err := det.Diverged(p); err != nil || fired {
		t.Fatalf("empty pair: fired=%v err=%v", fired, err)
	}
}

func TestRankSumDetectorStationaryQuiet(t *testing.T) {
	rng := xrand.NewStream(21)
	det, err := NewRankSumDetector(2.5)
	if err != nil {
		t.Fatalf("NewRankSumDetector: %v", err)
	}
	p := mustPair(t, 32, 3)
	appendN(t, p, cloud(rng, 200, 50, 50, 50, 1))
	fired, err := det.Diverged(p)
	if err != nil {
		t.Fatalf("Diverged: %v", err)
	}
	if fired {
		t.Fatal("rank-sum fired on a stationary stream")
	}
}

func TestRankSumDetectorCatchesRadialShift(t *testing.T) {
	// A shift away from the start centroid changes the projected
	// distances: the 1-D test sees it.
	rng := xrand.NewStream(22)
	det, err := NewRankSumDetector(1.96)
	if err != nil {
		t.Fatalf("NewRankSumDetector: %v", err)
	}
	p := mustPair(t, 32, 3)
	appendN(t, p, cloud(rng, 32, 50, 50, 50, 1))
	appendN(t, p, cloud(rng, 32, 90, 50, 50, 1))
	fired, err := det.Diverged(p)
	if err != nil {
		t.Fatalf("Diverged: %v", err)
	}
	if !fired {
		t.Fatal("rank-sum missed a 40 ms radial shift")
	}
}

// The documented blind spot: if the start window is spread on a ring
// around its centroid and the current window collapses onto one point of
// that same ring, every point in both windows sits ~radius away from
// C(Ws) — the projected 1-D distributions match and rank-sum stays
// silent, while the energy statistic sees the massive distributional
// change. This is exactly why the paper needed multi-dimensional tests.
func TestRankSumDetectorBlindToEqualRadiusChange(t *testing.T) {
	rng := xrand.NewStream(23)
	rs, err := NewRankSumDetector(1.96)
	if err != nil {
		t.Fatalf("NewRankSumDetector: %v", err)
	}
	en, err := NewEnergyDetector(8)
	if err != nil {
		t.Fatalf("NewEnergyDetector: %v", err)
	}
	const radius = 30.0
	p := mustPair(t, 32, 3)
	// Start window: a ring of radius 30 around (50, 50, 0).
	for i := 0; i < 32; i++ {
		theta := 2 * math.Pi * float64(i) / 32
		p.appendForTest(t, vec.New(
			50+radius*math.Cos(theta)+rng.Normal(0, 0.2),
			50+radius*math.Sin(theta)+rng.Normal(0, 0.2),
			0))
	}
	// Current window: collapsed onto one spot of the same ring.
	for i := 0; i < 32; i++ {
		p.appendForTest(t, vec.New(50+radius+rng.Normal(0, 0.2), 50+rng.Normal(0, 0.2), 0))
	}
	rsFired, err := rs.Diverged(p)
	if err != nil {
		t.Fatalf("rank-sum Diverged: %v", err)
	}
	enFired, err := en.Diverged(p)
	if err != nil {
		t.Fatalf("energy Diverged: %v", err)
	}
	if rsFired {
		t.Fatal("rank-sum detected the equal-radius change; the blind spot should exist")
	}
	if !enFired {
		t.Fatal("energy missed a ring-collapse distributional change")
	}
}

// appendForTest is a test helper with error checking.
func (p *Pair) appendForTest(t *testing.T, v vec.Vector) {
	t.Helper()
	if err := p.Append(v); err != nil {
		t.Fatalf("Append: %v", err)
	}
}
