package window

import (
	"fmt"
	"math"

	"netcoord/internal/stats"
	"netcoord/internal/vec"
)

// RankSumDetector adapts the one-dimensional Wilcoxon rank-sum test —
// the kind of "well-known statistical test" Kifer, Ben-David and Gehrke
// built their stream change detector on — to coordinate streams by
// projecting both windows onto a single dimension: each point's distance
// from the start window's centroid.
//
// The paper notes that the standard tests "are all for one-dimensional
// data" and introduces ENERGY and RELATIVE instead; this detector is the
// natural 1-D baseline they are implicitly compared against. Its known
// blind spot — covered by unit tests and the extension experiment — is a
// *direction-only* change: if the coordinate cloud moves to a new
// location equidistant from C(Ws), the projected distribution barely
// shifts and the test stays silent, while the energy statistic fires.
type RankSumDetector struct {
	// Z is the |z|-score threshold; 1.96 rejects at the 5% level.
	Z float64
}

// NewRankSumDetector validates and builds a RankSumDetector.
func NewRankSumDetector(z float64) (*RankSumDetector, error) {
	if z <= 0 {
		return nil, fmt.Errorf("window: rank-sum threshold %v, want > 0", z)
	}
	return &RankSumDetector{Z: z}, nil
}

// Diverged implements Detector.
func (d *RankSumDetector) Diverged(p *Pair) (bool, error) {
	if !p.Full() {
		return false, nil
	}
	center, err := p.StartCentroid()
	if err != nil {
		return false, fmt.Errorf("rank-sum detector: %w", err)
	}
	project := func(points []vec.Vector) ([]float64, error) {
		out := make([]float64, len(points))
		for i, pt := range points {
			dd, err := pt.Dist(center)
			if err != nil {
				return nil, err
			}
			out[i] = dd
		}
		return out, nil
	}
	a, err := project(p.Start())
	if err != nil {
		return false, fmt.Errorf("rank-sum detector: %w", err)
	}
	b, err := project(p.Current())
	if err != nil {
		return false, fmt.Errorf("rank-sum detector: %w", err)
	}
	z, err := stats.RankSum(a, b)
	if err != nil {
		return false, fmt.Errorf("rank-sum detector: %w", err)
	}
	return math.Abs(z) > d.Z, nil
}

// Interface conformance.
var _ Detector = (*RankSumDetector)(nil)
