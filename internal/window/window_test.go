package window

import (
	"math"
	"testing"

	"netcoord/internal/stats"
	"netcoord/internal/vec"
	"netcoord/internal/xrand"
)

func mustPair(t *testing.T, k, dim int) *Pair {
	t.Helper()
	p, err := NewPair(k, dim)
	if err != nil {
		t.Fatalf("NewPair: %v", err)
	}
	return p
}

func appendN(t *testing.T, p *Pair, pts []vec.Vector) {
	t.Helper()
	for _, pt := range pts {
		if err := p.Append(pt); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
}

func cloud(rng *xrand.Stream, n int, cx, cy, cz, spread float64) []vec.Vector {
	out := make([]vec.Vector, n)
	for i := range out {
		out[i] = vec.New(cx+rng.Normal(0, spread), cy+rng.Normal(0, spread), cz+rng.Normal(0, spread))
	}
	return out
}

func TestNewPairValidation(t *testing.T) {
	if _, err := NewPair(0, 3); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewPair(4, 0); err == nil {
		t.Fatal("dim=0 accepted")
	}
	p, err := NewPair(4, 3)
	if err != nil {
		t.Fatalf("NewPair: %v", err)
	}
	if p.K() != 4 {
		t.Fatalf("K = %d", p.K())
	}
}

func TestFillPhase(t *testing.T) {
	p := mustPair(t, 3, 2)
	if p.Full() {
		t.Fatal("empty pair reports Full")
	}
	appendN(t, p, []vec.Vector{vec.New(1, 1), vec.New(2, 2)})
	if p.Full() {
		t.Fatal("partially filled pair reports Full")
	}
	appendN(t, p, []vec.Vector{vec.New(3, 3)})
	if !p.Full() {
		t.Fatal("pair not Full after k elements")
	}
	// During fill, Ws and Wc hold the same elements.
	start, cur := p.Start(), p.Current()
	if len(start) != 3 || len(cur) != 3 {
		t.Fatalf("window sizes %d/%d", len(start), len(cur))
	}
	for i := range start {
		if !start[i].Equal(cur[i]) {
			t.Fatalf("fill phase windows differ at %d: %v vs %v", i, start[i], cur[i])
		}
	}
}

func TestSlidePhase(t *testing.T) {
	p := mustPair(t, 3, 1)
	appendN(t, p, []vec.Vector{vec.New(1), vec.New(2), vec.New(3)})
	appendN(t, p, []vec.Vector{vec.New(4), vec.New(5)})
	start := p.Start()
	if !start[0].Equal(vec.New(1)) || !start[2].Equal(vec.New(3)) {
		t.Fatalf("start window changed after freeze: %v", start)
	}
	cur := p.Current()
	want := []float64{3, 4, 5}
	for i, w := range want {
		if cur[i][0] != w {
			t.Fatalf("current window = %v, want [3 4 5]", cur)
		}
	}
}

func TestAppendCopiesInput(t *testing.T) {
	p := mustPair(t, 2, 2)
	buf := vec.New(1, 1)
	if err := p.Append(buf); err != nil {
		t.Fatalf("Append: %v", err)
	}
	buf[0] = 99
	if p.Start()[0][0] != 1 {
		t.Fatal("Append aliased caller's buffer")
	}
}

func TestAppendDimensionMismatch(t *testing.T) {
	p := mustPair(t, 2, 3)
	if err := p.Append(vec.New(1, 2)); err == nil {
		t.Fatal("mismatched append accepted")
	}
}

func TestReset(t *testing.T) {
	p := mustPair(t, 2, 1)
	appendN(t, p, []vec.Vector{vec.New(1), vec.New(2), vec.New(3)})
	if !p.Full() {
		t.Fatal("setup: pair should be full")
	}
	p.Reset()
	if p.Full() {
		t.Fatal("pair Full after Reset")
	}
	if len(p.Start()) != 0 || len(p.Current()) != 0 {
		t.Fatal("windows not emptied by Reset")
	}
	// Refill works.
	appendN(t, p, []vec.Vector{vec.New(5), vec.New(6)})
	if !p.Full() {
		t.Fatal("pair not Full after refill")
	}
}

func TestCentroids(t *testing.T) {
	p := mustPair(t, 2, 2)
	appendN(t, p, []vec.Vector{vec.New(0, 0), vec.New(2, 2)})
	sc, err := p.StartCentroid()
	if err != nil {
		t.Fatalf("StartCentroid: %v", err)
	}
	if !sc.Equal(vec.New(1, 1)) {
		t.Fatalf("StartCentroid = %v", sc)
	}
	// Slide in two new points; start centroid must not change, current
	// must follow.
	appendN(t, p, []vec.Vector{vec.New(10, 10), vec.New(12, 12)})
	sc2, err := p.StartCentroid()
	if err != nil {
		t.Fatalf("StartCentroid: %v", err)
	}
	if !sc2.Equal(vec.New(1, 1)) {
		t.Fatalf("StartCentroid moved to %v", sc2)
	}
	cc, err := p.CurrentCentroid()
	if err != nil {
		t.Fatalf("CurrentCentroid: %v", err)
	}
	if !cc.Equal(vec.New(11, 11)) {
		t.Fatalf("CurrentCentroid = %v", cc)
	}
}

func TestCentroidBeforeFull(t *testing.T) {
	p := mustPair(t, 4, 2)
	appendN(t, p, []vec.Vector{vec.New(1, 1)})
	if _, err := p.StartCentroid(); err == nil {
		t.Fatal("StartCentroid before full succeeded")
	}
	if _, err := p.CurrentCentroid(); err == nil {
		t.Fatal("CurrentCentroid before full succeeded")
	}
	if _, err := p.Energy(); err == nil {
		t.Fatal("Energy before full succeeded")
	}
}

// The central property: the incrementally maintained energy statistic
// must match the O(k^2) definition from the stats package after any
// number of slides.
func TestIncrementalEnergyMatchesNaive(t *testing.T) {
	rng := xrand.NewStream(11)
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(15)
		p := mustPair(t, k, 3)
		// Fill, then slide a random number of times with points from a
		// drifting distribution.
		n := k + rng.Intn(4*k)
		for i := 0; i < n; i++ {
			drift := float64(i) * 0.5
			pt := vec.New(rng.Normal(drift, 2), rng.Normal(0, 2), rng.Normal(0, 2))
			if err := p.Append(pt); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		if !p.Full() {
			continue
		}
		got, err := p.Energy()
		if err != nil {
			t.Fatalf("Energy: %v", err)
		}
		want, err := stats.EnergyDistance(p.Start(), p.Current())
		if err != nil {
			t.Fatalf("EnergyDistance: %v", err)
		}
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("trial %d (k=%d, n=%d): incremental %v != naive %v", trial, k, n, got, want)
		}
	}
}

func TestIncrementalEnergyAfterReset(t *testing.T) {
	rng := xrand.NewStream(12)
	p := mustPair(t, 8, 3)
	appendN(t, p, cloud(rng, 20, 0, 0, 0, 1))
	p.Reset()
	appendN(t, p, cloud(rng, 12, 5, 5, 5, 1))
	got, err := p.Energy()
	if err != nil {
		t.Fatalf("Energy: %v", err)
	}
	want, err := stats.EnergyDistance(p.Start(), p.Current())
	if err != nil {
		t.Fatalf("EnergyDistance: %v", err)
	}
	if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
		t.Fatalf("after reset: incremental %v != naive %v", got, want)
	}
}

func TestEnergyStationaryVsShifted(t *testing.T) {
	rng := xrand.NewStream(13)
	// Stationary stream: energy stays small.
	p := mustPair(t, 32, 3)
	appendN(t, p, cloud(rng, 200, 50, 50, 50, 1))
	stationary, err := p.Energy()
	if err != nil {
		t.Fatalf("Energy: %v", err)
	}
	// Shifted stream: fill at one location, slide in points 40 ms away.
	q := mustPair(t, 32, 3)
	appendN(t, q, cloud(rng, 32, 50, 50, 50, 1))
	appendN(t, q, cloud(rng, 32, 90, 50, 50, 1))
	shifted, err := q.Energy()
	if err != nil {
		t.Fatalf("Energy: %v", err)
	}
	if shifted < 10*stationary {
		t.Fatalf("shifted energy %v not clearly above stationary %v", shifted, stationary)
	}
}

func TestEnergyDetector(t *testing.T) {
	rng := xrand.NewStream(14)
	det, err := NewEnergyDetector(8)
	if err != nil {
		t.Fatalf("NewEnergyDetector: %v", err)
	}
	p := mustPair(t, 32, 3)
	// Not full: never fires.
	if fired, err := det.Diverged(p); err != nil || fired {
		t.Fatalf("empty pair: fired=%v err=%v", fired, err)
	}
	appendN(t, p, cloud(rng, 64, 50, 50, 50, 1))
	fired, err := det.Diverged(p)
	if err != nil {
		t.Fatalf("Diverged: %v", err)
	}
	if fired {
		t.Fatal("detector fired on stationary stream")
	}
	appendN(t, p, cloud(rng, 32, 120, 50, 50, 1))
	fired, err = det.Diverged(p)
	if err != nil {
		t.Fatalf("Diverged: %v", err)
	}
	if !fired {
		t.Fatal("detector missed a 70 ms shift")
	}
}

func TestEnergyDetectorValidation(t *testing.T) {
	if _, err := NewEnergyDetector(0); err == nil {
		t.Fatal("tau=0 accepted")
	}
	if _, err := NewEnergyDetector(-1); err == nil {
		t.Fatal("tau<0 accepted")
	}
}

func TestRelativeDetector(t *testing.T) {
	rng := xrand.NewStream(15)
	det, err := NewRelativeDetector(0.3)
	if err != nil {
		t.Fatalf("NewRelativeDetector: %v", err)
	}
	p := mustPair(t, 32, 3)
	appendN(t, p, cloud(rng, 64, 50, 50, 50, 0.5))
	neighbor := vec.New(80, 50, 50) // ~30 ms away

	fired, err := det.DivergedFrom(p, neighbor, true)
	if err != nil {
		t.Fatalf("DivergedFrom: %v", err)
	}
	if fired {
		t.Fatal("relative detector fired on stationary stream")
	}

	// Move the node by ~20 ms: 20/30 = 0.67 > 0.3, must fire.
	appendN(t, p, cloud(rng, 32, 70, 50, 50, 0.5))
	fired, err = det.DivergedFrom(p, neighbor, true)
	if err != nil {
		t.Fatalf("DivergedFrom: %v", err)
	}
	if !fired {
		t.Fatal("relative detector missed a 20 ms move with 30 ms neighbor")
	}
}

func TestRelativeDetectorNoNeighbor(t *testing.T) {
	rng := xrand.NewStream(16)
	det, err := NewRelativeDetector(0.3)
	if err != nil {
		t.Fatalf("NewRelativeDetector: %v", err)
	}
	p := mustPair(t, 8, 3)
	appendN(t, p, cloud(rng, 8, 0, 0, 0, 1))
	appendN(t, p, cloud(rng, 8, 100, 0, 0, 1))
	fired, err := det.DivergedFrom(p, nil, false)
	if err != nil {
		t.Fatalf("DivergedFrom: %v", err)
	}
	if fired {
		t.Fatal("relative detector fired with no known neighbor")
	}
}

func TestRelativeDetectorScaleDependence(t *testing.T) {
	// The same absolute movement must fire with a near neighbor and stay
	// quiet with a far one.
	build := func(t *testing.T) *Pair {
		rng := xrand.NewStream(17)
		p := mustPair(t, 16, 3)
		appendN(t, p, cloud(rng, 16, 50, 50, 50, 0.1))
		appendN(t, p, cloud(rng, 16, 56, 50, 50, 0.1)) // ~6 ms move
		return p
	}
	det, err := NewRelativeDetector(0.3)
	if err != nil {
		t.Fatalf("NewRelativeDetector: %v", err)
	}
	near := vec.New(60, 50, 50) // 10 ms locale: 6/10 = 0.6 fires
	far := vec.New(250, 50, 50) // 200 ms locale: 6/200 = 0.03 quiet
	fired, err := det.DivergedFrom(build(t), near, true)
	if err != nil {
		t.Fatalf("DivergedFrom: %v", err)
	}
	if !fired {
		t.Fatal("6 ms move with 10 ms neighbor should fire")
	}
	fired, err = det.DivergedFrom(build(t), far, true)
	if err != nil {
		t.Fatalf("DivergedFrom: %v", err)
	}
	if fired {
		t.Fatal("6 ms move with 200 ms neighbor should not fire")
	}
}

func TestRelativeDetectorZeroScale(t *testing.T) {
	det, err := NewRelativeDetector(0.3)
	if err != nil {
		t.Fatalf("NewRelativeDetector: %v", err)
	}
	p := mustPair(t, 2, 2)
	appendN(t, p, []vec.Vector{vec.New(1, 1), vec.New(1, 1)})
	appendN(t, p, []vec.Vector{vec.New(5, 5), vec.New(5, 5)})
	// Neighbor exactly at the start centroid.
	fired, err := det.DivergedFrom(p, vec.New(1, 1), true)
	if err != nil {
		t.Fatalf("DivergedFrom: %v", err)
	}
	if !fired {
		t.Fatal("movement with zero-distance neighbor should fire")
	}
}

func TestRelativeDetectorValidation(t *testing.T) {
	if _, err := NewRelativeDetector(0); err == nil {
		t.Fatal("epsilon=0 accepted")
	}
}

func BenchmarkPairAppendIncrementalEnergy(b *testing.B) {
	p, err := NewPair(32, 3)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.NewStream(1)
	pts := cloud(rng, 1024, 50, 50, 50, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Append(pts[i%len(pts)]); err != nil {
			b.Fatal(err)
		}
		if p.Full() {
			if _, err := p.Energy(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkNaiveEnergyPerSlide(b *testing.B) {
	// The O(k^2) alternative, for the ablation comparison in DESIGN.md.
	p, err := NewPair(32, 3)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.NewStream(1)
	pts := cloud(rng, 1024, 50, 50, 50, 2)
	for i := 0; i < 64; i++ {
		if err := p.Append(pts[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Append(pts[i%len(pts)]); err != nil {
			b.Fatal(err)
		}
		if _, err := stats.EnergyDistance(p.Start(), p.Current()); err != nil {
			b.Fatal(err)
		}
	}
}
