// Package bheap provides the bounded max-heap used for k-best selection
// by the spatial index and the one-shot Nearest API: keep the best k
// elements seen so far under a total order, evicting the worst in
// O(log k) when a better candidate arrives.
package bheap

// Heap is a bounded max-heap under the given order: the root is the
// element that sorts last among the kept ones, so it is the one a
// better candidate displaces. The zero value is not usable; call New.
type Heap[T any] struct {
	// before reports whether a sorts before b. It must be a strict
	// total order for deterministic results.
	before func(a, b T) bool
	cap    int
	items  []T
}

// New builds a heap keeping the cap best elements under before.
func New[T any](cap int, before func(a, b T) bool) *Heap[T] {
	return &Heap[T]{before: before, cap: cap}
}

// Reset empties the heap and rebounds it to keep cap elements, keeping
// the backing array so a pooled heap reaches a steady state where Offer
// never allocates. The order function is unchanged.
func (h *Heap[T]) Reset(cap int) {
	h.cap = cap
	h.items = h.items[:0]
}

// Len reports how many elements are held.
func (h *Heap[T]) Len() int { return len(h.items) }

// Full reports whether the heap holds cap elements.
func (h *Heap[T]) Full() bool { return len(h.items) == h.cap }

// Worst returns the element that sorts last among those held. It must
// not be called on an empty heap.
func (h *Heap[T]) Worst() T { return h.items[0] }

// Items returns the held elements in heap order (not sorted). The slice
// is the heap's backing store; callers take ownership only once they
// stop calling Offer.
func (h *Heap[T]) Items() []T { return h.items }

// Offer inserts x if the heap has room or x sorts before the current
// worst element.
func (h *Heap[T]) Offer(x T) {
	if h.cap == 0 {
		return
	}
	if len(h.items) < h.cap {
		h.items = append(h.items, x)
		h.siftUp(len(h.items) - 1)
		return
	}
	if !h.before(x, h.items[0]) {
		return
	}
	h.items[0] = x
	h.siftDown(0)
}

func (h *Heap[T]) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		// Stop when the parent sorts after (or equal to) the child.
		if h.before(h.items[p], h.items[i]) {
			h.items[i], h.items[p] = h.items[p], h.items[i]
			i = p
			continue
		}
		return
	}
}

func (h *Heap[T]) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < len(h.items) && h.before(h.items[worst], h.items[l]) {
			worst = l
		}
		if r < len(h.items) && h.before(h.items[worst], h.items[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h.items[i], h.items[worst] = h.items[worst], h.items[i]
		i = worst
	}
}
