package bheap

import (
	"sort"
	"testing"

	"netcoord/internal/xrand"
)

// Property: offering any sequence and then sorting the kept items must
// equal the first k of the fully sorted input.
func TestHeapKeepsBestK(t *testing.T) {
	rng := xrand.NewStream(11)
	intBefore := func(a, b int) bool { return a < b }
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(50)
		k := rng.Intn(12)
		in := make([]int, n)
		for i := range in {
			in[i] = rng.Intn(40) // duplicates are common on purpose
		}
		h := New(k, intBefore)
		for _, x := range in {
			h.Offer(x)
		}
		got := append([]int(nil), h.Items()...)
		sort.Ints(got)
		want := append([]int(nil), in...)
		sort.Ints(want)
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d (n=%d k=%d): kept %d, want %d", trial, n, k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d k=%d): kept %v, want %v", trial, n, k, got, want)
			}
		}
	}
}

func TestHeapZeroCap(t *testing.T) {
	h := New(0, func(a, b int) bool { return a < b })
	h.Offer(1)
	if h.Len() != 0 {
		t.Fatalf("zero-cap heap kept %d items", h.Len())
	}
}

// Property: a Reset heap behaves exactly like a fresh one at the new
// capacity, and steady-state reuse stops growing the backing array.
func TestHeapResetReuses(t *testing.T) {
	rng := xrand.NewStream(13)
	intBefore := func(a, b int) bool { return a < b }
	h := New(4, intBefore)
	for trial := 0; trial < 200; trial++ {
		k := rng.Intn(10)
		h.Reset(k)
		if h.Len() != 0 {
			t.Fatalf("trial %d: Reset left %d items", trial, h.Len())
		}
		n := 5 + rng.Intn(40)
		in := make([]int, n)
		for i := range in {
			in[i] = rng.Intn(30)
		}
		fresh := New(k, intBefore)
		for _, x := range in {
			h.Offer(x)
			fresh.Offer(x)
		}
		got := append([]int(nil), h.Items()...)
		want := append([]int(nil), fresh.Items()...)
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("trial %d (k=%d): reused kept %d, fresh kept %d", trial, k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d (k=%d): reused %v, fresh %v", trial, k, got, want)
			}
		}
	}
}

func TestHeapWorstTracksRoot(t *testing.T) {
	h := New(3, func(a, b int) bool { return a < b })
	for _, x := range []int{5, 1, 9, 3, 2} {
		h.Offer(x)
	}
	if !h.Full() {
		t.Fatal("heap not full after 5 offers with cap 3")
	}
	if h.Worst() != 3 {
		t.Fatalf("Worst = %d, want 3 (kept best three of 1,2,3)", h.Worst())
	}
}
