package stats

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty bounds error = %v", err)
	}
	if _, err := NewHistogram([]float64{0, 10, 5}); err == nil {
		t.Fatal("non-ascending bounds accepted")
	}
	if _, err := NewHistogram([]float64{0, 0}); err == nil {
		t.Fatal("duplicate bounds accepted")
	}
}

func TestHistogramObserve(t *testing.T) {
	h, err := NewHistogram([]float64{0, 10, 20})
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	for _, v := range []float64{0, 5, 9.999, 10, 15, 25, 1000} {
		h.Observe(v)
	}
	counts := h.Counts()
	if counts[0] != 3 {
		t.Errorf("bucket 0 = %d, want 3", counts[0])
	}
	if counts[1] != 2 {
		t.Errorf("bucket 1 = %d, want 2", counts[1])
	}
	if counts[2] != 2 {
		t.Errorf("bucket 2 = %d, want 2 (open-ended)", counts[2])
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
}

func TestHistogramDropsOutOfRange(t *testing.T) {
	h, err := NewHistogram([]float64{0, 10})
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	h.Observe(-1)
	h.Observe(math.NaN())
	if h.Total() != 0 {
		t.Fatalf("Total = %d, want 0 after invalid observations", h.Total())
	}
}

func TestFig2Bounds(t *testing.T) {
	bounds := Fig2Bounds()
	if len(bounds) != 13 {
		t.Fatalf("Fig2Bounds length = %d, want 13", len(bounds))
	}
	if bounds[0] != 0 || bounds[9] != 900 || bounds[10] != 1000 || bounds[12] != 3000 {
		t.Fatalf("Fig2Bounds = %v", bounds)
	}
}

func TestFig3Bounds(t *testing.T) {
	bounds := Fig3Bounds()
	if len(bounds) != 11 {
		t.Fatalf("Fig3Bounds length = %d, want 11", len(bounds))
	}
	if bounds[0] != 0 || bounds[10] != 2000 {
		t.Fatalf("Fig3Bounds = %v", bounds)
	}
}

func TestFractionAtOrAbove(t *testing.T) {
	h, err := NewHistogram(Fig2Bounds())
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	// 990 fast samples and 10 slow ones.
	for i := 0; i < 990; i++ {
		h.Observe(50)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1500)
	}
	if got := h.FractionAtOrAbove(1000); !almostEqual(got, 0.01, 1e-9) {
		t.Fatalf("FractionAtOrAbove(1000) = %v, want 0.01", got)
	}
	if got := h.FractionAtOrAbove(0); !almostEqual(got, 1, 1e-9) {
		t.Fatalf("FractionAtOrAbove(0) = %v, want 1", got)
	}
}

func TestFractionAtOrAboveEmpty(t *testing.T) {
	h, err := NewHistogram(Fig2Bounds())
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	if got := h.FractionAtOrAbove(1000); got != 0 {
		t.Fatalf("FractionAtOrAbove on empty = %v", got)
	}
}

func TestBucketLabel(t *testing.T) {
	h, err := NewHistogram(Fig2Bounds())
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	tests := []struct {
		idx  int
		want string
	}{
		{idx: 0, want: "0-99"},
		{idx: 9, want: "900-999"},
		{idx: 10, want: "1000-1999"},
		{idx: 12, want: ">=3000"},
		{idx: -1, want: ""},
		{idx: 13, want: ""},
	}
	for _, tt := range tests {
		if got := h.BucketLabel(tt.idx); got != tt.want {
			t.Errorf("BucketLabel(%d) = %q, want %q", tt.idx, got, tt.want)
		}
	}
}

func TestHistogramRender(t *testing.T) {
	h, err := NewHistogram([]float64{0, 100})
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	for i := 0; i < 1000; i++ {
		h.Observe(10)
	}
	h.Observe(200)
	out := h.Render()
	if !strings.Contains(out, "0-99") || !strings.Contains(out, ">=100") {
		t.Fatalf("Render missing labels:\n%s", out)
	}
	if !strings.Contains(out, "####") {
		t.Fatalf("Render missing log-scale bar:\n%s", out)
	}
}

func TestHistogramManyBucketsBinarySearch(t *testing.T) {
	// More than 32 buckets exercises the binary-search path.
	bounds := make([]float64, 64)
	for i := range bounds {
		bounds[i] = float64(i * 10)
	}
	h, err := NewHistogram(bounds)
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	for v := 0.0; v < 640; v++ {
		h.Observe(v)
	}
	counts := h.Counts()
	for i, c := range counts {
		if c != 10 {
			t.Fatalf("bucket %d = %d, want 10", i, c)
		}
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h, err := NewHistogram(Fig2Bounds())
	if err != nil {
		b.Fatalf("NewHistogram: %v", err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 4000))
	}
}
