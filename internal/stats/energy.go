package stats

import (
	"fmt"

	"netcoord/internal/vec"
)

// EnergyDistance computes the Szekely-Rizzo energy distance statistic
// between two finite multi-dimensional samples A and B:
//
//	e(A,B) = (n1*n2/(n1+n2)) * ( 2/(n1*n2) * S_AB
//	                             - 1/n1^2 * S_AA
//	                             - 1/n2^2 * S_BB )
//
// where S_AB is the sum of pairwise Euclidean distances across the
// samples and S_AA, S_BB are the full double sums within each sample.
// This is the statistic the paper's ENERGY heuristic thresholds to decide
// whether the coordinate stream has undergone a significant change.
//
// The direct computation is O(n^2); the window package maintains the same
// statistic incrementally in O(n) per slide and is property-tested against
// this definition.
func EnergyDistance(a, b []vec.Vector) (float64, error) {
	n1, n2 := len(a), len(b)
	if n1 == 0 || n2 == 0 {
		return 0, ErrEmpty
	}
	var sumCross float64
	for _, x := range a {
		for _, y := range b {
			d, err := x.Dist(y)
			if err != nil {
				return 0, fmt.Errorf("energy distance cross term: %w", err)
			}
			sumCross += d
		}
	}
	sumA, err := doubleSum(a)
	if err != nil {
		return 0, err
	}
	sumB, err := doubleSum(b)
	if err != nil {
		return 0, err
	}
	fn1, fn2 := float64(n1), float64(n2)
	return (fn1 * fn2 / (fn1 + fn2)) *
		(2/(fn1*fn2)*sumCross - sumA/(fn1*fn1) - sumB/(fn2*fn2)), nil
}

// doubleSum returns sum_i sum_j ||v_i - v_j|| over all ordered pairs
// (twice the sum over unordered pairs; diagonal terms are zero).
func doubleSum(vs []vec.Vector) (float64, error) {
	var sum float64
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			d, err := vs[i].Dist(vs[j])
			if err != nil {
				return 0, fmt.Errorf("energy distance within term: %w", err)
			}
			sum += d
		}
	}
	return 2 * sum, nil
}
