// Package stats implements the descriptive and test statistics the
// reproduction needs: percentiles and summaries, the paper's histogram
// bucket layouts, empirical CDFs, boxplot five-number summaries, the
// Szekely-Rizzo energy distance used by the ENERGY heuristic (both the
// O(n^2) definition and an O(n) incremental form), and the Wilcoxon
// rank-sum test referenced by the change-detection literature the paper
// builds on.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics that are undefined on empty inputs.
var ErrEmpty = errors.New("stats: empty input")

// Percentile returns the p-th percentile (0 <= p <= 100) of values using
// linear interpolation between closest ranks. The input need not be
// sorted; it is not modified.
func Percentile(values []float64, p float64) (float64, error) {
	if len(values) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of [0, 100]", p)
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

// PercentileSorted is Percentile for input already in ascending order. It
// performs no allocation, making it suitable for hot loops that maintain
// sorted windows (the MP filter).
func PercentileSorted(sorted []float64, p float64) (float64, error) {
	if len(sorted) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of [0, 100]", p)
	}
	return percentileSorted(sorted, p), nil
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of values.
func Median(values []float64) (float64, error) {
	return Percentile(values, 50)
}

// Mean returns the arithmetic mean of values.
func Mean(values []float64) (float64, error) {
	if len(values) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values)), nil
}

// StdDev returns the population standard deviation of values.
func StdDev(values []float64) (float64, error) {
	mean, err := Mean(values)
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, v := range values {
		d := v - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(values))), nil
}

// Summary is a five-number-plus summary of a sample.
type Summary struct {
	Count  int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	P25    float64
	P75    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary of values.
func Summarize(values []float64) (Summary, error) {
	if len(values) == 0 {
		return Summary{}, ErrEmpty
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	mean, err := Mean(values)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		Count:  len(values),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		Median: percentileSorted(sorted, 50),
		P25:    percentileSorted(sorted, 25),
		P75:    percentileSorted(sorted, 75),
		P95:    percentileSorted(sorted, 95),
		P99:    percentileSorted(sorted, 99),
	}, nil
}

// Boxplot is the Tukey boxplot summary used by the paper's Figure 4:
// quartiles, whiskers at 1.5 IQR, and the values beyond the whiskers.
type Boxplot struct {
	Median      float64
	Q1          float64
	Q3          float64
	LowWhisker  float64
	HighWhisker float64
	Outliers    []float64
	Max         float64
}

// BoxplotOf computes the boxplot summary of values.
func BoxplotOf(values []float64) (Boxplot, error) {
	if len(values) == 0 {
		return Boxplot{}, ErrEmpty
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	q1 := percentileSorted(sorted, 25)
	q3 := percentileSorted(sorted, 75)
	iqr := q3 - q1
	loFence := q1 - 1.5*iqr
	hiFence := q3 + 1.5*iqr
	b := Boxplot{
		Median: percentileSorted(sorted, 50),
		Q1:     q1,
		Q3:     q3,
		Max:    sorted[len(sorted)-1],
	}
	// Whiskers extend to the most extreme data point within the fences.
	b.LowWhisker, b.HighWhisker = sorted[0], sorted[len(sorted)-1]
	for _, v := range sorted {
		if v >= loFence {
			b.LowWhisker = v
			break
		}
	}
	for i := len(sorted) - 1; i >= 0; i-- {
		if sorted[i] <= hiFence {
			b.HighWhisker = sorted[i]
			break
		}
	}
	for _, v := range sorted {
		if v < loFence || v > hiFence {
			b.Outliers = append(b.Outliers, v)
		}
	}
	return b, nil
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from a sample. The input is copied.
func NewCDF(values []float64) (*CDF, error) {
	if len(values) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}, nil
}

// At returns the empirical probability P(X <= x).
func (c *CDF) At(x float64) float64 {
	// First index with value > x.
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the value at the q-th quantile (0 <= q <= 1).
func (c *CDF) Quantile(q float64) float64 {
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	return percentileSorted(c.sorted, q*100)
}

// Len returns the sample size behind the CDF.
func (c *CDF) Len() int { return len(c.sorted) }

// Points returns up to n evenly spaced (value, cumulative probability)
// pairs suitable for plotting the CDF curve.
func (c *CDF) Points(n int) []Point {
	if n <= 0 || c.Len() == 0 {
		return nil
	}
	if n > c.Len() {
		n = c.Len()
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (c.Len() - 1) / max(n-1, 1)
		pts = append(pts, Point{
			X: c.sorted[idx],
			Y: float64(idx+1) / float64(c.Len()),
		})
	}
	return pts
}

// Point is an (x, y) pair on a plotted curve.
type Point struct {
	X float64
	Y float64
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
