package stats

import (
	"math"
	"sort"
)

// RankSum computes the Wilcoxon/Mann-Whitney rank-sum z statistic for two
// one-dimensional samples. Kifer, Ben-David and Gehrke's change-detection
// framework — the origin of the paper's two-window scheme — uses standard
// tests like this one for one-dimensional streams; the paper generalizes
// to multi-dimensional coordinates with RELATIVE and ENERGY. We implement
// rank-sum both as the 1-D baseline detector and to document the lineage.
//
// The returned value is the normal-approximation z score of sample a's
// rank sum (ties handled by midranks). |z| > 1.96 rejects "same
// distribution" at the 5% level.
func RankSum(a, b []float64) (float64, error) {
	n1, n2 := len(a), len(b)
	if n1 == 0 || n2 == 0 {
		return 0, ErrEmpty
	}
	type tagged struct {
		v    float64
		from int // 0 = a, 1 = b
	}
	all := make([]tagged, 0, n1+n2)
	for _, v := range a {
		all = append(all, tagged{v: v, from: 0})
	}
	for _, v := range b {
		all = append(all, tagged{v: v, from: 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign midranks, accumulating the tie-correction term.
	ranks := make([]float64, len(all))
	var tieCorrection float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieCorrection += t*t*t - t
		i = j
	}

	var rankSumA float64
	for i, tg := range all {
		if tg.from == 0 {
			rankSumA += ranks[i]
		}
	}

	fn1, fn2 := float64(n1), float64(n2)
	n := fn1 + fn2
	meanA := fn1 * (n + 1) / 2
	variance := fn1 * fn2 / 12 * ((n + 1) - tieCorrection/(n*(n-1)))
	if variance <= 0 {
		// All values tied: no evidence of difference.
		return 0, nil
	}
	return (rankSumA - meanA) / math.Sqrt(variance), nil
}
