package stats

import (
	"errors"
	"math"
	"testing"

	"netcoord/internal/xrand"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPercentile(t *testing.T) {
	data := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		name string
		p    float64
		want float64
	}{
		{name: "min", p: 0, want: 15},
		{name: "max", p: 100, want: 50},
		{name: "median", p: 50, want: 35},
		{name: "p25", p: 25, want: 20},
		{name: "p75", p: 75, want: 40},
		{name: "interpolated", p: 10, want: 17}, // rank 0.4 between 15 and 20
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Percentile(data, tt.p)
			if err != nil {
				t.Fatalf("Percentile: %v", err)
			}
			if !almostEqual(got, tt.want, 1e-9) {
				t.Fatalf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	data := []float64{3, 1, 2}
	if _, err := Percentile(data, 50); err != nil {
		t.Fatalf("Percentile: %v", err)
	}
	if data[0] != 3 || data[1] != 1 || data[2] != 2 {
		t.Fatalf("Percentile sorted its input: %v", data)
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty error = %v", err)
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Fatal("negative percentile succeeded")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Fatal("percentile > 100 succeeded")
	}
}

func TestPercentileSingleValue(t *testing.T) {
	for _, p := range []float64{0, 25, 50, 99, 100} {
		got, err := Percentile([]float64{42}, p)
		if err != nil {
			t.Fatalf("Percentile: %v", err)
		}
		if got != 42 {
			t.Fatalf("Percentile(p=%v) of singleton = %v", p, got)
		}
	}
}

func TestPercentileSortedMatchesPercentile(t *testing.T) {
	rng := xrand.NewStream(1)
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(50)
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.Float64() * 100
		}
		sorted := make([]float64, n)
		copy(sorted, data)
		// Insertion sort keeps the test independent of the stdlib sort
		// used inside Percentile.
		for i := 1; i < n; i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		p := rng.Float64() * 100
		a, err := Percentile(data, p)
		if err != nil {
			t.Fatalf("Percentile: %v", err)
		}
		b, err := PercentileSorted(sorted, p)
		if err != nil {
			t.Fatalf("PercentileSorted: %v", err)
		}
		if !almostEqual(a, b, 1e-9) {
			t.Fatalf("trial %d: Percentile=%v PercentileSorted=%v", trial, a, b)
		}
	}
}

func TestMedianMean(t *testing.T) {
	data := []float64{1, 2, 3, 4, 100}
	med, err := Median(data)
	if err != nil {
		t.Fatalf("Median: %v", err)
	}
	if med != 3 {
		t.Fatalf("Median = %v, want 3", med)
	}
	mean, err := Mean(data)
	if err != nil {
		t.Fatalf("Mean: %v", err)
	}
	if mean != 22 {
		t.Fatalf("Mean = %v, want 22", mean)
	}
}

func TestStdDev(t *testing.T) {
	sd, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatalf("StdDev: %v", err)
	}
	if !almostEqual(sd, 2, 1e-9) {
		t.Fatalf("StdDev = %v, want 2", sd)
	}
	if _, err := StdDev(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("StdDev empty = %v", err)
	}
}

func TestSummarize(t *testing.T) {
	data := make([]float64, 100)
	for i := range data {
		data[i] = float64(i + 1) // 1..100
	}
	s, err := Summarize(data)
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("Summary basics wrong: %+v", s)
	}
	if !almostEqual(s.Mean, 50.5, 1e-9) {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if !almostEqual(s.Median, 50.5, 1e-9) {
		t.Fatalf("Median = %v", s.Median)
	}
	if s.P95 < 95 || s.P95 > 96 {
		t.Fatalf("P95 = %v", s.P95)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Summarize empty = %v", err)
	}
}

func TestBoxplot(t *testing.T) {
	// 1..11 plus one extreme outlier.
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 100}
	b, err := BoxplotOf(data)
	if err != nil {
		t.Fatalf("BoxplotOf: %v", err)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Fatalf("Outliers = %v, want [100]", b.Outliers)
	}
	if b.Max != 100 {
		t.Fatalf("Max = %v", b.Max)
	}
	if b.HighWhisker == 100 {
		t.Fatal("high whisker should exclude the outlier")
	}
	if b.Median < 5 || b.Median > 8 {
		t.Fatalf("Median = %v", b.Median)
	}
	if _, err := BoxplotOf(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("BoxplotOf empty = %v", err)
	}
}

func TestBoxplotNoOutliers(t *testing.T) {
	b, err := BoxplotOf([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatalf("BoxplotOf: %v", err)
	}
	if len(b.Outliers) != 0 {
		t.Fatalf("Outliers = %v, want none", b.Outliers)
	}
	if b.LowWhisker != 1 || b.HighWhisker != 5 {
		t.Fatalf("whiskers = %v..%v, want 1..5", b.LowWhisker, b.HighWhisker)
	}
}

func TestCDF(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("NewCDF: %v", err)
	}
	tests := []struct {
		x    float64
		want float64
	}{
		{x: 0.5, want: 0},
		{x: 1, want: 0.25},
		{x: 2.5, want: 0.5},
		{x: 4, want: 1},
		{x: 99, want: 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); !almostEqual(got, tt.want, 1e-9) {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if got := c.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %v", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Fatalf("Quantile(1) = %v", got)
	}
	if got := c.Quantile(0.5); !almostEqual(got, 2.5, 1e-9) {
		t.Fatalf("Quantile(0.5) = %v", got)
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCDFEmpty(t *testing.T) {
	if _, err := NewCDF(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("NewCDF(nil) = %v", err)
	}
}

func TestCDFPoints(t *testing.T) {
	c, err := NewCDF([]float64{10, 20, 30, 40, 50})
	if err != nil {
		t.Fatalf("NewCDF: %v", err)
	}
	pts := c.Points(3)
	if len(pts) != 3 {
		t.Fatalf("Points(3) returned %d", len(pts))
	}
	if pts[0].X != 10 || pts[len(pts)-1].X != 50 {
		t.Fatalf("Points endpoints: %+v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Fatalf("CDF points not monotone: %+v", pts)
		}
	}
	if got := c.Points(0); got != nil {
		t.Fatalf("Points(0) = %v", got)
	}
	if got := c.Points(100); len(got) != 5 {
		t.Fatalf("Points(100) len = %d, want clamped to 5", len(got))
	}
}

func TestCDFAtQuantileInverse(t *testing.T) {
	rng := xrand.NewStream(5)
	data := make([]float64, 500)
	for i := range data {
		data[i] = rng.Normal(100, 25)
	}
	c, err := NewCDF(data)
	if err != nil {
		t.Fatalf("NewCDF: %v", err)
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		x := c.Quantile(q)
		p := c.At(x)
		if math.Abs(p-q) > 0.01 {
			t.Fatalf("At(Quantile(%v)) = %v", q, p)
		}
	}
}
