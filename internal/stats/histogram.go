package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram counts observations into explicit, contiguous buckets. The
// paper's figures use irregular bucket layouts (fine up to 1 s, coarse
// beyond), so buckets are defined by their boundaries rather than a fixed
// width.
type Histogram struct {
	// bounds[i] is the inclusive lower edge of bucket i. The final bucket
	// is open ended.
	bounds []float64
	counts []uint64
	total  uint64
}

// NewHistogram builds a histogram over the given ascending lower bucket
// bounds. A value v lands in the last bucket whose bound is <= v; values
// below bounds[0] are dropped (the latency figures never see negatives).
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, ErrEmpty
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("stats: histogram bounds not ascending at %d", i)
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(bounds))}, nil
}

// Fig2Bounds is the bucket layout of the paper's Figure 2: 100 ms buckets
// up to 1 s, 1000 ms buckets up to 3 s, then everything >= 3 s.
func Fig2Bounds() []float64 {
	bounds := make([]float64, 0, 13)
	for ms := 0.0; ms < 1000; ms += 100 {
		bounds = append(bounds, ms)
	}
	bounds = append(bounds, 1000, 2000, 3000)
	return bounds
}

// Fig3Bounds is the single-link bucket layout of Figure 3: 200 ms buckets
// from 0 through 2200 ms.
func Fig3Bounds() []float64 {
	bounds := make([]float64, 0, 11)
	for ms := 0.0; ms <= 2000; ms += 200 {
		bounds = append(bounds, ms)
	}
	return bounds
}

// Observe adds one value to the histogram.
func (h *Histogram) Observe(v float64) {
	idx := h.bucketIndex(v)
	if idx < 0 {
		return
	}
	h.counts[idx]++
	h.total++
}

func (h *Histogram) bucketIndex(v float64) int {
	if v < h.bounds[0] || math.IsNaN(v) {
		return -1
	}
	// Linear scan is fine for ~a dozen buckets; binary search for more.
	if len(h.bounds) > 32 {
		lo, hi := 0, len(h.bounds)
		for lo < hi {
			mid := (lo + hi) / 2
			if h.bounds[mid] <= v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo - 1
	}
	idx := 0
	for i, b := range h.bounds {
		if v >= b {
			idx = i
		} else {
			break
		}
	}
	return idx
}

// Counts returns a copy of the per-bucket counts.
func (h *Histogram) Counts() []uint64 {
	out := make([]uint64, len(h.counts))
	copy(out, h.counts)
	return out
}

// Total returns the number of observed values.
func (h *Histogram) Total() uint64 { return h.total }

// FractionAtOrAbove returns the fraction of observations >= x, where x
// must be one of the bucket bounds. Used to check calibration targets such
// as "0.4% of the measurements are greater than one second".
func (h *Histogram) FractionAtOrAbove(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	var above uint64
	for i, b := range h.bounds {
		if b >= x {
			above += h.counts[i]
		}
	}
	return float64(above) / float64(h.total)
}

// BucketLabel renders the human-readable range label of bucket i, in the
// style of the paper's axis labels ("100-199", ">=3000").
func (h *Histogram) BucketLabel(i int) string {
	if i < 0 || i >= len(h.bounds) {
		return ""
	}
	if i == len(h.bounds)-1 {
		return fmt.Sprintf(">=%d", int(h.bounds[i]))
	}
	return fmt.Sprintf("%d-%d", int(h.bounds[i]), int(h.bounds[i+1])-1)
}

// Render prints the histogram as a log-scale ASCII table mirroring the
// paper's log-frequency plots.
func (h *Histogram) Render() string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("%-12s %12s  %s\n", "bucket(ms)", "count", "log-scale"))
	for i, c := range h.counts {
		bar := ""
		if c > 0 {
			bar = strings.Repeat("#", 1+int(math.Log10(float64(c))))
		}
		sb.WriteString(fmt.Sprintf("%-12s %12d  %s\n", h.BucketLabel(i), c, bar))
	}
	return sb.String()
}
