package stats

import (
	"errors"
	"math"
	"testing"

	"netcoord/internal/vec"
	"netcoord/internal/xrand"
)

func randomCloud(rng *xrand.Stream, n, dim int, center vec.Vector, spread float64) []vec.Vector {
	out := make([]vec.Vector, n)
	for i := range out {
		v := make(vec.Vector, dim)
		for d := 0; d < dim; d++ {
			v[d] = center[d] + rng.Normal(0, spread)
		}
		out[i] = v
	}
	return out
}

func TestEnergyDistanceIdenticalSamplesNearZero(t *testing.T) {
	rng := xrand.NewStream(1)
	a := randomCloud(rng, 40, 3, vec.New(0, 0, 0), 1)
	b := make([]vec.Vector, len(a))
	copy(b, a)
	e, err := EnergyDistance(a, b)
	if err != nil {
		t.Fatalf("EnergyDistance: %v", err)
	}
	if math.Abs(e) > 1e-9 {
		t.Fatalf("energy of identical samples = %v, want ~0", e)
	}
}

func TestEnergyDistanceNonNegative(t *testing.T) {
	rng := xrand.NewStream(2)
	for trial := 0; trial < 30; trial++ {
		a := randomCloud(rng, 5+rng.Intn(30), 3, vec.New(0, 0, 0), 1+rng.Float64()*5)
		b := randomCloud(rng, 5+rng.Intn(30), 3, vec.New(rng.Float64()*10, 0, 0), 1+rng.Float64()*5)
		e, err := EnergyDistance(a, b)
		if err != nil {
			t.Fatalf("EnergyDistance: %v", err)
		}
		// Energy distance between distributions is non-negative; the
		// finite-sample statistic can dip microscopically below zero only
		// through float error.
		if e < -1e-9 {
			t.Fatalf("trial %d: energy = %v < 0", trial, e)
		}
	}
}

func TestEnergyDistanceGrowsWithSeparation(t *testing.T) {
	rng := xrand.NewStream(3)
	base := randomCloud(rng, 32, 3, vec.New(0, 0, 0), 1)
	var prev float64
	for i, sep := range []float64{0.5, 2, 8, 32, 128} {
		shifted := randomCloud(rng, 32, 3, vec.New(sep, 0, 0), 1)
		e, err := EnergyDistance(base, shifted)
		if err != nil {
			t.Fatalf("EnergyDistance: %v", err)
		}
		if e <= prev {
			t.Fatalf("separation %v: energy %v did not grow past %v", sep, e, prev)
		}
		_ = i
		prev = e
	}
}

func TestEnergyDistanceSymmetric(t *testing.T) {
	rng := xrand.NewStream(4)
	a := randomCloud(rng, 20, 3, vec.New(0, 0, 0), 2)
	b := randomCloud(rng, 25, 3, vec.New(5, 5, 5), 2)
	e1, err := EnergyDistance(a, b)
	if err != nil {
		t.Fatalf("EnergyDistance: %v", err)
	}
	e2, err := EnergyDistance(b, a)
	if err != nil {
		t.Fatalf("EnergyDistance: %v", err)
	}
	if math.Abs(e1-e2) > 1e-9 {
		t.Fatalf("energy not symmetric: %v vs %v", e1, e2)
	}
}

func TestEnergyDistanceKnownValue(t *testing.T) {
	// Two singletons at distance d: e = (1/2) * (2d - 0 - 0) = d.
	a := []vec.Vector{vec.New(0, 0)}
	b := []vec.Vector{vec.New(3, 4)}
	e, err := EnergyDistance(a, b)
	if err != nil {
		t.Fatalf("EnergyDistance: %v", err)
	}
	if !almostEqual(e, 5, 1e-12) {
		t.Fatalf("energy = %v, want 5", e)
	}
}

func TestEnergyDistanceHandComputed(t *testing.T) {
	// A = {0, 2}, B = {1} in one dimension.
	// S_AB = |0-1| + |2-1| = 2; S_AA = 2*|0-2| = 4; S_BB = 0.
	// e = (2*1/3) * (2/2*2 - 4/4 - 0) = (2/3) * (2 - 1) = 2/3.
	a := []vec.Vector{vec.New(0), vec.New(2)}
	b := []vec.Vector{vec.New(1)}
	e, err := EnergyDistance(a, b)
	if err != nil {
		t.Fatalf("EnergyDistance: %v", err)
	}
	if !almostEqual(e, 2.0/3.0, 1e-12) {
		t.Fatalf("energy = %v, want 2/3", e)
	}
}

func TestEnergyDistanceErrors(t *testing.T) {
	if _, err := EnergyDistance(nil, []vec.Vector{vec.New(1)}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty A error = %v", err)
	}
	if _, err := EnergyDistance([]vec.Vector{vec.New(1)}, nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty B error = %v", err)
	}
	if _, err := EnergyDistance([]vec.Vector{vec.New(1)}, []vec.Vector{vec.New(1, 2)}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestRankSumNoDifference(t *testing.T) {
	rng := xrand.NewStream(6)
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = rng.Normal(50, 10)
		b[i] = rng.Normal(50, 10)
	}
	z, err := RankSum(a, b)
	if err != nil {
		t.Fatalf("RankSum: %v", err)
	}
	if math.Abs(z) > 2.5 {
		t.Fatalf("z = %v for identical distributions, want |z| small", z)
	}
}

func TestRankSumDetectsShift(t *testing.T) {
	rng := xrand.NewStream(7)
	a := make([]float64, 100)
	b := make([]float64, 100)
	for i := range a {
		a[i] = rng.Normal(50, 5)
		b[i] = rng.Normal(70, 5)
	}
	z, err := RankSum(a, b)
	if err != nil {
		t.Fatalf("RankSum: %v", err)
	}
	if z > -5 {
		t.Fatalf("z = %v, want strongly negative (a shifted below b)", z)
	}
}

func TestRankSumAllTied(t *testing.T) {
	a := []float64{5, 5, 5}
	b := []float64{5, 5}
	z, err := RankSum(a, b)
	if err != nil {
		t.Fatalf("RankSum: %v", err)
	}
	if z != 0 {
		t.Fatalf("z = %v for fully tied samples, want 0", z)
	}
}

func TestRankSumEmpty(t *testing.T) {
	if _, err := RankSum(nil, []float64{1}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty error = %v", err)
	}
}

func TestRankSumSymmetricSignFlip(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{5, 6, 7, 8}
	z1, err := RankSum(a, b)
	if err != nil {
		t.Fatalf("RankSum: %v", err)
	}
	z2, err := RankSum(b, a)
	if err != nil {
		t.Fatalf("RankSum: %v", err)
	}
	if !almostEqual(z1, -z2, 1e-9) {
		t.Fatalf("swap should flip sign: %v vs %v", z1, z2)
	}
}

func BenchmarkEnergyDistance32(b *testing.B) {
	rng := xrand.NewStream(1)
	x := randomCloud(rng, 32, 3, vec.New(0, 0, 0), 1)
	y := randomCloud(rng, 32, 3, vec.New(1, 1, 1), 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EnergyDistance(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRankSum200(b *testing.B) {
	rng := xrand.NewStream(1)
	x := make([]float64, 200)
	y := make([]float64, 200)
	for i := range x {
		x[i] = rng.Float64()
		y[i] = rng.Float64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RankSum(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
