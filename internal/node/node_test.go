package node

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"netcoord/internal/filter"
	"netcoord/internal/vivaldi"
)

// startNode launches a node with fast test timings.
func startNode(t *testing.T, seeds []string, mutate func(*Config)) *Node {
	t.Helper()
	cfg := Config{
		ListenAddr:     "127.0.0.1:0",
		Seeds:          seeds,
		Vivaldi:        vivaldi.DefaultConfig(),
		SampleInterval: 20 * time.Millisecond,
		PingTimeout:    500 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		if err := n.Stop(); err != nil {
			t.Errorf("Stop: %v", err)
		}
	})
	return n
}

func TestStartStop(t *testing.T) {
	n := startNode(t, nil, nil)
	if n.Addr() == "" {
		t.Fatal("no bound address")
	}
	c := n.Coordinate()
	if c.Dim() != 3 {
		t.Fatalf("dimension = %d", c.Dim())
	}
}

func TestStartRejectsBadConfig(t *testing.T) {
	bad := vivaldi.DefaultConfig()
	bad.CC = -1
	if _, err := Start(Config{ListenAddr: "127.0.0.1:0", Vivaldi: bad}); err == nil {
		t.Fatal("bad vivaldi config accepted")
	}
	if _, err := Start(Config{ListenAddr: "256.0.0.1:bad"}); err == nil {
		t.Fatal("bad listen address accepted")
	}
}

func TestSampleNowNoNeighbors(t *testing.T) {
	n := startNode(t, nil, nil)
	if err := n.SampleNow(context.Background()); !errors.Is(err, ErrNoNeighbors) {
		t.Fatalf("error = %v, want ErrNoNeighbors", err)
	}
}

func TestTwoNodesExchangeCoordinates(t *testing.T) {
	a := startNode(t, nil, nil)
	b := startNode(t, []string{a.Addr()}, nil)

	// Drive samples synchronously for determinism.
	for i := 0; i < 50; i++ {
		if err := b.SampleNow(context.Background()); err != nil {
			t.Fatalf("SampleNow: %v", err)
		}
	}
	if b.Samples() == 0 {
		t.Fatal("no samples applied")
	}
	// After samples, b's coordinate must have left the origin (loopback
	// RTT is tiny but positive) and its confidence must have grown.
	if b.Confidence() <= 0 {
		t.Fatalf("confidence = %v, want > 0", b.Confidence())
	}
}

func TestGossipGrowsNeighborSets(t *testing.T) {
	a := startNode(t, nil, nil)
	bCh := startNode(t, []string{a.Addr()}, nil)
	// c knows only a; through gossip it must eventually learn b, and a
	// must learn both ping sources.
	c := startNode(t, []string{a.Addr()}, nil)

	// b and c ping a; a learns both addresses from packet sources.
	for i := 0; i < 5; i++ {
		if err := bCh.SampleNow(context.Background()); err != nil {
			t.Fatalf("b SampleNow: %v", err)
		}
		if err := c.SampleNow(context.Background()); err != nil {
			t.Fatalf("c SampleNow: %v", err)
		}
	}
	aNeighbors := a.Neighbors()
	if len(aNeighbors) < 2 {
		t.Fatalf("a learned %d neighbors, want >= 2 (passive learning)", len(aNeighbors))
	}
	// Now a's pongs gossip its neighbor list; c should learn b.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if err := c.SampleNow(context.Background()); err != nil {
			t.Fatalf("c SampleNow: %v", err)
		}
		if len(c.Neighbors()) >= 2 {
			return
		}
	}
	t.Fatalf("c never learned a second neighbor: %v", c.Neighbors())
}

func TestNeighborBoundRespected(t *testing.T) {
	n := startNode(t, []string{"10.0.0.1:1", "10.0.0.2:1", "10.0.0.3:1"}, func(c *Config) {
		c.MaxNeighbors = 2
	})
	if got := len(n.Neighbors()); got != 2 {
		t.Fatalf("neighbors = %d, want bound of 2", got)
	}
}

func TestFailuresCounted(t *testing.T) {
	// Seed with a dead address: reserve a port, then close it.
	dead := startNode(t, nil, nil)
	deadAddr := dead.Addr()
	if err := dead.Stop(); err != nil {
		t.Fatalf("stop dead: %v", err)
	}
	n, err := Start(Config{
		ListenAddr:     "127.0.0.1:0",
		Seeds:          []string{deadAddr},
		Vivaldi:        vivaldi.DefaultConfig(),
		SampleInterval: time.Hour, // no background samples
		PingTimeout:    100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() {
		if err := n.Stop(); err != nil {
			t.Errorf("Stop: %v", err)
		}
	}()
	if err := n.SampleNow(context.Background()); err == nil {
		t.Fatal("sample of dead address succeeded")
	}
	if n.Failures() != 1 {
		t.Fatalf("Failures = %d, want 1", n.Failures())
	}
	// The dead node is stopped twice overall; ensure idempotent cleanup
	// didn't panic (covered by deferred Stop).
	_ = deadAddr
}

func TestAppUpdateNotifications(t *testing.T) {
	updates := make(chan Update, 16)
	a := startNode(t, nil, nil)
	b := startNode(t, []string{a.Addr()}, func(c *Config) {
		c.Updates = updates
	})
	for i := 0; i < 40; i++ {
		if err := b.SampleNow(context.Background()); err != nil {
			t.Fatalf("SampleNow: %v", err)
		}
	}
	select {
	case u := <-updates:
		if !u.Coord.Vec.IsFinite() {
			t.Fatalf("update coordinate invalid: %v", u.Coord)
		}
		if u.At.IsZero() {
			t.Fatal("update missing timestamp")
		}
	default:
		// The first policy observation always fires; with 40 samples we
		// must have at least one update.
		t.Fatal("no application updates received")
	}
}

func TestBackgroundSampling(t *testing.T) {
	a := startNode(t, nil, nil)
	b := startNode(t, []string{a.Addr()}, func(c *Config) {
		c.SampleInterval = 10 * time.Millisecond
	})
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if b.Samples() >= 3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("background sampler applied only %d samples", b.Samples())
}

func TestEstimateRTTAgainstPeer(t *testing.T) {
	a := startNode(t, nil, nil)
	b := startNode(t, []string{a.Addr()}, nil)
	for i := 0; i < 30; i++ {
		if err := b.SampleNow(context.Background()); err != nil {
			t.Fatalf("SampleNow: %v", err)
		}
	}
	est, err := b.EstimateRTT(a.Coordinate())
	if err != nil {
		t.Fatalf("EstimateRTT: %v", err)
	}
	if math.IsNaN(est) || est < 0 {
		t.Fatalf("estimate = %v", est)
	}
	// Loopback RTT is well under 50 ms; the estimate must be in a sane
	// range, not flung across the planet.
	if est > 50 {
		t.Fatalf("estimate = %v ms for loopback", est)
	}
}

func TestCustomFilterAndPolicyWiring(t *testing.T) {
	calls := 0
	a := startNode(t, nil, nil)
	b := startNode(t, []string{a.Addr()}, func(c *Config) {
		c.Filter = func() filter.Filter {
			calls++
			return filter.NewNone()
		}
	})
	if err := b.SampleNow(context.Background()); err != nil {
		t.Fatalf("SampleNow: %v", err)
	}
	if calls == 0 {
		t.Fatal("custom filter factory never invoked")
	}
	if b.Samples() != 1 {
		t.Fatalf("Samples = %d, want 1 (None filter passes first observation)", b.Samples())
	}
}

// TestSelfSeedPurged: a deployment handing every node the same seed
// list — including the node's own address — must not leave the node
// sampling itself. The self-address filter cannot fire while seeds are
// added (the socket is not bound yet), so Start purges it afterwards.
func TestSelfSeedPurged(t *testing.T) {
	// Grab a concrete port by binding an ephemeral node first.
	first := startNode(t, nil, nil)
	addr := first.Addr()
	if err := first.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}

	// Start inline rather than via the helper: losing the just-freed
	// port to another process is an environment hazard, not a failure.
	n, err := Start(Config{
		ListenAddr:     addr,
		Seeds:          []string{addr, "127.0.0.1:19"},
		Vivaldi:        vivaldi.DefaultConfig(),
		SampleInterval: 20 * time.Millisecond,
		PingTimeout:    500 * time.Millisecond,
	})
	if err != nil {
		t.Skipf("port %s was reclaimed by the OS: %v", addr, err)
	}
	t.Cleanup(func() {
		if err := n.Stop(); err != nil {
			t.Errorf("Stop: %v", err)
		}
	})
	for _, nb := range n.Neighbors() {
		if nb == addr {
			t.Fatalf("node kept itself (%s) as a neighbor: %v", addr, n.Neighbors())
		}
	}
	if len(n.Neighbors()) != 1 {
		t.Fatalf("neighbors = %v, want only the other seed", n.Neighbors())
	}
}
