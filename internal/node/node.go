// Package node runs a live network-coordinate participant: the
// deployable counterpart of the simulator, equivalent to the
// implementation the paper ran on 270 PlanetLab nodes (Section VI).
//
// A Node owns a UDP transport peer, a per-link filter bank, a Vivaldi
// endpoint, and an application-update policy. A background sampler pings
// one neighbor at a time in round-robin order on a fixed interval —
// matching the paper's five-second PlanetLab cadence — and each pong
// drives the filter -> Vivaldi -> policy pipeline. Neighbor discovery is
// by gossip: every message carries one neighbor address, and ping sources
// are learned passively.
//
// Lifecycle follows the project's goroutine hygiene rules: Start spawns
// the sampler, Stop cancels and joins it; the transport read loop is
// owned by the embedded peer and joined on Close.
package node

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"netcoord/internal/coord"
	"netcoord/internal/filter"
	"netcoord/internal/heuristic"
	"netcoord/internal/transport"
	"netcoord/internal/vivaldi"
)

// Defaults mirroring the paper's PlanetLab deployment.
const (
	// DefaultSampleInterval is the paper's five-second sampling cadence.
	DefaultSampleInterval = 5 * time.Second
	// DefaultPingTimeout bounds how long a sample may take.
	DefaultPingTimeout = 2 * time.Second
	// DefaultMaxNeighbors bounds the gossip-grown neighbor set.
	DefaultMaxNeighbors = 64
)

// Update is one application-level coordinate change notification.
type Update struct {
	// Coord is the new application-level coordinate.
	Coord coord.Coordinate
	// At is when the change was detected.
	At time.Time
	// Error is the node's Vivaldi error weight at the time of the change,
	// so registry consumers can weight entries by confidence.
	Error float64
}

// Config assembles a node.
type Config struct {
	// ListenAddr is the UDP bind address ("127.0.0.1:0" for ephemeral).
	ListenAddr string
	// Seeds are initial neighbor addresses; at least one is required to
	// join an existing system (a brand-new system's first node may start
	// with none).
	Seeds []string
	// Vivaldi configures the update algorithm.
	Vivaldi vivaldi.Config
	// Filter builds the per-link filter; nil means the paper's MP
	// defaults.
	Filter filter.Factory
	// Policy is the application-update policy; nil means ENERGY with the
	// paper's PlanetLab parameters (window 32, tau 8).
	Policy heuristic.Policy
	// SampleInterval is the time between pings; 0 means the default.
	SampleInterval time.Duration
	// PingTimeout bounds each ping; 0 means the default.
	PingTimeout time.Duration
	// MaxNeighbors bounds the neighbor set; 0 means the default.
	MaxNeighbors int
	// Updates, if non-nil, receives application-level coordinate
	// changes. The channel should be buffered; when it is full,
	// notifications are dropped rather than blocking the sampler.
	Updates chan<- Update
}

// Node is a running coordinate-system participant.
type Node struct {
	cfg  Config
	peer *transport.Peer

	mu          sync.Mutex
	viv         *vivaldi.Node
	bank        *filter.Bank[string]
	policy      heuristic.Policy
	neighbors   []string
	neighborSet map[string]bool
	cursor      int
	nnAddr      string
	nnDist      float64
	nnCoord     coord.Coordinate
	hasNN       bool
	samples     uint64
	failures    uint64

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// Start builds and launches a node.
func Start(cfg Config) (*Node, error) {
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = DefaultSampleInterval
	}
	if cfg.PingTimeout <= 0 {
		cfg.PingTimeout = DefaultPingTimeout
	}
	if cfg.MaxNeighbors <= 0 {
		cfg.MaxNeighbors = DefaultMaxNeighbors
	}
	if cfg.Vivaldi.Dimension == 0 {
		cfg.Vivaldi = vivaldi.DefaultConfig()
	}
	viv, err := vivaldi.New(cfg.Vivaldi)
	if err != nil {
		return nil, fmt.Errorf("node: %w", err)
	}
	factory := cfg.Filter
	if factory == nil {
		factory = func() filter.Filter {
			f, err := filter.NewMP(filter.DefaultMPConfig())
			if err != nil {
				return filter.NewNone()
			}
			return f
		}
	}
	policy := cfg.Policy
	if policy == nil {
		policy, err = heuristic.NewEnergy(cfg.Vivaldi.Dimension, heuristic.DefaultWindow, heuristic.DefaultEnergyTau)
		if err != nil {
			return nil, fmt.Errorf("node: %w", err)
		}
	}

	n := &Node{
		cfg:         cfg,
		viv:         viv,
		bank:        filter.NewBank[string](factory, cfg.MaxNeighbors),
		policy:      policy,
		neighborSet: make(map[string]bool),
		nnDist:      math.Inf(1),
	}
	for _, s := range cfg.Seeds {
		n.addNeighborLocked(s)
	}

	peer, err := transport.Listen(cfg.ListenAddr, n.transportState, n.observeInbound)
	if err != nil {
		return nil, fmt.Errorf("node: %w", err)
	}
	// The transport's read loop is already live and calls back into
	// observeInbound, which reads n.peer under n.mu — publish it under
	// the same lock. addNeighborLocked tolerates the brief nil window.
	n.mu.Lock()
	n.peer = peer
	// Neighbors added before the bind address was known (the seed list,
	// or gossip that raced the publish above) could include ourselves;
	// a node must never sample itself, so purge now that we know who we
	// are.
	n.removeNeighborLocked(peer.Addr())
	n.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	n.cancel = cancel
	n.wg.Add(1)
	go n.sampleLoop(ctx)
	return n, nil
}

// Stop terminates the sampler and closes the transport.
func (n *Node) Stop() error {
	n.cancel()
	n.wg.Wait()
	if err := n.peer.Close(); err != nil {
		return fmt.Errorf("node stop: %w", err)
	}
	return nil
}

// Addr returns the node's bound UDP address.
func (n *Node) Addr() string { return n.peer.Addr() }

// Coordinate returns the current system-level coordinate.
func (n *Node) Coordinate() coord.Coordinate {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.viv.Coordinate()
}

// AppCoordinate returns the current application-level coordinate.
func (n *Node) AppCoordinate() coord.Coordinate {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.policy.App()
}

// Confidence returns 1 - w (the paper's Figure 6 quantity).
func (n *Node) Confidence() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.viv.Confidence()
}

// EstimateRTT predicts the RTT in milliseconds to a remote coordinate.
func (n *Node) EstimateRTT(remote coord.Coordinate) (float64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.viv.EstimateRTT(remote)
}

// Neighbors returns a snapshot of the neighbor set.
func (n *Node) Neighbors() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, len(n.neighbors))
	copy(out, n.neighbors)
	return out
}

// Samples reports the number of successful latency observations applied.
func (n *Node) Samples() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.samples
}

// Failures reports the number of pings that timed out or failed.
func (n *Node) Failures() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.failures
}

// transportState snapshots local state for outgoing messages, attaching
// one gossiped neighbor in round-robin order.
func (n *Node) transportState() transport.State {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := transport.State{
		Coord: n.viv.Coordinate(),
		Error: n.viv.Error(),
	}
	if len(n.neighbors) > 0 {
		st.Gossip = n.neighbors[int(n.samples)%len(n.neighbors)]
	}
	return st
}

// observeInbound learns neighbors passively: the sender of any inbound
// ping and any gossiped address join the neighbor set.
func (n *Node) observeInbound(remoteAddr string, msg transport.Message) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if msg.Type == transport.TypePing {
		n.addNeighborLocked(remoteAddr)
	}
	if msg.Gossip != "" {
		n.addNeighborLocked(msg.Gossip)
	}
}

// addNeighborLocked inserts an address if new, respecting the bound.
// Callers hold n.mu.
func (n *Node) addNeighborLocked(addr string) {
	if addr == "" || n.neighborSet[addr] {
		return
	}
	if n.peer != nil && addr == n.peer.Addr() {
		return // never sample ourselves
	}
	if len(n.neighbors) >= n.cfg.MaxNeighbors {
		return
	}
	n.neighborSet[addr] = true
	n.neighbors = append(n.neighbors, addr)
}

// removeNeighborLocked deletes an address from the neighbor set if
// present. Callers hold n.mu.
func (n *Node) removeNeighborLocked(addr string) {
	if !n.neighborSet[addr] {
		return
	}
	delete(n.neighborSet, addr)
	for i, a := range n.neighbors {
		if a == addr {
			n.neighbors = append(n.neighbors[:i], n.neighbors[i+1:]...)
			break
		}
	}
}

// nextNeighborLocked returns the next round-robin target, or "" if the
// neighbor set is empty. Callers hold n.mu.
func (n *Node) nextNeighborLocked() string {
	if len(n.neighbors) == 0 {
		return ""
	}
	addr := n.neighbors[n.cursor%len(n.neighbors)]
	n.cursor++
	return addr
}

// sampleLoop pings one neighbor per interval until cancelled.
func (n *Node) sampleLoop(ctx context.Context) {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.SampleInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			n.sampleOnce(ctx)
		}
	}
}

// sampleOnce performs one ping and applies the observation pipeline.
func (n *Node) sampleOnce(ctx context.Context) {
	n.mu.Lock()
	target := n.nextNeighborLocked()
	n.mu.Unlock()
	if target == "" {
		return
	}
	res, err := n.peer.Ping(ctx, target, n.cfg.PingTimeout)
	if err != nil {
		n.mu.Lock()
		n.failures++
		n.mu.Unlock()
		return
	}
	n.applyObservation(target, res)
}

// applyObservation runs filter -> Vivaldi -> policy for one pong.
func (n *Node) applyObservation(target string, res transport.PingResult) {
	rttMS := float64(res.RTT) / float64(time.Millisecond)
	if rttMS <= 0 {
		rttMS = 0.01 // clock granularity floor: loopback pings can
		// complete inside one timer tick
	}
	if err := res.Coord.Validate(n.cfg.Vivaldi.Dimension); err != nil {
		return // hostile or mismatched peer: ignore
	}

	var notify *Update
	n.mu.Lock()
	if res.Gossip != "" {
		n.addNeighborLocked(res.Gossip)
	}
	filtered, ok := n.bank.Observe(target, rttMS)
	if ok {
		if filtered < n.nnDist || target == n.nnAddr {
			n.nnAddr = target
			n.nnDist = filtered
			n.nnCoord = res.Coord
			n.hasNN = true
		}
		newSys, err := n.viv.Update(filtered, res.Coord, res.Error)
		if err == nil {
			n.samples++
			app, changed, perr := n.policy.Observe(heuristic.Observation{
				Sys:         newSys,
				Neighbor:    n.nnCoord,
				HasNeighbor: n.hasNN,
			})
			if perr == nil && changed && n.cfg.Updates != nil {
				// app is a view of the policy's internal buffer (valid
				// only until the next Observe); the published update
				// needs its own copy.
				notify = &Update{Coord: app.Clone(), At: time.Now(), Error: n.viv.Error()}
			}
		}
	}
	n.mu.Unlock()

	if notify != nil {
		select {
		case n.cfg.Updates <- *notify:
		default:
			// Receiver is slow: drop rather than stall sampling. The
			// whole point of application-level coordinates is that
			// updates are rare, so a full channel means a stuck app.
		}
	}
}

// ErrNoNeighbors is reported by SampleNow when there is nobody to ping.
var ErrNoNeighbors = errors.New("node: no neighbors")

// SampleNow performs one synchronous sample, for tests and
// fast-convergence bootstraps.
func (n *Node) SampleNow(ctx context.Context) error {
	n.mu.Lock()
	target := n.nextNeighborLocked()
	n.mu.Unlock()
	if target == "" {
		return ErrNoNeighbors
	}
	res, err := n.peer.Ping(ctx, target, n.cfg.PingTimeout)
	if err != nil {
		n.mu.Lock()
		n.failures++
		n.mu.Unlock()
		return fmt.Errorf("sample %s: %w", target, err)
	}
	n.applyObservation(target, res)
	return nil
}
