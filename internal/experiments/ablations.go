package experiments

import (
	"fmt"
	"strings"

	"netcoord/internal/filter"
	"netcoord/internal/metrics"
	"netcoord/internal/netsim"
	"netcoord/internal/vivaldi"
)

// AblationStaticMatrixResult (A1) contrasts the original Vivaldi
// evaluation methodology — a fixed latency matrix — with live observation
// streams, both unfiltered. The paper's motivating observation: Vivaldi
// looks fine in matrix-driven simulation and breaks on real input.
type AblationStaticMatrixResult struct {
	Static metrics.Summary
	Live   metrics.Summary
}

// AblationStaticMatrix runs unfiltered Vivaldi on both inputs.
func AblationStaticMatrix(scale Scale) (*AblationStaticMatrixResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	from, to := scale.MeasureFrom(), scale.DurationTicks
	staticRun, err := run(runSpec{scale: scale, netMutate: func(c *netsim.Config) { c.Static = true }})
	if err != nil {
		return nil, err
	}
	liveRun, err := run(runSpec{scale: scale})
	if err != nil {
		return nil, err
	}
	st, err := staticRun.Sys().Summarize(from, to)
	if err != nil {
		return nil, err
	}
	lv, err := liveRun.Sys().Summarize(from, to)
	if err != nil {
		return nil, err
	}
	return &AblationStaticMatrixResult{Static: st, Live: lv}, nil
}

// Render implements the experiment output contract.
func (r *AblationStaticMatrixResult) Render() string {
	var sb strings.Builder
	sb.WriteString(header("Ablation A1: static latency matrix vs live observation streams (no filter)"))
	sb.WriteString(fmt.Sprintf("%-16s %-14s %-14s\n", "input", "med rel err", "instability"))
	sb.WriteString(fmt.Sprintf("%-16s %-14.4f %-14.2f\n", "static matrix", r.Static.MedianRelErr, r.Static.MedianInstability))
	sb.WriteString(fmt.Sprintf("%-16s %-14.4f %-14.2f\n", "live streams", r.Live.MedianRelErr, r.Live.MedianInstability))
	sb.WriteString("the original evaluation's methodology hides the instability the paper addresses\n")
	return sb.String()
}

// AblationThresholdResult (A2) measures the fixed-cutoff filter the
// paper rejected in Section IV-B: helpful against the global extremes,
// useless for per-link outliers below the cutoff.
type AblationThresholdResult struct {
	Rows []Table1Row
}

// AblationThresholdFilter compares cutoffs against MP and no filter.
func AblationThresholdFilter(scale Scale) (*AblationThresholdResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	from, to := scale.MeasureFrom(), scale.DurationTicks
	threshold := func(cutoff float64) filter.Factory {
		return func() filter.Filter {
			f, err := filter.NewThreshold(cutoff)
			if err != nil {
				return filter.NewNone()
			}
			return f
		}
	}
	type cfg struct {
		name    string
		factory filter.Factory
	}
	cfgs := []cfg{
		{name: "MP Filter", factory: mpFactory},
		{name: "No Filter", factory: nil},
		{name: "Cutoff 1000ms", factory: threshold(1000)},
		{name: "Cutoff 500ms", factory: threshold(500)},
		{name: "Cutoff 250ms", factory: threshold(250)},
	}
	sums := make([]metrics.Summary, len(cfgs))
	for i, c := range cfgs {
		r, err := run(runSpec{scale: scale, filter: c.factory})
		if err != nil {
			return nil, fmt.Errorf("ablation threshold %s: %w", c.name, err)
		}
		if sums[i], err = r.Sys().Summarize(from, to); err != nil {
			return nil, err
		}
	}
	base := sums[1]
	res := &AblationThresholdResult{}
	for i, c := range cfgs {
		res.Rows = append(res.Rows, Table1Row{
			Name:              c.name,
			MedianRelErr:      sums[i].MedianRelErr,
			MedianInstability: sums[i].MedianInstability,
			RelErrDelta:       pct(sums[i].MedianRelErr, base.MedianRelErr),
			InstabilityDelta:  pct(sums[i].MedianInstability, base.MedianInstability),
		})
	}
	return res, nil
}

// Render implements the experiment output contract.
func (r *AblationThresholdResult) Render() string {
	var sb strings.Builder
	sb.WriteString(header("Ablation A2: fixed discard thresholds vs MP filter"))
	sb.WriteString(fmt.Sprintf("%-14s %-22s %-22s\n", "filter", "median rel err", "instability (ms/s)"))
	for _, row := range r.Rows {
		sb.WriteString(fmt.Sprintf("%-14s %-8.3f (%-6s)      %-8.1f (%-6s)\n",
			row.Name, row.MedianRelErr, row.RelErrDelta, row.MedianInstability, row.InstabilityDelta))
	}
	sb.WriteString("paper: thresholds in isolation give only minimal improvement (Section IV-B)\n")
	return sb.String()
}

// AblationDampingResult (A3) measures the de Launois damping variant
// across a genuine route change: stable before, unable to adapt after.
type AblationDampingResult struct {
	// Before/After are median relative errors over the pre-/post-change
	// measurement windows.
	DampedBefore float64
	DampedAfter  float64
	MPBefore     float64
	MPAfter      float64
}

// AblationDampedVivaldi doubles the us-west/europe long-haul latency at
// 60% of the run and compares adaptation.
func AblationDampedVivaldi(scale Scale) (*AblationDampingResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	changeAt := scale.DurationTicks * 6 / 10
	mutate := func(c *netsim.Config) {
		c.RouteChanges = []netsim.RouteChange{{AtTick: changeAt, RegionA: 0, RegionB: 2, Factor: 2}}
	}
	// Measurement windows: the stretch just before the change, and the
	// final stretch (allowing re-convergence time after it).
	preFrom, preTo := scale.DurationTicks*4/10, changeAt-1
	postFrom, postTo := scale.DurationTicks*8/10, scale.DurationTicks

	damped, err := run(runSpec{
		scale: scale, filter: mpFactory, netMutate: mutate,
		vivMutate: func(v *vivaldi.Config) { v.DampingConstant = 50 },
	})
	if err != nil {
		return nil, err
	}
	mp, err := run(runSpec{scale: scale, filter: mpFactory, netMutate: mutate})
	if err != nil {
		return nil, err
	}
	res := &AblationDampingResult{}
	read := func(r summaryReader, from, to uint64) (float64, error) {
		s, err := r.Summarize(from, to)
		if err != nil {
			return 0, err
		}
		return s.MedianRelErr, nil
	}
	if res.DampedBefore, err = read(damped.Sys(), preFrom, preTo); err != nil {
		return nil, err
	}
	if res.DampedAfter, err = read(damped.Sys(), postFrom, postTo); err != nil {
		return nil, err
	}
	if res.MPBefore, err = read(mp.Sys(), preFrom, preTo); err != nil {
		return nil, err
	}
	if res.MPAfter, err = read(mp.Sys(), postFrom, postTo); err != nil {
		return nil, err
	}
	return res, nil
}

// summaryReader is the slice of metrics.Collector the ablation needs.
type summaryReader interface {
	Summarize(from, to uint64) (metrics.Summary, error)
}

// Render implements the experiment output contract.
func (r *AblationDampingResult) Render() string {
	var sb strings.Builder
	sb.WriteString(header("Ablation A3: de Launois damping across a route change (us-west<->europe x2)"))
	sb.WriteString(fmt.Sprintf("%-18s %-16s %-16s\n", "config", "rel err before", "rel err after"))
	sb.WriteString(fmt.Sprintf("%-18s %-16.4f %-16.4f\n", "damped vivaldi", r.DampedBefore, r.DampedAfter))
	sb.WriteString(fmt.Sprintf("%-18s %-16.4f %-16.4f\n", "MP (undamped)", r.MPBefore, r.MPAfter))
	sb.WriteString("damping freezes the space: error after the change stays elevated (Section VII-B)\n")
	return sb.String()
}

// AblationWarmupResult (A4) quantifies the Section VI fix: an MP filter
// that answers from its very first sample lets first-observation
// outliers fling nodes across the space; waiting for the second sample
// removes the pathology.
type AblationWarmupResult struct {
	// EarlyInstability is the mean instability over the first tenth of
	// the run for each configuration.
	ImmediateEarly float64
	WarmupEarly    float64
	// Steady are the post-warmup medians — the fix must not cost
	// steady-state accuracy.
	ImmediateSteadyErr float64
	WarmupSteadyErr    float64
}

// AblationFilterWarmup compares UpdateAfter = 1 vs 2.
func AblationFilterWarmup(scale Scale) (*AblationWarmupResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	earlyTo := scale.DurationTicks / 10
	from, to := scale.MeasureFrom(), scale.DurationTicks
	immediate, err := run(runSpec{scale: scale, filter: mpFactoryImmediate})
	if err != nil {
		return nil, err
	}
	warm, err := run(runSpec{scale: scale, filter: mpFactory})
	if err != nil {
		return nil, err
	}
	res := &AblationWarmupResult{}
	iEarly, err := immediate.Sys().Summarize(0, earlyTo)
	if err != nil {
		return nil, err
	}
	wEarly, err := warm.Sys().Summarize(0, earlyTo)
	if err != nil {
		return nil, err
	}
	iSteady, err := immediate.Sys().Summarize(from, to)
	if err != nil {
		return nil, err
	}
	wSteady, err := warm.Sys().Summarize(from, to)
	if err != nil {
		return nil, err
	}
	res.ImmediateEarly = iEarly.MeanInstability
	res.WarmupEarly = wEarly.MeanInstability
	res.ImmediateSteadyErr = iSteady.MedianRelErr
	res.WarmupSteadyErr = wSteady.MedianRelErr
	return res, nil
}

// Render implements the experiment output contract.
func (r *AblationWarmupResult) Render() string {
	var sb strings.Builder
	sb.WriteString(header("Ablation A4: MP filter warm-up (UpdateAfter 1 vs 2)"))
	sb.WriteString(fmt.Sprintf("%-20s %-22s %-18s\n", "config", "early instability", "steady rel err"))
	sb.WriteString(fmt.Sprintf("%-20s %-22.2f %-18.4f\n", "immediate (paper)", r.ImmediateEarly, r.ImmediateSteadyErr))
	sb.WriteString(fmt.Sprintf("%-20s %-22.2f %-18.4f\n", "warm-up of 2 (fix)", r.WarmupEarly, r.WarmupSteadyErr))
	sb.WriteString("paper: waiting for the second sample \"greatly reduced early instability\" at no steady cost\n")
	return sb.String()
}
