package experiments

import (
	"fmt"
	"strings"
	"sync"

	"netcoord/internal/heuristic"
	"netcoord/internal/sim"
)

// SweepPoint is one (parameter, metrics) point of a heuristic sweep.
type SweepPoint struct {
	Param              float64
	MedianRelErr       float64
	MedianInstability  float64
	MeanUpdateFraction float64
}

// sweep runs one policy configuration per parameter value and reads the
// application-level metrics over the measurement half. Points are
// independent simulations, so Scale.SweepParallelism > 1 runs that many
// at once — experiment-level parallelism on top of (or instead of) the
// per-run engine. Results are slotted by parameter index, so the output
// is positionally identical to the sequential loop regardless of
// completion order.
func sweep(scale Scale, params []float64, build func(p float64) sim.PolicyFactory) ([]SweepPoint, error) {
	from, to := scale.MeasureFrom(), scale.DurationTicks
	one := func(scale Scale, p float64) (SweepPoint, error) {
		r, err := run(runSpec{scale: scale, filter: mpFactory, policy: build(p)})
		if err != nil {
			return SweepPoint{}, fmt.Errorf("sweep param %v: %w", p, err)
		}
		s, err := r.App().Summarize(from, to)
		if err != nil {
			return SweepPoint{}, err
		}
		return SweepPoint{
			Param:              p,
			MedianRelErr:       s.MedianRelErr,
			MedianInstability:  s.MedianInstability,
			MeanUpdateFraction: s.MeanUpdateFraction,
		}, nil
	}

	if scale.SweepParallelism <= 1 {
		out := make([]SweepPoint, 0, len(params))
		for _, p := range params {
			pt, err := one(scale, p)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
		return out, nil
	}

	// Whole simulations in flight at once: a semaphore of grid slots,
	// each run forced to the sequential engine so the grid, not nested
	// worker pools, owns the cores.
	inner := scale
	inner.Parallelism = 1
	out := make([]SweepPoint, len(params))
	errs := make([]error, len(params))
	sem := make(chan struct{}, scale.SweepParallelism)
	var wg sync.WaitGroup
	for i, p := range params {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, p float64) {
			defer func() { <-sem; wg.Done() }()
			out[i], errs[i] = one(inner, p)
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func renderSweep(name, param string, pts []SweepPoint) string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("--- %s ---\n", name))
	sb.WriteString(fmt.Sprintf("%-10s %-14s %-14s %-14s\n", param, "med rel err", "instability", "updates/s (%)"))
	for _, p := range pts {
		sb.WriteString(fmt.Sprintf("%-10.4g %-14.4f %-14.3f %-14.2f\n",
			p.Param, p.MedianRelErr, p.MedianInstability, p.MeanUpdateFraction*100))
	}
	return sb.String()
}

// energyTaus is the paper's Figure 8/10 x-axis for ENERGY.
func energyTaus() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
}

// relativeEpsilons is the paper's Figure 8/10 x-axis for RELATIVE.
func relativeEpsilons() []float64 {
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
}

// Fig08Result reproduces Figure 8: instability and median relative error
// as the update threshold varies, window fixed at 32. The paper's
// finding: both window heuristics gain stability with threshold at
// little accuracy cost; accuracy starts to decline after tau = 8
// (ENERGY) and epsilon = 0.3 (RELATIVE).
type Fig08Result struct {
	Energy   []SweepPoint
	Relative []SweepPoint
}

// Fig08ThresholdSweep runs both window-based heuristics across their
// threshold ranges.
func Fig08ThresholdSweep(scale Scale) (*Fig08Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	energy, err := sweep(scale, energyTaus(), func(tau float64) sim.PolicyFactory {
		return func(dim int) (heuristic.Policy, error) {
			return heuristic.NewEnergy(dim, heuristic.DefaultWindow, tau)
		}
	})
	if err != nil {
		return nil, err
	}
	relative, err := sweep(scale, relativeEpsilons(), func(eps float64) sim.PolicyFactory {
		return func(dim int) (heuristic.Policy, error) {
			return heuristic.NewRelative(dim, heuristic.DefaultWindow, eps)
		}
	})
	if err != nil {
		return nil, err
	}
	return &Fig08Result{Energy: energy, Relative: relative}, nil
}

// Render implements the experiment output contract.
func (r *Fig08Result) Render() string {
	var sb strings.Builder
	sb.WriteString(header("Figure 8: threshold sweep for ENERGY and RELATIVE (window 32)"))
	sb.WriteString(renderSweep("ENERGY (tau)", "tau", r.Energy))
	sb.WriteString(renderSweep("RELATIVE (epsilon)", "eps", r.Relative))
	sb.WriteString("paper: stability grows with threshold; accuracy declines after tau=8 / eps=0.3\n")
	return sb.String()
}

// Fig09Result reproduces Figure 9: window-size sweep at fixed thresholds
// (tau=8, eps=0.3). The paper's finding: windows 2^5..2^9 improve all
// three metrics; very large windows update too rarely.
type Fig09Result struct {
	Energy   []SweepPoint
	Relative []SweepPoint
}

// Fig09WindowSizeSweep varies the window size exponentially.
func Fig09WindowSizeSweep(scale Scale) (*Fig09Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	windows := []float64{4, 8, 16, 32, 64, 128, 256, 512, 1024}
	// Cap window sizes at what the run can actually fill a few times
	// over, otherwise the sweep measures nothing but warm-up.
	maxW := float64(scale.DurationTicks / scale.IntervalTicks / 4)
	var usable []float64
	for _, w := range windows {
		if w <= maxW {
			usable = append(usable, w)
		}
	}
	energy, err := sweep(scale, usable, func(w float64) sim.PolicyFactory {
		return func(dim int) (heuristic.Policy, error) {
			return heuristic.NewEnergy(dim, int(w), heuristic.DefaultEnergyTau)
		}
	})
	if err != nil {
		return nil, err
	}
	relative, err := sweep(scale, usable, func(w float64) sim.PolicyFactory {
		return func(dim int) (heuristic.Policy, error) {
			return heuristic.NewRelative(dim, int(w), heuristic.DefaultRelativeEpsilon)
		}
	})
	if err != nil {
		return nil, err
	}
	return &Fig09Result{Energy: energy, Relative: relative}, nil
}

// Render implements the experiment output contract.
func (r *Fig09Result) Render() string {
	var sb strings.Builder
	sb.WriteString(header("Figure 9: window-size sweep for ENERGY (tau=8) and RELATIVE (eps=0.3)"))
	sb.WriteString(renderSweep("ENERGY", "window", r.Energy))
	sb.WriteString(renderSweep("RELATIVE", "window", r.Relative))
	sb.WriteString("paper: large windows improve stability and cut update frequency at stable accuracy\n")
	return sb.String()
}

// Fig10Result reproduces Figure 10: all four heuristics across their
// threshold ranges. The windowless heuristics can only trade accuracy
// for stability; the window-based ones keep both.
type Fig10Result struct {
	Energy      []SweepPoint
	Relative    []SweepPoint
	System      []SweepPoint
	Application []SweepPoint
}

// Fig10HeuristicComparison sweeps all four policies.
func Fig10HeuristicComparison(scale Scale) (*Fig10Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	energy, err := sweep(scale, energyTaus(), func(tau float64) sim.PolicyFactory {
		return func(dim int) (heuristic.Policy, error) {
			return heuristic.NewEnergy(dim, heuristic.DefaultWindow, tau)
		}
	})
	if err != nil {
		return nil, err
	}
	relative, err := sweep(scale, relativeEpsilons(), func(eps float64) sim.PolicyFactory {
		return func(dim int) (heuristic.Policy, error) {
			return heuristic.NewRelative(dim, heuristic.DefaultWindow, eps)
		}
	})
	if err != nil {
		return nil, err
	}
	system, err := sweep(scale, energyTaus(), func(tau float64) sim.PolicyFactory {
		return func(dim int) (heuristic.Policy, error) {
			return heuristic.NewSystem(dim, tau)
		}
	})
	if err != nil {
		return nil, err
	}
	application, err := sweep(scale, energyTaus(), func(tau float64) sim.PolicyFactory {
		return func(dim int) (heuristic.Policy, error) {
			return heuristic.NewApplication(dim, tau)
		}
	})
	if err != nil {
		return nil, err
	}
	return &Fig10Result{Energy: energy, Relative: relative, System: system, Application: application}, nil
}

// Render implements the experiment output contract.
func (r *Fig10Result) Render() string {
	var sb strings.Builder
	sb.WriteString(header("Figure 10: all four heuristics vs threshold"))
	sb.WriteString(renderSweep("ENERGY (window 32)", "tau", r.Energy))
	sb.WriteString(renderSweep("RELATIVE (window 32)", "eps", r.Relative))
	sb.WriteString(renderSweep("SYSTEM", "tau", r.System))
	sb.WriteString(renderSweep("APPLICATION", "tau", r.Application))
	sb.WriteString("paper: windowless heuristics trade accuracy for stability; window-based keep both\n")
	return sb.String()
}

// Fig11Result reproduces Figure 11: application-level suppression vs the
// raw MP stream — full CDFs of per-node median error and instability.
type Fig11Result struct {
	EnergyMP   StreamCDFs
	RelativeMP StreamCDFs
	RawMP      StreamCDFs
}

// Fig11AppLevelCDFs runs ENERGY+MP and RELATIVE+MP and compares their
// app-level streams with the raw (Direct) MP stream.
func Fig11AppLevelCDFs(scale Scale) (*Fig11Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	from, to := scale.MeasureFrom(), scale.DurationTicks

	energyRun, err := run(runSpec{scale: scale, filter: mpFactory, policy: func(dim int) (heuristic.Policy, error) {
		return heuristic.NewEnergy(dim, heuristic.DefaultWindow, heuristic.DefaultEnergyTau)
	}})
	if err != nil {
		return nil, err
	}
	energy, err := collectStreamCDFs("ENERGY + MP filter", energyRun.App(), from, to)
	if err != nil {
		return nil, err
	}
	relativeRun, err := run(runSpec{scale: scale, filter: mpFactory, policy: func(dim int) (heuristic.Policy, error) {
		return heuristic.NewRelative(dim, heuristic.DefaultWindow, heuristic.DefaultRelativeEpsilon)
	}})
	if err != nil {
		return nil, err
	}
	relative, err := collectStreamCDFs("RELATIVE + MP filter", relativeRun.App(), from, to)
	if err != nil {
		return nil, err
	}
	// The raw MP stream is the system level of either run; reuse the
	// energy run's.
	raw, err := collectStreamCDFs("Raw MP filter", energyRun.Sys(), from, to)
	if err != nil {
		return nil, err
	}
	return &Fig11Result{EnergyMP: energy, RelativeMP: relative, RawMP: raw}, nil
}

// Render implements the experiment output contract.
func (r *Fig11Result) Render() string {
	var sb strings.Builder
	sb.WriteString(header("Figure 11: application-level suppression vs raw MP stream"))
	sb.WriteString(renderStream(r.EnergyMP))
	sb.WriteString(renderStream(r.RelativeMP))
	sb.WriteString(renderStream(r.RawMP))
	sb.WriteString("paper: ENERGY and RELATIVE keep the raw filter's accuracy while shifting instability far left\n")
	return sb.String()
}

// Fig12Result reproduces Figure 12: the APPLICATION/CENTROID hybrid.
type Fig12Result struct {
	Points []SweepPoint
}

// Fig12ApplicationCentroid sweeps APPLICATION/CENTROID's threshold with
// the standard window of 32.
func Fig12ApplicationCentroid(scale Scale) (*Fig12Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	pts, err := sweep(scale, energyTaus(), func(tau float64) sim.PolicyFactory {
		return func(dim int) (heuristic.Policy, error) {
			return heuristic.NewApplicationCentroid(dim, heuristic.DefaultWindow, tau)
		}
	})
	if err != nil {
		return nil, err
	}
	return &Fig12Result{Points: pts}, nil
}

// Render implements the experiment output contract.
func (r *Fig12Result) Render() string {
	var sb strings.Builder
	sb.WriteString(header("Figure 12: APPLICATION/CENTROID threshold sweep (window 32)"))
	sb.WriteString(renderSweep("APPLICATION/CENTROID", "tau", r.Points))
	sb.WriteString("paper: more stable than plain APPLICATION, but gains stability only at accuracy's expense\n")
	return sb.String()
}
