package experiments

import (
	"fmt"
	"strings"

	"netcoord/internal/stats"
)

// Fig02Result reproduces Figure 2: the frequency histogram of raw
// latency measurements across the whole population, on the paper's
// bucket layout. The headline calibration is that ~0.4% of measurements
// exceed one second.
type Fig02Result struct {
	Hist *stats.Histogram
	// FractionAboveOneSecond is the paper's 0.4% headline number.
	FractionAboveOneSecond float64
	// Total is the number of measurements observed.
	Total uint64
}

// Fig02RawLatencyHistogram runs the trace generator and histograms every
// raw observation.
func Fig02RawLatencyHistogram(scale Scale) (*Fig02Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	net, err := scale.network(nil)
	if err != nil {
		return nil, err
	}
	gen, err := scale.generator(net)
	if err != nil {
		return nil, err
	}
	hist, err := stats.NewHistogram(stats.Fig2Bounds())
	if err != nil {
		return nil, err
	}
	for {
		s, ok := gen.Next()
		if !ok {
			break
		}
		if s.Lost {
			continue
		}
		hist.Observe(s.RTT)
	}
	return &Fig02Result{
		Hist:                   hist,
		FractionAboveOneSecond: hist.FractionAtOrAbove(1000),
		Total:                  hist.Total(),
	}, nil
}

// Render implements the experiment output contract.
func (r *Fig02Result) Render() string {
	var sb strings.Builder
	sb.WriteString(header("Figure 2: frequency histogram of raw latency measurements"))
	sb.WriteString(r.Hist.Render())
	sb.WriteString(fmt.Sprintf("total samples: %d\n", r.Total))
	sb.WriteString(fmt.Sprintf("fraction >= 1s: %.4f%% (paper: ~0.4%%)\n", r.FractionAboveOneSecond*100))
	return sb.String()
}

// Fig03Result reproduces Figure 3: one representative link's histogram
// (200 ms buckets) and its latency-over-time scatter, demonstrating that
// per-link heavy tails persist across the whole trace.
type Fig03Result struct {
	From, To int
	Hist     *stats.Histogram
	// Scatter holds (tick-hours, RTT ms) points, downsampled.
	Scatter []stats.Point
	Median  float64
	Max     float64
	// SpikeSpread is the fraction of >=10x-median samples that fall in
	// the second half of the trace (≈0.5 means spikes are spread evenly
	// over time, the paper's observation).
	SpikeSpread float64
}

// Fig03SingleLinkDistribution examines one representative
// inter-continental link.
func Fig03SingleLinkDistribution(scale Scale) (*Fig03Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	net, err := scale.network(nil)
	if err != nil {
		return nil, err
	}
	// Node 0 (us-west) to node 3 (china): a long-haul link like the
	// paper's example.
	const from, to = 0, 3
	hist, err := stats.NewHistogram(stats.Fig3Bounds())
	if err != nil {
		return nil, err
	}
	var values []float64
	var scatter []stats.Point
	sampleEvery := scale.DurationTicks / 2000
	if sampleEvery == 0 {
		sampleEvery = 1
	}
	for tick := uint64(0); tick < scale.DurationTicks; tick++ {
		rtt, ok := net.Sample(from, to, tick)
		if !ok {
			continue
		}
		hist.Observe(rtt)
		values = append(values, rtt)
		if tick%sampleEvery == 0 {
			scatter = append(scatter, stats.Point{X: float64(tick) / 3600, Y: rtt})
		}
	}
	med, err := stats.Median(values)
	if err != nil {
		return nil, err
	}
	maxV, err := stats.Percentile(values, 100)
	if err != nil {
		return nil, err
	}
	spikesLate, spikes := 0, 0
	for i, v := range values {
		if v >= 10*med {
			spikes++
			if uint64(i) >= uint64(len(values))/2 {
				spikesLate++
			}
		}
	}
	spread := 0.0
	if spikes > 0 {
		spread = float64(spikesLate) / float64(spikes)
	}
	return &Fig03Result{
		From: from, To: to,
		Hist:        hist,
		Scatter:     scatter,
		Median:      med,
		Max:         maxV,
		SpikeSpread: spread,
	}, nil
}

// Render implements the experiment output contract.
func (r *Fig03Result) Render() string {
	var sb strings.Builder
	sb.WriteString(header(fmt.Sprintf("Figure 3: raw latency distribution of link %d->%d", r.From, r.To)))
	sb.WriteString(r.Hist.Render())
	sb.WriteString(fmt.Sprintf("median: %.1f ms   max: %.1f ms   max/median: %.0fx\n", r.Median, r.Max, r.Max/r.Median))
	sb.WriteString(fmt.Sprintf("fraction of >=10x-median spikes in second half: %.2f (0.5 = spread evenly over time)\n", r.SpikeSpread))
	sb.WriteString(fmt.Sprintf("scatter points captured: %d\n", len(r.Scatter)))
	return sb.String()
}
