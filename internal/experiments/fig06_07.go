package experiments

import (
	"fmt"
	"strings"

	"netcoord/internal/coord"
	"netcoord/internal/netsim"
	"netcoord/internal/sim"
	"netcoord/internal/stats"
	"netcoord/internal/trace"
	"netcoord/internal/vivaldi"
)

// Fig06Result reproduces Figure 6: confidence over time on a three-node
// low-latency cluster, with and without confidence building. The paper's
// finding: with the 3 ms error margin, confidence reaches ~100% after
// start-up; without it, confidence wavers around 75%.
type Fig06Result struct {
	// WithBuilding and WithoutBuilding are per-tick confidence series
	// for node 0.
	WithBuilding    []stats.Point
	WithoutBuilding []stats.Point
	// SteadyWith and SteadyWithout are mean confidences over the second
	// half.
	SteadyWith    float64
	SteadyWithout float64
}

// Fig06ConfidenceBuilding runs the paper's ten-minute three-node cluster
// experiment at 1 Hz.
func Fig06ConfidenceBuilding(scale Scale) (*Fig06Result, error) {
	// The cluster experiment has its own fixed shape (3 nodes, 10
	// minutes); the scale only contributes the seed.
	const nodes = 3
	const duration = 600
	runOne := func(margin float64) ([]stats.Point, float64, error) {
		net, err := netsim.New(netsim.LowLatencyCluster(nodes, scale.Seed))
		if err != nil {
			return nil, 0, err
		}
		gen, err := trace.NewGenerator(net, trace.GeneratorConfig{
			IntervalTicks: 1,
			DurationTicks: duration,
			Seed:          scale.Seed + 1,
		})
		if err != nil {
			return nil, 0, err
		}
		vcfg := vivaldi.DefaultConfig()
		vcfg.ErrorMargin = margin
		vcfg.Seed = scale.Seed + 2
		runner, err := sim.NewRunner(sim.Config{Nodes: nodes, Vivaldi: vcfg})
		if err != nil {
			return nil, 0, err
		}
		var series []stats.Point
		lastTick := uint64(0)
		for {
			s, ok := gen.Next()
			if !ok {
				break
			}
			if s.Tick != lastTick {
				conf, err := runner.Confidence(0)
				if err != nil {
					return nil, 0, err
				}
				series = append(series, stats.Point{X: float64(lastTick) / 60, Y: conf})
				lastTick = s.Tick
			}
			if err := runner.Step(s); err != nil {
				return nil, 0, err
			}
		}
		var steady []float64
		for _, p := range series {
			if p.X >= float64(duration)/60/2 {
				steady = append(steady, p.Y)
			}
		}
		mean, err := stats.Mean(steady)
		if err != nil {
			return nil, 0, err
		}
		return series, mean, nil
	}
	with, steadyWith, err := runOne(3)
	if err != nil {
		return nil, fmt.Errorf("fig 6 with building: %w", err)
	}
	without, steadyWithout, err := runOne(0)
	if err != nil {
		return nil, fmt.Errorf("fig 6 without building: %w", err)
	}
	return &Fig06Result{
		WithBuilding:    with,
		WithoutBuilding: without,
		SteadyWith:      steadyWith,
		SteadyWithout:   steadyWithout,
	}, nil
}

// Render implements the experiment output contract.
func (r *Fig06Result) Render() string {
	var sb strings.Builder
	sb.WriteString(header("Figure 6: confidence building on a 3-node low-latency cluster (10 min, 1 Hz)"))
	sb.WriteString(fmt.Sprintf("steady-state confidence with 3 ms margin:    %.3f (paper: ~1.00)\n", r.SteadyWith))
	sb.WriteString(fmt.Sprintf("steady-state confidence without margin:       %.3f (paper: ~0.75)\n", r.SteadyWithout))
	sb.WriteString("confidence over time (minute: with / without):\n")
	for i := 0; i < len(r.WithBuilding) && i < len(r.WithoutBuilding); i += 60 {
		sb.WriteString(fmt.Sprintf("  t=%4.1fm  %.3f / %.3f\n",
			r.WithBuilding[i].X, r.WithBuilding[i].Y, r.WithoutBuilding[i].Y))
	}
	return sb.String()
}

// Fig07Trajectory is one node's coordinate positions over time.
type Fig07Trajectory struct {
	Node      int
	Region    string
	Positions []coord.Coordinate
	// TotalDrift is the displacement between first and last position.
	TotalDrift float64
	// PathLength is the summed inter-snapshot displacement.
	PathLength float64
}

// Fig07Result reproduces Figure 7: four nodes' coordinates (one per
// region) over a three-hour run on a drifting network. The paper's
// point: coordinates move consistently over time — they neither rotate
// about the origin nor oscillate — so the application-level coordinate
// must eventually follow.
type Fig07Result struct {
	Trajectories []Fig07Trajectory
	// DriftRatio is mean(TotalDrift / PathLength): near 1 means motion
	// is directed rather than oscillatory.
	DriftRatio float64
}

// Fig07CoordinateDrift runs a drifting network and snapshots one node
// per region every five minutes.
func Fig07CoordinateDrift(scale Scale) (*Fig07Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	duration := scale.DurationTicks
	if duration < 3*3600 && scale.Nodes >= 200 {
		duration = 3 * 3600
	}
	net, err := scale.network(func(c *netsim.Config) {
		// Slow continental drift: a few ms/hour, enough to displace
		// coordinates measurably over the run.
		c.DriftPerHour = []netsim.Drift{
			{DX: -4, DY: 2},
			{DX: 3, DY: -1},
			{DX: 5, DY: 3},
			{DX: -6, DY: -2},
		}
	})
	if err != nil {
		return nil, err
	}
	gen, err := trace.NewGenerator(net, trace.GeneratorConfig{
		IntervalTicks: scale.IntervalTicks,
		DurationTicks: duration,
		Seed:          scale.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	vcfg := vivaldi.DefaultConfig()
	vcfg.Seed = scale.Seed + 2
	runner, err := sim.NewRunner(sim.Config{Nodes: scale.Nodes, Vivaldi: vcfg, Filter: mpFactory})
	if err != nil {
		return nil, err
	}
	// One tracked node per region: nodes 0..3 under round-robin
	// assignment.
	tracked := []int{0, 1, 2, 3}
	trajs := make([]Fig07Trajectory, len(tracked))
	for i, n := range tracked {
		trajs[i] = Fig07Trajectory{Node: n, Region: net.Region(n)}
	}
	snapEvery := duration / 36 // ~5-minute snapshots on a 3 h run
	if snapEvery == 0 {
		snapEvery = 1
	}
	nextSnap := snapEvery
	for {
		s, ok := gen.Next()
		if !ok {
			break
		}
		if s.Tick >= nextSnap {
			for i, n := range tracked {
				c, err := runner.Coordinate(n)
				if err != nil {
					return nil, err
				}
				trajs[i].Positions = append(trajs[i].Positions, c)
			}
			nextSnap += snapEvery
		}
		if err := runner.Step(s); err != nil {
			return nil, err
		}
	}
	var ratios []float64
	for i := range trajs {
		tr := &trajs[i]
		// Skip the convergence phase: measure from the second quarter on.
		q := len(tr.Positions) / 4
		if len(tr.Positions)-q < 2 {
			continue
		}
		post := tr.Positions[q:]
		var path float64
		for j := 1; j < len(post); j++ {
			d, err := post[j].DisplacementFrom(post[j-1])
			if err != nil {
				return nil, err
			}
			path += d
		}
		drift, err := post[len(post)-1].DisplacementFrom(post[0])
		if err != nil {
			return nil, err
		}
		tr.PathLength = path
		tr.TotalDrift = drift
		if path > 0 {
			ratios = append(ratios, drift/path)
		}
	}
	ratio, err := stats.Mean(ratios)
	if err != nil {
		return nil, err
	}
	return &Fig07Result{Trajectories: trajs, DriftRatio: ratio}, nil
}

// Render implements the experiment output contract.
func (r *Fig07Result) Render() string {
	var sb strings.Builder
	sb.WriteString(header("Figure 7: coordinates drift consistently over hours (one node per region)"))
	for _, tr := range r.Trajectories {
		sb.WriteString(fmt.Sprintf("node %d (%s): drift %.1f ms over %d snapshots (path %.1f ms)\n",
			tr.Node, tr.Region, tr.TotalDrift, len(tr.Positions), tr.PathLength))
		if len(tr.Positions) > 0 {
			first, last := tr.Positions[0], tr.Positions[len(tr.Positions)-1]
			sb.WriteString(fmt.Sprintf("  start %v -> end %v\n", first, last))
		}
	}
	sb.WriteString(fmt.Sprintf("directedness (drift/path, post-convergence): %.2f — sustained direction, not oscillation\n", r.DriftRatio))
	return sb.String()
}
