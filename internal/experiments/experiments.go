// Package experiments regenerates every table and figure in the paper's
// evaluation. Each Fig/Table function runs the necessary simulations at a
// requested Scale and returns a typed result with a Render method that
// prints the same rows/series the paper reports. The bench harness at the
// repository root and cmd/ncbench both drive these runners.
//
// Two scales are provided: QuickScale for CI-speed runs that preserve the
// qualitative shape of every result, and PaperScale matching the paper's
// deployment (269 nodes, four hours, per-second sampling).
package experiments

import (
	"fmt"
	"strings"

	"netcoord/internal/filter"
	"netcoord/internal/heuristic"
	"netcoord/internal/netsim"
	"netcoord/internal/sim"
	"netcoord/internal/stats"
	"netcoord/internal/trace"
	"netcoord/internal/vivaldi"
)

// Scale sizes an experiment.
type Scale struct {
	// Nodes is the population size.
	Nodes int
	// DurationTicks is the run length in seconds.
	DurationTicks uint64
	// IntervalTicks is the per-node sampling period in seconds.
	IntervalTicks uint64
	// Seed drives all randomness.
	Seed uint64
	// Parallelism is the simulator worker count: 0 uses
	// runtime.GOMAXPROCS(0), 1 forces the sequential engine. Every
	// setting produces bit-identical results (the simulator's
	// tick-barrier guarantee), so experiment output never depends on it.
	Parallelism int
	// SweepParallelism runs independent sweep points (the Fig 8-12
	// parameter grids) concurrently: 0 or 1 keeps the sequential loop,
	// higher values run that many whole simulations at once. Each point
	// is an isolated runner over its own generator, so results are
	// positionally identical to the sequential sweep. When > 1, each
	// inner run is forced to the sequential engine — one core per
	// simulation saturates better than nested worker pools fighting
	// over the same cores.
	SweepParallelism int
}

// runnerConfig assembles the common sim.Config for this scale, including
// the metric-storage reservations that keep the replay loop
// allocation-free. Parallelism passes through unchanged: 0 means
// GOMAXPROCS at every layer, resolved once by Runner.Run.
func (s Scale) runnerConfig(vcfg vivaldi.Config, f filter.Factory, p sim.PolicyFactory) sim.Config {
	return sim.Config{
		Nodes:                  s.Nodes,
		Vivaldi:                vcfg,
		Filter:                 f,
		Policy:                 p,
		Parallelism:            s.Parallelism,
		ExpectedTicks:          s.DurationTicks,
		ExpectedSamplesPerNode: int(s.DurationTicks/s.IntervalTicks) + 1,
	}
}

// PaperScale matches the paper's PlanetLab runs: 269 nodes, four hours,
// one observation per node per second.
func PaperScale() Scale {
	return Scale{Nodes: 269, DurationTicks: 4 * 3600, IntervalTicks: 1, Seed: 20050502}
}

// QuickScale preserves every qualitative result at a fraction of the
// cost: 64 nodes, 40 minutes.
func QuickScale() Scale {
	return Scale{Nodes: 64, DurationTicks: 2400, IntervalTicks: 1, Seed: 20050502}
}

// Validate checks the scale.
func (s Scale) Validate() error {
	if s.Nodes < 4 {
		return fmt.Errorf("experiments: %d nodes, want >= 4", s.Nodes)
	}
	if s.DurationTicks < 60 {
		return fmt.Errorf("experiments: duration %d ticks, want >= 60", s.DurationTicks)
	}
	if s.IntervalTicks < 1 {
		return fmt.Errorf("experiments: interval %d, want >= 1", s.IntervalTicks)
	}
	return nil
}

// MeasureFrom returns the start of the measurement window: the paper
// always reports the second half of each run.
func (s Scale) MeasureFrom() uint64 { return s.DurationTicks / 2 }

// network builds the wide-area model for this scale, applying an
// optional mutation.
func (s Scale) network(mutate func(*netsim.Config)) (*netsim.Network, error) {
	cfg := netsim.DefaultWideArea(s.Nodes, s.Seed)
	if mutate != nil {
		mutate(&cfg)
	}
	return netsim.New(cfg)
}

// generatorConfig is the trace shape for this scale; runs that want
// in-worker synthesis pass it to Runner.RunGenerated instead of
// streaming through one Generator.
func (s Scale) generatorConfig() trace.GeneratorConfig {
	return trace.GeneratorConfig{
		IntervalTicks: s.IntervalTicks,
		DurationTicks: s.DurationTicks,
		Seed:          s.Seed + 1,
	}
}

// generator builds the trace generator over a network.
func (s Scale) generator(net *netsim.Network) (*trace.Generator, error) {
	return trace.NewGenerator(net, s.generatorConfig())
}

// runSpec describes one simulation run.
type runSpec struct {
	scale     Scale
	filter    filter.Factory
	policy    sim.PolicyFactory
	netMutate func(*netsim.Config)
	vivMutate func(*vivaldi.Config)
}

// run executes one simulation and returns its runner for metric readout.
// Generator-backed runs go through RunGenerated: trace synthesis happens
// inside the compute workers instead of on a single prefetch goroutine,
// which is what keeps the parallel engine saturated at experiment scale.
func run(spec runSpec) (*sim.Runner, error) {
	if err := spec.scale.Validate(); err != nil {
		return nil, err
	}
	net, err := spec.scale.network(spec.netMutate)
	if err != nil {
		return nil, err
	}
	vcfg := vivaldi.DefaultConfig()
	vcfg.Seed = spec.scale.Seed + 2
	if spec.vivMutate != nil {
		spec.vivMutate(&vcfg)
	}
	runner, err := sim.NewRunner(spec.scale.runnerConfig(vcfg, spec.filter, spec.policy))
	if err != nil {
		return nil, err
	}
	if err := runner.RunGenerated(net, spec.scale.generatorConfig()); err != nil {
		return nil, err
	}
	return runner, nil
}

// mpFactory is the paper's recommended filter.
func mpFactory() filter.Filter {
	f, err := filter.NewMP(filter.DefaultMPConfig())
	if err != nil {
		return filter.NewNone() // unreachable: defaults validate
	}
	return f
}

// mpFactoryImmediate is the paper's original MP configuration that
// outputs from the very first sample (no warm-up), as deployed in the
// PlanetLab experiment before the Section VI fix.
func mpFactoryImmediate() filter.Filter {
	f, err := filter.NewMP(filter.MPConfig{
		History:     filter.DefaultHistory,
		Percentile:  filter.DefaultPercentile,
		UpdateAfter: 1,
	})
	if err != nil {
		return filter.NewNone()
	}
	return f
}

// energyPolicy builds the deployed ENERGY policy (window 32, tau 8).
func energyPolicy(dim int) (heuristic.Policy, error) {
	return heuristic.NewEnergy(dim, heuristic.DefaultWindow, heuristic.DefaultEnergyTau)
}

// cdfSummary renders a compact CDF description: selected quantiles of a
// sample.
func cdfSummary(name string, values []float64) string {
	if len(values) == 0 {
		return fmt.Sprintf("%-28s (no data)\n", name)
	}
	c, err := stats.NewCDF(values)
	if err != nil {
		return fmt.Sprintf("%-28s (error: %v)\n", name, err)
	}
	return fmt.Sprintf("%-28s p10=%-9.4g p25=%-9.4g p50=%-9.4g p75=%-9.4g p90=%-9.4g p99=%-9.4g\n",
		name, c.Quantile(0.10), c.Quantile(0.25), c.Quantile(0.50), c.Quantile(0.75), c.Quantile(0.90), c.Quantile(0.99))
}

// header renders a section header for experiment output.
func header(title string) string {
	line := strings.Repeat("=", len(title))
	return fmt.Sprintf("%s\n%s\n", title, line)
}

// pct renders a fractional change as a signed percentage.
func pct(newV, baseV float64) string {
	if baseV == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.0f%%", (newV-baseV)/baseV*100)
}
