package experiments

import (
	"fmt"
	"strings"

	"netcoord/internal/metrics"
)

// Fig13Result reproduces the PlanetLab experiment (Figure 13): two
// coordinate systems run side by side on identical observation streams —
// one with the MP filter, one without — and each outputs both its raw
// (system) and ENERGY-suppressed (application) streams.
//
// The paper's headline: the enhancements combine to cut the median of
// per-node 95th-percentile relative error by 54% and instability by 96%;
// with the filter only 14% of nodes saw a 95th-percentile relative error
// above one, versus 62% without.
type Fig13Result struct {
	EnergyMP  StreamCDFs
	RawMP     StreamCDFs
	EnergyRaw StreamCDFs
	RawRaw    StreamCDFs
	// ErrImprovement is 1 - (EnergyMP p95 median / RawRaw p95 median).
	ErrImprovement float64
	// InstabilityImprovement is the same for median instability.
	InstabilityImprovement float64
	// FracAboveOneMP and FracAboveOneRaw are the fractions of nodes
	// whose 95th-pct relative error exceeds 1.
	FracAboveOneMP  float64
	FracAboveOneRaw float64
	// Quiet is the fraction of seconds in which the ENERGY+MP stream
	// moved less than the *minimum* per-second movement of the raw MP
	// stream (the paper reports 91%).
	Quiet float64
}

// Fig13PlanetLabComparison runs the paired-system experiment. The
// paper's original deployment used the no-warm-up MP filter and traced
// its worst disruptions to first-sample outliers; we reproduce that
// configuration faithfully here (UpdateAfter=1) — the A4 ablation
// measures the fix.
func Fig13PlanetLabComparison(scale Scale) (*Fig13Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	from, to := scale.MeasureFrom(), scale.DurationTicks

	mpRun, err := run(runSpec{scale: scale, filter: mpFactoryImmediate, policy: energyPolicy})
	if err != nil {
		return nil, fmt.Errorf("fig 13 mp run: %w", err)
	}
	rawRun, err := run(runSpec{scale: scale, policy: energyPolicy})
	if err != nil {
		return nil, fmt.Errorf("fig 13 raw run: %w", err)
	}

	energyMP, err := collectStreamCDFs("ENERGY + MP filter", mpRun.App(), from, to)
	if err != nil {
		return nil, err
	}
	rawMP, err := collectStreamCDFs("Raw MP filter", mpRun.Sys(), from, to)
	if err != nil {
		return nil, err
	}
	energyRaw, err := collectStreamCDFs("ENERGY + no filter", rawRun.App(), from, to)
	if err != nil {
		return nil, err
	}
	rawRaw, err := collectStreamCDFs("Raw no filter", rawRun.Sys(), from, to)
	if err != nil {
		return nil, err
	}

	res := &Fig13Result{
		EnergyMP: energyMP, RawMP: rawMP,
		EnergyRaw: energyRaw, RawRaw: rawRaw,
	}
	if rawRaw.Summary.P95RelErrMedian > 0 {
		res.ErrImprovement = 1 - energyMP.Summary.P95RelErrMedian/rawRaw.Summary.P95RelErrMedian
	}
	if rawRaw.Summary.MedianInstability > 0 {
		res.InstabilityImprovement = 1 - energyMP.Summary.MedianInstability/rawRaw.Summary.MedianInstability
	}
	res.FracAboveOneMP = fracAbove(rawMP.P95RelErrPerNode, 1)
	res.FracAboveOneRaw = fracAbove(rawRaw.P95RelErrPerNode, 1)

	// "91% of the time it fell below even the minimum instability of the
	// raw filter."
	minRaw := minOf(rawMP.Instability)
	below := 0
	for _, v := range energyMP.Instability {
		if v < minRaw {
			below++
		}
	}
	if len(energyMP.Instability) > 0 {
		res.Quiet = float64(below) / float64(len(energyMP.Instability))
	}
	return res, nil
}

func fracAbove(vs []float64, x float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	n := 0
	for _, v := range vs {
		if v > x {
			n++
		}
	}
	return float64(n) / float64(len(vs))
}

func minOf(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	m := vs[0]
	for _, v := range vs {
		if v < m {
			m = v
		}
	}
	return m
}

// Render implements the experiment output contract.
func (r *Fig13Result) Render() string {
	var sb strings.Builder
	sb.WriteString(header("Figure 13: paired-system comparison (the PlanetLab experiment)"))
	sb.WriteString(renderStream(r.EnergyMP))
	sb.WriteString(renderStream(r.RawMP))
	sb.WriteString(renderStream(r.EnergyRaw))
	sb.WriteString(renderStream(r.RawRaw))
	sb.WriteString(fmt.Sprintf("median p95 rel err reduction (ENERGY+MP vs raw no filter): %.0f%% (paper: 54%%)\n", r.ErrImprovement*100))
	sb.WriteString(fmt.Sprintf("median instability reduction:                               %.0f%% (paper: 96%%)\n", r.InstabilityImprovement*100))
	sb.WriteString(fmt.Sprintf("nodes with p95 rel err > 1: MP %.0f%% vs no filter %.0f%% (paper: 14%% vs 62%%)\n",
		r.FracAboveOneMP*100, r.FracAboveOneRaw*100))
	sb.WriteString(fmt.Sprintf("seconds below raw-MP minimum instability: %.0f%% (paper: 91%%)\n", r.Quiet*100))
	return sb.String()
}

// Fig14Result reproduces Figure 14: ten-minute-interval timelines of
// error and instability for the four streams of Figure 13, showing the
// ~half-hour convergence and the smooth steady state afterwards.
type Fig14Result struct {
	// Intervals maps stream name to its bucketed timeline.
	Intervals map[string][]metrics.IntervalStat
	// Order fixes the rendering order.
	Order []string
	// ConvergedBy is the first interval start (seconds) at which
	// ENERGY+MP's p95 error is within 1.5x of its final value.
	ConvergedBy uint64
}

// Fig14ConvergenceTimeline reruns the paired systems and buckets metrics
// into ten-minute intervals.
func Fig14ConvergenceTimeline(scale Scale) (*Fig14Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	mpRun, err := run(runSpec{scale: scale, filter: mpFactoryImmediate, policy: energyPolicy})
	if err != nil {
		return nil, err
	}
	rawRun, err := run(runSpec{scale: scale, policy: energyPolicy})
	if err != nil {
		return nil, err
	}
	width := uint64(600)
	if scale.DurationTicks < 3600 {
		width = scale.DurationTicks / 6
	}
	res := &Fig14Result{
		Intervals: make(map[string][]metrics.IntervalStat),
		Order:     []string{"ENERGY + MP filter", "Raw MP filter", "ENERGY + no filter", "Raw no filter"},
	}
	collect := func(name string, col *metrics.Collector) error {
		ivs, err := col.Intervals(width)
		if err != nil {
			return err
		}
		res.Intervals[name] = ivs
		return nil
	}
	if err := collect("ENERGY + MP filter", mpRun.App()); err != nil {
		return nil, err
	}
	if err := collect("Raw MP filter", mpRun.Sys()); err != nil {
		return nil, err
	}
	if err := collect("ENERGY + no filter", rawRun.App()); err != nil {
		return nil, err
	}
	if err := collect("Raw no filter", rawRun.Sys()); err != nil {
		return nil, err
	}

	ivs := res.Intervals["ENERGY + MP filter"]
	if len(ivs) > 0 {
		final := ivs[len(ivs)-1].P95RelErr
		for _, iv := range ivs {
			if final > 0 && iv.P95RelErr <= 1.5*final {
				res.ConvergedBy = iv.StartTick
				break
			}
		}
	}
	return res, nil
}

// Render implements the experiment output contract.
func (r *Fig14Result) Render() string {
	var sb strings.Builder
	sb.WriteString(header("Figure 14: error and instability over time (10-minute intervals)"))
	for _, name := range r.Order {
		sb.WriteString(fmt.Sprintf("--- %s ---\n", name))
		sb.WriteString(fmt.Sprintf("%-10s %-12s %-12s %-14s\n", "t (min)", "med rel err", "p95 rel err", "mean instab"))
		for _, iv := range r.Intervals[name] {
			sb.WriteString(fmt.Sprintf("%-10.0f %-12.4f %-12.3f %-14.2f\n",
				float64(iv.StartTick)/60, iv.MedianRelErr, iv.P95RelErr, iv.MeanInstability))
		}
	}
	sb.WriteString(fmt.Sprintf("ENERGY+MP converged by t=%.0f min (paper: ~30 min)\n", float64(r.ConvergedBy)/60))
	return sb.String()
}
