package experiments

import (
	"strings"
	"testing"

	"netcoord/internal/heuristic"
	"netcoord/internal/sim"
)

// tinyScale keeps the full experiment suite runnable in CI seconds while
// preserving qualitative shapes.
func tinyScale() Scale {
	return Scale{Nodes: 24, DurationTicks: 900, IntervalTicks: 1, Seed: 20050502}
}

func TestScaleValidate(t *testing.T) {
	if err := (Scale{Nodes: 2, DurationTicks: 900, IntervalTicks: 1}).Validate(); err == nil {
		t.Fatal("tiny node count accepted")
	}
	if err := (Scale{Nodes: 24, DurationTicks: 10, IntervalTicks: 1}).Validate(); err == nil {
		t.Fatal("tiny duration accepted")
	}
	if err := (Scale{Nodes: 24, DurationTicks: 900, IntervalTicks: 0}).Validate(); err == nil {
		t.Fatal("zero interval accepted")
	}
	if err := PaperScale().Validate(); err != nil {
		t.Fatalf("PaperScale invalid: %v", err)
	}
	if err := QuickScale().Validate(); err != nil {
		t.Fatalf("QuickScale invalid: %v", err)
	}
}

func TestPaperScaleMatchesPaper(t *testing.T) {
	s := PaperScale()
	if s.Nodes != 269 {
		t.Fatalf("nodes = %d, want 269", s.Nodes)
	}
	if s.DurationTicks != 4*3600 {
		t.Fatalf("duration = %d, want 4 hours", s.DurationTicks)
	}
}

func TestFig02(t *testing.T) {
	r, err := Fig02RawLatencyHistogram(tinyScale())
	if err != nil {
		t.Fatalf("Fig02: %v", err)
	}
	if r.Total == 0 {
		t.Fatal("no samples")
	}
	// Calibration: a visible but small fraction above one second.
	if r.FractionAboveOneSecond < 0.001 || r.FractionAboveOneSecond > 0.02 {
		t.Fatalf("fraction >= 1s = %v, want ~0.004", r.FractionAboveOneSecond)
	}
	if !strings.Contains(r.Render(), "Figure 2") {
		t.Fatal("Render missing header")
	}
}

func TestFig03(t *testing.T) {
	r, err := Fig03SingleLinkDistribution(tinyScale())
	if err != nil {
		t.Fatalf("Fig03: %v", err)
	}
	if r.Max < 5*r.Median {
		t.Fatalf("max %v vs median %v: no heavy tail", r.Max, r.Median)
	}
	if r.SpikeSpread <= 0.05 || r.SpikeSpread >= 0.95 {
		t.Fatalf("spike spread %v: spikes clustered in one half", r.SpikeSpread)
	}
	if len(r.Scatter) == 0 {
		t.Fatal("no scatter points")
	}
	if !strings.Contains(r.Render(), "Figure 3") {
		t.Fatal("Render missing header")
	}
}

func TestFig04(t *testing.T) {
	r, err := Fig04HistorySizeSweep(tinyScale())
	if err != nil {
		t.Fatalf("Fig04: %v", err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("%d rows, want 8", len(r.Rows))
	}
	// The paper's central finding: a short history (2..8) beats both
	// h=1 (raw last sample) and very long histories.
	if r.BestHistory < 2 || r.BestHistory > 16 {
		t.Fatalf("best history = %d, want a short window (paper: 4)", r.BestHistory)
	}
	var h1, hBest float64
	for _, row := range r.Rows {
		if row.History == 1 {
			h1 = row.Box.Median
		}
		if row.History == r.BestHistory {
			hBest = row.Box.Median
		}
	}
	if hBest >= h1 {
		t.Fatalf("best history median %v not better than h=1 %v", hBest, h1)
	}
	if !strings.Contains(r.Render(), "best history") {
		t.Fatal("Render incomplete")
	}
}

func TestFig05AndShape(t *testing.T) {
	r, err := Fig05FilterCDFs(tinyScale())
	if err != nil {
		t.Fatalf("Fig05: %v", err)
	}
	// MP must beat raw on both medians.
	if r.MP.Summary.MedianRelErr >= r.Raw.Summary.MedianRelErr {
		t.Fatalf("MP err %v >= raw %v", r.MP.Summary.MedianRelErr, r.Raw.Summary.MedianRelErr)
	}
	if r.MP.Summary.MedianInstability >= r.Raw.Summary.MedianInstability {
		t.Fatalf("MP instability %v >= raw %v", r.MP.Summary.MedianInstability, r.Raw.Summary.MedianInstability)
	}
	// The filter must trim the tail: far fewer filtered estimates above
	// one second than raw observations.
	rawTail := r.RawHist.FractionAtOrAbove(1000)
	filteredTail := r.FilteredHist.FractionAtOrAbove(1000)
	if filteredTail >= rawTail/2 {
		t.Fatalf("filtered tail %v vs raw %v: tail not trimmed", filteredTail, rawTail)
	}
	// The worst-case instability gap is the paper's headline: must be
	// large.
	if r.WorstInstabilityRatio < 3 {
		t.Fatalf("worst instability ratio %v, want >> 1", r.WorstInstabilityRatio)
	}
	if !strings.Contains(r.Render(), "bottom panel") {
		t.Fatal("Render incomplete")
	}
}

func TestTable1Shape(t *testing.T) {
	r, err := Table1FilterComparison(tinyScale())
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(r.Rows))
	}
	byName := map[string]Table1Row{}
	for _, row := range r.Rows {
		byName[row.Name] = row
	}
	mp, none := byName["MP Filter"], byName["No Filter"]
	if mp.MedianRelErr >= none.MedianRelErr {
		t.Fatalf("MP %v >= none %v on error", mp.MedianRelErr, none.MedianRelErr)
	}
	// The paper's surprise: high-alpha EWMAs are *worse* than nothing.
	if byName["EWMA a=0.20"].MedianRelErr <= none.MedianRelErr {
		t.Fatalf("EWMA 0.20 err %v not worse than none %v", byName["EWMA a=0.20"].MedianRelErr, none.MedianRelErr)
	}
	if byName["EWMA a=0.10"].MedianRelErr <= none.MedianRelErr {
		t.Fatalf("EWMA 0.10 err %v not worse than none %v", byName["EWMA a=0.10"].MedianRelErr, none.MedianRelErr)
	}
	if !strings.Contains(r.Render(), "Table I") {
		t.Fatal("Render incomplete")
	}
}

func TestFig06Shape(t *testing.T) {
	r, err := Fig06ConfidenceBuilding(tinyScale())
	if err != nil {
		t.Fatalf("Fig06: %v", err)
	}
	if r.SteadyWith < 0.9 {
		t.Fatalf("confidence with building = %v, want ~1", r.SteadyWith)
	}
	if r.SteadyWithout > r.SteadyWith-0.1 {
		t.Fatalf("confidence without building = %v, want clearly below %v", r.SteadyWithout, r.SteadyWith)
	}
	if !strings.Contains(r.Render(), "Figure 6") {
		t.Fatal("Render incomplete")
	}
}

func TestFig07Shape(t *testing.T) {
	r, err := Fig07CoordinateDrift(tinyScale())
	if err != nil {
		t.Fatalf("Fig07: %v", err)
	}
	if len(r.Trajectories) != 4 {
		t.Fatalf("%d trajectories, want 4", len(r.Trajectories))
	}
	regions := map[string]bool{}
	for _, tr := range r.Trajectories {
		regions[tr.Region] = true
		if len(tr.Positions) < 4 {
			t.Fatalf("node %d has only %d snapshots", tr.Node, len(tr.Positions))
		}
	}
	if len(regions) != 4 {
		t.Fatalf("tracked regions = %v, want all four", regions)
	}
	// Coordinates must actually drift.
	anyDrift := false
	for _, tr := range r.Trajectories {
		if tr.TotalDrift > 2 {
			anyDrift = true
		}
	}
	if !anyDrift {
		t.Fatal("no trajectory drifted despite network drift")
	}
	if !strings.Contains(r.Render(), "Figure 7") {
		t.Fatal("Render incomplete")
	}
}

func TestFig08Shape(t *testing.T) {
	scale := tinyScale()
	r, err := Fig08ThresholdSweep(scale)
	if err != nil {
		t.Fatalf("Fig08: %v", err)
	}
	if len(r.Energy) != 9 || len(r.Relative) != 9 {
		t.Fatalf("sweep sizes %d/%d, want 9/9", len(r.Energy), len(r.Relative))
	}
	// Stability must broadly improve (instability decline) as the
	// threshold rises: compare first vs last.
	if r.Energy[len(r.Energy)-1].MedianInstability > r.Energy[0].MedianInstability {
		t.Fatalf("energy instability did not decline across thresholds: %v -> %v",
			r.Energy[0].MedianInstability, r.Energy[len(r.Energy)-1].MedianInstability)
	}
	if r.Relative[len(r.Relative)-1].MedianInstability > r.Relative[0].MedianInstability {
		t.Fatal("relative instability did not decline across thresholds")
	}
	if !strings.Contains(r.Render(), "Figure 8") {
		t.Fatal("Render incomplete")
	}
}

func TestFig09Shape(t *testing.T) {
	r, err := Fig09WindowSizeSweep(tinyScale())
	if err != nil {
		t.Fatalf("Fig09: %v", err)
	}
	if len(r.Energy) < 4 {
		t.Fatalf("only %d energy points", len(r.Energy))
	}
	// Larger windows must cut the update rate.
	first, last := r.Energy[0], r.Energy[len(r.Energy)-1]
	if last.MeanUpdateFraction > first.MeanUpdateFraction {
		t.Fatalf("update fraction grew with window: %v -> %v", first.MeanUpdateFraction, last.MeanUpdateFraction)
	}
	if !strings.Contains(r.Render(), "Figure 9") {
		t.Fatal("Render incomplete")
	}
}

func TestFig10Shape(t *testing.T) {
	r, err := Fig10HeuristicComparison(tinyScale())
	if err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	// The windowless heuristics at high threshold must lose accuracy
	// dramatically compared with the window-based ones at *their*
	// highest thresholds.
	sysHigh := r.System[len(r.System)-1].MedianRelErr
	energyHigh := r.Energy[len(r.Energy)-1].MedianRelErr
	if sysHigh <= energyHigh {
		t.Fatalf("SYSTEM at tau=256 (%v) should be less accurate than ENERGY at tau=256 (%v)", sysHigh, energyHigh)
	}
	if !strings.Contains(r.Render(), "Figure 10") {
		t.Fatal("Render incomplete")
	}
}

func TestFig11Shape(t *testing.T) {
	r, err := Fig11AppLevelCDFs(tinyScale())
	if err != nil {
		t.Fatalf("Fig11: %v", err)
	}
	// Both app-level streams must be far more stable than the raw MP
	// stream at comparable accuracy.
	if r.EnergyMP.Summary.MedianInstability >= r.RawMP.Summary.MedianInstability {
		t.Fatal("ENERGY app stream not more stable than raw MP")
	}
	if r.RelativeMP.Summary.MedianInstability >= r.RawMP.Summary.MedianInstability {
		t.Fatal("RELATIVE app stream not more stable than raw MP")
	}
	if r.EnergyMP.Summary.MedianRelErr > 2*r.RawMP.Summary.MedianRelErr+0.05 {
		t.Fatalf("ENERGY accuracy collapsed: %v vs raw %v", r.EnergyMP.Summary.MedianRelErr, r.RawMP.Summary.MedianRelErr)
	}
	if !strings.Contains(r.Render(), "Figure 11") {
		t.Fatal("Render incomplete")
	}
}

func TestFig12Shape(t *testing.T) {
	r, err := Fig12ApplicationCentroid(tinyScale())
	if err != nil {
		t.Fatalf("Fig12: %v", err)
	}
	if len(r.Points) != 9 {
		t.Fatalf("%d points, want 9", len(r.Points))
	}
	// The hybrid trades: high threshold must cost accuracy.
	if r.Points[len(r.Points)-1].MedianRelErr <= r.Points[0].MedianRelErr {
		t.Fatalf("APPLICATION/CENTROID accuracy did not degrade with threshold: %v -> %v",
			r.Points[0].MedianRelErr, r.Points[len(r.Points)-1].MedianRelErr)
	}
	if !strings.Contains(r.Render(), "Figure 12") {
		t.Fatal("Render incomplete")
	}
}

func TestFig13Shape(t *testing.T) {
	r, err := Fig13PlanetLabComparison(tinyScale())
	if err != nil {
		t.Fatalf("Fig13: %v", err)
	}
	// Headline improvements must be positive and large.
	if r.ErrImprovement < 0.2 {
		t.Fatalf("error improvement %v, want substantial (paper: 0.54)", r.ErrImprovement)
	}
	if r.InstabilityImprovement < 0.5 {
		t.Fatalf("instability improvement %v, want large (paper: 0.96)", r.InstabilityImprovement)
	}
	// Filtered nodes must be much less likely to have p95 error > 1.
	if r.FracAboveOneMP >= r.FracAboveOneRaw {
		t.Fatalf("p95>1 fractions: MP %v vs raw %v", r.FracAboveOneMP, r.FracAboveOneRaw)
	}
	if !strings.Contains(r.Render(), "Figure 13") {
		t.Fatal("Render incomplete")
	}
}

func TestFig14Shape(t *testing.T) {
	r, err := Fig14ConvergenceTimeline(tinyScale())
	if err != nil {
		t.Fatalf("Fig14: %v", err)
	}
	ivs := r.Intervals["ENERGY + MP filter"]
	if len(ivs) < 3 {
		t.Fatalf("only %d intervals", len(ivs))
	}
	// Convergence: the final interval must beat the first.
	if ivs[len(ivs)-1].P95RelErr >= ivs[0].P95RelErr {
		t.Fatalf("no convergence: %v -> %v", ivs[0].P95RelErr, ivs[len(ivs)-1].P95RelErr)
	}
	if !strings.Contains(r.Render(), "Figure 14") {
		t.Fatal("Render incomplete")
	}
}

func TestAblationStaticMatrix(t *testing.T) {
	r, err := AblationStaticMatrix(tinyScale())
	if err != nil {
		t.Fatalf("AblationStaticMatrix: %v", err)
	}
	if r.Static.MedianRelErr >= r.Live.MedianRelErr {
		t.Fatalf("static err %v >= live %v", r.Static.MedianRelErr, r.Live.MedianRelErr)
	}
	if r.Static.MedianInstability >= r.Live.MedianInstability {
		t.Fatalf("static instability %v >= live %v", r.Static.MedianInstability, r.Live.MedianInstability)
	}
	if !strings.Contains(r.Render(), "Ablation A1") {
		t.Fatal("Render incomplete")
	}
}

func TestAblationThreshold(t *testing.T) {
	r, err := AblationThresholdFilter(tinyScale())
	if err != nil {
		t.Fatalf("AblationThresholdFilter: %v", err)
	}
	byName := map[string]Table1Row{}
	for _, row := range r.Rows {
		byName[row.Name] = row
	}
	// MP must beat every fixed cutoff on accuracy.
	mp := byName["MP Filter"].MedianRelErr
	for _, name := range []string{"Cutoff 1000ms", "Cutoff 500ms", "Cutoff 250ms"} {
		if byName[name].MedianRelErr <= mp {
			t.Fatalf("%s (%v) beat MP (%v)", name, byName[name].MedianRelErr, mp)
		}
	}
	if !strings.Contains(r.Render(), "Ablation A2") {
		t.Fatal("Render incomplete")
	}
}

func TestAblationDamping(t *testing.T) {
	r, err := AblationDampedVivaldi(tinyScale())
	if err != nil {
		t.Fatalf("AblationDampedVivaldi: %v", err)
	}
	// After the route change, the damped system must be worse relative
	// to its own before-state than the undamped one.
	dampedDegradation := r.DampedAfter / r.DampedBefore
	mpDegradation := r.MPAfter / r.MPBefore
	if dampedDegradation <= mpDegradation {
		t.Fatalf("damped degradation %v <= undamped %v: damping should block adaptation",
			dampedDegradation, mpDegradation)
	}
	if !strings.Contains(r.Render(), "Ablation A3") {
		t.Fatal("Render incomplete")
	}
}

func TestAblationWarmup(t *testing.T) {
	r, err := AblationFilterWarmup(tinyScale())
	if err != nil {
		t.Fatalf("AblationFilterWarmup: %v", err)
	}
	if r.WarmupEarly >= r.ImmediateEarly {
		t.Fatalf("warm-up early instability %v >= immediate %v", r.WarmupEarly, r.ImmediateEarly)
	}
	// Steady-state accuracy must be essentially unchanged.
	if r.WarmupSteadyErr > r.ImmediateSteadyErr*1.25+0.02 {
		t.Fatalf("warm-up cost steady accuracy: %v vs %v", r.WarmupSteadyErr, r.ImmediateSteadyErr)
	}
	if !strings.Contains(r.Render(), "Ablation A4") {
		t.Fatal("Render incomplete")
	}
}

func TestExtensionDetectorComparison(t *testing.T) {
	r, err := ExtensionDetectorComparison(tinyScale())
	if err != nil {
		t.Fatalf("ExtensionDetectorComparison: %v", err)
	}
	// All three detectors must produce usable accuracy; the rank-sum
	// baseline is expected to be competitive on this (radial-drift
	// dominated) workload.
	for name, s := range map[string]float64{
		"energy":   r.Energy.MedianRelErr,
		"relative": r.Relative.MedianRelErr,
		"ranksum":  r.RankSum.MedianRelErr,
	} {
		if s <= 0 || s > 1 {
			t.Fatalf("%s median rel err = %v, want sane accuracy", name, s)
		}
	}
	if !strings.Contains(r.Render(), "Extension E1") {
		t.Fatal("Render incomplete")
	}
}

func TestExtensionChurnRobustness(t *testing.T) {
	r, err := ExtensionChurnRobustness(tinyScale())
	if err != nil {
		t.Fatalf("ExtensionChurnRobustness: %v", err)
	}
	// The warm-up must cut tail instability under churn...
	if r.WarmupTail >= r.ImmediateTail {
		t.Fatalf("warm-up tail %v >= immediate %v", r.WarmupTail, r.ImmediateTail)
	}
	// ...at only a small accuracy cost.
	if r.WarmupErr > r.ImmediateErr*1.3+0.02 {
		t.Fatalf("warm-up final err %v vs immediate %v: cost too large", r.WarmupErr, r.ImmediateErr)
	}
	if !strings.Contains(r.Render(), "Extension E2") {
		t.Fatal("Render incomplete")
	}
}

// TestSweepParallelismMatchesSequential pins the sweep grid's
// determinism contract: running the Figure 8 parameter points
// concurrently (SweepParallelism > 1, inner runs sequential) must
// reproduce the sequential sweep's points bit for bit, in the same
// positional order.
func TestSweepParallelismMatchesSequential(t *testing.T) {
	scale := tinyScale()
	scale.DurationTicks = 300
	build := func(tau float64) sim.PolicyFactory {
		return func(dim int) (heuristic.Policy, error) {
			return heuristic.NewEnergy(dim, heuristic.DefaultWindow, tau)
		}
	}
	params := []float64{1, 4, 8, 32}

	seq, err := sweep(scale, params, build)
	if err != nil {
		t.Fatalf("sequential sweep: %v", err)
	}
	parScale := scale
	parScale.SweepParallelism = 3
	par, err := sweep(parScale, params, build)
	if err != nil {
		t.Fatalf("parallel sweep: %v", err)
	}
	if len(seq) != len(par) {
		t.Fatalf("sweep lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("point %d: sequential %+v != parallel %+v", i, seq[i], par[i])
		}
	}
}
