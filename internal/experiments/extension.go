package experiments

import (
	"fmt"
	"strings"

	"netcoord/internal/filter"
	"netcoord/internal/heuristic"
	"netcoord/internal/metrics"
	"netcoord/internal/sim"
	"netcoord/internal/stats"
	"netcoord/internal/trace"
	"netcoord/internal/vivaldi"
)

// ExtensionDetectorResult (E1) goes one step beyond the paper: it adds
// the one-dimensional rank-sum detector — the kind of standard test the
// Kifer et al. framework was built on, which the paper notes cannot
// handle multi-dimensional coordinates directly — as a third policy,
// projected onto distance-from-start-centroid. All three share the same
// two-window machinery and centroid publication, isolating the value of
// a genuinely multi-dimensional statistic.
type ExtensionDetectorResult struct {
	Energy   metrics.Summary
	Relative metrics.Summary
	RankSum  metrics.Summary
}

// ExtensionDetectorComparison runs ENERGY, RELATIVE and RANKSUM with the
// paper's window of 32 and their respective standard thresholds.
func ExtensionDetectorComparison(scale Scale) (*ExtensionDetectorResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	from, to := scale.MeasureFrom(), scale.DurationTicks
	res := &ExtensionDetectorResult{}
	type entry struct {
		out     *metrics.Summary
		factory func(dim int) (heuristic.Policy, error)
	}
	entries := []entry{
		{out: &res.Energy, factory: func(dim int) (heuristic.Policy, error) {
			return heuristic.NewEnergy(dim, heuristic.DefaultWindow, heuristic.DefaultEnergyTau)
		}},
		{out: &res.Relative, factory: func(dim int) (heuristic.Policy, error) {
			return heuristic.NewRelative(dim, heuristic.DefaultWindow, heuristic.DefaultRelativeEpsilon)
		}},
		{out: &res.RankSum, factory: func(dim int) (heuristic.Policy, error) {
			return heuristic.NewRankSum(dim, heuristic.DefaultWindow, heuristic.DefaultRankSumZ)
		}},
	}
	for _, e := range entries {
		r, err := run(runSpec{scale: scale, filter: mpFactory, policy: e.factory})
		if err != nil {
			return nil, err
		}
		s, err := r.App().Summarize(from, to)
		if err != nil {
			return nil, err
		}
		*e.out = s
	}
	return res, nil
}

// Render implements the experiment output contract.
func (r *ExtensionDetectorResult) Render() string {
	var sb strings.Builder
	sb.WriteString(header("Extension E1: multi-dimensional vs 1-D change detection (window 32)"))
	sb.WriteString(fmt.Sprintf("%-22s %-14s %-14s %-14s\n", "detector", "med rel err", "instability", "updates/s (%)"))
	row := func(name string, s metrics.Summary) {
		sb.WriteString(fmt.Sprintf("%-22s %-14.4f %-14.3f %-14.2f\n",
			name, s.MedianRelErr, s.MedianInstability, s.MeanUpdateFraction*100))
	}
	row("ENERGY (tau=8)", r.Energy)
	row("RELATIVE (eps=0.3)", r.Relative)
	row("RANKSUM (|z|>1.96)", r.RankSum)
	sb.WriteString("the 1-D projection works when coordinates move radially but misses direction-only change;\n")
	sb.WriteString("see internal/window's blind-spot test for the constructed failure case\n")
	return sb.String()
}

// ExtensionChurnResult (E2) tests the paper's closing Section VI claim:
// "In a long-running system where nodes periodically enter and leave,
// adding a delay to the filter would increase its robustness against
// these pathological cases at only a small cost." With joins spread
// across most of the run, brand-new links keep appearing, and every
// first sample on one is a potential outlier that an immediate-output MP
// filter forwards straight into Vivaldi.
type ExtensionChurnResult struct {
	// ImmediateTail / WarmupTail are the 99th percentile of the
	// per-second instability distribution over the churn period.
	ImmediateTail float64
	WarmupTail    float64
	// ImmediateErr / WarmupErr are final-quarter median relative errors
	// (the "only a small cost" half of the claim).
	ImmediateErr float64
	WarmupErr    float64
}

// ExtensionChurnRobustness runs the churn workload with MP warm-up of 1
// (the paper's deployed filter) vs 2 (the proposed fix).
func ExtensionChurnRobustness(scale Scale) (*ExtensionChurnResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	churnSpread := scale.DurationTicks * 3 / 4
	runChurn := func(f filter.Factory) (*sim.Runner, error) {
		net, err := scale.network(nil)
		if err != nil {
			return nil, err
		}
		gen, err := trace.NewGenerator(net, trace.GeneratorConfig{
			IntervalTicks:   scale.IntervalTicks,
			DurationTicks:   scale.DurationTicks,
			JoinSpreadTicks: churnSpread,
			Seed:            scale.Seed + 1,
		})
		if err != nil {
			return nil, err
		}
		vcfg := vivaldi.DefaultConfig()
		vcfg.Seed = scale.Seed + 2
		runner, err := sim.NewRunner(scale.runnerConfig(vcfg, f, nil))
		if err != nil {
			return nil, err
		}
		if err := runner.Run(gen); err != nil {
			return nil, err
		}
		return runner, nil
	}
	immediate, err := runChurn(mpFactoryImmediate)
	if err != nil {
		return nil, fmt.Errorf("churn immediate: %w", err)
	}
	warm, err := runChurn(mpFactory)
	if err != nil {
		return nil, fmt.Errorf("churn warm-up: %w", err)
	}
	res := &ExtensionChurnResult{}
	// Tail instability over the churn window (skip the initial mass
	// bootstrap, which dominates both).
	tail := func(r *sim.Runner) (float64, error) {
		series := r.Sys().InstabilitySeries(scale.DurationTicks/10, churnSpread)
		return stats.Percentile(series, 99)
	}
	if res.ImmediateTail, err = tail(immediate); err != nil {
		return nil, err
	}
	if res.WarmupTail, err = tail(warm); err != nil {
		return nil, err
	}
	finalFrom := churnSpread + (scale.DurationTicks-churnSpread)/2
	iSum, err := immediate.Sys().Summarize(finalFrom, scale.DurationTicks)
	if err != nil {
		return nil, err
	}
	wSum, err := warm.Sys().Summarize(finalFrom, scale.DurationTicks)
	if err != nil {
		return nil, err
	}
	res.ImmediateErr = iSum.MedianRelErr
	res.WarmupErr = wSum.MedianRelErr
	return res, nil
}

// Render implements the experiment output contract.
func (r *ExtensionChurnResult) Render() string {
	var sb strings.Builder
	sb.WriteString(header("Extension E2: filter warm-up under continuous churn (joins spread over 75% of run)"))
	sb.WriteString(fmt.Sprintf("%-20s %-24s %-18s\n", "config", "p99 instability (churn)", "final rel err"))
	sb.WriteString(fmt.Sprintf("%-20s %-24.2f %-18.4f\n", "warm-up 1 (paper)", r.ImmediateTail, r.ImmediateErr))
	sb.WriteString(fmt.Sprintf("%-20s %-24.2f %-18.4f\n", "warm-up 2 (fix)", r.WarmupTail, r.WarmupErr))
	sb.WriteString("the Section VI claim: the one-sample delay buys churn robustness at only a small cost\n")
	return sb.String()
}
