package experiments

import (
	"fmt"
	"strings"

	"netcoord/internal/filter"
	"netcoord/internal/metrics"
	"netcoord/internal/stats"
)

// StreamCDFs packages the four per-run CDFs of Figure 5 for one
// configuration.
type StreamCDFs struct {
	Name string
	// MedianRelErrPerNode is each node's median relative error.
	MedianRelErrPerNode []float64
	// P95RelErrPerNode is each node's 95th-percentile relative error.
	P95RelErrPerNode []float64
	// P95MovementPerNode is each node's 95th-percentile per-observation
	// coordinate change (ms).
	P95MovementPerNode []float64
	// Instability is the per-second aggregate coordinate change (ms/s).
	Instability []float64
	// Summary condenses the run.
	Summary metrics.Summary
}

// collectStreamCDFs reads the Figure 5 metric set out of a collector.
func collectStreamCDFs(name string, col *metrics.Collector, from, to uint64) (StreamCDFs, error) {
	med, err := col.PerNodeErrorQuantile(50, from, to)
	if err != nil {
		return StreamCDFs{}, err
	}
	p95, err := col.PerNodeErrorQuantile(95, from, to)
	if err != nil {
		return StreamCDFs{}, err
	}
	mov, err := col.PerNodeMovementQuantile(95, from, to)
	if err != nil {
		return StreamCDFs{}, err
	}
	sum, err := col.Summarize(from, to)
	if err != nil {
		return StreamCDFs{}, err
	}
	return StreamCDFs{
		Name:                name,
		MedianRelErrPerNode: med,
		P95RelErrPerNode:    p95,
		P95MovementPerNode:  mov,
		Instability:         col.InstabilitySeries(from, to),
		Summary:             sum,
	}, nil
}

// renderStream renders one configuration's CDF quantiles.
func renderStream(s StreamCDFs) string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("--- %s ---\n", s.Name))
	sb.WriteString(cdfSummary("median rel err per node", s.MedianRelErrPerNode))
	sb.WriteString(cdfSummary("95th pct rel err per node", s.P95RelErrPerNode))
	sb.WriteString(cdfSummary("95th pct movement per node", s.P95MovementPerNode))
	sb.WriteString(cdfSummary("instability (ms/s)", s.Instability))
	return sb.String()
}

// Fig05Result reproduces Figure 5: MP filter vs no filter on the same
// trace — accuracy and stability CDFs plus the filtered-histogram bottom
// panel.
type Fig05Result struct {
	MP  StreamCDFs
	Raw StreamCDFs
	// RawHist and FilteredHist are the bottom panel: the raw observation
	// distribution vs what the MP filter forwards to Vivaldi.
	RawHist      *stats.Histogram
	FilteredHist *stats.Histogram
	// WorstInstabilityRatio is raw's maximum instability over MP's — the
	// paper reports three orders of magnitude.
	WorstInstabilityRatio float64
}

// Fig05FilterCDFs runs the MP-vs-none comparison.
func Fig05FilterCDFs(scale Scale) (*Fig05Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	from, to := scale.MeasureFrom(), scale.DurationTicks

	mpRun, err := run(runSpec{scale: scale, filter: mpFactory})
	if err != nil {
		return nil, fmt.Errorf("fig 5 mp run: %w", err)
	}
	mp, err := collectStreamCDFs("MP filter", mpRun.Sys(), from, to)
	if err != nil {
		return nil, err
	}
	rawRun, err := run(runSpec{scale: scale})
	if err != nil {
		return nil, fmt.Errorf("fig 5 raw run: %w", err)
	}
	raw, err := collectStreamCDFs("No filter", rawRun.Sys(), from, to)
	if err != nil {
		return nil, err
	}

	rawHist, filteredHist, err := fig05Histograms(scale)
	if err != nil {
		return nil, err
	}

	worst := 0.0
	maxOf := func(vs []float64) float64 {
		m := 0.0
		for _, v := range vs {
			if v > m {
				m = v
			}
		}
		return m
	}
	if mpMax := maxOf(mp.Instability); mpMax > 0 {
		worst = maxOf(raw.Instability) / mpMax
	}
	return &Fig05Result{
		MP: mp, Raw: raw,
		RawHist: rawHist, FilteredHist: filteredHist,
		WorstInstabilityRatio: worst,
	}, nil
}

// fig05Histograms builds the bottom panel: raw observations vs MP filter
// outputs over the measurement half of the trace.
func fig05Histograms(scale Scale) (raw, filtered *stats.Histogram, err error) {
	net, err := scale.network(nil)
	if err != nil {
		return nil, nil, err
	}
	gen, err := scale.generator(net)
	if err != nil {
		return nil, nil, err
	}
	raw, err = stats.NewHistogram(stats.Fig2Bounds())
	if err != nil {
		return nil, nil, err
	}
	filtered, err = stats.NewHistogram(stats.Fig2Bounds())
	if err != nil {
		return nil, nil, err
	}
	banks := make([]*filter.Bank[int], scale.Nodes)
	for i := range banks {
		banks[i] = filter.NewBank[int](mpFactory, 0)
	}
	for {
		s, ok := gen.Next()
		if !ok {
			break
		}
		if s.Lost {
			continue
		}
		raw.Observe(s.RTT)
		if est, ok := banks[s.From].Observe(s.To, s.RTT); ok {
			filtered.Observe(est)
		}
	}
	return raw, filtered, nil
}

// Render implements the experiment output contract.
func (r *Fig05Result) Render() string {
	var sb strings.Builder
	sb.WriteString(header("Figure 5: accuracy and stability CDFs, MP filter vs no filter (second half of run)"))
	sb.WriteString(renderStream(r.MP))
	sb.WriteString(renderStream(r.Raw))
	sb.WriteString(fmt.Sprintf("worst-case instability ratio raw/MP: %.0fx (paper: ~3 orders of magnitude)\n\n", r.WorstInstabilityRatio))
	sb.WriteString("bottom panel: observation distribution before vs after MP filtering\n")
	sb.WriteString("RAW:\n")
	sb.WriteString(r.RawHist.Render())
	sb.WriteString("MP-FILTERED (tail trimmed, body intact):\n")
	sb.WriteString(r.FilteredHist.Render())
	return sb.String()
}

// Table1Row is one configuration of Table I.
type Table1Row struct {
	Name              string
	MedianRelErr      float64
	MedianInstability float64
	// RelErrDelta and InstabilityDelta are percentage changes vs the
	// no-filter baseline, as the paper tabulates.
	RelErrDelta      string
	InstabilityDelta string
}

// Table1Result reproduces Table I: MP vs no filter vs EWMA at three
// alphas. The paper's finding: every EWMA is less accurate than no
// filter at all.
type Table1Result struct {
	Rows []Table1Row
}

// Table1FilterComparison runs the five configurations of Table I on
// identical traces.
func Table1FilterComparison(scale Scale) (*Table1Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	from, to := scale.MeasureFrom(), scale.DurationTicks
	type cfg struct {
		name    string
		factory filter.Factory
	}
	ewma := func(alpha float64) filter.Factory {
		return func() filter.Filter {
			f, err := filter.NewEWMA(alpha)
			if err != nil {
				return filter.NewNone()
			}
			return f
		}
	}
	cfgs := []cfg{
		{name: "MP Filter", factory: mpFactory},
		{name: "No Filter", factory: nil},
		{name: "EWMA a=0.02", factory: ewma(0.02)},
		{name: "EWMA a=0.10", factory: ewma(0.10)},
		{name: "EWMA a=0.20", factory: ewma(0.20)},
	}
	summaries := make([]metrics.Summary, len(cfgs))
	for i, c := range cfgs {
		r, err := run(runSpec{scale: scale, filter: c.factory})
		if err != nil {
			return nil, fmt.Errorf("table 1 %s: %w", c.name, err)
		}
		s, err := r.Sys().Summarize(from, to)
		if err != nil {
			return nil, err
		}
		summaries[i] = s
	}
	base := summaries[1] // No Filter
	res := &Table1Result{}
	for i, c := range cfgs {
		res.Rows = append(res.Rows, Table1Row{
			Name:              c.name,
			MedianRelErr:      summaries[i].MedianRelErr,
			MedianInstability: summaries[i].MedianInstability,
			RelErrDelta:       pct(summaries[i].MedianRelErr, base.MedianRelErr),
			InstabilityDelta:  pct(summaries[i].MedianInstability, base.MedianInstability),
		})
	}
	return res, nil
}

// Render implements the experiment output contract.
func (r *Table1Result) Render() string {
	var sb strings.Builder
	sb.WriteString(header("Table I: exponentially-weighted histories vs MP filter"))
	sb.WriteString(fmt.Sprintf("%-14s %-22s %-22s\n", "filter", "median rel err", "instability (ms/s)"))
	for _, row := range r.Rows {
		sb.WriteString(fmt.Sprintf("%-14s %-8.3f (%-6s)      %-8.1f (%-6s)\n",
			row.Name, row.MedianRelErr, row.RelErrDelta, row.MedianInstability, row.InstabilityDelta))
	}
	sb.WriteString("paper: MP 0.07 (-42%) / 415 (-47%); none 0.12 / 783; EWMAs worse on accuracy than no filter\n")
	return sb.String()
}
