package experiments

import (
	"fmt"
	"math"
	"strings"

	"netcoord/internal/filter"
	"netcoord/internal/stats"
)

// Fig04Row is one boxplot of Figure 4: the distribution across links of
// per-link 95th-percentile relative prediction error, for one history
// size h (percentile fixed at p = 25).
type Fig04Row struct {
	History int
	Box     stats.Boxplot
	// Links is the number of links contributing.
	Links int
}

// Fig04Result reproduces Figure 4's history-size sweep. The paper's
// finding: h = 4 minimizes prediction error; long histories are not much
// worse but adapt more slowly.
type Fig04Result struct {
	Rows []Fig04Row
	// BestHistory is the h with the lowest median.
	BestHistory int
}

// Fig04HistorySizeSweep predicts each link's next observation with
// MP(h, 25) for h in {1, 2, ..., 128} and reports the per-link error
// distributions.
func Fig04HistorySizeSweep(scale Scale) (*Fig04Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	histories := []int{1, 2, 4, 8, 16, 32, 64, 128}
	res := &Fig04Result{}
	bestMedian := math.Inf(1)
	for _, h := range histories {
		row, err := fig04OneHistory(scale, h)
		if err != nil {
			return nil, fmt.Errorf("fig 4 h=%d: %w", h, err)
		}
		res.Rows = append(res.Rows, row)
		if row.Box.Median < bestMedian {
			bestMedian = row.Box.Median
			res.BestHistory = h
		}
	}
	return res, nil
}

func fig04OneHistory(scale Scale, h int) (Fig04Row, error) {
	net, err := scale.network(nil)
	if err != nil {
		return Fig04Row{}, err
	}
	gen, err := scale.generator(net)
	if err != nil {
		return Fig04Row{}, err
	}
	type linkKey struct{ from, to int }
	type linkState struct {
		f       filter.Filter
		errs    []float64
		predict float64
		primed  bool
	}
	links := make(map[linkKey]*linkState)
	for {
		s, ok := gen.Next()
		if !ok {
			break
		}
		if s.Lost {
			continue
		}
		key := linkKey{s.From, s.To}
		st, ok := links[key]
		if !ok {
			mp, err := filter.NewMP(filter.MPConfig{History: h, Percentile: 25, UpdateAfter: 1})
			if err != nil {
				return Fig04Row{}, err
			}
			st = &linkState{f: mp}
			links[key] = st
		}
		// The filter's previous output is the prediction for this
		// observation ("we applied different filters to predict what the
		// next observation would be"). The first observation of a link
		// has no prediction.
		if st.primed {
			st.errs = append(st.errs, math.Abs(st.predict-s.RTT)/s.RTT)
		}
		if est, ok := st.f.Observe(s.RTT); ok {
			st.predict = est
			st.primed = true
		}
	}
	// Per-link 95th percentile.
	var p95s []float64
	for _, st := range links {
		if len(st.errs) < 4 {
			continue
		}
		v, err := stats.Percentile(st.errs, 95)
		if err != nil {
			return Fig04Row{}, err
		}
		p95s = append(p95s, v)
	}
	box, err := stats.BoxplotOf(p95s)
	if err != nil {
		return Fig04Row{}, err
	}
	return Fig04Row{History: h, Box: box, Links: len(p95s)}, nil
}

// Render implements the experiment output contract.
func (r *Fig04Result) Render() string {
	var sb strings.Builder
	sb.WriteString(header("Figure 4: per-link 95th-pct relative prediction error vs MP history size (p=25)"))
	sb.WriteString(fmt.Sprintf("%-8s %-8s %-8s %-8s %-8s %-10s %-8s\n",
		"history", "median", "q1", "q3", "whisker", "outliers", "max"))
	for _, row := range r.Rows {
		sb.WriteString(fmt.Sprintf("%-8d %-8.3f %-8.3f %-8.3f %-8.3f %-10d %-8.1f\n",
			row.History, row.Box.Median, row.Box.Q1, row.Box.Q3, row.Box.HighWhisker, len(row.Box.Outliers), row.Box.Max))
	}
	sb.WriteString(fmt.Sprintf("best history: %d (paper: 4)\n", r.BestHistory))
	return sb.String()
}
