package experiments

import (
	"fmt"
	"testing"

	"netcoord/internal/heuristic"
	"netcoord/internal/sim"
)

// BenchmarkSweepGrid measures a Figure 8-style threshold sweep end to
// end — trace synthesis, simulation, and summarization for every grid
// point — sequentially and with experiment-level parallelism. The
// parallel variant is how the saturated Fig 8-12 reproductions run:
// whole simulations in flight at once, each on the sequential engine.
// Results are bit-identical between the two (pinned by
// TestSweepParallelismMatchesSequential), so this is purely the
// wall-clock comparison.
func BenchmarkSweepGrid(b *testing.B) {
	scale := Scale{Nodes: 24, DurationTicks: 300, IntervalTicks: 1, Seed: 20050502}
	params := []float64{1, 2, 4, 8, 16, 32}
	build := func(tau float64) sim.PolicyFactory {
		return func(dim int) (heuristic.Policy, error) {
			return heuristic.NewEnergy(dim, heuristic.DefaultWindow, tau)
		}
	}
	for _, sweepPar := range []int{1, 4} {
		b.Run(fmt.Sprintf("sweepPar=%d", sweepPar), func(b *testing.B) {
			s := scale
			s.SweepParallelism = sweepPar
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pts, err := sweep(s, params, build)
				if err != nil {
					b.Fatal(err)
				}
				if len(pts) != len(params) {
					b.Fatalf("got %d points", len(pts))
				}
			}
		})
	}
}
