package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"netcoord/internal/coord"
)

// ErrClosed is returned by operations on a closed peer.
var ErrClosed = errors.New("transport: peer closed")

// ErrTimeout is returned when a ping receives no pong in time.
var ErrTimeout = errors.New("transport: ping timeout")

// State is the local coordinate state stamped onto outgoing messages.
type State struct {
	// Coord is the node's current system-level coordinate.
	Coord coord.Coordinate
	// Error is the node's Vivaldi error weight.
	Error float64
	// Gossip optionally names one neighbor address to share.
	Gossip string
}

// PingResult is what a successful ping learns about the remote.
type PingResult struct {
	// RTT is the measured round-trip time.
	RTT time.Duration
	// Coord is the remote's system-level coordinate.
	Coord coord.Coordinate
	// Error is the remote's Vivaldi error weight.
	Error float64
	// Gossip is the neighbor address the remote shared ("" if none).
	Gossip string
}

// StateFunc supplies the current local state; called for every outgoing
// message, so it must be cheap and safe for concurrent use.
type StateFunc func() State

// ObserveFunc is notified of every inbound message's metadata: the
// remote's address, its state, and its gossiped neighbor. The node layer
// uses it to learn neighbors passively.
type ObserveFunc func(remoteAddr string, msg Message)

// Peer is one UDP endpoint of the ping protocol. It answers pings
// automatically and matches pongs to outstanding pings.
type Peer struct {
	conn  *net.UDPConn
	state StateFunc
	obs   ObserveFunc

	mu      sync.Mutex
	pending map[uint32]chan pong
	seq     uint32
	closed  bool

	wg sync.WaitGroup
}

type pong struct {
	at  time.Time
	msg Message
}

// Listen opens a UDP socket on addr ("127.0.0.1:0" for an ephemeral
// port). state must be non-nil; observe may be nil.
func Listen(addr string, state StateFunc, observe ObserveFunc) (*Peer, error) {
	if state == nil {
		return nil, errors.New("transport: nil state func")
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("listen %q: %w", addr, err)
	}
	p := &Peer{
		conn:    conn,
		state:   state,
		obs:     observe,
		pending: make(map[uint32]chan pong),
	}
	p.wg.Add(1)
	go p.readLoop()
	return p, nil
}

// Addr returns the bound address (host:port).
func (p *Peer) Addr() string { return p.conn.LocalAddr().String() }

// Close shuts the socket and joins the read loop. Outstanding pings fail
// with ErrClosed.
func (p *Peer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for seq, ch := range p.pending {
		close(ch)
		delete(p.pending, seq)
	}
	p.mu.Unlock()
	err := p.conn.Close()
	p.wg.Wait()
	if err != nil {
		return fmt.Errorf("close peer: %w", err)
	}
	return nil
}

// readLoop services the socket until Close.
func (p *Peer) readLoop() {
	defer p.wg.Done()
	buf := make([]byte, MaxPacket)
	out := make([]byte, 0, MaxPacket)
	for {
		n, remote, err := p.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed (or unrecoverable); Close joins us
		}
		at := time.Now()
		msg, err := Decode(buf[:n])
		if err != nil {
			continue // hostile or corrupt packet: drop
		}
		if p.obs != nil {
			p.obs(remote.String(), msg)
		}
		switch msg.Type {
		case TypePing:
			st := p.state()
			reply := Message{
				Type:   TypePong,
				Seq:    msg.Seq,
				Error:  st.Error,
				Coord:  st.Coord,
				Gossip: st.Gossip,
			}
			pkt, err := reply.Encode(out[:0])
			if err != nil {
				continue
			}
			// Best effort; a lost pong is a lost sample.
			if _, err := p.conn.WriteToUDP(pkt, remote); err != nil {
				continue
			}
		case TypePong:
			p.mu.Lock()
			ch, ok := p.pending[msg.Seq]
			if ok {
				delete(p.pending, msg.Seq)
			}
			p.mu.Unlock()
			if ok {
				ch <- pong{at: at, msg: msg}
			}
		}
	}
}

// Ping measures the RTT to addr, exchanging coordinate state. It blocks
// until the pong arrives, the timeout elapses, or ctx is done.
func (p *Peer) Ping(ctx context.Context, addr string, timeout time.Duration) (PingResult, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return PingResult{}, fmt.Errorf("resolve %q: %w", addr, err)
	}

	ch := make(chan pong, 1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return PingResult{}, ErrClosed
	}
	p.seq++
	seq := p.seq
	p.pending[seq] = ch
	p.mu.Unlock()

	cancelPending := func() {
		p.mu.Lock()
		delete(p.pending, seq)
		p.mu.Unlock()
	}

	st := p.state()
	msg := Message{Type: TypePing, Seq: seq, Error: st.Error, Coord: st.Coord, Gossip: st.Gossip}
	pkt, err := msg.Encode(nil)
	if err != nil {
		cancelPending()
		return PingResult{}, err
	}
	start := time.Now()
	if _, err := p.conn.WriteToUDP(pkt, udpAddr); err != nil {
		cancelPending()
		return PingResult{}, fmt.Errorf("send ping: %w", err)
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case pg, ok := <-ch:
		if !ok {
			return PingResult{}, ErrClosed
		}
		return PingResult{
			RTT:    pg.at.Sub(start),
			Coord:  pg.msg.Coord,
			Error:  pg.msg.Error,
			Gossip: pg.msg.Gossip,
		}, nil
	case <-timer.C:
		cancelPending()
		return PingResult{}, fmt.Errorf("%w: %s after %v", ErrTimeout, addr, timeout)
	case <-ctx.Done():
		cancelPending()
		return PingResult{}, fmt.Errorf("ping %s: %w", addr, ctx.Err())
	}
}
