package transport

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"netcoord/internal/coord"
)

// netResolve resolves a UDP address for raw-packet tests.
func netResolve(addr string) (*net.UDPAddr, error) {
	return net.ResolveUDPAddr("udp", addr)
}

func TestMessageEncodeDecodeRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		msg  Message
	}{
		{
			name: "ping with gossip",
			msg: Message{
				Type:   TypePing,
				Seq:    42,
				Error:  0.5,
				Coord:  coord.New(1.5, -2.5, 3),
				Gossip: "10.0.0.1:9000",
			},
		},
		{
			name: "pong no gossip",
			msg: Message{
				Type:  TypePong,
				Seq:   7,
				Error: 1,
				Coord: coord.New(0, 0, 0),
			},
		},
		{
			name: "height carried",
			msg: Message{
				Type:  TypePing,
				Seq:   1,
				Error: 0.25,
				Coord: coord.Coordinate{Vec: coord.New(5, 6, 7).Vec, Height: 2.5},
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pkt, err := tt.msg.Encode(nil)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			if len(pkt) > MaxPacket {
				t.Fatalf("packet %d bytes exceeds MaxPacket %d", len(pkt), MaxPacket)
			}
			got, err := Decode(pkt)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if got.Type != tt.msg.Type || got.Seq != tt.msg.Seq || got.Error != tt.msg.Error || got.Gossip != tt.msg.Gossip {
				t.Fatalf("round trip: got %+v, want %+v", got, tt.msg)
			}
			if !got.Coord.Equal(tt.msg.Coord) {
				t.Fatalf("coordinate: got %v, want %v", got.Coord, tt.msg.Coord)
			}
		})
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := (Message{Type: 9}).Encode(nil); !errors.Is(err, ErrBadPacket) {
		t.Fatalf("bad type: %v", err)
	}
	long := make([]byte, MaxGossipAddr+1)
	if _, err := (Message{Type: TypePing, Gossip: string(long)}).Encode(nil); !errors.Is(err, ErrBadPacket) {
		t.Fatalf("oversize gossip: %v", err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	tests := []struct {
		name string
		pkt  []byte
	}{
		{name: "empty", pkt: nil},
		{name: "short", pkt: []byte{1, 2, 3}},
		{name: "bad magic", pkt: append([]byte{'X', 'X', 1, 1}, make([]byte, 20)...)},
		{name: "bad version", pkt: append([]byte{'N', 'C', 9, 1}, make([]byte, 20)...)},
		{name: "bad type", pkt: append([]byte{'N', 'C', 1, 9}, make([]byte, 20)...)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(tt.pkt); err == nil {
				t.Fatal("garbage accepted")
			}
		})
	}
}

func TestDecodeTruncatedGossip(t *testing.T) {
	msg := Message{Type: TypePing, Seq: 1, Coord: coord.New(1, 2, 3), Gossip: "somewhere:1234"}
	pkt, err := msg.Encode(nil)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, err := Decode(pkt[:len(pkt)-3]); !errors.Is(err, ErrBadPacket) {
		t.Fatalf("truncated gossip: %v", err)
	}
}

// Property: arbitrary byte strings never panic the decoder.
func TestDecodeFuzzNoPanic(t *testing.T) {
	f := func(pkt []byte) bool {
		_, _ = Decode(pkt)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func staticState(c coord.Coordinate, w float64, gossip string) StateFunc {
	return func() State { return State{Coord: c, Error: w, Gossip: gossip} }
}

func TestPingPongOverLoopback(t *testing.T) {
	serverCoord := coord.New(10, 20, 30)
	server, err := Listen("127.0.0.1:0", staticState(serverCoord, 0.25, "peer:1"), nil)
	if err != nil {
		t.Fatalf("Listen server: %v", err)
	}
	defer func() {
		if err := server.Close(); err != nil {
			t.Errorf("close server: %v", err)
		}
	}()
	client, err := Listen("127.0.0.1:0", staticState(coord.Origin(3), 1, ""), nil)
	if err != nil {
		t.Fatalf("Listen client: %v", err)
	}
	defer func() {
		if err := client.Close(); err != nil {
			t.Errorf("close client: %v", err)
		}
	}()

	res, err := client.Ping(context.Background(), server.Addr(), 2*time.Second)
	if err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if res.RTT <= 0 || res.RTT > time.Second {
		t.Fatalf("RTT = %v", res.RTT)
	}
	if !res.Coord.Equal(serverCoord) {
		t.Fatalf("remote coord = %v, want %v", res.Coord, serverCoord)
	}
	if res.Error != 0.25 {
		t.Fatalf("remote error = %v", res.Error)
	}
	if res.Gossip != "peer:1" {
		t.Fatalf("gossip = %q", res.Gossip)
	}
}

func TestPingTimeout(t *testing.T) {
	client, err := Listen("127.0.0.1:0", staticState(coord.Origin(3), 1, ""), nil)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer func() {
		if err := client.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	// Reserve a port with no responder behind it.
	dead, err := Listen("127.0.0.1:0", staticState(coord.Origin(3), 1, ""), nil)
	if err != nil {
		t.Fatalf("Listen dead: %v", err)
	}
	deadAddr := dead.Addr()
	if err := dead.Close(); err != nil {
		t.Fatalf("close dead: %v", err)
	}
	_, err = client.Ping(context.Background(), deadAddr, 150*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("error = %v, want ErrTimeout", err)
	}
}

func TestPingContextCancel(t *testing.T) {
	client, err := Listen("127.0.0.1:0", staticState(coord.Origin(3), 1, ""), nil)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer func() {
		if err := client.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	dead, err := Listen("127.0.0.1:0", staticState(coord.Origin(3), 1, ""), nil)
	if err != nil {
		t.Fatalf("Listen dead: %v", err)
	}
	deadAddr := dead.Addr()
	if err := dead.Close(); err != nil {
		t.Fatalf("close dead: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err = client.Ping(ctx, deadAddr, 5*time.Second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

func TestPingAfterCloseFails(t *testing.T) {
	p, err := Listen("127.0.0.1:0", staticState(coord.Origin(3), 1, ""), nil)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := p.Ping(context.Background(), "127.0.0.1:1", time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("error = %v, want ErrClosed", err)
	}
	// Double close is a no-op.
	if err := p.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestObserveSeesInboundTraffic(t *testing.T) {
	var mu sync.Mutex
	var seen []Message
	server, err := Listen("127.0.0.1:0", staticState(coord.New(1, 1, 1), 0.5, ""), func(remote string, m Message) {
		mu.Lock()
		seen = append(seen, m)
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("Listen server: %v", err)
	}
	defer func() {
		if err := server.Close(); err != nil {
			t.Errorf("close server: %v", err)
		}
	}()
	client, err := Listen("127.0.0.1:0", staticState(coord.New(2, 2, 2), 0.75, "gossip:9"), nil)
	if err != nil {
		t.Fatalf("Listen client: %v", err)
	}
	defer func() {
		if err := client.Close(); err != nil {
			t.Errorf("close client: %v", err)
		}
	}()
	if _, err := client.Ping(context.Background(), server.Addr(), 2*time.Second); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 {
		t.Fatalf("observer saw %d messages, want 1", len(seen))
	}
	if seen[0].Type != TypePing || seen[0].Gossip != "gossip:9" {
		t.Fatalf("observed %+v", seen[0])
	}
	if !seen[0].Coord.Equal(coord.New(2, 2, 2)) {
		t.Fatalf("observed coord %v", seen[0].Coord)
	}
}

func TestConcurrentPings(t *testing.T) {
	server, err := Listen("127.0.0.1:0", staticState(coord.New(5, 5, 5), 0.5, ""), nil)
	if err != nil {
		t.Fatalf("Listen server: %v", err)
	}
	defer func() {
		if err := server.Close(); err != nil {
			t.Errorf("close server: %v", err)
		}
	}()
	client, err := Listen("127.0.0.1:0", staticState(coord.Origin(3), 1, ""), nil)
	if err != nil {
		t.Fatalf("Listen client: %v", err)
	}
	defer func() {
		if err := client.Close(); err != nil {
			t.Errorf("close client: %v", err)
		}
	}()
	const workers = 8
	const pingsEach = 10
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < pingsEach; i++ {
				if _, err := client.Ping(context.Background(), server.Addr(), 2*time.Second); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("concurrent ping: %v", err)
	}
}

func TestHostilePacketsIgnored(t *testing.T) {
	server, err := Listen("127.0.0.1:0", staticState(coord.New(1, 2, 3), 0.5, ""), nil)
	if err != nil {
		t.Fatalf("Listen server: %v", err)
	}
	defer func() {
		if err := server.Close(); err != nil {
			t.Errorf("close server: %v", err)
		}
	}()
	client, err := Listen("127.0.0.1:0", staticState(coord.Origin(3), 1, ""), nil)
	if err != nil {
		t.Fatalf("Listen client: %v", err)
	}
	defer func() {
		if err := client.Close(); err != nil {
			t.Errorf("close client: %v", err)
		}
	}()
	// Throw garbage at the server, then confirm it still answers pings.
	raw, err := Listen("127.0.0.1:0", staticState(coord.Origin(3), 1, ""), nil)
	if err != nil {
		t.Fatalf("Listen raw: %v", err)
	}
	defer func() {
		if err := raw.Close(); err != nil {
			t.Errorf("close raw: %v", err)
		}
	}()
	serverUDP := server.Addr()
	conn := raw.conn
	addr, err := netResolve(serverUDP)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	for _, pkt := range [][]byte{nil, {0}, []byte("garbage!"), make([]byte, MaxPacket)} {
		if len(pkt) == 0 {
			continue
		}
		if _, err := conn.WriteToUDP(pkt, addr); err != nil {
			t.Fatalf("send garbage: %v", err)
		}
	}
	if _, err := client.Ping(context.Background(), server.Addr(), 2*time.Second); err != nil {
		t.Fatalf("Ping after garbage: %v", err)
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	msg := Message{Type: TypePing, Seq: 1, Error: 0.5, Coord: coord.New(1, 2, 3), Gossip: "10.0.0.1:9000"}
	buf := make([]byte, 0, MaxPacket)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pkt, err := msg.Encode(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoopbackPing(b *testing.B) {
	server, err := Listen("127.0.0.1:0", staticState(coord.New(1, 2, 3), 0.5, ""), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer server.Close()
	client, err := Listen("127.0.0.1:0", staticState(coord.Origin(3), 1, ""), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Ping(context.Background(), server.Addr(), 2*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
