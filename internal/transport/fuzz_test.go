package transport

import (
	"testing"

	"netcoord/internal/coord"
)

// FuzzDecode drives the packet decoder with arbitrary bytes: it must
// never panic, and any packet it accepts must re-encode decodable.
func FuzzDecode(f *testing.F) {
	// Seed with valid packets of both types and common corruptions.
	ping := Message{Type: TypePing, Seq: 1, Error: 0.5, Coord: coord.New(1, 2, 3), Gossip: "10.0.0.1:9000"}
	pong := Message{Type: TypePong, Seq: 99, Error: 1, Coord: coord.Origin(3)}
	for _, m := range []Message{ping, pong} {
		pkt, err := m.Encode(nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(pkt)
		if len(pkt) > 4 {
			f.Add(pkt[:len(pkt)-3]) // truncated
		}
	}
	f.Add([]byte{})
	f.Add([]byte("NC"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted packets must survive a round trip.
		out, err := m.Encode(nil)
		if err != nil {
			t.Fatalf("accepted message failed to re-encode: %v", err)
		}
		back, err := Decode(out)
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		if back.Type != m.Type || back.Seq != m.Seq || back.Gossip != m.Gossip {
			t.Fatalf("round trip mutated message: %+v vs %+v", back, m)
		}
	})
}
