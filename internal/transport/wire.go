// Package transport implements the UDP ping protocol the live coordinate
// node runs: application-level pings (the paper's input source), pong
// replies carrying the responder's coordinate state, and one gossiped
// neighbor address per message ("nodes learn new neighbors by attaching
// the address of one other node to each sampling message").
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"netcoord/internal/coord"
)

// Message types.
const (
	// TypePing requests a pong.
	TypePing = byte(1)
	// TypePong answers a ping, echoing its sequence number.
	TypePong = byte(2)
)

// Wire format constants.
const (
	wireMagic0  = byte('N')
	wireMagic1  = byte('C')
	wireVersion = byte(1)
	// headerLen = magic(2) + version(1) + type(1) + seq(4) + err(8).
	headerLen = 16
	// MaxGossipAddr bounds the gossiped address string.
	MaxGossipAddr = 255
	// MaxPacket is the largest packet Encode can produce and the read
	// buffer size.
	MaxPacket = headerLen + 1 + coord.MaxDimension*8 + 8 + 1 + MaxGossipAddr
)

// ErrBadPacket reports an undecodable packet.
var ErrBadPacket = errors.New("transport: malformed packet")

// Message is a decoded ping or pong.
type Message struct {
	// Type is TypePing or TypePong.
	Type byte
	// Seq matches pongs to outstanding pings.
	Seq uint32
	// Error is the sender's Vivaldi error weight w.
	Error float64
	// Coord is the sender's current system-level coordinate.
	Coord coord.Coordinate
	// Gossip optionally carries one neighbor address the sender knows.
	Gossip string
}

// Encode appends the wire form of m to dst.
//
// Layout: magic(2) version(1) type(1) seq(4, BE) error(8, BE float)
// coordinate(coord encoding) gossipLen(1) gossip.
func (m Message) Encode(dst []byte) ([]byte, error) {
	if m.Type != TypePing && m.Type != TypePong {
		return nil, fmt.Errorf("%w: type %d", ErrBadPacket, m.Type)
	}
	if len(m.Gossip) > MaxGossipAddr {
		return nil, fmt.Errorf("%w: gossip address %d bytes", ErrBadPacket, len(m.Gossip))
	}
	dst = append(dst, wireMagic0, wireMagic1, wireVersion, m.Type)
	dst = binary.BigEndian.AppendUint32(dst, m.Seq)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.Error))
	var err error
	dst, err = m.Coord.Encode(dst)
	if err != nil {
		return nil, fmt.Errorf("encode message coordinate: %w", err)
	}
	dst = append(dst, byte(len(m.Gossip)))
	dst = append(dst, m.Gossip...)
	return dst, nil
}

// Decode parses a packet.
func Decode(pkt []byte) (Message, error) {
	if len(pkt) < headerLen {
		return Message{}, fmt.Errorf("%w: %d bytes", ErrBadPacket, len(pkt))
	}
	if pkt[0] != wireMagic0 || pkt[1] != wireMagic1 {
		return Message{}, fmt.Errorf("%w: bad magic", ErrBadPacket)
	}
	if pkt[2] != wireVersion {
		return Message{}, fmt.Errorf("%w: version %d", ErrBadPacket, pkt[2])
	}
	m := Message{Type: pkt[3]}
	if m.Type != TypePing && m.Type != TypePong {
		return Message{}, fmt.Errorf("%w: type %d", ErrBadPacket, m.Type)
	}
	m.Seq = binary.BigEndian.Uint32(pkt[4:8])
	m.Error = math.Float64frombits(binary.BigEndian.Uint64(pkt[8:16]))
	var rest []byte
	var err error
	m.Coord, rest, err = coord.Decode(pkt[headerLen:])
	if err != nil {
		return Message{}, fmt.Errorf("decode message coordinate: %w", err)
	}
	if len(rest) < 1 {
		return Message{}, fmt.Errorf("%w: missing gossip length", ErrBadPacket)
	}
	glen := int(rest[0])
	rest = rest[1:]
	if len(rest) < glen {
		return Message{}, fmt.Errorf("%w: truncated gossip address", ErrBadPacket)
	}
	m.Gossip = string(rest[:glen])
	return m, nil
}
