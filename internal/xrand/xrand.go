// Package xrand provides the deterministic randomness substrate used by
// the trace generator, the simulator, and the Vivaldi bootstrap.
//
// Two styles are offered:
//
//   - Stream: a sequential PRNG (SplitMix64 core) with the usual variate
//     methods. Every consumer owns its own Stream; there are no package
//     level mutable generators.
//   - Stateless hashing (At, HashStream): a pure function of
//     (seed, identifiers...) producing an independent Stream. The latency
//     model uses this so that the k-th observation on link (i, j) is a
//     fixed function of the seed — generation order cannot perturb the
//     trace, and any single sample can be re-derived in O(1).
//
// The implementation is SplitMix64 (Steele, Lea, Flood 2014), which passes
// BigCrush and is trivially seedable — exactly what a reproducible
// simulation needs. It is not cryptographically secure and must never be
// used for anything security sensitive.
package xrand

import "math"

// golden is the 64-bit golden-ratio increment used by SplitMix64.
const golden = 0x9E3779B97F4A7C15

// mix advances and scrambles a SplitMix64 state word.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Hash64 combines a seed with a sequence of identifiers into a single
// well-mixed 64-bit value. It is the basis of the stateless streams.
func Hash64(seed uint64, ids ...uint64) uint64 {
	h := seed + golden
	h = mix(h)
	for _, id := range ids {
		h ^= mix(id + golden)
		h *= 0xFF51AFD7ED558CCD
		h = mix(h)
	}
	return h
}

// Stream is a deterministic sequential source of variates. The zero value
// is a valid stream seeded with zero; NewStream is clearer.
type Stream struct {
	state uint64
	// spare caches the second Box-Muller normal variate.
	spare    float64
	hasSpare bool
}

// NewStream returns a Stream seeded with the given value.
func NewStream(seed uint64) *Stream {
	return &Stream{state: seed}
}

// At returns an independent Stream determined purely by (seed, ids...).
// Streams for distinct id tuples are statistically independent.
func At(seed uint64, ids ...uint64) *Stream {
	return &Stream{state: Hash64(seed, ids...)}
}

// Uint64 returns the next 64 uniformly random bits.
func (s *Stream) Uint64() uint64 {
	s.state += golden
	return mix(s.state)
}

// Int63 returns a non-negative 63-bit integer. It matches the contract of
// math/rand.Source64's Int63 so a Stream can back a math/rand.Rand if a
// caller ever needs the full stdlib distribution set.
func (s *Stream) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Seed resets the stream state. Implements math/rand.Source.
func (s *Stream) Seed(seed int64) {
	s.state = uint64(seed)
	s.hasSpare = false
}

// Float64 returns a uniform variate in [0, 1).
func (s *Stream) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). n must be positive; n <= 0
// returns 0 rather than panicking (callers validate their own bounds).
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(s.Uint64() % uint64(n))
}

// Uniform returns a uniform variate in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Normal returns a normal variate with the given mean and standard
// deviation, via the Box-Muller transform (deterministic, no rejection).
func (s *Stream) Normal(mean, stddev float64) float64 {
	if s.hasSpare {
		s.hasSpare = false
		return mean + stddev*s.spare
	}
	// Guard against log(0).
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	r := math.Sqrt(-2 * math.Log(u1))
	theta := 2 * math.Pi * u2
	s.spare = r * math.Sin(theta)
	s.hasSpare = true
	return mean + stddev*r*math.Cos(theta)
}

// Exponential returns an exponential variate with the given mean.
func (s *Stream) Exponential(mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a Pareto variate with scale xm > 0 and shape alpha > 0.
// Heavy-tailed: the latency model uses it for the multi-order-of-magnitude
// spikes observed in the PlanetLab trace.
func (s *Stream) Pareto(xm, alpha float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// LogNormal returns exp(Normal(mu, sigma)).
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
