package xrand

import (
	"math"
	"testing"
)

func TestHash64Deterministic(t *testing.T) {
	a := Hash64(42, 1, 2, 3)
	b := Hash64(42, 1, 2, 3)
	if a != b {
		t.Fatalf("Hash64 not deterministic: %x != %x", a, b)
	}
}

func TestHash64SensitiveToInputs(t *testing.T) {
	base := Hash64(42, 1, 2, 3)
	variants := []uint64{
		Hash64(43, 1, 2, 3),
		Hash64(42, 2, 2, 3),
		Hash64(42, 1, 3, 3),
		Hash64(42, 1, 2, 4),
		Hash64(42, 1, 2),
		Hash64(42, 3, 2, 1),
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d collided with base hash", i)
		}
	}
}

func TestStreamDeterministic(t *testing.T) {
	a, b := NewStream(7), NewStream(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at step %d", i)
		}
	}
}

func TestAtIndependentOfCreationOrder(t *testing.T) {
	s1 := At(9, 4, 5)
	first := s1.Float64()
	// Interleave other streams; re-derive the same stream and compare.
	_ = At(9, 1, 1).Float64()
	_ = At(9, 2, 2).Float64()
	s2 := At(9, 4, 5)
	if got := s2.Float64(); got != first {
		t.Fatalf("At stream not order independent: %v != %v", got, first)
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewStream(1)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := NewStream(2)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := NewStream(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) produced only %d distinct values in 1000 draws", len(seen))
	}
	if got := s.Intn(0); got != 0 {
		t.Fatalf("Intn(0) = %d, want 0", got)
	}
	if got := s.Intn(-5); got != 0 {
		t.Fatalf("Intn(-5) = %d, want 0", got)
	}
}

func TestUniformRange(t *testing.T) {
	s := NewStream(4)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("Uniform(10,20) out of range: %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := NewStream(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("normal stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestExponentialMean(t *testing.T) {
	s := NewStream(6)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Exponential(4)
		if v < 0 {
			t.Fatalf("exponential produced negative value %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-4) > 0.1 {
		t.Fatalf("exponential mean = %v, want ~4", mean)
	}
}

func TestParetoProperties(t *testing.T) {
	s := NewStream(7)
	const n = 100000
	exceed := 0
	for i := 0; i < n; i++ {
		v := s.Pareto(2, 1.5)
		if v < 2 {
			t.Fatalf("Pareto(2, 1.5) below scale: %v", v)
		}
		if v > 20 {
			exceed++
		}
	}
	// P(X > 20) = (2/20)^1.5 ≈ 0.0316 for a Pareto(xm=2, alpha=1.5).
	p := float64(exceed) / n
	if math.Abs(p-0.0316) > 0.01 {
		t.Fatalf("Pareto tail probability = %v, want ~0.0316", p)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := NewStream(8)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

func TestBernoulliProbability(t *testing.T) {
	s := NewStream(9)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := NewStream(10)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length = %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermVaries(t *testing.T) {
	s := NewStream(11)
	same := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		p := s.Perm(6)
		identity := true
		for j, v := range p {
			if v != j {
				identity = false
				break
			}
		}
		if identity {
			same++
		}
	}
	// Identity permutation of 6 elements has probability 1/720; 100
	// trials should essentially never produce more than a couple.
	if same > 3 {
		t.Fatalf("Perm returned the identity %d/%d times", same, trials)
	}
}

func TestSeedResets(t *testing.T) {
	s := NewStream(12)
	first := s.Uint64()
	s.Uint64()
	s.Seed(12)
	if got := s.Uint64(); got != first {
		t.Fatalf("Seed did not reset the stream: %x != %x", got, first)
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := NewStream(13)
	for i := 0; i < 1000; i++ {
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
}

func TestStreamsWithDifferentSeedsDiffer(t *testing.T) {
	a, b := NewStream(1), NewStream(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func BenchmarkStreamUint64(b *testing.B) {
	s := NewStream(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkHash64ThreeIDs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Hash64(42, 1, 2, uint64(i))
	}
}

func BenchmarkNormal(b *testing.B) {
	s := NewStream(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Normal(0, 1)
	}
}
