package netcoord

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"netcoord/internal/xrand"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Dimension != 3 || cfg.CC != 0.25 || cfg.CE != 0.25 {
		t.Fatalf("vivaldi defaults wrong: %+v", cfg)
	}
	if cfg.FilterHistory != 4 || cfg.FilterPercentile != 25 {
		t.Fatalf("filter defaults wrong: %+v", cfg)
	}
	if cfg.Policy != PolicyEnergy || cfg.WindowSize != 32 || cfg.Threshold != 8 {
		t.Fatalf("policy defaults wrong: %+v", cfg)
	}
}

func TestNewClientPolicyVariants(t *testing.T) {
	kinds := []PolicyKind{
		PolicyEnergy, PolicyRelative, PolicySystem,
		PolicyApplication, PolicyApplicationCentroid, PolicyDirect,
	}
	for _, k := range kinds {
		cfg := DefaultConfig()
		cfg.Policy = k
		cfg.Threshold = 0 // force per-policy default resolution
		if _, err := NewClient(cfg); err != nil {
			t.Errorf("policy %d: %v", k, err)
		}
	}
	bad := DefaultConfig()
	bad.Policy = PolicyKind(99)
	if _, err := NewClient(bad); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestNewClientRejectsBadFilter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FilterPercentile = 200
	if _, err := NewClient(cfg); err == nil {
		t.Fatal("bad percentile accepted")
	}
}

func TestObserveRejectsBadRemote(t *testing.T) {
	c, err := NewClient(DefaultConfig())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	if _, err := c.Observe("x", 50, Origin(2), 0.5); err == nil {
		t.Fatal("wrong-dimension remote accepted")
	}
	nan := Origin(3)
	nan.Vec[0] = math.NaN()
	if _, err := c.Observe("x", 50, nan, 0.5); err == nil {
		t.Fatal("NaN remote accepted")
	}
}

func TestObserveWarmupThenUpdates(t *testing.T) {
	c, err := NewClient(DefaultConfig())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	// Remote at the origin with a 50 ms RTT: once the filter opens, the
	// spring must push us away.
	remote := Origin(3)
	// First observation: filter warming up (warm-up 2), no movement.
	st, err := c.Observe("peer", 50, remote, 0.5)
	if err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if st.Sys.Vec.Norm() != 0 {
		t.Fatalf("coordinate moved during warm-up: %v", st.Sys)
	}
	// Second observation: update applies.
	st, err = c.Observe("peer", 50, remote, 0.5)
	if err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if st.Sys.Vec.Norm() == 0 {
		t.Fatal("coordinate did not move after warm-up")
	}
	// A few more consistent samples must grow confidence.
	for i := 0; i < 20; i++ {
		st, err = c.Observe("peer", 50, remote, 0.5)
		if err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	if st.Error >= 1 {
		t.Fatalf("error weight %v did not improve", st.Error)
	}
}

func TestTwoClientsConverge(t *testing.T) {
	cfgA := DefaultConfig()
	cfgA.Seed = 1
	cfgB := DefaultConfig()
	cfgB.Seed = 2
	a, err := NewClient(cfgA)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	b, err := NewClient(cfgB)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	rng := xrand.NewStream(3)
	for i := 0; i < 400; i++ {
		// Jittery 50 ms link with occasional spikes — the MP filter
		// must keep convergence clean.
		rtt := 50 * (1 + math.Abs(rng.Normal(0, 0.05)))
		if rng.Bernoulli(0.02) {
			rtt = rng.Uniform(1000, 5000)
		}
		if _, err := a.Observe("b", rtt, b.Coordinate(), b.Error()); err != nil {
			t.Fatalf("a.Observe: %v", err)
		}
		if _, err := b.Observe("a", rtt, a.Coordinate(), a.Error()); err != nil {
			t.Fatalf("b.Observe: %v", err)
		}
	}
	est, err := a.DistanceTo(b.Coordinate())
	if err != nil {
		t.Fatalf("DistanceTo: %v", err)
	}
	if math.Abs(est-50) > 10 {
		t.Fatalf("estimate = %v ms, want ~50 despite spikes", est)
	}
	if a.Confidence() < 0.5 {
		t.Fatalf("confidence = %v", a.Confidence())
	}
}

func TestAppCoordinateMoreStableThanSys(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 4
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	remote := Origin(3)
	remote.Vec[0] = 80
	rng := xrand.NewStream(5)
	var sysMoves, appChanges int
	var prevSys Coordinate
	first := true
	for i := 0; i < 1500; i++ {
		rtt := 80 * (1 + math.Abs(rng.Normal(0, 0.08)))
		st, err := c.Observe("r", rtt, remote, 0.5)
		if err != nil {
			t.Fatalf("Observe: %v", err)
		}
		if !first && !st.Sys.Equal(prevSys) {
			sysMoves++
		}
		if st.AppChanged {
			appChanges++
		}
		prevSys, first = st.Sys, false
	}
	if sysMoves == 0 {
		t.Fatal("system coordinate never moved")
	}
	if appChanges*10 > sysMoves {
		t.Fatalf("app changed %d times vs %d sys moves; want >10x suppression", appChanges, sysMoves)
	}
}

func TestDistanceAccessors(t *testing.T) {
	c, err := NewClient(DefaultConfig())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	remote := Origin(3)
	remote.Vec = append(remote.Vec[:0], 3, 4, 0)
	d, err := c.DistanceTo(remote)
	if err != nil {
		t.Fatalf("DistanceTo: %v", err)
	}
	if d != 5 {
		t.Fatalf("DistanceTo = %v, want 5", d)
	}
	ad, err := c.AppDistanceTo(remote)
	if err != nil {
		t.Fatalf("AppDistanceTo: %v", err)
	}
	if ad != 5 {
		t.Fatalf("AppDistanceTo = %v, want 5", ad)
	}
	if _, err := c.DistanceTo(Origin(2)); err == nil {
		t.Fatal("mismatched DistanceTo accepted")
	}
}

func TestForgetLink(t *testing.T) {
	c, err := NewClient(DefaultConfig())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	remote := Origin(3)
	remote.Vec[0] = 50
	if _, err := c.Observe("p", 50, remote, 0.5); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if c.Links() != 1 {
		t.Fatalf("Links = %d", c.Links())
	}
	c.ForgetLink("p")
	if c.Links() != 0 {
		t.Fatalf("Links after forget = %d", c.Links())
	}
}

func TestClientConcurrentAccess(t *testing.T) {
	c, err := NewClient(DefaultConfig())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	remote := Origin(3)
	remote.Vec[0] = 50
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := c.Observe("peer", 50, remote, 0.5); err != nil {
					errCh <- err
					return
				}
				_ = c.Coordinate()
				_ = c.AppCoordinate()
				if _, err := c.DistanceTo(remote); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("concurrent access: %v", err)
	}
}

func TestLiveNodePair(t *testing.T) {
	a, err := StartNode(NodeConfig{
		ListenAddr:     "127.0.0.1:0",
		SampleInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("StartNode a: %v", err)
	}
	defer func() {
		if err := a.Stop(); err != nil {
			t.Errorf("stop a: %v", err)
		}
	}()
	b, err := StartNode(NodeConfig{
		ListenAddr:     "127.0.0.1:0",
		Seeds:          []string{a.Addr()},
		SampleInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("StartNode b: %v", err)
	}
	defer func() {
		if err := b.Stop(); err != nil {
			t.Errorf("stop b: %v", err)
		}
	}()
	for i := 0; i < 30; i++ {
		if err := b.SampleNow(context.Background()); err != nil {
			t.Fatalf("SampleNow: %v", err)
		}
	}
	if b.Samples() == 0 {
		t.Fatal("live node applied no samples")
	}
	if est, err := b.EstimateRTT(a.Coordinate()); err != nil || est < 0 {
		t.Fatalf("EstimateRTT = %v, %v", est, err)
	}
	if len(b.Neighbors()) == 0 {
		t.Fatal("no neighbors")
	}
}

func BenchmarkClientObserve(b *testing.B) {
	c, err := NewClient(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	remote := Origin(3)
	remote.Vec[0] = 50
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Observe("peer", 50, remote, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func TestClientWithHeightModel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseHeight = true
	cfg.HeightMin = 0.1
	cfg.Seed = 11
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	if c.Coordinate().Height != 0.1 {
		t.Fatalf("initial height = %v, want HeightMin", c.Coordinate().Height)
	}
	remote := Origin(3)
	remote.Height = 5
	for i := 0; i < 200; i++ {
		if _, err := c.Observe("peer", 80, remote, 0.5); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	got := c.Coordinate()
	if got.Height < cfg.HeightMin {
		t.Fatalf("height %v fell below minimum", got.Height)
	}
	est, err := c.DistanceTo(remote)
	if err != nil {
		t.Fatalf("DistanceTo: %v", err)
	}
	if math.Abs(est-80) > 15 {
		t.Fatalf("estimate = %v with height model, want ~80", est)
	}
}

func TestConfigZeroValueResolvesToDefaults(t *testing.T) {
	// A zero-value Config must resolve to the paper's defaults rather
	// than failing — zero values should be useful.
	c, err := NewClient(Config{})
	if err != nil {
		t.Fatalf("NewClient(zero): %v", err)
	}
	if c.Coordinate().Dim() != 3 {
		t.Fatalf("dimension = %d", c.Coordinate().Dim())
	}
	remote := Origin(3)
	if _, err := c.Observe("p", 50, remote, 0.5); err != nil {
		t.Fatalf("Observe: %v", err)
	}
}

func TestPerPolicyDefaultThresholds(t *testing.T) {
	// Threshold 0 must resolve to each policy's paper value without
	// error, including the windowless policies.
	for _, kind := range []PolicyKind{PolicySystem, PolicyApplication, PolicyApplicationCentroid, PolicyDirect} {
		cfg := Config{Policy: kind}
		c, err := NewClient(cfg)
		if err != nil {
			t.Fatalf("policy %d: %v", kind, err)
		}
		if _, err := c.Observe("p", 50, Origin(3), 0.5); err != nil {
			t.Fatalf("policy %d observe: %v", kind, err)
		}
	}
}
