// Benchmark harness: one bench per table and figure in the paper's
// evaluation, plus the ablations called out in DESIGN.md. Each benchmark
// regenerates its experiment end-to-end and reports the experiment's
// headline numbers as custom benchmark metrics, so `go test -bench .`
// doubles as the reproduction run.
//
// Scale is selected with the NETCOORD_BENCH_SCALE environment variable:
// "quick" (default; preserves every qualitative shape) or "paper"
// (269 nodes, four hours, per-second sampling — the paper's deployment).
// cmd/ncbench renders the full tables these benches summarize.
package netcoord

import (
	"os"
	"testing"

	"netcoord/internal/experiments"
)

// benchScale resolves the benchmark scale from the environment.
func benchScale() experiments.Scale {
	if os.Getenv("NETCOORD_BENCH_SCALE") == "paper" {
		return experiments.PaperScale()
	}
	return experiments.QuickScale()
}

func BenchmarkFig02RawLatencyHistogram(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig02RawLatencyHistogram(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.FractionAboveOneSecond*100, "%ge1s")
		b.ReportMetric(float64(r.Total), "samples")
	}
}

func BenchmarkFig03SingleLinkDistribution(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig03SingleLinkDistribution(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Max/r.Median, "max/median")
	}
}

func BenchmarkFig04HistorySizeSweep(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig04HistorySizeSweep(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.BestHistory), "best-h")
	}
}

func BenchmarkFig05FilterCDFs(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig05FilterCDFs(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MP.Summary.MedianRelErr, "mp-err")
		b.ReportMetric(r.Raw.Summary.MedianRelErr, "raw-err")
		b.ReportMetric(r.WorstInstabilityRatio, "tail-ratio")
	}
}

func BenchmarkTable1FilterComparison(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1FilterComparison(scale)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			switch row.Name {
			case "MP Filter":
				b.ReportMetric(row.MedianRelErr, "mp-err")
			case "No Filter":
				b.ReportMetric(row.MedianRelErr, "none-err")
			case "EWMA a=0.20":
				b.ReportMetric(row.MedianRelErr, "ewma20-err")
			}
		}
	}
}

func BenchmarkFig06ConfidenceBuilding(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig06ConfidenceBuilding(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SteadyWith, "conf-with")
		b.ReportMetric(r.SteadyWithout, "conf-without")
	}
}

func BenchmarkFig07CoordinateDrift(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig07CoordinateDrift(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.DriftRatio, "drift/path")
	}
}

func BenchmarkFig08ThresholdSweep(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig08ThresholdSweep(scale)
		if err != nil {
			b.Fatal(err)
		}
		// The paper's recommended operating points.
		for _, p := range r.Energy {
			if p.Param == 8 {
				b.ReportMetric(p.MedianRelErr, "energy-t8-err")
				b.ReportMetric(p.MedianInstability, "energy-t8-inst")
			}
		}
	}
}

func BenchmarkFig09WindowSizeSweep(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig09WindowSizeSweep(scale)
		if err != nil {
			b.Fatal(err)
		}
		last := r.Energy[len(r.Energy)-1]
		b.ReportMetric(last.MeanUpdateFraction*100, "upd%@maxw")
	}
}

func BenchmarkFig10HeuristicComparison(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10HeuristicComparison(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.System[len(r.System)-1].MedianRelErr, "sys-t256-err")
		b.ReportMetric(r.Energy[len(r.Energy)-1].MedianRelErr, "energy-t256-err")
	}
}

func BenchmarkFig11AppLevelCDFs(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11AppLevelCDFs(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.EnergyMP.Summary.MedianInstability, "energy-inst")
		b.ReportMetric(r.RawMP.Summary.MedianInstability, "raw-inst")
	}
}

func BenchmarkFig12ApplicationCentroid(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12ApplicationCentroid(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Points[len(r.Points)-1].MedianRelErr, "t256-err")
	}
}

func BenchmarkFig13PlanetLabComparison(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13PlanetLabComparison(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ErrImprovement*100, "%err-impr")
		b.ReportMetric(r.InstabilityImprovement*100, "%inst-impr")
		b.ReportMetric(r.Quiet*100, "%quiet")
	}
}

func BenchmarkFig14ConvergenceTimeline(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14ConvergenceTimeline(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.ConvergedBy)/60, "conv-min")
	}
}

func BenchmarkAblationStaticMatrix(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationStaticMatrix(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Static.MedianRelErr, "static-err")
		b.ReportMetric(r.Live.MedianRelErr, "live-err")
	}
}

func BenchmarkAblationThresholdFilter(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationThresholdFilter(scale)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Name == "Cutoff 1000ms" {
				b.ReportMetric(row.MedianRelErr, "cutoff1s-err")
			}
		}
	}
}

func BenchmarkAblationDampedVivaldi(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationDampedVivaldi(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.DampedAfter/r.DampedBefore, "damped-degr")
		b.ReportMetric(r.MPAfter/r.MPBefore, "mp-degr")
	}
}

func BenchmarkAblationFilterWarmup(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationFilterWarmup(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ImmediateEarly, "early-inst-1")
		b.ReportMetric(r.WarmupEarly, "early-inst-2")
	}
}

func BenchmarkExtensionDetectorComparison(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtensionDetectorComparison(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Energy.MedianRelErr, "energy-err")
		b.ReportMetric(r.RankSum.MedianRelErr, "ranksum-err")
	}
}

func BenchmarkExtensionChurnRobustness(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtensionChurnRobustness(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ImmediateTail, "p99-inst-w1")
		b.ReportMetric(r.WarmupTail, "p99-inst-w2")
	}
}
