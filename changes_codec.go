package netcoord

import (
	"encoding/json"
	"math"
	"strconv"
)

// This file is the encode-once JSON path for change events. Serving a
// change stream used to pay one json.Marshal — reflection, interface
// boxing, a fresh buffer — per event per subscriber. ChangeEvent now
// marshals through a hand-rolled appender that writes into one []byte
// with no reflection, and the result is stored in the event's shared
// encode cache, so a fan-out of N subscribers serializes each event
// exactly once and N-1 of them just copy bytes.
//
// The appender reproduces encoding/json's output byte for byte for the
// shapes a change event can take (same field order, same omitempty
// decisions, same float and string formatting); anything it cannot
// render identically — a string needing escapes, a non-finite float —
// falls back to encoding/json itself, so the output is ALWAYS exactly
// what the stdlib would have produced. TestChangeEventJSONMatchesStdlib
// holds that equivalence.

// changeEventJSON is ChangeEvent stripped of its methods, so the
// fallback can use the stdlib encoder without recursing into
// MarshalJSON.
type changeEventJSON ChangeEvent

// MarshalJSON renders the event exactly as encoding/json would render
// its fields, serving cached bytes when the event carries the shared
// encode cache. A labelled coalesce gap (Coalesced > 0) changes the
// rendered shape, and only live deliveries carry labels, so those
// encode fresh and only the dense form is cached.
func (e ChangeEvent) MarshalJSON() ([]byte, error) {
	cacheable := e.enc != nil && e.Coalesced == 0
	if cacheable {
		if b := e.enc.JSON(); b != nil {
			return b, nil
		}
	}
	b, ok := appendChangeEventJSON(make([]byte, 0, 192), e)
	if !ok {
		var err error
		b, err = json.Marshal(changeEventJSON(e))
		if err != nil {
			return nil, err
		}
	}
	if cacheable {
		e.enc.StoreJSON(b)
	}
	return b, nil
}

// appendChangeEventJSON renders e in encoding/json's exact output
// format. ok is false when some value needs a rendering this fast path
// does not implement (escaped strings, non-finite floats) and the
// caller must fall back to the stdlib.
func appendChangeEventJSON(dst []byte, e ChangeEvent) ([]byte, bool) {
	var ok bool
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendUint(dst, e.Seq, 10)
	dst = append(dst, `,"op":`...)
	if dst, ok = appendJSONString(dst, e.Op); !ok {
		return nil, false
	}
	if e.Entry != nil {
		dst = append(dst, `,"entry":`...)
		if dst, ok = appendChangeEntryJSON(dst, e.Entry); !ok {
			return nil, false
		}
	}
	if e.ID != "" {
		dst = append(dst, `,"id":`...)
		if dst, ok = appendJSONString(dst, e.ID); !ok {
			return nil, false
		}
	}
	if len(e.IDs) > 0 {
		dst = append(dst, `,"ids":[`...)
		for i, id := range e.IDs {
			if i > 0 {
				dst = append(dst, ',')
			}
			if dst, ok = appendJSONString(dst, id); !ok {
				return nil, false
			}
		}
		dst = append(dst, ']')
	}
	if e.PubNs != 0 {
		dst = append(dst, `,"pub_ns":`...)
		dst = strconv.AppendInt(dst, e.PubNs, 10)
	}
	if e.Epoch != 0 {
		dst = append(dst, `,"epoch":`...)
		dst = strconv.AppendUint(dst, e.Epoch, 10)
	}
	if e.Coalesced != 0 {
		dst = append(dst, `,"coalesced":`...)
		dst = strconv.AppendUint(dst, e.Coalesced, 10)
	}
	return append(dst, '}'), true
}

// appendChangeEntryJSON renders one entry, matching the stdlib field
// order and omitempty choices of ChangeEntry.
func appendChangeEntryJSON(dst []byte, e *ChangeEntry) ([]byte, bool) {
	var ok bool
	dst = append(dst, `{"id":`...)
	if dst, ok = appendJSONString(dst, e.ID); !ok {
		return nil, false
	}
	dst = append(dst, `,"coord":`...)
	if dst, ok = appendCoordinateJSON(dst, e.Coord); !ok {
		return nil, false
	}
	if e.Error != 0 {
		dst = append(dst, `,"error":`...)
		if dst, ok = appendJSONFloat(dst, e.Error); !ok {
			return nil, false
		}
	}
	dst = append(dst, `,"updated_at_unix_nano":`...)
	dst = strconv.AppendInt(dst, e.UpdatedAtUnixNano, 10)
	if e.Seq != 0 {
		dst = append(dst, `,"seq":`...)
		dst = strconv.AppendUint(dst, e.Seq, 10)
	}
	return append(dst, '}'), true
}

// appendCoordinateJSON renders a coordinate exactly as its MarshalJSON
// does ({"vec":...,"height":...} with height omitted at zero and a nil
// vector rendered null).
func appendCoordinateJSON(dst []byte, c Coordinate) ([]byte, bool) {
	var ok bool
	dst = append(dst, `{"vec":`...)
	if c.Vec == nil {
		dst = append(dst, `null`...)
	} else {
		dst = append(dst, '[')
		for i, v := range c.Vec {
			if i > 0 {
				dst = append(dst, ',')
			}
			if dst, ok = appendJSONFloat(dst, v); !ok {
				return nil, false
			}
		}
		dst = append(dst, ']')
	}
	if c.Height != 0 {
		dst = append(dst, `,"height":`...)
		if dst, ok = appendJSONFloat(dst, c.Height); !ok {
			return nil, false
		}
	}
	return append(dst, '}'), true
}

// appendJSONString quotes s when no byte needs escaping under
// encoding/json's default (HTML-escaping) encoder: printable ASCII
// minus quote, backslash, and the HTML-significant characters. Any
// other byte fails the fast path rather than risk diverging from the
// stdlib's rendering.
func appendJSONString(dst []byte, s string) ([]byte, bool) {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c > 0x7e || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return nil, false
		}
	}
	dst = append(dst, '"')
	dst = append(dst, s...)
	return append(dst, '"'), true
}

// appendJSONFloat renders f with encoding/json's float algorithm:
// shortest representation, 'f' form inside [1e-6, 1e21), 'e' form with
// a trimmed exponent leading zero outside it. Non-finite values fail
// the fast path (the stdlib reports them as errors, and the fallback
// reproduces that exactly).
func appendJSONFloat(dst []byte, f float64) ([]byte, bool) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return nil, false
	}
	format := byte('f')
	if abs := math.Abs(f); abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// encoding/json trims a one-digit negative exponent's leading
		// zero: 1e-07 renders as 1e-7.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, true
}
