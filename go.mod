module netcoord

go 1.24
