package netcoord

import (
	"context"
	"fmt"
	"time"

	"netcoord/internal/node"
)

// NodeConfig configures a live, self-contained coordinate node: UDP
// application-level pings, gossip neighbor discovery, background
// round-robin sampling — the full stack the paper deployed on PlanetLab.
type NodeConfig struct {
	// ListenAddr is the UDP bind address, e.g. "0.0.0.0:7946" or
	// "127.0.0.1:0" for an ephemeral port.
	ListenAddr string
	// Seeds are addresses of existing participants; empty for the first
	// node of a new system.
	Seeds []string
	// Client tunes the coordinate pipeline; zero value means
	// DefaultConfig.
	Client Config
	// SampleInterval is the ping cadence (0 = the paper's 5 s).
	SampleInterval time.Duration
	// PingTimeout bounds each sample (0 = 2 s).
	PingTimeout time.Duration
	// MaxNeighbors bounds the gossip-grown neighbor set (0 = 64).
	MaxNeighbors int
	// Updates, if non-nil, receives application-level coordinate change
	// notifications. Use a buffered channel; overflow is dropped.
	Updates chan<- NodeUpdate
}

// NodeUpdate is an application-level coordinate change from a live node.
type NodeUpdate = node.Update

// Node is a running live coordinate participant.
type Node struct {
	inner *node.Node
}

// StartNode launches a live node. Stop it with Stop.
func StartNode(cfg NodeConfig) (*Node, error) {
	ncfg, _, err := nodeConfig(cfg)
	if err != nil {
		return nil, err
	}
	inner, err := node.Start(ncfg)
	if err != nil {
		return nil, fmt.Errorf("netcoord: %w", err)
	}
	return &Node{inner: inner}, nil
}

// nodeConfig resolves a NodeConfig into the internal node's
// configuration, also returning the resolved Client tuning. resolve
// fills per-field defaults, so a partially specified Client keeps every
// field the user did set (a Config with only, say, MaxLinks or Seed
// must not be silently swapped for DefaultConfig). Split from StartNode
// so the resolution is testable without binding a socket.
func nodeConfig(cfg NodeConfig) (node.Config, Config, error) {
	resolved, vcfg, err := resolve(cfg.Client)
	if err != nil {
		return node.Config{}, Config{}, err
	}
	policy, err := buildPolicy(resolved)
	if err != nil {
		return node.Config{}, Config{}, fmt.Errorf("netcoord: %w", err)
	}
	factory, err := buildFilterFactory(resolved)
	if err != nil {
		return node.Config{}, Config{}, fmt.Errorf("netcoord: %w", err)
	}
	var updates chan<- node.Update
	if cfg.Updates != nil {
		updates = cfg.Updates
	}
	return node.Config{
		ListenAddr:     cfg.ListenAddr,
		Seeds:          cfg.Seeds,
		Vivaldi:        vcfg,
		Filter:         factory,
		Policy:         policy,
		SampleInterval: cfg.SampleInterval,
		PingTimeout:    cfg.PingTimeout,
		MaxNeighbors:   cfg.MaxNeighbors,
		Updates:        updates,
	}, resolved, nil
}

// Stop terminates sampling and closes the socket.
func (n *Node) Stop() error { return n.inner.Stop() }

// Addr returns the node's bound UDP address; hand it to other nodes as a
// seed.
func (n *Node) Addr() string { return n.inner.Addr() }

// Coordinate returns the current system-level coordinate.
func (n *Node) Coordinate() Coordinate { return n.inner.Coordinate() }

// AppCoordinate returns the current application-level coordinate.
func (n *Node) AppCoordinate() Coordinate { return n.inner.AppCoordinate() }

// Confidence returns 1 - w.
func (n *Node) Confidence() float64 { return n.inner.Confidence() }

// EstimateRTT predicts the RTT in milliseconds to a remote coordinate.
func (n *Node) EstimateRTT(remote Coordinate) (float64, error) {
	return n.inner.EstimateRTT(remote)
}

// Neighbors snapshots the known neighbor addresses.
func (n *Node) Neighbors() []string { return n.inner.Neighbors() }

// Samples reports applied observations.
func (n *Node) Samples() uint64 { return n.inner.Samples() }

// SampleNow performs one synchronous sample; useful for fast bootstrap
// and tests.
func (n *Node) SampleNow(ctx context.Context) error { return n.inner.SampleNow(ctx) }
