package netcoord

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	"netcoord/internal/index"
	"netcoord/internal/xrand"
)

// oldNearestWalk is the pre-fan-out Registry.nearest, kept verbatim as
// the reference the new engine must match bit-for-bit: per-shard
// KNearestBound, append, sort.Slice, truncate, tighten.
func oldNearestWalk(r *Registry, from Coordinate, k int, exclude string, bound float64) ([]Ranked, error) {
	if k <= 0 {
		return nil, fmt.Errorf("netcoord: k = %d, want > 0", k)
	}
	perShard := k
	if exclude != "" {
		perShard++
	}
	var merged []index.Neighbor
	for _, s := range r.shards {
		s.mu.RLock()
		ns, err := s.tree.KNearestBound(from, perShard, bound)
		s.mu.RUnlock()
		if err != nil {
			return nil, err
		}
		merged = append(merged, ns...)
		sort.Slice(merged, func(i, j int) bool {
			if merged[i].Distance != merged[j].Distance {
				return merged[i].Distance < merged[j].Distance
			}
			return merged[i].ID < merged[j].ID
		})
		if len(merged) > perShard {
			merged = merged[:perShard]
		}
		if len(merged) == perShard {
			bound = merged[len(merged)-1].Distance
		}
	}
	out := make([]Ranked, 0, k)
	for _, n := range merged {
		if n.ID == exclude {
			continue
		}
		out = append(out, Ranked{
			Candidate:    Candidate{ID: n.ID, Coord: n.Coord},
			EstimatedRTT: n.Distance,
		})
		if len(out) == k {
			break
		}
	}
	return out, nil
}

// bruteNearest is the O(n) oracle: rank a snapshot by (distance, id),
// drop the excluded id and anything past the bound, keep k.
func bruteNearest(t *testing.T, snap []RegistryEntry, from Coordinate, k int, exclude string, bound float64) []Ranked {
	t.Helper()
	var out []Ranked
	for _, e := range snap {
		if e.ID == exclude {
			continue
		}
		d, err := from.DistanceTo(e.Coord)
		if err != nil {
			t.Fatal(err)
		}
		if d <= bound {
			out = append(out, Ranked{Candidate: Candidate{ID: e.ID, Coord: e.Coord}, EstimatedRTT: d})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].EstimatedRTT != out[j].EstimatedRTT {
			return out[i].EstimatedRTT < out[j].EstimatedRTT
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// rankedEqual requires bit-identical results: same ids, same distances,
// same order.
func rankedEqual(a, b []Ranked) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].EstimatedRTT != b[i].EstimatedRTT {
			return false
		}
	}
	return true
}

func rankedSorted(rs []Ranked) bool {
	for i := 1; i < len(rs); i++ {
		if rs[i].EstimatedRTT < rs[i-1].EstimatedRTT {
			return false
		}
		if rs[i].EstimatedRTT == rs[i-1].EstimatedRTT && rs[i].ID <= rs[i-1].ID {
			return false
		}
	}
	return true
}

// TestQueryEngineMatchesOracleAndOldWalk is the acceptance property
// test: across shard counts and parallelism settings, random k,
// exclusions, radius bounds, and grid-snapped duplicate distances, the
// new engine — single queries, Into reuse, and both batch entry points
// — must agree bit-for-bit with the brute-force oracle and with the old
// sequential sort.Slice walk. Entry counts sit past the fan-out
// crossover for the eligible configs, so the parallel path is the one
// under test there.
func TestQueryEngineMatchesOracleAndOldWalk(t *testing.T) {
	configs := []struct{ shards, parallelism int }{
		{1, 1}, {2, 4}, {4, 1}, {4, 4}, {8, 4}, {16, 2},
	}
	for _, tc := range configs {
		tc := tc
		t.Run(fmt.Sprintf("shards=%d,par=%d", tc.shards, tc.parallelism), func(t *testing.T) {
			t.Parallel()
			rng := xrand.NewStream(uint64(1000 + tc.shards*10 + tc.parallelism))
			r := newTestRegistry(t, RegistryConfig{
				Dimension:        3,
				Shards:           tc.shards,
				QueryParallelism: tc.parallelism,
			})
			n := tc.shards*queryParallelMinPerShard + 300
			ids := make([]string, 0, n)
			batchEntries := make([]RegistryEntry, 0, n)
			for i := 0; i < n; i++ {
				id := fmt.Sprintf("node-%05d", i)
				c := testCoord(rng, 3)
				if rng.Bernoulli(0.3) {
					// Snap to a coarse grid so duplicate distances are
					// common and tie-breaking by id is genuinely hit.
					for d := range c.Vec {
						c.Vec[d] = float64(int(c.Vec[d]) / 40 * 40)
					}
					c.Height = 0
				}
				ids = append(ids, id)
				batchEntries = append(batchEntries, RegistryEntry{ID: id, Coord: c})
			}
			if err := r.UpsertBatch(batchEntries); err != nil {
				t.Fatal(err)
			}
			snap := r.Snapshot()
			if len(snap) != n {
				t.Fatalf("snapshot has %d entries, want %d", len(snap), n)
			}

			var nbatch []NearestQuery
			var nwant [][]Ranked
			var wbatch []WithinQuery
			var wwant [][]Ranked
			var dst []Ranked
			for trial := 0; trial < 30; trial++ {
				q := testCoord(rng, 3)
				k := 1 + rng.Intn(20)
				exclude := ""
				if rng.Bernoulli(0.4) {
					exclude = ids[rng.Intn(len(ids))]
				}
				hasRadius := rng.Bernoulli(0.4)
				bound := math.Inf(1)
				if hasRadius {
					bound = rng.Uniform(0, 150)
				}

				want := bruteNearest(t, snap, q, k, exclude, bound)
				old, err := oldNearestWalk(r, q, k, exclude, bound)
				if err != nil {
					t.Fatal(err)
				}
				if !rankedEqual(old, want) {
					t.Fatalf("trial %d: old walk disagrees with oracle: %v vs %v", trial, old, want)
				}
				got, err := r.nearestInto(q, k, exclude, bound, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !rankedEqual(got, want) {
					t.Fatalf("trial %d (k=%d excl=%q bound=%v): engine %v, oracle %v", trial, k, exclude, bound, got, want)
				}
				nbatch = append(nbatch, NearestQuery{From: q, K: k, Exclude: exclude, HasRadius: hasRadius, RadiusMillis: bound})
				nwant = append(nwant, want)

				// Exported wrappers on the shapes they serve.
				if exclude == "" && !hasRadius {
					dst, err = r.NearestInto(q, k, dst)
					if err != nil {
						t.Fatal(err)
					}
					if !rankedEqual(dst, want) {
						t.Fatalf("trial %d: NearestInto %v, oracle %v", trial, dst, want)
					}
				}
				if exclude == "" && hasRadius {
					lim, err := r.WithinLimit(q, bound, k)
					if err != nil {
						t.Fatal(err)
					}
					if !rankedEqual(lim, want) {
						t.Fatalf("trial %d: WithinLimit %v, oracle %v", trial, lim, want)
					}
				}
				if exclude != "" {
					center, ok := r.Get(exclude)
					if !ok {
						t.Fatalf("trial %d: %q vanished", trial, exclude)
					}
					nt, err := r.NearestTo(exclude, k)
					if err != nil {
						t.Fatal(err)
					}
					ntWant := bruteNearest(t, snap, center.Coord, k, exclude, math.Inf(1))
					if !rankedEqual(nt, ntWant) {
						t.Fatalf("trial %d: NearestTo %v, oracle %v", trial, nt, ntWant)
					}
				}

				radius := rng.Uniform(0, 120)
				within, err := r.Within(q, radius)
				if err != nil {
					t.Fatal(err)
				}
				withinWant := bruteNearest(t, snap, q, len(snap), "", radius)
				if !rankedEqual(within, withinWant) {
					t.Fatalf("trial %d: Within(%v) %d results, oracle %d", trial, radius, len(within), len(withinWant))
				}
				wbatch = append(wbatch, WithinQuery{From: q, RadiusMillis: radius})
				wwant = append(wwant, withinWant)
			}

			// Batches must match the accumulated single-query answers.
			nres, err := r.NearestBatch(nbatch)
			if err != nil {
				t.Fatal(err)
			}
			for i := range nres {
				if !rankedEqual(nres[i], nwant[i]) {
					t.Fatalf("NearestBatch[%d] = %v, want %v", i, nres[i], nwant[i])
				}
			}
			wres, err := r.WithinBatch(wbatch)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wres {
				if !rankedEqual(wres[i], wwant[i]) {
					t.Fatalf("WithinBatch[%d] = %v, want %v", i, wres[i], wwant[i])
				}
			}
		})
	}
}

// TestBatchValidatesWholeBatch pins the atomic-validation contract: one
// bad query fails the whole batch before anything runs, and an empty
// batch succeeds trivially.
func TestBatchValidatesWholeBatch(t *testing.T) {
	r := newTestRegistry(t, RegistryConfig{Dimension: 3})
	if err := r.Upsert("a", c3(1, 2, 3), 0); err != nil {
		t.Fatal(err)
	}
	q0 := r.Stats().Queries
	if _, err := r.NearestBatch([]NearestQuery{
		{From: c3(0, 0, 0), K: 1},
		{From: c3(0, 0, 0), K: 0},
	}); err == nil {
		t.Fatal("batch with k=0 succeeded")
	}
	if _, err := r.NearestBatch([]NearestQuery{
		{From: c3(0, 0, 0), K: 1, HasRadius: true, RadiusMillis: -1},
	}); err == nil {
		t.Fatal("batch with negative radius succeeded")
	}
	if _, err := r.NearestBatch([]NearestQuery{
		{From: Origin(2), K: 1},
	}); err == nil {
		t.Fatal("batch with wrong-dimension coordinate succeeded")
	}
	if _, err := r.WithinBatch([]WithinQuery{
		{From: c3(0, 0, 0), RadiusMillis: 10},
		{From: c3(0, 0, 0), RadiusMillis: math.NaN()},
	}); err == nil {
		t.Fatal("within batch with NaN radius succeeded")
	}
	if got := r.Stats().Queries; got != q0 {
		t.Fatalf("failed batches bumped the query counter: %d -> %d", q0, got)
	}
	empty, err := r.NearestBatch(nil)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty batch = %v, %v", empty, err)
	}
}

// TestQueryEngineChurnStress hammers the parallel query engine — single
// queries, Into reuse, and both batches — against concurrent upserts,
// removes, and TTL evictions, under the race detector. Results must
// stay well-formed (sorted, error-free) throughout.
func TestQueryEngineChurnStress(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	r, err := NewRegistry(RegistryConfig{
		Dimension:        3,
		Shards:           8,
		TTL:              time.Hour,
		JanitorInterval:  24 * time.Hour, // evictions driven explicitly below
		Clock:            clock,
		QueryParallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Seed past the fan-out crossover so queries take the parallel path.
	seedRNG := xrand.NewStream(77)
	nSeed := 8*queryParallelMinPerShard + 256
	seed := make([]RegistryEntry, nSeed)
	for i := range seed {
		seed[i] = RegistryEntry{ID: fmt.Sprintf("node-%05d", i), Coord: testCoord(seedRNG, 3)}
	}
	if err := r.UpsertBatch(seed); err != nil {
		t.Fatal(err)
	}

	const iters = 300
	var wg sync.WaitGroup
	fail := make(chan string, 16)
	report := func(format string, args ...any) {
		select {
		case fail <- fmt.Sprintf(format, args...):
		default:
		}
	}

	// Mutators: churn upserts and removes across the seeded id space.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.NewStream(uint64(200 + w))
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("node-%05d", rng.Intn(nSeed))
				if rng.Bernoulli(0.7) {
					if err := r.Upsert(id, testCoord(rng, 3), rng.Float64()); err != nil {
						report("upsert: %v", err)
						return
					}
				} else {
					r.Remove(id)
				}
			}
		}(w)
	}

	// Evictor: age a slice of the registry out from under the queries.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/10; i++ {
			advance(10 * time.Minute)
			r.EvictStale()
		}
	}()

	// Queriers: every read entry point, continuously.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.NewStream(uint64(300 + w))
			var dst []Ranked
			for i := 0; i < iters; i++ {
				q := testCoord(rng, 3)
				switch i % 4 {
				case 0:
					res, err := r.Nearest(q, 1+rng.Intn(8))
					if err != nil {
						report("nearest: %v", err)
						return
					}
					if !rankedSorted(res) {
						report("nearest results out of order: %v", res)
						return
					}
				case 1:
					res, err := r.NearestInto(q, 8, dst)
					if err != nil {
						report("nearest into: %v", err)
						return
					}
					if !rankedSorted(res) {
						report("into results out of order: %v", res)
						return
					}
					dst = res
				case 2:
					batch := make([]NearestQuery, 1+rng.Intn(6))
					for b := range batch {
						batch[b] = NearestQuery{From: testCoord(rng, 3), K: 1 + rng.Intn(8)}
						if rng.Bernoulli(0.3) {
							batch[b].HasRadius = true
							batch[b].RadiusMillis = rng.Uniform(0, 100)
						}
					}
					res, err := r.NearestBatch(batch)
					if err != nil {
						report("nearest batch: %v", err)
						return
					}
					for _, rs := range res {
						if !rankedSorted(rs) {
							report("batch results out of order: %v", rs)
							return
						}
					}
				case 3:
					res, err := r.WithinBatch([]WithinQuery{
						{From: q, RadiusMillis: rng.Uniform(0, 80)},
						{From: testCoord(rng, 3), RadiusMillis: rng.Uniform(0, 80)},
					})
					if err != nil {
						report("within batch: %v", err)
						return
					}
					for _, rs := range res {
						if !rankedSorted(rs) {
							report("within batch out of order: %v", rs)
							return
						}
					}
				}
			}
		}(w)
	}

	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}

// TestLiveCounterTracksMutations pins the advisory live-entry counter
// the fan-out crossover reads: upserts, refreshes, batch warm-ups,
// removes, and TTL evictions must keep it equal to Len.
func TestLiveCounterTracksMutations(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	r := newTestRegistry(t, RegistryConfig{
		Dimension:       3,
		Shards:          4,
		TTL:             time.Hour,
		JanitorInterval: 24 * time.Hour,
		Clock: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return now
		},
	})
	check := func(stage string) {
		t.Helper()
		if got, want := r.live.Load(), int64(r.Len()); got != want {
			t.Fatalf("%s: live = %d, Len = %d", stage, got, want)
		}
	}
	// Bulk warm-up with an in-batch duplicate: counted once.
	if err := r.UpsertBatch([]RegistryEntry{
		{ID: "a", Coord: c3(0, 0, 0)},
		{ID: "b", Coord: c3(1, 0, 0)},
		{ID: "a", Coord: c3(2, 0, 0)},
	}); err != nil {
		t.Fatal(err)
	}
	check("bulk build")
	// Fresh insert, refresh (same coord), move (new coord): one net add.
	if err := r.Upsert("c", c3(3, 0, 0), 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Upsert("c", c3(3, 0, 0), 0.1); err != nil {
		t.Fatal(err)
	}
	if err := r.Upsert("c", c3(4, 0, 0), 0.1); err != nil {
		t.Fatal(err)
	}
	check("single upserts")
	// Per-entry batch path over a warm shard set.
	if err := r.UpsertBatch([]RegistryEntry{
		{ID: "c", Coord: c3(5, 0, 0)},
		{ID: "d", Coord: c3(6, 0, 0)},
	}); err != nil {
		t.Fatal(err)
	}
	check("incremental batch")
	if !r.Remove("a") || r.Remove("a") {
		t.Fatal("Remove semantics changed")
	}
	check("remove")
	mu.Lock()
	now = now.Add(2 * time.Hour)
	mu.Unlock()
	if n := r.EvictStale(); n == 0 {
		t.Fatal("eviction removed nothing")
	}
	check("evict")
}
