package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: netcoord
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkStep-4         	  936750	      1287 ns/op	       0 B/op	       0 allocs/op
BenchmarkSimulateN256   	       1	  25077210 ns/op	    918874 samples/s	 9674448 B/op	  106116 allocs/op
PASS
ok  	netcoord	2.785s
`

func TestParse(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if doc.Package != "netcoord" || !strings.Contains(doc.CPU, "Xeon") {
		t.Fatalf("header: %+v", doc)
	}
	if len(doc.Results) != 2 {
		t.Fatalf("got %d results", len(doc.Results))
	}
	step := doc.Results[0]
	if step.Name != "BenchmarkStep" || step.Procs != 4 || step.Iterations != 936750 {
		t.Fatalf("step = %+v", step)
	}
	if step.Metrics["ns/op"] != 1287 || step.Metrics["allocs/op"] != 0 {
		t.Fatalf("step metrics = %+v", step.Metrics)
	}
	sim := doc.Results[1]
	if sim.Procs != 1 || sim.Metrics["samples/s"] != 918874 || sim.Metrics["allocs/op"] != 106116 {
		t.Fatalf("sim = %+v", sim)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("PASS\n"))); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestSplitProcs(t *testing.T) {
	for _, tc := range []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkStep-4", "BenchmarkStep", 4},
		{"BenchmarkStep", "BenchmarkStep", 1},
		{"BenchmarkFoo-bar", "BenchmarkFoo-bar", 1},
	} {
		name, procs := splitProcs(tc.in)
		if name != tc.name || procs != tc.procs {
			t.Fatalf("splitProcs(%q) = %q, %d", tc.in, name, procs)
		}
	}
}

func TestGateMetricPresence(t *testing.T) {
	// The allocation gate must not pass vacuously: a matched benchmark
	// without an allocs/op metric (no -benchmem) is a gate failure, not
	// a pass. Exercised end-to-end by the process exit in main; here we
	// pin the parse-side contract the gate relies on.
	doc, err := parse(bufio.NewScanner(strings.NewReader("BenchmarkStep-4 \t 100 \t 1000 ns/op\nPASS\n")))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, ok := doc.Results[0].Metrics["allocs/op"]; ok {
		t.Fatal("allocs/op present without -benchmem output")
	}
}
